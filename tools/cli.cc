#include "tools/cli.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <functional>
#include <limits>
#include <map>
#include <optional>
#include <sstream>
#include <thread>

#include "align/aligner.h"
#include "align/approximate.h"
#include "align/hamming.h"
#include "common/cancel.h"
#include "common/timer.h"
#include "compact/compact_spine.h"
#include "compact/generalized_compact.h"
#include "compact/serializer.h"
#include "core/adapters.h"
#include "core/index.h"
#include "core/matcher.h"
#include "core/query.h"
#include "core/registry.h"
#include "core/wire.h"
#include "engine/query_engine.h"
#include "kernel/kernel.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "seq/fasta.h"
#include "seq/generator.h"
#include "serve/server.h"
#include "shard/dynamic_family.h"
#include "shard/sharded_index.h"
#include "storage/page_file.h"

namespace spine::cli {

int ExitCodeFor(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return kExitOk;
    case StatusCode::kIoError:
      return kExitIoError;
    case StatusCode::kCorruption:
      return kExitCorruption;
    case StatusCode::kInvalidArgument:
      return kExitInvalidArgument;
    case StatusCode::kNotFound:
      return kExitNotFound;
    case StatusCode::kResourceExhausted:
      return kExitResourceExhausted;
    case StatusCode::kOutOfRange:
    case StatusCode::kFailedPrecondition:
      return kExitPrecondition;
    case StatusCode::kOverloaded:
      return kExitOverloaded;
    case StatusCode::kProtocolError:
      return kExitProtocolError;
    case StatusCode::kDeadlineExceeded:
      return kExitDeadlineExceeded;
    case StatusCode::kCancelled:
      return kExitCancelled;
  }
  return kExitIoError;
}

namespace {

constexpr const char* kUsage =
    "usage: spine_tool <command> [args]\n"
    "commands:\n"
    "  build <input.fa> <index.spine> [--alphabet=dna|protein|ascii]\n"
    "        [--shards=K] [--max-pattern=M]\n"
    "      --shards=K builds a sharded family instead: a .spinefam\n"
    "      manifest plus K per-shard compact images built in parallel;\n"
    "      --max-pattern (default 1024) bounds queryable pattern length\n"
    "  gbuild <input.fa> <index.spineg> [--alphabet=dna|protein|ascii]\n"
    "      index EVERY record of a multi-FASTA file together\n"
    "  gquery <index.spineg> <pattern>\n"
    "  query <index> <pattern> [--kind=K] [--errors=N] [--min-len=N]\n"
    "        [--deadline-ms=N]\n"
    "      --kind is one of findall (default), contains, match, ms,\n"
    "      mismatch, edit; the approximate kinds take --errors=N (the\n"
    "      k-mismatch / edit-distance budget, docs/QUERIES.md)\n"
    "  batch <index> <patterns.txt> [--threads=N] [--cache-mb=M] "
    "[--min-len=N] [--deadline-ms=N] [--trace]\n"
    "      run a batch of queries concurrently; each line of patterns.txt\n"
    "      is 'PATTERN' or 'KIND PATTERN' with KIND one of findall,\n"
    "      contains, match, ms, mismatch, edit; the approximate kinds\n"
    "      take a KIND:ERRORS budget suffix ('mismatch:2 abra');\n"
    "      KIND@MS sets a per-line deadline, and --deadline-ms sets the\n"
    "      default for lines without one\n"
    "  serve <artifact> [--port=N] [--host=ADDR] [--threads=N]\n"
    "        [--queue-cap=N] [--max-inflight=N] [--max-connections=N]\n"
    "        [--cache-mb=M] [--min-len=N] [--trace]\n"
    "        [--default-deadline-ms=N] [--max-deadline-ms=N]\n"
    "        [--idle-timeout-ms=N] [--read-timeout-ms=N]\n"
    "      serve queries over TCP: the length-prefixed binary protocol\n"
    "      of core/wire.h with a JSON-lines fallback (docs/SERVING.md);\n"
    "      --port=0 picks an ephemeral port and prints it; SIGTERM or\n"
    "      SIGINT drains gracefully (stop accepting, answer everything\n"
    "      already accepted, flush stats); serving a dynamic family also\n"
    "      accepts insert/delete/compact/reload mutations on the wire,\n"
    "      and SIGHUP reopens the family from its on-disk manifest\n"
    "  add <family.spinefam> [document] [--file=PATH]\n"
    "        [--alphabet=dna|protein|ascii]\n"
    "      insert one document into a dynamic family (created on first\n"
    "      use; docs/LIFECYCLE.md), flush it durable, print the doc id\n"
    "  rm <family.spinefam> <doc-id>\n"
    "      tombstone one document: it stops matching immediately and is\n"
    "      physically dropped at the next compact\n"
    "  compact <family.spinefam>\n"
    "      merge every frozen shard into one compact image, dropping\n"
    "      tombstoned documents and their tombstones\n"
    "  approx <index> <pattern> [--max-edits=K]\n"
    "      sugar for 'query --kind=edit --errors=K'\n"
    "  hamming <index> <pattern> [--max-mismatches=K]\n"
    "      sugar for 'query --kind=mismatch --errors=K'\n"
    "  lrs <index.spine>\n"
    "  stats <index> [--json]\n"
    "      index statistics; --json emits the versioned stats snapshot\n"
    "  search <index.spine> <query.fa> [--min-len=N]\n"
    "  align <reference.fa> <query.fa> [--min-anchor=N] [--mum]\n"
    "  generate <output.fa> [--length=N] [--seed=S] "
    "[--alphabet=dna|protein]\n"
    "  verify <artifact>\n"
    "      check integrity of any index artifact: magic/version,\n"
    "      checksums, structural invariants\n"
    "query, batch, stats and verify open any artifact kind (compact or\n"
    "generalized image, disk index page file, .spinefam shard family) by\n"
    "sniffing its magic; --backend=NAME overrides the sniff\n"
    "every artifact-opening command accepts --open=heap|mmap|mmap-noverify\n"
    "(default heap, or $SPINE_OPEN): mmap serves straight from a page-cache\n"
    "mapping (zero-copy, checksum verified at open); mmap-noverify skips\n"
    "the checksum for constant-time opens of trusted artifacts\n"
    "build, query and batch accept --stats-json[=FILE]: after the\n"
    "command finishes, dump a versioned JSON snapshot of all runtime\n"
    "metrics (plus a command-specific section) to stdout or FILE\n"
    "every command accepts --kernel=scalar|swar|sse2|avx2|auto to force\n"
    "the string-comparison kernel (default: best supported by the CPU;\n"
    "the SPINE_KERNEL env var sets the same override, flag wins)\n"
    "exit codes: 0 ok, 1 I/O error, 2 usage error, 3 corruption detected,\n"
    "            4 invalid argument, 5 not found, 6 resource exhausted,\n"
    "            7 precondition/range error, 8 overloaded, 9 protocol\n"
    "            error, 10 deadline exceeded, 11 cancelled (the one\n"
    "            table is ExitCode in tools/cli.h)\n";

// Splits args into positionals and --key=value / --flag options.
struct ParsedArgs {
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;
};

ParsedArgs Parse(const std::vector<std::string>& args, size_t skip) {
  ParsedArgs parsed;
  for (size_t i = skip; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg.rfind("--", 0) == 0) {
      size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        parsed.options[arg.substr(2)] = "true";
      } else {
        parsed.options[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      parsed.positional.push_back(arg);
    }
  }
  return parsed;
}

std::optional<uint64_t> OptionU64(const ParsedArgs& args,
                                  const std::string& key) {
  auto it = args.options.find(key);
  if (it == args.options.end()) return std::nullopt;
  char* end = nullptr;
  uint64_t value = std::strtoull(it->second.c_str(), &end, 10);
  if (end == it->second.c_str()) return std::nullopt;
  return value;
}

Result<Alphabet> AlphabetFromName(const std::string& name) {
  if (name == "dna") return Alphabet::Dna();
  if (name == "protein") return Alphabet::Protein();
  if (name == "ascii") return Alphabet::Ascii();
  return Status::InvalidArgument("unknown alphabet '" + name +
                                 "' (use dna, protein or ascii)");
}

Result<std::string> LoadFirstSequence(const std::string& path,
                                      std::ostream& out) {
  Result<std::vector<seq::FastaRecord>> records = seq::ReadFasta(path);
  if (!records.ok()) return records.status();
  if (records->empty()) {
    return Status::InvalidArgument(path + " contains no FASTA records");
  }
  if (records->size() > 1) {
    out << "note: " << path << " has " << records->size()
        << " records; using the first (" << (*records)[0].id << ")\n";
  }
  return std::move((*records)[0].sequence);
}

int Fail(std::ostream& err, const Status& status) {
  err << "error: " << status.ToString() << "\n";
  return ExitCodeFor(status.code());
}

// Exit path for commands whose answer is a statusful QueryResult (a
// sharded index rejecting an overlong pattern, a disk backend hitting
// a fault): the per-query error maps onto the same exit-code table.
int FailResult(std::ostream& err, const QueryResult& result) {
  err << "error: " << result.error << "\n";
  return ExitCodeFor(result.status_code);
}

// The one place the CLI turns a path into a live index: the backend
// registry sniffs the artifact's magic, or --backend=NAME forces a
// specific opener. Every reading command (query, batch, stats, verify)
// goes through here, so they all accept every artifact kind.
Result<std::unique_ptr<core::Index>> OpenIndex(const ParsedArgs& args,
                                               const std::string& path) {
  // --open=heap|mmap|mmap-noverify picks the open path; the flag wins
  // over $SPINE_OPEN (which DefaultOpenOptions already resolved).
  core::OpenOptions open_options = core::DefaultOpenOptions();
  if (auto it = args.options.find("open"); it != args.options.end()) {
    Result<core::OpenOptions> parsed = core::ParseOpenSpec(it->second);
    if (!parsed.ok()) return parsed.status();
    open_options = *parsed;
  }
  if (auto it = args.options.find("backend"); it != args.options.end()) {
    return core::BackendRegistry::Default().OpenAs(it->second, path,
                                                   open_options);
  }
  return core::BackendRegistry::Default().Open(path, open_options);
}

// The versioned stats snapshot emitted by `stats --json` and by the
// --stats-json flag on build/query/batch (schema documented in
// docs/OBSERVABILITY.md):
//   {"schema_version": N, "command": "...",
//    "metrics": {"counters": ..., "gauges": ..., "histograms": ...},
//    "<command>": {...command-specific section...}}
std::string StatsSnapshotJson(
    std::string_view command,
    const std::function<void(obs::JsonWriter&)>& extra) {
  obs::JsonWriter json;
  json.BeginObject();
  json.Key("schema_version");
  json.Value(obs::kStatsSchemaVersion);
  json.Key("command");
  json.Value(command);
  json.Key("kernel");
  json.Value(kernel::KindName(kernel::ActiveKind()));
  json.Key("metrics");
  json.RawValue(obs::Registry::ToJson(obs::Registry::Default().Snapshot()));
  if (extra) extra(json);
  json.EndObject();
  return std::move(json).Finish();
}

// Honors --stats-json[=FILE] if present: bare flag dumps to stdout,
// FILE writes the snapshot there. Returns 0, or an exit code when the
// file cannot be written.
int EmitStatsJson(const ParsedArgs& args, std::ostream& out,
                  std::ostream& err, std::string_view command,
                  const std::function<void(obs::JsonWriter&)>& extra) {
  auto it = args.options.find("stats-json");
  if (it == args.options.end()) return 0;
  const std::string doc = StatsSnapshotJson(command, extra);
  if (it->second == "true") {  // bare --stats-json
    out << doc << "\n";
    return 0;
  }
  std::ofstream file(it->second, std::ios::trunc);
  if (!file) {
    return Fail(err, Status::IoError("cannot open " + it->second +
                                     " for writing"));
  }
  file << doc << "\n";
  if (!file.good()) {
    return Fail(err, Status::IoError("failed writing " + it->second));
  }
  return 0;
}

int CmdBuild(const ParsedArgs& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 2) {
    err << "build requires <input.fa> <index.spine>\n";
    return kExitUsage;
  }
  std::string alphabet_name = "dna";
  if (auto it = args.options.find("alphabet"); it != args.options.end()) {
    alphabet_name = it->second;
  }
  Result<Alphabet> alphabet = AlphabetFromName(alphabet_name);
  if (!alphabet.ok()) return Fail(err, alphabet.status());
  Result<std::string> sequence = LoadFirstSequence(args.positional[0], out);
  if (!sequence.ok()) return Fail(err, sequence.status());

  // --shards=K: build a sharded family (K per-shard compact images +
  // a .spinefam manifest) instead of one monolithic image.
  if (std::optional<uint64_t> shards = OptionU64(args, "shards")) {
    shard::ShardedIndex::Options options;
    options.shards = static_cast<uint32_t>(*shards);
    options.max_pattern = static_cast<uint32_t>(
        OptionU64(args, "max-pattern").value_or(shard::kDefaultMaxPattern));
    WallTimer timer;
    Result<std::unique_ptr<shard::ShardedIndex>> family =
        shard::ShardedIndex::Build(*alphabet, *sequence, options);
    if (!family.ok()) return Fail(err, family.status());
    Status status = (*family)->Save(args.positional[1]);
    if (!status.ok()) return Fail(err, status);
    const double secs = timer.ElapsedSeconds();
    out << "indexed " << (*family)->size() << " characters in " << secs
        << " s across " << (*family)->shard_count()
        << " shard(s) (max pattern " << (*family)->max_pattern() << ") -> "
        << args.positional[1] << "\n";
    return EmitStatsJson(args, out, err, "build",
                         [&](obs::JsonWriter& json) {
                           json.Key("build");
                           json.BeginObject();
                           json.Key("characters");
                           json.Value((*family)->size());
                           json.Key("seconds");
                           json.Value(secs);
                           json.Key("shards");
                           json.Value(
                               static_cast<uint64_t>((*family)->shard_count()));
                           json.Key("max_pattern");
                           json.Value(
                               static_cast<uint64_t>((*family)->max_pattern()));
                           json.Key("output");
                           json.Value(args.positional[1]);
                           json.EndObject();
                         });
  }

  WallTimer timer;
  CompactSpineIndex index(*alphabet);
  Status status = index.AppendString(*sequence);
  if (!status.ok()) return Fail(err, status);
  status = SaveCompactSpine(index, args.positional[1]);
  if (!status.ok()) return Fail(err, status);
  const double secs = timer.ElapsedSeconds();
  out << "indexed " << index.size() << " characters in " << secs << " s ("
      << index.LogicalBytes().BytesPerChar(index.size())
      << " bytes/char) -> " << args.positional[1] << "\n";
  return EmitStatsJson(args, out, err, "build", [&](obs::JsonWriter& json) {
    json.Key("build");
    json.BeginObject();
    json.Key("characters");
    json.Value(static_cast<uint64_t>(index.size()));
    json.Key("seconds");
    json.Value(secs);
    json.Key("bytes_per_char");
    json.Value(index.LogicalBytes().BytesPerChar(index.size()));
    json.Key("output");
    json.Value(args.positional[1]);
    json.EndObject();
  });
}

int CmdGBuild(const ParsedArgs& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 2) {
    err << "gbuild requires <input.fa> <index.spineg>\n";
    return kExitUsage;
  }
  std::string alphabet_name = "dna";
  if (auto it = args.options.find("alphabet"); it != args.options.end()) {
    alphabet_name = it->second;
  }
  Result<Alphabet> alphabet = AlphabetFromName(alphabet_name);
  if (!alphabet.ok()) return Fail(err, alphabet.status());
  Result<std::vector<seq::FastaRecord>> records =
      seq::ReadFasta(args.positional[0]);
  if (!records.ok()) return Fail(err, records.status());
  if (records->empty()) {
    return Fail(err, Status::InvalidArgument(args.positional[0] +
                                             " contains no FASTA records"));
  }
  WallTimer timer;
  GeneralizedCompactSpine index(*alphabet);
  for (seq::FastaRecord& record : *records) {
    Status status = index.AddString(record.sequence, record.id);
    if (!status.ok()) {
      return Fail(err, Status::InvalidArgument("record " + record.id + ": " +
                                               status.ToString()));
    }
  }
  Status status = index.Save(args.positional[1]);
  if (!status.ok()) return Fail(err, status);
  out << "indexed " << index.string_count() << " records ("
      << index.total_characters() << " characters incl. separators) in "
      << timer.ElapsedSeconds() << " s -> " << args.positional[1] << "\n";
  return 0;
}

int CmdGQuery(const ParsedArgs& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 2) {
    err << "gquery requires <index.spineg> <pattern>\n";
    return kExitUsage;
  }
  Result<GeneralizedCompactSpine> index =
      GeneralizedCompactSpine::Load(args.positional[0]);
  if (!index.ok()) return Fail(err, index.status());
  auto hits = index->FindAll(args.positional[1]);
  out << hits.size() << " occurrence(s)\n";
  for (const auto& hit : hits) {
    out << "  " << index->StringName(hit.string_id) << " @ " << hit.offset
        << "\n";
  }
  return 0;
}

int CmdQuery(const ParsedArgs& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 2) {
    err << "query requires <index> <pattern>\n";
    return kExitUsage;
  }
  Result<std::unique_ptr<core::Index>> index =
      OpenIndex(args, args.positional[0]);
  if (!index.ok()) return Fail(err, index.status());
  Query query = Query::FindAll(args.positional[1]);
  if (auto it = args.options.find("kind"); it != args.options.end()) {
    const std::optional<QueryKind> kind = core::wire::KindFromName(it->second);
    if (!kind) {
      return Fail(err, Status::InvalidArgument("unknown query kind '" +
                                               it->second + "'"));
    }
    query.kind = *kind;
  }
  query.min_len = std::max<uint32_t>(
      1, static_cast<uint32_t>(OptionU64(args, "min-len").value_or(1)));
  query.max_errors =
      static_cast<uint32_t>(OptionU64(args, "errors").value_or(0));
  query.deadline_ms =
      static_cast<uint32_t>(OptionU64(args, "deadline-ms").value_or(0));
  // The single-query path has no engine to pin the budget, so pin it
  // here: the deadline covers exactly the Execute call.
  std::optional<CancelToken> cancel;
  if (query.deadline_ms > 0) {
    cancel.emplace(Deadline::AfterMs(query.deadline_ms));
  }
  QueryResult result =
      (*index)->Execute(query, nullptr, cancel ? &*cancel : nullptr);
  if (!result.ok()) return FailResult(err, result);
  // The same renderer the batch printer and the serve clients use:
  // one human form per answer, defined once in core/wire.h.
  core::wire::PrintResultSummary(out, query, result,
                                 std::numeric_limits<size_t>::max());
  out << "\n";
  return EmitStatsJson(args, out, err, "query", [&](obs::JsonWriter& json) {
    json.Key("query");
    json.BeginObject();
    json.Key("backend");
    json.Value((*index)->Name());
    json.Key("pattern");
    json.Value(args.positional[1]);
    json.Key("occurrences");
    json.Value(static_cast<uint64_t>(result.hits.size()));
    json.Key("nodes_checked");
    json.Value(result.stats.nodes_checked);
    json.Key("link_traversals");
    json.Value(result.stats.link_traversals);
    json.Key("chain_hops");
    json.Value(result.stats.chain_hops);
    json.EndObject();
  });
}

// One result line of batch output: "[i] KIND PATTERN: <summary>", the
// summary rendered by the shared core/wire.h printer.
void PrintBatchResult(std::ostream& out, size_t idx, const Query& query,
                      const QueryResult& result) {
  out << "[" << idx << "] " << QueryKindName(query.kind) << " "
      << query.pattern << ": ";
  core::wire::PrintResultSummary(out, query, result);
  out << "\n";
}

int CmdBatch(const ParsedArgs& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 2) {
    err << "batch requires <index> <patterns.txt>\n";
    return kExitUsage;
  }
  Result<std::unique_ptr<core::Index>> index =
      OpenIndex(args, args.positional[0]);
  if (!index.ok()) return Fail(err, index.status());

  std::ifstream file(args.positional[1]);
  if (!file) {
    return Fail(err, Status::IoError("cannot open " + args.positional[1]));
  }
  const uint32_t min_len =
      std::max<uint32_t>(1, static_cast<uint32_t>(
                                OptionU64(args, "min-len").value_or(10)));
  // Batch-wide default budget; a per-line KIND@MS suffix wins.
  const uint32_t default_deadline_ms =
      static_cast<uint32_t>(OptionU64(args, "deadline-ms").value_or(0));
  std::vector<Query> queries;
  std::string line;
  while (std::getline(file, line)) {
    if (std::optional<Query> query = core::wire::ParseQueryText(line, min_len)) {
      if (query->deadline_ms == 0) query->deadline_ms = default_deadline_ms;
      queries.push_back(*std::move(query));
    }
  }
  if (queries.empty()) {
    return Fail(err, Status::InvalidArgument(args.positional[1] +
                                             " contains no queries"));
  }

  const uint32_t threads = static_cast<uint32_t>(
      OptionU64(args, "threads")
          .value_or(std::max(1u, std::thread::hardware_concurrency())));
  const uint64_t cache_mb = OptionU64(args, "cache-mb").value_or(16);
  engine::QueryEngine query_engine({.threads = threads,
                                    .cache_bytes = cache_mb << 20,
                                    .tracing =
                                        args.options.count("trace") > 0});

  WallTimer timer;
  engine::BatchStats stats;
  std::vector<QueryResult> results =
      query_engine.ExecuteBatch(**index, queries, &stats);
  const double secs = timer.ElapsedSeconds();

  for (size_t i = 0; i < queries.size(); ++i) {
    PrintBatchResult(out, i, queries[i], results[i]);
  }
  out << queries.size() << " quer(ies) on " << query_engine.thread_count()
      << " thread(s) in " << secs << " s ("
      << static_cast<uint64_t>(queries.size() / std::max(secs, 1e-9))
      << " q/s), cache hits " << stats.cache_hits << "/" << stats.queries
      << ", " << stats.search.nodes_checked << " nodes checked";
  if (stats.failed > 0) out << ", " << stats.failed << " FAILED";
  if (stats.deadline_exceeded > 0) {
    out << " (" << stats.deadline_exceeded << " deadline-exceeded)";
  }
  out << "\n";
  return EmitStatsJson(args, out, err, "batch", [&](obs::JsonWriter& json) {
    json.Key("batch");
    json.BeginObject();
    json.Key("backend");
    json.Value((*index)->Name());
    json.Key("queries");
    json.Value(stats.queries);
    json.Key("executed");
    json.Value(stats.executed);
    json.Key("cache_hits");
    json.Value(stats.cache_hits);
    json.Key("failed");
    json.Value(stats.failed);
    json.Key("retries");
    json.Value(stats.retries);
    json.Key("deadline_exceeded");
    json.Value(stats.deadline_exceeded);
    json.Key("cancelled");
    json.Value(stats.cancelled);
    json.Key("seconds");
    json.Value(secs);
    json.Key("threads");
    json.Value(query_engine.thread_count());
    json.Key("nodes_checked");
    json.Value(stats.search.nodes_checked);
    json.Key("link_traversals");
    json.Value(stats.search.link_traversals);
    json.Key("chain_hops");
    json.Value(stats.search.chain_hops);
    if (!stats.traces.empty()) {
      json.Key("traces");
      json.BeginArray();
      for (const obs::TraceContext& trace : stats.traces) {
        json.RawValue(trace.ToJson());
      }
      json.EndArray();
    }
    json.EndObject();
  });
}

// SIGTERM/SIGINT handlers may run on any thread, so they only flip this
// flag; the serve command's main loop notices and performs the actual
// drain from normal (signal-safe-free) context.
volatile std::sig_atomic_t g_drain_requested = 0;

void OnDrainSignal(int) { g_drain_requested = 1; }

// SIGHUP asks a serve over a dynamic family to reopen from its on-disk
// manifest (same flag discipline as the drain signals).
volatile std::sig_atomic_t g_reload_requested = 0;

void OnReloadSignal(int) { g_reload_requested = 1; }

int CmdServe(const ParsedArgs& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 1) {
    err << "serve requires <artifact>\n";
    return kExitUsage;
  }
  const uint64_t port = OptionU64(args, "port").value_or(0);
  if (port > 65535) {
    return Fail(err, Status::InvalidArgument("port " + std::to_string(port) +
                                             " out of range (0..65535)"));
  }
  Result<std::unique_ptr<core::Index>> index =
      OpenIndex(args, args.positional[0]);
  if (!index.ok()) return Fail(err, index.status());

  serve::Options options;
  options.port = static_cast<uint16_t>(port);
  if (auto it = args.options.find("host"); it != args.options.end()) {
    options.host = it->second;
  }
  options.threads =
      static_cast<uint32_t>(OptionU64(args, "threads").value_or(0));
  options.queue_cap = static_cast<uint32_t>(
      OptionU64(args, "queue-cap").value_or(options.queue_cap));
  options.max_inflight = static_cast<uint32_t>(
      OptionU64(args, "max-inflight").value_or(options.max_inflight));
  options.max_connections = static_cast<uint32_t>(
      OptionU64(args, "max-connections").value_or(options.max_connections));
  options.cache_bytes = OptionU64(args, "cache-mb").value_or(16) << 20;
  options.retry_limit = static_cast<uint32_t>(
      OptionU64(args, "retry-limit").value_or(options.retry_limit));
  options.retry_backoff_us = static_cast<uint32_t>(
      OptionU64(args, "retry-backoff-us").value_or(options.retry_backoff_us));
  options.tracing = args.options.count("trace") > 0;
  options.default_deadline_ms = static_cast<uint32_t>(
      OptionU64(args, "default-deadline-ms")
          .value_or(options.default_deadline_ms));
  options.max_deadline_ms = static_cast<uint32_t>(
      OptionU64(args, "max-deadline-ms").value_or(options.max_deadline_ms));
  options.idle_timeout_ms = static_cast<uint32_t>(
      OptionU64(args, "idle-timeout-ms").value_or(options.idle_timeout_ms));
  options.read_timeout_ms = static_cast<uint32_t>(
      OptionU64(args, "read-timeout-ms").value_or(options.read_timeout_ms));
  options.write_timeout_ms = static_cast<uint32_t>(
      OptionU64(args, "write-timeout-ms").value_or(options.write_timeout_ms));
  options.slow_query_ms = static_cast<uint32_t>(
      OptionU64(args, "slow-query-ms").value_or(options.slow_query_ms));
  if (options.queue_cap == 0 || options.max_inflight == 0 ||
      options.max_connections == 0) {
    return Fail(err, Status::InvalidArgument(
                         "queue-cap, max-inflight and max-connections "
                         "must be positive"));
  }

  // A dynamic family is served mutable: the wire accepts lifecycle
  // verbs against it, and SIGHUP reopens it from the manifest.
  auto* mutable_index = dynamic_cast<core::MutableIndex*>(index->get());
  options.mutable_index = mutable_index;

  serve::Server server(**index, options);
  Status status = server.Start();
  if (!status.ok()) return Fail(err, status);
  out << "serving " << (*index)->Name() << " (" << (*index)->size()
      << " characters) at " << options.host << ":" << server.port()
      << " — SIGTERM/SIGINT to drain"
      << (mutable_index != nullptr ? ", SIGHUP to reload" : "") << "\n";
  out.flush();

  g_drain_requested = 0;
  g_reload_requested = 0;
  struct sigaction action {};
  action.sa_handler = OnDrainSignal;
  struct sigaction old_term {}, old_int {};
  sigaction(SIGTERM, &action, &old_term);
  sigaction(SIGINT, &action, &old_int);
  struct sigaction reload_action {};
  reload_action.sa_handler = OnReloadSignal;
  struct sigaction old_hup {};
  sigaction(SIGHUP, &reload_action, &old_hup);
  while (g_drain_requested == 0) {
    if (g_reload_requested != 0) {
      g_reload_requested = 0;
      if (mutable_index != nullptr) {
        Status reloaded = mutable_index->Reload();
        if (reloaded.ok()) {
          out << "reloaded from manifest: generation "
              << mutable_index->generation_version() << ", "
              << mutable_index->live_documents() << " live document(s)\n";
        } else {
          out << "reload failed (old generation keeps serving): "
              << reloaded.ToString() << "\n";
        }
      } else {
        out << "SIGHUP ignored: backend '" << (*index)->Name()
            << "' is not reloadable\n";
      }
      out.flush();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  out << "draining...\n";
  out.flush();
  server.Stop();
  sigaction(SIGTERM, &old_term, nullptr);
  sigaction(SIGINT, &old_int, nullptr);
  sigaction(SIGHUP, &old_hup, nullptr);

  const serve::ServerStats final_stats = server.stats();
  out << "drained: " << final_stats.queries << " quer(ies) answered, "
      << final_stats.shed << " shed, " << final_stats.connections_accepted
      << " connection(s), " << final_stats.bytes_in << " B in / "
      << final_stats.bytes_out << " B out\n";
  return EmitStatsJson(args, out, err, "serve", [&](obs::JsonWriter& json) {
    json.Key("serve");
    json.BeginObject();
    json.Key("backend");
    json.Value((*index)->Name());
    json.Key("characters");
    json.Value((*index)->size());
    json.Key("connections_accepted");
    json.Value(final_stats.connections_accepted);
    json.Key("queries");
    json.Value(final_stats.queries);
    json.Key("shed");
    json.Value(final_stats.shed);
    json.Key("protocol_errors");
    json.Value(final_stats.protocol_errors);
    json.Key("deadline_exceeded");
    json.Value(final_stats.deadline_exceeded);
    json.Key("cancelled");
    json.Value(final_stats.cancelled);
    json.Key("idle_closed");
    json.Value(final_stats.idle_closed);
    json.Key("mutations");
    json.Value(final_stats.mutations);
    json.Key("bytes_in");
    json.Value(final_stats.bytes_in);
    json.Key("bytes_out");
    json.Value(final_stats.bytes_out);
    json.EndObject();
  });
}

// add / rm / compact: the document lifecycle against a dynamic family
// (shard::DynamicFamily, docs/LIFECYCLE.md).

Result<shard::DynamicFamily::Options> FamilyOptions(const ParsedArgs& args) {
  core::OpenOptions open_options = core::DefaultOpenOptions();
  if (auto it = args.options.find("open"); it != args.options.end()) {
    Result<core::OpenOptions> parsed = core::ParseOpenSpec(it->second);
    if (!parsed.ok()) return parsed.status();
    open_options = *parsed;
  }
  shard::DynamicFamily::Options family_options;
  family_options.open = open_options;
  return family_options;
}

int CmdAdd(const ParsedArgs& args, std::ostream& out, std::ostream& err) {
  if (args.positional.empty() || args.positional.size() > 2) {
    err << "add requires <family.spinefam> [document] (or --file=PATH)\n";
    return kExitUsage;
  }
  const std::string& path = args.positional[0];
  std::string document;
  auto file_it = args.options.find("file");
  if (file_it != args.options.end()) {
    if (args.positional.size() == 2) {
      err << "add takes either a document argument or --file, not both\n";
      return kExitUsage;
    }
    std::ifstream in(file_it->second, std::ios::binary);
    if (!in) {
      return Fail(err, Status::IoError("cannot open " + file_it->second));
    }
    std::ostringstream text;
    text << in.rdbuf();
    document = std::move(text).str();
    // Trailing newlines from text files would trip the reserved-
    // separator check; inner ones are a real error and still rejected.
    while (!document.empty() &&
           (document.back() == '\n' || document.back() == '\r')) {
      document.pop_back();
    }
  } else if (args.positional.size() == 2) {
    document = args.positional[1];
  } else {
    err << "add requires a document argument or --file=PATH\n";
    return kExitUsage;
  }

  Result<shard::DynamicFamily::Options> family_options = FamilyOptions(args);
  if (!family_options.ok()) return Fail(err, family_options.status());
  std::unique_ptr<shard::DynamicFamily> family;
  if (std::ifstream(path).good()) {
    Result<std::unique_ptr<shard::DynamicFamily>> opened =
        shard::DynamicFamily::Open(path, *family_options);
    if (!opened.ok()) return Fail(err, opened.status());
    family = std::move(*opened);
  } else {
    std::string alphabet_name = "ascii";
    if (auto it = args.options.find("alphabet"); it != args.options.end()) {
      alphabet_name = it->second;
    }
    Result<Alphabet> alphabet = AlphabetFromName(alphabet_name);
    if (!alphabet.ok()) return Fail(err, alphabet.status());
    Result<std::unique_ptr<shard::DynamicFamily>> created =
        shard::DynamicFamily::Create(path, *alphabet, *family_options);
    if (!created.ok()) return Fail(err, created.status());
    family = std::move(*created);
    out << "created " << path << " (" << alphabet->name() << ")\n";
  }
  Result<uint32_t> doc_id = family->InsertDocument(document);
  if (!doc_id.ok()) return Fail(err, doc_id.status());
  // The CLI process exits right after, so flush: an unflushed memtable
  // is volatile by contract.
  Status flushed = family->Flush();
  if (!flushed.ok()) return Fail(err, flushed);
  out << "doc " << *doc_id << " added (" << document.size()
      << " chars); generation " << family->generation_version() << ", "
      << family->frozen_shard_count() << " shard(s), "
      << family->live_documents() << " live document(s)\n";
  return 0;
}

int CmdRm(const ParsedArgs& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 2) {
    err << "rm requires <family.spinefam> <doc-id>\n";
    return kExitUsage;
  }
  char* end = nullptr;
  const uint64_t doc_id =
      std::strtoull(args.positional[1].c_str(), &end, 10);
  if (end == args.positional[1].c_str() || *end != '\0' ||
      doc_id > std::numeric_limits<uint32_t>::max()) {
    return Fail(err, Status::InvalidArgument("bad doc id '" +
                                             args.positional[1] + "'"));
  }
  Result<shard::DynamicFamily::Options> family_options = FamilyOptions(args);
  if (!family_options.ok()) return Fail(err, family_options.status());
  Result<std::unique_ptr<shard::DynamicFamily>> family =
      shard::DynamicFamily::Open(args.positional[0], *family_options);
  if (!family.ok()) return Fail(err, family.status());
  Status status = (*family)->DeleteDocument(static_cast<uint32_t>(doc_id));
  if (!status.ok()) return Fail(err, status);
  out << "doc " << doc_id << " deleted; generation "
      << (*family)->generation_version() << ", "
      << (*family)->tombstone_count() << " tombstone(s), "
      << (*family)->live_documents() << " live document(s)\n";
  return 0;
}

int CmdCompact(const ParsedArgs& args, std::ostream& out,
               std::ostream& err) {
  if (args.positional.size() != 1) {
    err << "compact requires <family.spinefam>\n";
    return kExitUsage;
  }
  Result<shard::DynamicFamily::Options> family_options = FamilyOptions(args);
  if (!family_options.ok()) return Fail(err, family_options.status());
  Result<std::unique_ptr<shard::DynamicFamily>> family =
      shard::DynamicFamily::Open(args.positional[0], *family_options);
  if (!family.ok()) return Fail(err, family.status());
  const uint32_t shards_before = (*family)->frozen_shard_count();
  const uint32_t tombstones_before = (*family)->tombstone_count();
  Status status = (*family)->Compact();
  if (!status.ok()) return Fail(err, status);
  out << "compacted " << shards_before << " -> "
      << (*family)->frozen_shard_count() << " shard(s), dropped "
      << tombstones_before << " tombstone(s); generation "
      << (*family)->generation_version() << ", "
      << (*family)->live_documents() << " live document(s)\n";
  return 0;
}

// `approx` and `hamming` are thin sugar over the unified query surface
// (`query --kind=edit|mismatch --errors=K`): they route through
// OpenIndex and Query like every other query command, so any artifact
// kind, open mode and kernel override works here too.
int CmdApprox(const ParsedArgs& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 2) {
    err << "approx requires <index> <pattern>\n";
    return kExitUsage;
  }
  const std::string& pattern = args.positional[1];
  const uint32_t max_edits =
      static_cast<uint32_t>(OptionU64(args, "max-edits").value_or(1));
  if (max_edits >= pattern.size()) {
    return Fail(err, Status::InvalidArgument(
                         "max-edits must be smaller than the pattern"));
  }
  Result<std::unique_ptr<core::Index>> index =
      OpenIndex(args, args.positional[0]);
  if (!index.ok()) return Fail(err, index.status());
  const Query query = Query::EditDistance(pattern, max_edits);
  QueryResult result = (*index)->Execute(query, nullptr, nullptr);
  if (!result.ok()) return FailResult(err, result);
  out << result.hits.size() << " hit(s) within " << max_edits
      << " edit(s)\n";
  for (const Hit& hit : result.hits) {
    out << "  pos " << hit.pos << " len " << hit.length << " edits "
        << hit.query_pos << "\n";
  }
  return 0;
}

int CmdHamming(const ParsedArgs& args, std::ostream& out,
               std::ostream& err) {
  if (args.positional.size() != 2) {
    err << "hamming requires <index> <pattern>\n";
    return kExitUsage;
  }
  const std::string& pattern = args.positional[1];
  const uint32_t max_mm =
      static_cast<uint32_t>(OptionU64(args, "max-mismatches").value_or(1));
  Result<std::unique_ptr<core::Index>> index =
      OpenIndex(args, args.positional[0]);
  if (!index.ok()) return Fail(err, index.status());
  const Query query = Query::Mismatch(pattern, max_mm);
  QueryResult result = (*index)->Execute(query, nullptr, nullptr);
  if (!result.ok()) return FailResult(err, result);
  out << result.hits.size() << " hit(s) within " << max_mm
      << " mismatch(es)\n";
  for (const Hit& hit : result.hits) {
    out << "  pos " << hit.pos << " mismatches " << hit.query_pos << "\n";
  }
  return 0;
}

int CmdLrs(const ParsedArgs& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 1) {
    err << "lrs requires <index.spine>\n";
    return kExitUsage;
  }
  Result<CompactSpineIndex> index = LoadCompactSpine(args.positional[0]);
  if (!index.ok()) return Fail(err, index.status());
  RepeatedSubstring lrs = LongestRepeatedSubstring(*index);
  out << "longest repeated substring: length " << lrs.length;
  if (lrs.length > 0) {
    std::string repeated;
    for (uint32_t i = lrs.first_end - lrs.length; i < lrs.first_end; ++i) {
      repeated.push_back(index->CharAt(i));
    }
    out << " \"" << (repeated.size() <= 60 ? repeated
                                            : repeated.substr(0, 60) + "...")
        << "\" first ending at " << lrs.first_end;
  }
  out << "\n";
  return 0;
}

int CmdStats(const ParsedArgs& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 1) {
    err << "stats requires <index>\n";
    return kExitUsage;
  }
  Result<std::unique_ptr<core::Index>> opened =
      OpenIndex(args, args.positional[0]);
  if (!opened.ok()) return Fail(err, opened.status());
  const core::Index& index = **opened;
  const bool want_json = args.options.count("json") > 0;

  // The compact image keeps its detailed layout breakdown; other
  // backends report the generic interface view.
  if (const auto* adapter =
          dynamic_cast<const core::CompactSpineAdapter*>(&index)) {
    const CompactSpineIndex& compact = adapter->backend();
    auto breakdown = compact.LogicalBytes();
    auto fanouts = compact.FanoutCountsWithExtribs();
    if (want_json) {
      out << StatsSnapshotJson("stats", [&](obs::JsonWriter& json) {
        json.Key("index");
        json.BeginObject();
        json.Key("backend");
        json.Value(index.Name());
        json.Key("open_mode");
        json.Value(index.open_mode());
        json.Key("alphabet");
        json.Value(compact.alphabet().name());
        json.Key("characters");
        json.Value(static_cast<uint64_t>(compact.size()));
        json.Key("max_lel");
        json.Value(static_cast<uint64_t>(compact.max_lel()));
        json.Key("max_pt");
        json.Value(static_cast<uint64_t>(compact.max_pt()));
        json.Key("max_prt");
        json.Value(static_cast<uint64_t>(compact.max_prt()));
        json.Key("extribs");
        json.Value(static_cast<uint64_t>(compact.extrib_count()));
        json.Key("bytes_per_char");
        json.Value(breakdown.BytesPerChar(compact.size()));
        json.Key("fanout");
        json.BeginArray();
        for (int k = 0; k < 6; ++k) {
          json.Value(static_cast<uint64_t>(fanouts[k]));
        }
        json.EndArray();
        json.EndObject();
      }) << "\n";
      return 0;
    }
    out << "open mode       : " << index.open_mode() << "\n"
        << "alphabet        : " << compact.alphabet().name() << "\n"
        << "characters      : " << compact.size() << "\n"
        << "max LEL/PT/PRT  : " << compact.max_lel() << " / "
        << compact.max_pt() << " / " << compact.max_prt() << "\n"
        << "extribs         : " << compact.extrib_count() << "\n"
        << "bytes per char  : " << breakdown.BytesPerChar(compact.size())
        << "\n"
        << "fan-out 1..4+   :";
    for (int k = 0; k < 6; ++k) out << " " << fanouts[k];
    out << "\n";
    return 0;
  }

  const auto* family = dynamic_cast<const shard::ShardedIndex*>(&index);
  const auto* dynamic = dynamic_cast<const shard::DynamicFamily*>(&index);
  if (want_json) {
    out << StatsSnapshotJson("stats", [&](obs::JsonWriter& json) {
      json.Key("index");
      json.BeginObject();
      json.Key("backend");
      json.Value(index.Name());
      json.Key("open_mode");
      json.Value(index.open_mode());
      json.Key("alphabet");
      json.Value(index.alphabet().name());
      json.Key("characters");
      json.Value(index.size());
      if (family != nullptr) {
        json.Key("shards");
        json.Value(static_cast<uint64_t>(family->shard_count()));
        json.Key("max_pattern");
        json.Value(static_cast<uint64_t>(family->max_pattern()));
      }
      if (dynamic != nullptr) {
        json.Key("generation");
        json.Value(dynamic->generation_version());
        json.Key("shards");
        json.Value(static_cast<uint64_t>(dynamic->frozen_shard_count()));
        json.Key("memtable_documents");
        json.Value(static_cast<uint64_t>(dynamic->memtable_documents()));
        json.Key("tombstones");
        json.Value(static_cast<uint64_t>(dynamic->tombstone_count()));
        json.Key("live_documents");
        json.Value(static_cast<uint64_t>(dynamic->live_documents()));
      }
      json.Key("memory_bytes");
      json.Value(index.MemoryBytes());
      json.EndObject();
    }) << "\n";
    return 0;
  }
  out << "backend         : " << index.Name() << "\n"
      << "open mode       : " << index.open_mode() << "\n"
      << "alphabet        : " << index.alphabet().name() << "\n"
      << "characters      : " << index.size() << "\n";
  if (family != nullptr) {
    out << "shards          : " << family->shard_count() << "\n"
        << "max pattern     : " << family->max_pattern() << "\n";
  }
  if (dynamic != nullptr) {
    out << "generation      : " << dynamic->generation_version() << "\n"
        << "frozen shards   : " << dynamic->frozen_shard_count() << "\n"
        << "memtable docs   : " << dynamic->memtable_documents() << "\n"
        << "tombstones      : " << dynamic->tombstone_count() << "\n"
        << "live documents  : " << dynamic->live_documents() << "\n";
  }
  out << "memory bytes    : " << index.MemoryBytes() << "\n";
  return 0;
}

int CmdSearch(const ParsedArgs& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 2) {
    err << "search requires <index.spine> <query.fa>\n";
    return kExitUsage;
  }
  Result<CompactSpineIndex> index = LoadCompactSpine(args.positional[0]);
  if (!index.ok()) return Fail(err, index.status());
  Result<std::string> query = LoadFirstSequence(args.positional[1], out);
  if (!query.ok()) return Fail(err, query.status());
  uint32_t min_len =
      static_cast<uint32_t>(OptionU64(args, "min-len").value_or(20));
  if (min_len == 0) min_len = 1;

  WallTimer timer;
  QueryResult result = ExecuteQuery(
      *index,
      Query::MaximalMatches(*query, min_len, /*expand_occurrences=*/true));
  // Hits arrive grouped: all occurrences of one maximal match are
  // consecutive and share (query_pos, length).
  std::vector<std::pair<size_t, size_t>> groups;  // [begin, end) into hits
  for (size_t i = 0; i < result.hits.size();) {
    size_t j = i;
    while (j < result.hits.size() &&
           result.hits[j].query_pos == result.hits[i].query_pos &&
           result.hits[j].length == result.hits[i].length) {
      ++j;
    }
    groups.emplace_back(i, j);
    i = j;
  }
  out << groups.size() << " maximal match(es) >= " << min_len
      << " chars in " << timer.ElapsedSeconds() << " s ("
      << result.stats.nodes_checked << " nodes checked)\n";
  for (const auto& [begin, end] : groups) {
    const Hit& first = result.hits[begin];
    out << "query[" << first.query_pos << ".."
        << first.query_pos + first.length << ") len " << first.length
        << " at";
    for (size_t i = begin; i < end && i < begin + 16; ++i) {
      out << " " << result.hits[i].pos;
    }
    if (end - begin > 16) {
      out << " (+" << end - begin - 16 << " more)";
    }
    out << "\n";
  }
  return 0;
}

int CmdAlign(const ParsedArgs& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 2) {
    err << "align requires <reference.fa> <query.fa>\n";
    return kExitUsage;
  }
  Result<std::string> reference = LoadFirstSequence(args.positional[0], out);
  if (!reference.ok()) return Fail(err, reference.status());
  Result<std::string> query = LoadFirstSequence(args.positional[1], out);
  if (!query.ok()) return Fail(err, query.status());

  align::AlignOptions options;
  options.min_anchor_len =
      static_cast<uint32_t>(OptionU64(args, "min-anchor").value_or(20));
  options.unique_anchors_only = args.options.count("mum") > 0;

  WallTimer timer;
  Result<align::AlignmentResult> result =
      align::AlignSequences(*reference, *query, options);
  if (!result.ok()) return Fail(err, result.status());
  out << "aligned in " << timer.ElapsedSeconds() << " s\n"
      << "anchors   : " << result->chain.anchors.size() << "\n"
      << "anchored  : " << result->anchored_bases << " bases\n"
      << "gap edits : " << result->gap_edits << "\n"
      << "coverage  : " << result->QueryCoverage(query->size()) * 100.0
      << "%\n"
      << "identity  : " << result->Identity() * 100.0 << "%\n";
  return 0;
}

int CmdGenerate(const ParsedArgs& args, std::ostream& out,
                std::ostream& err) {
  if (args.positional.size() != 1) {
    err << "generate requires <output.fa>\n";
    return kExitUsage;
  }
  std::string alphabet_name = "dna";
  if (auto it = args.options.find("alphabet"); it != args.options.end()) {
    alphabet_name = it->second;
  }
  Result<Alphabet> alphabet = AlphabetFromName(alphabet_name);
  if (!alphabet.ok()) return Fail(err, alphabet.status());
  if (alphabet->kind() != Alphabet::Kind::kDna &&
      alphabet->kind() != Alphabet::Kind::kProtein) {
    return Fail(err, Status::InvalidArgument(
                         "generate supports dna or protein alphabets"));
  }
  seq::GeneratorOptions options;
  options.length = OptionU64(args, "length").value_or(1'000'000);
  options.seed = OptionU64(args, "seed").value_or(1);
  std::string sequence = seq::GenerateSequence(*alphabet, options);
  seq::FastaRecord record;
  record.id = "synthetic";
  record.comment = "spine_tool generate length=" +
                   std::to_string(options.length) +
                   " seed=" + std::to_string(options.seed);
  record.sequence = std::move(sequence);
  Status status = seq::WriteFasta(args.positional[0], {record});
  if (!status.ok()) return Fail(err, status);
  out << "wrote " << options.length << " " << alphabet->name()
      << " characters to " << args.positional[0] << "\n";
  return 0;
}

// `spine verify`: integrity check without modifying anything. Artifact
// dispatch is the registry's (core/registry.h) — the same magic sniff
// every other command uses — with one extra page-file pre-pass:
//   compact / generalized images — whole-image checksum + structural
//       Validate (both run inside the registry open)
//   page files — superblock, then a full page-checksum scan BEFORE the
//       registry open, so a sidecar-less file still gets page-level
//       checks; with a sidecar the disk index is opened and
//       structurally verified
//   .spinefam — manifest + per-shard-file checksums (inside Load) plus
//       the family's structural self-check
// Exit codes follow the table in kUsage: 3 means corruption detected.
int CmdVerify(const ParsedArgs& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 1) {
    err << "verify requires <artifact>\n";
    return kExitUsage;
  }
  const std::string& path = args.positional[0];
  Result<uint32_t> magic = core::BackendRegistry::SniffMagic(path);
  if (!magic.ok()) return Fail(err, magic.status());

  if (*magic == core::kPageFileMagic) {
    uint64_t pages = 0;
    {
      Result<storage::PageFile> file =
          storage::PageFile::Open(path, storage::PageFile::SyncMode::kNone);
      if (!file.ok()) return Fail(err, file.status());
      pages = file->page_count();
      std::vector<uint8_t> page(storage::kPageSize);
      for (uint64_t p = 0; p < pages; ++p) {
        Status status = file->ReadPage(p, page.data());
        if (status.ok()) status = storage::VerifyPageChecksum(p, page.data());
        // VerifyPageChecksum already names the page in its message.
        if (!status.ok()) return Fail(err, status);
      }
    }
    out << "superblock OK, " << pages << " page checksum(s) OK\n";

    // A disk index leaves a metadata sidecar next to the page file;
    // without one there is no index to reopen, and the page-level
    // verdict above is all there is.
    Result<uint32_t> meta =
        core::BackendRegistry::SniffMagic(path + ".meta");
    if (!meta.ok()) {
      if (meta.status().code() == StatusCode::kIoError) {
        out << "no metadata sidecar (" << path
            << ".meta); page-level checks only\n";
        return 0;
      }
      return Fail(err, Status::Corruption(path + ".meta is truncated"));
    }
  }

  Result<std::unique_ptr<core::Index>> opened = OpenIndex(args, path);
  if (!opened.ok()) return Fail(err, opened.status());
  const core::Index& index = **opened;
  Status status = index.VerifyStructure();
  if (!status.ok()) return Fail(err, status);

  const core::BackendInfo* info =
      core::BackendRegistry::Default().FindByKind(index.kind());
  out << (info != nullptr ? info->artifact : index.Name()) << " OK: "
      << index.size() << " characters";
  switch (index.kind()) {
    case core::IndexKind::kCompactSpine:
    case core::IndexKind::kGeneralizedCompact:
      out << ", alphabet " << index.alphabet().name()
          << ", checksum and structure verified";
      break;
    case core::IndexKind::kDiskSpine:
      out << ", structure verified";
      break;
    case core::IndexKind::kDiskSuffixTree: {
      const auto& tree =
          static_cast<const core::DiskSuffixTreeAdapter&>(index);
      out << ", " << tree.backend().node_count() << " node(s)";
      break;
    }
    case core::IndexKind::kSharded: {
      const auto& family = static_cast<const shard::ShardedIndex&>(index);
      out << ", " << family.shard_count()
          << " shard(s), manifest and shard checksums verified";
      break;
    }
    case core::IndexKind::kDynamic: {
      const auto& family = static_cast<const shard::DynamicFamily&>(index);
      out << ", generation " << family.generation_version() << ", "
          << family.frozen_shard_count() << " shard(s), "
          << family.live_documents()
          << " live document(s), manifest and shard checksums verified";
      break;
    }
    default:
      break;
  }
  out << "\n";
  return 0;
}

}  // namespace

int Run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err) {
  if (args.empty()) {
    err << kUsage;
    return kExitUsage;
  }
  const std::string& command = args[0];
  ParsedArgs parsed = Parse(args, 1);
  if (auto it = parsed.options.find("kernel"); it != parsed.options.end()) {
    Status forced = kernel::ForceByName(it->second);
    if (!forced.ok()) {
      err << "--kernel: " << forced.message() << "\n";
      return ExitCodeFor(forced.code());
    }
  }
  if (command == "build") return CmdBuild(parsed, out, err);
  if (command == "gbuild") return CmdGBuild(parsed, out, err);
  if (command == "gquery") return CmdGQuery(parsed, out, err);
  if (command == "query") return CmdQuery(parsed, out, err);
  if (command == "batch") return CmdBatch(parsed, out, err);
  if (command == "serve") return CmdServe(parsed, out, err);
  if (command == "add") return CmdAdd(parsed, out, err);
  if (command == "rm") return CmdRm(parsed, out, err);
  if (command == "compact") return CmdCompact(parsed, out, err);
  if (command == "approx") return CmdApprox(parsed, out, err);
  if (command == "hamming") return CmdHamming(parsed, out, err);
  if (command == "lrs") return CmdLrs(parsed, out, err);
  if (command == "stats") return CmdStats(parsed, out, err);
  if (command == "search") return CmdSearch(parsed, out, err);
  if (command == "align") return CmdAlign(parsed, out, err);
  if (command == "generate") return CmdGenerate(parsed, out, err);
  if (command == "verify") return CmdVerify(parsed, out, err);
  if (command == "help" || command == "--help") {
    out << kUsage;
    return 0;
  }
  err << "unknown command '" << command << "'\n" << kUsage;
  return kExitUsage;
}

}  // namespace spine::cli
