#include "tools/cli.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>

#include "align/aligner.h"
#include "align/approximate.h"
#include "align/hamming.h"
#include "common/timer.h"
#include "compact/compact_spine.h"
#include "compact/generalized_compact.h"
#include "compact/serializer.h"
#include "core/matcher.h"
#include "seq/fasta.h"
#include "seq/generator.h"

namespace spine::cli {

namespace {

constexpr const char* kUsage =
    "usage: spine_tool <command> [args]\n"
    "commands:\n"
    "  build <input.fa> <index.spine> [--alphabet=dna|protein|ascii]\n"
    "  gbuild <input.fa> <index.spineg> [--alphabet=dna|protein|ascii]\n"
    "      index EVERY record of a multi-FASTA file together\n"
    "  gquery <index.spineg> <pattern>\n"
        "  query <index.spine> <pattern>\n"
    "  approx <index.spine> <pattern> [--max-edits=K]\n"
    "  hamming <index.spine> <pattern> [--max-mismatches=K]\n"
    "  lrs <index.spine>\n"
    "  stats <index.spine>\n"
    "  search <index.spine> <query.fa> [--min-len=N]\n"
    "  align <reference.fa> <query.fa> [--min-anchor=N] [--mum]\n"
    "  generate <output.fa> [--length=N] [--seed=S] "
    "[--alphabet=dna|protein]\n";

// Splits args into positionals and --key=value / --flag options.
struct ParsedArgs {
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;
};

ParsedArgs Parse(const std::vector<std::string>& args, size_t skip) {
  ParsedArgs parsed;
  for (size_t i = skip; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg.rfind("--", 0) == 0) {
      size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        parsed.options[arg.substr(2)] = "true";
      } else {
        parsed.options[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      parsed.positional.push_back(arg);
    }
  }
  return parsed;
}

std::optional<uint64_t> OptionU64(const ParsedArgs& args,
                                  const std::string& key) {
  auto it = args.options.find(key);
  if (it == args.options.end()) return std::nullopt;
  char* end = nullptr;
  uint64_t value = std::strtoull(it->second.c_str(), &end, 10);
  if (end == it->second.c_str()) return std::nullopt;
  return value;
}

Result<Alphabet> AlphabetFromName(const std::string& name) {
  if (name == "dna") return Alphabet::Dna();
  if (name == "protein") return Alphabet::Protein();
  if (name == "ascii") return Alphabet::Ascii();
  return Status::InvalidArgument("unknown alphabet '" + name +
                                 "' (use dna, protein or ascii)");
}

Result<std::string> LoadFirstSequence(const std::string& path,
                                      std::ostream& out) {
  Result<std::vector<seq::FastaRecord>> records = seq::ReadFasta(path);
  if (!records.ok()) return records.status();
  if (records->empty()) {
    return Status::InvalidArgument(path + " contains no FASTA records");
  }
  if (records->size() > 1) {
    out << "note: " << path << " has " << records->size()
        << " records; using the first (" << (*records)[0].id << ")\n";
  }
  return std::move((*records)[0].sequence);
}

int Fail(std::ostream& err, const Status& status) {
  err << "error: " << status.ToString() << "\n";
  return 1;
}

int CmdBuild(const ParsedArgs& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 2) {
    err << "build requires <input.fa> <index.spine>\n";
    return 2;
  }
  std::string alphabet_name = "dna";
  if (auto it = args.options.find("alphabet"); it != args.options.end()) {
    alphabet_name = it->second;
  }
  Result<Alphabet> alphabet = AlphabetFromName(alphabet_name);
  if (!alphabet.ok()) return Fail(err, alphabet.status());
  Result<std::string> sequence = LoadFirstSequence(args.positional[0], out);
  if (!sequence.ok()) return Fail(err, sequence.status());

  WallTimer timer;
  CompactSpineIndex index(*alphabet);
  Status status = index.AppendString(*sequence);
  if (!status.ok()) return Fail(err, status);
  status = SaveCompactSpine(index, args.positional[1]);
  if (!status.ok()) return Fail(err, status);
  out << "indexed " << index.size() << " characters in "
      << timer.ElapsedSeconds() << " s ("
      << index.LogicalBytes().BytesPerChar(index.size())
      << " bytes/char) -> " << args.positional[1] << "\n";
  return 0;
}

int CmdGBuild(const ParsedArgs& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 2) {
    err << "gbuild requires <input.fa> <index.spineg>\n";
    return 2;
  }
  std::string alphabet_name = "dna";
  if (auto it = args.options.find("alphabet"); it != args.options.end()) {
    alphabet_name = it->second;
  }
  Result<Alphabet> alphabet = AlphabetFromName(alphabet_name);
  if (!alphabet.ok()) return Fail(err, alphabet.status());
  Result<std::vector<seq::FastaRecord>> records =
      seq::ReadFasta(args.positional[0]);
  if (!records.ok()) return Fail(err, records.status());
  if (records->empty()) {
    return Fail(err, Status::InvalidArgument(args.positional[0] +
                                             " contains no FASTA records"));
  }
  WallTimer timer;
  GeneralizedCompactSpine index(*alphabet);
  for (seq::FastaRecord& record : *records) {
    Status status = index.AddString(record.sequence, record.id);
    if (!status.ok()) {
      return Fail(err, Status::InvalidArgument("record " + record.id + ": " +
                                               status.ToString()));
    }
  }
  Status status = index.Save(args.positional[1]);
  if (!status.ok()) return Fail(err, status);
  out << "indexed " << index.string_count() << " records ("
      << index.total_characters() << " characters incl. separators) in "
      << timer.ElapsedSeconds() << " s -> " << args.positional[1] << "\n";
  return 0;
}

int CmdGQuery(const ParsedArgs& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 2) {
    err << "gquery requires <index.spineg> <pattern>\n";
    return 2;
  }
  Result<GeneralizedCompactSpine> index =
      GeneralizedCompactSpine::Load(args.positional[0]);
  if (!index.ok()) return Fail(err, index.status());
  auto hits = index->FindAll(args.positional[1]);
  out << hits.size() << " occurrence(s)\n";
  for (const auto& hit : hits) {
    out << "  " << index->StringName(hit.string_id) << " @ " << hit.offset
        << "\n";
  }
  return 0;
}

int CmdQuery(const ParsedArgs& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 2) {
    err << "query requires <index.spine> <pattern>\n";
    return 2;
  }
  Result<CompactSpineIndex> index = LoadCompactSpine(args.positional[0]);
  if (!index.ok()) return Fail(err, index.status());
  std::vector<uint32_t> positions = index->FindAll(args.positional[1]);
  out << positions.size() << " occurrence(s)";
  for (uint32_t pos : positions) out << " " << pos;
  out << "\n";
  return 0;
}

int CmdApprox(const ParsedArgs& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 2) {
    err << "approx requires <index.spine> <pattern>\n";
    return 2;
  }
  Result<CompactSpineIndex> index = LoadCompactSpine(args.positional[0]);
  if (!index.ok()) return Fail(err, index.status());
  const std::string& pattern = args.positional[1];
  uint32_t max_edits =
      static_cast<uint32_t>(OptionU64(args, "max-edits").value_or(1));
  if (max_edits >= pattern.size()) {
    return Fail(err, Status::InvalidArgument(
                         "max-edits must be smaller than the pattern"));
  }
  auto hits = align::FindApproximate(*index, pattern, max_edits);
  out << hits.size() << " hit(s) within " << max_edits << " edit(s)\n";
  for (const auto& hit : hits) {
    out << "  pos " << hit.data_pos << " len " << hit.length << " edits "
        << hit.edits << "\n";
  }
  return 0;
}

int CmdHamming(const ParsedArgs& args, std::ostream& out,
               std::ostream& err) {
  if (args.positional.size() != 2) {
    err << "hamming requires <index.spine> <pattern>\n";
    return 2;
  }
  Result<CompactSpineIndex> index = LoadCompactSpine(args.positional[0]);
  if (!index.ok()) return Fail(err, index.status());
  const std::string& pattern = args.positional[1];
  uint32_t max_mm =
      static_cast<uint32_t>(OptionU64(args, "max-mismatches").value_or(1));
  auto hits = align::FindHammingMatches(*index, pattern, max_mm);
  out << hits.size() << " hit(s) within " << max_mm << " mismatch(es)\n";
  for (const auto& hit : hits) {
    out << "  pos " << hit.data_pos << " mismatches " << hit.mismatches
        << "\n";
  }
  return 0;
}

int CmdLrs(const ParsedArgs& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 1) {
    err << "lrs requires <index.spine>\n";
    return 2;
  }
  Result<CompactSpineIndex> index = LoadCompactSpine(args.positional[0]);
  if (!index.ok()) return Fail(err, index.status());
  RepeatedSubstring lrs = LongestRepeatedSubstring(*index);
  out << "longest repeated substring: length " << lrs.length;
  if (lrs.length > 0) {
    std::string repeated;
    for (uint32_t i = lrs.first_end - lrs.length; i < lrs.first_end; ++i) {
      repeated.push_back(index->CharAt(i));
    }
    out << " \"" << (repeated.size() <= 60 ? repeated
                                            : repeated.substr(0, 60) + "...")
        << "\" first ending at " << lrs.first_end;
  }
  out << "\n";
  return 0;
}

int CmdStats(const ParsedArgs& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 1) {
    err << "stats requires <index.spine>\n";
    return 2;
  }
  Result<CompactSpineIndex> index = LoadCompactSpine(args.positional[0]);
  if (!index.ok()) return Fail(err, index.status());
  auto breakdown = index->LogicalBytes();
  auto fanouts = index->FanoutCountsWithExtribs();
  out << "alphabet        : " << index->alphabet().name() << "\n"
      << "characters      : " << index->size() << "\n"
      << "max LEL/PT/PRT  : " << index->max_lel() << " / " << index->max_pt()
      << " / " << index->max_prt() << "\n"
      << "extribs         : " << index->extrib_count() << "\n"
      << "bytes per char  : " << breakdown.BytesPerChar(index->size()) << "\n"
      << "fan-out 1..4+   :";
  for (int k = 0; k < 6; ++k) out << " " << fanouts[k];
  out << "\n";
  return 0;
}

int CmdSearch(const ParsedArgs& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 2) {
    err << "search requires <index.spine> <query.fa>\n";
    return 2;
  }
  Result<CompactSpineIndex> index = LoadCompactSpine(args.positional[0]);
  if (!index.ok()) return Fail(err, index.status());
  Result<std::string> query = LoadFirstSequence(args.positional[1], out);
  if (!query.ok()) return Fail(err, query.status());
  uint32_t min_len =
      static_cast<uint32_t>(OptionU64(args, "min-len").value_or(20));
  if (min_len == 0) min_len = 1;

  WallTimer timer;
  SearchStats stats;
  auto matches = GenericFindMaximalMatches(*index, *query, min_len, &stats);
  auto expanded = GenericCollectAllOccurrences(*index, matches);
  out << matches.size() << " maximal match(es) >= " << min_len
      << " chars in " << timer.ElapsedSeconds() << " s ("
      << stats.nodes_checked << " nodes checked)\n";
  for (const auto& occ : expanded) {
    out << "query[" << occ.match.query_pos << ".."
        << occ.match.query_pos + occ.match.length << ") len "
        << occ.match.length << " at";
    for (size_t i = 0; i < occ.data_positions.size() && i < 16; ++i) {
      out << " " << occ.data_positions[i];
    }
    if (occ.data_positions.size() > 16) {
      out << " (+" << occ.data_positions.size() - 16 << " more)";
    }
    out << "\n";
  }
  return 0;
}

int CmdAlign(const ParsedArgs& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 2) {
    err << "align requires <reference.fa> <query.fa>\n";
    return 2;
  }
  Result<std::string> reference = LoadFirstSequence(args.positional[0], out);
  if (!reference.ok()) return Fail(err, reference.status());
  Result<std::string> query = LoadFirstSequence(args.positional[1], out);
  if (!query.ok()) return Fail(err, query.status());

  align::AlignOptions options;
  options.min_anchor_len =
      static_cast<uint32_t>(OptionU64(args, "min-anchor").value_or(20));
  options.unique_anchors_only = args.options.count("mum") > 0;

  WallTimer timer;
  Result<align::AlignmentResult> result =
      align::AlignSequences(*reference, *query, options);
  if (!result.ok()) return Fail(err, result.status());
  out << "aligned in " << timer.ElapsedSeconds() << " s\n"
      << "anchors   : " << result->chain.anchors.size() << "\n"
      << "anchored  : " << result->anchored_bases << " bases\n"
      << "gap edits : " << result->gap_edits << "\n"
      << "coverage  : " << result->QueryCoverage(query->size()) * 100.0
      << "%\n"
      << "identity  : " << result->Identity() * 100.0 << "%\n";
  return 0;
}

int CmdGenerate(const ParsedArgs& args, std::ostream& out,
                std::ostream& err) {
  if (args.positional.size() != 1) {
    err << "generate requires <output.fa>\n";
    return 2;
  }
  std::string alphabet_name = "dna";
  if (auto it = args.options.find("alphabet"); it != args.options.end()) {
    alphabet_name = it->second;
  }
  Result<Alphabet> alphabet = AlphabetFromName(alphabet_name);
  if (!alphabet.ok()) return Fail(err, alphabet.status());
  if (alphabet->kind() != Alphabet::Kind::kDna &&
      alphabet->kind() != Alphabet::Kind::kProtein) {
    return Fail(err, Status::InvalidArgument(
                         "generate supports dna or protein alphabets"));
  }
  seq::GeneratorOptions options;
  options.length = OptionU64(args, "length").value_or(1'000'000);
  options.seed = OptionU64(args, "seed").value_or(1);
  std::string sequence = seq::GenerateSequence(*alphabet, options);
  seq::FastaRecord record;
  record.id = "synthetic";
  record.comment = "spine_tool generate length=" +
                   std::to_string(options.length) +
                   " seed=" + std::to_string(options.seed);
  record.sequence = std::move(sequence);
  Status status = seq::WriteFasta(args.positional[0], {record});
  if (!status.ok()) return Fail(err, status);
  out << "wrote " << options.length << " " << alphabet->name()
      << " characters to " << args.positional[0] << "\n";
  return 0;
}

}  // namespace

int Run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err) {
  if (args.empty()) {
    err << kUsage;
    return 2;
  }
  const std::string& command = args[0];
  ParsedArgs parsed = Parse(args, 1);
  if (command == "build") return CmdBuild(parsed, out, err);
  if (command == "gbuild") return CmdGBuild(parsed, out, err);
  if (command == "gquery") return CmdGQuery(parsed, out, err);
  if (command == "query") return CmdQuery(parsed, out, err);
  if (command == "approx") return CmdApprox(parsed, out, err);
  if (command == "hamming") return CmdHamming(parsed, out, err);
  if (command == "lrs") return CmdLrs(parsed, out, err);
  if (command == "stats") return CmdStats(parsed, out, err);
  if (command == "search") return CmdSearch(parsed, out, err);
  if (command == "align") return CmdAlign(parsed, out, err);
  if (command == "generate") return CmdGenerate(parsed, out, err);
  if (command == "help" || command == "--help") {
    out << kUsage;
    return 0;
  }
  err << "unknown command '" << command << "'\n" << kUsage;
  return 2;
}

}  // namespace spine::cli
