// spine_tool command-line interface, factored into a library so the
// command implementations are unit-testable without spawning processes.
//
// Subcommands:
//   build <input.fa> <index.spine> [--alphabet=dna|protein|ascii]
//       Build a compact SPINE index from the first FASTA record.
//   gbuild <input.fa> <index.spineg> [--alphabet=...]
//       Index every record of a multi-FASTA file into one generalized
//       index (hits report record id + offset).
//   query <index.spine> <pattern>
//       Print all start positions of an exact pattern.
//   batch <index.spine> <patterns.txt> [--threads=N] [--cache-mb=M]
//         [--min-len=N]
//       Execute a file of heterogeneous queries (findall / contains /
//       match / ms, one per line) concurrently through the batch
//       QueryEngine; results print in input order.
//   serve <artifact> [--port=N] [--host=ADDR] ...
//       Serve queries over TCP: the core/wire.h framed protocol with a
//       JSON-lines fallback. SIGTERM/SIGINT drains gracefully. See
//       docs/SERVING.md.
//   gquery <index.spineg> <pattern>
//       Like query, over a generalized index.
//   approx <index.spine> <pattern> [--max-edits=K]
//       Approximate (edit-distance) search via seed-and-extend.
//   hamming <index.spine> <pattern> [--max-mismatches=K]
//       k-mismatch search via threshold-checked DFS on the index.
//   lrs <index.spine>
//       Longest repeated substring (max LEL over the backbone).
//   stats <index.spine>
//       Structure statistics: size, label maxima, fan-outs, bytes/char.
//   search <index.spine> <query.fa> [--min-len=N]
//       All maximal matching substrings of the query vs the index.
//   align <reference.fa> <query.fa> [--min-anchor=N] [--mum]
//       Anchor-chain alignment; prints coverage/identity.
//   generate <output.fa> [--length=N] [--seed=S] [--alphabet=dna|protein]
//       Write a synthetic repeat-rich sequence.

#ifndef SPINE_TOOLS_CLI_H_
#define SPINE_TOOLS_CLI_H_

#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"

namespace spine::cli {

// THE exit-code table: the single source of truth for what spine_tool
// returns to the shell. Extend-only — scripts and the CI smoke jobs
// match on these numbers, so existing entries must never be renumbered.
// ExitCodeFor() maps StatusCode onto it; tests/cli_test.cc asserts the
// mapping stays total and stable.
enum ExitCode : int {
  kExitOk = 0,
  kExitIoError = 1,            // kIoError
  kExitUsage = 2,              // malformed command line (no Status)
  kExitCorruption = 3,         // kCorruption
  kExitInvalidArgument = 4,    // kInvalidArgument
  kExitNotFound = 5,           // kNotFound
  kExitResourceExhausted = 6,  // kResourceExhausted
  kExitPrecondition = 7,       // kFailedPrecondition, kOutOfRange
  kExitOverloaded = 8,          // kOverloaded (server shed the query)
  kExitProtocolError = 9,       // kProtocolError (bad wire bytes)
  kExitDeadlineExceeded = 10,   // kDeadlineExceeded (time budget spent)
  kExitCancelled = 11,          // kCancelled (peer gone / shutdown)
};

// Maps a Status onto the table above. Usage errors (malformed command
// lines) return kExitUsage directly, bypassing this: there is no
// StatusCode for "you typed the flags wrong".
int ExitCodeFor(StatusCode code);

// Runs one invocation; `args` excludes the program name. Returns the
// process exit code (0 on success). All output goes to the streams.
int Run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err);

}  // namespace spine::cli

#endif  // SPINE_TOOLS_CLI_H_
