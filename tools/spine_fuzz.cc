// spine_fuzz: time-bounded randomized cross-validation harness.
//
// Repeatedly generates random strings (biased toward small alphabets,
// which maximize rib/extrib density), builds the reference and compact
// SPINE indexes plus the suffix-tree and DAWG baselines, and checks
// LEL values, all-occurrence sets and maximal matches against the
// brute-force oracle. Exits non-zero on the first divergence, printing
// a reproducer.
//
//   $ ./tools/spine_fuzz [seconds] [seed]
//   $ ./tools/spine_fuzz manifest [seconds] [seed]
//   $ ./tools/spine_fuzz frames [seconds] [seed]
//
// The default mode interleaves every phase; `manifest` mode spends the
// whole budget corrupting .spinefam families (truncations, bit flips,
// byte overwrites in the manifest and in shard files) and demands that
// ShardedIndex::Load rejects each with kCorruption — never a crash,
// never a silently wrong index. `frames` mode corrupts serving-wire
// byte streams and JSON lines (core/wire.h) the same way and demands
// every mutation is either decoded consistently or rejected with
// kProtocolError — never a crash, never a silently misread envelope.
//
// This is the harness that found the paper's extrib PRT ambiguity
// (DESIGN.md §5); it runs for 2 seconds in CI.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/timer.h"
#include "compact/compact_spine.h"
#include "compact/serializer.h"
#include "core/matcher.h"
#include "core/spine_index.h"
#include "core/wire.h"
#include "dawg/suffix_automaton.h"
#include "naive/naive_index.h"
#include "shard/dynamic_family.h"
#include "shard/sharded_index.h"
#include "storage/mmap_region.h"
#include "suffix_tree/st_matcher.h"
#include "suffix_tree/suffix_tree.h"

#include <unistd.h>

namespace {

int Fail(const std::string& what, const std::string& s,
         const std::string& pattern) {
  std::fprintf(stderr, "FUZZ FAILURE: %s\n  string : %s\n  pattern: %s\n",
               what.c_str(), s.c_str(), pattern.c_str());
  return 1;
}

// Image-robustness phase: serialize the index, corrupt the bytes, and
// demand that LoadCompactSpine either rejects the image with a clean
// Status or yields an index that still answers correctly — it must
// never crash and never silently return a broken index. Every mutated
// image is also opened through the zero-copy mmap path (PR 8), which
// must reach exactly the heap path's verdict, and when both load,
// exactly its answers.
int FuzzSerializedImage(spine::Rng& rng, const spine::CompactSpineIndex& index,
                        const std::string& s, uint64_t* checks) {
  using namespace spine;
  std::ostringstream saved;
  if (!SaveCompactSpineToStream(index, saved).ok()) {
    return Fail("image save failed", s, "");
  }
  const std::string image = saved.str();
  const std::string mmap_path =
      (std::filesystem::temp_directory_path() /
       ("spine_fuzz_img_" + std::to_string(::getpid()) + ".tmp"))
          .string();
  for (int trial = 0; trial < 6; ++trial) {
    ++*checks;
    std::string mutated = image;
    switch (rng.Below(3)) {
      case 0:  // truncation (including an empty file)
        mutated.resize(rng.Below(mutated.size() + 1));
        break;
      case 1:  // single bit flip
        if (!mutated.empty()) {
          size_t pos = rng.Below(mutated.size());
          mutated[pos] = static_cast<char>(
              static_cast<unsigned char>(mutated[pos]) ^ (1u << rng.Below(8)));
        }
        break;
      default:  // random byte overwrite
        if (!mutated.empty()) {
          mutated[rng.Below(mutated.size())] =
              static_cast<char>(rng.Below(256));
        }
        break;
    }
    std::istringstream in(mutated);
    Result<CompactSpineIndex> loaded = LoadCompactSpineFromStream(in);
    const StatusCode heap_code =
        loaded.ok() ? StatusCode::kOk : loaded.status().code();

    {
      std::ofstream out(mmap_path, std::ios::binary | std::ios::trunc);
      out.write(mutated.data(), static_cast<std::streamsize>(mutated.size()));
    }
    StatusCode mmap_code = StatusCode::kOk;
    Result<CompactSpineIndex> mapped = Status::OK();
    auto region = storage::MmapRegion::Map(mmap_path);
    if (!region.ok()) {
      mmap_code = region.status().code();
    } else {
      mapped = LoadCompactSpineFromMemory((*region)->data(), (*region)->size(),
                                          /*verify=*/true, *region);
      if (!mapped.ok()) mmap_code = mapped.status().code();
    }
    if (mmap_code != heap_code) {
      std::fprintf(stderr, "  heap verdict: %d  mmap verdict: %d\n",
                   static_cast<int>(heap_code), static_cast<int>(mmap_code));
      return Fail("heap/mmap image verdicts diverge", s, "");
    }
    if (!loaded.ok()) continue;  // clean rejection is a pass (both paths)
    // The mutation survived loading (e.g. it restored the original
    // bytes); whatever came back must still answer correctly — on both
    // open paths.
    std::string pattern = s.substr(0, std::min<size_t>(s.size(), 4));
    if (loaded->FindAll(pattern) != naive::FindAllOccurrences(s, pattern)) {
      return Fail("mutated image loaded but answers wrong", s, pattern);
    }
    if (mapped->FindAll(pattern) != loaded->FindAll(pattern)) {
      return Fail("mmap-opened mutated image answers differently", s, pattern);
    }
  }
  return 0;
}

// Applies one random truncation / bit flip / byte overwrite to `bytes`.
void MutateBytes(spine::Rng& rng, std::string* bytes) {
  switch (rng.Below(3)) {
    case 0:  // truncation (including an empty file)
      bytes->resize(rng.Below(bytes->size() + 1));
      break;
    case 1:  // single bit flip
      if (!bytes->empty()) {
        size_t pos = rng.Below(bytes->size());
        (*bytes)[pos] = static_cast<char>(
            static_cast<unsigned char>((*bytes)[pos]) ^ (1u << rng.Below(8)));
      }
      break;
    default:  // random byte overwrite
      if (!bytes->empty()) {
        (*bytes)[rng.Below(bytes->size())] =
            static_cast<char>(rng.Below(256));
      }
      break;
  }
}

// Manifest-robustness phase: save a sharded family, corrupt the
// manifest or one shard file on disk, and demand that
// ShardedIndex::Load rejects the family with kCorruption. Loading an
// untouched family (a mutation that happened to be the identity) must
// still succeed.
int FuzzShardManifest(spine::Rng& rng, const std::string& s,
                      const std::filesystem::path& dir, uint64_t* checks) {
  using namespace spine;
  auto family = shard::ShardedIndex::Build(
      Alphabet::Dna(), s,
      {.shards = 1 + static_cast<uint32_t>(rng.Below(4)),
       .max_pattern = 4 + static_cast<uint32_t>(rng.Below(60))});
  if (!family.ok()) return Fail("shard build failed", s, "");
  const std::string path = (dir / "family.spinefam").string();
  if (!(*family)->Save(path).ok()) return Fail("shard save failed", s, "");

  std::vector<std::string> files = {path};
  for (uint32_t i = 0; i < (*family)->shard_count(); ++i) {
    files.push_back(path + ".shard" + std::to_string(i));
  }
  const auto read_all = [](const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  };
  const auto write_all = [](const std::string& p, const std::string& bytes) {
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out << bytes;
  };
  for (int trial = 0; trial < 6; ++trial) {
    ++*checks;
    const std::string& victim = files[rng.Below(files.size())];
    const std::string original = read_all(victim);
    std::string mutated = original;
    MutateBytes(rng, &mutated);
    write_all(victim, mutated);
    auto loaded = shard::ShardedIndex::Load(path);
    write_all(victim, original);
    if (mutated == original) {
      if (!loaded.ok()) return Fail("pristine family rejected", s, "");
      continue;
    }
    if (loaded.ok()) {
      return Fail("corrupt family (" + victim + ") loaded silently", s, "");
    }
    if (loaded.status().code() != StatusCode::kCorruption) {
      return Fail("corrupt family yielded '" + loaded.status().ToString() +
                      "' instead of kCorruption",
                  s, "");
    }
  }
  return 0;
}

// Dynamic-manifest robustness phase (the lifecycle PR): build a
// DynamicFamily — several flushed documents across several generations,
// sometimes a durable tombstone — then corrupt the v2 manifest (the
// generation pointer, shard list and tombstone set) or one shard image
// on disk, and demand that DynamicFamily::Open rejects the family with
// kCorruption — never a crash, never a torn or silently wrong load.
// Reopening an untouched family (an identity mutation) must succeed.
int FuzzDynamicManifest(spine::Rng& rng, const std::string& s,
                        const std::filesystem::path& dir, uint64_t* checks) {
  using namespace spine;
  const std::string path = (dir / "dynamic.spinefam").string();
  // Fresh ground each round: generations leave uniquely named shard
  // images (<manifest>.g<version>) behind.
  {
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("dynamic.spinefam", 0) == 0) {
        std::error_code remove_ec;
        std::filesystem::remove(entry.path(), remove_ec);
      }
    }
  }
  shard::DynamicFamily::Options options;
  options.open.verify = true;
  {
    auto family =
        shard::DynamicFamily::Create(path, Alphabet::Dna(), options);
    if (!family.ok()) return Fail("dynamic create failed", s, "");
    const uint32_t docs = 2 + static_cast<uint32_t>(rng.Below(3));
    for (uint32_t d = 0; d < docs; ++d) {
      const std::string doc =
          s.substr(rng.Below(s.size()), 1 + rng.Below(24));
      if (!(*family)->InsertDocument(doc).ok()) {
        return Fail("dynamic insert failed", s, doc);
      }
      // Flushing between inserts leaves several frozen shards (and
      // shard image files) for the corruption loop to aim at.
      if (rng.Chance(0.6) && !(*family)->Flush().ok()) {
        return Fail("dynamic flush failed", s, "");
      }
    }
    if (!(*family)->Flush().ok()) return Fail("dynamic flush failed", s, "");
    if (rng.Chance(0.5)) {
      // A durable tombstone exercises the manifest's tombstone set.
      (void)(*family)->DeleteDocument(static_cast<uint32_t>(rng.Below(docs)));
    }
  }

  std::vector<std::string> files = {path};
  {
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("dynamic.spinefam.g", 0) == 0) {
        files.push_back(entry.path().string());
      }
    }
  }
  const auto read_all = [](const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  };
  const auto write_all = [](const std::string& p, const std::string& bytes) {
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out << bytes;
  };
  for (int trial = 0; trial < 6; ++trial) {
    ++*checks;
    const std::string& victim = files[rng.Below(files.size())];
    const std::string original = read_all(victim);
    std::string mutated = original;
    MutateBytes(rng, &mutated);
    write_all(victim, mutated);
    auto loaded = shard::DynamicFamily::Open(path, options);
    write_all(victim, original);
    if (mutated == original) {
      if (!loaded.ok()) return Fail("pristine dynamic family rejected", s, "");
      continue;
    }
    if (loaded.ok()) {
      return Fail("corrupt dynamic family (" + victim + ") loaded silently",
                  s, "");
    }
    if (loaded.status().code() != StatusCode::kCorruption) {
      return Fail("corrupt dynamic family yielded '" +
                      loaded.status().ToString() + "' instead of kCorruption",
                  s, "");
    }
  }
  return 0;
}

// Wire-envelope robustness phase (the serving PR): build valid binary
// frames and JSON lines out of random queries and answers, corrupt them
// with MutateBytes / pure junk, and demand that the core/wire.h
// decoders either reject cleanly with kProtocolError or decode into a
// value whose re-encoding decodes back identically — never a crash,
// never a silently misread envelope.
int FuzzWireFrames(spine::Rng& rng, uint64_t* checks) {
  using namespace spine;
  namespace wire = core::wire;
  const char* letters = "ACGT";

  const auto random_pattern = [&](uint64_t max_len) {
    std::string p;
    const uint64_t len = rng.Below(max_len + 1);
    for (uint64_t i = 0; i < len; ++i) p.push_back(letters[rng.Below(4)]);
    return p;
  };
  const auto random_request = [&] {
    wire::QueryRequest request;
    request.id = rng.Next();
    request.query.kind = static_cast<QueryKind>(rng.Below(6));
    request.query.pattern = random_pattern(24);
    request.query.min_len = 1 + static_cast<uint32_t>(rng.Below(8));
    request.query.expand_occurrences = rng.Chance(0.5);
    // Deadlines (PR 7): zero (absent), small, and full-range values all
    // flow through the round-trip invariants below in both dialects.
    request.query.deadline_ms =
        rng.Chance(0.3) ? 0
        : rng.Chance(0.5)
            ? 1 + static_cast<uint32_t>(rng.Below(10000))
            : static_cast<uint32_t>(rng.Next());
    // Error budgets (the approximate-query PR): zero, small — often
    // larger than the pattern — and full-range values, on every kind
    // (the binary tail carries max_errors unconditionally, and a
    // budget on an exact kind is legal on the wire; the engine just
    // ignores it).
    request.query.max_errors =
        rng.Chance(0.4) ? 0
        : rng.Chance(0.5) ? 1 + static_cast<uint32_t>(rng.Below(32))
                          : static_cast<uint32_t>(rng.Next());
    return request;
  };
  const auto random_response = [&] {
    wire::QueryResponse response;
    response.id = rng.Next();
    response.result.status_code = static_cast<StatusCode>(rng.Below(10));
    response.result.found = rng.Chance(0.5);
    for (uint64_t i = rng.Below(4); i > 0; --i) {
      response.result.hits.push_back(
          {static_cast<uint32_t>(rng.Below(1000)),
           static_cast<uint32_t>(rng.Below(100)),
           static_cast<uint32_t>(rng.Below(100))});
    }
    for (uint64_t i = rng.Below(4); i > 0; --i) {
      response.result.matching_stats.push_back(
          static_cast<uint32_t>(rng.Below(50)));
    }
    if (response.result.status_code != StatusCode::kOk) {
      response.result.error = "fuzz error " + std::to_string(rng.Below(100));
    }
    return response;
  };

  // The invariant every decoded value must satisfy: encode it again,
  // extract and decode the re-encoded frame, and land on the same
  // value. Catches any drift between the encoder and the decoder that
  // a mutated-but-accepted payload could otherwise smuggle through.
  const auto request_roundtrips = [&](const wire::QueryRequest& request) {
    std::string bytes;
    wire::AppendRequestFrame(request, &bytes);
    wire::Frame frame;
    size_t consumed = 0;
    if (!wire::ExtractFrame(bytes, &frame, &consumed).ok() || consumed == 0) {
      return false;
    }
    auto again = wire::DecodeRequest(frame.payload);
    return again.ok() && *again == request;
  };
  const auto response_roundtrips = [&](const wire::QueryResponse& response) {
    std::string bytes;
    wire::AppendResponseFrame(response, &bytes);
    wire::Frame frame;
    size_t consumed = 0;
    if (!wire::ExtractFrame(bytes, &frame, &consumed).ok() || consumed == 0) {
      return false;
    }
    auto again = wire::DecodeResponse(frame.payload);
    return again.ok() && again->id == response.id &&
           again->result.SameAnswer(response.result) &&
           again->result.error == response.result.error;
  };

  // Lifecycle verbs (the dynamic-index PR) get the same treatment as
  // queries: random valid envelopes, mutation, and the round-trip
  // invariant on anything the decoder accepts.
  const auto random_mutate = [&] {
    wire::MutateRequest request;
    request.id = rng.Next();
    request.op = static_cast<wire::MutateOp>(1 + rng.Below(4));
    if (request.op == wire::MutateOp::kInsert) {
      request.document = random_pattern(24);
    }
    if (request.op == wire::MutateOp::kDelete) {
      request.doc_id = static_cast<uint32_t>(rng.Below(1000));
    }
    return request;
  };
  const auto random_mutate_response = [&] {
    wire::MutateResponse response;
    response.id = rng.Next();
    response.op = static_cast<wire::MutateOp>(1 + rng.Below(4));
    response.doc_id = static_cast<uint32_t>(rng.Below(1000));
    response.status = static_cast<StatusCode>(rng.Below(10));
    if (response.status != StatusCode::kOk) {
      response.error = "fuzz mutate error " + std::to_string(rng.Below(100));
    }
    response.generation = rng.Below(1000);
    return response;
  };
  const auto mutate_roundtrips = [&](const wire::MutateRequest& request) {
    std::string bytes;
    wire::AppendMutateFrame(request, &bytes);
    wire::Frame frame;
    size_t consumed = 0;
    if (!wire::ExtractFrame(bytes, &frame, &consumed).ok() || consumed == 0) {
      return false;
    }
    auto again = wire::DecodeMutate(frame.payload);
    return again.ok() && *again == request;
  };
  const auto mutate_response_roundtrips =
      [&](const wire::MutateResponse& response) {
        std::string bytes;
        wire::AppendMutateResponseFrame(response, &bytes);
        wire::Frame frame;
        size_t consumed = 0;
        if (!wire::ExtractFrame(bytes, &frame, &consumed).ok() ||
            consumed == 0) {
          return false;
        }
        auto again = wire::DecodeMutateResponse(frame.payload);
        return again.ok() && *again == response;
      };

  // --- binary stream: 1..4 valid frames, then 1..3 mutations ---------------
  std::string stream;
  for (uint64_t i = 1 + rng.Below(4); i > 0; --i) {
    switch (rng.Below(7)) {
      case 0: wire::AppendRequestFrame(random_request(), &stream); break;
      case 1: wire::AppendResponseFrame(random_response(), &stream); break;
      case 2: wire::AppendStatsRequestFrame(&stream); break;
      case 3:
        wire::AppendStatsResponseFrame("{\"schema_version\":1}", &stream);
        break;
      case 4: wire::AppendMutateFrame(random_mutate(), &stream); break;
      case 5:
        wire::AppendMutateResponseFrame(random_mutate_response(), &stream);
        break;
      default:
        wire::AppendErrorFrame({rng.Next(), StatusCode::kOverloaded,
                                "fuzz overload"},
                               &stream);
        break;
    }
  }
  if (rng.Chance(0.2)) {  // sometimes fuzz pure junk instead
    stream.resize(rng.Below(64));
    for (char& c : stream) c = static_cast<char>(rng.Below(256));
  } else {
    for (uint64_t i = 1 + rng.Below(3); i > 0; --i) MutateBytes(rng, &stream);
  }

  // Consume the stream exactly the way serve/server.cc does.
  std::string_view buffer(stream);
  while (!buffer.empty()) {
    ++*checks;
    wire::Frame frame;
    size_t consumed = 0;
    Status status = wire::ExtractFrame(buffer, &frame, &consumed);
    if (!status.ok()) {
      if (status.code() != StatusCode::kProtocolError) {
        return Fail("frame rejection used '" + status.ToString() +
                        "' instead of kProtocolError",
                    "", "");
      }
      break;  // clean rejection: the connection would close here
    }
    if (consumed == 0) break;  // partial tail: the server would read more
    switch (frame.type) {
      case wire::FrameType::kQuery: {
        auto decoded = wire::DecodeRequest(frame.payload);
        if (!decoded.ok() &&
            decoded.status().code() != StatusCode::kProtocolError) {
          return Fail("request decode used '" + decoded.status().ToString() +
                          "' instead of kProtocolError",
                      "", "");
        }
        if (decoded.ok() && !request_roundtrips(*decoded)) {
          return Fail("mutated request decoded but does not round-trip", "",
                      decoded->query.pattern);
        }
        break;
      }
      case wire::FrameType::kResponse: {
        auto decoded = wire::DecodeResponse(frame.payload);
        if (!decoded.ok() &&
            decoded.status().code() != StatusCode::kProtocolError) {
          return Fail("response decode used '" + decoded.status().ToString() +
                          "' instead of kProtocolError",
                      "", "");
        }
        if (decoded.ok() && !response_roundtrips(*decoded)) {
          return Fail("mutated response decoded but does not round-trip", "",
                      "");
        }
        break;
      }
      case wire::FrameType::kStats:
        break;  // empty payload by construction; nothing to decode
      case wire::FrameType::kStatsResponse:
        if (auto decoded = wire::DecodeStatsResponse(frame.payload);
            !decoded.ok() &&
            decoded.status().code() != StatusCode::kProtocolError) {
          return Fail("stats decode used '" + decoded.status().ToString() +
                          "' instead of kProtocolError",
                      "", "");
        }
        break;
      case wire::FrameType::kMutate: {
        auto decoded = wire::DecodeMutate(frame.payload);
        if (!decoded.ok() &&
            decoded.status().code() != StatusCode::kProtocolError) {
          return Fail("mutate decode used '" + decoded.status().ToString() +
                          "' instead of kProtocolError",
                      "", "");
        }
        if (decoded.ok() && !mutate_roundtrips(*decoded)) {
          return Fail("mutated mutate frame decoded but does not round-trip",
                      "", decoded->document);
        }
        break;
      }
      case wire::FrameType::kMutateResponse: {
        auto decoded = wire::DecodeMutateResponse(frame.payload);
        if (!decoded.ok() &&
            decoded.status().code() != StatusCode::kProtocolError) {
          return Fail("mutate response decode used '" +
                          decoded.status().ToString() +
                          "' instead of kProtocolError",
                      "", "");
        }
        if (decoded.ok() && !mutate_response_roundtrips(*decoded)) {
          return Fail(
              "mutated mutate response decoded but does not round-trip", "",
              "");
        }
        break;
      }
      case wire::FrameType::kError:
        if (auto decoded = wire::DecodeError(frame.payload);
            !decoded.ok() &&
            decoded.status().code() != StatusCode::kProtocolError) {
          return Fail("error decode used '" + decoded.status().ToString() +
                          "' instead of kProtocolError",
                      "", "");
        }
        break;
    }
    buffer.remove_prefix(consumed);
  }

  // --- deadline_ms hostile inputs (PR 7) -----------------------------------
  // Junk, overflow and zero deadlines must yield either a valid request
  // (clamped to uint32) or kProtocolError — never UB, never a hang.
  for (int trial = 0; trial < 3; ++trial) {
    ++*checks;
    static const char* kHostileDeadlines[] = {
        "0",      "4294967295", "4294967296",          "18446744073709551616",
        "1e300",  "-1",         "-4294967295",         "0.5",
        "\"5\"",  "null",       "[1]",                 "1e-300",
    };
    const char* hostile =
        kHostileDeadlines[rng.Below(std::size(kHostileDeadlines))];
    std::string line =
        "{\"v\":1,\"type\":\"query\",\"id\":1,\"pattern\":\"ACG\","
        "\"deadline_ms\":";
    line += hostile;
    line += "}";
    auto parsed = wire::ParseRequestJson(line);
    if (!parsed.ok()) {
      if (parsed.status().code() != StatusCode::kProtocolError) {
        return Fail("hostile deadline rejection used '" +
                        parsed.status().ToString() +
                        "' instead of kProtocolError",
                    "", line);
      }
    } else if (!request_roundtrips(*parsed)) {
      return Fail("hostile deadline parsed but does not round-trip", "", line);
    }
    // Binary: both legacy tails must still decode — dropping the
    // trailing max_errors word (pre-approx shape) keeps the deadline
    // and yields max_errors == 0; dropping deadline + max_errors
    // (pre-deadline shape) yields zero for both. Any other tail length
    // must be rejected as kProtocolError.
    wire::QueryRequest request = random_request();
    std::string bytes;
    wire::AppendRequestFrame(request, &bytes);
    wire::Frame frame;
    size_t consumed = 0;
    if (!wire::ExtractFrame(bytes, &frame, &consumed).ok()) {
      return Fail("valid request frame failed to extract", "", "");
    }
    std::string payload(frame.payload);
    std::string pre_approx = payload.substr(0, payload.size() - 4);
    auto pre_approx_decoded = wire::DecodeRequest(pre_approx);
    if (!pre_approx_decoded.ok() ||
        pre_approx_decoded->query.deadline_ms != request.query.deadline_ms ||
        pre_approx_decoded->query.max_errors != 0 ||
        pre_approx_decoded->query.pattern != request.query.pattern) {
      return Fail("pre-approx request payload no longer decodes", "",
                  request.query.pattern);
    }
    std::string pre_deadline = payload.substr(0, payload.size() - 8);
    auto pre_deadline_decoded = wire::DecodeRequest(pre_deadline);
    if (!pre_deadline_decoded.ok() ||
        pre_deadline_decoded->query.deadline_ms != 0 ||
        pre_deadline_decoded->query.max_errors != 0 ||
        pre_deadline_decoded->query.pattern != request.query.pattern) {
      return Fail("pre-deadline request payload no longer decodes", "",
                  request.query.pattern);
    }
    std::string odd_tail = payload + static_cast<char>(rng.Below(256));
    if (auto odd = wire::DecodeRequest(odd_tail); odd.ok()) {
      return Fail("request payload with trailing junk decoded silently", "",
                  request.query.pattern);
    }
  }

  // --- max_errors hostile inputs (the approximate-query PR) ---------------
  // Junk, overflow, negative, and larger-than-the-pattern error budgets
  // must yield either a valid request (clamped to uint32, round-trips)
  // or kProtocolError — never UB, never a partial parse.
  for (int trial = 0; trial < 3; ++trial) {
    ++*checks;
    static const char* kHostileErrors[] = {
        "0",     "2",           "7",          "4294967295",
        "4294967296",           "18446744073709551616",
        "-1",    "-2147483648", "1e300",      "0.5",
        "\"2\"", "null",        "[2]",        "1e-300",
    };
    const char* hostile =
        kHostileErrors[rng.Below(std::size(kHostileErrors))];
    std::string line =
        "{\"v\":1,\"type\":\"query\",\"id\":1,\"kind\":\"";
    line += rng.Chance(0.5) ? "mismatch" : "edit";
    line += "\",\"pattern\":\"ACG\",\"max_errors\":";
    line += hostile;
    line += "}";
    auto parsed = wire::ParseRequestJson(line);
    if (!parsed.ok()) {
      if (parsed.status().code() != StatusCode::kProtocolError) {
        return Fail("hostile max_errors rejection used '" +
                        parsed.status().ToString() +
                        "' instead of kProtocolError",
                    "", line);
      }
    } else if (!request_roundtrips(*parsed)) {
      return Fail("hostile max_errors parsed but does not round-trip", "",
                  line);
    }
  }

  // --- query text: approximate kinds and hostile suffixes ------------------
  // Well-formed "KIND:ERRORS[@MS] PATTERN" lines must parse to exactly
  // the requested query; hostile suffixes (negative, overflow,
  // non-digit, budget on an exact kind) must never crash, and whatever
  // does parse must survive a canonical re-render round-trip.
  for (int trial = 0; trial < 4; ++trial) {
    ++*checks;
    const bool edit = rng.Chance(0.5);
    const uint32_t errors = static_cast<uint32_t>(rng.Below(6));
    const uint32_t deadline = static_cast<uint32_t>(rng.Below(500));
    const std::string pattern = "A" + random_pattern(7);
    std::string line = edit ? "edit" : "mismatch";
    line += ":" + std::to_string(errors);
    if (deadline > 0) line += "@" + std::to_string(deadline);
    line += " " + pattern;
    std::optional<Query> query = wire::ParseQueryText(line, 1);
    if (!query ||
        query->kind != (edit ? QueryKind::kEditDistance
                             : QueryKind::kMismatch) ||
        query->pattern != pattern || query->max_errors != errors ||
        query->deadline_ms != deadline) {
      return Fail("canonical approx query text did not parse", "", line);
    }
    static const char* kHostileSuffixes[] = {
        ":-1",  ":18446744073709551616", ":2x", ":",  ":@", "::2",
        ":2@",  ":99999999999@99999999999",
    };
    std::string hostile_kind = edit ? "edit" : "mismatch";
    if (rng.Chance(0.3)) hostile_kind = "findall";  // budget on exact kind
    std::string hostile_line =
        hostile_kind + kHostileSuffixes[rng.Below(std::size(kHostileSuffixes))] +
        " " + pattern;
    std::optional<Query> hostile = wire::ParseQueryText(hostile_line, 1);
    if (hostile && (hostile->kind == QueryKind::kMismatch ||
                    hostile->kind == QueryKind::kEditDistance)) {
      // Saturating budgets are the only accepted approx parse; it must
      // re-render and re-parse to the same query.
      std::string rerender =
          std::string(hostile->kind == QueryKind::kEditDistance ? "edit"
                                                                : "mismatch") +
          ":" + std::to_string(hostile->max_errors) + " " + hostile->pattern;
      std::optional<Query> again = wire::ParseQueryText(rerender, 1);
      if (!again || again->kind != hostile->kind ||
          again->pattern != hostile->pattern ||
          again->max_errors != hostile->max_errors) {
        return Fail("hostile approx query text does not round-trip", "",
                    hostile_line);
      }
    }
  }

  // --- JSON lines: mutate valid encodings, then parse ----------------------
  for (int trial = 0; trial < 4; ++trial) {
    ++*checks;
    const bool is_request = rng.Chance(0.5);
    std::string line = is_request ? wire::RequestToJson(random_request())
                                  : wire::ResponseToJson(random_response());
    MutateBytes(rng, &line);
    if (is_request) {
      auto parsed = wire::ParseRequestJson(line);
      if (!parsed.ok() &&
          parsed.status().code() != StatusCode::kProtocolError) {
        return Fail("JSON request rejection used '" +
                        parsed.status().ToString() +
                        "' instead of kProtocolError",
                    "", line);
      }
      if (parsed.ok()) {
        auto again = wire::ParseRequestJson(wire::RequestToJson(*parsed));
        if (!again.ok() || !(*again == *parsed)) {
          return Fail("mutated JSON request parsed but does not round-trip",
                      "", line);
        }
      }
    } else {
      auto parsed = wire::ParseResponseJson(line);
      if (!parsed.ok() &&
          parsed.status().code() != StatusCode::kProtocolError) {
        return Fail("JSON response rejection used '" +
                        parsed.status().ToString() +
                        "' instead of kProtocolError",
                    "", line);
      }
      if (parsed.ok()) {
        auto again = wire::ParseResponseJson(wire::ResponseToJson(*parsed));
        if (!again.ok() || again->id != parsed->id ||
            !again->result.SameAnswer(parsed->result)) {
          return Fail("mutated JSON response parsed but does not round-trip",
                      "", line);
        }
      }
    }
  }

  // --- JSON mutate envelopes: same discipline ------------------------------
  for (int trial = 0; trial < 3; ++trial) {
    ++*checks;
    const bool is_request = rng.Chance(0.5);
    std::string line =
        is_request ? wire::MutateToJson(random_mutate())
                   : wire::MutateResponseToJson(random_mutate_response());
    MutateBytes(rng, &line);
    if (is_request) {
      auto parsed = wire::ParseMutateJson(line);
      if (!parsed.ok() &&
          parsed.status().code() != StatusCode::kProtocolError) {
        return Fail("JSON mutate rejection used '" +
                        parsed.status().ToString() +
                        "' instead of kProtocolError",
                    "", line);
      }
      if (parsed.ok()) {
        auto again = wire::ParseMutateJson(wire::MutateToJson(*parsed));
        if (!again.ok() || !(*again == *parsed)) {
          return Fail("mutated JSON mutate parsed but does not round-trip",
                      "", line);
        }
      }
    } else {
      auto parsed = wire::ParseMutateResponseJson(line);
      if (!parsed.ok() &&
          parsed.status().code() != StatusCode::kProtocolError) {
        return Fail("JSON mutate response rejection used '" +
                        parsed.status().ToString() +
                        "' instead of kProtocolError",
                    "", line);
      }
      if (parsed.ok()) {
        auto again = wire::ParseMutateResponseJson(
            wire::MutateResponseToJson(*parsed));
        if (!again.ok() || !(*again == *parsed)) {
          return Fail(
              "mutated JSON mutate response parsed but does not round-trip",
              "", line);
        }
      }
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace spine;
  const bool manifest_mode =
      argc > 1 && std::strcmp(argv[1], "manifest") == 0;
  const bool frames_mode = argc > 1 && std::strcmp(argv[1], "frames") == 0;
  const int arg0 = (manifest_mode || frames_mode) ? 2 : 1;
  double budget_seconds = argc > arg0 ? std::atof(argv[arg0]) : 2.0;
  uint64_t seed =
      argc > arg0 + 1 ? std::strtoull(argv[arg0 + 1], nullptr, 10) : 20260706;
  if (budget_seconds <= 0) budget_seconds = 2.0;

  const std::filesystem::path fuzz_dir =
      std::filesystem::temp_directory_path() /
      ("spine_fuzz_" + std::to_string(seed));
  std::filesystem::create_directories(fuzz_dir);
  struct DirCleanup {
    std::filesystem::path path;
    ~DirCleanup() {
      std::error_code ec;
      std::filesystem::remove_all(path, ec);
    }
  } cleanup{fuzz_dir};

  Rng rng(seed);
  const char* letters = "ACGT";
  WallTimer timer;
  uint64_t rounds = 0, checks = 0;

  while (timer.ElapsedSeconds() < budget_seconds) {
    ++rounds;
    uint32_t sigma = 2 + static_cast<uint32_t>(rng.Below(3));
    uint32_t length = 2 + static_cast<uint32_t>(rng.Below(160));
    std::string s;
    for (uint32_t i = 0; i < length; ++i) {
      s.push_back(letters[rng.Below(sigma)]);
    }

    if (manifest_mode) {
      if (int rc = FuzzShardManifest(rng, s, fuzz_dir, &checks); rc != 0) {
        return rc;
      }
      if (int rc = FuzzDynamicManifest(rng, s, fuzz_dir, &checks); rc != 0) {
        return rc;
      }
      continue;
    }
    if (frames_mode) {
      if (int rc = FuzzWireFrames(rng, &checks); rc != 0) return rc;
      continue;
    }

    SpineIndex reference(Alphabet::Dna());
    CompactSpineIndex compact(Alphabet::Dna());
    SuffixTree tree(Alphabet::Dna());
    SuffixAutomaton dawg(Alphabet::Dna());
    if (!reference.AppendString(s).ok() || !compact.AppendString(s).ok() ||
        !tree.AppendString(s).ok() || !dawg.AppendString(s).ok()) {
      return Fail("append failed", s, "");
    }
    if (!reference.Validate().ok() || !compact.Validate().ok() ||
        !tree.Validate().ok() || !dawg.Validate().ok()) {
      return Fail("validation failed", s, "");
    }

    // LEL oracle.
    for (uint32_t i = 1; i <= length; ++i) {
      ++checks;
      uint32_t expected = naive::LongestEarlierSuffix(s, i);
      if (reference.LinkLel(i) != expected || compact.LinkLel(i) != expected) {
        return Fail("LEL mismatch at node " + std::to_string(i), s, "");
      }
    }

    // Occurrence sets across implementations.
    for (int trial = 0; trial < 30; ++trial) {
      ++checks;
      std::string pattern;
      if (trial % 2 == 0) {
        uint32_t start = static_cast<uint32_t>(rng.Below(length));
        pattern = s.substr(start, 1 + rng.Below(10));
      } else {
        for (uint32_t i = 0; i < 1 + rng.Below(8); ++i) {
          pattern.push_back(letters[rng.Below(sigma)]);
        }
      }
      auto expected = naive::FindAllOccurrences(s, pattern);
      if (reference.FindAll(pattern) != expected ||
          compact.FindAll(pattern) != expected ||
          tree.FindAll(pattern) != expected ||
          dawg.FindAll(pattern) != expected) {
        return Fail("occurrence mismatch", s, pattern);
      }
    }

    // Serialized-image robustness (PR 2).
    if (int rc = FuzzSerializedImage(rng, compact, s, &checks); rc != 0) {
      return rc;
    }

    // Sharded-family manifest robustness (PR 4); cheaper than the
    // other phases, so a third of the rounds is plenty.
    if (rounds % 3 == 0) {
      if (int rc = FuzzShardManifest(rng, s, fuzz_dir, &checks); rc != 0) {
        return rc;
      }
    }

    // Dynamic-family v2 manifest robustness (the lifecycle PR), on its
    // own third of the rounds.
    if (rounds % 3 == 1) {
      if (int rc = FuzzDynamicManifest(rng, s, fuzz_dir, &checks); rc != 0) {
        return rc;
      }
    }

    // Serving-wire envelope robustness; cheap enough for every round.
    if (int rc = FuzzWireFrames(rng, &checks); rc != 0) {
      return rc;
    }

    // Maximal matches: SPINE vs suffix tree vs oracle.
    std::string query;
    uint32_t query_len = 1 + static_cast<uint32_t>(rng.Below(100));
    for (uint32_t i = 0; i < query_len; ++i) {
      query.push_back(letters[rng.Below(sigma)]);
    }
    ++checks;
    auto expected = naive::MaximalMatches(s, query, 2);
    auto spine_matches = GenericFindMaximalMatches(compact, query, 2);
    auto st_matches = GenericStFindMaximalMatches(tree, query, 2, nullptr);
    if (spine_matches.size() != expected.size() ||
        st_matches.size() != expected.size()) {
      return Fail("maximal match count mismatch", s, query);
    }
    for (size_t k = 0; k < expected.size(); ++k) {
      if (spine_matches[k].query_pos != expected[k].query_pos ||
          spine_matches[k].length != expected[k].length ||
          st_matches[k].query_pos != expected[k].query_pos ||
          st_matches[k].length != expected[k].length) {
        return Fail("maximal match content mismatch", s, query);
      }
    }
  }

  std::printf("fuzz OK: %llu rounds, %llu checks in %.1f s (seed %llu)\n",
              static_cast<unsigned long long>(rounds),
              static_cast<unsigned long long>(checks),
              timer.ElapsedSeconds(), static_cast<unsigned long long>(seed));
  return 0;
}
