// spine_tool: command-line front end for the SPINE library.

#include <iostream>
#include <string>
#include <vector>

#include "tools/cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return spine::cli::Run(args, std::cout, std::cerr);
}
