#include "suffix_array/suffix_array.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace spine {

SuffixArray::SuffixArray(const Alphabet& alphabet, std::vector<Code> text)
    : alphabet_(alphabet), text_(std::move(text)) {}

Result<SuffixArray> SuffixArray::Build(const Alphabet& alphabet,
                                       std::string_view text) {
  std::vector<Code> codes;
  codes.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    Code c = alphabet.Encode(text[i]);
    if (c == kInvalidCode) {
      return Status::InvalidArgument("character at offset " +
                                     std::to_string(i) +
                                     " is not in the alphabet");
    }
    codes.push_back(c);
  }
  SuffixArray result(alphabet, std::move(codes));
  const uint32_t n = static_cast<uint32_t>(result.text_.size());
  result.sa_.resize(n);
  result.lcp_.assign(n, 0);
  if (n == 0) return result;

  // Prefix doubling: rank[i] = rank of suffix i by its first k codes.
  std::vector<uint32_t>& sa = result.sa_;
  std::iota(sa.begin(), sa.end(), 0u);
  std::vector<uint32_t> rank(n), tmp(n);
  for (uint32_t i = 0; i < n; ++i) rank[i] = result.text_[i];
  for (uint32_t k = 1;; k *= 2) {
    auto cmp = [&](uint32_t a, uint32_t b) {
      if (rank[a] != rank[b]) return rank[a] < rank[b];
      uint32_t ra = a + k < n ? rank[a + k] + 1 : 0;
      uint32_t rb = b + k < n ? rank[b + k] + 1 : 0;
      return ra < rb;
    };
    std::sort(sa.begin(), sa.end(), cmp);
    tmp[sa[0]] = 0;
    for (uint32_t i = 1; i < n; ++i) {
      tmp[sa[i]] = tmp[sa[i - 1]] + (cmp(sa[i - 1], sa[i]) ? 1 : 0);
    }
    rank = tmp;
    if (rank[sa[n - 1]] == n - 1) break;
  }

  // Kasai LCP over sa_.
  std::vector<uint32_t> inv(n);
  for (uint32_t i = 0; i < n; ++i) inv[sa[i]] = i;
  uint32_t h = 0;
  for (uint32_t i = 0; i < n; ++i) {
    if (inv[i] == 0) {
      h = 0;
      continue;
    }
    uint32_t j = sa[inv[i] - 1];
    while (i + h < n && j + h < n && result.text_[i + h] == result.text_[j + h])
      ++h;
    result.lcp_[inv[i]] = h;
    if (h > 0) --h;
  }
  return result;
}

int SuffixArray::ComparePattern(const std::vector<Code>& pattern,
                                uint32_t idx) const {
  uint32_t start = sa_[idx];
  uint32_t avail = static_cast<uint32_t>(text_.size()) - start;
  uint32_t limit = std::min<uint32_t>(avail, pattern.size());
  for (uint32_t k = 0; k < limit; ++k) {
    if (pattern[k] != text_[start + k]) {
      return pattern[k] < text_[start + k] ? -1 : 1;
    }
  }
  // Pattern longer than the suffix: pattern sorts after.
  return pattern.size() > avail ? 1 : 0;
}

bool SuffixArray::Contains(std::string_view pattern) const {
  return !pattern.empty() && !FindAll(pattern).empty();
}

std::vector<uint32_t> SuffixArray::FindAll(std::string_view pattern) const {
  std::vector<uint32_t> out;
  if (pattern.empty() || pattern.size() > text_.size()) return out;
  std::vector<Code> codes;
  codes.reserve(pattern.size());
  for (char ch : pattern) {
    Code c = alphabet_.Encode(ch);
    if (c == kInvalidCode) return out;
    codes.push_back(c);
  }
  const uint32_t n = static_cast<uint32_t>(text_.size());
  // Lower bound: first suffix >= pattern.
  uint32_t lo = 0, hi = n;
  while (lo < hi) {
    uint32_t mid = lo + (hi - lo) / 2;
    if (ComparePattern(codes, mid) > 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  uint32_t first = lo;
  // Upper bound: first suffix that does not start with pattern.
  hi = n;
  while (lo < hi) {
    uint32_t mid = lo + (hi - lo) / 2;
    if (ComparePattern(codes, mid) >= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  for (uint32_t i = first; i < lo; ++i) out.push_back(sa_[i]);
  std::sort(out.begin(), out.end());
  return out;
}

uint64_t SuffixArray::MemoryBytes() const {
  return sa_.size() * sizeof(uint32_t) +
         lcp_.size() * sizeof(uint32_t) + text_.size() * sizeof(Code);
}

}  // namespace spine
