// Suffix array baseline (Manber-Myers prefix doubling + Kasai LCP).
//
// Included for the related-work comparison of Section 7: suffix arrays
// take ~6 bytes per indexed character (here: 4-byte SA entry + optional
// 4-byte LCP entry + packed text) but give up linear-time construction
// (prefix doubling is O(n log n)) and suffix links, so they cannot run
// the streaming set-based matching SPINE and suffix trees support.

#ifndef SPINE_SUFFIX_ARRAY_SUFFIX_ARRAY_H_
#define SPINE_SUFFIX_ARRAY_SUFFIX_ARRAY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "alphabet/alphabet.h"
#include "common/status.h"

namespace spine {

class SuffixArray {
 public:
  // Builds the suffix array for `text` (not online: the whole string is
  // required up front, unlike SPINE and the Ukkonen tree).
  static Result<SuffixArray> Build(const Alphabet& alphabet,
                                   std::string_view text);

  uint64_t size() const { return text_.size(); }
  const std::vector<uint32_t>& sa() const { return sa_; }

  // LCP of lexicographically adjacent suffixes (Kasai); lcp()[i] is the
  // common-prefix length of sa()[i-1] and sa()[i]; lcp()[0] == 0.
  const std::vector<uint32_t>& lcp() const { return lcp_; }

  bool Contains(std::string_view pattern) const;
  // All start positions of `pattern`, ascending (binary search, then
  // sort of the SA range).
  std::vector<uint32_t> FindAll(std::string_view pattern) const;

  uint64_t MemoryBytes() const;

 private:
  SuffixArray(const Alphabet& alphabet, std::vector<Code> text);

  // Lexicographic comparison of pattern vs suffix sa_[idx].
  int ComparePattern(const std::vector<Code>& pattern, uint32_t idx) const;

  Alphabet alphabet_;
  std::vector<Code> text_;
  std::vector<uint32_t> sa_;
  std::vector<uint32_t> lcp_;
};

}  // namespace spine

#endif  // SPINE_SUFFIX_ARRAY_SUFFIX_ARRAY_H_
