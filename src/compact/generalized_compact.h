// GeneralizedCompactSpine: one compact SPINE index over a collection of
// strings — the space-optimized counterpart of core/generalized_spine.h
// (the paper's Section 1.1 multi-string feature), with persistence.
//
// Strings are concatenated with a newline separator inside a compact
// index over the printable-ASCII alphabet (whose 7-bit character labels
// fit the Section 5 rib-slot layout). User-facing validation happens
// against the declared alphabet (DNA / protein / ASCII-minus-newline),
// so a DNA collection still rejects non-ACGT input; the separator can
// never appear in valid queries, so no match crosses a string boundary.

#ifndef SPINE_COMPACT_GENERALIZED_COMPACT_H_
#define SPINE_COMPACT_GENERALIZED_COMPACT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "alphabet/alphabet.h"
#include "common/status.h"
#include "compact/compact_spine.h"

namespace spine {

class GeneralizedCompactSpine {
 public:
  static constexpr char kSeparator = '\n';

  // `alphabet` constrains strings and queries (DNA, protein or ASCII).
  explicit GeneralizedCompactSpine(const Alphabet& alphabet);

  GeneralizedCompactSpine(const GeneralizedCompactSpine&) = delete;
  GeneralizedCompactSpine& operator=(const GeneralizedCompactSpine&) = delete;
  GeneralizedCompactSpine(GeneralizedCompactSpine&&) = default;
  GeneralizedCompactSpine& operator=(GeneralizedCompactSpine&&) = default;

  // Adds one string (with an optional display name, e.g. the FASTA
  // record id). Fails — leaving the index unchanged — on characters
  // outside the declared alphabet or on the separator itself.
  Status AddString(std::string_view s, std::string name = {});

  uint32_t string_count() const {
    return static_cast<uint32_t>(boundaries_.size());
  }
  uint32_t StringLength(uint32_t id) const;
  const std::string& StringName(uint32_t id) const { return names_[id]; }
  // The stored (canonical) text of string `id`, reconstructed from the
  // underlying concatenation. What compaction re-indexes when merging
  // frozen shards (shard/dynamic_family.h).
  std::string StringText(uint32_t id) const;
  uint64_t total_characters() const { return index_.size(); }
  // The user-facing alphabet strings and queries validate against.
  const Alphabet& alphabet() const { return user_alphabet_; }

  struct Hit {
    uint32_t string_id;
    uint32_t offset;
    bool operator==(const Hit&) const = default;
  };

  bool Contains(std::string_view pattern) const;
  // All occurrences across the collection, ordered by (string, offset).
  std::vector<Hit> FindAll(std::string_view pattern) const;

  struct CollectionMatch {
    uint32_t query_pos = 0;
    uint32_t length = 0;
    std::vector<Hit> hits;
  };
  // All maximal matching substrings (>= min_len) of `query` against the
  // collection, expanded to all occurrences.
  std::vector<CollectionMatch> MatchAgainst(std::string_view query,
                                            uint32_t min_len) const;

  // Space accounting of the underlying compact layout.
  CompactSpineIndex::MemoryBreakdown LogicalBytes() const {
    return index_.LogicalBytes();
  }

  // The concatenated compact index (ASCII alphabet, separators
  // included) — what the core::Index adapter executes queries against.
  const CompactSpineIndex& underlying() const { return index_; }

  // --- Persistence ---------------------------------------------------------

  Status Save(const std::string& path) const;
  static Result<GeneralizedCompactSpine> Load(const std::string& path);

  // Zero-copy variant over an image already in memory (an mmap'd
  // .spinegen file): the outer header is parsed and copied (it is
  // tiny), the embedded compact image is borrowed in place via
  // LoadCompactSpineFromMemory. Same verify semantics and verdicts as
  // Load. `data` must be 8-aligned; `keepalive` is retained by the
  // inner index while it borrows from the buffer.
  static Result<GeneralizedCompactSpine> LoadFromMemory(
      const uint8_t* data, uint64_t size, bool verify,
      std::shared_ptr<const void> keepalive);

 private:
  bool MapPosition(uint32_t global, Hit* hit) const;

  Alphabet user_alphabet_;
  CompactSpineIndex index_;            // over Alphabet::Ascii()
  std::vector<uint32_t> boundaries_;   // global end (excl.) per string
  std::vector<std::string> names_;
};

}  // namespace spine

#endif  // SPINE_COMPACT_GENERALIZED_COMPACT_H_
