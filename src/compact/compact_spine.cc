#include "compact/compact_spine.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"
#include "core/search.h"

namespace spine {

CompactSpineIndex::CompactSpineIndex(const Alphabet& alphabet)
    : alphabet_(alphabet), codes_(alphabet.bits_per_code()) {
  SPINE_CHECK(alphabet.size() <= 127);  // CL fits 7 bits in a rib slot
  lt_word_.push_back(0);  // root entry, unused
  lt_lel_.push_back(0);
  root_rib_dest_.assign(alphabet.size(), kNoNode);
}

uint32_t CompactSpineIndex::LoadU32(const uint8_t* p) const {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void CompactSpineIndex::StoreU32(uint8_t* p, uint32_t v) {
  std::memcpy(p, &v, sizeof(v));
}

const uint8_t* CompactSpineIndex::RtEntry(NodeId node) const {
  uint32_t klass = Class(node);
  SPINE_DCHECK(klass >= 1 && klass <= 4);
  return rt_[klass - 1].data() +
         static_cast<uint64_t>(WordValue(node)) * RtStride(klass);
}

uint8_t* CompactSpineIndex::RtEntryMutable(NodeId node) {
  return const_cast<uint8_t*>(RtEntry(node));
}

uint32_t CompactSpineIndex::RibPt(const PackedRib& rib) const {
  return (rib.cl & kPtOverflowFlag) ? overflow_[rib.pt] : rib.pt;
}

uint16_t CompactSpineIndex::EncodeLabel(uint32_t value, bool* overflow) {
  if (value <= 0xffff) {
    *overflow = false;
    return static_cast<uint16_t>(value);
  }
  // The overflow index itself must fit in the 16-bit label slot.
  SPINE_CHECK_MSG(overflow_.size() < 0x10000, "label overflow table full");
  *overflow = true;
  overflow_.push_back(value);
  return static_cast<uint16_t>(overflow_.size() - 1);
}

NodeId CompactSpineIndex::LinkDest(NodeId i) const {
  SPINE_DCHECK(i >= 1 && i < lt_word_.size());
  uint32_t klass = Class(i);
  if (klass == 0) return WordValue(i);
  if (klass == kClassBig) return rt_big_.at(i).link_dest;
  return LoadU32(RtEntry(i));
}

uint32_t CompactSpineIndex::LinkLel(NodeId i) const {
  SPINE_DCHECK(i >= 1 && i < lt_lel_.size());
  if (lt_word_[i] & kLelOverflowBit) return overflow_[lt_lel_[i]];
  return lt_lel_[i];
}

void CompactSpineIndex::PushNode(NodeId dest, uint32_t lel) {
  bool ovf = false;
  uint16_t stored = EncodeLabel(lel, &ovf);
  uint32_t word = dest;  // class 0: the word is the link destination
  if (ovf) word |= kLelOverflowBit;
  lt_word_.push_back(word);
  lt_lel_.push_back(stored);
  max_lel_ = std::max(max_lel_, lel);
}

std::vector<CompactSpineIndex::RibView> CompactSpineIndex::RibsAt(
    NodeId node) const {
  std::vector<RibView> out;
  if (node == kRootNode) {
    for (uint32_t c = 0; c < root_rib_dest_.size(); ++c) {
      if (root_rib_dest_[c] != kNoNode) {
        out.push_back({static_cast<Code>(c), root_rib_dest_[c], 0});
      }
    }
    return out;
  }
  uint32_t klass = Class(node);
  if (klass == 0) return out;
  if (klass == kClassBig) {
    for (const PackedRib& rib : rt_big_.at(node).ribs) {
      out.push_back({static_cast<Code>(rib.cl & kClMask), rib.dest,
                     RibPt(rib)});
    }
    return out;
  }
  const uint8_t* entry = RtEntry(node);
  for (uint32_t k = 0; k < klass; ++k) {
    PackedRib rib;
    std::memcpy(&rib, entry + 4 + 7 * k, sizeof(rib));
    out.push_back(
        {static_cast<Code>(rib.cl & kClMask), rib.dest, RibPt(rib)});
  }
  return out;
}

bool CompactSpineIndex::FindRibAt(NodeId node, Code c, RibView* view) const {
  if (node == kRootNode) {
    if (root_rib_dest_[c] == kNoNode) return false;
    *view = {c, root_rib_dest_[c], 0};
    return true;
  }
  uint32_t klass = Class(node);
  if (klass == 0) return false;
  if (klass == kClassBig) {
    for (const PackedRib& rib : rt_big_.at(node).ribs) {
      if ((rib.cl & kClMask) == c) {
        *view = {c, rib.dest, RibPt(rib)};
        return true;
      }
    }
    return false;
  }
  const uint8_t* entry = RtEntry(node);
  for (uint32_t k = 0; k < klass; ++k) {
    PackedRib rib;
    std::memcpy(&rib, entry + 4 + 7 * k, sizeof(rib));
    if ((rib.cl & kClMask) == c) {
      *view = {c, rib.dest, RibPt(rib)};
      return true;
    }
  }
  return false;
}

void CompactSpineIndex::AddRib(NodeId node, Code c, NodeId dest, uint32_t pt) {
  max_pt_ = std::max(max_pt_, pt);
  if (node == kRootNode) {
    SPINE_DCHECK(root_rib_dest_[c] == kNoNode);
    root_rib_dest_[c] = dest;
    return;
  }
  bool ovf = false;
  PackedRib rib;
  rib.dest = dest;
  rib.pt = EncodeLabel(pt, &ovf);
  rib.cl = static_cast<uint8_t>(c) | (ovf ? kPtOverflowFlag : 0);

  uint32_t klass = Class(node);
  uint32_t flags = lt_word_[node] & (kLelOverflowBit | kHasExtribBit);
  if (klass == kClassBig) {
    rt_big_[node].ribs.push_back(rib);
    return;
  }
  uint32_t link_dest = klass == 0 ? WordValue(node) : LoadU32(RtEntry(node));
  if (klass == 4) {
    // Fan-out 5+: spill to the big map (protein alphabets only).
    BigEntry big;
    big.link_dest = link_dest;
    const uint8_t* entry = RtEntry(node);
    for (uint32_t k = 0; k < 4; ++k) {
      PackedRib old;
      std::memcpy(&old, entry + 4 + 7 * k, sizeof(old));
      big.ribs.push_back(old);
    }
    big.ribs.push_back(rib);
    rt_free_[3].push_back(WordValue(node));
    rt_big_.emplace(node, std::move(big));
    lt_word_[node] = (kClassBig << kClassShift) | flags;
    return;
  }

  // Migrate the node's entry from class `klass` to `klass + 1`.
  uint32_t new_class = klass + 1;
  auto& table = rt_[new_class - 1];
  uint32_t stride = RtStride(new_class);
  uint32_t slot;
  if (!rt_free_[new_class - 1].empty()) {
    slot = rt_free_[new_class - 1].back();
    rt_free_[new_class - 1].pop_back();
  } else {
    slot = static_cast<uint32_t>(table.size() / stride);
    table.resize(table.size() + stride);
  }
  uint8_t* dst = table.data() + static_cast<uint64_t>(slot) * stride;
  StoreU32(dst, link_dest);
  if (klass > 0) {
    const uint8_t* src = RtEntry(node);
    std::memcpy(dst + 4, src + 4, 7 * klass);
    rt_free_[klass - 1].push_back(WordValue(node));
  }
  std::memcpy(dst + 4 + 7 * klass, &rib, sizeof(rib));
  SPINE_CHECK(slot <= kValueMask);
  lt_word_[node] = (new_class << kClassShift) | flags | slot;
}

void CompactSpineIndex::SetExtrib(NodeId node, NodeId dest, uint32_t pt,
                                  uint32_t prt, NodeId parent_dest) {
  SPINE_DCHECK((lt_word_[node] & kHasExtribBit) == 0);
  max_pt_ = std::max(max_pt_, pt);
  max_prt_ = std::max(max_prt_, prt);
  ExtribEntry entry;
  entry.dest = dest;
  entry.parent_dest = parent_dest;
  bool pt_ovf = false, prt_ovf = false;
  entry.pt = EncodeLabel(pt, &pt_ovf);
  entry.prt = EncodeLabel(prt, &prt_ovf);
  entry.flags = (pt_ovf ? 1 : 0) | (prt_ovf ? 2 : 0);
  extribs_.emplace(node, entry);
  lt_word_[node] |= kHasExtribBit;
}

std::optional<CompactSpineIndex::ExtribView>
CompactSpineIndex::ExtribAtInternal(NodeId node) const {
  if (node == kRootNode || (lt_word_[node] & kHasExtribBit) == 0) {
    return std::nullopt;
  }
  const ExtribEntry& e = extribs_.at(node);
  ExtribView view;
  view.dest = e.dest;
  view.parent_dest = e.parent_dest;
  view.pt = (e.flags & 1) ? overflow_[e.pt] : e.pt;
  view.prt = (e.flags & 2) ? overflow_[e.prt] : e.prt;
  return view;
}

std::optional<CompactSpineIndex::ExtribView> CompactSpineIndex::ExtribAt(
    NodeId node) const {
  return ExtribAtInternal(node);
}

void CompactSpineIndex::EnsureOwnedTables() {
  if (backing_ == nullptr) return;
  lt_word_.EnsureOwned();
  lt_lel_.EnsureOwned();
  root_rib_dest_.EnsureOwned();
  for (uint32_t k = 0; k < 4; ++k) {
    rt_[k].EnsureOwned();
    rt_free_[k].EnsureOwned();
  }
  overflow_.EnsureOwned();
  // codes_ materializes itself on its first Append; force it here so
  // the index stops referencing the mapping entirely.
  std::vector<uint64_t> words(codes_.word_data(),
                              codes_.word_data() + codes_.word_count());
  codes_.RestoreFromWords(std::move(words), codes_.size());
  backing_.reset();
}

Status CompactSpineIndex::Append(char ch) {
  EnsureOwnedTables();
  Code c = alphabet_.Encode(ch);
  if (c == kInvalidCode) {
    return Status::InvalidArgument(
        std::string("character '") + ch + "' is not in the " +
        alphabet_.name() + " alphabet");
  }
  if (size() >= kMaxNodes) {
    return Status::ResourceExhausted(
        "compact SPINE supports at most 2^27 - 1 characters");
  }
  const NodeId old_tail = static_cast<NodeId>(size());
  const NodeId t = old_tail + 1;
  codes_.Append(c);

  if (old_tail == kRootNode) {
    PushNode(kRootNode, 0);
    return Status::OK();
  }

  // Identical walk to SpineIndex::Append, expressed over the tables.
  NodeId w = LinkDest(old_tail);
  uint32_t lel = LinkLel(old_tail);
  while (true) {
    if (codes_.Get(w) == c) {
      PushNode(w + 1, lel + 1);
      return Status::OK();
    }
    RibView rib;
    if (!FindRibAt(w, c, &rib)) {
      AddRib(w, c, t, lel);
      if (w == kRootNode) {
        PushNode(kRootNode, 0);
        return Status::OK();
      }
      lel = LinkLel(w);
      w = LinkDest(w);
      continue;
    }
    if (rib.pt >= lel) {
      PushNode(rib.dest, lel + 1);
      return Status::OK();
    }
    NodeId last_sibling_dest = rib.dest;
    uint32_t last_sibling_pt = rib.pt;
    NodeId x = rib.dest;
    while (true) {
      std::optional<ExtribView> e = ExtribAtInternal(x);
      if (!e.has_value()) break;
      if (e->prt == rib.pt && e->parent_dest == rib.dest) {
        if (e->pt >= lel) {
          PushNode(e->dest, lel + 1);
          return Status::OK();
        }
        last_sibling_dest = e->dest;
        last_sibling_pt = e->pt;
      }
      x = e->dest;
    }
    SetExtrib(x, t, lel, rib.pt, rib.dest);
    PushNode(last_sibling_dest, last_sibling_pt + 1);
    return Status::OK();
  }
}

Status CompactSpineIndex::AppendString(std::string_view s) {
  for (char ch : s) {
    SPINE_RETURN_IF_ERROR(Append(ch));
  }
  return Status::OK();
}

uint32_t CompactSpineIndex::MatchVertebraRun(
    NodeId node, const kernel::EncodedPattern& pattern,
    size_t pattern_pos) const {
  const uint64_t limit = std::min<uint64_t>(
      pattern.ValidRunLength(pattern_pos), size() - node);
  if (limit == 0) return 0;
  const uint32_t bits = codes_.bits_per_code();
  return static_cast<uint32_t>(kernel::MatchRunPacked(
      codes_.word_data(), codes_.word_count(),
      static_cast<uint64_t>(node) * bits, pattern.packed().words().data(),
      pattern.packed().words().size(),
      static_cast<uint64_t>(pattern_pos) * bits, limit, bits));
}

StepResult CompactSpineIndex::Step(NodeId node, Code c, uint32_t pathlen,
                                   SearchStats* stats) const {
  StepResult result;
  if (stats != nullptr) ++stats->nodes_checked;
  if (node < size() && codes_.Get(node) == c) {
    result.ok = true;
    result.has_edge = true;
    result.dest = node + 1;
    return result;
  }
  RibView rib;
  if (!FindRibAt(node, c, &rib)) return result;
  result.has_edge = true;
  if (pathlen <= rib.pt) {
    result.ok = true;
    result.dest = rib.dest;
    return result;
  }
  result.fallback_dest = rib.dest;
  result.fallback_pt = rib.pt;
  NodeId x = rib.dest;
  while (true) {
    std::optional<ExtribView> e = ExtribAtInternal(x);
    if (!e.has_value()) break;
    if (stats != nullptr) ++stats->chain_hops;
    if (e->prt == rib.pt && e->parent_dest == rib.dest) {
      if (e->pt >= pathlen) {
        result.ok = true;
        result.dest = e->dest;
        return result;
      }
      result.fallback_dest = e->dest;
      result.fallback_pt = e->pt;
    }
    x = e->dest;
  }
  return result;
}

bool CompactSpineIndex::Contains(std::string_view pattern) const {
  return FindFirstEnd(pattern).has_value();
}

std::optional<NodeId> CompactSpineIndex::FindFirstEnd(
    std::string_view pattern, SearchStats* stats) const {
  return GenericFindFirstEnd(*this, pattern, stats);
}

std::vector<uint32_t> CompactSpineIndex::FindAll(std::string_view pattern,
                                                 SearchStats* stats) const {
  return GenericFindAll(*this, pattern, stats);
}

uint64_t CompactSpineIndex::MemoryBreakdown::Total() const {
  uint64_t total = char_labels + link_table + big_entries + extrib_table +
                   overflow_table;
  for (uint64_t bytes : rib_tables) total += bytes;
  return total;
}

double CompactSpineIndex::MemoryBreakdown::BytesPerChar(uint64_t n) const {
  return n == 0 ? 0.0 : static_cast<double>(Total()) / static_cast<double>(n);
}

CompactSpineIndex::MemoryBreakdown CompactSpineIndex::LogicalBytes() const {
  MemoryBreakdown breakdown;
  const uint64_t n = size();
  breakdown.char_labels = (n * alphabet_.bits_per_code() + 7) / 8;
  breakdown.link_table =
      6 * (n + 1) + root_rib_dest_.size() * sizeof(uint32_t);
  for (uint32_t k = 0; k < 4; ++k) {
    breakdown.rib_tables[k] = rt_[k].size();
  }
  for (const auto& [node, big] : rt_big_) {
    breakdown.big_entries += 4 + 4 + 7 * big.ribs.size();
  }
  breakdown.extrib_table = extribs_.size() * (4 + sizeof(ExtribEntry));
  breakdown.overflow_table = overflow_.size() * sizeof(uint32_t);
  return breakdown;
}

uint64_t CompactSpineIndex::MemoryBytes() const {
  constexpr uint64_t kHashNodeOverhead = 32;
  uint64_t total = codes_.MemoryBytes() +
                   lt_word_.capacity() * sizeof(uint32_t) +
                   lt_lel_.capacity() * sizeof(uint16_t) +
                   root_rib_dest_.capacity() * sizeof(uint32_t) +
                   overflow_.capacity() * sizeof(uint32_t);
  for (uint32_t k = 0; k < 4; ++k) {
    total += rt_[k].capacity() + rt_free_[k].capacity() * sizeof(uint32_t);
  }
  for (const auto& [node, big] : rt_big_) {
    total += sizeof(BigEntry) + big.ribs.capacity() * sizeof(PackedRib) +
             kHashNodeOverhead;
  }
  total += extribs_.size() * (sizeof(ExtribEntry) + 4 + kHashNodeOverhead);
  return total;
}

std::array<uint64_t, 5> CompactSpineIndex::FanoutCounts() const {
  std::array<uint64_t, 5> counts = {0, 0, 0, 0, 0};
  for (NodeId i = 1; i < lt_word_.size(); ++i) {
    uint32_t klass = Class(i);
    if (klass >= 1 && klass <= 4) {
      ++counts[klass - 1];
    } else if (klass == kClassBig) {
      ++counts[4];
    }
  }
  return counts;
}

std::array<uint64_t, 6> CompactSpineIndex::FanoutCountsWithExtribs() const {
  std::array<uint64_t, 6> counts = {0, 0, 0, 0, 0, 0};
  uint64_t root_edges = 0;
  for (uint32_t dest : root_rib_dest_) {
    if (dest != kNoNode) ++root_edges;
  }
  if (root_edges > 0) ++counts[std::min<uint64_t>(root_edges, 6) - 1];
  for (NodeId i = 1; i < lt_word_.size(); ++i) {
    uint32_t klass = Class(i);
    uint64_t edges = klass == kClassBig ? rt_big_.at(i).ribs.size() : klass;
    if (lt_word_[i] & kHasExtribBit) ++edges;
    if (edges == 0) continue;
    ++counts[std::min<uint64_t>(edges, 6) - 1];
  }
  return counts;
}

Status CompactSpineIndex::Validate() const {
  const NodeId n = static_cast<NodeId>(size());
  if (lt_word_.size() != n + 1 || lt_lel_.size() != n + 1) {
    return Status::Corruption("link table size mismatch");
  }
  // Raw-field validation of every rib slot a node can reach. Runs
  // BEFORE any decoded accessor (RibsAt/LinkLel) so that corrupt
  // overflow indexes are caught instead of dereferenced.
  auto check_raw_rib = [&](NodeId node, const PackedRib& rib) -> Status {
    if ((rib.cl & kPtOverflowFlag) && rib.pt >= overflow_.size()) {
      return Status::Corruption("rib PT overflow index out of range at node " +
                                std::to_string(node));
    }
    if ((rib.cl & kClMask) >= alphabet_.size()) {
      return Status::Corruption("invalid rib CL at node " +
                                std::to_string(node));
    }
    if (rib.dest > n) {
      return Status::Corruption("rib destination beyond tail at node " +
                                std::to_string(node));
    }
    return Status::OK();
  };
  for (uint32_t dest : root_rib_dest_) {
    if (dest != kNoNode && dest > n) {
      return Status::Corruption("root rib destination beyond tail");
    }
  }
  uint64_t extrib_bits = 0;
  for (NodeId i = 1; i <= n; ++i) {
    uint32_t klass = Class(i);
    if (klass > kClassBig) {
      return Status::Corruption("invalid class at node " + std::to_string(i));
    }
    if (klass == kClassBig && rt_big_.find(i) == rt_big_.end()) {
      return Status::Corruption("missing big entry for node " +
                                std::to_string(i));
    }
    if (klass >= 1 && klass <= 4) {
      uint64_t offset =
          static_cast<uint64_t>(WordValue(i)) * RtStride(klass);
      if (offset + RtStride(klass) > rt_[klass - 1].size()) {
        return Status::Corruption("RT pointer out of range at node " +
                                  std::to_string(i));
      }
      const uint8_t* entry = RtEntry(i);
      for (uint32_t k = 0; k < klass; ++k) {
        PackedRib rib;
        std::memcpy(&rib, entry + 4 + 7 * k, sizeof(rib));
        SPINE_RETURN_IF_ERROR(check_raw_rib(i, rib));
      }
    }
    if (klass == kClassBig) {
      for (const PackedRib& rib : rt_big_.at(i).ribs) {
        SPINE_RETURN_IF_ERROR(check_raw_rib(i, rib));
      }
    }
    if ((lt_word_[i] & kLelOverflowBit) && lt_lel_[i] >= overflow_.size()) {
      return Status::Corruption("LEL overflow index out of range at node " +
                                std::to_string(i));
    }
    if (lt_word_[i] & kHasExtribBit) {
      auto it = extribs_.find(i);
      if (it == extribs_.end()) {
        return Status::Corruption("extrib bit without entry at node " +
                                  std::to_string(i));
      }
      const ExtribEntry& e = it->second;
      if (((e.flags & 1) && e.pt >= overflow_.size()) ||
          ((e.flags & 2) && e.prt >= overflow_.size())) {
        return Status::Corruption(
            "extrib overflow index out of range at node " +
            std::to_string(i));
      }
      if (e.dest <= i || e.dest > n || e.parent_dest > n) {
        return Status::Corruption("extrib destinations invalid at node " +
                                  std::to_string(i));
      }
    }
    if (LinkDest(i) >= i) {
      return Status::Corruption("link not upstream at node " +
                                std::to_string(i));
    }
    if (LinkLel(i) > LinkDest(i)) {
      return Status::Corruption("LEL exceeds destination prefix at node " +
                                std::to_string(i));
    }
    if (lt_word_[i] & kHasExtribBit) ++extrib_bits;
    for (const RibView& rib : RibsAt(i)) {
      if (rib.dest <= i) {
        return Status::Corruption("rib not downstream at node " +
                                  std::to_string(i));
      }
    }
  }
  if (extrib_bits != extribs_.size()) {
    return Status::Corruption("extrib bit/entry count mismatch");
  }
  return Status::OK();
}

}  // namespace spine
