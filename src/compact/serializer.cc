#include "compact/serializer.h"

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <vector>

#include "common/serde.h"

namespace spine {

namespace {

constexpr uint32_t kMagic = 0x53504e45;  // "SPNE"
// v3: whole-image CRC32C footer after the trailer.
constexpr uint32_t kVersion = 3;

}  // namespace

class CompactSpineSerializer {
 public:
  static Status Save(const CompactSpineIndex& index, std::ostream& out) {
    serde::Writer w(out);
    w.Pod(kMagic);
    w.Pod(kVersion);
    w.Pod(static_cast<uint32_t>(index.alphabet_.kind()));
    w.Pod<uint64_t>(index.size());
    w.Vec(index.codes_.words());
    w.Vec(index.lt_word_);
    w.Vec(index.lt_lel_);
    w.Vec(index.root_rib_dest_);
    for (int k = 0; k < 4; ++k) w.Vec(index.rt_[k]);
    for (int k = 0; k < 4; ++k) w.Vec(index.rt_free_[k]);
    w.Pod<uint64_t>(index.rt_big_.size());
    for (const auto& [node, big] : index.rt_big_) {
      w.Pod(node);
      w.Pod(big.link_dest);
      w.Vec(big.ribs);
    }
    w.Pod<uint64_t>(index.extribs_.size());
    for (const auto& [node, entry] : index.extribs_) {
      w.Pod(node);
      w.Pod(entry);
    }
    w.Vec(index.overflow_);
    w.Pod(index.max_lel_);
    w.Pod(index.max_pt_);
    w.Pod(index.max_prt_);
    w.WriteCrcFooter();
    out.flush();
    if (!out) return Status::IoError("stream write failure");
    return Status::OK();
  }

  static Result<CompactSpineIndex> Load(std::istream& in,
                                        const std::string& path) {
    serde::Reader r(in);
    uint32_t magic = 0, version = 0, kind = 0;
    uint64_t n = 0;
    if (!r.Pod(&magic) || magic != kMagic) {
      return Status::Corruption("bad magic in " + path);
    }
    if (!r.Pod(&version) || version != kVersion) {
      return Status::Corruption("unsupported version in " + path);
    }
    if (!r.Pod(&kind) || kind > 3) {
      return Status::Corruption("bad alphabet kind in " + path);
    }
    Alphabet alphabet = Alphabet::Dna();
    switch (static_cast<Alphabet::Kind>(kind)) {
      case Alphabet::Kind::kDna:
        break;
      case Alphabet::Kind::kProtein:
        alphabet = Alphabet::Protein();
        break;
      case Alphabet::Kind::kByte:
        return Status::Corruption(
            "compact images do not support the byte alphabet");
      case Alphabet::Kind::kAscii:
        alphabet = Alphabet::Ascii();
        break;
    }
    CompactSpineIndex index(alphabet);
    if (!r.Pod(&n)) return Status::Corruption("truncated header in " + path);

    std::vector<uint64_t> words;
    if (!r.Vec(&words)) return Status::Corruption("truncated CL in " + path);
    if (words.size() * 64 < n * alphabet.bits_per_code()) {
      return Status::Corruption("CL words inconsistent with size");
    }
    index.codes_.RestoreFromWords(std::move(words), n);

    if (!r.Vec(&index.lt_word_) || !r.Vec(&index.lt_lel_) ||
        !r.Vec(&index.root_rib_dest_)) {
      return Status::Corruption("truncated LT in " + path);
    }
    if (index.lt_word_.size() != n + 1 || index.lt_lel_.size() != n + 1 ||
        index.root_rib_dest_.size() != alphabet.size()) {
      return Status::Corruption("LT sizes inconsistent in " + path);
    }
    for (int k = 0; k < 4; ++k) {
      if (!r.Vec(&index.rt_[k])) {
        return Status::Corruption("truncated RT in " + path);
      }
      if (index.rt_[k].size() %
              CompactSpineIndex::RtStride(static_cast<uint32_t>(k) + 1) !=
          0) {
        return Status::Corruption("RT stride misalignment in " + path);
      }
    }
    for (int k = 0; k < 4; ++k) {
      if (!r.Vec(&index.rt_free_[k])) {
        return Status::Corruption("truncated RT free list in " + path);
      }
    }
    uint64_t big_count = 0;
    if (!r.Pod(&big_count)) return Status::Corruption("truncated big table");
    for (uint64_t i = 0; i < big_count; ++i) {
      uint32_t node = 0;
      CompactSpineIndex::BigEntry big;
      if (!r.Pod(&node) || !r.Pod(&big.link_dest) || !r.Vec(&big.ribs)) {
        return Status::Corruption("truncated big entry in " + path);
      }
      index.rt_big_.emplace(node, std::move(big));
    }
    uint64_t ext_count = 0;
    if (!r.Pod(&ext_count)) return Status::Corruption("truncated extribs");
    for (uint64_t i = 0; i < ext_count; ++i) {
      uint32_t node = 0;
      CompactSpineIndex::ExtribEntry entry;
      if (!r.Pod(&node) || !r.Pod(&entry)) {
        return Status::Corruption("truncated extrib entry in " + path);
      }
      index.extribs_.emplace(node, entry);
    }
    if (!r.Vec(&index.overflow_)) {
      return Status::Corruption("truncated overflow table in " + path);
    }
    if (!r.Pod(&index.max_lel_) || !r.Pod(&index.max_pt_) ||
        !r.Pod(&index.max_prt_)) {
      return Status::Corruption("truncated trailer in " + path);
    }
    // Whole-image checksum before any structural verdict: a payload
    // flip that happens to parse is still rejected here.
    if (!r.VerifyCrcFooter()) {
      return Status::Corruption("image checksum mismatch in " + path);
    }
    Status valid = index.Validate();
    if (!valid.ok()) return valid;
    return index;
  }
};

Status SaveCompactSpine(const CompactSpineIndex& index,
                        const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open " + path +
                           " for writing: " + std::strerror(errno));
  }
  return CompactSpineSerializer::Save(index, out);
}

Result<CompactSpineIndex> LoadCompactSpine(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  return CompactSpineSerializer::Load(in, path);
}

Status SaveCompactSpineToStream(const CompactSpineIndex& index,
                                std::ostream& out) {
  return CompactSpineSerializer::Save(index, out);
}

Result<CompactSpineIndex> LoadCompactSpineFromStream(std::istream& in) {
  return CompactSpineSerializer::Load(in, "<stream>");
}

}  // namespace spine
