#include "compact/serializer.h"

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/serde.h"

namespace spine {

namespace {

constexpr uint32_t kMagic = 0x53504e45;  // "SPNE"
// v3: whole-image CRC32C footer after the trailer.
// v4: flat-table payloads 8-aligned (CRC-covered zero pads) so the
//     zero-copy loader can point into the image without misaligned
//     typed loads.
constexpr uint32_t kVersion = 4;

}  // namespace

class CompactSpineSerializer {
 public:
  static Status Save(const CompactSpineIndex& index, std::ostream& out) {
    serde::Writer w(out);
    w.Pod(kMagic);
    w.Pod(kVersion);
    w.Pod(static_cast<uint32_t>(index.alphabet_.kind()));
    w.Pod<uint64_t>(index.size());
    // Every flat table a reader may borrow is Align8'd: the pad puts
    // the 8-byte count at an 8-aligned image offset, so the payload
    // right after it is 8-aligned too (≥ any element alignment).
    w.Align8();
    w.Vec(index.codes_.word_data(), index.codes_.word_count());
    w.Align8();
    w.Vec(index.lt_word_.data(), index.lt_word_.size());
    w.Align8();
    w.Vec(index.lt_lel_.data(), index.lt_lel_.size());
    w.Align8();
    w.Vec(index.root_rib_dest_.data(), index.root_rib_dest_.size());
    for (int k = 0; k < 4; ++k) {
      w.Align8();
      w.Vec(index.rt_[k].data(), index.rt_[k].size());
    }
    for (int k = 0; k < 4; ++k) {
      w.Align8();
      w.Vec(index.rt_free_[k].data(), index.rt_free_[k].size());
    }
    // Hash-map payloads are rebuilt at open on every path, so they
    // stay unaligned (and unpadded).
    w.Pod<uint64_t>(index.rt_big_.size());
    for (const auto& [node, big] : index.rt_big_) {
      w.Pod(node);
      w.Pod(big.link_dest);
      w.Vec(big.ribs);
    }
    w.Pod<uint64_t>(index.extribs_.size());
    for (const auto& [node, entry] : index.extribs_) {
      w.Pod(node);
      w.Pod(entry);
    }
    w.Align8();
    w.Vec(index.overflow_.data(), index.overflow_.size());
    w.Pod(index.max_lel_);
    w.Pod(index.max_pt_);
    w.Pod(index.max_prt_);
    w.WriteCrcFooter();
    out.flush();
    if (!out) return Status::IoError("stream write failure");
    return Status::OK();
  }

  // Shared header parse: magic/version/alphabet. Templated over
  // serde::Reader and serde::MapReader (identical Pod interface).
  template <typename R>
  static Result<Alphabet> ReadHeader(R& r, const std::string& path) {
    uint32_t magic = 0, version = 0, kind = 0;
    if (!r.Pod(&magic) || magic != kMagic) {
      return Status::Corruption("bad magic in " + path);
    }
    if (!r.Pod(&version) || version != kVersion) {
      return Status::Corruption("unsupported version in " + path);
    }
    if (!r.Pod(&kind) || kind > 3) {
      return Status::Corruption("bad alphabet kind in " + path);
    }
    switch (static_cast<Alphabet::Kind>(kind)) {
      case Alphabet::Kind::kDna:
        return Alphabet::Dna();
      case Alphabet::Kind::kProtein:
        return Alphabet::Protein();
      case Alphabet::Kind::kByte:
        return Status::Corruption(
            "compact images do not support the byte alphabet");
      case Alphabet::Kind::kAscii:
        return Alphabet::Ascii();
    }
    return Status::Corruption("bad alphabet kind in " + path);
  }

  // Shared post-parse geometry checks (run on both open paths, in the
  // same order, so they reach the same verdict).
  static Status CheckGeometry(const CompactSpineIndex& index, uint64_t n,
                              uint64_t cl_words, const std::string& path) {
    if (cl_words * 64 < n * index.alphabet_.bits_per_code()) {
      return Status::Corruption("CL words inconsistent with size");
    }
    if (index.lt_word_.size() != n + 1 || index.lt_lel_.size() != n + 1 ||
        index.root_rib_dest_.size() != index.alphabet_.size()) {
      return Status::Corruption("LT sizes inconsistent in " + path);
    }
    for (uint32_t k = 0; k < 4; ++k) {
      if (index.rt_[k].size() % CompactSpineIndex::RtStride(k + 1) != 0) {
        return Status::Corruption("RT stride misalignment in " + path);
      }
    }
    return Status::OK();
  }

  static Result<CompactSpineIndex> Load(std::istream& in,
                                        const std::string& path) {
    serde::Reader r(in);
    Result<Alphabet> alphabet = ReadHeader(r, path);
    if (!alphabet.ok()) return alphabet.status();
    CompactSpineIndex index(*alphabet);
    uint64_t n = 0;
    if (!r.Pod(&n)) return Status::Corruption("truncated header in " + path);

    auto aligned_vec = [&r](auto* bv) -> bool {
      using T = std::decay_t<decltype((*bv)[0])>;
      std::vector<T> tmp;
      if (!r.Align8() || !r.Vec(&tmp)) return false;
      bv->Adopt(std::move(tmp));
      return true;
    };

    std::vector<uint64_t> words;
    if (!r.Align8() || !r.Vec(&words)) {
      return Status::Corruption("truncated CL in " + path);
    }
    uint64_t cl_words = words.size();
    if (!aligned_vec(&index.lt_word_) || !aligned_vec(&index.lt_lel_) ||
        !aligned_vec(&index.root_rib_dest_)) {
      return Status::Corruption("truncated LT in " + path);
    }
    for (int k = 0; k < 4; ++k) {
      if (!aligned_vec(&index.rt_[k])) {
        return Status::Corruption("truncated RT in " + path);
      }
    }
    for (int k = 0; k < 4; ++k) {
      if (!aligned_vec(&index.rt_free_[k])) {
        return Status::Corruption("truncated RT free list in " + path);
      }
    }
    uint64_t big_count = 0;
    if (!r.Pod(&big_count)) return Status::Corruption("truncated big table");
    for (uint64_t i = 0; i < big_count; ++i) {
      uint32_t node = 0;
      CompactSpineIndex::BigEntry big;
      if (!r.Pod(&node) || !r.Pod(&big.link_dest) || !r.Vec(&big.ribs)) {
        return Status::Corruption("truncated big entry in " + path);
      }
      index.rt_big_.emplace(node, std::move(big));
    }
    uint64_t ext_count = 0;
    if (!r.Pod(&ext_count)) return Status::Corruption("truncated extribs");
    for (uint64_t i = 0; i < ext_count; ++i) {
      uint32_t node = 0;
      CompactSpineIndex::ExtribEntry entry;
      if (!r.Pod(&node) || !r.Pod(&entry)) {
        return Status::Corruption("truncated extrib entry in " + path);
      }
      index.extribs_.emplace(node, entry);
    }
    if (!aligned_vec(&index.overflow_)) {
      return Status::Corruption("truncated overflow table in " + path);
    }
    if (!r.Pod(&index.max_lel_) || !r.Pod(&index.max_pt_) ||
        !r.Pod(&index.max_prt_)) {
      return Status::Corruption("truncated trailer in " + path);
    }
    // Geometry before RestoreFromWords: its SPINE_CHECK must only see
    // images whose word count already passed the corruption check.
    SPINE_RETURN_IF_ERROR(CheckGeometry(index, n, cl_words, path));
    index.codes_.RestoreFromWords(std::move(words), n);
    // Whole-image checksum before any structural verdict: a payload
    // flip that happens to parse is still rejected here.
    if (!r.VerifyCrcFooter()) {
      return Status::Corruption("image checksum mismatch in " + path);
    }
    Status valid = index.Validate();
    if (!valid.ok()) return valid;
    return index;
  }

  static Result<CompactSpineIndex> LoadFromMemory(
      const uint8_t* data, uint64_t size, bool verify,
      std::shared_ptr<const void> keepalive, uint64_t* consumed) {
    const std::string path = "<memory>";
    serde::MapReader r(data, size, /*verify_crc=*/verify);
    Result<Alphabet> alphabet = ReadHeader(r, path);
    if (!alphabet.ok()) return alphabet.status();
    CompactSpineIndex index(*alphabet);
    uint64_t n = 0;
    if (!r.Pod(&n)) return Status::Corruption("truncated header in " + path);

    auto aligned_view = [&r](auto* bv) -> bool {
      using T = std::decay_t<decltype((*bv)[0])>;
      const T* p = nullptr;
      uint64_t count = 0;
      if (!r.Align8() || !r.View(&p, &count)) return false;
      bv->Borrow(p, count);
      return true;
    };

    const uint64_t* words = nullptr;
    uint64_t cl_words = 0;
    if (!r.Align8() || !r.View(&words, &cl_words)) {
      return Status::Corruption("truncated CL in " + path);
    }
    if (!aligned_view(&index.lt_word_) || !aligned_view(&index.lt_lel_) ||
        !aligned_view(&index.root_rib_dest_)) {
      return Status::Corruption("truncated LT in " + path);
    }
    for (int k = 0; k < 4; ++k) {
      if (!aligned_view(&index.rt_[k])) {
        return Status::Corruption("truncated RT in " + path);
      }
    }
    for (int k = 0; k < 4; ++k) {
      if (!aligned_view(&index.rt_free_[k])) {
        return Status::Corruption("truncated RT free list in " + path);
      }
    }
    uint64_t big_count = 0;
    if (!r.Pod(&big_count)) return Status::Corruption("truncated big table");
    for (uint64_t i = 0; i < big_count; ++i) {
      uint32_t node = 0;
      CompactSpineIndex::BigEntry big;
      if (!r.Pod(&node) || !r.Pod(&big.link_dest) || !r.Vec(&big.ribs)) {
        return Status::Corruption("truncated big entry in " + path);
      }
      index.rt_big_.emplace(node, std::move(big));
    }
    uint64_t ext_count = 0;
    if (!r.Pod(&ext_count)) return Status::Corruption("truncated extribs");
    for (uint64_t i = 0; i < ext_count; ++i) {
      uint32_t node = 0;
      CompactSpineIndex::ExtribEntry entry;
      if (!r.Pod(&node) || !r.Pod(&entry)) {
        return Status::Corruption("truncated extrib entry in " + path);
      }
      index.extribs_.emplace(node, entry);
    }
    if (!aligned_view(&index.overflow_)) {
      return Status::Corruption("truncated overflow table in " + path);
    }
    if (!r.Pod(&index.max_lel_) || !r.Pod(&index.max_pt_) ||
        !r.Pod(&index.max_prt_)) {
      return Status::Corruption("truncated trailer in " + path);
    }
    SPINE_RETURN_IF_ERROR(CheckGeometry(index, n, cl_words, path));
    index.codes_.BorrowFromWords(words, cl_words, n);
    if (!r.VerifyCrcFooter()) {
      return Status::Corruption("image checksum mismatch in " + path);
    }
    if (verify) {
      Status valid = index.Validate();
      if (!valid.ok()) return valid;
    }
    index.backing_ = std::move(keepalive);
    if (consumed != nullptr) *consumed = r.offset();
    return index;
  }
};

Status SaveCompactSpine(const CompactSpineIndex& index,
                        const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open " + path +
                           " for writing: " + std::strerror(errno));
  }
  return CompactSpineSerializer::Save(index, out);
}

Result<CompactSpineIndex> LoadCompactSpine(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  return CompactSpineSerializer::Load(in, path);
}

Status SaveCompactSpineToStream(const CompactSpineIndex& index,
                                std::ostream& out) {
  return CompactSpineSerializer::Save(index, out);
}

Result<CompactSpineIndex> LoadCompactSpineFromStream(std::istream& in) {
  return CompactSpineSerializer::Load(in, "<stream>");
}

Result<CompactSpineIndex> LoadCompactSpineFromMemory(
    const uint8_t* data, uint64_t size, bool verify,
    std::shared_ptr<const void> keepalive, uint64_t* consumed) {
  return CompactSpineSerializer::LoadFromMemory(data, size, verify,
                                                std::move(keepalive),
                                                consumed);
}

}  // namespace spine
