#include "compact/generalized_compact.h"

#include <algorithm>
#include <fstream>
#include <optional>

#include "common/check.h"
#include "common/serde.h"
#include "compact/serializer.h"
#include "core/matcher.h"

namespace spine {

namespace {
constexpr uint32_t kGenMagic = 0x53504e47;  // "SPNG"
// v2: the outer header (boundaries + names) carries its own CRC32C
// footer, and a zero pad puts the embedded compact image at an
// 8-aligned file offset so the zero-copy loader can borrow from it.
constexpr uint32_t kGenVersion = 2;
}  // namespace

GeneralizedCompactSpine::GeneralizedCompactSpine(const Alphabet& alphabet)
    : user_alphabet_(alphabet), index_(Alphabet::Ascii()) {}

Status GeneralizedCompactSpine::AddString(std::string_view s,
                                          std::string name) {
  // Validate and canonicalize (the user alphabet may fold case; the
  // inner ASCII index is byte-exact).
  std::string canonical;
  canonical.reserve(s.size() + 1);
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == kSeparator) {
      return Status::InvalidArgument("string contains the separator");
    }
    Code code = user_alphabet_.Encode(s[i]);
    if (code == kInvalidCode) {
      return Status::InvalidArgument(
          "character at offset " + std::to_string(i) + " is not in the " +
          user_alphabet_.name() + " alphabet");
    }
    canonical.push_back(user_alphabet_.Decode(code));
  }
  SPINE_RETURN_IF_ERROR(index_.AppendString(canonical));
  Status status = index_.Append(kSeparator);
  SPINE_CHECK(status.ok());
  boundaries_.push_back(static_cast<uint32_t>(index_.size()));
  names_.push_back(name.empty() ? "string-" + std::to_string(names_.size())
                                : std::move(name));
  return Status::OK();
}

uint32_t GeneralizedCompactSpine::StringLength(uint32_t id) const {
  SPINE_CHECK(id < boundaries_.size());
  uint32_t start = id == 0 ? 0 : boundaries_[id - 1];
  return boundaries_[id] - start - 1;  // minus the separator
}

std::string GeneralizedCompactSpine::StringText(uint32_t id) const {
  SPINE_CHECK(id < boundaries_.size());
  const uint32_t start = id == 0 ? 0 : boundaries_[id - 1];
  const uint32_t length = StringLength(id);
  std::string text;
  text.reserve(length);
  for (uint32_t i = 0; i < length; ++i) {
    text.push_back(index_.CharAt(start + i));
  }
  return text;
}

bool GeneralizedCompactSpine::MapPosition(uint32_t global, Hit* hit) const {
  auto it = std::upper_bound(boundaries_.begin(), boundaries_.end(), global);
  if (it == boundaries_.end()) return false;
  uint32_t id = static_cast<uint32_t>(it - boundaries_.begin());
  hit->string_id = id;
  hit->offset = global - (id == 0 ? 0 : boundaries_[id - 1]);
  return true;
}

namespace {

// Canonicalizes a query through the user alphabet; nullopt if any
// character is invalid (such a query can never match).
std::optional<std::string> Canonicalize(const Alphabet& alphabet,
                                        std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == GeneralizedCompactSpine::kSeparator) return std::nullopt;
    Code code = alphabet.Encode(c);
    if (code == kInvalidCode) return std::nullopt;
    out.push_back(alphabet.Decode(code));
  }
  return out;
}

}  // namespace

bool GeneralizedCompactSpine::Contains(std::string_view pattern) const {
  auto canonical = Canonicalize(user_alphabet_, pattern);
  return canonical.has_value() && index_.Contains(*canonical);
}

std::vector<GeneralizedCompactSpine::Hit> GeneralizedCompactSpine::FindAll(
    std::string_view pattern) const {
  std::vector<Hit> hits;
  auto canonical = Canonicalize(user_alphabet_, pattern);
  if (!canonical.has_value() || canonical->empty()) return hits;
  for (uint32_t global : index_.FindAll(*canonical)) {
    Hit hit;
    if (MapPosition(global, &hit)) hits.push_back(hit);
  }
  std::sort(hits.begin(), hits.end(), [](const Hit& a, const Hit& b) {
    return a.string_id != b.string_id ? a.string_id < b.string_id
                                      : a.offset < b.offset;
  });
  return hits;
}

std::vector<GeneralizedCompactSpine::CollectionMatch>
GeneralizedCompactSpine::MatchAgainst(std::string_view query,
                                      uint32_t min_len) const {
  std::vector<CollectionMatch> out;
  if (min_len == 0) return out;
  auto canonical = Canonicalize(user_alphabet_, query);
  if (!canonical.has_value()) return out;
  auto matches = GenericFindMaximalMatches(index_, *canonical, min_len);
  auto expanded = GenericCollectAllOccurrences(index_, matches);
  out.reserve(expanded.size());
  for (const MatchOccurrences& occ : expanded) {
    CollectionMatch match;
    match.query_pos = occ.match.query_pos;
    match.length = occ.match.length;
    for (uint32_t global : occ.data_positions) {
      Hit hit;
      if (MapPosition(global, &hit)) match.hits.push_back(hit);
    }
    std::sort(match.hits.begin(), match.hits.end(),
              [](const Hit& a, const Hit& b) {
                return a.string_id != b.string_id ? a.string_id < b.string_id
                                                  : a.offset < b.offset;
              });
    out.push_back(std::move(match));
  }
  return out;
}

Status GeneralizedCompactSpine::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  serde::Writer w(out);
  w.Pod(kGenMagic);
  w.Pod(kGenVersion);
  w.Pod(static_cast<uint32_t>(user_alphabet_.kind()));
  w.Vec(boundaries_);
  w.Pod<uint64_t>(names_.size());
  for (const std::string& name : names_) {
    w.Pod<uint32_t>(static_cast<uint32_t>(name.size()));
    w.Bytes(name.data(), name.size());
  }
  // Close the outer header with its own checksum, padded so the inner
  // image (self-checksummed) starts at an 8-aligned file offset.
  w.AlignForFooter8();
  w.WriteCrcFooter();
  SPINE_RETURN_IF_ERROR(SaveCompactSpineToStream(index_, out));
  out.flush();
  if (!out) return Status::IoError("write failure on " + path);
  return Status::OK();
}

namespace {

// The parsed outer header. Shared between the stream and memory open
// paths (serde::Reader and serde::MapReader expose the same reading
// interface), so both reach identical verdicts on any byte sequence.
struct OuterHeader {
  uint32_t kind = 0;
  std::vector<uint32_t> boundaries;
  std::vector<std::string> names;
};

template <typename R>
Status ParseOuterHeader(R& r, const std::string& path, OuterHeader* out) {
  uint32_t magic = 0, version = 0;
  if (!r.Pod(&magic) || magic != kGenMagic) {
    return Status::Corruption("bad generalized-index magic in " + path);
  }
  if (!r.Pod(&version) || version != kGenVersion) {
    return Status::Corruption("unsupported generalized-index version");
  }
  if (!r.Pod(&out->kind) || out->kind > 3 ||
      out->kind == static_cast<uint32_t>(Alphabet::Kind::kByte)) {
    return Status::Corruption("bad alphabet kind in " + path);
  }
  if (!r.Vec(&out->boundaries)) {
    return Status::Corruption("truncated boundaries in " + path);
  }
  uint64_t name_count = 0;
  if (!r.Pod(&name_count) || name_count != out->boundaries.size()) {
    return Status::Corruption("name/boundary count mismatch in " + path);
  }
  for (uint64_t i = 0; i < name_count; ++i) {
    uint32_t length = 0;
    if (!r.Pod(&length) || length > 4096) {
      return Status::Corruption("bad name length in " + path);
    }
    std::string name(length, '\0');
    if (length > 0 && !r.Bytes(name.data(), length)) {
      return Status::Corruption("truncated name in " + path);
    }
    out->names.push_back(std::move(name));
  }
  if (!r.AlignForFooter8()) {
    return Status::Corruption("bad header padding in " + path);
  }
  if (!r.VerifyCrcFooter()) {
    return Status::Corruption("header checksum mismatch in " + path);
  }
  return Status::OK();
}

Alphabet AlphabetForKind(uint32_t kind) {
  if (kind == static_cast<uint32_t>(Alphabet::Kind::kProtein)) {
    return Alphabet::Protein();
  }
  if (kind == static_cast<uint32_t>(Alphabet::Kind::kAscii)) {
    return Alphabet::Ascii();
  }
  return Alphabet::Dna();
}

}  // namespace

Result<GeneralizedCompactSpine> GeneralizedCompactSpine::Load(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  serde::Reader r(in);
  OuterHeader header;
  SPINE_RETURN_IF_ERROR(ParseOuterHeader(r, path, &header));
  GeneralizedCompactSpine generalized(AlphabetForKind(header.kind));
  generalized.boundaries_ = std::move(header.boundaries);
  generalized.names_ = std::move(header.names);
  Result<CompactSpineIndex> inner = LoadCompactSpineFromStream(in);
  if (!inner.ok()) return inner.status();
  if (inner->alphabet().kind() != Alphabet::Kind::kAscii) {
    return Status::Corruption("inner index alphabet mismatch in " + path);
  }
  if (!generalized.boundaries_.empty() &&
      generalized.boundaries_.back() != inner->size()) {
    return Status::Corruption("boundaries inconsistent with index size");
  }
  generalized.index_ = std::move(inner).value();
  return generalized;
}

Result<GeneralizedCompactSpine> GeneralizedCompactSpine::LoadFromMemory(
    const uint8_t* data, uint64_t size, bool verify,
    std::shared_ptr<const void> keepalive) {
  const std::string path = "<memory>";
  serde::MapReader r(data, size, /*verify_crc=*/verify);
  OuterHeader header;
  SPINE_RETURN_IF_ERROR(ParseOuterHeader(r, path, &header));
  GeneralizedCompactSpine generalized(AlphabetForKind(header.kind));
  generalized.boundaries_ = std::move(header.boundaries);
  generalized.names_ = std::move(header.names);
  // The inner image starts here, at an 8-aligned offset by
  // construction; borrow it in place.
  uint64_t inner_start = r.offset();
  Result<CompactSpineIndex> inner = LoadCompactSpineFromMemory(
      data + inner_start, size - inner_start, verify, std::move(keepalive));
  if (!inner.ok()) return inner.status();
  if (inner->alphabet().kind() != Alphabet::Kind::kAscii) {
    return Status::Corruption("inner index alphabet mismatch in " + path);
  }
  if (!generalized.boundaries_.empty() &&
      generalized.boundaries_.back() != inner->size()) {
    return Status::Corruption("boundaries inconsistent with index size");
  }
  generalized.index_ = std::move(inner).value();
  return generalized;
}

}  // namespace spine
