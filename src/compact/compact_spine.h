// CompactSpineIndex: the paper's Section 5 storage layout.
//
// The reference SpineIndex (core/spine_index.h) favours clarity; this
// class implements the space optimizations the paper uses to reach
// < 12 bytes per indexed character:
//
//  * Implicit vertebras — nodes are physically ordered like the string,
//    so vertebra destinations are never stored; character labels live in
//    a bit-packed array (2 bits for DNA, 5 for protein).
//  * Link Table (LT) — one fixed 6-byte entry per node: a 16-bit LEL
//    and a 32-bit word holding either the link destination (nodes with
//    no forward edges, ~70%) or a pointer into a Rib Table. Three flag
//    bits (RT class), one LEL-overflow bit and one has-extrib bit are
//    stolen from the word's top bits, capping the index at 2^27 nodes
//    (134M characters — comfortably above the paper's 57.5M HC19).
//  * Rib Tables RT1..RT4 — dynamically allocated entries, one table per
//    rib fan-out, each entry holding the node's link destination plus
//    its ribs as packed 7-byte slots (4-byte destination, 2-byte PT,
//    character code). Nodes with more than 4 ribs (possible only for
//    protein alphabets, and rare) spill into a side map. Freed slots
//    (from fan-out growth migrations) are recycled via free lists.
//  * Extrib Table — at most one extrib leaves any node, so extribs live
//    in a side table keyed by source node, with a presence bit in the
//    LT avoiding useless probes. Includes the parent-rib destination
//    (our soundness fix; see DESIGN.md).
//  * Overflow table — numeric labels are 16-bit; the rare label > 65535
//    stores an overflow-table index instead, marked by a flag bit
//    (paper Section 5.1 "Small Numeric Label Values").
//
// Construction and search implement exactly the same algorithm as the
// reference index; tests assert node-by-node equivalence.
//
// Thread safety: as for SpineIndex — concurrent const access is fine
// after construction completes; Append is single-threaded.

#ifndef SPINE_COMPACT_COMPACT_SPINE_H_
#define SPINE_COMPACT_COMPACT_SPINE_H_

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "alphabet/alphabet.h"
#include "alphabet/packed_string.h"
#include "common/borrow_vec.h"
#include "common/status.h"
#include "core/spine_index.h"  // NodeId, StepResult, SearchStats

namespace spine {

class CompactSpineIndex {
 public:
  // Largest supported string length (27-bit node ids; see header note).
  static constexpr uint64_t kMaxNodes = (1u << 27) - 1;

  explicit CompactSpineIndex(const Alphabet& alphabet);

  CompactSpineIndex(const CompactSpineIndex&) = delete;
  CompactSpineIndex& operator=(const CompactSpineIndex&) = delete;
  CompactSpineIndex(CompactSpineIndex&&) = default;
  CompactSpineIndex& operator=(CompactSpineIndex&&) = default;

  // --- Construction -------------------------------------------------------

  Status Append(char c);
  Status AppendString(std::string_view s);

  // --- Accessors ----------------------------------------------------------

  const Alphabet& alphabet() const { return alphabet_; }
  uint64_t size() const { return codes_.size(); }
  Code CodeAt(uint64_t i) const { return codes_.Get(i); }
  char CharAt(uint64_t i) const { return alphabet_.Decode(codes_.Get(i)); }

  NodeId LinkDest(NodeId i) const;
  uint32_t LinkLel(NodeId i) const;

  // Logical rib/extrib views (decoded from the tables).
  struct RibView {
    Code cl;
    NodeId dest;
    uint32_t pt;
  };
  struct ExtribView {
    NodeId dest;
    uint32_t pt;
    uint32_t prt;
    NodeId parent_dest;
  };
  // Ribs at a node, unordered. Root ribs report pt == 0.
  std::vector<RibView> RibsAt(NodeId node) const;
  std::optional<ExtribView> ExtribAt(NodeId node) const;

  // --- Search -------------------------------------------------------------

  StepResult Step(NodeId node, Code c, uint32_t pathlen,
                  SearchStats* stats = nullptr) const;

  // Number of consecutive vertebra edges matched starting at `node`
  // against pattern codes [pattern_pos, ...): a word-parallel compare
  // of the bit-packed CL array against the pre-packed pattern (32
  // bases per 64-bit word for DNA) via the active kernel. Counted like
  // that many successful Step calls.
  uint32_t MatchVertebraRun(NodeId node, const kernel::EncodedPattern& pattern,
                            size_t pattern_pos) const;

  // Hints the hardware prefetcher at this node's Link Table entry,
  // issued by the matcher right before a link/rib chain hop lands
  // there.
  void PrefetchNode(NodeId node) const {
    __builtin_prefetch(lt_word_.data() + node);
    __builtin_prefetch(lt_lel_.data() + node);
  }

  bool Contains(std::string_view pattern) const;
  std::optional<NodeId> FindFirstEnd(std::string_view pattern,
                                     SearchStats* stats = nullptr) const;
  std::vector<uint32_t> FindAll(std::string_view pattern,
                                SearchStats* stats = nullptr) const;

  // --- Space accounting (Fig. 6 memory budget / space-per-char bench) ----

  struct MemoryBreakdown {
    uint64_t char_labels = 0;     // packed CL bits
    uint64_t link_table = 0;      // 6 bytes/node
    std::array<uint64_t, 4> rib_tables = {0, 0, 0, 0};
    uint64_t big_entries = 0;     // fan-out > 4 spill (protein only)
    uint64_t extrib_table = 0;
    uint64_t overflow_table = 0;
    uint64_t Total() const;
    double BytesPerChar(uint64_t n) const;
  };
  // Logical sizes: what the tables contain (the paper's accounting).
  MemoryBreakdown LogicalBytes() const;
  // Actual process memory including container/hash overheads.
  uint64_t MemoryBytes() const;

  // Label maxima observed during construction (Table 3).
  uint32_t max_lel() const { return max_lel_; }
  uint32_t max_pt() const { return max_pt_; }
  uint32_t max_prt() const { return max_prt_; }

  // Number of nodes per rib fan-out class: index 0 -> RT1, ... index 3
  // -> RT4, index 4 -> spilled big entries (Table 4).
  std::array<uint64_t, 5> FanoutCounts() const;
  // The paper's Table 4 counting, where a node's extrib counts as one
  // more forward edge: index k-1 -> nodes with k ribs+extribs (k = 1..5),
  // index 5 -> more than 5.
  std::array<uint64_t, 6> FanoutCountsWithExtribs() const;
  uint64_t extrib_count() const { return extribs_.size(); }

  // --- Diagnostics --------------------------------------------------------

  Status Validate() const;

 private:
  friend class CompactSpineSerializer;

  // LT word layout.
  static constexpr uint32_t kClassShift = 29;          // 3 bits: 0..5
  static constexpr uint32_t kLelOverflowBit = 1u << 28;
  static constexpr uint32_t kHasExtribBit = 1u << 27;
  static constexpr uint32_t kValueMask = (1u << 27) - 1;
  static constexpr uint32_t kClassBig = 5;

  // A packed rib slot: 7 bytes. cl bit 7 flags PT overflow.
  struct PackedRib {
    uint32_t dest;
    uint16_t pt;
    uint8_t cl;
  } __attribute__((packed));
  static_assert(sizeof(PackedRib) == 7);
  static constexpr uint8_t kPtOverflowFlag = 0x80;
  static constexpr uint8_t kClMask = 0x7f;

  struct ExtribEntry {
    uint32_t dest;
    uint32_t parent_dest;
    uint16_t pt;
    uint16_t prt;
    uint8_t flags;  // bit 0: pt overflow; bit 1: prt overflow
  } __attribute__((packed));
  static_assert(sizeof(ExtribEntry) == 13);

  struct BigEntry {
    uint32_t link_dest;
    std::vector<PackedRib> ribs;
  };

  static uint32_t RtStride(uint32_t klass) { return 4 + 7 * klass; }

  uint32_t Class(NodeId node) const {
    return lt_word_[node] >> kClassShift;
  }
  uint32_t WordValue(NodeId node) const { return lt_word_[node] & kValueMask; }

  // Raw entry pointer for a node in RT class 1..4.
  const uint8_t* RtEntry(NodeId node) const;
  uint8_t* RtEntryMutable(NodeId node);

  uint32_t LoadU32(const uint8_t* p) const;
  void StoreU32(uint8_t* p, uint32_t v);

  uint32_t RibPt(const PackedRib& rib) const;
  uint16_t EncodeLabel(uint32_t value, bool* overflow);

  // Finds the rib for code c at a (non-root) node; fills *view.
  bool FindRibAt(NodeId node, Code c, RibView* view) const;
  void AddRib(NodeId node, Code c, NodeId dest, uint32_t pt);
  void SetExtrib(NodeId node, NodeId dest, uint32_t pt, uint32_t prt,
                 NodeId parent_dest);
  std::optional<ExtribView> ExtribAtInternal(NodeId node) const;

  void PushNode(NodeId dest, uint32_t lel);  // appends the LT entry

  // Copies every borrowed table (and the packed labels) into owned
  // storage so mutation never writes through a read-only mapping.
  // Called at the top of Append; a heap-built index pays one branch.
  void EnsureOwnedTables();

  Alphabet alphabet_;
  PackedString codes_;

  // Flat tables are BorrowVecs: the heap open path owns them, the mmap
  // open path points them into the artifact mapping (kept alive by
  // backing_). The hash maps below are always rebuilt at open.
  BorrowVec<uint32_t> lt_word_;  // entry 0 (root) unused
  BorrowVec<uint16_t> lt_lel_;

  // Root forward edges: dest per code (PT is always 0 at the root).
  BorrowVec<uint32_t> root_rib_dest_;

  std::array<BorrowVec<uint8_t>, 4> rt_;        // classes 1..4
  std::array<BorrowVec<uint32_t>, 4> rt_free_;  // recycled entry offsets
  std::unordered_map<uint32_t, BigEntry> rt_big_;
  std::unordered_map<uint32_t, ExtribEntry> extribs_;
  BorrowVec<uint32_t> overflow_;  // label overflow values

  // Keeps the mapped image alive while any table borrows from it.
  std::shared_ptr<const void> backing_;

  uint32_t max_lel_ = 0;
  uint32_t max_pt_ = 0;
  uint32_t max_prt_ = 0;
};

}  // namespace spine

#endif  // SPINE_COMPACT_COMPACT_SPINE_H_
