// Serialization of CompactSpineIndex to a self-contained disk image.
//
// SPINE is self-contained: the vertebra labels encode the original
// string, so loading the image is all a reader needs (the paper's
// "the data string is not required any more" property).

#ifndef SPINE_COMPACT_SERIALIZER_H_
#define SPINE_COMPACT_SERIALIZER_H_

#include <istream>
#include <ostream>
#include <string>

#include "common/status.h"
#include "compact/compact_spine.h"

namespace spine {

// Writes the index to `path`, replacing any existing file.
Status SaveCompactSpine(const CompactSpineIndex& index,
                        const std::string& path);

// Loads an index previously written by SaveCompactSpine. Fails with
// kCorruption on bad magic/version/truncated data.
Result<CompactSpineIndex> LoadCompactSpine(const std::string& path);

// Stream variants (used to embed an index image inside a larger file,
// e.g. the generalized multi-string index).
Status SaveCompactSpineToStream(const CompactSpineIndex& index,
                                std::ostream& out);
Result<CompactSpineIndex> LoadCompactSpineFromStream(std::istream& in);

}  // namespace spine

#endif  // SPINE_COMPACT_SERIALIZER_H_
