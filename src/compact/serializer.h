// Serialization of CompactSpineIndex to a self-contained disk image.
//
// SPINE is self-contained: the vertebra labels encode the original
// string, so loading the image is all a reader needs (the paper's
// "the data string is not required any more" property).

#ifndef SPINE_COMPACT_SERIALIZER_H_
#define SPINE_COMPACT_SERIALIZER_H_

#include <cstdint>
#include <istream>
#include <memory>
#include <ostream>
#include <string>

#include "common/status.h"
#include "compact/compact_spine.h"

namespace spine {

// Writes the index to `path`, replacing any existing file.
Status SaveCompactSpine(const CompactSpineIndex& index,
                        const std::string& path);

// Loads an index previously written by SaveCompactSpine. Fails with
// kCorruption on bad magic/version/truncated data.
Result<CompactSpineIndex> LoadCompactSpine(const std::string& path);

// Stream variants (used to embed an index image inside a larger file,
// e.g. the generalized multi-string index). An embedded image must
// start at an 8-aligned stream offset so the zero-copy loader below
// can point into it (v4 images align their arrays relative to the
// image start).
Status SaveCompactSpineToStream(const CompactSpineIndex& index,
                                std::ostream& out);
Result<CompactSpineIndex> LoadCompactSpineFromStream(std::istream& in);

// Zero-copy variant: deserializes an image already resident in memory
// (an mmap'd artifact), pointing the index's flat tables INTO
// [data, data + size) instead of copying. `data` must be 8-aligned.
// `keepalive` is retained by the returned index for as long as any
// table borrows from the buffer (pass the MmapRegion; pass nullptr
// only when the caller guarantees the buffer outlives the index).
// With verify=true the whole-image CRC and structural Validate() run
// exactly as in the heap path, so both opens reach identical verdicts
// on any image; verify=false skips both for O(tables) open cost and
// keeps only the bounds/geometry checks. `consumed`, when non-null,
// receives the image's byte length (header through CRC footer) —
// trailing bytes in the buffer are tolerated, as on the stream path.
Result<CompactSpineIndex> LoadCompactSpineFromMemory(
    const uint8_t* data, uint64_t size, bool verify,
    std::shared_ptr<const void> keepalive, uint64_t* consumed = nullptr);

}  // namespace spine

#endif  // SPINE_COMPACT_SERIALIZER_H_
