#include "trie/suffix_trie.h"

namespace spine {

SuffixTrie::SuffixTrie(const Alphabet& alphabet) : alphabet_(alphabet) {
  children_.assign(alphabet.size(), kNoChild);
  node_count_ = 1;
}

uint32_t SuffixTrie::ChildOrCreate(uint32_t node, Code c) {
  uint32_t child = Child(node, c);
  if (child != kNoChild) return child;
  child = static_cast<uint32_t>(node_count_++);
  children_.resize(node_count_ * alphabet_.size(), kNoChild);
  children_[static_cast<uint64_t>(node) * alphabet_.size() + c] = child;
  return child;
}

Result<SuffixTrie> SuffixTrie::Build(const Alphabet& alphabet,
                                     std::string_view text) {
  if (text.size() > kMaxLength) {
    return Status::InvalidArgument(
        "suffix trie is O(n^2); refusing strings beyond " +
        std::to_string(kMaxLength) + " characters");
  }
  SuffixTrie trie(alphabet);
  trie.text_length_ = text.size();
  std::vector<Code> codes;
  codes.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    Code c = alphabet.Encode(text[i]);
    if (c == kInvalidCode) {
      return Status::InvalidArgument("character at offset " +
                                     std::to_string(i) +
                                     " is not in the alphabet");
    }
    codes.push_back(c);
  }
  for (size_t start = 0; start < codes.size(); ++start) {
    uint32_t node = 0;
    for (size_t i = start; i < codes.size(); ++i) {
      node = trie.ChildOrCreate(node, codes[i]);
    }
  }
  return trie;
}

bool SuffixTrie::Contains(std::string_view pattern) const {
  uint32_t node = 0;
  for (char ch : pattern) {
    Code c = alphabet_.Encode(ch);
    if (c == kInvalidCode) return false;
    uint32_t child = Child(node, c);
    if (child == kNoChild) return false;
    node = child;
  }
  return true;
}

uint64_t SuffixTrie::MemoryBytes() const {
  return children_.size() * sizeof(uint32_t);
}

}  // namespace spine
