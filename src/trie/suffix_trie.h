// SuffixTrie: the uncompacted suffix trie — the paper's Figure 1
// starting point. Every suffix of the string is inserted character by
// character; no compaction of any kind.
//
// This structure exists for fidelity and pedagogy: it quantifies what
// vertical compaction (suffix tree) and horizontal compaction (SPINE)
// each save, and reproduces the paper's Figure 1-3 node/edge counts for
// the example string. Size is O(n^2) in the worst case — use on short
// strings only (construction refuses strings beyond kMaxLength).

#ifndef SPINE_TRIE_SUFFIX_TRIE_H_
#define SPINE_TRIE_SUFFIX_TRIE_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "alphabet/alphabet.h"
#include "common/status.h"

namespace spine {

class SuffixTrie {
 public:
  // Guard against accidental quadratic blowups (a trie over n
  // characters can reach ~n^2/2 nodes).
  static constexpr uint64_t kMaxLength = 1 << 13;

  // Builds the trie of all suffixes of `text`.
  static Result<SuffixTrie> Build(const Alphabet& alphabet,
                                  std::string_view text);

  uint64_t node_count() const { return node_count_; }
  // Edges == nodes - 1 (it is a tree), provided for symmetry with the
  // paper's Figure 1 discussion.
  uint64_t edge_count() const { return node_count_ - 1; }
  uint64_t text_length() const { return text_length_; }

  bool Contains(std::string_view pattern) const;

  // Bytes for the straightforward child-array representation.
  uint64_t MemoryBytes() const;

 private:
  explicit SuffixTrie(const Alphabet& alphabet);

  static constexpr uint32_t kNoChild = 0xffffffffu;

  uint32_t ChildOrCreate(uint32_t node, Code c);
  uint32_t Child(uint32_t node, Code c) const {
    return children_[static_cast<uint64_t>(node) * alphabet_.size() + c];
  }

  Alphabet alphabet_;
  // Flat child arena: slot node * sigma + code.
  std::vector<uint32_t> children_;
  uint64_t node_count_ = 0;
  uint64_t text_length_ = 0;
};

}  // namespace spine

#endif  // SPINE_TRIE_SUFFIX_TRIE_H_
