#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/cancel.h"
#include "core/wire.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace spine::serve {

namespace wire = core::wire;

namespace {

using SteadyClock = std::chrono::steady_clock;

engine::QueryEngine::Options EngineOptions(const Options& options) {
  engine::QueryEngine::Options engine_options;
  engine_options.threads = options.threads;
  engine_options.cache_bytes = options.cache_bytes;
  engine_options.retry_limit = options.retry_limit;
  engine_options.retry_backoff_us = options.retry_backoff_us;
  engine_options.tracing = options.tracing;
  return engine_options;
}

// How often reader threads and the watchdog wake to check timeouts.
// Coarse on purpose: timeout precision of ~100 ms is plenty for bounds
// measured in seconds, and the idle cost is one syscall per tick.
constexpr int kTickMs = 100;

// One query lifted off the wire, waiting for admission. The deadline is
// pinned at decode time so time spent buffered in the batch window
// counts against the budget.
struct Pending {
  wire::QueryRequest request;
  SteadyClock::time_point decoded_at;
  Deadline deadline;
};

// request-or-default, capped by max_deadline_ms; 0 everywhere means
// unbounded. With a cap set, even a request asking for "no deadline"
// gets the cap — the server's time is not the client's to pin.
Deadline EffectiveDeadline(const Options& options, uint32_t request_ms) {
  uint32_t effective =
      request_ms != 0 ? request_ms : options.default_deadline_ms;
  if (options.max_deadline_ms > 0) {
    effective = effective == 0
                    ? options.max_deadline_ms
                    : std::min(effective, options.max_deadline_ms);
  }
  return effective == 0 ? Deadline::Infinite() : Deadline::AfterMs(effective);
}

QueryResult OverloadedResult(uint32_t inflight, uint32_t max_inflight) {
  QueryResult result;
  result.status_code = StatusCode::kOverloaded;
  result.error = "server overloaded (" + std::to_string(inflight) + "/" +
                 std::to_string(max_inflight) +
                 " queries in flight); retry with backoff";
  return result;
}

// JSON-mode connection-level error line (the JSON twin of the binary
// kError frame).
std::string ErrorJsonLine(const Status& status) {
  obs::JsonWriter json;
  json.BeginObject();
  json.Key("v");
  json.Value(static_cast<uint64_t>(wire::kWireVersion));
  json.Key("type");
  json.Value("error");
  json.Key("status");
  json.Value(StatusCodeToString(status.code()));
  json.Key("error");
  json.Value(status.message());
  json.EndObject();
  return std::move(json).Finish();
}

}  // namespace

struct Server::Connection {
  int fd = -1;
  std::thread thread;
  std::string buffer;
  enum class Mode { kUnknown, kBinary, kJson } mode = Mode::kUnknown;
  std::atomic<bool> done{false};
  // Fired by the watchdog when the peer vanishes mid-execution; every
  // batch this connection runs chains under it, so the engine's
  // checkpoints abandon work nobody will read.
  CancelToken cancel;
  // Watchdog bookkeeping: set around ExecuteBatch by the reader thread.
  std::atomic<bool> executing{false};
  std::atomic<int64_t> exec_start_us{0};  // SteadyClock, us since epoch
  std::atomic<bool> slow_logged{false};
};

Server::Server(const core::Index& index, const Options& options)
    : index_(index), options_(options), engine_(EngineOptions(options)) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("server already started");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  int reuse = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address '" + options_.host +
                                   "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    Status status = Status::IoError("cannot listen on " + options_.host +
                                    ":" + std::to_string(options_.port) +
                                    ": " + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  running_.store(true, std::memory_order_release);
  drain_.store(false, std::memory_order_release);
  stopping_.store(false, std::memory_order_release);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  watchdog_ = std::thread([this] { WatchdogLoop(); });
  return Status::OK();
}

void Server::RequestDrain() {
  if (!running_.load(std::memory_order_acquire)) return;
  drain_.store(true, std::memory_order_release);
  // Wake the acceptor out of accept(2) and half-close every connection
  // for reading: readers finish what the kernel already buffered (every
  // accepted query still gets its response), then see EOF and exit.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  std::lock_guard<std::mutex> lock(connections_mu_);
  for (const auto& connection : connections_) {
    if (!connection->done.load(std::memory_order_acquire)) {
      ::shutdown(connection->fd, SHUT_RD);
    }
  }
}

void Server::Stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  RequestDrain();
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::unique_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    connections.swap(connections_);
  }
  for (auto& connection : connections) {
    if (connection->thread.joinable()) connection->thread.join();
  }
  // The watchdog outlives the connections so a peer that dies during
  // the drain still gets its executing batch cancelled.
  stopping_.store(true, std::memory_order_release);
  if (watchdog_.joinable()) watchdog_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false, std::memory_order_release);
}

ServerStats Server::stats() const {
  ServerStats stats;
  stats.connections_accepted = accepted_.load(std::memory_order_relaxed);
  stats.connections_open = open_.load(std::memory_order_relaxed);
  stats.queries = queries_.load(std::memory_order_relaxed);
  stats.shed = shed_.load(std::memory_order_relaxed);
  stats.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  stats.deadline_exceeded =
      deadline_exceeded_.load(std::memory_order_relaxed);
  stats.cancelled = cancelled_.load(std::memory_order_relaxed);
  stats.idle_closed = idle_closed_.load(std::memory_order_relaxed);
  stats.mutations = mutations_.load(std::memory_order_relaxed);
  stats.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  stats.bytes_out = bytes_out_.load(std::memory_order_relaxed);
  return stats;
}

std::string Server::StatsJson() const {
  const ServerStats snapshot = stats();
  obs::JsonWriter json;
  json.BeginObject();
  json.Key("schema_version");
  json.Value(obs::kStatsSchemaVersion);
  json.Key("command");
  json.Value("serve");
  json.Key("metrics");
  json.RawValue(obs::Registry::ToJson(obs::Registry::Default().Snapshot()));
  json.Key("serve");
  json.BeginObject();
  json.Key("backend");
  json.Value(index_.Name());
  json.Key("open_mode");
  json.Value(index_.open_mode());
  json.Key("characters");
  json.Value(index_.size());
  json.Key("connections_accepted");
  json.Value(snapshot.connections_accepted);
  json.Key("connections_open");
  json.Value(snapshot.connections_open);
  json.Key("queries");
  json.Value(snapshot.queries);
  json.Key("shed");
  json.Value(snapshot.shed);
  json.Key("protocol_errors");
  json.Value(snapshot.protocol_errors);
  json.Key("deadline_exceeded");
  json.Value(snapshot.deadline_exceeded);
  json.Key("cancelled");
  json.Value(snapshot.cancelled);
  json.Key("idle_closed");
  json.Value(snapshot.idle_closed);
  json.Key("mutable");
  json.Value(options_.mutable_index != nullptr);
  json.Key("mutations");
  json.Value(snapshot.mutations);
  if (options_.mutable_index != nullptr) {
    json.Key("generation");
    json.Value(options_.mutable_index->generation_version());
    json.Key("live_documents");
    json.Value(
        static_cast<uint64_t>(options_.mutable_index->live_documents()));
  }
  json.Key("bytes_in");
  json.Value(snapshot.bytes_in);
  json.Key("bytes_out");
  json.Value(snapshot.bytes_out);
  json.Key("threads");
  json.Value(engine_.thread_count());
  json.Key("queue_cap");
  json.Value(options_.queue_cap);
  json.Key("max_inflight");
  json.Value(options_.max_inflight);
  json.Key("default_deadline_ms");
  json.Value(options_.default_deadline_ms);
  json.Key("max_deadline_ms");
  json.Value(options_.max_deadline_ms);
  json.EndObject();
  json.EndObject();
  return std::move(json).Finish();
}

namespace {

// Loops send(2) over partial writes. MSG_NOSIGNAL so a vanished client
// surfaces as EPIPE instead of killing the process; MSG_DONTWAIT plus a
// poll(POLLOUT) wait so a client that stops reading blocks us for at
// most `timeout_ms` without progress (0 = wait forever) instead of
// wedging the reader thread in a blocking send. Partial progress
// resets the clock: a slow-but-alive reader is not a dead one.
bool WriteAll(int fd, std::string_view data, std::atomic<uint64_t>* bytes,
              uint32_t timeout_ms) {
  size_t sent = 0;
  SteadyClock::time_point last_progress = SteadyClock::now();
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      last_progress = SteadyClock::now();
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (timeout_ms > 0) {
        const int64_t stalled_ms =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                SteadyClock::now() - last_progress)
                .count();
        if (stalled_ms >= static_cast<int64_t>(timeout_ms)) return false;
      }
      pollfd pfd{};
      pfd.fd = fd;
      pfd.events = POLLOUT;
      int ready = ::poll(&pfd, 1, kTickMs);
      if (ready < 0 && errno != EINTR) return false;
      if (ready > 0 && (pfd.revents & (POLLERR | POLLNVAL)) != 0) {
        return false;
      }
      continue;
    }
    return false;
  }
  bytes->fetch_add(data.size(), std::memory_order_relaxed);
  SPINE_OBS_COUNT("serve.bytes_out", data.size());
  return true;
}

}  // namespace

void Server::AcceptLoop() {
  while (true) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listen socket shut down (drain) or unrecoverable
    }
    if (drain_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    JoinFinishedConnections();
    if (open_.load(std::memory_order_relaxed) >= options_.max_connections) {
      // Reject at the door with a connection-level overload error (a
      // binary kError frame; the mode sniff never ran, see SERVING.md).
      std::string frame;
      wire::AppendErrorFrame(
          {0, StatusCode::kOverloaded,
           "connection limit reached (" +
               std::to_string(options_.max_connections) + ")"},
          &frame);
      WriteAll(fd, frame, &bytes_out_, options_.write_timeout_ms);
      ::close(fd);
      shed_.fetch_add(1, std::memory_order_relaxed);
      SPINE_OBS_COUNT("serve.shed", 1);
      continue;
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    open_.fetch_add(1, std::memory_order_relaxed);
    SPINE_OBS_COUNT("serve.connections_total", 1);
    SPINE_OBS_GAUGE_SET("serve.connections",
                        static_cast<int64_t>(
                            open_.load(std::memory_order_relaxed)));
    auto connection = std::make_unique<Connection>();
    connection->fd = fd;
    Connection* raw = connection.get();
    {
      std::lock_guard<std::mutex> lock(connections_mu_);
      connections_.push_back(std::move(connection));
      // RequestDrain may have swept connections_ between the drain
      // check above and this insert; re-check under the same lock so a
      // freshly accepted connection cannot miss its half-close and
      // stall Stop() in recv.
      if (drain_.load(std::memory_order_acquire)) {
        ::shutdown(raw->fd, SHUT_RD);
      }
    }
    raw->thread = std::thread([this, raw] { ConnectionLoop(raw); });
  }
}

void Server::WatchdogLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    {
      std::lock_guard<std::mutex> lock(connections_mu_);
      const int64_t now_us =
          std::chrono::duration_cast<std::chrono::microseconds>(
              SteadyClock::now().time_since_epoch())
              .count();
      for (const auto& connection : connections_) {
        // Only executing connections matter here — and only they are
        // safe to touch: their reader thread is inside ExecuteBatch,
        // so it cannot be concurrently closing the fd.
        if (connection->done.load(std::memory_order_acquire)) continue;
        if (!connection->executing.load(std::memory_order_acquire)) {
          continue;
        }
        // Peer death detection: POLLERR | POLLHUP on a zero-timeout
        // poll. POLLRDHUP is deliberately NOT consulted — a client
        // that half-closed with shutdown(SHUT_WR) to drain pipelined
        // responses is still reading and must get its answers; only a
        // fully gone peer (RST, full close) fires the token.
        pollfd pfd{};
        pfd.fd = connection->fd;
        pfd.events = 0;
        if (::poll(&pfd, 1, 0) > 0 &&
            (pfd.revents & (POLLERR | POLLHUP)) != 0) {
          connection->cancel.Cancel();
        }
        const int64_t running_ms =
            (now_us -
             connection->exec_start_us.load(std::memory_order_relaxed)) /
            1000;
        if (options_.slow_query_ms > 0 &&
            running_ms >= static_cast<int64_t>(options_.slow_query_ms) &&
            !connection->slow_logged.exchange(true,
                                              std::memory_order_relaxed)) {
          SPINE_OBS_COUNT("serve.slow_queries", 1);
          std::fprintf(
              stderr,
              "[spine serve] watchdog: batch on fd %d running %lld ms "
              "(slow_query_ms=%u)\n",
              connection->fd, static_cast<long long>(running_ms),
              options_.slow_query_ms);
        }
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(kTickMs));
  }
}

void Server::JoinFinishedConnections() {
  std::lock_guard<std::mutex> lock(connections_mu_);
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::ConnectionLoop(Connection* connection) {
  char chunk[64 * 1024];
  SteadyClock::time_point last_activity = SteadyClock::now();
  bool timed_out = false;
  while (true) {
    // Wait for readability with a coarse tick instead of blocking in
    // recv: a half-open or silent peer costs an fd, never a parked
    // thread. Drain still works — shutdown(SHUT_RD) makes the socket
    // readable, recv reports EOF, and the loop exits.
    pollfd pfd{};
    pfd.fd = connection->fd;
    pfd.events = POLLIN;
    int ready = ::poll(&pfd, 1, kTickMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) {
      const int64_t quiet_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              SteadyClock::now() - last_activity)
              .count();
      // An empty buffer means the connection is simply idle; leftover
      // bytes mean the client stopped mid-frame (or mid-line), which
      // gets the much tighter read timeout.
      const uint32_t bound = connection->buffer.empty()
                                 ? options_.idle_timeout_ms
                                 : options_.read_timeout_ms;
      if (bound > 0 && quiet_ms >= static_cast<int64_t>(bound)) {
        timed_out = true;
        break;
      }
      continue;
    }
    if ((pfd.revents & (POLLERR | POLLNVAL)) != 0) break;
    ssize_t n = ::recv(connection->fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      break;
    }
    if (n == 0) break;  // EOF (client closed, or drain half-close)
    last_activity = SteadyClock::now();
    bytes_in_.fetch_add(static_cast<uint64_t>(n),
                        std::memory_order_relaxed);
    SPINE_OBS_COUNT("serve.bytes_in", static_cast<uint64_t>(n));
    connection->buffer.append(chunk, static_cast<size_t>(n));
    if (!ProcessBuffered(connection)) break;
  }
  if (timed_out) {
    idle_closed_.fetch_add(1, std::memory_order_relaxed);
    SPINE_OBS_COUNT("serve.idle_closed", 1);
    // Best-effort goodbye in the connection's dialect (a half-open
    // peer may never read it; that is its problem, not our thread's).
    const Status status = Status::DeadlineExceeded(
        connection->buffer.empty()
            ? "connection idle past idle_timeout_ms; closing"
            : "request incomplete past read_timeout_ms; closing");
    std::string out;
    if (connection->mode == Connection::Mode::kJson) {
      out = ErrorJsonLine(status);
      out += '\n';
    } else {
      wire::AppendErrorFrame(
          {0, status.code(), std::string(status.message())}, &out);
    }
    WriteAll(connection->fd, out, &bytes_out_, options_.write_timeout_ms);
  }
  ::close(connection->fd);
  open_.fetch_sub(1, std::memory_order_relaxed);
  SPINE_OBS_GAUGE_SET("serve.connections",
                      static_cast<int64_t>(
                          open_.load(std::memory_order_relaxed)));
  connection->done.store(true, std::memory_order_release);
}

bool Server::ProcessBuffered(Connection* connection) {
  if (connection->mode == Connection::Mode::kUnknown) {
    const std::string& buffer = connection->buffer;
    if (buffer.empty()) return true;
    if (buffer[0] != '{') {
      connection->mode = Connection::Mode::kBinary;
    } else if (buffer.size() >= 5) {
      // '{' (0x7b) is also the LOW byte of any little-endian frame
      // length ≡ 123 mod 256 (e.g. a query with a 103-byte pattern),
      // so the first byte alone cannot decide. Byte 4 can: a binary
      // frame carries kWireVersion there — a control byte that can
      // never appear raw in a JSON line (strict JSON escapes control
      // characters) — and its first four bytes must read as a
      // plausible length. One sniff per connection, then sticky.
      uint32_t length = 0;
      for (int i = 0; i < 4; ++i) {
        length |= static_cast<uint32_t>(static_cast<uint8_t>(buffer[i]))
                  << (8 * i);
      }
      const bool binary_frame =
          static_cast<uint8_t>(buffer[4]) == wire::kWireVersion &&
          length >= 2 && length <= wire::kMaxFramePayload;
      connection->mode = binary_frame ? Connection::Mode::kBinary
                                      : Connection::Mode::kJson;
    } else if (buffer.find('\n') != std::string::npos) {
      // A complete line shorter than any frame header: JSON.
      connection->mode = Connection::Mode::kJson;
    } else {
      return true;  // undecidable on < 5 bytes; wait for more
    }
  }

  const bool json = connection->mode == Connection::Mode::kJson;
  std::vector<Pending> window;
  std::string out;

  // Flushes `window` through admission control + the engine, appending
  // one response per request (in order) to `out`.
  auto flush_window = [&]() {
    if (window.empty()) return;
    // Per-connection bound: everything beyond queue_cap in this batch
    // window is shed outright.
    uint32_t candidates = static_cast<uint32_t>(
        std::min<size_t>(window.size(), options_.queue_cap));
    // Server-wide bound: reserve up to max_inflight slots.
    uint32_t granted = 0;
    uint32_t current = inflight_.load(std::memory_order_relaxed);
    while (true) {
      const uint32_t room =
          current >= options_.max_inflight ? 0
                                           : options_.max_inflight - current;
      granted = std::min(candidates, room);
      if (granted == 0) break;
      if (inflight_.compare_exchange_weak(current, current + granted,
                                          std::memory_order_acq_rel)) {
        break;
      }
    }

    // Per-entry disposition among the granted: a budget that expired
    // while the request sat in the window is answered kDeadlineExceeded
    // without touching the engine; live queries carry their remaining
    // budget (floored at 1 ms so it cannot degrade to "unbounded")
    // down into the engine's cooperative checkpoints.
    std::vector<QueryResult> prefilled(granted);
    std::vector<bool> expired(granted, false);
    std::vector<Query> queries;
    queries.reserve(granted);
    for (uint32_t i = 0; i < granted; ++i) {
      const Deadline& deadline = window[i].deadline;
      if (deadline.Expired()) {
        expired[i] = true;
        prefilled[i].status_code = StatusCode::kDeadlineExceeded;
        prefilled[i].error = "deadline exceeded before dispatch";
        continue;
      }
      Query query = window[i].request.query;
      if (deadline.IsInfinite()) {
        query.deadline_ms = 0;
      } else {
        const int64_t remaining_us = deadline.RemainingMicros();
        SPINE_OBS_OBSERVE_US("serve.deadline_remaining_us",
                             static_cast<double>(remaining_us));
        query.deadline_ms = static_cast<uint32_t>(
            std::max<int64_t>(1, remaining_us / 1000));
      }
      queries.push_back(std::move(query));
    }
    const SteadyClock::time_point exec_start = SteadyClock::now();
#if !defined(SPINE_OBS_DISABLED)
    for (uint32_t i = 0; i < granted; ++i) {
      using Micros = std::chrono::duration<double, std::micro>;
      const double wait_us =
          Micros(exec_start - window[i].decoded_at).count();
      SPINE_OBS_OBSERVE_US("serve.queue_wait_us", wait_us);
    }
#endif
    std::vector<QueryResult> results;
    if (!queries.empty()) {
      // Executed under the connection's CancelToken so the watchdog
      // can abandon the batch when the peer vanishes mid-execution.
      connection->exec_start_us.store(
          std::chrono::duration_cast<std::chrono::microseconds>(
              exec_start.time_since_epoch())
              .count(),
          std::memory_order_relaxed);
      connection->slow_logged.store(false, std::memory_order_relaxed);
      connection->executing.store(true, std::memory_order_release);
      results = engine_.ExecuteBatch(index_, queries, nullptr,
                                     &connection->cancel);
      connection->executing.store(false, std::memory_order_release);
    }
    if (granted > 0) {
      inflight_.fetch_sub(granted, std::memory_order_acq_rel);
      queries_.fetch_add(granted, std::memory_order_relaxed);
      SPINE_OBS_COUNT("serve.queries", granted);
    }
    const uint32_t shed_here = static_cast<uint32_t>(window.size()) - granted;
    if (shed_here > 0) {
      shed_.fetch_add(shed_here, std::memory_order_relaxed);
      SPINE_OBS_COUNT("serve.shed", shed_here);
    }
    const uint32_t inflight_now =
        inflight_.load(std::memory_order_relaxed);
    uint64_t deadline_here = 0;
    uint64_t cancelled_here = 0;
    size_t next_result = 0;
    for (size_t i = 0; i < window.size(); ++i) {
      wire::QueryResponse response;
      response.id = window[i].request.id;
      if (i < granted) {
        response.result = expired[i] ? std::move(prefilled[i])
                                     : std::move(results[next_result++]);
      } else {
        response.result = OverloadedResult(inflight_now + shed_here,
                                           options_.max_inflight);
      }
      if (response.result.status_code == StatusCode::kDeadlineExceeded) {
        ++deadline_here;
      } else if (response.result.status_code == StatusCode::kCancelled) {
        ++cancelled_here;
      }
      if (json) {
        out += wire::ResponseToJson(response);
        out += '\n';
      } else {
        wire::AppendResponseFrame(response, &out);
      }
    }
    if (deadline_here > 0) {
      deadline_exceeded_.fetch_add(deadline_here, std::memory_order_relaxed);
      SPINE_OBS_COUNT("serve.deadline_exceeded", deadline_here);
    }
    if (cancelled_here > 0) {
      cancelled_.fetch_add(cancelled_here, std::memory_order_relaxed);
      SPINE_OBS_COUNT("serve.cancelled", cancelled_here);
    }
    window.clear();
  };

  // Answers a protocol violation: emit the connection-level error in
  // the connection's own dialect, then signal the caller to close
  // (framing cannot be resynchronized after a lying prefix).
  auto protocol_error = [&](const Status& status) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    SPINE_OBS_COUNT("serve.protocol_errors", 1);
    if (json) {
      out += ErrorJsonLine(status);
      out += '\n';
    } else {
      wire::AppendErrorFrame(
          {0, status.code(), std::string(status.message())}, &out);
    }
    WriteAll(connection->fd, out, &bytes_out_, options_.write_timeout_ms);
    return false;
  };

  if (json) {
    size_t newline;
    while ((newline = connection->buffer.find('\n')) != std::string::npos) {
      std::string line = connection->buffer.substr(0, newline);
      connection->buffer.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      // The STATS verb in JSON dress; checked before the request parse
      // so its error message does not claim a missing pattern.
      if (line.find("\"stats\"") != std::string::npos) {
        Result<obs::JsonValue> doc = obs::ParseJson(line);
        if (doc.ok() && doc->is_object()) {
          const obs::JsonValue* type = doc->Find("type");
          if (type != nullptr && type->is_string() &&
              type->string_value == "stats") {
            flush_window();
            out += StatsJson();
            out += '\n';
            continue;
          }
        }
      }
      // Lifecycle verbs, same pre-parse sniff as the stats verb. A
      // mutation is a write barrier: the window flushed first executes
      // against the old generation, later queries against the new one,
      // and the responses stay in request order.
      if (line.find("\"mutate\"") != std::string::npos) {
        Result<obs::JsonValue> doc = obs::ParseJson(line);
        if (doc.ok() && doc->is_object()) {
          const obs::JsonValue* type = doc->Find("type");
          if (type != nullptr && type->is_string() &&
              type->string_value == "mutate") {
            Result<wire::MutateRequest> request =
                wire::ParseMutateJson(line);
            if (!request.ok()) return protocol_error(request.status());
            flush_window();
            out += wire::MutateResponseToJson(ApplyMutation(*request));
            out += '\n';
            continue;
          }
        }
      }
      Result<wire::QueryRequest> request = wire::ParseRequestJson(line);
      if (!request.ok()) return protocol_error(request.status());
      wire::QueryRequest req = *std::move(request);
      const Deadline deadline =
          EffectiveDeadline(options_, req.query.deadline_ms);
      window.push_back({std::move(req), SteadyClock::now(), deadline});
    }
    // Binary mode is bounded by ExtractFrame's 16 MiB cap; hold JSON
    // lines to the same bar so a client streaming newline-free bytes
    // cannot grow the buffer without limit.
    if (connection->buffer.size() > wire::kMaxFramePayload) {
      return protocol_error(Status::ProtocolError(
          "JSON line exceeds " + std::to_string(wire::kMaxFramePayload) +
          " bytes without a newline"));
    }
  } else {
    while (true) {
      wire::Frame frame;
      size_t consumed = 0;
      Status status =
          wire::ExtractFrame(connection->buffer, &frame, &consumed);
      if (!status.ok()) return protocol_error(status);
      if (consumed == 0) break;  // partial frame: wait for more bytes
      switch (frame.type) {
        case wire::FrameType::kQuery: {
          Result<wire::QueryRequest> request =
              wire::DecodeRequest(frame.payload);
          if (!request.ok()) return protocol_error(request.status());
          wire::QueryRequest req = *std::move(request);
          const Deadline deadline =
              EffectiveDeadline(options_, req.query.deadline_ms);
          window.push_back({std::move(req), SteadyClock::now(), deadline});
          break;
        }
        case wire::FrameType::kStats:
          flush_window();
          wire::AppendStatsResponseFrame(StatsJson(), &out);
          break;
        case wire::FrameType::kMutate: {
          Result<wire::MutateRequest> request =
              wire::DecodeMutate(frame.payload);
          if (!request.ok()) return protocol_error(request.status());
          // Write barrier: queries buffered before this frame run
          // against the old generation, ones after against the new;
          // responses stay in request order either way.
          flush_window();
          wire::AppendMutateResponseFrame(ApplyMutation(*request), &out);
          break;
        }
        default:
          // Clients must not send server-to-client frame types.
          return protocol_error(Status::ProtocolError(
              "unexpected client frame type " +
              std::to_string(static_cast<int>(frame.type))));
      }
      connection->buffer.erase(0, consumed);
    }
  }

  flush_window();
  if (out.empty()) return true;
  return WriteAll(connection->fd, out, &bytes_out_,
                  options_.write_timeout_ms);
}

wire::MutateResponse Server::ApplyMutation(
    const wire::MutateRequest& request) {
  wire::MutateResponse response;
  response.id = request.id;
  response.op = request.op;
  response.doc_id = request.doc_id;
  core::MutableIndex* target = options_.mutable_index;
  mutations_.fetch_add(1, std::memory_order_relaxed);
  SPINE_OBS_COUNT("serve.mutations", 1);
  if (target == nullptr) {
    response.status = StatusCode::kInvalidArgument;
    response.error = "backend '" + std::string(index_.Name()) +
                     "' is read-only; lifecycle verbs need a dynamic index";
    return response;
  }
  Status status;
  switch (request.op) {
    case wire::MutateOp::kInsert: {
      Result<uint32_t> doc_id = target->InsertDocument(request.document);
      if (doc_id.ok()) {
        response.doc_id = *doc_id;
      } else {
        status = doc_id.status();
      }
      break;
    }
    case wire::MutateOp::kDelete:
      status = target->DeleteDocument(request.doc_id);
      break;
    case wire::MutateOp::kCompact:
      status = target->Compact();
      break;
    case wire::MutateOp::kReload:
      status = target->Reload();
      break;
  }
  response.status = status.code();
  if (!status.ok()) response.error = std::string(status.message());
  response.generation = target->generation_version();
  return response;
}

}  // namespace spine::serve
