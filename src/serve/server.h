// spine serve: the networked query front-end.
//
// A Server listens on a TCP port and answers wire-envelope queries
// (core/wire.h) against any core::Index — a compact image, a paged
// disk index, or a ShardedIndex family opened through the
// BackendRegistry. The protocol is the length-prefixed binary framing
// of core/wire.h, with a JSON-lines fallback auto-detected per
// connection (a first byte of '{' plus a first line that cannot be a
// binary frame header switches the whole connection to JSON mode) for
// debugging with nothing but nc.
//
// Threading model
//   One acceptor thread owns the listening socket. Each accepted
//   connection gets a reader thread that drains complete frames from
//   its socket in batch windows and executes the admitted queries
//   through the shared engine::QueryEngine::ExecuteBatch — so the
//   actual query work runs on the engine's work-stealing ThreadPool,
//   not on connection threads, and heterogeneous connections share
//   one result cache and one set of workers.
//
// Admission control and load-shed
//   Two bounds protect the engine from saturation:
//     queue_cap      per-connection: at most this many queries from one
//                    batch window are queued for execution; the excess
//                    is shed immediately.
//     max_inflight   server-wide: queries admitted across all
//                    connections at any instant.
//   A shed query is answered — in order, with its request id — by a
//   QueryResponse whose status is StatusCode::kOverloaded. Clients see
//   a distinct, retryable verdict instead of a stalled socket.
//
// Graceful drain
//   RequestDrain() stops the acceptor and half-closes every connection
//   for reading. Reader threads finish whatever the kernel had already
//   buffered — every accepted query still gets its response — then the
//   connections close. Stop() drains and joins everything.
//   (`spine serve` wires SIGTERM/SIGINT to exactly this sequence and
//   flushes a final stats snapshot.)
//
// Time-bounding and cancellation (PR 7) — no client can pin a thread:
//   deadlines       every request carries Query::deadline_ms (0 = ask
//                   for the server default). The effective budget is
//                   request-or-default, capped by max_deadline_ms, and
//                   pinned to an absolute Deadline the moment the
//                   request is decoded, so time buffered in a batch
//                   window counts. Expired queries are answered
//                   kDeadlineExceeded without touching the engine;
//                   live ones carry their remaining budget down into
//                   the engine's cooperative checkpoints.
//   reader timeouts reader threads wait in poll(2) with a ~100 ms
//                   tick instead of blocking in recv forever:
//                   a connection idle past idle_timeout_ms (empty
//                   buffer) or stuck mid-frame past read_timeout_ms is
//                   sent a best-effort kDeadlineExceeded error frame
//                   and closed — a half-open client costs one fd, not
//                   a parked thread.
//   write timeouts  responses are written with MSG_DONTWAIT plus a
//                   poll(POLLOUT) loop; a client that stops reading
//                   for write_timeout_ms gets its connection dropped
//                   instead of wedging the reader thread in send.
//   watchdog        one server-wide thread ticks ~100 ms over the
//                   executing connections: a peer that vanished
//                   (POLLERR/POLLHUP on its socket) has its per-
//                   connection CancelToken fired so the engine stops
//                   burning CPU on answers nobody will read, and a
//                   batch running past slow_query_ms logs one
//                   slow-query line to stderr.
//
// Observability: serve.* metrics (connections, queries, shed,
// queue_wait_us, bytes in/out, protocol errors, deadline_exceeded,
// cancelled, idle_closed, deadline_remaining_us) land in the default
// obs::Registry; the STATS protocol verb and `stats --json` both emit
// the same versioned snapshot. docs/SERVING.md holds the full spec.

#ifndef SPINE_SERVE_SERVER_H_
#define SPINE_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "core/index.h"
#include "core/wire.h"
#include "engine/query_engine.h"

namespace spine::serve {

// Same naming scheme as engine::QueryEngine::Options (threads /
// queue_cap / retry_* / tracing); the combined defaults table lives in
// docs/SERVING.md.
struct Options {
  std::string host = "127.0.0.1";  // bind address
  uint16_t port = 0;               // 0 → ephemeral; read back via port()
  uint32_t threads = 0;            // engine pool size, 0 → hardware
  uint32_t queue_cap = 64;         // per-connection admitted-queue bound
  uint32_t max_inflight = 256;     // server-wide admission bound
  uint32_t max_connections = 64;   // accepted sockets at once
  uint64_t cache_bytes = 0;        // engine result cache, 0 → disabled
  uint32_t retry_limit = 2;        // engine transient-fault retries
  uint32_t retry_backoff_us = 500;
  bool tracing = false;            // per-query engine traces (in-process)
  // Time budgets (milliseconds; 0 disables the bound):
  uint32_t default_deadline_ms = 0;  // applied when a request carries 0
  uint32_t max_deadline_ms = 0;      // cap on any effective deadline
  uint32_t idle_timeout_ms = 60000;  // close connections with no traffic
  uint32_t read_timeout_ms = 10000;  // ... and ones stuck mid-frame
  uint32_t write_timeout_ms = 10000;  // drop clients that stop reading
  uint32_t slow_query_ms = 1000;      // watchdog stderr log threshold
  // Lifecycle verbs (kMutate frames / "type":"mutate" lines). When the
  // served index is mutable (a dynamic family), point this at it —
  // normally the same object as the query index — and the server
  // accepts insert/delete/compact/reload. Null (the default) makes the
  // server read-only: every mutate is answered kInvalidArgument.
  // Mutations serialize inside the index; queries already in flight
  // keep their pinned generation (engine snapshot pinning).
  core::MutableIndex* mutable_index = nullptr;
};

// Monotonic totals since Start(); readable while serving.
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_open = 0;
  uint64_t queries = 0;          // admitted and executed
  uint64_t shed = 0;             // rejected with kOverloaded
  uint64_t protocol_errors = 0;  // connections killed by bad frames
  uint64_t deadline_exceeded = 0;  // queries answered kDeadlineExceeded
  uint64_t cancelled = 0;          // queries answered kCancelled
  uint64_t idle_closed = 0;        // connections closed by idle/read timeout
  uint64_t mutations = 0;          // lifecycle verbs applied (or refused)
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
};

class Server {
 public:
  // The index must outlive the server. All option fields are fixed at
  // construction.
  Server(const core::Index& index, const Options& options);
  ~Server();  // Stop()s if still running

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds, listens and spawns the acceptor. Fails with kIoError when
  // the address cannot be bound, kInvalidArgument for a bad host.
  Status Start();

  // Port actually bound (resolves port 0 after Start()).
  uint16_t port() const { return port_; }
  bool draining() const { return drain_.load(std::memory_order_acquire); }

  // Stops accepting and half-closes every connection for reading;
  // in-flight and already-buffered queries still complete and their
  // responses are written. Idempotent, non-blocking.
  void RequestDrain();

  // RequestDrain() + join acceptor and every connection thread. After
  // Stop() the stats are final. Idempotent.
  void Stop();

  ServerStats stats() const;

  // The versioned stats snapshot served by the STATS verb:
  // {"schema_version":N,"command":"serve","metrics":{...},
  //  "serve":{connections, queries, shed, ...}}.
  std::string StatsJson() const;

 private:
  struct Connection;

  void AcceptLoop();
  void ConnectionLoop(Connection* connection);
  // The ~100 ms tick that fires disconnected executing connections'
  // CancelTokens and logs slow query batches (see header comment).
  void WatchdogLoop();
  // Decodes and answers every complete frame currently in
  // `connection`'s buffer; returns false when the connection must
  // close (protocol error or write failure).
  bool ProcessBuffered(Connection* connection);
  void JoinFinishedConnections();
  // Applies one lifecycle verb against options_.mutable_index (or
  // refuses it when the server is read-only) and builds the response.
  core::wire::MutateResponse ApplyMutation(
      const core::wire::MutateRequest& request);

  const core::Index& index_;
  const Options options_;
  engine::QueryEngine engine_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread acceptor_;
  std::thread watchdog_;
  std::atomic<bool> running_{false};
  std::atomic<bool> drain_{false};
  std::atomic<bool> stopping_{false};  // tells the watchdog to exit

  std::mutex connections_mu_;
  std::vector<std::unique_ptr<Connection>> connections_;

  std::atomic<uint32_t> inflight_{0};  // admitted, not yet answered
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> open_{0};
  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> deadline_exceeded_{0};
  std::atomic<uint64_t> cancelled_{0};
  std::atomic<uint64_t> idle_closed_{0};
  std::atomic<uint64_t> mutations_{0};
  std::atomic<uint64_t> bytes_in_{0};
  std::atomic<uint64_t> bytes_out_{0};
};

}  // namespace spine::serve

#endif  // SPINE_SERVE_SERVER_H_
