#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "obs/json.h"

namespace spine::serve {

namespace wire = core::wire;

Result<Client> Client::Connect(const std::string& host, uint16_t port,
                               bool json) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad server address '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = Status::IoError("connect " + host + ":" +
                                    std::to_string(port) + ": " +
                                    std::strerror(errno));
    ::close(fd);
    return status;
  }
  return Client(fd, json);
}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      json_(other.json_),
      buffer_(std::move(other.buffer_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    json_ = other.json_;
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Status Client::SendRaw(std::string_view bytes) {
  if (fd_ < 0) return Status::FailedPrecondition("client moved-from");
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status Client::Send(const wire::QueryRequest& request) {
  // A pattern near the frame cap cannot travel either dialect (binary:
  // the encoded frame would exceed kMaxFramePayload; JSON: the server
  // bounds un-terminated lines at the same cap). Fail with a
  // client-side verdict instead of encoding bytes the server is
  // guaranteed to reject. 24 = the request payload's fixed fields
  // (including the trailing deadline_ms) plus the version/type header
  // bytes.
  if (request.query.pattern.size() + 24 > wire::kMaxFramePayload) {
    return Status::InvalidArgument(
        "pattern of " + std::to_string(request.query.pattern.size()) +
        " bytes exceeds the " + std::to_string(wire::kMaxFramePayload) +
        "-byte wire frame cap");
  }
  std::string out;
  if (json_) {
    out = wire::RequestToJson(request);
    out += '\n';
  } else {
    wire::AppendRequestFrame(request, &out);
  }
  return SendRaw(out);
}

Status Client::SendMutate(const wire::MutateRequest& request) {
  // Same cap discipline as Send(): 21 = the mutate payload's fixed
  // fields plus the version/type header bytes.
  if (request.document.size() + 21 > wire::kMaxFramePayload) {
    return Status::InvalidArgument(
        "document of " + std::to_string(request.document.size()) +
        " bytes exceeds the " + std::to_string(wire::kMaxFramePayload) +
        "-byte wire frame cap");
  }
  std::string out;
  if (json_) {
    out = wire::MutateToJson(request);
    out += '\n';
  } else {
    wire::AppendMutateFrame(request, &out);
  }
  return SendRaw(out);
}

Status Client::SendStatsRequest() {
  std::string out;
  if (json_) {
    out = "{\"v\":1,\"type\":\"stats\"}\n";
  } else {
    wire::AppendStatsRequestFrame(&out);
  }
  return SendRaw(out);
}

void Client::ShutdownSend() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

Status Client::FillOne() {
  char chunk[64 * 1024];
  while (true) {
    if (json_) {
      if (buffer_.find('\n') != std::string::npos) return Status::OK();
    } else {
      wire::Frame frame;
      size_t consumed = 0;
      Status status = wire::ExtractFrame(buffer_, &frame, &consumed);
      if (!status.ok()) return status;
      if (consumed > 0) return Status::OK();
    }
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) {
      return Status::IoError("connection closed by server");
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

Status Client::NextFrame(wire::Frame* frame, std::string* storage) {
  Status status = FillOne();
  if (!status.ok()) return status;
  size_t consumed = 0;
  status = wire::ExtractFrame(buffer_, frame, &consumed);
  if (!status.ok()) return status;
  // Detach the payload from buffer_ so the caller outlives the erase.
  *storage = std::string(frame->payload);
  frame->payload = *storage;
  buffer_.erase(0, consumed);
  return Status::OK();
}

Status Client::NextLine(std::string* line) {
  Status status = FillOne();
  if (!status.ok()) return status;
  const size_t newline = buffer_.find('\n');
  *line = buffer_.substr(0, newline);
  buffer_.erase(0, newline + 1);
  if (!line->empty() && line->back() == '\r') line->pop_back();
  return Status::OK();
}

namespace {

// A JSON-mode server error line ({"type":"error",...}) mapped onto its
// own Status, or nullopt when `line` is not an error object.
std::optional<Status> JsonErrorStatus(const std::string& line) {
  Result<obs::JsonValue> doc = obs::ParseJson(line);
  if (!doc.ok() || !doc->is_object()) return std::nullopt;
  const obs::JsonValue* type = doc->Find("type");
  if (type == nullptr || !type->is_string() ||
      type->string_value != "error") {
    return std::nullopt;
  }
  const obs::JsonValue* error = doc->Find("error");
  std::string message =
      error != nullptr && error->is_string() ? error->string_value : line;
  const obs::JsonValue* code = doc->Find("status");
  if (code != nullptr && code->is_string() &&
      code->string_value == "Overloaded") {
    return Status::Overloaded(std::move(message));
  }
  return Status::ProtocolError(std::move(message));
}

}  // namespace

Result<wire::QueryResponse> Client::ReceiveResponse() {
  if (json_) {
    std::string line;
    Status status = NextLine(&line);
    if (!status.ok()) return status;
    if (std::optional<Status> error = JsonErrorStatus(line)) return *error;
    return wire::ParseResponseJson(line);
  }
  wire::Frame frame;
  std::string storage;
  Status status = NextFrame(&frame, &storage);
  if (!status.ok()) return status;
  if (frame.type == wire::FrameType::kError) {
    Result<wire::WireError> error = wire::DecodeError(frame.payload);
    if (!error.ok()) return error.status();
    return Status(error->code, std::move(error->message));
  }
  if (frame.type != wire::FrameType::kResponse) {
    return Status::ProtocolError(
        "expected response frame, got type " +
        std::to_string(static_cast<int>(frame.type)));
  }
  return wire::DecodeResponse(frame.payload);
}

Result<wire::MutateResponse> Client::ReceiveMutateResponse() {
  if (json_) {
    std::string line;
    Status status = NextLine(&line);
    if (!status.ok()) return status;
    if (std::optional<Status> error = JsonErrorStatus(line)) return *error;
    return wire::ParseMutateResponseJson(line);
  }
  wire::Frame frame;
  std::string storage;
  Status status = NextFrame(&frame, &storage);
  if (!status.ok()) return status;
  if (frame.type == wire::FrameType::kError) {
    Result<wire::WireError> error = wire::DecodeError(frame.payload);
    if (!error.ok()) return error.status();
    return Status(error->code, std::move(error->message));
  }
  if (frame.type != wire::FrameType::kMutateResponse) {
    return Status::ProtocolError(
        "expected mutate response frame, got type " +
        std::to_string(static_cast<int>(frame.type)));
  }
  return wire::DecodeMutateResponse(frame.payload);
}

Result<std::string> Client::ReceiveStatsJson() {
  if (json_) {
    std::string line;
    Status status = NextLine(&line);
    if (!status.ok()) return status;
    if (std::optional<Status> error = JsonErrorStatus(line)) return *error;
    return line;
  }
  wire::Frame frame;
  std::string storage;
  Status status = NextFrame(&frame, &storage);
  if (!status.ok()) return status;
  if (frame.type == wire::FrameType::kError) {
    Result<wire::WireError> error = wire::DecodeError(frame.payload);
    if (!error.ok()) return error.status();
    return Status(error->code, std::move(error->message));
  }
  if (frame.type != wire::FrameType::kStatsResponse) {
    return Status::ProtocolError(
        "expected stats frame, got type " +
        std::to_string(static_cast<int>(frame.type)));
  }
  return wire::DecodeStatsResponse(frame.payload);
}

}  // namespace spine::serve
