// Blocking TCP client for the spine serve wire protocol.
//
// Speaks both dialects of core/wire.h — binary frames (default) and
// JSON lines — against a running serve::Server. Used by
// tests/serve_test.cc (protocol-level correctness) and
// bench/bench_serve.cc (open-loop load generation).
//
// The client is deliberately synchronous: Send*() appends bytes to the
// socket, Receive*() blocks until one complete reply is buffered.
// Pipelining is just calling Send() N times before Receive() N times —
// the server answers in request order, and request ids make the
// pairing auditable either way.

#ifndef SPINE_SERVE_CLIENT_H_
#define SPINE_SERVE_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "core/wire.h"

namespace spine::serve {

class Client {
 public:
  // Connects to host:port. With `json` set, every exchange uses the
  // JSON-lines dialect (the first byte written switches the server's
  // connection mode).
  static Result<Client> Connect(const std::string& host, uint16_t port,
                                bool json = false);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool json() const { return json_; }
  int fd() const { return fd_; }

  Status Send(const core::wire::QueryRequest& request);
  Status SendStatsRequest();
  // Lifecycle verbs against a mutable backend (docs/LIFECYCLE.md). The
  // document is bounded by the frame cap, same as query patterns.
  Status SendMutate(const core::wire::MutateRequest& request);
  // Raw bytes straight onto the socket — the hook tests and the fuzzer
  // use to deliver malformed frames.
  Status SendRaw(std::string_view bytes);

  // Blocks for the next response frame / line. A connection-level error
  // frame (or JSON error line) comes back as the error's own Status; a
  // closed socket yields kIoError.
  Result<core::wire::QueryResponse> ReceiveResponse();
  // Blocks for the next stats document (reply to SendStatsRequest).
  Result<std::string> ReceiveStatsJson();
  // Blocks for the next mutate response (reply to SendMutate).
  Result<core::wire::MutateResponse> ReceiveMutateResponse();

  // Half-closes the write side; the server drains what was sent and
  // then sees EOF. Receive*() keeps working until the server closes.
  void ShutdownSend();

 private:
  Client(int fd, bool json) : fd_(fd), json_(json) {}

  // Reads until `buffer_` holds one complete frame (binary) or one
  // newline-terminated line (JSON). OK means it does.
  Status FillOne();
  Status NextFrame(core::wire::Frame* frame, std::string* storage);
  Status NextLine(std::string* line);

  int fd_ = -1;
  bool json_ = false;
  std::string buffer_;
};

}  // namespace spine::serve

#endif  // SPINE_SERVE_CLIENT_H_
