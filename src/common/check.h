// Invariant-checking macros. SPINE_CHECK fires in all build modes; use it
// for invariants whose violation would corrupt the index. SPINE_DCHECK
// compiles away in NDEBUG builds and is for hot paths.

#ifndef SPINE_COMMON_CHECK_H_
#define SPINE_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define SPINE_CHECK(cond)                                                  \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "SPINE_CHECK failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, #cond);                                       \
      std::abort();                                                        \
    }                                                                      \
  } while (false)

#define SPINE_CHECK_MSG(cond, msg)                                         \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "SPINE_CHECK failed at %s:%d: %s (%s)\n",       \
                   __FILE__, __LINE__, #cond, msg);                        \
      std::abort();                                                        \
    }                                                                      \
  } while (false)

#ifdef NDEBUG
#define SPINE_DCHECK(cond) \
  do {                     \
  } while (false)
#else
#define SPINE_DCHECK(cond) SPINE_CHECK(cond)
#endif

#endif  // SPINE_COMMON_CHECK_H_
