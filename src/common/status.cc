#include "common/status.h"

namespace spine {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOverloaded:
      return "Overloaded";
    case StatusCode::kProtocolError:
      return "ProtocolError";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace spine
