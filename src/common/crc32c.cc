#include "common/crc32c.h"

#include <array>

namespace spine {

namespace {

// Table for the reflected Castagnoli polynomial, built once at startup.
struct Crc32cTable {
  std::array<uint32_t, 256> entries;

  Crc32cTable() {
    constexpr uint32_t kPoly = 0x82f63b78u;
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      entries[i] = crc;
    }
  }
};

const Crc32cTable& Table() {
  static const Crc32cTable table;
  return table;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t state, const void* data, size_t n) {
  const auto& table = Table().entries;
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < n; ++i) {
    state = table[(state ^ bytes[i]) & 0xff] ^ (state >> 8);
  }
  return state;
}

}  // namespace spine
