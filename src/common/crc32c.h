// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78):
// the checksum guarding every storage-layer artifact — page payloads,
// the page-file superblock, serialized index images and metadata
// sidecars. CRC32C detects all single-bit and all 2-bit errors within
// a page, which is exactly the failure class the fault-injection
// harness exercises (torn pages, silent flips).
//
// Software slicing-by-1 table implementation: portable, no intrinsics,
// ~1 GB/s — the storage paths it guards are I/O bound.

#ifndef SPINE_COMMON_CRC32C_H_
#define SPINE_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace spine {

// Extends a running CRC32C over `n` more bytes. Start from
// kCrc32cInit, finish with Crc32cFinish (the usual xor-out pattern so
// partial checksums can be chained).
inline constexpr uint32_t kCrc32cInit = 0xffffffffu;

uint32_t Crc32cExtend(uint32_t state, const void* data, size_t n);

inline uint32_t Crc32cFinish(uint32_t state) { return state ^ 0xffffffffu; }

// One-shot convenience: checksum of a single buffer.
inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cFinish(Crc32cExtend(kCrc32cInit, data, n));
}

}  // namespace spine

#endif  // SPINE_COMMON_CRC32C_H_
