// Deadlines and cooperative cancellation.
//
// Three small value types thread a time budget from the serving edge
// down to the innermost vertebra loops:
//
//   Deadline          an absolute point on the monotonic clock (or
//                     "never"). Queries carry a *relative* deadline_ms
//                     on the wire; the engine pins it to an absolute
//                     Deadline exactly once, at batch entry, so queued
//                     time counts against the budget.
//   CancelToken       a poll-only flag combining an explicit Cancel()
//                     (client disconnected, shutdown) with a Deadline,
//                     optionally chained to a parent token (the serve
//                     layer holds one token per connection; the engine
//                     derives one per query under it).
//   CancelCheckpoint  the hot-loop guard: amortizes the clock read and
//                     the atomic load over `interval` iterations, and
//                     compiles down to a null test + decrement when no
//                     token is present — measured <1% on the
//                     bench_kernel_ops / bench_table6 hot paths
//                     (docs/PERF.md).
//
// Cancellation is cooperative: code observes ShouldStop(), abandons the
// traversal, and the caller (core/query.h ExecuteQuery, the engine)
// converts the fired token into a kDeadlineExceeded / kCancelled
// QueryResult. A partial payload is never returned as kOk.
//
// Thread safety: Cancel() and all the polling calls are safe from any
// thread (relaxed atomics + an immutable deadline). Construction and
// destruction are not concurrent with use, as usual.

#ifndef SPINE_COMMON_CANCEL_H_
#define SPINE_COMMON_CANCEL_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>

#include "common/status.h"

namespace spine {

class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  // Default: never expires.
  Deadline() : at_(Clock::time_point::max()) {}

  static Deadline Infinite() { return Deadline(); }
  static Deadline At(Clock::time_point at) {
    Deadline d;
    d.at_ = at;
    return d;
  }
  static Deadline AfterMs(uint64_t ms) {
    return AfterMicros(ms > std::numeric_limits<uint64_t>::max() / 1000
                           ? std::numeric_limits<uint64_t>::max()
                           : ms * 1000);
  }
  static Deadline AfterMicros(uint64_t us) {
    // Saturate: a huge relative budget must not overflow past the
    // clock's epoch and read as "already expired". The clamp into the
    // signed duration rep matters too — microseconds counts in int64,
    // and a uint64 past that wraps negative.
    const Clock::time_point now = Clock::now();
    const auto headroom = Clock::time_point::max() - now;
    const auto want = std::chrono::microseconds(static_cast<int64_t>(
        std::min<uint64_t>(us, std::numeric_limits<int64_t>::max())));
    return At(want >= std::chrono::duration_cast<std::chrono::microseconds>(
                          headroom)
                  ? Clock::time_point::max()
                  : now + want);
  }

  bool IsInfinite() const { return at_ == Clock::time_point::max(); }
  bool Expired() const { return !IsInfinite() && Clock::now() >= at_; }

  // Microseconds until expiry, clamped to >= 0. A very large value
  // (int64 max) for the infinite deadline.
  int64_t RemainingMicros() const {
    if (IsInfinite()) return std::numeric_limits<int64_t>::max();
    const auto left = std::chrono::duration_cast<std::chrono::microseconds>(
        at_ - Clock::now());
    return left.count() < 0 ? 0 : left.count();
  }
  int64_t RemainingMs() const {
    const int64_t us = RemainingMicros();
    return us == std::numeric_limits<int64_t>::max() ? us : us / 1000;
  }

  Clock::time_point time() const { return at_; }

  static Deadline Sooner(const Deadline& a, const Deadline& b) {
    return a.at_ <= b.at_ ? a : b;
  }

  bool operator==(const Deadline&) const = default;

 private:
  Clock::time_point at_;
};

// A poll-only cancellation flag plus deadline, optionally chained to a
// parent token. Non-copyable: holders share it by pointer, so one
// Cancel() is seen by every observer.
class CancelToken {
 public:
  CancelToken() = default;
  explicit CancelToken(Deadline deadline, const CancelToken* parent = nullptr)
      : deadline_(deadline), parent_(parent) {}

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  // Requests cancellation (kCancelled). Safe from any thread; sticky.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  bool cancel_requested() const {
    return cancelled_.load(std::memory_order_relaxed) ||
           (parent_ != nullptr && parent_->cancel_requested());
  }

  const Deadline& deadline() const { return deadline_; }

  // True once the holder should stop: explicitly cancelled (here or in
  // an ancestor) or past the deadline (here or in an ancestor).
  bool Fired() const { return FiredCode() != StatusCode::kOk; }

  // kCancelled / kDeadlineExceeded when fired, kOk otherwise. An
  // explicit Cancel() wins over a simultaneously expired deadline: it
  // carries more information (the peer is gone; retrying is pointless).
  StatusCode FiredCode() const {
    if (cancel_requested()) return StatusCode::kCancelled;
    if (deadline_.Expired()) return StatusCode::kDeadlineExceeded;
    if (parent_ != nullptr) return parent_->FiredCode();
    return StatusCode::kOk;
  }

  Status ToStatus() const {
    switch (FiredCode()) {
      case StatusCode::kCancelled:
        return Status::Cancelled("query cancelled");
      case StatusCode::kDeadlineExceeded:
        return Status::DeadlineExceeded("deadline exceeded");
      default:
        return Status::OK();
    }
  }

 private:
  std::atomic<bool> cancelled_{false};
  Deadline deadline_;
  const CancelToken* parent_ = nullptr;
};

// How many loop iterations pass between token polls. Chosen so the
// poll amortizes to noise (one clock read per ~thousand vertebra
// steps) while keeping worst-case overshoot far under any practical
// deadline (a checkpoint interval of work is microseconds).
inline constexpr uint32_t kCancelCheckInterval = 1024;

// Hot-loop guard. With token == nullptr, ShouldStop() is a null test
// and nothing else touches memory — the common (no-deadline) case
// stays kernel-speed.
class CancelCheckpoint {
 public:
  explicit CancelCheckpoint(const CancelToken* token,
                            uint32_t interval = kCancelCheckInterval)
      : token_(token), interval_(interval), countdown_(interval) {}

  bool ShouldStop() {
    if (token_ == nullptr) return false;
    if (fired_) return true;
    if (--countdown_ != 0) return false;
    countdown_ = interval_;
    fired_ = token_->Fired();
    return fired_;
  }

 private:
  const CancelToken* token_;
  uint32_t interval_;
  uint32_t countdown_;
  bool fired_ = false;
};

}  // namespace spine

#endif  // SPINE_COMMON_CANCEL_H_
