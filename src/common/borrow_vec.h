// BorrowVec<T>: a vector that can either own its elements or borrow
// them from externally managed memory (an mmap'd artifact image).
//
// The zero-copy open path (storage/mmap_region.h) deserializes a
// CompactSpineIndex by pointing its tables straight into the mapping.
// Those tables are std::vector members on the heap path, so this class
// gives them one type that serves both: read accessors dispatch to the
// view or the owned vector, and every mutating accessor first
// materializes the view into owned storage (copy-on-write at vector
// granularity). Query paths are const member functions, so borrowed
// serving never pays the materialize branch on reads.
//
// The borrowed memory is NOT owned or kept alive by this class — the
// borrower (CompactSpineIndex holds a shared_ptr to its mapping) must
// outlive every view. capacity() reports 0 while borrowed: the pages
// belong to the page cache, not to this process's private footprint,
// which keeps MemoryBytes() honest about resident cost.

#ifndef SPINE_COMMON_BORROW_VEC_H_
#define SPINE_COMMON_BORROW_VEC_H_

#include <cstddef>
#include <vector>

namespace spine {

template <typename T>
class BorrowVec {
 public:
  BorrowVec() = default;

  // Points at `count` externally owned elements. The pointer must stay
  // valid (and properly aligned for T) until the next mutation or
  // Borrow/assign call.
  void Borrow(const T* data, size_t count) {
    owned_.clear();
    view_ = data;
    view_size_ = count;
  }

  // Takes ownership of an already-populated vector (the heap
  // deserialize path).
  void Adopt(std::vector<T> v) {
    view_ = nullptr;
    view_size_ = 0;
    owned_ = std::move(v);
  }

  bool borrowed() const { return view_ != nullptr; }

  // Copies a borrowed view into owned storage; no-op when owned.
  void EnsureOwned() {
    if (view_ == nullptr) return;
    owned_.assign(view_, view_ + view_size_);
    view_ = nullptr;
    view_size_ = 0;
  }

  size_t size() const { return view_ != nullptr ? view_size_ : owned_.size(); }
  bool empty() const { return size() == 0; }
  const T* data() const { return view_ != nullptr ? view_ : owned_.data(); }
  const T& operator[](size_t i) const { return data()[i]; }
  const T& back() const { return data()[size() - 1]; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size(); }

  // Owned bytes only: a borrowed view lives in shared mapped pages.
  size_t capacity() const { return owned_.capacity(); }

  // --- Mutation (materializes a borrowed view first) ----------------------

  T* data() {
    EnsureOwned();
    return owned_.data();
  }
  T& operator[](size_t i) {
    EnsureOwned();
    return owned_[i];
  }
  void push_back(const T& value) {
    EnsureOwned();
    owned_.push_back(value);
  }
  void pop_back() {
    EnsureOwned();
    owned_.pop_back();
  }
  void resize(size_t n) {
    EnsureOwned();
    owned_.resize(n);
  }
  void assign(size_t n, const T& value) {
    view_ = nullptr;
    view_size_ = 0;
    owned_.assign(n, value);
  }
  void clear() {
    view_ = nullptr;
    view_size_ = 0;
    owned_.clear();
  }

 private:
  const T* view_ = nullptr;  // non-null => borrowed mode
  size_t view_size_ = 0;
  std::vector<T> owned_;
};

}  // namespace spine

#endif  // SPINE_COMMON_BORROW_VEC_H_
