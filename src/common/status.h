// Status and Result<T>: error handling vocabulary for the spine library.
//
// The library does not throw exceptions. Operations that can fail for
// reasons outside the programmer's control (I/O, malformed input files,
// characters outside the configured alphabet) return Status or Result<T>;
// violated internal invariants abort via the SPINE_CHECK macros.

#ifndef SPINE_COMMON_STATUS_H_
#define SPINE_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace spine {

// Extend-only: the numeric values travel on the serving wire
// (core/wire.h) and map onto the CLI exit-code table (tools/cli.h), so
// existing entries must never be renumbered.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kIoError = 4,
  kCorruption = 5,
  kResourceExhausted = 6,
  kFailedPrecondition = 7,
  // The server's admission control rejected the query: the system is
  // saturated, not broken. Clients should back off and retry.
  kOverloaded = 8,
  // The peer sent bytes that do not form a valid wire frame (bad
  // magic/version, truncated or oversized frame, malformed payload).
  kProtocolError = 9,
  // The query's time budget ran out before an answer was produced
  // (common/cancel.h). The work was abandoned at a checkpoint; any
  // partial payload is discarded. Retrying with a larger budget is
  // reasonable.
  kDeadlineExceeded = 10,
  // The query was cancelled cooperatively — the client disconnected or
  // the server is shutting down. Retrying is pointless for the
  // originator (it asked for the cancellation, directly or by dying).
  kCancelled = 11,
};

// Human-readable name for a status code ("OK", "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

// A cheap value type carrying a status code and, for errors, a message.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }
  static Status ProtocolError(std::string msg) {
    return Status(StatusCode::kProtocolError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Result<T> holds either a value or an error Status. Callers must check
// ok() before dereferencing.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : value_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(value_); }
  const T& value() const& { return std::get<T>(value_); }
  T& value() & { return std::get<T>(value_); }
  T&& value() && { return std::get<T>(std::move(value_)); }
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> value_;
};

}  // namespace spine

// Propagates a non-OK Status from the evaluated expression.
#define SPINE_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::spine::Status _spine_status = (expr);    \
    if (!_spine_status.ok()) return _spine_status; \
  } while (false)

#endif  // SPINE_COMMON_STATUS_H_
