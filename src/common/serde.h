// Minimal POD/vector stream serialization shared by the index
// serializers (compact/serializer.cc, storage/*.cc metadata sidecars).
//
// Robustness properties (PR 2):
//   - Writer and Reader both accumulate a running CRC32C over every
//     byte written/consumed; WriteCrcFooter / VerifyCrcFooter turn it
//     into a whole-image integrity check that catches any single-bit
//     corruption the structural checks miss.
//   - Reader::Vec bounds every element count against the bytes
//     actually remaining in the stream, so a corrupted length field
//     fails cleanly instead of attempting a multi-GiB allocation.
//
// Zero-copy additions (PR 8): Writer::Align8 pads the stream with
// CRC-covered zero bytes so array payloads land 8-aligned in the file,
// and MapReader walks a memory image (an mmap'd artifact) handing out
// borrowed pointers into it instead of copying. Heap Reader and
// MapReader enforce the same bounds/pad checks in the same order, so
// both open paths accept or reject any given image identically — the
// property the fuzz harness' differential mmap phase locks in.

#ifndef SPINE_COMMON_SERDE_H_
#define SPINE_COMMON_SERDE_H_

#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <vector>

#include "common/crc32c.h"

namespace spine::serde {

class Writer {
 public:
  explicit Writer(std::ostream& out) : out_(out) {}

  template <typename T>
  void Pod(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    Raw(&value, sizeof(T));
  }

  template <typename T>
  void Vec(const std::vector<T>& vec) {
    static_assert(std::is_trivially_copyable_v<T>);
    Pod<uint64_t>(vec.size());
    if (!vec.empty()) Raw(vec.data(), vec.size() * sizeof(T));
  }

  // Pointer/count variant (BorrowVec members, borrowed word arrays).
  template <typename T>
  void Vec(const T* data, uint64_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    Pod<uint64_t>(count);
    if (count > 0) Raw(data, count * sizeof(T));
  }

  // Raw CRC-covered bytes with no length prefix (callers encode their
  // own framing).
  void Bytes(const void* data, size_t n) { Raw(data, n); }

  // Zero-pads (CRC-covered) so the next byte lands on an 8-byte file
  // offset — written before each array a zero-copy reader will point
  // into, making the borrowed T* naturally aligned.
  void Align8() {
    static const char kZeros[8] = {0};
    size_t pad = static_cast<size_t>((8 - written_ % 8) % 8);
    if (pad > 0) Raw(kZeros, pad);
  }

  // Zero-pads so the byte AFTER a 4-byte CRC footer lands 8-aligned —
  // used when a self-aligned image follows the footer (the generalized
  // container's embedded inner image).
  void AlignForFooter8() {
    static const char kZeros[8] = {0};
    size_t pad = static_cast<size_t>((8 - (written_ + 4) % 8) % 8);
    if (pad > 0) Raw(kZeros, pad);
  }

  uint64_t written() const { return written_; }

  // CRC32C of everything written so far.
  uint32_t crc() const { return Crc32cFinish(crc_state_); }

  // Appends the running CRC as a trailer. The footer itself is not
  // folded into the CRC; pair with Reader::VerifyCrcFooter.
  void WriteCrcFooter() {
    uint32_t footer = crc();
    out_.write(reinterpret_cast<const char*>(&footer), sizeof(footer));
  }

 private:
  void Raw(const void* data, size_t n) {
    out_.write(static_cast<const char*>(data),
               static_cast<std::streamsize>(n));
    crc_state_ = Crc32cExtend(crc_state_, data, n);
    written_ += n;
  }

  std::ostream& out_;
  uint32_t crc_state_ = kCrc32cInit;
  uint64_t written_ = 0;
};

class Reader {
 public:
  explicit Reader(std::istream& in) : in_(in) {
    // Snapshot how many bytes remain so corrupt vector lengths can be
    // rejected before allocation. Non-seekable streams fall back to a
    // coarse cap.
    std::streampos cur = in_.tellg();
    if (cur != std::streampos(-1)) {
      in_.seekg(0, std::ios::end);
      std::streampos end = in_.tellg();
      in_.seekg(cur);
      if (end != std::streampos(-1) && end >= cur) {
        remaining_ = static_cast<uint64_t>(end - cur);
        bounded_ = true;
      }
    }
    in_.clear();
  }

  template <typename T>
  [[nodiscard]] bool Pod(T* value) {
    static_assert(std::is_trivially_copyable_v<T>);
    return Raw(value, sizeof(T));
  }

  template <typename T>
  [[nodiscard]] bool Vec(std::vector<T>* vec) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t count = 0;
    if (!Pod(&count)) return false;
    if (bounded_) {
      if (count > remaining_ / sizeof(T)) return false;
    } else if (count > (1ull << 34) / sizeof(T)) {
      // Guard against absurd sizes from corrupt files.
      return false;
    }
    vec->resize(count);
    if (count > 0 && !Raw(vec->data(), count * sizeof(T))) return false;
    return true;
  }

  // Raw CRC-covered bytes with no length prefix (mirrors
  // Writer::Bytes).
  [[nodiscard]] bool Bytes(void* out, size_t n) { return Raw(out, n); }

  // Consumes the zero pad written by Writer::Align8; false when the
  // pad bytes are missing or nonzero (nonzero pad means the image was
  // tampered with — both open paths must agree on rejecting it).
  [[nodiscard]] bool Align8() { return SkipPad((8 - consumed_ % 8) % 8); }
  [[nodiscard]] bool AlignForFooter8() {
    return SkipPad((8 - (consumed_ + 4) % 8) % 8);
  }

  uint64_t consumed() const { return consumed_; }

  // CRC32C of everything consumed so far.
  uint32_t crc() const { return Crc32cFinish(crc_state_); }

  // Reads a trailing CRC written by Writer::WriteCrcFooter and checks
  // it against the bytes consumed up to this point.
  [[nodiscard]] bool VerifyCrcFooter() {
    uint32_t want = crc();
    uint32_t stored = 0;
    in_.read(reinterpret_cast<char*>(&stored), sizeof(stored));
    if (!in_.good() && !in_.eof()) return false;
    if (in_.gcount() != sizeof(stored)) return false;
    if (bounded_ && remaining_ >= sizeof(stored)) {
      remaining_ -= sizeof(stored);
    }
    return stored == want;
  }

 private:
  [[nodiscard]] bool Raw(void* data, size_t n) {
    in_.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
    if (static_cast<size_t>(in_.gcount()) != n) return false;
    crc_state_ = Crc32cExtend(crc_state_, data, n);
    if (bounded_) remaining_ = remaining_ >= n ? remaining_ - n : 0;
    consumed_ += n;
    return true;
  }

  [[nodiscard]] bool SkipPad(uint64_t pad) {
    uint8_t buf[8] = {0};
    if (pad == 0) return true;
    if (!Raw(buf, static_cast<size_t>(pad))) return false;
    for (uint64_t i = 0; i < pad; ++i) {
      if (buf[i] != 0) return false;
    }
    return true;
  }

  std::istream& in_;
  uint32_t crc_state_ = kCrc32cInit;
  uint64_t remaining_ = 0;
  uint64_t consumed_ = 0;
  bool bounded_ = false;
};

// Walks a serialized image already resident in memory (an mmap'd
// artifact) and hands out borrowed pointers into it instead of
// copying. Mirrors Reader exactly — same framing, same bounds checks,
// same pad verification, same CRC coverage — so the heap and mmap open
// paths reach identical verdicts on any byte sequence. Constructed
// with verify_crc=false it skips the CRC fold entirely (the
// "mmap-noverify" open mode: structural bounds checks only, O(1-ish)
// open cost), in which case VerifyCrcFooter only checks the footer's
// presence.
class MapReader {
 public:
  MapReader(const uint8_t* data, uint64_t size, bool verify_crc = true)
      : data_(data), size_(size), verify_(verify_crc) {}

  template <typename T>
  [[nodiscard]] bool Pod(T* value) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (size_ - offset_ < sizeof(T)) return false;
    std::memcpy(value, data_ + offset_, sizeof(T));
    Consume(sizeof(T));
    return true;
  }

  // Count-prefixed array, borrowed: *out points into the image (valid
  // for the mapping's lifetime), naturally aligned because the writer
  // Align8'd before it. Misalignment is treated as corruption.
  template <typename T>
  [[nodiscard]] bool View(const T** out, uint64_t* count) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (!Pod(count)) return false;
    if (*count > (size_ - offset_) / sizeof(T)) return false;
    const uint8_t* p = data_ + offset_;
    if (reinterpret_cast<uintptr_t>(p) % alignof(T) != 0) return false;
    *out = reinterpret_cast<const T*>(p);
    Consume(*count * sizeof(T));
    return true;
  }

  // Count-prefixed array, copied (hash-map payloads that are rebuilt
  // at open regardless of mode).
  template <typename T>
  [[nodiscard]] bool Vec(std::vector<T>* vec) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t count = 0;
    if (!Pod(&count)) return false;
    if (count > (size_ - offset_) / sizeof(T)) return false;
    vec->resize(count);
    if (count > 0) {
      std::memcpy(vec->data(), data_ + offset_, count * sizeof(T));
      Consume(count * sizeof(T));
    }
    return true;
  }

  [[nodiscard]] bool Bytes(void* out, uint64_t n) {
    if (size_ - offset_ < n) return false;
    std::memcpy(out, data_ + offset_, n);
    Consume(n);
    return true;
  }

  [[nodiscard]] bool Align8() { return SkipPad((8 - offset_ % 8) % 8); }
  [[nodiscard]] bool AlignForFooter8() {
    return SkipPad((8 - (offset_ + 4) % 8) % 8);
  }

  [[nodiscard]] bool VerifyCrcFooter() {
    if (size_ - offset_ < sizeof(uint32_t)) return false;
    uint32_t want = Crc32cFinish(crc_state_);
    uint32_t stored = 0;
    std::memcpy(&stored, data_ + offset_, sizeof(stored));
    offset_ += sizeof(stored);  // footer is outside the CRC, like Reader
    return verify_ ? stored == want : true;
  }

  uint64_t offset() const { return offset_; }
  uint64_t remaining() const { return size_ - offset_; }

 private:
  void Consume(uint64_t n) {
    if (verify_) crc_state_ = Crc32cExtend(crc_state_, data_ + offset_, n);
    offset_ += n;
  }

  [[nodiscard]] bool SkipPad(uint64_t pad) {
    if (pad == 0) return true;
    if (size_ - offset_ < pad) return false;
    for (uint64_t i = 0; i < pad; ++i) {
      if (data_[offset_ + i] != 0) return false;
    }
    Consume(pad);
    return true;
  }

  const uint8_t* data_;
  uint64_t size_;
  uint64_t offset_ = 0;
  bool verify_;
  uint32_t crc_state_ = kCrc32cInit;
};

}  // namespace spine::serde

#endif  // SPINE_COMMON_SERDE_H_
