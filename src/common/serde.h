// Minimal POD/vector stream serialization shared by the index
// serializers (compact/serializer.cc, storage/*.cc metadata sidecars).
//
// Robustness properties (PR 2):
//   - Writer and Reader both accumulate a running CRC32C over every
//     byte written/consumed; WriteCrcFooter / VerifyCrcFooter turn it
//     into a whole-image integrity check that catches any single-bit
//     corruption the structural checks miss.
//   - Reader::Vec bounds every element count against the bytes
//     actually remaining in the stream, so a corrupted length field
//     fails cleanly instead of attempting a multi-GiB allocation.

#ifndef SPINE_COMMON_SERDE_H_
#define SPINE_COMMON_SERDE_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <vector>

#include "common/crc32c.h"

namespace spine::serde {

class Writer {
 public:
  explicit Writer(std::ostream& out) : out_(out) {}

  template <typename T>
  void Pod(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    Raw(&value, sizeof(T));
  }

  template <typename T>
  void Vec(const std::vector<T>& vec) {
    static_assert(std::is_trivially_copyable_v<T>);
    Pod<uint64_t>(vec.size());
    if (!vec.empty()) Raw(vec.data(), vec.size() * sizeof(T));
  }

  // CRC32C of everything written so far.
  uint32_t crc() const { return Crc32cFinish(crc_state_); }

  // Appends the running CRC as a trailer. The footer itself is not
  // folded into the CRC; pair with Reader::VerifyCrcFooter.
  void WriteCrcFooter() {
    uint32_t footer = crc();
    out_.write(reinterpret_cast<const char*>(&footer), sizeof(footer));
  }

 private:
  void Raw(const void* data, size_t n) {
    out_.write(static_cast<const char*>(data),
               static_cast<std::streamsize>(n));
    crc_state_ = Crc32cExtend(crc_state_, data, n);
  }

  std::ostream& out_;
  uint32_t crc_state_ = kCrc32cInit;
};

class Reader {
 public:
  explicit Reader(std::istream& in) : in_(in) {
    // Snapshot how many bytes remain so corrupt vector lengths can be
    // rejected before allocation. Non-seekable streams fall back to a
    // coarse cap.
    std::streampos cur = in_.tellg();
    if (cur != std::streampos(-1)) {
      in_.seekg(0, std::ios::end);
      std::streampos end = in_.tellg();
      in_.seekg(cur);
      if (end != std::streampos(-1) && end >= cur) {
        remaining_ = static_cast<uint64_t>(end - cur);
        bounded_ = true;
      }
    }
    in_.clear();
  }

  template <typename T>
  [[nodiscard]] bool Pod(T* value) {
    static_assert(std::is_trivially_copyable_v<T>);
    return Raw(value, sizeof(T));
  }

  template <typename T>
  [[nodiscard]] bool Vec(std::vector<T>* vec) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t count = 0;
    if (!Pod(&count)) return false;
    if (bounded_) {
      if (count > remaining_ / sizeof(T)) return false;
    } else if (count > (1ull << 34) / sizeof(T)) {
      // Guard against absurd sizes from corrupt files.
      return false;
    }
    vec->resize(count);
    if (count > 0 && !Raw(vec->data(), count * sizeof(T))) return false;
    return true;
  }

  // CRC32C of everything consumed so far.
  uint32_t crc() const { return Crc32cFinish(crc_state_); }

  // Reads a trailing CRC written by Writer::WriteCrcFooter and checks
  // it against the bytes consumed up to this point.
  [[nodiscard]] bool VerifyCrcFooter() {
    uint32_t want = crc();
    uint32_t stored = 0;
    in_.read(reinterpret_cast<char*>(&stored), sizeof(stored));
    if (!in_.good() && !in_.eof()) return false;
    if (in_.gcount() != sizeof(stored)) return false;
    if (bounded_ && remaining_ >= sizeof(stored)) {
      remaining_ -= sizeof(stored);
    }
    return stored == want;
  }

 private:
  [[nodiscard]] bool Raw(void* data, size_t n) {
    in_.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
    if (static_cast<size_t>(in_.gcount()) != n) return false;
    crc_state_ = Crc32cExtend(crc_state_, data, n);
    if (bounded_) remaining_ = remaining_ >= n ? remaining_ - n : 0;
    return true;
  }

  std::istream& in_;
  uint32_t crc_state_ = kCrc32cInit;
  uint64_t remaining_ = 0;
  bool bounded_ = false;
};

}  // namespace spine::serde

#endif  // SPINE_COMMON_SERDE_H_
