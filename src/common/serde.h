// Minimal POD/vector stream serialization shared by the index
// serializers (compact/serializer.cc, storage/disk_spine.cc metadata).

#ifndef SPINE_COMMON_SERDE_H_
#define SPINE_COMMON_SERDE_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <vector>

namespace spine::serde {

class Writer {
 public:
  explicit Writer(std::ostream& out) : out_(out) {}

  template <typename T>
  void Pod(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    out_.write(reinterpret_cast<const char*>(&value), sizeof(T));
  }

  template <typename T>
  void Vec(const std::vector<T>& vec) {
    static_assert(std::is_trivially_copyable_v<T>);
    Pod<uint64_t>(vec.size());
    if (!vec.empty()) {
      out_.write(reinterpret_cast<const char*>(vec.data()),
                 static_cast<std::streamsize>(vec.size() * sizeof(T)));
    }
  }

 private:
  std::ostream& out_;
};

class Reader {
 public:
  explicit Reader(std::istream& in) : in_(in) {}

  template <typename T>
  [[nodiscard]] bool Pod(T* value) {
    static_assert(std::is_trivially_copyable_v<T>);
    in_.read(reinterpret_cast<char*>(value), sizeof(T));
    return in_.good();
  }

  template <typename T>
  [[nodiscard]] bool Vec(std::vector<T>* vec) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t count = 0;
    if (!Pod(&count)) return false;
    // Guard against absurd sizes from corrupt files.
    if (count > (1ull << 34) / sizeof(T)) return false;
    vec->resize(count);
    if (count > 0) {
      in_.read(reinterpret_cast<char*>(vec->data()),
               static_cast<std::streamsize>(count * sizeof(T)));
    }
    return in_.good() || count == 0;
  }

 private:
  std::istream& in_;
};

}  // namespace spine::serde

#endif  // SPINE_COMMON_SERDE_H_
