// Deterministic, seedable random number generator (splitmix64 core).
// Used by the synthetic sequence generators and the property tests so
// that every run is reproducible from its seed.

#ifndef SPINE_COMMON_RNG_H_
#define SPINE_COMMON_RNG_H_

#include <cstdint>

namespace spine {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  // Next 64 uniformly random bits.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  // Uniform integer in [0, bound). bound must be > 0.
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  // Uniform integer in [lo, hi].
  uint64_t Between(uint64_t lo, uint64_t hi) {
    return lo + Below(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // True with probability p.
  bool Chance(double p) { return NextDouble() < p; }

 private:
  uint64_t state_;
};

}  // namespace spine

#endif  // SPINE_COMMON_RNG_H_
