// Named dataset presets standing in for the paper's evaluation strings.
//
// The paper's datasets (Section 5):
//   ECO   E.coli genome,            3.5 M characters (DNA)
//   CEL   C.elegans genome,        15.5 M characters (DNA)
//   HC21  Human chromosome 21,     28.5 M characters (DNA)
//   HC19  Human chromosome 19,     57.5 M characters (DNA)
//   ECO-R E.coli residues,          1.5 M characters (protein)
//   YST-R Yeast residues,           3.1 M characters (protein)
//   DRO-R Drosophila residues,      7.5 M characters (protein)
//
// We generate synthetic sequences of the same *relative* lengths with a
// repeat-rich model (see generator.h). The `scale` parameter shrinks all
// lengths uniformly so benchmarks finish quickly; the environment
// variable SPINE_BENCH_SCALE overrides the default of 0.1 (i.e. a tenth
// of the paper's sizes).

#ifndef SPINE_SEQ_DATASETS_H_
#define SPINE_SEQ_DATASETS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "alphabet/alphabet.h"

namespace spine::seq {

struct DatasetSpec {
  std::string name;        // paper's label, e.g. "ECO"
  uint64_t paper_length;   // characters in the paper's dataset
  bool is_protein;
  uint64_t seed;           // generation seed (deterministic per dataset)
};

// The seven datasets of the paper, in paper order (DNA first).
const std::vector<DatasetSpec>& AllDatasets();

// Spec lookup by paper label; aborts on unknown name.
const DatasetSpec& DatasetByName(const std::string& name);

// Generates the synthetic stand-in for `spec`, scaled by `scale`.
std::string MakeDataset(const DatasetSpec& spec, double scale);

// Reads SPINE_BENCH_SCALE (a double); returns `fallback` if unset/invalid.
double BenchScaleFromEnv(double fallback = 0.1);

// Alphabet appropriate for a dataset.
Alphabet DatasetAlphabet(const DatasetSpec& spec);

}  // namespace spine::seq

#endif  // SPINE_SEQ_DATASETS_H_
