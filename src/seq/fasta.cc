#include "seq/fasta.h"

#include <cctype>
#include <fstream>
#include <sstream>

namespace spine::seq {

Result<std::vector<FastaRecord>> ParseFasta(const std::string& text) {
  std::vector<FastaRecord> records;
  std::istringstream in(text);
  std::string line;
  FastaRecord* current = nullptr;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line[0] == '>') {
      records.emplace_back();
      current = &records.back();
      size_t space = line.find_first_of(" \t");
      if (space == std::string::npos) {
        current->id = line.substr(1);
      } else {
        current->id = line.substr(1, space - 1);
        size_t rest = line.find_first_not_of(" \t", space);
        if (rest != std::string::npos) current->comment = line.substr(rest);
      }
    } else if (line[0] == ';') {
      continue;  // old-style comment line
    } else {
      if (current == nullptr) {
        return Status::Corruption("sequence data before any '>' header at line " +
                                  std::to_string(line_no));
      }
      for (char c : line) {
        if (!std::isspace(static_cast<unsigned char>(c))) {
          current->sequence.push_back(c);
        }
      }
    }
  }
  return records;
}

Result<std::vector<FastaRecord>> ReadFasta(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IoError("read failure on " + path);
  return ParseFasta(buffer.str());
}

Status WriteFasta(const std::string& path,
                  const std::vector<FastaRecord>& records, size_t line_width) {
  if (line_width == 0) {
    return Status::InvalidArgument("line_width must be positive");
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  for (const FastaRecord& rec : records) {
    out << '>' << rec.id;
    if (!rec.comment.empty()) out << ' ' << rec.comment;
    out << '\n';
    for (size_t i = 0; i < rec.sequence.size(); i += line_width) {
      out << rec.sequence.substr(i, line_width) << '\n';
    }
  }
  out.flush();
  if (!out) return Status::IoError("write failure on " + path);
  return Status::OK();
}

}  // namespace spine::seq
