#include "seq/fasta.h"

#include <cctype>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string_view>

namespace spine::seq {

namespace {

// Splits `text` into lines on '\n', "\r\n" or bare '\r' (classic-Mac
// exports); std::getline-based parsing silently glues a CR-only file
// into one line.
std::vector<std::string_view> SplitLines(std::string_view text) {
  std::vector<std::string_view> lines;
  size_t start = 0;
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c == '\n' || c == '\r') {
      lines.push_back(text.substr(start, i - start));
      if (c == '\r' && i + 1 < text.size() && text[i + 1] == '\n') ++i;
      start = i + 1;
    }
  }
  if (start < text.size()) lines.push_back(text.substr(start));
  return lines;
}

}  // namespace

Result<std::vector<FastaRecord>> ParseFasta(const std::string& text) {
  std::vector<FastaRecord> records;
  FastaRecord* current = nullptr;
  size_t line_no = 0;
  for (std::string_view line : SplitLines(text)) {
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '>') {
      records.emplace_back();
      current = &records.back();
      size_t space = line.find_first_of(" \t");
      if (space == std::string::npos) {
        current->id = std::string(line.substr(1));
      } else {
        current->id = std::string(line.substr(1, space - 1));
        size_t rest = line.find_first_not_of(" \t", space);
        if (rest != std::string::npos) {
          current->comment = std::string(line.substr(rest));
        }
      }
      if (current->id.empty()) {
        return Status::Corruption("empty record id in '>' header at line " +
                                  std::to_string(line_no));
      }
    } else if (line[0] == ';') {
      continue;  // old-style comment line
    } else {
      if (current == nullptr) {
        return Status::Corruption(
            "sequence data before any '>' header at line " +
            std::to_string(line_no));
      }
      for (char c : line) {
        if (std::isspace(static_cast<unsigned char>(c))) continue;
        // Residue lines must be printable; control bytes and NULs mean
        // a truncated download or a binary file fed in by mistake.
        if (!std::isprint(static_cast<unsigned char>(c))) {
          const char* hex = "0123456789abcdef";
          unsigned char b = static_cast<unsigned char>(c);
          return Status::Corruption(
              std::string("non-printable byte 0x") + hex[b >> 4] +
              hex[b & 0xf] + " in sequence data at line " +
              std::to_string(line_no));
        }
        current->sequence.push_back(c);
      }
    }
  }
  return records;
}

Result<std::vector<FastaRecord>> ReadFasta(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IoError("read failure on " + path);
  return ParseFasta(buffer.str());
}

Status WriteFasta(const std::string& path,
                  const std::vector<FastaRecord>& records, size_t line_width) {
  if (line_width == 0) {
    return Status::InvalidArgument("line_width must be positive");
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open " + path +
                           " for writing: " + std::strerror(errno));
  }
  for (const FastaRecord& rec : records) {
    out << '>' << rec.id;
    if (!rec.comment.empty()) out << ' ' << rec.comment;
    out << '\n';
    for (size_t i = 0; i < rec.sequence.size(); i += line_width) {
      out << rec.sequence.substr(i, line_width) << '\n';
    }
  }
  out.flush();
  if (!out) return Status::IoError("write failure on " + path);
  return Status::OK();
}

}  // namespace spine::seq
