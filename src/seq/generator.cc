#include "seq/generator.h"

#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace spine::seq {

namespace {

// Geometric-ish length with the given mean, at least 1.
uint64_t GeometricLength(Rng& rng, double mean) {
  if (mean <= 1.0) return 1;
  double u = rng.NextDouble();
  // Inverse CDF of the geometric distribution with success prob 1/mean.
  double len = std::log1p(-u) / std::log1p(-1.0 / mean);
  if (len < 1.0) return 1;
  return static_cast<uint64_t>(len);
}

// Builds a random row-stochastic transition matrix biased toward a few
// preferred successors per character, so the background text itself has
// short repeated motifs like real genomes do.
std::vector<std::vector<double>> MakeTransitions(Rng& rng, uint32_t sigma) {
  std::vector<std::vector<double>> rows(sigma, std::vector<double>(sigma));
  for (uint32_t a = 0; a < sigma; ++a) {
    double total = 0;
    for (uint32_t b = 0; b < sigma; ++b) {
      double w = 0.2 + rng.NextDouble();
      if (rng.Chance(2.0 / sigma)) w += 2.0;  // preferred successor
      rows[a][b] = w;
      total += w;
    }
    for (uint32_t b = 0; b < sigma; ++b) rows[a][b] /= total;
  }
  return rows;
}

Code SampleRow(Rng& rng, const std::vector<double>& row) {
  double u = rng.NextDouble();
  double acc = 0;
  for (uint32_t b = 0; b < row.size(); ++b) {
    acc += row[b];
    if (u < acc) return static_cast<Code>(b);
  }
  return static_cast<Code>(row.size() - 1);
}

}  // namespace

std::string GenerateSequence(const Alphabet& alphabet,
                             const GeneratorOptions& options) {
  SPINE_CHECK(alphabet.size() >= 2);
  Rng rng(options.seed);
  const uint32_t sigma = alphabet.size();
  auto transitions = MakeTransitions(rng, sigma);

  std::string out;
  out.reserve(options.length);
  Code prev = static_cast<Code>(rng.Below(sigma));
  out.push_back(alphabet.Decode(prev));

  while (out.size() < options.length) {
    bool do_repeat =
        out.size() > 64 && rng.Chance(options.repeat_fraction / 100.0);
    // repeat_fraction is interpreted per *event*: an event emits ~100
    // background chars or one repeat segment of mean_repeat_len; dividing
    // by 100 above makes the emitted-character fractions roughly match
    // when mean_repeat_len ~ 100 * repeat_fraction/(1-repeat_fraction).
    if (do_repeat) {
      uint64_t len = GeometricLength(rng, options.mean_repeat_len);
      if (len > out.size()) len = out.size();
      uint64_t start = rng.Below(out.size() - len + 1);
      for (uint64_t i = 0; i < len && out.size() < options.length; ++i) {
        char c = out[start + i];
        if (rng.Chance(options.mutation_rate)) {
          c = alphabet.Decode(static_cast<Code>(rng.Below(sigma)));
        }
        out.push_back(c);
      }
      prev = alphabet.Encode(out.back());
    } else {
      prev = SampleRow(rng, transitions[prev]);
      out.push_back(alphabet.Decode(prev));
    }
  }
  return out;
}

std::string MutateCopy(const Alphabet& alphabet, const std::string& source,
                       const MutateOptions& options) {
  Rng rng(options.seed);
  const uint32_t sigma = alphabet.size();
  std::string out;
  out.reserve(source.size());
  for (size_t i = 0; i < source.size(); ++i) {
    if (rng.Chance(options.indel_rate)) {
      uint64_t len = GeometricLength(rng, options.mean_indel_len);
      if (rng.Chance(0.5)) {
        // Deletion: skip ahead.
        i += len;
        if (i >= source.size()) break;
      } else {
        // Insertion: random characters.
        for (uint64_t k = 0; k < len; ++k) {
          out.push_back(alphabet.Decode(static_cast<Code>(rng.Below(sigma))));
        }
      }
    }
    char c = source[i];
    if (rng.Chance(options.substitution_rate)) {
      c = alphabet.Decode(static_cast<Code>(rng.Below(sigma)));
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace spine::seq
