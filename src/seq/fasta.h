// Minimal FASTA reader/writer for loading real genome/proteome files when
// the user has them, and for persisting synthetic datasets.

#ifndef SPINE_SEQ_FASTA_H_
#define SPINE_SEQ_FASTA_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace spine::seq {

struct FastaRecord {
  std::string id;        // text after '>' up to first whitespace
  std::string comment;   // remainder of the header line
  std::string sequence;  // concatenated sequence lines, whitespace stripped
};

// Parses all records from a FASTA file.
Result<std::vector<FastaRecord>> ReadFasta(const std::string& path);

// Parses FASTA records from an in-memory buffer.
Result<std::vector<FastaRecord>> ParseFasta(const std::string& text);

// Writes records with the given line width for sequence data.
Status WriteFasta(const std::string& path,
                  const std::vector<FastaRecord>& records,
                  size_t line_width = 70);

}  // namespace spine::seq

#endif  // SPINE_SEQ_FASTA_H_
