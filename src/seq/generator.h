// Synthetic sequence generator.
//
// The paper evaluates on real genomes (E.coli, C.elegans, human
// chromosomes 19/21) and proteomes, which are not shipped with this
// repository. The behaviours SPINE's evaluation measures — bounded
// numeric labels (Table 3), sparse rib distribution (Table 4), skewed
// link destinations (Fig. 8), nodes-checked ratios (Table 6) — are all
// consequences of genomic *repeat structure*: long strings where later
// regions largely repeat earlier patterns. This generator reproduces
// that structure:
//
//   - a background order-1 Markov chain over the alphabet (local
//     composition bias, like GC content), plus
//   - segmental duplications: with probability `repeat_fraction`, the
//     generator copies a random earlier segment (geometric length around
//     `mean_repeat_len`) and replays it with per-character
//     `mutation_rate` point mutations.
//
// Pairs of related sequences (for the alignment experiments of Tables
// 5-7) are produced by MutateCopy: a divergent copy of a source sequence
// with point mutations and indels, mimicking two strains of an organism.

#ifndef SPINE_SEQ_GENERATOR_H_
#define SPINE_SEQ_GENERATOR_H_

#include <cstdint>
#include <string>

#include "alphabet/alphabet.h"

namespace spine::seq {

struct GeneratorOptions {
  uint64_t length = 1 << 20;
  uint64_t seed = 1;
  // Fraction of emitted characters that come from replayed repeats.
  double repeat_fraction = 0.5;
  // Mean length of a replayed segment (geometric distribution).
  double mean_repeat_len = 2000;
  // Per-character substitution probability while replaying a repeat.
  double mutation_rate = 0.01;
};

// Generates a repeat-rich random sequence over `alphabet`.
std::string GenerateSequence(const Alphabet& alphabet,
                             const GeneratorOptions& options);

struct MutateOptions {
  uint64_t seed = 7;
  double substitution_rate = 0.05;
  double indel_rate = 0.002;
  // Mean length of an insertion or deletion event (geometric).
  double mean_indel_len = 20;
};

// Produces a divergent copy of `source`: the same string with random
// substitutions and short insertions/deletions. Used to build query
// sequences that share long exact substrings with the data sequence.
std::string MutateCopy(const Alphabet& alphabet, const std::string& source,
                       const MutateOptions& options);

}  // namespace spine::seq

#endif  // SPINE_SEQ_GENERATOR_H_
