#include "seq/datasets.h"

#include <cstdlib>

#include "common/check.h"
#include "seq/generator.h"

namespace spine::seq {

const std::vector<DatasetSpec>& AllDatasets() {
  static const std::vector<DatasetSpec>* kDatasets =
      new std::vector<DatasetSpec>{
          {"ECO", 3'500'000, false, 101},
          {"CEL", 15'500'000, false, 102},
          {"HC21", 28'500'000, false, 103},
          {"HC19", 57'500'000, false, 104},
          {"ECO-R", 1'500'000, true, 201},
          {"YST-R", 3'100'000, true, 202},
          {"DRO-R", 7'500'000, true, 203},
      };
  return *kDatasets;
}

const DatasetSpec& DatasetByName(const std::string& name) {
  for (const DatasetSpec& spec : AllDatasets()) {
    if (spec.name == name) return spec;
  }
  SPINE_CHECK_MSG(false, ("unknown dataset " + name).c_str());
  __builtin_unreachable();
}

std::string MakeDataset(const DatasetSpec& spec, double scale) {
  SPINE_CHECK(scale > 0);
  GeneratorOptions options;
  options.length = static_cast<uint64_t>(spec.paper_length * scale);
  if (options.length < 1000) options.length = 1000;
  options.seed = spec.seed;
  // Calibrated against the paper's Table 4: ~25-33% of nodes carry
  // forward edges with a 15/8/6/4-style fan-out decay, and numeric
  // labels reach the hundreds/thousands (Table 3). Human chromosomes
  // are somewhat more repetitive than bacterial genomes.
  options.repeat_fraction = spec.paper_length > 20'000'000 ? 0.08 : 0.05;
  options.mean_repeat_len = spec.is_protein ? 150 : 500;
  options.mutation_rate = 0.01;
  Alphabet alphabet = DatasetAlphabet(spec);
  return GenerateSequence(alphabet, options);
}

double BenchScaleFromEnv(double fallback) {
  const char* env = std::getenv("SPINE_BENCH_SCALE");
  if (env == nullptr) return fallback;
  char* end = nullptr;
  double value = std::strtod(env, &end);
  if (end == env || value <= 0) return fallback;
  return value;
}

Alphabet DatasetAlphabet(const DatasetSpec& spec) {
  return spec.is_protein ? Alphabet::Protein() : Alphabet::Dna();
}

}  // namespace spine::seq
