#include "storage/page_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace spine::storage {

Result<PageFile> PageFile::Create(const std::string& path, SyncMode mode) {
  int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_RDWR, 0644);
  if (fd < 0) {
    return Status::IoError("open(" + path + "): " + std::strerror(errno));
  }
  return PageFile(fd, mode);
}

Result<PageFile> PageFile::Open(const std::string& path, SyncMode mode) {
  int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    return Status::IoError("open(" + path + "): " + std::strerror(errno));
  }
  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    ::close(fd);
    return Status::IoError("lseek(" + path + "): " + std::strerror(errno));
  }
  PageFile file(fd, mode);
  file.page_count_ = (static_cast<uint64_t>(size) + kPageSize - 1) / kPageSize;
  return file;
}

PageFile::~PageFile() {
  if (fd_ >= 0) ::close(fd_);
}

PageFile::PageFile(PageFile&& other) noexcept
    : fd_(other.fd_),
      mode_(other.mode_),
      page_count_(other.page_count_),
      pages_written_(other.pages_written_),
      pages_read_(other.pages_read_) {
  other.fd_ = -1;
}

PageFile& PageFile::operator=(PageFile&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    mode_ = other.mode_;
    page_count_ = other.page_count_;
    pages_written_ = other.pages_written_;
    pages_read_ = other.pages_read_;
    other.fd_ = -1;
  }
  return *this;
}

Status PageFile::ReadPage(uint64_t page_id, uint8_t* out) {
  ++pages_read_;
  if (page_id >= page_count_) {
    // Never-written page: defined as zeros.
    std::memset(out, 0, kPageSize);
    return Status::OK();
  }
  ssize_t got = ::pread(fd_, out, kPageSize,
                        static_cast<off_t>(page_id * kPageSize));
  if (got < 0) {
    return Status::IoError(std::string("pread: ") + std::strerror(errno));
  }
  if (got < static_cast<ssize_t>(kPageSize)) {
    std::memset(out + got, 0, kPageSize - static_cast<size_t>(got));
  }
  return Status::OK();
}

Status PageFile::WritePage(uint64_t page_id, const uint8_t* data) {
  ssize_t put = ::pwrite(fd_, data, kPageSize,
                         static_cast<off_t>(page_id * kPageSize));
  if (put != static_cast<ssize_t>(kPageSize)) {
    return Status::IoError(std::string("pwrite: ") + std::strerror(errno));
  }
  ++pages_written_;
  if (page_id >= page_count_) page_count_ = page_id + 1;
  if (mode_ == SyncMode::kSyncEveryWrite) {
    if (::fdatasync(fd_) != 0) {
      return Status::IoError(std::string("fdatasync: ") +
                             std::strerror(errno));
    }
  }
  return Status::OK();
}

Status PageFile::Sync() {
  if (::fdatasync(fd_) != 0) {
    return Status::IoError(std::string("fdatasync: ") + std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace spine::storage
