#include "storage/page_file.h"

#include <cstddef>
#include <cstring>
#include <vector>

#include "common/crc32c.h"
#include "obs/metrics.h"

namespace spine::storage {

namespace {

constexpr uint32_t kSuperblockMagic = 0x53504746;  // "SPGF"
constexpr uint32_t kSuperblockVersion = 1;

// Fixed-layout superblock occupying physical page 0. The CRC covers
// the fields before it; the rest of the page is zero padding.
struct Superblock {
  uint32_t magic;
  uint32_t version;
  uint32_t page_size;
  uint32_t flags;
  uint64_t logical_pages;
  uint32_t crc;
};

uint32_t SuperblockCrc(const Superblock& sb) {
  return Crc32c(&sb, offsetof(Superblock, crc));
}

bool IsAllZero(const uint8_t* data, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (data[i] != 0) return false;
  }
  return true;
}

uint64_t PhysicalOffset(uint64_t page_id) { return (page_id + 1) * kPageSize; }

}  // namespace

Status VerifyPageChecksum(uint64_t page_id, const uint8_t* page) {
  // A never-written page reads back as zeros; that is a valid empty page.
  if (IsAllZero(page, kPageSize)) return Status::OK();
  uint32_t stored_crc;
  uint32_t stored_id;
  std::memcpy(&stored_crc, page, sizeof(stored_crc));
  std::memcpy(&stored_id, page + sizeof(stored_crc), sizeof(stored_id));
  if (stored_id != static_cast<uint32_t>(page_id)) {
    return Status::Corruption("page " + std::to_string(page_id) +
                              ": header names page " +
                              std::to_string(stored_id) +
                              " (misdirected read or write)");
  }
  uint32_t want =
      Crc32c(page + sizeof(stored_crc), kPageSize - sizeof(stored_crc));
  if (stored_crc != want) {
    return Status::Corruption("page " + std::to_string(page_id) +
                              ": checksum mismatch");
  }
  return Status::OK();
}

void SealPageChecksum(uint64_t page_id, uint8_t* page) {
  uint32_t id_lo = static_cast<uint32_t>(page_id);
  std::memcpy(page + sizeof(uint32_t), &id_lo, sizeof(id_lo));
  uint32_t crc = Crc32c(page + sizeof(uint32_t), kPageSize - sizeof(uint32_t));
  std::memcpy(page, &crc, sizeof(crc));
}

Result<PageFile> PageFile::Create(const std::string& path, SyncMode mode,
                                  IoBackend* backend) {
  if (backend == nullptr) backend = PosixIoBackend();
  auto handle = backend->Open(path, /*create=*/true);
  if (!handle.ok()) return handle.status();
  PageFile file(backend, *handle, mode);
  Status status = file.WriteSuperblock();
  if (!status.ok()) return status;
  return file;
}

Result<PageFile> PageFile::Open(const std::string& path, SyncMode mode,
                                IoBackend* backend) {
  if (backend == nullptr) backend = PosixIoBackend();
  auto handle = backend->Open(path, /*create=*/false);
  if (!handle.ok()) return handle.status();
  PageFile file(backend, *handle, mode);

  auto size = backend->Size(*handle);
  if (!size.ok()) return size.status();
  if (*size < kPageSize) {
    return Status::Corruption(path + ": missing superblock (file is " +
                              std::to_string(*size) + " bytes)");
  }

  std::vector<uint8_t> raw(kPageSize);
  size_t got = 0;
  Status status = backend->Read(*handle, 0, raw.data(), kPageSize, &got);
  if (!status.ok()) return status;
  if (got != kPageSize) {
    return Status::Corruption(path + ": short superblock read");
  }
  Superblock sb;
  std::memcpy(&sb, raw.data(), sizeof(sb));
  if (sb.magic != kSuperblockMagic) {
    return Status::Corruption(path + ": bad superblock magic");
  }
  if (sb.version != kSuperblockVersion) {
    return Status::Corruption(path + ": unsupported superblock version " +
                              std::to_string(sb.version));
  }
  if (sb.page_size != kPageSize) {
    return Status::Corruption(
        path + ": page size " + std::to_string(sb.page_size) +
        " does not match build (" + std::to_string(kPageSize) + ")");
  }
  if (sb.crc != SuperblockCrc(sb)) {
    return Status::Corruption(path + ": superblock checksum mismatch");
  }
  uint64_t data_pages = *size / kPageSize - 1;
  if (sb.logical_pages > data_pages) {
    return Status::Corruption(path + ": superblock claims " +
                              std::to_string(sb.logical_pages) +
                              " pages but file holds " +
                              std::to_string(data_pages));
  }
  file.page_count_ = sb.logical_pages;
  return file;
}

PageFile::~PageFile() {
  if (handle_ >= 0 && backend_ != nullptr) backend_->Close(handle_);
}

PageFile::PageFile(PageFile&& other) noexcept
    : backend_(other.backend_),
      handle_(other.handle_),
      mode_(other.mode_),
      page_count_(other.page_count_),
      pages_written_(other.pages_written_),
      pages_read_(other.pages_read_) {
  other.handle_ = -1;
}

PageFile& PageFile::operator=(PageFile&& other) noexcept {
  if (this != &other) {
    if (handle_ >= 0 && backend_ != nullptr) backend_->Close(handle_);
    backend_ = other.backend_;
    handle_ = other.handle_;
    mode_ = other.mode_;
    page_count_ = other.page_count_;
    pages_written_ = other.pages_written_;
    pages_read_ = other.pages_read_;
    other.handle_ = -1;
  }
  return *this;
}

Status PageFile::WriteSuperblock() {
  Superblock sb{};
  sb.magic = kSuperblockMagic;
  sb.version = kSuperblockVersion;
  sb.page_size = kPageSize;
  sb.flags = 0;
  sb.logical_pages = page_count_;
  sb.crc = SuperblockCrc(sb);
  std::vector<uint8_t> raw(kPageSize, 0);
  std::memcpy(raw.data(), &sb, sizeof(sb));
  return backend_->Write(handle_, 0, raw.data(), kPageSize);
}

Status PageFile::ReadPage(uint64_t page_id, uint8_t* out) {
  ++pages_read_;
  SPINE_OBS_COUNT("storage.file.pages_read", 1);
  if (page_id >= page_count_) {
    // Never-written page: defined as zeros. No backend round trip.
    std::memset(out, 0, kPageSize);
    return Status::OK();
  }
  SPINE_OBS_COUNT("storage.file.read_bytes", kPageSize);
  SPINE_OBS_SCOPED_TIMER_US("storage.file.read_us");
  size_t got = 0;
  Status status =
      backend_->Read(handle_, PhysicalOffset(page_id), out, kPageSize, &got);
  if (!status.ok()) return status;
  // Pages past the end of file also read back as zeros.
  if (got < kPageSize) std::memset(out + got, 0, kPageSize - got);
  return Status::OK();
}

Status PageFile::WritePage(uint64_t page_id, const uint8_t* data) {
  ++pages_written_;
  SPINE_OBS_COUNT("storage.file.pages_written", 1);
  SPINE_OBS_COUNT("storage.file.write_bytes", kPageSize);
  SPINE_OBS_SCOPED_TIMER_US("storage.file.write_us");
  Status status =
      backend_->Write(handle_, PhysicalOffset(page_id), data, kPageSize);
  if (!status.ok()) return status;
  if (page_id >= page_count_) page_count_ = page_id + 1;
  if (mode_ == SyncMode::kSyncEveryWrite) {
    return backend_->Sync(handle_);
  }
  return Status::OK();
}

Status PageFile::Sync() {
  SPINE_OBS_COUNT("storage.file.syncs", 1);
  SPINE_OBS_SCOPED_TIMER_US("storage.file.sync_us");
  Status status = WriteSuperblock();
  if (!status.ok()) return status;
  return backend_->Sync(handle_);
}

}  // namespace spine::storage
