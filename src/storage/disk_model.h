// Deterministic disk cost model.
//
// The paper's disk experiments ran on a 40 GB IDE disk with synchronous
// writes; absolute times are machine artifacts ("the absolute times are
// large due to our synchronous disk write artifact"). What transfers
// across machines is the page-miss count and the locality behaviour, so
// the benches report both raw I/O statistics and a modeled time under a
// fixed early-2000s IDE cost model.

#ifndef SPINE_STORAGE_DISK_MODEL_H_
#define SPINE_STORAGE_DISK_MODEL_H_

#include "storage/buffer_pool.h"

namespace spine::storage {

struct DiskCostModel {
  // Average positioning (seek + rotational) cost per random page I/O.
  double seek_ms = 8.0;
  // Sequential transfer rate.
  double transfer_mb_per_s = 30.0;

  double PageIoMs() const {
    double transfer_ms =
        kPageSize / (transfer_mb_per_s * 1024.0 * 1024.0) * 1000.0;
    return seek_ms + transfer_ms;
  }

  // Modeled seconds for a run: every miss costs a page read, every
  // dirty writeback a page write (the O_SYNC regime of the paper).
  double ModeledSeconds(const IoStats& stats) const {
    return (static_cast<double>(stats.misses) +
            static_cast<double>(stats.dirty_writebacks)) *
           PageIoMs() / 1000.0;
  }
};

}  // namespace spine::storage

#endif  // SPINE_STORAGE_DISK_MODEL_H_
