// MmapRegion: a read-only memory mapping of an artifact file, plus the
// MmapIoBackend that serves the IoBackend seam straight from a mapping.
//
// This is the zero-copy open path: instead of reading an image into
// heap memory, the file is mapped once and the deserializers point
// their tables into the mapping (compact/serializer.h
// LoadCompactSpineFromMemory), so open time and private resident cost
// stop scaling with artifact size and many processes share one page
// cache (the radb string_store / realm-core approach).
//
// SIGBUS policy: a mapped file that shrinks underneath the mapping
// turns page access into SIGBUS. We cannot intercept that portably, so
// every entry point that touches mapped bytes goes through the *length
// fence* first: CheckFence() fstats the still-open descriptor and
// fails with kIoError when the file no longer covers the mapped
// length. The fence is checked on every MmapIoBackend::Read and at
// query admission for borrowed indexes (core/adapters.h,
// shard::ShardedIndex), so a shrunk artifact surfaces as a clean
// per-query error. A truncation racing a query that already passed
// the fence is outside the contract (docs/STORAGE.md) — the same
// stance the production mmap stores take.
//
// Thread safety: MmapRegion is immutable after Map(); concurrent
// CheckFence()/ReadAt() calls are safe. The backend's handle table is
// mutex-guarded.

#ifndef SPINE_STORAGE_MMAP_REGION_H_
#define SPINE_STORAGE_MMAP_REGION_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "storage/io_backend.h"

namespace spine::storage {

struct MmapOptions {
  // madvise hint for the whole mapping. Index opens default to kRandom:
  // SPINE walks jump across the link table, so readahead is wasted.
  enum class Advice : uint8_t { kNormal, kRandom, kSequential, kWillNeed };
  Advice advice = Advice::kRandom;
  // Best-effort mlock of the mapping (serving fleets pinning the hot
  // index). Failure (RLIMIT_MEMLOCK) is not fatal: it counts
  // storage.mmap.mlock_failures and the open proceeds unpinned.
  bool lock = false;
  // MAP_POPULATE: pre-fault every page at map time so the first query
  // never stalls on a page-in (open pays the cost instead). Downgraded
  // silently on kernels without the flag.
  bool populate = false;
  // MADV_HUGEPAGE: ask for transparent-huge-page backing. Best-effort
  // everywhere — a kernel built without THP just ignores the hint.
  bool hugepage = false;
};

class MmapRegion {
 public:
  // Maps `path` read-only in its entirety. The descriptor stays open
  // for the region's lifetime (the fence needs it). An empty file maps
  // to a null region of size 0 — valid, with nothing to point at.
  static Result<std::shared_ptr<MmapRegion>> Map(
      const std::string& path, const MmapOptions& options = {});

  // The shared-mapping cache: N in-process opens of one (path, options)
  // pair share a single refcounted region instead of mapping the file N
  // times. The cache holds weak references — a region lives exactly as
  // long as someone holds it, and the next open after the last release
  // maps afresh (so a replaced artifact is picked up). Hits count the
  // storage.mmap.cache_hits gauge. A cached region whose fence already
  // failed (backing file shrank) is dropped and remapped rather than
  // handed out.
  static Result<std::shared_ptr<MmapRegion>> MapShared(
      const std::string& path, const MmapOptions& options = {});

  ~MmapRegion();
  MmapRegion(const MmapRegion&) = delete;
  MmapRegion& operator=(const MmapRegion&) = delete;

  const uint8_t* data() const { return data_; }
  uint64_t size() const { return size_; }
  const std::string& path() const { return path_; }

  // The length fence: kIoError when the backing file shrank below the
  // mapped length (touching the lost pages would SIGBUS), OK otherwise.
  Status CheckFence() const;

  // Fence-guarded bounded read (memcpy out of the mapping), with the
  // IoBackend EOF contract: *bytes_read < n only when `offset + n`
  // runs past the mapped length.
  Status ReadAt(uint64_t offset, void* buf, size_t n,
                size_t* bytes_read) const;

 private:
  MmapRegion(std::string path, int fd, const uint8_t* data, uint64_t size,
             bool locked)
      : path_(std::move(path)),
        fd_(fd),
        data_(data),
        size_(size),
        locked_(locked) {}

  std::string path_;
  int fd_ = -1;
  const uint8_t* data_ = nullptr;
  uint64_t size_ = 0;
  bool locked_ = false;
};

// The process-wide read-only mmap IoBackend (singleton; never
// deleted). Open(create=true), Write and Sync fail with clean
// Statuses; everything the read path needs (Open existing / Size /
// Read / Close) is served from per-handle MmapRegions, so
// PageFile/BufferPool, DiskSpine and DiskSuffixTree run unmodified
// over a mapping — and FaultInjectingBackend can wrap this backend
// exactly like the POSIX one.
IoBackend* MmapIoBackend();

}  // namespace spine::storage

#endif  // SPINE_STORAGE_MMAP_REGION_H_
