#include "storage/buffer_pool.h"

#include "common/check.h"
#include "obs/metrics.h"

namespace spine::storage {

const char* PolicyName(ReplacementPolicy policy) {
  switch (policy) {
    case ReplacementPolicy::kLru:
      return "LRU";
    case ReplacementPolicy::kClock:
      return "CLOCK";
    case ReplacementPolicy::kPinTop:
      return "PIN-TOP";
  }
  return "unknown";
}

BufferPool::BufferPool(PageFile* file, uint32_t frames,
                       ReplacementPolicy policy)
    : file_(file), policy_(policy) {
  SPINE_CHECK(frames >= 1);
  frames_.resize(frames);
  arena_.resize(static_cast<uint64_t>(frames) * kPageSize);
  lru_pos_.resize(frames);
  // Pin-top: reserve a quarter of the budget for the top of the file.
  protected_pages_ = frames / 4;
}

void BufferPool::Touch(uint32_t frame) {
  switch (policy_) {
    case ReplacementPolicy::kLru:
    case ReplacementPolicy::kPinTop:
      lru_.erase(lru_pos_[frame]);
      lru_.push_front(frame);
      lru_pos_[frame] = lru_.begin();
      break;
    case ReplacementPolicy::kClock:
      frames_[frame].referenced = true;
      break;
  }
}

uint32_t BufferPool::PickVictim() {
  switch (policy_) {
    case ReplacementPolicy::kLru:
      return lru_.back();
    case ReplacementPolicy::kClock: {
      while (true) {
        Frame& frame = frames_[clock_hand_];
        uint32_t candidate = clock_hand_;
        clock_hand_ = (clock_hand_ + 1) % frames_.size();
        if (frame.valid && frame.referenced) {
          frame.referenced = false;
        } else {
          return candidate;
        }
      }
    }
    case ReplacementPolicy::kPinTop: {
      // LRU among the unprotected frames; protected (top-of-backbone)
      // pages are skipped unless nothing else is available. Frames
      // invalidated by a failed read are always fair game.
      for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
        const Frame& frame = frames_[*it];
        if (!frame.valid || !Protected(frame.page_id)) return *it;
      }
      return lru_.back();
    }
  }
  return 0;
}

Status BufferPool::WriteBack(uint32_t frame) {
  SealPageChecksum(frames_[frame].page_id, FrameData(frame));
  return file_->WritePage(frames_[frame].page_id, FrameData(frame));
}

Status BufferPool::ReadAndVerify(uint64_t page_id, uint8_t* raw) {
  SPINE_RETURN_IF_ERROR(file_->ReadPage(page_id, raw));
  Status verify = VerifyPageChecksum(page_id, raw);
  if (verify.ok()) return verify;
  ++stats_.checksum_failures;
  SPINE_OBS_COUNT("storage.pool.checksum_failures", 1);
  // One immediate re-read: a transient fault (bus glitch, injected bit
  // flip) heals; corruption that is actually on the medium persists.
  SPINE_RETURN_IF_ERROR(file_->ReadPage(page_id, raw));
  verify = VerifyPageChecksum(page_id, raw);
  if (verify.ok()) {
    ++stats_.healed_rereads;
    SPINE_OBS_COUNT("storage.pool.checksum_healed", 1);
  }
  return verify;
}

uint8_t* BufferPool::FetchPage(uint64_t page_id, bool mark_dirty) {
  if (!last_error_.ok()) return nullptr;  // fail fast while latched

  auto it = page_to_frame_.find(page_id);
  if (it != page_to_frame_.end()) {
    ++stats_.hits;
    SPINE_OBS_COUNT("storage.pool.hits", 1);
    uint32_t frame = it->second;
    if (mark_dirty) frames_[frame].dirty = true;
    Touch(frame);
    return FrameData(frame) + kPageHeaderSize;
  }
  ++stats_.misses;
  SPINE_OBS_COUNT("storage.pool.misses", 1);

  // Deadline checkpoint: refuse to start a page fault once the query's
  // token fired. Latching the verdict makes every later fetch of this
  // query fail fast, so the abandoned walk unwinds in O(remaining
  // steps) over zeroed records with no further I/O.
  if (cancel_ != nullptr) {
    Status fired = cancel_->ToStatus();
    if (!fired.ok()) {
      SPINE_OBS_COUNT("storage.pool.cancelled_misses", 1);
      last_error_ = fired;
      return nullptr;
    }
  }

  const bool uses_lru_list = policy_ == ReplacementPolicy::kLru ||
                             policy_ == ReplacementPolicy::kPinTop;
  uint32_t frame;
  if (next_free_ < frames_.size()) {
    frame = next_free_++;
    if (uses_lru_list) {
      lru_.push_front(frame);
      lru_pos_[frame] = lru_.begin();
    }
  } else {
    frame = PickVictim();
    Frame& victim = frames_[frame];
    ++stats_.evictions;
    SPINE_OBS_COUNT("storage.pool.evictions", 1);
    if (victim.valid && victim.dirty) {
      ++stats_.dirty_writebacks;
      SPINE_OBS_COUNT("storage.pool.dirty_writebacks", 1);
      Status status = WriteBack(frame);
      if (!status.ok()) {
        SPINE_OBS_COUNT("storage.pool.io_errors", 1);
        last_error_ = status;
        return nullptr;
      }
    }
    if (victim.valid) page_to_frame_.erase(victim.page_id);
  }

  Status status = ReadAndVerify(page_id, FrameData(frame));
  if (!status.ok()) {
    SPINE_OBS_COUNT("storage.pool.io_errors", 1);
    // Invalidate the frame so eviction never writes stale bytes back.
    frames_[frame] = Frame{};
    last_error_ = status;
    return nullptr;
  }
  frames_[frame] = Frame{page_id, /*valid=*/true, mark_dirty,
                         /*referenced=*/true};
  page_to_frame_[page_id] = frame;
  if (uses_lru_list) Touch(frame);
  return FrameData(frame) + kPageHeaderSize;
}

Status BufferPool::FlushAll() {
  for (uint32_t frame = 0; frame < frames_.size(); ++frame) {
    Frame& f = frames_[frame];
    if (f.valid && f.dirty) {
      SPINE_RETURN_IF_ERROR(WriteBack(frame));
      f.dirty = false;
    }
  }
  return Status::OK();
}

}  // namespace spine::storage
