#include "storage/mmap_region.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <mutex>
#include <unordered_map>

#include "obs/metrics.h"

namespace spine::storage {

namespace {

int ToMadvise(MmapOptions::Advice advice) {
  switch (advice) {
    case MmapOptions::Advice::kNormal:
      return MADV_NORMAL;
    case MmapOptions::Advice::kRandom:
      return MADV_RANDOM;
    case MmapOptions::Advice::kSequential:
      return MADV_SEQUENTIAL;
    case MmapOptions::Advice::kWillNeed:
      return MADV_WILLNEED;
  }
  return MADV_NORMAL;
}

}  // namespace

Result<std::shared_ptr<MmapRegion>> MmapRegion::Map(
    const std::string& path, const MmapOptions& options) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("open(" + path + "): " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status status =
        Status::IoError("fstat(" + path + "): " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    return Status::IoError("mmap open: " + path + " is not a regular file");
  }
  uint64_t size = static_cast<uint64_t>(st.st_size);
  const uint8_t* data = nullptr;
  bool locked = false;
  if (size > 0) {
    int flags = MAP_PRIVATE;
#ifdef MAP_POPULATE
    if (options.populate) flags |= MAP_POPULATE;
#endif
    void* mapping =
        ::mmap(nullptr, size, PROT_READ, flags, fd, /*offset=*/0);
    if (mapping == MAP_FAILED) {
      Status status =
          Status::IoError("mmap(" + path + "): " + std::strerror(errno));
      ::close(fd);
      return status;
    }
    // Advice is best-effort everywhere: a kernel that rejects it still
    // serves the mapping correctly, just without the hint.
    (void)::madvise(mapping, size, ToMadvise(options.advice));
#ifdef MADV_HUGEPAGE
    if (options.hugepage) (void)::madvise(mapping, size, MADV_HUGEPAGE);
#endif
    if (options.lock) {
      if (::mlock(mapping, size) == 0) {
        locked = true;
      } else {
        SPINE_OBS_COUNT("storage.mmap.mlock_failures", 1);
      }
    }
    data = static_cast<const uint8_t*>(mapping);
  }
  SPINE_OBS_GAUGE_ADD("storage.mmap.maps", 1);
  SPINE_OBS_GAUGE_ADD("storage.mmap.bytes_mapped",
                      static_cast<int64_t>(size));
  return std::shared_ptr<MmapRegion>(
      new MmapRegion(path, fd, data, size, locked));
}

MmapRegion::~MmapRegion() {
  if (data_ != nullptr) {
    if (locked_) ::munlock(const_cast<uint8_t*>(data_), size_);
    ::munmap(const_cast<uint8_t*>(data_), size_);
  }
  if (fd_ >= 0) ::close(fd_);
  SPINE_OBS_GAUGE_ADD("storage.mmap.maps", -1);
  SPINE_OBS_GAUGE_ADD("storage.mmap.bytes_mapped",
                      -static_cast<int64_t>(size_));
}

Status MmapRegion::CheckFence() const {
  if (size_ == 0) return Status::OK();
  struct stat st;
  if (::fstat(fd_, &st) != 0) {
    return Status::IoError("mmap fence: fstat(" + path_ +
                           "): " + std::strerror(errno));
  }
  if (static_cast<uint64_t>(st.st_size) < size_) {
    return Status::IoError(
        "mmap fence: " + path_ + " shrank under the mapping (" +
        std::to_string(st.st_size) + " < " + std::to_string(size_) +
        " mapped bytes)");
  }
  return Status::OK();
}

Status MmapRegion::ReadAt(uint64_t offset, void* buf, size_t n,
                          size_t* bytes_read) const {
  SPINE_RETURN_IF_ERROR(CheckFence());
  if (offset >= size_) {
    *bytes_read = 0;
    return Status::OK();
  }
  size_t available = static_cast<size_t>(size_ - offset);
  size_t take = n < available ? n : available;
  std::memcpy(buf, data_ + offset, take);
  *bytes_read = take;
  return Status::OK();
}

// --- shared-mapping cache --------------------------------------------------

namespace {

// Keyed on (path, mapping-relevant options): two opens only share a
// region when they would have produced byte-identical mappings.
std::string SharedKey(const std::string& path, const MmapOptions& options) {
  std::string key = path;
  key.push_back('\0');
  key.push_back(static_cast<char>('0' + static_cast<int>(options.advice)));
  key.push_back(options.lock ? 'L' : '-');
  key.push_back(options.populate ? 'P' : '-');
  key.push_back(options.hugepage ? 'H' : '-');
  return key;
}

struct SharedCache {
  std::mutex mu;
  std::unordered_map<std::string, std::weak_ptr<MmapRegion>> regions;
};

SharedCache& SharedMappings() {
  static SharedCache* cache = new SharedCache;
  return *cache;
}

}  // namespace

Result<std::shared_ptr<MmapRegion>> MmapRegion::MapShared(
    const std::string& path, const MmapOptions& options) {
  SharedCache& cache = SharedMappings();
  const std::string key = SharedKey(path, options);
  {
    std::lock_guard<std::mutex> lock(cache.mu);
    auto it = cache.regions.find(key);
    if (it != cache.regions.end()) {
      if (std::shared_ptr<MmapRegion> region = it->second.lock()) {
        // Never hand out a mapping whose backing file already shrank —
        // remap instead so the caller sees the artifact's current state
        // (a fresh Map would fail or fence cleanly on its own).
        if (region->CheckFence().ok()) {
          SPINE_OBS_GAUGE_ADD("storage.mmap.cache_hits", 1);
          return region;
        }
      }
      cache.regions.erase(it);
    }
  }
  // Map outside the lock: the miss path does real I/O, and two racing
  // misses at worst map twice (the loser's insert overwrites, and the
  // winner's region dies with its last holder — harmless).
  Result<std::shared_ptr<MmapRegion>> region = Map(path, options);
  if (!region.ok()) return region.status();
  {
    std::lock_guard<std::mutex> lock(cache.mu);
    cache.regions[key] = *region;
  }
  return region;
}

// --- MmapIoBackend ---------------------------------------------------------

namespace {

// Serves the IoBackend read contract from per-handle MmapRegions. The
// handle space is private (monotonic ids), not file descriptors — the
// region owns the real fd.
class MmapBackend : public IoBackend {
 public:
  Result<int> Open(const std::string& path, bool create) override {
    if (create) {
      return Status::IoError("mmap backend is read-only: cannot create " +
                             path);
    }
    auto region = MmapRegion::Map(path);
    if (!region.ok()) return region.status();
    std::lock_guard<std::mutex> lock(mu_);
    int handle = next_handle_++;
    regions_[handle] = *std::move(region);
    return handle;
  }

  void Close(int handle) override {
    std::lock_guard<std::mutex> lock(mu_);
    regions_.erase(handle);
  }

  Result<uint64_t> Size(int handle) override {
    auto region = Find(handle);
    if (!region) return Status::IoError("mmap backend: bad handle");
    return region->size();
  }

  Status Read(int handle, uint64_t offset, void* buf, size_t n,
              size_t* bytes_read) override {
    auto region = Find(handle);
    if (!region) return Status::IoError("mmap backend: bad handle");
    return region->ReadAt(offset, buf, n, bytes_read);
  }

  Status Write(int /*handle*/, uint64_t /*offset*/, const void* /*buf*/,
               size_t /*n*/) override {
    return Status::IoError("mmap backend is read-only: write rejected");
  }

  Status Sync(int /*handle*/) override {
    return Status::IoError("mmap backend is read-only: sync rejected");
  }

 private:
  std::shared_ptr<MmapRegion> Find(int handle) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = regions_.find(handle);
    return it == regions_.end() ? nullptr : it->second;
  }

  std::mutex mu_;
  int next_handle_ = 1;
  std::unordered_map<int, std::shared_ptr<MmapRegion>> regions_;
};

}  // namespace

IoBackend* MmapIoBackend() {
  static MmapBackend* backend = new MmapBackend;
  return backend;
}

}  // namespace spine::storage
