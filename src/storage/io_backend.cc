#include "storage/io_backend.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "obs/metrics.h"

namespace spine::storage {

namespace {

class PosixBackend : public IoBackend {
 public:
  Result<int> Open(const std::string& path, bool create) override {
    int flags = create ? (O_CREAT | O_TRUNC | O_RDWR) : O_RDWR;
    int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) {
      return Status::IoError("open(" + path + "): " + std::strerror(errno));
    }
    return fd;
  }

  void Close(int handle) override {
    if (handle >= 0) ::close(handle);
  }

  Result<uint64_t> Size(int handle) override {
    off_t size = ::lseek(handle, 0, SEEK_END);
    if (size < 0) {
      return Status::IoError(std::string("lseek: ") + std::strerror(errno));
    }
    return static_cast<uint64_t>(size);
  }

  Status Read(int handle, uint64_t offset, void* buf, size_t n,
              size_t* bytes_read) override {
    size_t done = 0;
    uint8_t* out = static_cast<uint8_t*>(buf);
    while (done < n) {
      ssize_t got = ::pread(handle, out + done, n - done,
                            static_cast<off_t>(offset + done));
      if (got < 0) {
        if (errno == EINTR) continue;
        return Status::IoError(std::string("pread: ") + std::strerror(errno));
      }
      if (got == 0) break;  // EOF
      done += static_cast<size_t>(got);
    }
    *bytes_read = done;
    return Status::OK();
  }

  Status Write(int handle, uint64_t offset, const void* buf,
               size_t n) override {
    size_t done = 0;
    const uint8_t* in = static_cast<const uint8_t*>(buf);
    while (done < n) {
      ssize_t put = ::pwrite(handle, in + done, n - done,
                             static_cast<off_t>(offset + done));
      if (put < 0) {
        if (errno == EINTR) continue;
        return Status::IoError(std::string("pwrite: ") + std::strerror(errno));
      }
      done += static_cast<size_t>(put);
    }
    return Status::OK();
  }

  Status Sync(int handle) override {
    if (::fdatasync(handle) != 0) {
      return Status::IoError(std::string("fdatasync: ") +
                             std::strerror(errno));
    }
    return Status::OK();
  }
};

}  // namespace

IoBackend* PosixIoBackend() {
  static PosixBackend* backend = new PosixBackend;
  return backend;
}

// --- FaultInjectingBackend ------------------------------------------------

void FaultInjectingBackend::ScheduleReadFault(FaultKind kind, uint64_t nth) {
  std::lock_guard<std::mutex> lock(mu_);
  read_faults_.push_back({reads_ + nth, kind});
}

void FaultInjectingBackend::ScheduleWriteFault(FaultKind kind, uint64_t nth) {
  std::lock_guard<std::mutex> lock(mu_);
  write_faults_.push_back({writes_ + nth, kind});
}

void FaultInjectingBackend::ScheduleSyncFault(uint64_t nth) {
  std::lock_guard<std::mutex> lock(mu_);
  sync_faults_.push_back({syncs_ + nth, FaultKind::kSyncError});
}

void FaultInjectingBackend::EnableRandomFaults(uint64_t seed, double rate) {
  std::lock_guard<std::mutex> lock(mu_);
  random_rng_ = Rng(seed);
  random_rate_ = rate;
}

void FaultInjectingBackend::ScheduleReadStall(uint64_t micros, uint64_t nth) {
  std::lock_guard<std::mutex> lock(mu_);
  read_stalls_.push_back({reads_ + nth, micros});
}

void FaultInjectingBackend::EnableRandomStalls(uint64_t seed, double rate,
                                               uint64_t micros) {
  std::lock_guard<std::mutex> lock(mu_);
  stall_rng_ = Rng(seed);
  stall_rate_ = rate;
  stall_micros_ = micros;
}

void FaultInjectingBackend::ClearScheduledFaults() {
  std::lock_guard<std::mutex> lock(mu_);
  read_faults_.clear();
  write_faults_.clear();
  sync_faults_.clear();
  read_stalls_.clear();
}

uint64_t FaultInjectingBackend::PendingStallLocked() {
  uint64_t micros = 0;
  for (auto it = read_stalls_.begin(); it != read_stalls_.end();) {
    if (it->at_op == reads_) {
      micros += it->micros;
      it = read_stalls_.erase(it);
    } else {
      ++it;
    }
  }
  if (stall_rate_ > 0.0 && stall_rng_.Chance(stall_rate_)) {
    micros += stall_micros_;
  }
  if (micros > 0) ++stalls_injected_;
  return micros;
}

bool FaultInjectingBackend::NextFaultLocked(std::deque<Scheduled>* scheduled,
                                            uint64_t op_counter, bool is_read,
                                            bool is_sync, FaultKind* kind) {
  for (auto it = scheduled->begin(); it != scheduled->end(); ++it) {
    if (it->at_op == op_counter) {
      *kind = it->kind;
      scheduled->erase(it);
      return true;
    }
  }
  if (random_rate_ > 0.0 && random_rng_.Chance(random_rate_)) {
    if (is_sync) {
      *kind = FaultKind::kSyncError;
    } else if (is_read) {
      *kind = random_rng_.Chance(0.5) ? FaultKind::kReadError
                                      : FaultKind::kBitFlip;
    } else {
      uint64_t pick = random_rng_.Below(3);
      *kind = pick == 0   ? FaultKind::kWriteError
              : pick == 1 ? FaultKind::kShortWrite
                          : FaultKind::kTornPage;
    }
    return true;
  }
  return false;
}

Result<int> FaultInjectingBackend::Open(const std::string& path,
                                        bool create) {
  return delegate_->Open(path, create);
}

void FaultInjectingBackend::Close(int handle) { delegate_->Close(handle); }

Result<uint64_t> FaultInjectingBackend::Size(int handle) {
  return delegate_->Size(handle);
}

Status FaultInjectingBackend::Read(int handle, uint64_t offset, void* buf,
                                   size_t n, size_t* bytes_read) {
  uint64_t stall_micros = 0;
  uint64_t op = 0;
  FaultKind kind;
  bool fault = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    op = ++reads_;
    // stalls compose with (and precede) error injection
    stall_micros = PendingStallLocked();
    fault = NextFaultLocked(&read_faults_, reads_, /*is_read=*/true,
                            /*is_sync=*/false, &kind);
    if (fault) ++faults_injected_;
  }
  if (stall_micros > 0) {
    SPINE_OBS_COUNT("storage.faults.stalls", 1);
    // A bounded sleep, never a park: any stall schedule still
    // terminates, so the contract "kOk / kIoError / kDeadlineExceeded,
    // never a hang" holds regardless of what the deadline machinery
    // above does.
    std::this_thread::sleep_for(std::chrono::microseconds(stall_micros));
  }
  if (fault) {
    SPINE_OBS_COUNT("storage.faults.injected", 1);
    if (kind == FaultKind::kReadError) {
      return Status::IoError("injected EIO on read (op " +
                             std::to_string(op) + ")");
    }
    // kBitFlip: perform the read, then silently corrupt one bit.
    Status status = delegate_->Read(handle, offset, buf, n, bytes_read);
    if (!status.ok()) return status;
    if (*bytes_read > 0) {
      uint64_t bit;
      {
        std::lock_guard<std::mutex> lock(mu_);
        bit = random_rng_.Below(*bytes_read * 8);
      }
      static_cast<uint8_t*>(buf)[bit / 8] ^=
          static_cast<uint8_t>(1u << (bit % 8));
    }
    return Status::OK();
  }
  return delegate_->Read(handle, offset, buf, n, bytes_read);
}

Status FaultInjectingBackend::Write(int handle, uint64_t offset,
                                    const void* buf, size_t n) {
  uint64_t op = 0;
  FaultKind kind;
  bool fault = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    op = ++writes_;
    fault = NextFaultLocked(&write_faults_, writes_, /*is_read=*/false,
                            /*is_sync=*/false, &kind);
    if (fault) ++faults_injected_;
  }
  if (fault) {
    SPINE_OBS_COUNT("storage.faults.injected", 1);
    if (kind == FaultKind::kWriteError) {
      return Status::IoError("injected EIO on write (op " +
                             std::to_string(op) + ")");
    }
    // Short write and torn page both persist only a prefix; a short
    // write reports the failure, a torn page lies and reports success.
    size_t prefix = std::min(n, std::max<size_t>(1, n / 2));
    Status status = delegate_->Write(handle, offset, buf, prefix);
    if (!status.ok()) return status;
    if (kind == FaultKind::kShortWrite) {
      return Status::IoError("injected short write (" +
                             std::to_string(prefix) + "/" +
                             std::to_string(n) + " bytes)");
    }
    return Status::OK();  // torn page
  }
  return delegate_->Write(handle, offset, buf, n);
}

Status FaultInjectingBackend::Sync(int handle) {
  uint64_t op = 0;
  FaultKind kind;
  bool fault = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    op = ++syncs_;
    fault = NextFaultLocked(&sync_faults_, syncs_, /*is_read=*/false,
                            /*is_sync=*/true, &kind);
    if (fault) ++faults_injected_;
  }
  if (fault) {
    SPINE_OBS_COUNT("storage.faults.injected", 1);
    return Status::IoError("injected EIO on sync (op " +
                           std::to_string(op) + ")");
  }
  return delegate_->Sync(handle);
}

}  // namespace spine::storage
