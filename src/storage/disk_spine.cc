#include "storage/disk_spine.h"

#include <algorithm>
#include <cstring>
#include <fstream>

#include "common/check.h"
#include "common/serde.h"
#include "core/search.h"

namespace spine::storage {

namespace {
constexpr uint32_t kMetaMagic = 0x5350444d;  // "SPDM"
constexpr uint32_t kMetaVersion = 1;

struct SlotPair {
  uint32_t node;
  uint32_t slot;
};
}  // namespace

// --- PagedCodes -----------------------------------------------------------

PagedCodes::PagedCodes(BufferPool* pool, PageAllocator* allocator,
                       uint32_t bits)
    : pool_(pool), allocator_(allocator), bits_(bits) {
  SPINE_CHECK(bits >= 1 && bits <= 8);
  codes_per_page_ = kPageSize * 8 / bits;  // codes never straddle pages
}

void PagedCodes::Append(Code code) {
  uint64_t slot = size_ % codes_per_page_;
  if (slot == 0) page_table_.push_back(allocator_->Allocate());
  uint8_t* page = pool_->FetchPage(page_table_.back(), true);
  SPINE_CHECK_MSG(page != nullptr, "buffer pool I/O failure");
  uint64_t bit_pos = slot * bits_;
  uint64_t byte = bit_pos / 8;
  uint32_t offset = static_cast<uint32_t>(bit_pos % 8);
  if (offset + bits_ <= 8) {
    page[byte] = static_cast<uint8_t>(page[byte] | (code << offset));
  } else {
    // Codes never straddle pages (floor division in codes_per_page_),
    // so a byte-straddling code always has byte + 1 within the page.
    uint16_t word;
    std::memcpy(&word, page + byte, sizeof(word));
    word =
        static_cast<uint16_t>(word | (static_cast<uint16_t>(code) << offset));
    std::memcpy(page + byte, &word, sizeof(word));
  }
  ++size_;
}

Code PagedCodes::Get(uint64_t index) const {
  SPINE_DCHECK(index < size_);
  const uint8_t* page =
      pool_->FetchPage(page_table_[index / codes_per_page_], false);
  SPINE_CHECK_MSG(page != nullptr, "buffer pool I/O failure");
  uint64_t bit_pos = (index % codes_per_page_) * bits_;
  uint64_t byte = bit_pos / 8;
  uint32_t offset = static_cast<uint32_t>(bit_pos % 8);
  uint32_t value;
  if (offset + bits_ <= 8) {
    value = page[byte] >> offset;
  } else {
    uint16_t word;
    std::memcpy(&word, page + byte, sizeof(word));
    value = word >> offset;
  }
  return static_cast<Code>(value & ((1u << bits_) - 1));
}

// --- DiskSpine ------------------------------------------------------------

DiskSpine::DiskSpine(const Alphabet& alphabet, PageFile file,
                     const Options& options)
    : alphabet_(alphabet),
      file_(std::move(file)),
      pool_(&file_, options.pool_frames, options.policy),
      codes_(&pool_, &allocator_, alphabet.bits_per_code()),
      lt_(&pool_, &allocator_),
      extrib_records_(&pool_, &allocator_) {
  for (uint32_t k = 0; k < 4; ++k) {
    rt_[k] = std::make_unique<PagedRecordArray>(&pool_, &allocator_,
                                                4 + 7 * (k + 1));
  }
  root_rib_dest_.assign(alphabet.size(), kNoNode);
}

Result<std::unique_ptr<DiskSpine>> DiskSpine::Create(const Alphabet& alphabet,
                                                     const std::string& path,
                                                     const Options& options) {
  SPINE_CHECK(alphabet.size() <= 127);
  Result<PageFile> file = PageFile::Create(path, options.sync_mode);
  if (!file.ok()) return file.status();
  std::unique_ptr<DiskSpine> index(
      new DiskSpine(alphabet, std::move(file).value(), options));
  index->meta_path_ = path + ".meta";
  index->lt_.Append(LtRecord{0, 0});  // root entry, unused
  return index;
}

uint16_t DiskSpine::EncodeLabel(uint32_t value, bool* overflow) {
  if (value <= 0xffff) {
    *overflow = false;
    return static_cast<uint16_t>(value);
  }
  SPINE_CHECK_MSG(overflow_.size() < 0x10000, "label overflow table full");
  *overflow = true;
  overflow_.push_back(value);
  return static_cast<uint16_t>(overflow_.size() - 1);
}

uint32_t DiskSpine::RibPt(const PackedRib& rib) const {
  return (rib.cl & kPtOverflowFlag) ? overflow_[rib.pt] : rib.pt;
}

NodeId DiskSpine::LinkDest(NodeId i) const {
  LtRecord record = lt_.Get(i);
  uint32_t klass = record.word >> kClassShift;
  if (klass == 0) return record.word & kValueMask;
  if (klass == kClassBig) return rt_big_.at(i).link_dest;
  uint8_t header[4];
  uint8_t entry[32];
  rt_[klass - 1]->Read(record.word & kValueMask, entry);
  std::memcpy(header, entry, 4);
  uint32_t dest;
  std::memcpy(&dest, header, 4);
  return dest;
}

uint32_t DiskSpine::LinkLel(NodeId i) const {
  LtRecord record = lt_.Get(i);
  if (record.word & kLelOverflowBit) return overflow_[record.lel];
  return record.lel;
}

void DiskSpine::PushNode(NodeId dest, uint32_t lel) {
  bool ovf = false;
  uint16_t stored = EncodeLabel(lel, &ovf);
  uint32_t word = dest;
  if (ovf) word |= kLelOverflowBit;
  lt_.Append(LtRecord{word, stored});
}

bool DiskSpine::FindRibAt(NodeId node, Code c, RibView* view) const {
  if (node == kRootNode) {
    if (root_rib_dest_[c] == kNoNode) return false;
    *view = {c, root_rib_dest_[c], 0};
    return true;
  }
  LtRecord record = lt_.Get(node);
  uint32_t klass = record.word >> kClassShift;
  if (klass == 0) return false;
  if (klass == kClassBig) {
    for (const PackedRib& rib : rt_big_.at(node).ribs) {
      if ((rib.cl & kClMask) == c) {
        *view = {c, rib.dest, RibPt(rib)};
        return true;
      }
    }
    return false;
  }
  uint8_t entry[32];
  rt_[klass - 1]->Read(record.word & kValueMask, entry);
  for (uint32_t k = 0; k < klass; ++k) {
    PackedRib rib;
    std::memcpy(&rib, entry + 4 + 7 * k, sizeof(rib));
    if ((rib.cl & kClMask) == c) {
      *view = {c, rib.dest, RibPt(rib)};
      return true;
    }
  }
  return false;
}

void DiskSpine::AddRib(NodeId node, Code c, NodeId dest, uint32_t pt) {
  if (node == kRootNode) {
    SPINE_DCHECK(root_rib_dest_[c] == kNoNode);
    root_rib_dest_[c] = dest;
    return;
  }
  bool ovf = false;
  PackedRib rib;
  rib.dest = dest;
  rib.pt = EncodeLabel(pt, &ovf);
  rib.cl = static_cast<uint8_t>(c) | (ovf ? kPtOverflowFlag : 0);

  LtRecord record = lt_.Get(node);
  uint32_t klass = record.word >> kClassShift;
  uint32_t flags = record.word & (kLelOverflowBit | kHasExtribBit);
  if (klass == kClassBig) {
    rt_big_[node].ribs.push_back(rib);
    return;
  }

  uint8_t old_entry[32];
  uint32_t link_dest;
  if (klass == 0) {
    link_dest = record.word & kValueMask;
  } else {
    rt_[klass - 1]->Read(record.word & kValueMask, old_entry);
    std::memcpy(&link_dest, old_entry, 4);
  }

  if (klass == 4) {
    BigEntry big;
    big.link_dest = link_dest;
    for (uint32_t k = 0; k < 4; ++k) {
      PackedRib old;
      std::memcpy(&old, old_entry + 4 + 7 * k, sizeof(old));
      big.ribs.push_back(old);
    }
    big.ribs.push_back(rib);
    rt_free_[3].push_back(record.word & kValueMask);
    rt_big_.emplace(node, std::move(big));
    lt_.Set(node, LtRecord{(kClassBig << kClassShift) | flags, record.lel});
    return;
  }

  uint32_t new_class = klass + 1;
  uint8_t new_entry[32];
  std::memcpy(new_entry, &link_dest, 4);
  if (klass > 0) {
    std::memcpy(new_entry + 4, old_entry + 4, 7 * klass);
    rt_free_[klass - 1].push_back(record.word & kValueMask);
  }
  std::memcpy(new_entry + 4 + 7 * klass, &rib, sizeof(rib));

  uint32_t slot;
  if (!rt_free_[new_class - 1].empty()) {
    slot = rt_free_[new_class - 1].back();
    rt_free_[new_class - 1].pop_back();
    rt_[new_class - 1]->Write(slot, new_entry);
  } else {
    slot = static_cast<uint32_t>(rt_[new_class - 1]->Append(new_entry));
  }
  SPINE_CHECK(slot <= kValueMask);
  lt_.Set(node,
          LtRecord{(new_class << kClassShift) | flags | slot, record.lel});
}

void DiskSpine::SetExtrib(NodeId node, NodeId dest, uint32_t pt, uint32_t prt,
                          NodeId parent_dest) {
  ExtribRecord record;
  record.dest = dest;
  record.parent_dest = parent_dest;
  bool pt_ovf = false, prt_ovf = false;
  record.pt = EncodeLabel(pt, &pt_ovf);
  record.prt = EncodeLabel(prt, &prt_ovf);
  record.flags = (pt_ovf ? 1 : 0) | (prt_ovf ? 2 : 0);
  uint32_t slot = static_cast<uint32_t>(extrib_records_.Append(record));
  extrib_slot_.emplace(node, slot);
  LtRecord lt = lt_.Get(node);
  lt.word |= kHasExtribBit;
  lt_.Set(node, lt);
}

std::optional<DiskSpine::ExtribView> DiskSpine::ExtribAt(NodeId node) const {
  if (node == kRootNode) return std::nullopt;
  LtRecord record = lt_.Get(node);
  if ((record.word & kHasExtribBit) == 0) return std::nullopt;
  ExtribRecord e = extrib_records_.Get(extrib_slot_.at(node));
  ExtribView view;
  view.dest = e.dest;
  view.parent_dest = e.parent_dest;
  view.pt = (e.flags & 1) ? overflow_[e.pt] : e.pt;
  view.prt = (e.flags & 2) ? overflow_[e.prt] : e.prt;
  return view;
}

Status DiskSpine::Append(char ch) {
  Code c = alphabet_.Encode(ch);
  if (c == kInvalidCode) {
    return Status::InvalidArgument(
        std::string("character '") + ch + "' is not in the " +
        alphabet_.name() + " alphabet");
  }
  if (size() >= kValueMask) {
    return Status::ResourceExhausted("disk SPINE node limit reached");
  }
  const NodeId old_tail = static_cast<NodeId>(size());
  const NodeId t = old_tail + 1;
  codes_.Append(c);

  if (old_tail == kRootNode) {
    PushNode(kRootNode, 0);
    return Status::OK();
  }
  NodeId w = LinkDest(old_tail);
  uint32_t lel = LinkLel(old_tail);
  while (true) {
    if (codes_.Get(w) == c) {
      PushNode(w + 1, lel + 1);
      return Status::OK();
    }
    RibView rib;
    if (!FindRibAt(w, c, &rib)) {
      AddRib(w, c, t, lel);
      if (w == kRootNode) {
        PushNode(kRootNode, 0);
        return Status::OK();
      }
      lel = LinkLel(w);
      w = LinkDest(w);
      continue;
    }
    if (rib.pt >= lel) {
      PushNode(rib.dest, lel + 1);
      return Status::OK();
    }
    NodeId last_sibling_dest = rib.dest;
    uint32_t last_sibling_pt = rib.pt;
    NodeId x = rib.dest;
    while (true) {
      std::optional<ExtribView> e = ExtribAt(x);
      if (!e.has_value()) break;
      if (e->prt == rib.pt && e->parent_dest == rib.dest) {
        if (e->pt >= lel) {
          PushNode(e->dest, lel + 1);
          return Status::OK();
        }
        last_sibling_dest = e->dest;
        last_sibling_pt = e->pt;
      }
      x = e->dest;
    }
    SetExtrib(x, t, lel, rib.pt, rib.dest);
    PushNode(last_sibling_dest, last_sibling_pt + 1);
    return Status::OK();
  }
}

Status DiskSpine::AppendString(std::string_view s) {
  for (char ch : s) {
    SPINE_RETURN_IF_ERROR(Append(ch));
  }
  return Status::OK();
}

StepResult DiskSpine::Step(NodeId node, Code c, uint32_t pathlen,
                           SearchStats* stats) const {
  StepResult result;
  if (stats != nullptr) ++stats->nodes_checked;
  if (node < size() && codes_.Get(node) == c) {
    result.ok = true;
    result.has_edge = true;
    result.dest = node + 1;
    return result;
  }
  RibView rib;
  if (!FindRibAt(node, c, &rib)) return result;
  result.has_edge = true;
  if (pathlen <= rib.pt) {
    result.ok = true;
    result.dest = rib.dest;
    return result;
  }
  result.fallback_dest = rib.dest;
  result.fallback_pt = rib.pt;
  NodeId x = rib.dest;
  while (true) {
    std::optional<ExtribView> e = ExtribAt(x);
    if (!e.has_value()) break;
    if (stats != nullptr) ++stats->chain_hops;
    if (e->prt == rib.pt && e->parent_dest == rib.dest) {
      if (e->pt >= pathlen) {
        result.ok = true;
        result.dest = e->dest;
        return result;
      }
      result.fallback_dest = e->dest;
      result.fallback_pt = e->pt;
    }
    x = e->dest;
  }
  return result;
}

bool DiskSpine::Contains(std::string_view pattern) const {
  return FindFirstEnd(pattern).has_value();
}

std::optional<NodeId> DiskSpine::FindFirstEnd(std::string_view pattern,
                                              SearchStats* stats) const {
  return GenericFindFirstEnd(*this, pattern, stats);
}

std::vector<uint32_t> DiskSpine::FindAll(std::string_view pattern,
                                         SearchStats* stats) const {
  return GenericFindAll(*this, pattern, stats);
}

Status DiskSpine::Checkpoint() {
  SPINE_RETURN_IF_ERROR(pool_.FlushAll());
  SPINE_RETURN_IF_ERROR(file_.Sync());
  std::ofstream out(meta_path_, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open " + meta_path_);
  serde::Writer w(out);
  w.Pod(kMetaMagic);
  w.Pod(kMetaVersion);
  w.Pod(static_cast<uint32_t>(alphabet_.kind()));
  w.Pod<uint64_t>(allocator_.allocated());
  w.Pod<uint64_t>(codes_.size());
  w.Vec(codes_.page_table());
  w.Pod<uint64_t>(lt_.size());
  w.Vec(lt_.page_table());
  for (int k = 0; k < 4; ++k) {
    w.Pod<uint64_t>(rt_[k]->size());
    w.Vec(rt_[k]->page_table());
    w.Vec(rt_free_[k]);
  }
  w.Pod<uint64_t>(extrib_records_.size());
  w.Vec(extrib_records_.page_table());
  w.Vec(root_rib_dest_);
  std::vector<SlotPair> slots;
  slots.reserve(extrib_slot_.size());
  for (const auto& [node, slot] : extrib_slot_) slots.push_back({node, slot});
  w.Vec(slots);
  w.Pod<uint64_t>(rt_big_.size());
  for (const auto& [node, big] : rt_big_) {
    w.Pod(node);
    w.Pod(big.link_dest);
    w.Vec(big.ribs);
  }
  w.Vec(overflow_);
  out.flush();
  if (!out) return Status::IoError("write failure on " + meta_path_);
  return Status::OK();
}

Result<std::unique_ptr<DiskSpine>> DiskSpine::Open(const std::string& path,
                                                   const Options& options) {
  std::ifstream in(path + ".meta", std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path + ".meta");
  serde::Reader r(in);
  uint32_t magic = 0, version = 0, kind = 0;
  if (!r.Pod(&magic) || magic != kMetaMagic) {
    return Status::Corruption("bad metadata magic in " + path + ".meta");
  }
  if (!r.Pod(&version) || version != kMetaVersion) {
    return Status::Corruption("unsupported metadata version");
  }
  if (!r.Pod(&kind) || kind > 3) {
    return Status::Corruption("bad alphabet kind");
  }
  Alphabet alphabet = Alphabet::Dna();
  switch (static_cast<Alphabet::Kind>(kind)) {
    case Alphabet::Kind::kDna:
      break;
    case Alphabet::Kind::kProtein:
      alphabet = Alphabet::Protein();
      break;
    case Alphabet::Kind::kByte:
      return Status::Corruption(
          "disk indexes do not support the byte alphabet");
    case Alphabet::Kind::kAscii:
      alphabet = Alphabet::Ascii();
      break;
  }

  Result<PageFile> file = PageFile::Open(path, options.sync_mode);
  if (!file.ok()) return file.status();
  std::unique_ptr<DiskSpine> index(
      new DiskSpine(alphabet, std::move(file).value(), options));
  index->meta_path_ = path + ".meta";

  auto corrupt = [&](const char* what) {
    return Status::Corruption(std::string("truncated metadata (") + what +
                              ") in " + path + ".meta");
  };
  uint64_t allocated = 0, size = 0;
  std::vector<uint64_t> table;
  if (!r.Pod(&allocated)) return corrupt("allocator");
  index->allocator_.Restore(allocated);
  if (!r.Pod(&size) || !r.Vec(&table)) return corrupt("codes");
  index->codes_.Restore(size, std::move(table));
  if (!r.Pod(&size) || !r.Vec(&table)) return corrupt("link table");
  if (size != index->codes_.size() + 1) {
    return Status::Corruption("LT/codes size mismatch in " + path + ".meta");
  }
  index->lt_.Restore(size, std::move(table));
  for (int k = 0; k < 4; ++k) {
    if (!r.Pod(&size) || !r.Vec(&table)) return corrupt("rib table");
    index->rt_[k]->Restore(size, std::move(table));
    if (!r.Vec(&index->rt_free_[k])) return corrupt("rib free list");
  }
  if (!r.Pod(&size) || !r.Vec(&table)) return corrupt("extrib records");
  index->extrib_records_.Restore(size, std::move(table));
  if (!r.Vec(&index->root_rib_dest_)) return corrupt("root ribs");
  if (index->root_rib_dest_.size() != alphabet.size()) {
    return Status::Corruption("root rib table size mismatch");
  }
  std::vector<SlotPair> slots;
  if (!r.Vec(&slots)) return corrupt("extrib directory");
  for (const SlotPair& pair : slots) {
    index->extrib_slot_.emplace(pair.node, pair.slot);
  }
  uint64_t big_count = 0;
  if (!r.Pod(&big_count)) return corrupt("big entries");
  for (uint64_t i = 0; i < big_count; ++i) {
    uint32_t node = 0;
    BigEntry big;
    if (!r.Pod(&node) || !r.Pod(&big.link_dest) || !r.Vec(&big.ribs)) {
      return corrupt("big entry");
    }
    index->rt_big_.emplace(node, std::move(big));
  }
  if (!r.Vec(&index->overflow_)) return corrupt("overflow table");
  return index;
}

uint64_t DiskSpine::MetadataBytes() const {
  uint64_t total = codes_.MetadataBytes() + lt_.MetadataBytes() +
                   extrib_records_.MetadataBytes() +
                   root_rib_dest_.capacity() * sizeof(uint32_t) +
                   overflow_.capacity() * sizeof(uint32_t) +
                   extrib_slot_.size() * (8 + 32);
  for (uint32_t k = 0; k < 4; ++k) {
    total += rt_[k]->MetadataBytes() +
             rt_free_[k].capacity() * sizeof(uint32_t);
  }
  for (const auto& [node, big] : rt_big_) {
    total += sizeof(BigEntry) + big.ribs.capacity() * sizeof(PackedRib) + 32;
  }
  return total;
}

}  // namespace spine::storage
