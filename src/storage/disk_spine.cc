#include "storage/disk_spine.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>

#include "common/check.h"
#include "common/serde.h"
#include "core/search.h"

namespace spine::storage {

namespace {
constexpr uint32_t kMetaMagic = 0x5350444d;  // "SPDM"
constexpr uint32_t kMetaVersion = 2;         // v2: CRC32C footer

struct SlotPair {
  uint32_t node;
  uint32_t slot;
};
}  // namespace

// --- PagedCodes -----------------------------------------------------------

PagedCodes::PagedCodes(BufferPool* pool, PageAllocator* allocator,
                       uint32_t bits)
    : pool_(pool), allocator_(allocator), bits_(bits) {
  SPINE_CHECK(bits >= 1 && bits <= 8);
  codes_per_page_ = kPagePayloadSize * 8 / bits;  // codes never straddle pages
}

void PagedCodes::Append(Code code) {
  uint64_t slot = size_ % codes_per_page_;
  if (slot == 0) page_table_.push_back(allocator_->Allocate());
  ++size_;
  uint8_t* page = pool_->FetchPage(page_table_.back(), true);
  if (page == nullptr) return;  // error latched on the pool
  uint64_t bit_pos = slot * bits_;
  uint64_t byte = bit_pos / 8;
  uint32_t offset = static_cast<uint32_t>(bit_pos % 8);
  if (offset + bits_ <= 8) {
    page[byte] = static_cast<uint8_t>(page[byte] | (code << offset));
  } else {
    // Codes never straddle pages (floor division in codes_per_page_),
    // so a byte-straddling code always has byte + 1 within the page.
    uint16_t word;
    std::memcpy(&word, page + byte, sizeof(word));
    word =
        static_cast<uint16_t>(word | (static_cast<uint16_t>(code) << offset));
    std::memcpy(page + byte, &word, sizeof(word));
  }
}

Code PagedCodes::Get(uint64_t index) const {
  SPINE_DCHECK(index < size_);
  const uint8_t* page =
      pool_->FetchPage(page_table_[index / codes_per_page_], false);
  if (page == nullptr) return 0;  // error latched on the pool
  uint64_t bit_pos = (index % codes_per_page_) * bits_;
  uint64_t byte = bit_pos / 8;
  uint32_t offset = static_cast<uint32_t>(bit_pos % 8);
  uint32_t value;
  if (offset + bits_ <= 8) {
    value = page[byte] >> offset;
  } else {
    uint16_t word;
    std::memcpy(&word, page + byte, sizeof(word));
    value = word >> offset;
  }
  return static_cast<Code>(value & ((1u << bits_) - 1));
}

Status PagedCodes::Restore(uint64_t size, std::vector<uint64_t> page_table) {
  uint64_t want = (size + codes_per_page_ - 1) / codes_per_page_;
  if (page_table.size() != want) {
    return Status::Corruption(
        "paged codes metadata: " + std::to_string(page_table.size()) +
        " pages listed, " + std::to_string(want) + " required");
  }
  size_ = size;
  page_table_ = std::move(page_table);
  return Status::OK();
}

// --- DiskSpine ------------------------------------------------------------

DiskSpine::DiskSpine(const Alphabet& alphabet, PageFile file,
                     const Options& options)
    : alphabet_(alphabet),
      file_(std::move(file)),
      pool_(&file_, options.pool_frames, options.policy),
      codes_(&pool_, &allocator_, alphabet.bits_per_code()),
      lt_(&pool_, &allocator_),
      extrib_records_(&pool_, &allocator_) {
  for (uint32_t k = 0; k < 4; ++k) {
    rt_[k] = std::make_unique<PagedRecordArray>(&pool_, &allocator_,
                                                4 + 7 * (k + 1));
  }
  root_rib_dest_.assign(alphabet.size(), kNoNode);
}

Result<std::unique_ptr<DiskSpine>> DiskSpine::Create(const Alphabet& alphabet,
                                                     const std::string& path,
                                                     const Options& options) {
  SPINE_CHECK(alphabet.size() <= 127);
  Result<PageFile> file =
      PageFile::Create(path, options.sync_mode, options.backend);
  if (!file.ok()) return file.status();
  std::unique_ptr<DiskSpine> index(
      new DiskSpine(alphabet, std::move(file).value(), options));
  index->meta_path_ = path + ".meta";
  index->lt_.Append(LtRecord{0, 0});  // root entry, unused
  SPINE_RETURN_IF_ERROR(index->PoolStatus());
  return index;
}

void DiskSpine::LatchCorruption(const std::string& message) const {
  if (struct_error_.ok()) struct_error_ = Status::Corruption(message);
}

Status DiskSpine::ConsumeError() const {
  if (pool_.has_error()) {
    struct_error_ = Status::OK();
    return pool_.ConsumeError();
  }
  Status status = std::move(struct_error_);
  struct_error_ = Status::OK();
  return status;
}

uint16_t DiskSpine::EncodeLabel(uint32_t value, bool* overflow) {
  if (value <= 0xffff) {
    *overflow = false;
    return static_cast<uint16_t>(value);
  }
  SPINE_CHECK_MSG(overflow_.size() < 0x10000, "label overflow table full");
  *overflow = true;
  overflow_.push_back(value);
  return static_cast<uint16_t>(overflow_.size() - 1);
}

uint32_t DiskSpine::RibPt(const PackedRib& rib) const {
  if (rib.cl & kPtOverflowFlag) {
    if (rib.pt >= overflow_.size()) {
      LatchCorruption("rib PT overflow index out of range");
      return 0;
    }
    return overflow_[rib.pt];
  }
  return rib.pt;
}

NodeId DiskSpine::LinkDest(NodeId i) const {
  LtRecord record = lt_.Get(i);
  uint32_t klass = record.word >> kClassShift;
  if (klass == 0) return record.word & kValueMask;
  if (klass == kClassBig) {
    auto it = rt_big_.find(i);
    if (it == rt_big_.end()) {
      LatchCorruption("big rib entry missing for node " + std::to_string(i));
      return kRootNode;
    }
    return it->second.link_dest;
  }
  if (klass > 4) {
    LatchCorruption("invalid rib class for node " + std::to_string(i));
    return kRootNode;
  }
  uint8_t entry[32];
  rt_[klass - 1]->Read(record.word & kValueMask, entry);
  uint32_t dest;
  std::memcpy(&dest, entry, 4);
  return dest;
}

uint32_t DiskSpine::LinkLel(NodeId i) const {
  LtRecord record = lt_.Get(i);
  if (record.word & kLelOverflowBit) {
    if (record.lel >= overflow_.size()) {
      LatchCorruption("LEL overflow index out of range");
      return 0;
    }
    return overflow_[record.lel];
  }
  return record.lel;
}

void DiskSpine::PushNode(NodeId dest, uint32_t lel) {
  bool ovf = false;
  uint16_t stored = EncodeLabel(lel, &ovf);
  uint32_t word = dest;
  if (ovf) word |= kLelOverflowBit;
  lt_.Append(LtRecord{word, stored});
}

bool DiskSpine::FindRibAt(NodeId node, Code c, RibView* view) const {
  if (node == kRootNode) {
    if (root_rib_dest_[c] == kNoNode) return false;
    *view = {c, root_rib_dest_[c], 0};
    return true;
  }
  LtRecord record = lt_.Get(node);
  uint32_t klass = record.word >> kClassShift;
  if (klass == 0) return false;
  if (klass == kClassBig) {
    auto it = rt_big_.find(node);
    if (it == rt_big_.end()) {
      LatchCorruption("big rib entry missing for node " +
                      std::to_string(node));
      return false;
    }
    for (const PackedRib& rib : it->second.ribs) {
      if ((rib.cl & kClMask) == c) {
        *view = {c, rib.dest, RibPt(rib)};
        return true;
      }
    }
    return false;
  }
  if (klass > 4) {
    LatchCorruption("invalid rib class for node " + std::to_string(node));
    return false;
  }
  uint8_t entry[32];
  rt_[klass - 1]->Read(record.word & kValueMask, entry);
  for (uint32_t k = 0; k < klass; ++k) {
    PackedRib rib;
    std::memcpy(&rib, entry + 4 + 7 * k, sizeof(rib));
    if ((rib.cl & kClMask) == c) {
      *view = {c, rib.dest, RibPt(rib)};
      return true;
    }
  }
  return false;
}

void DiskSpine::AddRib(NodeId node, Code c, NodeId dest, uint32_t pt) {
  if (node == kRootNode) {
    SPINE_DCHECK(root_rib_dest_[c] == kNoNode);
    root_rib_dest_[c] = dest;
    return;
  }
  bool ovf = false;
  PackedRib rib;
  rib.dest = dest;
  rib.pt = EncodeLabel(pt, &ovf);
  rib.cl = static_cast<uint8_t>(c) | (ovf ? kPtOverflowFlag : 0);

  LtRecord record = lt_.Get(node);
  uint32_t klass = record.word >> kClassShift;
  uint32_t flags = record.word & (kLelOverflowBit | kHasExtribBit);
  if (klass == kClassBig) {
    rt_big_[node].ribs.push_back(rib);
    return;
  }

  uint8_t old_entry[32];
  uint32_t link_dest;
  if (klass == 0) {
    link_dest = record.word & kValueMask;
  } else {
    rt_[klass - 1]->Read(record.word & kValueMask, old_entry);
    std::memcpy(&link_dest, old_entry, 4);
  }

  if (klass == 4) {
    BigEntry big;
    big.link_dest = link_dest;
    for (uint32_t k = 0; k < 4; ++k) {
      PackedRib old;
      std::memcpy(&old, old_entry + 4 + 7 * k, sizeof(old));
      big.ribs.push_back(old);
    }
    big.ribs.push_back(rib);
    rt_free_[3].push_back(record.word & kValueMask);
    rt_big_.emplace(node, std::move(big));
    lt_.Set(node, LtRecord{(kClassBig << kClassShift) | flags, record.lel});
    return;
  }

  uint32_t new_class = klass + 1;
  uint8_t new_entry[32];
  std::memcpy(new_entry, &link_dest, 4);
  if (klass > 0) {
    std::memcpy(new_entry + 4, old_entry + 4, 7 * klass);
    rt_free_[klass - 1].push_back(record.word & kValueMask);
  }
  std::memcpy(new_entry + 4 + 7 * klass, &rib, sizeof(rib));

  uint32_t slot;
  if (!rt_free_[new_class - 1].empty()) {
    slot = rt_free_[new_class - 1].back();
    rt_free_[new_class - 1].pop_back();
    rt_[new_class - 1]->Write(slot, new_entry);
  } else {
    slot = static_cast<uint32_t>(rt_[new_class - 1]->Append(new_entry));
  }
  SPINE_CHECK(slot <= kValueMask);
  lt_.Set(node,
          LtRecord{(new_class << kClassShift) | flags | slot, record.lel});
}

void DiskSpine::SetExtrib(NodeId node, NodeId dest, uint32_t pt, uint32_t prt,
                          NodeId parent_dest) {
  ExtribRecord record;
  record.dest = dest;
  record.parent_dest = parent_dest;
  bool pt_ovf = false, prt_ovf = false;
  record.pt = EncodeLabel(pt, &pt_ovf);
  record.prt = EncodeLabel(prt, &prt_ovf);
  record.flags = (pt_ovf ? 1 : 0) | (prt_ovf ? 2 : 0);
  uint32_t slot = static_cast<uint32_t>(extrib_records_.Append(record));
  extrib_slot_.emplace(node, slot);
  LtRecord lt = lt_.Get(node);
  lt.word |= kHasExtribBit;
  lt_.Set(node, lt);
}

std::optional<DiskSpine::ExtribView> DiskSpine::ExtribAt(NodeId node) const {
  if (node == kRootNode) return std::nullopt;
  LtRecord record = lt_.Get(node);
  if ((record.word & kHasExtribBit) == 0) return std::nullopt;
  auto it = extrib_slot_.find(node);
  if (it == extrib_slot_.end()) {
    LatchCorruption("extrib directory entry missing for node " +
                    std::to_string(node));
    return std::nullopt;
  }
  ExtribRecord e = extrib_records_.Get(it->second);
  ExtribView view;
  view.dest = e.dest;
  view.parent_dest = e.parent_dest;
  if ((e.flags & 1) && e.pt >= overflow_.size()) {
    LatchCorruption("extrib PT overflow index out of range");
    return std::nullopt;
  }
  if ((e.flags & 2) && e.prt >= overflow_.size()) {
    LatchCorruption("extrib PRT overflow index out of range");
    return std::nullopt;
  }
  view.pt = (e.flags & 1) ? overflow_[e.pt] : e.pt;
  view.prt = (e.flags & 2) ? overflow_[e.prt] : e.prt;
  return view;
}

Status DiskSpine::Append(char ch) {
  Code c = alphabet_.Encode(ch);
  if (c == kInvalidCode) {
    return Status::InvalidArgument(
        std::string("character '") + ch + "' is not in the " +
        alphabet_.name() + " alphabet");
  }
  if (size() >= kValueMask) {
    return Status::ResourceExhausted("disk SPINE node limit reached");
  }
  const NodeId old_tail = static_cast<NodeId>(size());
  const NodeId t = old_tail + 1;
  codes_.Append(c);
  if (has_io_error()) return ConsumeError();

  if (old_tail == kRootNode) {
    PushNode(kRootNode, 0);
    return PoolStatus();
  }
  NodeId w = LinkDest(old_tail);
  uint32_t lel = LinkLel(old_tail);
  while (true) {
    if (has_io_error()) return ConsumeError();
    if (codes_.Get(w) == c && !has_io_error()) {
      PushNode(w + 1, lel + 1);
      return PoolStatus();
    }
    RibView rib;
    if (!FindRibAt(w, c, &rib)) {
      if (has_io_error()) return ConsumeError();
      AddRib(w, c, t, lel);
      if (w == kRootNode) {
        PushNode(kRootNode, 0);
        return PoolStatus();
      }
      lel = LinkLel(w);
      w = LinkDest(w);
      continue;
    }
    if (rib.pt >= lel) {
      PushNode(rib.dest, lel + 1);
      return PoolStatus();
    }
    NodeId last_sibling_dest = rib.dest;
    uint32_t last_sibling_pt = rib.pt;
    NodeId x = rib.dest;
    while (true) {
      if (has_io_error()) return ConsumeError();
      std::optional<ExtribView> e = ExtribAt(x);
      if (!e.has_value()) break;
      if (e->prt == rib.pt && e->parent_dest == rib.dest) {
        if (e->pt >= lel) {
          PushNode(e->dest, lel + 1);
          return PoolStatus();
        }
        last_sibling_dest = e->dest;
        last_sibling_pt = e->pt;
      }
      x = e->dest;
    }
    SetExtrib(x, t, lel, rib.pt, rib.dest);
    PushNode(last_sibling_dest, last_sibling_pt + 1);
    return PoolStatus();
  }
}

Status DiskSpine::AppendString(std::string_view s) {
  for (char ch : s) {
    SPINE_RETURN_IF_ERROR(Append(ch));
  }
  return Status::OK();
}

StepResult DiskSpine::Step(NodeId node, Code c, uint32_t pathlen,
                           SearchStats* stats) const {
  StepResult result;
  if (stats != nullptr) ++stats->nodes_checked;
  if (node < size() && codes_.Get(node) == c && !has_io_error()) {
    result.ok = true;
    result.has_edge = true;
    result.dest = node + 1;
    return result;
  }
  RibView rib;
  if (!FindRibAt(node, c, &rib)) return result;
  result.has_edge = true;
  if (pathlen <= rib.pt) {
    result.ok = true;
    result.dest = rib.dest;
    return result;
  }
  result.fallback_dest = rib.dest;
  result.fallback_pt = rib.pt;
  NodeId x = rib.dest;
  while (true) {
    if (has_io_error()) return StepResult{};  // caller consumes the latch
    std::optional<ExtribView> e = ExtribAt(x);
    if (!e.has_value()) break;
    if (stats != nullptr) ++stats->chain_hops;
    if (e->prt == rib.pt && e->parent_dest == rib.dest) {
      if (e->pt >= pathlen) {
        result.ok = true;
        result.dest = e->dest;
        return result;
      }
      result.fallback_dest = e->dest;
      result.fallback_pt = e->pt;
    }
    x = e->dest;
  }
  return result;
}

bool DiskSpine::Contains(std::string_view pattern) const {
  return FindFirstEnd(pattern).has_value();
}

std::optional<NodeId> DiskSpine::FindFirstEnd(std::string_view pattern,
                                              SearchStats* stats) const {
  return GenericFindFirstEnd(*this, pattern, stats);
}

std::vector<uint32_t> DiskSpine::FindAll(std::string_view pattern,
                                         SearchStats* stats) const {
  return GenericFindAll(*this, pattern, stats);
}

Status DiskSpine::VerifyStructure() const {
  const uint64_t n = size();
  for (uint32_t c = 0; c < root_rib_dest_.size(); ++c) {
    uint32_t dest = root_rib_dest_[c];
    if (dest != kNoNode && dest > n) {
      return Status::Corruption("root rib for code " + std::to_string(c) +
                                " points beyond the tail");
    }
  }
  for (NodeId i = 1; i <= n; ++i) {
    LtRecord record = lt_.Get(i);
    SPINE_RETURN_IF_ERROR(PoolStatus());
    uint32_t klass = record.word >> kClassShift;
    if (klass > kClassBig) {
      return Status::Corruption("node " + std::to_string(i) +
                                ": invalid rib class " +
                                std::to_string(klass));
    }
    if ((record.word & kLelOverflowBit) && record.lel >= overflow_.size()) {
      return Status::Corruption("node " + std::to_string(i) +
                                ": LEL overflow index out of range");
    }
    NodeId dest = LinkDest(i);
    uint32_t lel = LinkLel(i);
    SPINE_RETURN_IF_ERROR(PoolStatus());
    if (dest >= i) {
      return Status::Corruption("node " + std::to_string(i) +
                                ": link destination " + std::to_string(dest) +
                                " is not upstream");
    }
    if (lel > dest) {
      return Status::Corruption("node " + std::to_string(i) + ": LEL " +
                                std::to_string(lel) +
                                " exceeds destination depth");
    }

    // Per-class slot validity and rib destinations.
    std::vector<PackedRib> ribs;
    if (klass == kClassBig) {
      auto it = rt_big_.find(i);
      if (it == rt_big_.end()) {
        return Status::Corruption("node " + std::to_string(i) +
                                  ": big rib entry missing");
      }
      ribs = it->second.ribs;
    } else if (klass >= 1) {
      uint32_t slot = record.word & kValueMask;
      if (slot >= rt_[klass - 1]->size()) {
        return Status::Corruption("node " + std::to_string(i) +
                                  ": rib slot out of range");
      }
      uint8_t entry[32];
      rt_[klass - 1]->Read(slot, entry);
      SPINE_RETURN_IF_ERROR(PoolStatus());
      for (uint32_t k = 0; k < klass; ++k) {
        PackedRib rib;
        std::memcpy(&rib, entry + 4 + 7 * k, sizeof(rib));
        ribs.push_back(rib);
      }
    }
    for (const PackedRib& rib : ribs) {
      if (rib.dest > n) {
        return Status::Corruption("node " + std::to_string(i) +
                                  ": rib destination beyond the tail");
      }
      if ((rib.cl & kClMask) >= alphabet_.size()) {
        return Status::Corruption("node " + std::to_string(i) +
                                  ": rib label outside the alphabet");
      }
      if ((rib.cl & kPtOverflowFlag) && rib.pt >= overflow_.size()) {
        return Status::Corruption("node " + std::to_string(i) +
                                  ": rib PT overflow index out of range");
      }
      // Extrib sibling chain: PT strictly increases, bounded hops.
      uint32_t rib_pt = RibPt(rib);
      uint32_t last_pt = rib_pt;
      NodeId x = rib.dest;
      for (uint64_t hops = 0;; ++hops) {
        if (hops > n + 1) {
          return Status::Corruption("node " + std::to_string(i) +
                                    ": extrib chain does not terminate");
        }
        std::optional<ExtribView> e = ExtribAt(x);
        SPINE_RETURN_IF_ERROR(PoolStatus());
        if (!e.has_value()) break;
        if (e->dest > n) {
          return Status::Corruption("extrib destination beyond the tail");
        }
        if (e->prt == rib_pt && e->parent_dest == rib.dest) {
          if (e->pt <= last_pt) {
            return Status::Corruption("node " + std::to_string(i) +
                                      ": extrib chain PT not increasing");
          }
          last_pt = e->pt;
        }
        x = e->dest;
      }
    }

    if (record.word & kHasExtribBit) {
      auto it = extrib_slot_.find(i);
      if (it == extrib_slot_.end()) {
        return Status::Corruption("node " + std::to_string(i) +
                                  ": extrib directory entry missing");
      }
      if (it->second >= extrib_records_.size()) {
        return Status::Corruption("node " + std::to_string(i) +
                                  ": extrib slot out of range");
      }
    }
  }
  return PoolStatus();
}

Status DiskSpine::Checkpoint() {
  SPINE_RETURN_IF_ERROR(pool_.FlushAll());
  SPINE_RETURN_IF_ERROR(file_.Sync());
  std::ofstream out(meta_path_, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open " + meta_path_ + ": " +
                           std::strerror(errno));
  }
  serde::Writer w(out);
  w.Pod(kMetaMagic);
  w.Pod(kMetaVersion);
  w.Pod(static_cast<uint32_t>(alphabet_.kind()));
  w.Pod<uint64_t>(allocator_.allocated());
  w.Pod<uint64_t>(codes_.size());
  w.Vec(codes_.page_table());
  w.Pod<uint64_t>(lt_.size());
  w.Vec(lt_.page_table());
  for (int k = 0; k < 4; ++k) {
    w.Pod<uint64_t>(rt_[k]->size());
    w.Vec(rt_[k]->page_table());
    w.Vec(rt_free_[k]);
  }
  w.Pod<uint64_t>(extrib_records_.size());
  w.Vec(extrib_records_.page_table());
  w.Vec(root_rib_dest_);
  std::vector<SlotPair> slots;
  slots.reserve(extrib_slot_.size());
  for (const auto& [node, slot] : extrib_slot_) slots.push_back({node, slot});
  w.Vec(slots);
  w.Pod<uint64_t>(rt_big_.size());
  for (const auto& [node, big] : rt_big_) {
    w.Pod(node);
    w.Pod(big.link_dest);
    w.Vec(big.ribs);
  }
  w.Vec(overflow_);
  w.WriteCrcFooter();
  out.flush();
  if (!out) {
    return Status::IoError("write failure on " + meta_path_ + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

Result<std::unique_ptr<DiskSpine>> DiskSpine::Open(const std::string& path,
                                                   const Options& options) {
  std::ifstream in(path + ".meta", std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open " + path + ".meta: " +
                           std::strerror(errno));
  }
  serde::Reader r(in);
  uint32_t magic = 0, version = 0, kind = 0;
  if (!r.Pod(&magic) || magic != kMetaMagic) {
    return Status::Corruption("bad metadata magic in " + path + ".meta");
  }
  if (!r.Pod(&version) || version != kMetaVersion) {
    return Status::Corruption("unsupported metadata version");
  }
  if (!r.Pod(&kind) || kind > 3) {
    return Status::Corruption("bad alphabet kind");
  }
  Alphabet alphabet = Alphabet::Dna();
  switch (static_cast<Alphabet::Kind>(kind)) {
    case Alphabet::Kind::kDna:
      break;
    case Alphabet::Kind::kProtein:
      alphabet = Alphabet::Protein();
      break;
    case Alphabet::Kind::kByte:
      return Status::Corruption(
          "disk indexes do not support the byte alphabet");
    case Alphabet::Kind::kAscii:
      alphabet = Alphabet::Ascii();
      break;
  }

  Result<PageFile> file =
      PageFile::Open(path, options.sync_mode, options.backend);
  if (!file.ok()) return file.status();
  std::unique_ptr<DiskSpine> index(
      new DiskSpine(alphabet, std::move(file).value(), options));
  index->meta_path_ = path + ".meta";

  auto corrupt = [&](const char* what) {
    return Status::Corruption(std::string("truncated metadata (") + what +
                              ") in " + path + ".meta");
  };
  uint64_t allocated = 0, size = 0;
  std::vector<uint64_t> table;
  if (!r.Pod(&allocated)) return corrupt("allocator");
  index->allocator_.Restore(allocated);
  if (!r.Pod(&size) || !r.Vec(&table)) return corrupt("codes");
  SPINE_RETURN_IF_ERROR(index->codes_.Restore(size, std::move(table)));
  if (!r.Pod(&size) || !r.Vec(&table)) return corrupt("link table");
  if (size != index->codes_.size() + 1) {
    return Status::Corruption("LT/codes size mismatch in " + path + ".meta");
  }
  SPINE_RETURN_IF_ERROR(index->lt_.Restore(size, std::move(table)));
  for (int k = 0; k < 4; ++k) {
    if (!r.Pod(&size) || !r.Vec(&table)) return corrupt("rib table");
    SPINE_RETURN_IF_ERROR(index->rt_[k]->Restore(size, std::move(table)));
    if (!r.Vec(&index->rt_free_[k])) return corrupt("rib free list");
  }
  if (!r.Pod(&size) || !r.Vec(&table)) return corrupt("extrib records");
  SPINE_RETURN_IF_ERROR(index->extrib_records_.Restore(size, std::move(table)));
  if (!r.Vec(&index->root_rib_dest_)) return corrupt("root ribs");
  if (index->root_rib_dest_.size() != alphabet.size()) {
    return Status::Corruption("root rib table size mismatch");
  }
  std::vector<SlotPair> slots;
  if (!r.Vec(&slots)) return corrupt("extrib directory");
  for (const SlotPair& pair : slots) {
    index->extrib_slot_.emplace(pair.node, pair.slot);
  }
  uint64_t big_count = 0;
  if (!r.Pod(&big_count)) return corrupt("big entries");
  for (uint64_t i = 0; i < big_count; ++i) {
    uint32_t node = 0;
    BigEntry big;
    if (!r.Pod(&node) || !r.Pod(&big.link_dest) || !r.Vec(&big.ribs)) {
      return corrupt("big entry");
    }
    index->rt_big_.emplace(node, std::move(big));
  }
  if (!r.Vec(&index->overflow_)) return corrupt("overflow table");
  if (!r.VerifyCrcFooter()) {
    return Status::Corruption("metadata checksum mismatch in " + path +
                              ".meta");
  }
  // The page file must hold exactly the pages the metadata names;
  // a mismatched sidecar/page-file pair would read unwritten pages as
  // zeros and silently answer from them.
  if (index->allocator_.allocated() != index->file_.page_count()) {
    return Status::Corruption(
        path + ": metadata names " +
        std::to_string(index->allocator_.allocated()) +
        " pages but the page file holds " +
        std::to_string(index->file_.page_count()));
  }
  return index;
}

uint64_t DiskSpine::MetadataBytes() const {
  uint64_t total = codes_.MetadataBytes() + lt_.MetadataBytes() +
                   extrib_records_.MetadataBytes() +
                   root_rib_dest_.capacity() * sizeof(uint32_t) +
                   overflow_.capacity() * sizeof(uint32_t) +
                   extrib_slot_.size() * (8 + 32);
  for (uint32_t k = 0; k < 4; ++k) {
    total += rt_[k]->MetadataBytes() +
             rt_free_[k].capacity() * sizeof(uint32_t);
  }
  for (const auto& [node, big] : rt_big_) {
    total += sizeof(BigEntry) + big.ribs.capacity() * sizeof(PackedRib) + 32;
  }
  return total;
}

}  // namespace spine::storage
