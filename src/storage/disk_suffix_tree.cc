#include "storage/disk_suffix_tree.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>

#include "common/check.h"
#include "common/serde.h"

namespace spine::storage {

namespace {
constexpr uint32_t kTreeMetaMagic = 0x53544d44;  // "STMD"
constexpr uint32_t kTreeMetaVersion = 2;         // v2: CRC32C footer
}  // namespace

DiskSuffixTree::DiskSuffixTree(const Alphabet& alphabet, PageFile file,
                               const Options& options)
    : alphabet_(alphabet),
      file_(std::move(file)),
      pool_(&file_, options.pool_frames, options.policy),
      text_(&pool_, &allocator_, alphabet.bits_per_code()),
      nodes_(&pool_, &allocator_) {}

Result<std::unique_ptr<DiskSuffixTree>> DiskSuffixTree::Create(
    const Alphabet& alphabet, const std::string& path,
    const Options& options) {
  Result<PageFile> file =
      PageFile::Create(path, options.sync_mode, options.backend);
  if (!file.ok()) return file.status();
  std::unique_ptr<DiskSuffixTree> tree(
      new DiskSuffixTree(alphabet, std::move(file).value(), options));
  tree->meta_path_ = path + ".meta";
  tree->nodes_.Append(Node{});  // root
  if (tree->pool_.has_error()) return tree->pool_.ConsumeError();
  return tree;
}

Status DiskSuffixTree::Checkpoint() {
  SPINE_RETURN_IF_ERROR(pool_.FlushAll());
  SPINE_RETURN_IF_ERROR(file_.Sync());
  std::ofstream out(meta_path_, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open " + meta_path_ + ": " +
                           std::strerror(errno));
  }
  serde::Writer w(out);
  w.Pod(kTreeMetaMagic);
  w.Pod(kTreeMetaVersion);
  w.Pod(static_cast<uint32_t>(alphabet_.kind()));
  w.Pod<uint64_t>(allocator_.allocated());
  w.Pod<uint64_t>(text_.size());
  w.Vec(text_.page_table());
  w.Pod<uint64_t>(nodes_.size());
  w.Vec(nodes_.page_table());
  w.Pod(active_node_);
  w.Pod(active_edge_);
  w.Pod(active_length_);
  w.Pod(remainder_);
  w.Pod(need_suffix_link_);
  w.WriteCrcFooter();
  out.flush();
  if (!out) {
    return Status::IoError("write failure on " + meta_path_ + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

Result<std::unique_ptr<DiskSuffixTree>> DiskSuffixTree::Open(
    const std::string& path, const Options& options) {
  std::ifstream in(path + ".meta", std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open " + path + ".meta: " +
                           std::strerror(errno));
  }
  serde::Reader r(in);
  uint32_t magic = 0, version = 0, kind = 0;
  if (!r.Pod(&magic) || magic != kTreeMetaMagic) {
    return Status::Corruption("bad metadata magic in " + path + ".meta");
  }
  if (!r.Pod(&version) || version != kTreeMetaVersion) {
    return Status::Corruption("unsupported metadata version");
  }
  if (!r.Pod(&kind) || kind > 3 ||
      kind == static_cast<uint32_t>(Alphabet::Kind::kByte)) {
    return Status::Corruption("bad alphabet kind");
  }
  Alphabet alphabet = Alphabet::Dna();
  if (kind == static_cast<uint32_t>(Alphabet::Kind::kProtein)) {
    alphabet = Alphabet::Protein();
  } else if (kind == static_cast<uint32_t>(Alphabet::Kind::kAscii)) {
    alphabet = Alphabet::Ascii();
  }
  Result<PageFile> file =
      PageFile::Open(path, options.sync_mode, options.backend);
  if (!file.ok()) return file.status();
  std::unique_ptr<DiskSuffixTree> tree(
      new DiskSuffixTree(alphabet, std::move(file).value(), options));
  tree->meta_path_ = path + ".meta";

  auto corrupt = [&](const char* what) {
    return Status::Corruption(std::string("truncated metadata (") + what +
                              ") in " + path + ".meta");
  };
  uint64_t allocated = 0, size = 0;
  std::vector<uint64_t> table;
  if (!r.Pod(&allocated)) return corrupt("allocator");
  tree->allocator_.Restore(allocated);
  if (!r.Pod(&size) || !r.Vec(&table)) return corrupt("text");
  SPINE_RETURN_IF_ERROR(tree->text_.Restore(size, std::move(table)));
  if (!r.Pod(&size) || !r.Vec(&table)) return corrupt("nodes");
  SPINE_RETURN_IF_ERROR(tree->nodes_.Restore(size, std::move(table)));
  if (!r.Pod(&tree->active_node_) || !r.Pod(&tree->active_edge_) ||
      !r.Pod(&tree->active_length_) || !r.Pod(&tree->remainder_) ||
      !r.Pod(&tree->need_suffix_link_)) {
    return corrupt("construction state");
  }
  if (!r.VerifyCrcFooter()) {
    return Status::Corruption("metadata checksum mismatch in " + path +
                              ".meta");
  }
  if (tree->active_node_ >= tree->nodes_.size()) {
    return Status::Corruption("active node out of range");
  }
  if (tree->allocator_.allocated() != tree->file_.page_count()) {
    return Status::Corruption(
        path + ": metadata names " +
        std::to_string(tree->allocator_.allocated()) +
        " pages but the page file holds " +
        std::to_string(tree->file_.page_count()));
  }
  return tree;
}

uint32_t DiskSuffixTree::NewNode(uint32_t start, uint32_t end) {
  return static_cast<uint32_t>(
      nodes_.Append(Node{start, end, kRoot, kNoNode32, kNoNode32, kNoNode32}));
}

void DiskSuffixTree::AddChild(uint32_t parent, uint32_t child) {
  Node p = nodes_.Get(parent);
  Node ch = nodes_.Get(child);
  ch.next_sibling = p.first_child;
  p.first_child = child;
  nodes_.Set(child, ch);
  nodes_.Set(parent, p);
}

void DiskSuffixTree::ReplaceChild(uint32_t parent, uint32_t old_child,
                                  uint32_t new_child) {
  Node p = nodes_.Get(parent);
  Node oldn = nodes_.Get(old_child);
  if (p.first_child == old_child) {
    p.first_child = new_child;
    nodes_.Set(parent, p);
  } else {
    uint32_t cur = p.first_child;
    while (true) {
      if (pool_.has_error()) return;  // zeroed reads would loop forever
      Node n = nodes_.Get(cur);
      if (n.next_sibling == old_child) {
        n.next_sibling = new_child;
        nodes_.Set(cur, n);
        break;
      }
      SPINE_DCHECK(n.next_sibling != kNoNode32);
      cur = n.next_sibling;
    }
  }
  Node newn = nodes_.Get(new_child);
  newn.next_sibling = oldn.next_sibling;
  nodes_.Set(new_child, newn);
  oldn.next_sibling = kNoNode32;
  nodes_.Set(old_child, oldn);
}

uint32_t DiskSuffixTree::FindChild(uint32_t parent, Code c,
                                   SearchStats* stats) const {
  uint32_t child = nodes_.Get(parent).first_child;
  while (child != kNoNode32) {
    if (pool_.has_error()) return kNoNode32;  // zeroed links would cycle
    if (stats != nullptr) ++stats->nodes_checked;
    Node n = nodes_.Get(child);
    if (text_.Get(n.start) == c && !pool_.has_error()) return child;
    child = n.next_sibling;
  }
  return kNoNode32;
}

Status DiskSuffixTree::Append(char ch) {
  Code c = alphabet_.Encode(ch);
  if (c == kInvalidCode) {
    return Status::InvalidArgument(
        std::string("character '") + ch + "' is not in the " +
        alphabet_.name() + " alphabet");
  }
  ExtendWithCode(c);
  if (pool_.has_error()) return pool_.ConsumeError();
  return Status::OK();
}

Status DiskSuffixTree::AppendString(std::string_view s) {
  for (char ch : s) {
    SPINE_RETURN_IF_ERROR(Append(ch));
  }
  return Status::OK();
}

void DiskSuffixTree::ExtendWithCode(Code c) {
  text_.Append(c);
  const uint32_t pos = static_cast<uint32_t>(text_.size() - 1);
  need_suffix_link_ = kNoNode32;
  ++remainder_;

  auto add_suffix_link = [&](uint32_t node) {
    if (need_suffix_link_ != kNoNode32) {
      Node n = nodes_.Get(need_suffix_link_);
      n.suffix_link = node;
      nodes_.Set(need_suffix_link_, n);
    }
    need_suffix_link_ = node;
  };

  while (remainder_ > 0) {
    if (pool_.has_error()) return;  // bail; Append surfaces the latch
    if (active_length_ == 0) active_edge_ = pos;
    uint32_t child = FindChild(active_node_, text_.Get(active_edge_), nullptr);
    if (child == kNoNode32) {
      uint32_t leaf = NewNode(pos, kOpenEnd);
      Node leafn = nodes_.Get(leaf);
      leafn.suffix_index = pos + 1 - remainder_;
      nodes_.Set(leaf, leafn);
      AddChild(active_node_, leaf);
      add_suffix_link(active_node_);
    } else {
      uint32_t edge_len = EdgeLength(child);
      if (active_length_ >= edge_len) {
        active_edge_ += edge_len;
        active_length_ -= edge_len;
        active_node_ = child;
        continue;
      }
      Node childn = nodes_.Get(child);
      if (text_.Get(childn.start + active_length_) == c) {
        ++active_length_;
        add_suffix_link(active_node_);
        break;
      }
      uint32_t split = NewNode(childn.start, childn.start + active_length_);
      ReplaceChild(active_node_, child, split);
      childn = nodes_.Get(child);
      childn.start += active_length_;
      nodes_.Set(child, childn);
      AddChild(split, child);
      uint32_t leaf = NewNode(pos, kOpenEnd);
      Node leafn = nodes_.Get(leaf);
      leafn.suffix_index = pos + 1 - remainder_;
      nodes_.Set(leaf, leafn);
      AddChild(split, leaf);
      add_suffix_link(split);
    }
    --remainder_;
    if (active_node_ == kRoot && active_length_ > 0) {
      --active_length_;
      active_edge_ = pos - remainder_ + 1;
    } else if (active_node_ != kRoot) {
      active_node_ = nodes_.Get(active_node_).suffix_link;
    }
  }
}

bool DiskSuffixTree::Contains(std::string_view pattern,
                              SearchStats* stats) const {
  if (pattern.empty()) return true;
  uint32_t node = kRoot;
  size_t i = 0;
  while (i < pattern.size()) {
    if (pool_.has_error()) return false;  // caller consumes the latch
    Code c = alphabet_.Encode(pattern[i]);
    if (c == kInvalidCode) return false;
    uint32_t child = FindChild(node, c, stats);
    if (child == kNoNode32) return false;
    Node childn = nodes_.Get(child);
    uint32_t end = childn.end == kOpenEnd
                       ? static_cast<uint32_t>(text_.size())
                       : childn.end;
    for (uint32_t k = childn.start; k < end && i < pattern.size(); ++k, ++i) {
      Code pc = alphabet_.Encode(pattern[i]);
      if (pc == kInvalidCode || text_.Get(k) != pc) return false;
    }
    node = child;
  }
  return true;
}

std::vector<uint32_t> DiskSuffixTree::FindAll(std::string_view pattern,
                                              SearchStats* stats) const {
  std::vector<uint32_t> out;
  if (pattern.empty() || pattern.size() > text_.size()) return out;
  uint32_t node = kRoot;
  size_t i = 0;
  while (i < pattern.size()) {
    if (pool_.has_error()) return out;  // caller consumes the latch
    Code c = alphabet_.Encode(pattern[i]);
    if (c == kInvalidCode) return out;
    uint32_t child = FindChild(node, c, stats);
    if (child == kNoNode32) return out;
    Node childn = nodes_.Get(child);
    uint32_t end = childn.end == kOpenEnd
                       ? static_cast<uint32_t>(text_.size())
                       : childn.end;
    for (uint32_t k = childn.start; k < end && i < pattern.size(); ++k, ++i) {
      Code pc = alphabet_.Encode(pattern[i]);
      if (pc == kInvalidCode || text_.Get(k) != pc) return out;
    }
    node = child;
  }
  CollectLeaves(node, &out);
  // Occurrences covered only by still-implicit suffixes (see the
  // in-memory SuffixTree::FindAll).
  const uint32_t n = static_cast<uint32_t>(text_.size());
  const uint32_t m = static_cast<uint32_t>(pattern.size());
  for (uint32_t j = n - remainder_; j + m <= n && !pool_.has_error(); ++j) {
    bool match = true;
    for (uint32_t k = 0; k < m; ++k) {
      if (text_.Get(j + k) != alphabet_.Encode(pattern[k])) {
        match = false;
        break;
      }
    }
    if (match) out.push_back(j);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void DiskSuffixTree::CollectLeaves(uint32_t id,
                                   std::vector<uint32_t>* out) const {
  Node root = nodes_.Get(id);
  if (root.first_child == kNoNode32) {
    if (root.suffix_index != kNoNode32) out->push_back(root.suffix_index);
    return;
  }
  std::vector<uint32_t> stack = {root.first_child};
  while (!stack.empty()) {
    if (pool_.has_error()) return;  // zeroed links would cycle
    uint32_t cur = stack.back();
    stack.pop_back();
    for (uint32_t id2 = cur; id2 != kNoNode32 && !pool_.has_error();) {
      Node n = nodes_.Get(id2);
      if (n.first_child == kNoNode32) {
        if (n.suffix_index != kNoNode32) out->push_back(n.suffix_index);
      } else {
        stack.push_back(n.first_child);
      }
      id2 = n.next_sibling;
    }
  }
}

}  // namespace spine::storage
