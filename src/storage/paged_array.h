// PagedArray<Stride>: a growable array of fixed-size records stored in
// pages fetched through a shared BufferPool. Several arrays share one
// pool/file; each keeps its own page table (page ids allocated from the
// shared allocator as the array grows), so the on-disk interleaving of
// LT and RT pages mirrors a real single-file index build.
//
// I/O failures do not abort: a failed fetch latches an error on the
// pool and Read yields a zeroed record (Write becomes a no-op). Callers
// are expected to poll pool->has_error() at loop boundaries and
// propagate pool->ConsumeError() — zeroed records keep any traversal
// that runs a few more steps inside safe index ranges.

#ifndef SPINE_STORAGE_PAGED_ARRAY_H_
#define SPINE_STORAGE_PAGED_ARRAY_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/check.h"
#include "storage/buffer_pool.h"

namespace spine::storage {

// Monotonic page-id allocator shared by all arrays of one index file.
class PageAllocator {
 public:
  uint64_t Allocate() { return next_++; }
  uint64_t allocated() const { return next_; }
  // For reopening a persisted index.
  void Restore(uint64_t next) { next_ = next; }

 private:
  uint64_t next_ = 0;
};

// Fixed-record-size array over a buffer pool. Records never straddle
// pages (records_per_page = kPagePayloadSize / record_size).
class PagedRecordArray {
 public:
  PagedRecordArray(BufferPool* pool, PageAllocator* allocator,
                   uint32_t record_size)
      : pool_(pool), allocator_(allocator), record_size_(record_size) {
    SPINE_CHECK(record_size >= 1 && record_size <= kPagePayloadSize);
    records_per_page_ = kPagePayloadSize / record_size;
  }

  uint64_t size() const { return size_; }

  // Appends a record; returns its index.
  uint64_t Append(const void* record) {
    uint64_t index = size_++;
    uint64_t page_slot = index / records_per_page_;
    if (page_slot >= page_table_.size()) {
      page_table_.push_back(allocator_->Allocate());
    }
    Write(index, record);
    return index;
  }

  void Read(uint64_t index, void* out) const {
    SPINE_DCHECK(index < size_);
    const uint8_t* page = pool_->FetchPage(PageFor(index), false);
    if (page == nullptr) {
      // Error latched on the pool; zeroed record keeps callers in range.
      std::memset(out, 0, record_size_);
      return;
    }
    std::memcpy(out, page + Offset(index), record_size_);
  }

  void Write(uint64_t index, const void* record) {
    SPINE_DCHECK(index < size_);
    uint8_t* page = pool_->FetchPage(PageFor(index), true);
    if (page == nullptr) return;  // error latched on the pool
    std::memcpy(page + Offset(index), record, record_size_);
  }

  // In-memory metadata footprint (the page table).
  uint64_t MetadataBytes() const {
    return page_table_.capacity() * sizeof(uint64_t);
  }
  uint64_t PagesUsed() const { return page_table_.size(); }

  // Persistence support: the page table IS the array's metadata.
  const std::vector<uint64_t>& page_table() const { return page_table_; }
  [[nodiscard]] Status Restore(uint64_t size,
                               std::vector<uint64_t> page_table) {
    uint64_t want = (size + records_per_page_ - 1) / records_per_page_;
    if (page_table.size() != want) {
      return Status::Corruption(
          "paged array metadata: " + std::to_string(page_table.size()) +
          " pages listed, " + std::to_string(want) + " required for " +
          std::to_string(size) + " records");
    }
    size_ = size;
    page_table_ = std::move(page_table);
    return Status::OK();
  }

 private:
  uint64_t PageFor(uint64_t index) const {
    return page_table_[index / records_per_page_];
  }
  uint32_t Offset(uint64_t index) const {
    return static_cast<uint32_t>(index % records_per_page_) * record_size_;
  }

  BufferPool* pool_;
  PageAllocator* allocator_;
  uint32_t record_size_;
  uint32_t records_per_page_;
  uint64_t size_ = 0;
  std::vector<uint64_t> page_table_;
};

// Typed convenience wrapper.
template <typename T>
class PagedArray {
 public:
  PagedArray(BufferPool* pool, PageAllocator* allocator)
      : raw_(pool, allocator, sizeof(T)) {}

  uint64_t size() const { return raw_.size(); }
  uint64_t Append(const T& value) { return raw_.Append(&value); }
  T Get(uint64_t index) const {
    T out;
    raw_.Read(index, &out);
    return out;
  }
  void Set(uint64_t index, const T& value) { raw_.Write(index, &value); }
  uint64_t MetadataBytes() const { return raw_.MetadataBytes(); }
  uint64_t PagesUsed() const { return raw_.PagesUsed(); }
  const std::vector<uint64_t>& page_table() const {
    return raw_.page_table();
  }
  [[nodiscard]] Status Restore(uint64_t size,
                               std::vector<uint64_t> page_table) {
    return raw_.Restore(size, std::move(page_table));
  }

 private:
  PagedRecordArray raw_;
};

}  // namespace spine::storage

#endif  // SPINE_STORAGE_PAGED_ARRAY_H_
