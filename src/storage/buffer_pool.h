// BufferPool: fixed-budget page cache with pluggable replacement.
//
// Policies:
//   kLru     — classic least-recently-used.
//   kClock   — second-chance clock (cheaper bookkeeping).
//   kPinTop  — the paper's SPINE-specific strategy (Section 6.2): link
//              destinations skew heavily toward the top of the backbone
//              (Fig. 8), so "retain as much as possible of the top part
//              of the Link Table in memory". Implemented as a hybrid:
//              a quarter of the frames is reserved for the lowest page
//              ids (the top of the backbone — pages are allocated in
//              append order); the remaining frames run plain LRU. Pure
//              evict-the-deepest-page turns sequential scans into
//              thrashing, so the protected set is capped.
//
// Integrity (PR 2): every page carries an 8-byte header — CRC32C over
// the rest of the page plus the low 32 bits of the logical page id
// (see page_file.h). The pool verifies the header on every miss (with
// one immediate re-read to heal transient bus/bit-flip errors) and
// seals it on every writeback. FetchPage hands out the payload region
// only; callers address kPagePayloadSize bytes per page.
//
// Error latch: FetchPage returns nullptr on I/O error or checksum
// mismatch and latches a sticky Status (à la ostream/sqlite) readable
// via has_error()/ConsumeError(). While latched, further fetches fail
// fast; callers that consumed a record from a failed fetch observe
// zeroed data, which the traversal layers treat as "bail out now".
//
// Single-threaded by design (the paper's experiments are single
// threaded); a fetched pointer stays valid until the next Fetch call on
// the same pool.

#ifndef SPINE_STORAGE_BUFFER_POOL_H_
#define SPINE_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/cancel.h"
#include "common/status.h"
#include "storage/page_file.h"

namespace spine::storage {

enum class ReplacementPolicy { kLru, kClock, kPinTop };

const char* PolicyName(ReplacementPolicy policy);

struct IoStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t dirty_writebacks = 0;
  // Checksum mismatches observed on fault-in, and how many of those a
  // single immediate re-read healed. failures == healed when every
  // fault was transient; the difference is real on-medium corruption.
  uint64_t checksum_failures = 0;
  uint64_t healed_rereads = 0;

  uint64_t accesses() const { return hits + misses; }
  double HitRate() const {
    return accesses() == 0 ? 0.0
                           : static_cast<double>(hits) /
                                 static_cast<double>(accesses());
  }
};

class BufferPool {
 public:
  // `frames` is the memory budget in pages. The pool does not own the
  // file; it must outlive the pool.
  BufferPool(PageFile* file, uint32_t frames, ReplacementPolicy policy);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Returns the payload region (kPagePayloadSize bytes) for `page_id`,
  // faulting the page in and verifying its checksum if necessary. With
  // mark_dirty the page is written back (resealed) on eviction/flush.
  // Returns nullptr on I/O error or corruption; the error latches (see
  // has_error()/ConsumeError()) and further fetches fail fast until it
  // is consumed.
  uint8_t* FetchPage(uint64_t page_id, bool mark_dirty);

  Status FlushAll();

  const IoStats& stats() const { return stats_; }
  void ResetStats() { stats_ = IoStats{}; }
  uint32_t frame_count() const { return static_cast<uint32_t>(frames_.size()); }
  uint64_t MemoryBytes() const { return arena_.size(); }

  // Scopes a CancelToken onto the pool (storage backends forward it
  // from core/query.h ExecuteQuery for the duration of one query; null
  // clears it). FetchPage polls the token before faulting a page in —
  // the page-miss path is the natural deadline checkpoint for paged
  // walks, where one miss may cost a disk round-trip — and a fired
  // token latches exactly like an I/O error: the fetch returns nullptr,
  // the traversal runs out on zeroed records, and ConsumeError()
  // reports kDeadlineExceeded / kCancelled. Pool hits never poll, so
  // in-memory-resident walks pay nothing here.
  void SetCancelToken(const CancelToken* cancel) { cancel_ = cancel; }

  bool has_error() const { return !last_error_.ok(); }
  const Status& last_error() const { return last_error_; }
  // Returns the latched error (or OK) and clears the latch.
  Status ConsumeError() {
    Status status = std::move(last_error_);
    last_error_ = Status::OK();
    return status;
  }

 private:
  struct Frame {
    uint64_t page_id = 0;
    bool valid = false;
    bool dirty = false;
    bool referenced = false;  // clock bit
  };

  uint8_t* FrameData(uint32_t frame) {
    return arena_.data() + static_cast<uint64_t>(frame) * kPageSize;
  }
  // Chooses a victim frame according to the policy.
  uint32_t PickVictim();
  void Touch(uint32_t frame);
  // Writes a frame back with a freshly sealed checksum header.
  Status WriteBack(uint32_t frame);
  // Reads and checksum-verifies a page into a frame, retrying the read
  // once on mismatch (a transient fault heals; real corruption stays).
  Status ReadAndVerify(uint64_t page_id, uint8_t* raw);

  PageFile* file_;
  ReplacementPolicy policy_;
  std::vector<Frame> frames_;
  std::vector<uint8_t> arena_;
  std::unordered_map<uint64_t, uint32_t> page_to_frame_;

  // True when `page_id` belongs to the pin-top protected set.
  bool Protected(uint64_t page_id) const {
    return policy_ == ReplacementPolicy::kPinTop &&
           page_id < protected_pages_;
  }

  // LRU bookkeeping (also used by kPinTop for the unprotected frames):
  // most recent at front.
  std::list<uint32_t> lru_;
  std::vector<std::list<uint32_t>::iterator> lru_pos_;
  uint64_t protected_pages_ = 0;  // pin-top: page ids below this stay
  uint32_t clock_hand_ = 0;
  uint32_t next_free_ = 0;

  IoStats stats_;
  Status last_error_;
  const CancelToken* cancel_ = nullptr;  // scoped per query, not owned
};

}  // namespace spine::storage

#endif  // SPINE_STORAGE_BUFFER_POOL_H_
