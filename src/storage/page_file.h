// PageFile: fixed-size-page file I/O for the disk-resident experiments
// (Section 6.2). Supports a synchronous-write mode mirroring the
// paper's O_SYNC setup ("indexes were constructed using synchronous I/O
// for writes to minimize the modulation of the locality behavior").

#ifndef SPINE_STORAGE_PAGE_FILE_H_
#define SPINE_STORAGE_PAGE_FILE_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace spine::storage {

inline constexpr uint32_t kPageSize = 4096;

class PageFile {
 public:
  enum class SyncMode {
    kNone,            // rely on the OS page cache
    kSyncEveryWrite,  // fdatasync after every page write (paper's O_SYNC)
  };

  // Creates (truncating) a page file at `path`.
  static Result<PageFile> Create(const std::string& path, SyncMode mode);
  // Opens an existing page file for read/write.
  static Result<PageFile> Open(const std::string& path, SyncMode mode);

  ~PageFile();
  PageFile(PageFile&& other) noexcept;
  PageFile& operator=(PageFile&& other) noexcept;
  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  // Reads page `page_id` into `out` (kPageSize bytes). Pages never
  // written read back as zeros (the file is grown on write).
  Status ReadPage(uint64_t page_id, uint8_t* out);
  Status WritePage(uint64_t page_id, const uint8_t* data);
  Status Sync();

  uint64_t pages_written() const { return pages_written_; }
  uint64_t pages_read() const { return pages_read_; }
  uint64_t page_count() const { return page_count_; }

 private:
  PageFile(int fd, SyncMode mode) : fd_(fd), mode_(mode) {}

  int fd_ = -1;
  SyncMode mode_ = SyncMode::kNone;
  uint64_t page_count_ = 0;
  uint64_t pages_written_ = 0;
  uint64_t pages_read_ = 0;
};

}  // namespace spine::storage

#endif  // SPINE_STORAGE_PAGE_FILE_H_
