// PageFile: fixed-size-page file I/O for the disk-resident experiments
// (Section 6.2). Supports a synchronous-write mode mirroring the
// paper's O_SYNC setup ("indexes were constructed using synchronous I/O
// for writes to minimize the modulation of the locality behavior").
//
// Layout (PR 2): physical page 0 is a versioned, checksummed
// superblock; logical page i lives at physical page i + 1. Every raw
// operation goes through a pluggable IoBackend so the fault-injection
// harness can exercise the whole storage stack. Data-page payloads are
// checksummed one level up, by the BufferPool (see buffer_pool.h for
// the page header format).

#ifndef SPINE_STORAGE_PAGE_FILE_H_
#define SPINE_STORAGE_PAGE_FILE_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "storage/io_backend.h"

namespace spine::storage {

inline constexpr uint32_t kPageSize = 4096;

// Per-page header maintained by the BufferPool: CRC32C over the rest
// of the page, plus the low 32 bits of the logical page id (catches
// misdirected reads/writes). An all-zero page is a never-written page
// and is exempt from verification.
inline constexpr uint32_t kPageHeaderSize = 8;
inline constexpr uint32_t kPagePayloadSize = kPageSize - kPageHeaderSize;

// Verifies the checksum header of a raw page image (kPageSize bytes)
// as read from logical page `page_id`. Used by the BufferPool on every
// miss and by `spine verify` when scanning a whole file.
Status VerifyPageChecksum(uint64_t page_id, const uint8_t* page);
// Fills in the checksum header prior to writing the page out.
void SealPageChecksum(uint64_t page_id, uint8_t* page);

class PageFile {
 public:
  enum class SyncMode {
    kNone,            // rely on the OS page cache
    kSyncEveryWrite,  // fdatasync after every page write (paper's O_SYNC)
  };

  // Creates (truncating) a page file at `path` and writes a fresh
  // superblock. A null backend selects the POSIX backend.
  static Result<PageFile> Create(const std::string& path, SyncMode mode,
                                 IoBackend* backend = nullptr);
  // Opens an existing page file for read/write, validating the
  // superblock (magic, version, page size, checksum).
  static Result<PageFile> Open(const std::string& path, SyncMode mode,
                               IoBackend* backend = nullptr);

  ~PageFile();
  PageFile(PageFile&& other) noexcept;
  PageFile& operator=(PageFile&& other) noexcept;
  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  // Reads logical page `page_id` into `out` (kPageSize bytes). Pages
  // never written read back as zeros (the file is grown on write).
  Status ReadPage(uint64_t page_id, uint8_t* out);
  Status WritePage(uint64_t page_id, const uint8_t* data);
  // Persists the superblock (with the current page count) and syncs.
  Status Sync();

  uint64_t pages_written() const { return pages_written_; }
  uint64_t pages_read() const { return pages_read_; }
  uint64_t page_count() const { return page_count_; }

 private:
  PageFile(IoBackend* backend, int handle, SyncMode mode)
      : backend_(backend), handle_(handle), mode_(mode) {}

  Status WriteSuperblock();

  IoBackend* backend_ = nullptr;
  int handle_ = -1;
  SyncMode mode_ = SyncMode::kNone;
  uint64_t page_count_ = 0;
  uint64_t pages_written_ = 0;
  uint64_t pages_read_ = 0;
};

}  // namespace spine::storage

#endif  // SPINE_STORAGE_PAGE_FILE_H_
