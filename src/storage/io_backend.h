// IoBackend: the pluggable raw-I/O seam underneath PageFile.
//
// Production code runs on PosixIoBackend (pread/pwrite/fdatasync).
// Tests run the same storage stack over FaultInjectingBackend, which
// wraps another backend and injects media failures — EIO on
// read/write/sync, short writes, torn pages (only a prefix persisted,
// success reported), and silent bit flips — either scripted ("fail the
// 3rd write from now") or randomized from a deterministic seed. This is
// how the system-wide robustness contract is enforced: under any fault
// schedule, every query returns a correct answer or a clean Status —
// never a crash, never a silently wrong answer.
//
// Backends are stateless with respect to files (handles carry the
// state), so one backend instance may serve many PageFiles.
// FaultInjectingBackend's scheduling state is mutex-guarded: tests may
// rearm or disable schedules while engine workers are mid-I/O (the
// serve-layer deadline tests reconfigure stalls under a live server).

#ifndef SPINE_STORAGE_IO_BACKEND_H_
#define SPINE_STORAGE_IO_BACKEND_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>

#include "common/rng.h"
#include "common/status.h"

namespace spine::storage {

class IoBackend {
 public:
  virtual ~IoBackend() = default;

  // Opens (or creates+truncates) the file; returns an opaque handle.
  virtual Result<int> Open(const std::string& path, bool create) = 0;
  virtual void Close(int handle) = 0;
  virtual Result<uint64_t> Size(int handle) = 0;

  // Reads up to `n` bytes at `offset`; *bytes_read < n only at EOF.
  virtual Status Read(int handle, uint64_t offset, void* buf, size_t n,
                      size_t* bytes_read) = 0;
  // Writes exactly `n` bytes at `offset` or returns an error.
  virtual Status Write(int handle, uint64_t offset, const void* buf,
                       size_t n) = 0;
  virtual Status Sync(int handle) = 0;
};

// The process-wide POSIX backend (singleton; never deleted).
IoBackend* PosixIoBackend();

// Deterministic fault-injecting wrapper around another backend.
class FaultInjectingBackend : public IoBackend {
 public:
  enum class FaultKind : uint8_t {
    kReadError,   // read fails with an injected-EIO Status
    kWriteError,  // write fails, nothing persisted
    kSyncError,   // sync fails
    kShortWrite,  // a prefix is persisted, then the write fails
    kTornPage,    // a prefix is persisted, success is reported
    kBitFlip,     // read succeeds but one bit of the buffer is flipped
  };

  explicit FaultInjectingBackend(IoBackend* delegate = PosixIoBackend())
      : delegate_(delegate) {}

  // --- Scripted faults: arm a one-shot fault on the nth upcoming op
  // of its class (nth = 1 means the very next one). Multiple scheduled
  // faults on the same class stack independently.
  void ScheduleReadFault(FaultKind kind, uint64_t nth = 1);   // EIO/bit flip
  void ScheduleWriteFault(FaultKind kind, uint64_t nth = 1);  // EIO/short/torn
  void ScheduleSyncFault(uint64_t nth = 1);

  // --- Randomized faults: every op independently draws from a
  // deterministic seeded stream and fails with probability `rate`
  // (fault kind drawn uniformly among the kinds valid for the op).
  void EnableRandomFaults(uint64_t seed, double rate);
  void DisableRandomFaults() {
    std::lock_guard<std::mutex> lock(mu_);
    random_rate_ = 0.0;
  }

  // --- Injected latency: a stall sleeps the calling thread for
  // `micros` before the (otherwise successful) read proceeds —
  // deterministic slow I/O for deadline testing. Stalls are bounded
  // sleeps, never parks: under ANY stall schedule every operation
  // eventually completes, so a query ends in kOk, kIoError, or
  // kDeadlineExceeded — never a hang (tests/fault_injection_test.cc
  // enforces this over 100 seeds).
  void ScheduleReadStall(uint64_t micros, uint64_t nth = 1);
  // Every read independently stalls `micros` with probability `rate`
  // from a dedicated deterministic seeded stream.
  void EnableRandomStalls(uint64_t seed, double rate, uint64_t micros);
  void DisableRandomStalls() {
    std::lock_guard<std::mutex> lock(mu_);
    stall_rate_ = 0.0;
  }

  void ClearScheduledFaults();

  uint64_t reads() const { return Snapshot(reads_); }
  uint64_t writes() const { return Snapshot(writes_); }
  uint64_t syncs() const { return Snapshot(syncs_); }
  uint64_t faults_injected() const { return Snapshot(faults_injected_); }
  uint64_t stalls_injected() const { return Snapshot(stalls_injected_); }

  // IoBackend implementation (delegates unless a fault fires).
  Result<int> Open(const std::string& path, bool create) override;
  void Close(int handle) override;
  Result<uint64_t> Size(int handle) override;
  Status Read(int handle, uint64_t offset, void* buf, size_t n,
              size_t* bytes_read) override;
  Status Write(int handle, uint64_t offset, const void* buf,
               size_t n) override;
  Status Sync(int handle) override;

 private:
  struct Scheduled {
    uint64_t at_op;  // absolute op counter value that triggers it
    FaultKind kind;
  };

  // Returns the fault to inject for the current op, if any. mu_ held.
  bool NextFaultLocked(std::deque<Scheduled>* scheduled, uint64_t op_counter,
                       bool is_read, bool is_sync, FaultKind* kind);

  struct ScheduledStall {
    uint64_t at_op;  // absolute read counter value that triggers it
    uint64_t micros;
  };

  // Combined stall micros armed for the current read, if any. mu_ held.
  uint64_t PendingStallLocked();

  uint64_t Snapshot(const uint64_t& counter) const {
    std::lock_guard<std::mutex> lock(mu_);
    return counter;
  }

  mutable std::mutex mu_;
  IoBackend* delegate_;
  std::deque<Scheduled> read_faults_;
  std::deque<Scheduled> write_faults_;
  std::deque<Scheduled> sync_faults_;
  std::deque<ScheduledStall> read_stalls_;
  uint64_t reads_ = 0;
  uint64_t writes_ = 0;
  uint64_t syncs_ = 0;
  uint64_t faults_injected_ = 0;
  uint64_t stalls_injected_ = 0;
  Rng random_rng_{0};
  double random_rate_ = 0.0;
  Rng stall_rng_{0};
  double stall_rate_ = 0.0;
  uint64_t stall_micros_ = 0;
};

}  // namespace spine::storage

#endif  // SPINE_STORAGE_IO_BACKEND_H_
