// DiskSpine: the SPINE index with all tables resident in a page file
// accessed through a fixed-budget buffer pool (Section 6.2).
//
// This is "the same algorithm over paged storage": the Link Table, Rib
// Tables, extrib payloads and character labels all live in pages; every
// access goes through the pool and is counted. Small bookkeeping that a
// real system would also keep in memory (page tables, free lists, the
// node->extrib-slot directory, the label overflow table, root edges)
// stays in memory and is reported separately as metadata.
//
// The pool's replacement policy is pluggable so the paper's buffering
// observation — link destinations skew toward the top of the backbone,
// so pinning the top of the LT beats LRU under memory pressure — can be
// reproduced (bench_ablation_buffering).
//
// Error handling (PR 2): I/O failures and checksum mismatches latch on
// the buffer pool instead of aborting. Append() polls the latch and
// returns the error; const searches run to completion on zeroed
// fallback records and the caller retrieves the verdict afterwards via
// ConsumeError() (core/query.h ExecuteQuery does this automatically).
//
// Thread safety: NONE — even const searches mutate the shared buffer
// pool. One DiskSpine per thread (or external locking).

#ifndef SPINE_STORAGE_DISK_SPINE_H_
#define SPINE_STORAGE_DISK_SPINE_H_

#include <array>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "alphabet/alphabet.h"
#include "common/status.h"
#include "core/spine_index.h"
#include "storage/buffer_pool.h"
#include "storage/disk_model.h"
#include "storage/io_backend.h"
#include "storage/paged_array.h"
#include "storage/page_file.h"

namespace spine::storage {

// Bit-packed character labels over paged storage.
class PagedCodes {
 public:
  PagedCodes(BufferPool* pool, PageAllocator* allocator, uint32_t bits);

  void Append(Code code);
  Code Get(uint64_t index) const;
  uint64_t size() const { return size_; }
  uint64_t MetadataBytes() const {
    return page_table_.capacity() * sizeof(uint64_t);
  }
  const std::vector<uint64_t>& page_table() const { return page_table_; }
  [[nodiscard]] Status Restore(uint64_t size,
                               std::vector<uint64_t> page_table);

 private:
  BufferPool* pool_;
  PageAllocator* allocator_;
  uint32_t bits_;
  uint32_t codes_per_page_;
  uint64_t size_ = 0;
  std::vector<uint64_t> page_table_;
};

class DiskSpine {
 public:
  struct Options {
    uint32_t pool_frames = 1024;  // memory budget in 4 KiB pages
    ReplacementPolicy policy = ReplacementPolicy::kLru;
    PageFile::SyncMode sync_mode = PageFile::SyncMode::kNone;
    IoBackend* backend = nullptr;  // null selects the POSIX backend
  };

  // Creates a disk-resident index backed by a fresh file at `path`.
  static Result<std::unique_ptr<DiskSpine>> Create(const Alphabet& alphabet,
                                                   const std::string& path,
                                                   const Options& options);

  // Reopens an index previously persisted with Checkpoint(). The
  // alphabet is recovered from the metadata sidecar (`path` + ".meta").
  static Result<std::unique_ptr<DiskSpine>> Open(const std::string& path,
                                                 const Options& options);

  // Flushes all dirty pages and writes the metadata sidecar, making the
  // index reopenable. Can be called repeatedly (e.g. as a checkpoint
  // between appends).
  Status Checkpoint();

  DiskSpine(const DiskSpine&) = delete;
  DiskSpine& operator=(const DiskSpine&) = delete;

  // --- Construction / accessors (same contract as CompactSpineIndex) ---

  Status Append(char c);
  Status AppendString(std::string_view s);

  const Alphabet& alphabet() const { return alphabet_; }
  uint64_t size() const { return codes_.size(); }
  Code CodeAt(uint64_t i) const { return codes_.Get(i); }

  NodeId LinkDest(NodeId i) const;
  uint32_t LinkLel(NodeId i) const;

  StepResult Step(NodeId node, Code c, uint32_t pathlen,
                  SearchStats* stats = nullptr) const;
  bool Contains(std::string_view pattern) const;
  std::optional<NodeId> FindFirstEnd(std::string_view pattern,
                                     SearchStats* stats = nullptr) const;
  std::vector<uint32_t> FindAll(std::string_view pattern,
                                SearchStats* stats = nullptr) const;

  // --- Error latch ---------------------------------------------------------

  // True when an I/O error or corruption was hit since the last
  // ConsumeError(); results produced while latched are unreliable.
  bool has_io_error() const {
    return pool_.has_error() || !struct_error_.ok();
  }
  // Returns the latched error (or OK) and clears the latch.
  Status ConsumeError() const;

  // CancelScopedIndex (core/query.h): ExecuteQuery scopes the query's
  // token here for the duration of one query; the buffer pool polls it
  // on every page miss and latches kDeadlineExceeded / kCancelled like
  // any other I/O verdict. const because searches are const (the pool
  // is already mutable).
  void SetCancelToken(const CancelToken* cancel) const {
    pool_.SetCancelToken(cancel);
  }

  // Full structural scan: every link points upstream, LELs are bounded
  // by their destination depth, rib/extrib slots and overflow indexes
  // are in range, and extrib chains advance strictly in PT. Used by
  // `spine verify`; reads every page (so it also exercises checksums).
  Status VerifyStructure() const;

  // --- I/O accounting ------------------------------------------------------

  const IoStats& io_stats() const { return pool_.stats(); }
  void ResetIoStats() { pool_.ResetStats(); }
  Status Flush() { return pool_.FlushAll(); }
  uint64_t PagesUsed() const { return allocator_.allocated(); }
  uint64_t PoolMemoryBytes() const { return pool_.MemoryBytes(); }
  uint64_t MetadataBytes() const;

 private:
  // On-disk record layouts (mirroring CompactSpineIndex).
  struct LtRecord {
    uint32_t word;
    uint16_t lel;
  } __attribute__((packed));
  static_assert(sizeof(LtRecord) == 6);

  struct PackedRib {
    uint32_t dest;
    uint16_t pt;
    uint8_t cl;
  } __attribute__((packed));

  struct ExtribRecord {
    uint32_t dest;
    uint32_t parent_dest;
    uint16_t pt;
    uint16_t prt;
    uint8_t flags;
  } __attribute__((packed));

  static constexpr uint32_t kClassShift = 29;
  static constexpr uint32_t kLelOverflowBit = 1u << 28;
  static constexpr uint32_t kHasExtribBit = 1u << 27;
  static constexpr uint32_t kValueMask = (1u << 27) - 1;
  static constexpr uint32_t kClassBig = 5;
  static constexpr uint8_t kPtOverflowFlag = 0x80;
  static constexpr uint8_t kClMask = 0x7f;

  struct RibView {
    Code cl;
    NodeId dest;
    uint32_t pt;
  };
  struct ExtribView {
    NodeId dest;
    uint32_t pt;
    uint32_t prt;
    NodeId parent_dest;
  };
  struct BigEntry {
    uint32_t link_dest;
    std::vector<PackedRib> ribs;
  };

  DiskSpine(const Alphabet& alphabet, PageFile file, const Options& options);

  uint16_t EncodeLabel(uint32_t value, bool* overflow);
  uint32_t RibPt(const PackedRib& rib) const;
  void PushNode(NodeId dest, uint32_t lel);
  bool FindRibAt(NodeId node, Code c, RibView* view) const;
  void AddRib(NodeId node, Code c, NodeId dest, uint32_t pt);
  void SetExtrib(NodeId node, NodeId dest, uint32_t pt, uint32_t prt,
                 NodeId parent_dest);
  std::optional<ExtribView> ExtribAt(NodeId node) const;
  // Latches a structural-consistency error (in-memory directory out of
  // step with paged data; should be unreachable given checksums).
  void LatchCorruption(const std::string& message) const;
  // OK, or the latched error if one fired during the current operation.
  Status PoolStatus() const {
    return has_io_error() ? ConsumeError() : Status::OK();
  }

  Alphabet alphabet_;
  std::string meta_path_;
  PageFile file_;
  mutable BufferPool pool_;
  PageAllocator allocator_;

  PagedCodes codes_;
  mutable PagedArray<LtRecord> lt_;
  // RT class k entries as raw records of stride 4 + 7k.
  std::array<std::unique_ptr<PagedRecordArray>, 4> rt_;
  std::array<std::vector<uint32_t>, 4> rt_free_;
  PagedArray<ExtribRecord> extrib_records_;

  // In-memory metadata.
  std::vector<uint32_t> root_rib_dest_;
  std::unordered_map<uint32_t, uint32_t> extrib_slot_;  // node -> record idx
  std::unordered_map<uint32_t, BigEntry> rt_big_;
  std::vector<uint32_t> overflow_;
  mutable Status struct_error_;
};

}  // namespace spine::storage

#endif  // SPINE_STORAGE_DISK_SPINE_H_
