// DiskSuffixTree: Ukkonen suffix tree with the node array and text
// resident in a page file behind a buffer pool — the paper's disk-based
// ST comparator (Fig. 7, Table 7).
//
// Identical algorithm to suffix_tree/suffix_tree.h; every node touch is
// a paged access. Suffix-tree construction hops between nodes created
// far apart in time, so its page locality is poor — which is exactly
// the effect the paper measures against SPINE's backbone locality.

#ifndef SPINE_STORAGE_DISK_SUFFIX_TREE_H_
#define SPINE_STORAGE_DISK_SUFFIX_TREE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "alphabet/alphabet.h"
#include "common/status.h"
#include "core/spine_index.h"  // SearchStats
#include "storage/disk_spine.h"  // PagedCodes
#include "storage/paged_array.h"
#include "storage/page_file.h"
#include "suffix_tree/suffix_tree.h"  // Node layout + constants

namespace spine::storage {

class DiskSuffixTree {
 public:
  using Node = SuffixTree::Node;
  static constexpr uint32_t kRoot = SuffixTree::kRoot;
  static constexpr uint32_t kNoNode32 = SuffixTree::kNoNode32;
  static constexpr uint32_t kOpenEnd = SuffixTree::kOpenEnd;

  struct Options {
    uint32_t pool_frames = 1024;
    ReplacementPolicy policy = ReplacementPolicy::kLru;
    PageFile::SyncMode sync_mode = PageFile::SyncMode::kNone;
    IoBackend* backend = nullptr;  // null selects the POSIX backend
  };

  static Result<std::unique_ptr<DiskSuffixTree>> Create(
      const Alphabet& alphabet, const std::string& path,
      const Options& options);

  // Reopens a tree persisted with Checkpoint() (metadata sidecar at
  // `path` + ".meta").
  static Result<std::unique_ptr<DiskSuffixTree>> Open(const std::string& path,
                                                      const Options& options);

  // Flushes dirty pages and writes the metadata sidecar (page tables,
  // Ukkonen state) so the tree can be reopened and extended.
  Status Checkpoint();

  DiskSuffixTree(const DiskSuffixTree&) = delete;
  DiskSuffixTree& operator=(const DiskSuffixTree&) = delete;

  Status Append(char c);
  Status AppendString(std::string_view s);

  const Alphabet& alphabet() const { return alphabet_; }
  uint64_t size() const { return text_.size(); }
  uint64_t node_count() const { return nodes_.size(); }
  Code CodeAt(uint64_t i) const { return text_.Get(i); }

  // Matcher interface (see st_matcher.h).
  Node node(uint32_t id) const { return nodes_.Get(id); }
  uint32_t EdgeEnd(uint32_t id) const {
    Node n = nodes_.Get(id);
    return n.end == kOpenEnd ? static_cast<uint32_t>(text_.size()) : n.end;
  }
  uint32_t EdgeLength(uint32_t id) const {
    Node n = nodes_.Get(id);
    uint32_t end =
        n.end == kOpenEnd ? static_cast<uint32_t>(text_.size()) : n.end;
    return end - n.start;
  }
  uint32_t FindChild(uint32_t parent, Code c, SearchStats* stats) const;

  bool Contains(std::string_view pattern, SearchStats* stats = nullptr) const;
  std::vector<uint32_t> FindAll(std::string_view pattern,
                                SearchStats* stats = nullptr) const;

  const IoStats& io_stats() const { return pool_.stats(); }
  void ResetIoStats() { pool_.ResetStats(); }
  Status Flush() { return pool_.FlushAll(); }
  uint64_t PagesUsed() const { return allocator_.allocated(); }

  // Error latch (see disk_spine.h): searches run to completion on
  // zeroed fallback records; check here whether the result is trusted.
  bool has_io_error() const { return pool_.has_error(); }
  Status ConsumeError() const { return pool_.ConsumeError(); }

  // CancelScopedIndex (core/query.h): the pool polls the scoped token
  // on every page miss; a fired token latches like an I/O error.
  void SetCancelToken(const CancelToken* cancel) const {
    pool_.SetCancelToken(cancel);
  }

 private:
  DiskSuffixTree(const Alphabet& alphabet, PageFile file,
                 const Options& options);

  uint32_t NewNode(uint32_t start, uint32_t end);
  void AddChild(uint32_t parent, uint32_t child);
  void ReplaceChild(uint32_t parent, uint32_t old_child, uint32_t new_child);
  void ExtendWithCode(Code c);
  void CollectLeaves(uint32_t id, std::vector<uint32_t>* out) const;

  Alphabet alphabet_;
  std::string meta_path_;
  PageFile file_;
  mutable BufferPool pool_;
  PageAllocator allocator_;
  PagedCodes text_;
  mutable PagedArray<Node> nodes_;

  uint32_t active_node_ = kRoot;
  uint32_t active_edge_ = 0;
  uint32_t active_length_ = 0;
  uint32_t remainder_ = 0;
  uint32_t need_suffix_link_ = kNoNode32;
};

}  // namespace spine::storage

#endif  // SPINE_STORAGE_DISK_SUFFIX_TREE_H_
