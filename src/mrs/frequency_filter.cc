#include "mrs/frequency_filter.h"

#include <algorithm>

#include "align/edit_distance.h"
#include "common/check.h"

namespace spine::mrs {

FrequencyFilterIndex::FrequencyFilterIndex(const Alphabet& alphabet,
                                           std::string text,
                                           uint32_t frame_size, uint32_t gram)
    : alphabet_(alphabet),
      text_(std::move(text)),
      frame_size_(frame_size),
      gram_(gram) {
  dims_ = 1;
  for (uint32_t i = 0; i < gram_; ++i) dims_ *= alphabet_.size();
}

uint32_t FrequencyFilterIndex::GramAt(uint64_t pos) const {
  uint32_t id = 0;
  for (uint32_t i = 0; i < gram_; ++i) {
    id = id * alphabet_.size() + alphabet_.Encode(text_[pos + i]);
  }
  return id;
}

Result<FrequencyFilterIndex> FrequencyFilterIndex::Build(
    const Alphabet& alphabet, std::string_view text, const Options& options) {
  if (options.frame_size < 4) {
    return Status::InvalidArgument("frame_size must be at least 4");
  }
  if (options.gram < 1) {
    return Status::InvalidArgument("gram must be at least 1");
  }
  // Clamp the gram so the sketch dimensionality stays reasonable.
  uint32_t gram = options.gram;
  uint64_t dims = 1;
  for (uint32_t i = 0; i < gram; ++i) dims *= alphabet.size();
  while (gram > 1 && dims > 4096) {
    dims /= alphabet.size();
    --gram;
  }

  // Store decoded characters (the verify phase rescans them).
  std::string retained;
  retained.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    Code c = alphabet.Encode(text[i]);
    if (c == kInvalidCode) {
      return Status::InvalidArgument("character at offset " +
                                     std::to_string(i) +
                                     " is not in the alphabet");
    }
    retained.push_back(alphabet.Decode(c));
  }
  FrequencyFilterIndex index(alphabet, std::move(retained),
                             options.frame_size, gram);
  const uint64_t frames =
      (text.size() + options.frame_size - 1) / options.frame_size;
  index.frame_counts_.assign(frames * index.dims_, 0);
  if (index.text_.size() + 1 >= gram) {
    for (uint64_t i = 0; i + gram <= index.text_.size(); ++i) {
      ++index.frame_counts_[(i / options.frame_size) * index.dims_ +
                            index.GramAt(i)];
    }
  }
  return index;
}

uint64_t FrequencyFilterIndex::SketchBytes() const {
  return frame_counts_.size() * sizeof(uint16_t);
}

std::vector<FilterHit> FrequencyFilterIndex::FindApproximate(
    std::string_view pattern, uint32_t max_edits, uint64_t* frames_pruned,
    uint64_t* candidates_verified) const {
  std::vector<FilterHit> hits;
  const uint32_t m = static_cast<uint32_t>(pattern.size());
  const uint32_t n = static_cast<uint32_t>(text_.size());
  if (m == 0 || max_edits >= m || n == 0) return hits;

  // Pattern gram-frequency vector. A matching window (<= max_edits
  // edits away) must supply at least pattern_grams[g] - max_edits * gram
  // grams in total, since each edit creates at most `gram` new grams.
  std::vector<uint32_t> pattern_grams;
  bool can_filter = m >= gram_;
  if (can_filter) {
    pattern_grams.assign(dims_, 0);
    for (uint32_t i = 0; i + gram_ <= m; ++i) {
      uint32_t id = 0;
      bool valid = true;
      for (uint32_t j = 0; j < gram_; ++j) {
        Code c = alphabet_.Encode(pattern[i + j]);
        if (c == kInvalidCode) {
          valid = false;
          break;
        }
        id = id * alphabet_.size() + c;
      }
      if (!valid) return hits;  // foreign characters can never match
      ++pattern_grams[id];
    }
  }

  // Phase 1 — FILTER per start-frame. A window starting in frame f has
  // gram start positions within frames f..g, so the region's counts
  // upper-bound its supply.
  const uint64_t frames = (n + frame_size_ - 1) / frame_size_;
  const uint32_t max_window = m + max_edits;
  std::vector<uint32_t> region(dims_, 0);
  std::vector<uint32_t> candidate_frames;
  uint64_t pruned = 0;
  for (uint64_t f = 0; f < frames; ++f) {
    if (!can_filter) {
      candidate_frames.push_back(static_cast<uint32_t>(f));
      continue;
    }
    uint64_t last_start = f * frame_size_ + frame_size_ - 1 + max_window;
    uint64_t g = std::min<uint64_t>(frames - 1, last_start / frame_size_);
    std::fill(region.begin(), region.end(), 0);
    for (uint64_t j = f; j <= g; ++j) {
      for (uint32_t d = 0; d < dims_; ++d) {
        region[d] += frame_counts_[j * dims_ + d];
      }
    }
    uint64_t deficit = 0;
    for (uint32_t d = 0; d < dims_; ++d) {
      if (pattern_grams[d] > region[d]) deficit += pattern_grams[d] - region[d];
    }
    // Each edit creates at most `gram` new grams in the window.
    uint64_t lower_bound = (deficit + gram_ - 1) / gram_;
    if (lower_bound > max_edits) {
      ++pruned;
    } else {
      candidate_frames.push_back(static_cast<uint32_t>(f));
    }
  }
  if (frames_pruned != nullptr) *frames_pruned = pruned;

  // Phase 2 — VERIFY every start position inside surviving frames.
  uint64_t verified = 0;
  for (uint32_t f : candidate_frames) {
    uint32_t begin = f * frame_size_;
    uint32_t end = std::min(n, begin + frame_size_);
    for (uint32_t s = begin; s < end; ++s) {
      uint32_t window_len = std::min(max_window, n - s);
      if (window_len + max_edits < m) continue;
      ++verified;
      auto best = align::BestPrefixEditDistance(
          pattern, std::string_view(text_).substr(s, window_len), max_edits);
      if (best.has_value()) {
        hits.push_back({s, best->second, best->first});
      }
    }
  }
  if (candidates_verified != nullptr) *candidates_verified = verified;
  return hits;
}

}  // namespace spine::mrs
