// FrequencyFilterIndex: a simplified MRS-style two-phase index
// (Kahveci & Singh, "An Efficient Index Structure for String
// Databases", VLDB 2001 — the paper's Section 7 comparator).
//
// The idea behind MRS: keep a very small sketch of the data string —
// here, per-frame q-gram frequency vectors — and answer approximate
// queries in two phases:
//
//   1. FILTER: q-gram frequencies lower-bound the edit distance (one
//      edit creates at most q new q-grams in a window, so
//      edits >= gram_deficit / q). Grams are attributed to the frame
//      containing their START position, so a region of whole frames
//      soundly upper-bounds any window's gram supply with no boundary
//      slack. Frames whose bound exceeds the budget are pruned
//      wholesale.
//   2. VERIFY: the surviving regions are checked exactly (banded DP).
//
// The sketch is tiny (sigma counters per frame: ~0.13 B/char at frame
// size 64), but answers are two-phase and verification rescans the
// text — SPINE's point (Section 7): "the performance improvement
// through complete indexes is typically substantially more, albeit at
// the cost of increased resource consumption". bench_related_mrs
// reproduces that trade-off.

#ifndef SPINE_MRS_FREQUENCY_FILTER_H_
#define SPINE_MRS_FREQUENCY_FILTER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "alphabet/alphabet.h"
#include "common/status.h"

namespace spine::mrs {

struct FilterHit {
  uint32_t data_pos = 0;
  uint32_t length = 0;
  uint32_t edits = 0;
  bool operator==(const FilterHit&) const = default;
};

class FrequencyFilterIndex {
 public:
  struct Options {
    // Frame length of the sketch; smaller frames filter more precisely
    // but cost more space. Must be >= 4.
    uint32_t frame_size = 64;
    // Gram length of the frequency vectors (sigma^gram dimensions);
    // 2-grams are far more selective than letters on small alphabets.
    // Clamped to 1 when sigma^gram would exceed 4096 dimensions.
    uint32_t gram = 2;
  };

  // Builds the sketch over `text`. The text is retained (the filter is
  // not self-contained, unlike SPINE — part of the trade-off).
  static Result<FrequencyFilterIndex> Build(const Alphabet& alphabet,
                                            std::string_view text,
                                            const Options& options);
  static Result<FrequencyFilterIndex> Build(const Alphabet& alphabet,
                                            std::string_view text) {
    return Build(alphabet, text, Options{});
  }

  uint64_t size() const { return text_.size(); }
  // Bytes of the sketch only (the filter's selling point).
  uint64_t SketchBytes() const;
  // Bytes including the retained text.
  uint64_t MemoryBytes() const { return SketchBytes() + text_.size(); }

  // All windows matching `pattern` within `max_edits` Levenshtein
  // edits; same reporting convention as align::FindApproximate (best
  // window per start position). Statistics about the filter phase are
  // written to *frames_pruned / *candidates_verified when non-null.
  std::vector<FilterHit> FindApproximate(std::string_view pattern,
                                         uint32_t max_edits,
                                         uint64_t* frames_pruned = nullptr,
                                         uint64_t* candidates_verified =
                                             nullptr) const;

 private:
  FrequencyFilterIndex(const Alphabet& alphabet, std::string text,
                       uint32_t frame_size, uint32_t gram);

  uint32_t GramAt(uint64_t pos) const;

  Alphabet alphabet_;
  std::string text_;          // decoded characters
  uint32_t frame_size_;
  uint32_t gram_;
  uint32_t dims_;             // sigma^gram
  // frame_counts_[f * dims + g] = grams with id g STARTING in frame f.
  std::vector<uint16_t> frame_counts_;
};

}  // namespace spine::mrs

#endif  // SPINE_MRS_FREQUENCY_FILTER_H_
