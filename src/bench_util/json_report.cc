#include "bench_util/json_report.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "obs/json.h"
#include "obs/metrics.h"

namespace spine::bench {

BenchReport::BenchReport(std::string name, double scale)
    : name_(std::move(name)), scale_(scale) {}

void BenchReport::AddMetric(const std::string& key, double value) {
  metrics_.emplace_back(key, value);
}

void BenchReport::AddMetric(const std::string& key, uint64_t value) {
  metrics_.emplace_back(key, static_cast<double>(value));
}

void BenchReport::AddInfo(const std::string& key, std::string value) {
  info_.emplace_back(key, std::move(value));
}

std::string BenchReport::ToJson() const {
  obs::JsonWriter json;
  json.BeginObject();
  json.Key("schema_version");
  json.Value(obs::kStatsSchemaVersion);
  json.Key("bench");
  json.Value(name_);
  json.Key("scale");
  json.Value(scale_);
  json.Key("metrics");
  json.BeginObject();
  for (const auto& [key, value] : metrics_) {
    json.Key(key);
    json.Value(value);
  }
  json.EndObject();
  json.Key("info");
  json.BeginObject();
  for (const auto& [key, value] : info_) {
    json.Key(key);
    json.Value(value);
  }
  json.EndObject();
  json.EndObject();
  return std::move(json).Finish();
}

Status BenchReport::Write() const {
  const char* dir = std::getenv("SPINE_BENCH_JSON_DIR");
  const std::string directory =
      (dir == nullptr || *dir == '\0') ? std::string(".") : std::string(dir);
  if (directory == "off") return Status::OK();
  const std::string path = directory + "/BENCH_" + name_ + ".json";
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << ToJson() << "\n";
  if (!out.good()) return Status::IoError("failed writing " + path);
  std::printf("\nwrote %s\n", path.c_str());
  return Status::OK();
}

}  // namespace spine::bench
