// Machine-readable benchmark output: every bench binary, in addition
// to its human tables, writes one BENCH_<name>.json so the perf
// trajectory of the repo can be recorded and diffed across commits.
//
// Output schema (obs::kStatsSchemaVersion):
//   {
//     "schema_version": 1,
//     "bench": "<name>",
//     "scale": <SPINE_BENCH_SCALE in effect>,
//     "metrics": {"<key>": <number>, ...},
//     "info": {"<key>": "<string>", ...}
//   }
//
// The output directory comes from $SPINE_BENCH_JSON_DIR (default: the
// current working directory); setting it to "off" suppresses writing
// entirely (for ad-hoc local runs that should not litter the tree).

#ifndef SPINE_BENCH_UTIL_JSON_REPORT_H_
#define SPINE_BENCH_UTIL_JSON_REPORT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace spine::bench {

class BenchReport {
 public:
  // `name` is the bench identifier without the BENCH_ prefix or
  // extension, e.g. "engine_throughput". `scale` is the dataset scale
  // the run used (echoed so consumers can refuse cross-scale diffs).
  BenchReport(std::string name, double scale);

  // Metrics preserve insertion order in the emitted JSON.
  void AddMetric(const std::string& key, double value);
  void AddMetric(const std::string& key, uint64_t value);
  void AddInfo(const std::string& key, std::string value);

  // Serializes the report (without writing it anywhere).
  std::string ToJson() const;

  // Writes BENCH_<name>.json into the configured directory and prints
  // the path to stdout; no-op returning OK when suppressed via
  // SPINE_BENCH_JSON_DIR=off.
  Status Write() const;

 private:
  std::string name_;
  double scale_;
  std::vector<std::pair<std::string, double>> metrics_;
  std::vector<std::pair<std::string, std::string>> info_;
};

}  // namespace spine::bench

#endif  // SPINE_BENCH_UTIL_JSON_REPORT_H_
