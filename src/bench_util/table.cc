#include "bench_util/table.h"

#include <cstdio>

#include "common/check.h"

namespace spine::bench {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  SPINE_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    std::printf("|");
    for (size_t c = 0; c < row.size(); ++c) {
      std::printf(" %-*s |", static_cast<int>(widths[c]), row[c].c_str());
    }
    std::printf("\n");
  };
  auto print_rule = [&]() {
    std::printf("+");
    for (size_t c = 0; c < widths.size(); ++c) {
      for (size_t i = 0; i < widths[c] + 2; ++i) std::printf("-");
      std::printf("+");
    }
    std::printf("\n");
  };
  print_rule();
  print_row(headers_);
  print_rule();
  for (const auto& row : rows_) print_row(row);
  print_rule();
}

std::string FormatDouble(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

std::string FormatPercent(double fraction, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f%%", decimals, fraction * 100.0);
  return buffer;
}

std::string FormatCount(uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  return std::string(out.rbegin(), out.rend());
}

std::string FormatBytes(uint64_t bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 3) {
    value /= 1024.0;
    ++unit;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.1f %s", value, units[unit]);
  return buffer;
}

std::string FormatMega(uint64_t value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.2f M",
                static_cast<double>(value) / 1e6);
  return buffer;
}

void PrintBanner(const std::string& artifact, const std::string& description,
                 double scale) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", artifact.c_str(), description.c_str());
  std::printf("dataset scale: %.3g of the paper's sizes "
              "(override with SPINE_BENCH_SCALE)\n",
              scale);
  std::printf("================================================================\n");
}

}  // namespace spine::bench
