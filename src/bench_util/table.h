// Plain-text table printer for the benchmark harness: each bench binary
// regenerates one of the paper's tables/figures as aligned rows.

#ifndef SPINE_BENCH_UTIL_TABLE_H_
#define SPINE_BENCH_UTIL_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace spine::bench {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  // Renders the table to stdout with aligned columns.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Formatting helpers.
std::string FormatDouble(double value, int decimals = 2);
std::string FormatPercent(double fraction, int decimals = 1);  // 0.31 -> 31.0%
std::string FormatCount(uint64_t value);        // 1234567 -> "1,234,567"
std::string FormatBytes(uint64_t bytes);        // "12.3 MiB"
std::string FormatMega(uint64_t value);         // 3500000 -> "3.5 M"

// Prints the standard bench banner: what paper artifact this binary
// regenerates and at which scale.
void PrintBanner(const std::string& artifact, const std::string& description,
                 double scale);

}  // namespace spine::bench

#endif  // SPINE_BENCH_UTIL_TABLE_H_
