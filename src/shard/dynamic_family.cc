#include "shard/dynamic_family.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <shared_mutex>
#include <sstream>
#include <utility>

#include "common/crc32c.h"
#include "common/serde.h"
#include "compact/generalized_compact.h"
#include "core/approx.h"
#include "core/generalized_spine.h"
#include "core/matcher.h"
#include "core/search.h"
#include "obs/metrics.h"
#include "shard/sharded_index.h"
#include "storage/mmap_region.h"

namespace spine::shard {

namespace {

// Backstop against corrupt manifests claiming absurd shard counts.
constexpr uint32_t kMaxDynamicShards = 1u << 20;

// The two reserved separator bytes: the memtable concatenates with the
// GeneralizedSpineIndex separator, frozen shards with the compact one.
// Neither may appear in documents or patterns — a pattern containing
// either could match across document boundaries.
constexpr char kMemSeparator = GeneralizedSpineIndex::kSeparator;
constexpr char kDiskSeparator = GeneralizedCompactSpine::kSeparator;

std::string DirName(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

std::string BaseName(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

std::string SiblingPath(const std::string& manifest_path,
                        const std::string& filename) {
  const std::string dir = DirName(manifest_path);
  return dir.empty() ? filename : dir + "/" + filename;
}

Result<std::string> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IoError("failed reading " + path);
  return std::move(buffer).str();
}

Result<Alphabet> AlphabetFromKindCode(uint32_t code) {
  switch (static_cast<Alphabet::Kind>(code)) {
    case Alphabet::Kind::kDna: return Alphabet::Dna();
    case Alphabet::Kind::kProtein: return Alphabet::Protein();
    case Alphabet::Kind::kByte: return Alphabet::Byte();
    case Alphabet::Kind::kAscii: return Alphabet::Ascii();
  }
  return Status::Corruption("unknown alphabet kind " + std::to_string(code));
}

storage::MmapOptions MmapOptionsFrom(const core::OpenOptions& open) {
  storage::MmapOptions options;
  options.populate = open.populate;
  options.hugepage = open.hugepage;
  return options;
}

// Validates and canonicalizes one document through the user alphabet
// (case folding etc.), so the memtable and every frozen shard index
// byte-identical text and answers stay byte-exact across flushes.
Result<std::string> CanonicalizeDocument(const Alphabet& alphabet,
                                         std::string_view text) {
  std::string canonical;
  canonical.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == kMemSeparator || c == kDiskSeparator) {
      return Status::InvalidArgument("document contains a reserved separator "
                                     "byte at offset " +
                                     std::to_string(i));
    }
    const Code code = alphabet.Encode(c);
    if (code == kInvalidCode) {
      return Status::InvalidArgument(
          "character at offset " + std::to_string(i) + " is not in the " +
          alphabet.name() + " alphabet");
    }
    canonical.push_back(alphabet.Decode(code));
  }
  return canonical;
}

// Mirrors RecordFamilyObs in sharded_index.cc: the lifecycle answers a
// query with direct generic-algorithm calls across its sources, so it
// reports the per-kind counter and aggregated work counters itself.
void RecordLifecycleObs(const Query& query, const QueryResult& result,
                        obs::TraceContext* trace) {
#if !defined(SPINE_OBS_DISABLED)
  static obs::Counter* const kind_counters[kQueryKindCount] = {
      &obs::Registry::Default().GetCounter("core.queries.contains"),
      &obs::Registry::Default().GetCounter("core.queries.findall"),
      &obs::Registry::Default().GetCounter("core.queries.match"),
      &obs::Registry::Default().GetCounter("core.queries.ms"),
      &obs::Registry::Default().GetCounter("core.queries.mismatch"),
      &obs::Registry::Default().GetCounter("core.queries.editdist"),
  };
  kind_counters[static_cast<size_t>(query.kind)]->Add(1);
  SPINE_OBS_COUNT("lifecycle.queries", 1);
  SPINE_OBS_COUNT("core.vertebra_steps", result.stats.nodes_checked);
  SPINE_OBS_COUNT("core.link_traversals", result.stats.link_traversals);
  SPINE_OBS_COUNT("core.chain_hops", result.stats.chain_hops);
  if (trace != nullptr) {
    trace->Note("nodes_checked", result.stats.nodes_checked);
    trace->Note("link_traversals", result.stats.link_traversals);
    trace->Note("chain_hops", result.stats.chain_hops);
    trace->Note("found", result.found ? 1 : 0);
  }
#else
  (void)query;
  (void)result;
  (void)trace;
#endif
}

}  // namespace

// --- generation model ------------------------------------------------------

// The live, growing shard. The shared_mutex travels with the data:
// the writer appends under the exclusive lock, every reader (on any
// pinned generation) walks the index under the shared lock. Older
// generations simply ignore documents past their visible count.
struct DynamicFamily::MemtableShard {
  explicit MemtableShard(const Alphabet& alphabet) : index(alphabet) {}

  mutable std::shared_mutex mu;
  GeneralizedSpineIndex index;
  std::vector<uint32_t> doc_ids;   // ascending; parallel to texts
  std::vector<std::string> texts;  // canonical document texts
  uint64_t chars = 0;              // total canonical characters (flush trigger)
};

// An immutable on-disk shard image, loaded (or just built) in memory.
struct DynamicFamily::FrozenShard {
  explicit FrozenShard(GeneralizedCompactSpine&& image)
      : index(std::move(image)) {}

  GeneralizedCompactSpine index;
  std::string filename;  // relative to the manifest's directory
  uint64_t file_size = 0;
  uint32_t file_crc = 0;
  std::vector<uint32_t> doc_ids;  // ascending; parallel to index strings
  std::vector<uint64_t> starts;   // local concatenation start per document
  // Non-null when the image borrows from a mapping (mmap open): the
  // fence is checked at query admission, exactly like ShardedIndex.
  std::shared_ptr<const storage::MmapRegion> mapping;
};

// One immutable snapshot of the family's queryable state. Everything
// below `derived state` is precomputed once by the publishing writer;
// readers share the structure lock-free (the memtable's own lock is
// the only lock a query ever takes).
struct DynamicFamily::Generation {
  uint64_t version = 0;
  uint64_t cache_id = 0;
  uint32_t next_doc_id = 0;
  std::vector<std::shared_ptr<const FrozenShard>> shards;
  std::shared_ptr<MemtableShard> memtable;  // null when empty/flushed
  uint32_t memtable_visible = 0;  // docs of the memtable this gen sees
  std::vector<uint32_t> tombstones;  // sorted, unique doc ids

  // --- derived state (BuildDerived) ---
  struct DocRef {
    uint32_t doc_id = 0;
    uint32_t length = 0;
    uint64_t canonical_start = 0;  // offset in the live concatenation
    uint32_t source = 0;           // shard index, or shards.size() = memtable
    uint32_t local = 0;            // document index within the source
  };
  std::vector<DocRef> live;  // ascending doc_id
  // Per source: local doc index -> canonical start, or -1 when dead.
  std::vector<std::vector<int64_t>> doc_map;
  std::vector<bool> shard_dirty;     // shard holds a tombstoned doc
  bool memtable_dirty = false;       // a visible memtable doc is tombstoned
  std::vector<uint64_t> mem_starts;  // local start per visible memtable doc
  std::vector<uint32_t> mem_lengths;
  uint64_t mem_limit = 0;    // local chars covered by visible memtable docs
  uint64_t total_chars = 0;  // live concatenation size, separators included

  void BuildDerived();
};

void DynamicFamily::Generation::BuildDerived() {
  live.clear();
  doc_map.assign(shards.size() + 1, {});
  shard_dirty.assign(shards.size(), false);
  mem_starts.clear();
  mem_lengths.clear();
  memtable_dirty = false;
  mem_limit = 0;
  const auto dead = [this](uint32_t id) {
    return std::binary_search(tombstones.begin(), tombstones.end(), id);
  };
  uint64_t canonical = 0;
  for (uint32_t s = 0; s < shards.size(); ++s) {
    const FrozenShard& shard = *shards[s];
    const uint64_t concat = shard.index.underlying().size();
    doc_map[s].assign(shard.doc_ids.size(), -1);
    for (uint32_t i = 0; i < shard.doc_ids.size(); ++i) {
      const uint64_t end =
          i + 1 < shard.starts.size() ? shard.starts[i + 1] : concat;
      const uint32_t length =
          static_cast<uint32_t>(end - shard.starts[i] - 1);
      if (dead(shard.doc_ids[i])) {
        shard_dirty[s] = true;
        continue;
      }
      doc_map[s][i] = static_cast<int64_t>(canonical);
      live.push_back({shard.doc_ids[i], length, canonical, s, i});
      canonical += length + 1;
    }
  }
  if (memtable != nullptr && memtable_visible > 0) {
    std::vector<int64_t>& mem_map = doc_map[shards.size()];
    mem_map.assign(memtable_visible, -1);
    mem_starts.reserve(memtable_visible);
    mem_lengths.reserve(memtable_visible);
    uint64_t local = 0;
    for (uint32_t i = 0; i < memtable_visible; ++i) {
      const uint32_t length = static_cast<uint32_t>(memtable->texts[i].size());
      mem_starts.push_back(local);
      mem_lengths.push_back(length);
      if (dead(memtable->doc_ids[i])) {
        memtable_dirty = true;
      } else {
        mem_map[i] = static_cast<int64_t>(canonical);
        live.push_back({memtable->doc_ids[i], length, canonical,
                        static_cast<uint32_t>(shards.size()), i});
        canonical += length + 1;
      }
      local += length + 1;
    }
    mem_limit = local;
  }
  total_chars = canonical;
}

// The pinned view handed to engine batches: answers, size and cache_id
// stay frozen on this generation while writers swap underneath.
class DynamicFamily::Snapshot final : public core::Index {
 public:
  Snapshot(Alphabet alphabet, std::shared_ptr<const Generation> generation)
      : alphabet_(std::move(alphabet)), generation_(std::move(generation)) {}

  core::IndexKind kind() const override { return core::IndexKind::kDynamic; }
  core::Capabilities capabilities() const override {
    core::Capabilities caps;
    caps.supports_approx = true;  // per-source seed-and-extend
    caps.persistent = true;
    return caps;
  }
  const Alphabet& alphabet() const override { return alphabet_; }
  uint64_t size() const override { return generation_->total_chars; }
  QueryResult Execute(const Query& query, obs::TraceContext* trace,
                      const CancelToken* cancel) const override {
    return DynamicFamily::ExecuteOnGeneration(*generation_, query, trace,
                                              cancel);
  }
  Status VerifyStructure() const override {
    return DynamicFamily::VerifyGeneration(*generation_);
  }
  uint64_t MemoryBytes() const override {
    return DynamicFamily::GenerationMemoryBytes(*generation_);
  }
  uint64_t cache_id() const override { return generation_->cache_id; }

 private:
  Alphabet alphabet_;
  std::shared_ptr<const Generation> generation_;
};

// --- query merge -----------------------------------------------------------

QueryResult DynamicFamily::ExecuteOnGeneration(const Generation& gen,
                                               const Query& query,
                                               obs::TraceContext* trace,
                                               const CancelToken* cancel) {
#if defined(SPINE_OBS_DISABLED)
  trace = nullptr;
#endif
  obs::SpanTimer exec_timer(trace, "exec_us");
  QueryResult result;

  // A reserved separator byte could match across document boundaries —
  // composition-dependent nonsense — so it is rejected, never answered.
  for (const char c : query.pattern) {
    if (c == kMemSeparator || c == kDiskSeparator) {
      result.status_code = StatusCode::kInvalidArgument;
      result.error = "pattern contains a reserved separator byte";
      RecordLifecycleObs(query, result, trace);
      return result;
    }
  }

  // Length fence before touching mapped shard bytes (docs/STORAGE.md).
  for (const std::shared_ptr<const FrozenShard>& shard : gen.shards) {
    if (shard->mapping != nullptr) {
      Status fence = shard->mapping->CheckFence();
      if (!fence.ok()) {
        result.status_code = fence.code();
        result.error = std::string(fence.message());
        RecordLifecycleObs(query, result, trace);
        return result;
      }
    }
  }

  // Empty patterns get core/query.h ExecuteQuery's verdicts (contains
  // trivially true, everything else empty) so the differential oracle
  // agrees byte-for-byte.
  if (query.pattern.empty()) {
    result.found = query.kind == QueryKind::kContains;
    RecordLifecycleObs(query, result, trace);
    return result;
  }

  // One shared lock covers every memtable read below: one query sees
  // one memtable state even while the writer appends concurrently.
  const bool use_memtable = gen.memtable != nullptr && gen.memtable_visible > 0;
  std::shared_lock<std::shared_mutex> memtable_lock;
  bool mem_clean = false;
  if (use_memtable) {
    memtable_lock = std::shared_lock<std::shared_mutex>(gen.memtable->mu);
    mem_clean = gen.memtable->index.string_count() == gen.memtable_visible &&
                !gen.memtable_dirty;
  }
  const uint32_t shard_count = static_cast<uint32_t>(gen.shards.size());
  const uint32_t source_count = shard_count + (use_memtable ? 1 : 0);
  bool any_dirty = use_memtable && !mem_clean;
  for (uint32_t s = 0; s < shard_count; ++s) {
    if (gen.shard_dirty[s]) any_dirty = true;
  }

  // Maps a local position in source `s` to its offset in the live
  // concatenation; -1 when the position lies in a dead or invisible
  // document (or on a separator, unreachable for valid patterns).
  const auto canonical_of = [&gen, shard_count,
                             use_memtable](uint32_t s, uint64_t pos) -> int64_t {
    if (s < shard_count) {
      const FrozenShard& shard = *gen.shards[s];
      const auto it =
          std::upper_bound(shard.starts.begin(), shard.starts.end(), pos);
      const uint32_t doc =
          static_cast<uint32_t>(it - shard.starts.begin()) - 1;
      const uint64_t offset = pos - shard.starts[doc];
      const uint64_t end = doc + 1 < shard.starts.size()
                               ? shard.starts[doc + 1]
                               : shard.index.underlying().size();
      if (offset >= end - shard.starts[doc] - 1) return -1;
      const int64_t base = gen.doc_map[s][doc];
      return base < 0 ? -1 : base + static_cast<int64_t>(offset);
    }
    if (!use_memtable || pos >= gen.mem_limit) return -1;
    const auto it =
        std::upper_bound(gen.mem_starts.begin(), gen.mem_starts.end(), pos);
    const uint32_t doc = static_cast<uint32_t>(it - gen.mem_starts.begin()) - 1;
    const uint64_t offset = pos - gen.mem_starts[doc];
    if (offset >= gen.mem_lengths[doc]) return -1;
    const int64_t base = gen.doc_map[shard_count][doc];
    return base < 0 ? -1 : base + static_cast<int64_t>(offset);
  };

  const auto find_all_in = [&](uint32_t s, std::string_view pattern) {
    return s < shard_count
               ? GenericFindAll(gen.shards[s]->index.underlying(), pattern,
                                &result.stats, cancel)
               : GenericFindAll(gen.memtable->index.underlying(), pattern,
                                &result.stats, cancel);
  };

  // All live occurrences of `pattern`, as ascending canonical offsets.
  const auto live_positions = [&](std::string_view pattern) {
    std::vector<int64_t> positions;
    for (uint32_t s = 0; s < source_count; ++s) {
      for (const uint32_t pos : find_all_in(s, pattern)) {
        const int64_t mapped = canonical_of(s, pos);
        if (mapped >= 0) positions.push_back(mapped);
      }
    }
    std::sort(positions.begin(), positions.end());
    return positions;
  };

  const auto live_contains = [&](std::string_view pattern) -> bool {
    for (uint32_t s = 0; s < source_count; ++s) {
      const bool clean = s < shard_count ? !gen.shard_dirty[s] : mem_clean;
      if (clean) {
        const bool found =
            s < shard_count
                ? GenericFindFirstEnd(gen.shards[s]->index.underlying(),
                                      pattern, &result.stats, cancel)
                      .has_value()
                : GenericFindFirstEnd(gen.memtable->index.underlying(),
                                      pattern, &result.stats, cancel)
                      .has_value();
        if (found) return true;
      } else {
        // A dirty source can only vouch for occurrences that map live.
        for (const uint32_t pos : find_all_in(s, pattern)) {
          if (canonical_of(s, pos) >= 0) return true;
        }
      }
    }
    return false;
  };

  // Matching statistics over the live collection. All-clean sources
  // merge by elementwise max (substring occurrence over a union
  // distributes); any dirty source falls back to the incremental scan,
  // correct because ms[q+1] >= ms[q] - 1 holds over any string set, so
  // the window only ever grows by one probe per extension.
  const auto merged_ms = [&]() {
    const uint32_t m = static_cast<uint32_t>(query.pattern.size());
    std::vector<uint32_t> ms(m, 0);
    if (!any_dirty) {
      for (uint32_t s = 0; s < source_count; ++s) {
        const std::vector<uint32_t> one =
            s < shard_count
                ? GenericMatchingStatistics(gen.shards[s]->index.underlying(),
                                            query.pattern, &result.stats,
                                            cancel)
                : GenericMatchingStatistics(gen.memtable->index.underlying(),
                                            query.pattern, &result.stats,
                                            cancel);
        for (uint32_t q = 0; q < m; ++q) ms[q] = std::max(ms[q], one[q]);
      }
      return ms;
    }
    CancelCheckpoint checkpoint(cancel);
    uint32_t z = 0;
    for (uint32_t q = 0; q < m; ++q) {
      if (checkpoint.ShouldStop()) return ms;
      if (z > 0) --z;
      while (q + z < m && live_contains(std::string_view(query.pattern)
                                            .substr(q, z + 1))) {
        ++z;
      }
      ms[q] = z;
    }
    return ms;
  };

  const uint32_t m = static_cast<uint32_t>(query.pattern.size());
  switch (query.kind) {
    case QueryKind::kContains:
      result.found = live_contains(query.pattern);
      break;
    case QueryKind::kFindAll: {
      for (const int64_t pos : live_positions(query.pattern)) {
        result.hits.push_back({static_cast<uint32_t>(pos), m, 0});
      }
      result.found = !result.hits.empty();
      break;
    }
    case QueryKind::kMatchingStats: {
      result.matching_stats = merged_ms();
      result.found =
          std::any_of(result.matching_stats.begin(),
                      result.matching_stats.end(),
                      [](uint32_t v) { return v > 0; });
      break;
    }
    case QueryKind::kMaximalMatches: {
      const uint32_t min_len = std::max<uint32_t>(query.min_len, 1);
      const std::vector<uint32_t> ms = merged_ms();
      for (uint32_t q = 0; q < ms.size(); ++q) {
        if (ms[q] < min_len) continue;
        // ms[q-1] can exceed ms[q] only by one; when it does, this
        // match is a suffix of the previous one and is not maximal.
        if (q > 0 && ms[q - 1] > ms[q]) continue;
        const std::string_view sub =
            std::string_view(query.pattern).substr(q, ms[q]);
        const std::vector<int64_t> positions = live_positions(sub);
        if (positions.empty()) continue;  // only under a fired token
        if (query.expand_occurrences) {
          for (const int64_t pos : positions) {
            result.hits.push_back({static_cast<uint32_t>(pos), ms[q], q});
          }
        } else {
          result.hits.push_back(
              {static_cast<uint32_t>(positions.front()), ms[q], q});
        }
      }
      result.found = !result.hits.empty();
      break;
    }
    case QueryKind::kMismatch:
    case QueryKind::kEditDistance: {
      // Per-source core/approx.h generics with the source's separator:
      // no window crosses a document boundary, and documents are
      // atomically live or dead, so mapping the window's start suffices
      // to decide liveness of the whole window.
      ApproxSearchStats family_stats;
      struct MappedHit {
        int64_t pos;
        ApproxHit hit;
        bool operator<(const MappedHit& o) const { return pos < o.pos; }
      };
      std::vector<MappedHit> mapped;
      for (uint32_t s = 0; s < source_count; ++s) {
        const char separator = s < shard_count ? kDiskSeparator : kMemSeparator;
        ApproxSearchStats source_stats;
        const auto run = [&](const auto& underlying) {
          return query.kind == QueryKind::kMismatch
                     ? GenericFindMismatch(underlying, query.pattern,
                                           query.max_errors, &result.stats,
                                           &source_stats, cancel, separator)
                     : GenericFindEditDistance(underlying, query.pattern,
                                               query.max_errors, &result.stats,
                                               &source_stats, cancel,
                                               separator);
        };
        const std::vector<ApproxHit> hits =
            s < shard_count ? run(gen.shards[s]->index.underlying())
                            : run(gen.memtable->index.underlying());
        for (const ApproxHit& hit : hits) {
          const int64_t pos = canonical_of(s, hit.pos);
          if (pos >= 0) mapped.push_back({pos, hit});
        }
        family_stats.candidates += source_stats.candidates;
        family_stats.seeded = family_stats.seeded || source_stats.seeded;
        family_stats.seed_len =
            std::max(family_stats.seed_len, source_stats.seed_len);
      }
      std::sort(mapped.begin(), mapped.end());
      for (const MappedHit& entry : mapped) {
        result.hits.push_back({static_cast<uint32_t>(entry.pos),
                               entry.hit.length, entry.hit.errors});
      }
      result.found = !result.hits.empty();
      family_stats.verified = result.hits.size();
      RecordApproxObs(family_stats);
      break;
    }
  }

  // A fired token trumps whatever partial payload the abandoned walks
  // left behind — never reported as kOk.
  if (cancel != nullptr) {
    Status status = cancel->ToStatus();
    if (!status.ok()) {
      QueryResult stopped;
      stopped.stats = result.stats;  // work done before the stop counts
      stopped.status_code = status.code();
      stopped.error = std::string(status.message());
      RecordLifecycleObs(query, stopped, trace);
      return stopped;
    }
  }
  RecordLifecycleObs(query, result, trace);
  return result;
}

// --- construction / open ---------------------------------------------------

DynamicFamily::DynamicFamily(std::string path, const Alphabet& alphabet,
                             Options options)
    : path_(std::move(path)), alphabet_(alphabet), options_(std::move(options)) {}

DynamicFamily::~DynamicFamily() {
  {
    std::lock_guard<std::mutex> lock(bg_mu_);
    bg_stop_ = true;
  }
  bg_cv_.notify_all();
  if (background_.joinable()) background_.join();
}

Result<std::unique_ptr<DynamicFamily>> DynamicFamily::Create(
    const std::string& path, const Alphabet& alphabet,
    const Options& options) {
  if (alphabet.kind() == Alphabet::Kind::kByte) {
    return Status::InvalidArgument(
        "dynamic families require an encodable alphabet (dna, protein or "
        "ascii): frozen shards are compact images");
  }
  if (std::ifstream probe(path, std::ios::binary); probe) {
    return Status::FailedPrecondition(path +
                                      " already exists; open it instead");
  }
  std::unique_ptr<DynamicFamily> family(
      new DynamicFamily(path, alphabet, options));
  auto generation = std::make_shared<Generation>();
  generation->version = 1;
  generation->cache_id = core::NextIndexCacheId();
  generation->BuildDerived();
  SPINE_RETURN_IF_ERROR(family->WriteManifest(*generation));
  family->current_ = std::move(generation);
  family->StartBackgroundThread();
  return family;
}

Result<std::unique_ptr<DynamicFamily>> DynamicFamily::Open(
    const std::string& path, const Options& options) {
  Alphabet alphabet = Alphabet::Dna();
  Result<std::shared_ptr<Generation>> generation =
      LoadGeneration(path, options, &alphabet);
  if (!generation.ok()) return generation.status();
  std::unique_ptr<DynamicFamily> family(
      new DynamicFamily(path, alphabet, options));
  family->current_ = *std::move(generation);
  family->StartBackgroundThread();
  return family;
}

// --- generation plumbing ---------------------------------------------------

std::shared_ptr<const DynamicFamily::Generation>
DynamicFamily::CurrentGeneration() const {
  std::lock_guard<std::mutex> lock(gen_mu_);
  return current_;
}

void DynamicFamily::Publish(std::shared_ptr<const Generation> generation) {
  std::lock_guard<std::mutex> lock(gen_mu_);
  current_ = std::move(generation);
}

uint64_t DynamicFamily::size() const {
  return CurrentGeneration()->total_chars;
}

uint64_t DynamicFamily::cache_id() const {
  return CurrentGeneration()->cache_id;
}

uint64_t DynamicFamily::generation_version() const {
  return CurrentGeneration()->version;
}

uint32_t DynamicFamily::live_documents() const {
  return static_cast<uint32_t>(CurrentGeneration()->live.size());
}

uint32_t DynamicFamily::next_doc_id() const {
  return CurrentGeneration()->next_doc_id;
}

uint32_t DynamicFamily::frozen_shard_count() const {
  return static_cast<uint32_t>(CurrentGeneration()->shards.size());
}

uint32_t DynamicFamily::memtable_documents() const {
  std::shared_ptr<const Generation> gen = CurrentGeneration();
  if (gen->memtable == nullptr) return 0;
  std::shared_lock<std::shared_mutex> lock(gen->memtable->mu);
  return gen->memtable->index.string_count();
}

uint32_t DynamicFamily::tombstone_count() const {
  return static_cast<uint32_t>(CurrentGeneration()->tombstones.size());
}

QueryResult DynamicFamily::Execute(const Query& query,
                                   obs::TraceContext* trace,
                                   const CancelToken* cancel) const {
  std::shared_ptr<const Generation> gen = CurrentGeneration();
  return ExecuteOnGeneration(*gen, query, trace, cancel);
}

std::shared_ptr<const core::Index> DynamicFamily::PinSnapshot() const {
  return std::make_shared<Snapshot>(alphabet_, CurrentGeneration());
}

Status DynamicFamily::VerifyStructure() const {
  return VerifyGeneration(*CurrentGeneration());
}

uint64_t DynamicFamily::MemoryBytes() const {
  return GenerationMemoryBytes(*CurrentGeneration());
}

Status DynamicFamily::VerifyGeneration(const Generation& gen) {
  for (const std::shared_ptr<const FrozenShard>& shard : gen.shards) {
    if (shard->mapping != nullptr) {
      SPINE_RETURN_IF_ERROR(shard->mapping->CheckFence());
    }
    if (shard->index.string_count() != shard->doc_ids.size()) {
      return Status::Corruption("shard " + shard->filename +
                                " document count mismatch");
    }
    SPINE_RETURN_IF_ERROR(shard->index.underlying().Validate());
  }
  if (gen.memtable != nullptr) {
    std::shared_lock<std::shared_mutex> lock(gen.memtable->mu);
    if (gen.memtable_visible > gen.memtable->index.string_count()) {
      return Status::Corruption(
          "generation sees more memtable documents than exist");
    }
    SPINE_RETURN_IF_ERROR(gen.memtable->index.underlying().Validate());
  }
  for (const uint32_t id : gen.tombstones) {
    if (id >= gen.next_doc_id) {
      return Status::Corruption("tombstone references an unassigned doc id");
    }
  }
  return Status::OK();
}

uint64_t DynamicFamily::GenerationMemoryBytes(const Generation& gen) {
  uint64_t total = 0;
  for (const std::shared_ptr<const FrozenShard>& shard : gen.shards) {
    total += shard->index.underlying().MemoryBytes();
    total += shard->doc_ids.size() * sizeof(uint32_t);
    total += shard->starts.size() * sizeof(uint64_t);
  }
  if (gen.memtable != nullptr) {
    std::shared_lock<std::shared_mutex> lock(gen.memtable->mu);
    total += gen.memtable->index.underlying().MemoryBytes();
    total += gen.memtable->chars;
  }
  total += gen.live.size() * sizeof(Generation::DocRef);
  return total;
}

// --- mutations -------------------------------------------------------------

Result<uint32_t> DynamicFamily::InsertDocument(std::string_view text) {
  Result<std::string> canonical = CanonicalizeDocument(alphabet_, text);
  if (!canonical.ok()) return canonical.status();
  std::lock_guard<std::mutex> writer(writer_mu_);
  std::shared_ptr<const Generation> cur = CurrentGeneration();
  auto next = std::make_shared<Generation>();
  next->version = cur->version + 1;
  next->cache_id = core::NextIndexCacheId();
  next->next_doc_id = cur->next_doc_id + 1;
  next->shards = cur->shards;
  next->tombstones = cur->tombstones;
  next->memtable = cur->memtable != nullptr
                       ? cur->memtable
                       : std::make_shared<MemtableShard>(alphabet_);
  const uint32_t doc_id = cur->next_doc_id;
  {
    std::unique_lock<std::shared_mutex> lock(next->memtable->mu);
    SPINE_RETURN_IF_ERROR(next->memtable->index.AddString(*canonical));
    next->memtable->doc_ids.push_back(doc_id);
    next->memtable->chars += canonical->size();
    next->memtable->texts.push_back(std::move(*canonical));
  }
  // The newest generation always sees the full memtable; older pinned
  // generations keep their smaller visible counts.
  next->memtable_visible =
      static_cast<uint32_t>(next->memtable->doc_ids.size());
  next->BuildDerived();
  Publish(next);
  SPINE_OBS_COUNT("lifecycle.inserts", 1);
  if (options_.flush_threshold_bytes > 0 &&
      next->memtable->chars >= options_.flush_threshold_bytes) {
    KickBackground();
  }
  return doc_id;
}

Status DynamicFamily::DeleteDocument(uint32_t doc_id) {
  std::lock_guard<std::mutex> writer(writer_mu_);
  std::shared_ptr<const Generation> cur = CurrentGeneration();
  const auto it = std::lower_bound(
      cur->live.begin(), cur->live.end(), doc_id,
      [](const Generation::DocRef& ref, uint32_t id) {
        return ref.doc_id < id;
      });
  if (it == cur->live.end() || it->doc_id != doc_id) {
    return Status::NotFound("document " + std::to_string(doc_id) +
                            " is not live");
  }
  auto next = std::make_shared<Generation>();
  next->version = cur->version + 1;
  next->cache_id = core::NextIndexCacheId();
  next->next_doc_id = cur->next_doc_id;
  next->shards = cur->shards;
  next->memtable = cur->memtable;
  next->memtable_visible = cur->memtable_visible;
  next->tombstones = cur->tombstones;
  next->tombstones.insert(std::upper_bound(next->tombstones.begin(),
                                           next->tombstones.end(), doc_id),
                          doc_id);
  next->BuildDerived();
  if (it->source < cur->shards.size()) {
    // Deleting a frozen document: the tombstone must survive reopen,
    // so the manifest commits before the generation publishes. On
    // failure the old generation keeps serving — the doc stays live.
    SPINE_RETURN_IF_ERROR(WriteManifest(*next));
  }
  Publish(next);
  SPINE_OBS_COUNT("lifecycle.deletes", 1);
  return Status::OK();
}

Status DynamicFamily::Flush() {
  std::lock_guard<std::mutex> writer(writer_mu_);
  return FlushLocked();
}

Status DynamicFamily::Compact() {
  std::lock_guard<std::mutex> writer(writer_mu_);
  return CompactLocked();
}

Status DynamicFamily::Reload() {
  std::lock_guard<std::mutex> writer(writer_mu_);
  return ReloadLocked();
}

Status DynamicFamily::FlushLocked() {
  std::shared_ptr<const Generation> cur = CurrentGeneration();
  if (cur->memtable == nullptr || cur->memtable_visible == 0) {
    return Status::OK();
  }
  // The writer lock stops the memtable growing mid-flush, and the
  // newest generation sees all of it, so no document is left behind.
  std::vector<uint32_t> doc_ids;
  std::vector<std::string> texts;
  std::vector<uint32_t> dropped;  // tombstones resolved by this flush
  {
    std::shared_lock<std::shared_mutex> lock(cur->memtable->mu);
    for (uint32_t i = 0; i < cur->memtable_visible; ++i) {
      const uint32_t id = cur->memtable->doc_ids[i];
      if (std::binary_search(cur->tombstones.begin(), cur->tombstones.end(),
                             id)) {
        dropped.push_back(id);
      } else {
        doc_ids.push_back(id);
        texts.push_back(cur->memtable->texts[i]);
      }
    }
  }
  auto next = std::make_shared<Generation>();
  next->version = cur->version + 1;
  next->cache_id = core::NextIndexCacheId();
  next->next_doc_id = cur->next_doc_id;
  next->shards = cur->shards;
  // Tombstones that only masked memtable documents die with them.
  std::set_difference(cur->tombstones.begin(), cur->tombstones.end(),
                      dropped.begin(), dropped.end(),
                      std::back_inserter(next->tombstones));
  if (!doc_ids.empty()) {
    Result<std::shared_ptr<const FrozenShard>> shard =
        WriteShard(next->version, doc_ids, texts);
    if (!shard.ok()) return shard.status();
    next->shards.push_back(*std::move(shard));
  }
  next->BuildDerived();
  Status status = WriteManifest(*next);
  if (!status.ok()) {
    if (!doc_ids.empty()) {
      // Roll back the fresh image; the old generation stays fully live.
      std::remove(SiblingPath(path_, next->shards.back()->filename).c_str());
    }
    return status;
  }
  Publish(next);
  SPINE_OBS_COUNT("lifecycle.flushes", 1);
  return Status::OK();
}

Status DynamicFamily::CompactLocked() {
  SPINE_RETURN_IF_ERROR(FlushLocked());
  std::shared_ptr<const Generation> cur = CurrentGeneration();
  if (cur->shards.size() <= 1 && cur->tombstones.empty()) {
    return Status::OK();  // already compact
  }
  std::vector<uint32_t> doc_ids;
  std::vector<std::string> texts;
  doc_ids.reserve(cur->live.size());
  texts.reserve(cur->live.size());
  for (const Generation::DocRef& doc : cur->live) {
    doc_ids.push_back(doc.doc_id);
    texts.push_back(cur->shards[doc.source]->index.StringText(doc.local));
  }
  auto next = std::make_shared<Generation>();
  next->version = cur->version + 1;
  next->cache_id = core::NextIndexCacheId();
  next->next_doc_id = cur->next_doc_id;
  if (!doc_ids.empty()) {
    Result<std::shared_ptr<const FrozenShard>> shard =
        WriteShard(next->version, doc_ids, texts);
    if (!shard.ok()) return shard.status();
    next->shards.push_back(*std::move(shard));
  }
  next->BuildDerived();
  Status status = WriteManifest(*next);
  if (!status.ok()) {
    if (!next->shards.empty()) {
      std::remove(SiblingPath(path_, next->shards.back()->filename).c_str());
    }
    return status;
  }
  Publish(next);
  // The old images are unreferenced by the committed manifest; pinned
  // readers keep them alive through open descriptors or heap copies,
  // so unlinking now is safe.
  for (const std::shared_ptr<const FrozenShard>& shard : cur->shards) {
    std::remove(SiblingPath(path_, shard->filename).c_str());
  }
  SPINE_OBS_COUNT("lifecycle.compactions", 1);
  return Status::OK();
}

Status DynamicFamily::ReloadLocked() {
  Alphabet alphabet = Alphabet::Dna();
  Result<std::shared_ptr<Generation>> loaded =
      LoadGeneration(path_, options_, &alphabet);
  if (!loaded.ok()) return loaded.status();
  if (alphabet.kind() != alphabet_.kind()) {
    return Status::FailedPrecondition(
        "manifest alphabet changed across reload");
  }
  std::shared_ptr<const Generation> cur = CurrentGeneration();
  std::shared_ptr<Generation> next = *std::move(loaded);
  // Keep the version counter monotone: volatile inserts bumped the
  // in-memory version past what the manifest recorded.
  if (next->version < cur->version + 1) next->version = cur->version + 1;
  Publish(std::move(next));
  SPINE_OBS_COUNT("lifecycle.reloads", 1);
  return Status::OK();
}

// --- persistence -----------------------------------------------------------

Status DynamicFamily::RunFaultHook(std::string_view step) const {
  if (!options_.write_fault_hook) return Status::OK();
  return options_.write_fault_hook(step);
}

Result<std::shared_ptr<const DynamicFamily::FrozenShard>>
DynamicFamily::WriteShard(uint64_t version,
                          const std::vector<uint32_t>& doc_ids,
                          const std::vector<std::string>& texts) const {
  GeneralizedCompactSpine image(alphabet_);
  for (size_t i = 0; i < texts.size(); ++i) {
    SPINE_RETURN_IF_ERROR(
        image.AddString(texts[i], "doc-" + std::to_string(doc_ids[i])));
  }
  // Image files are uniquely named per generation and never rewritten
  // in place — the crash-consistency contract's load-bearing half.
  const std::string filename =
      BaseName(path_) + ".g" + std::to_string(version);
  const std::string full = SiblingPath(path_, filename);
  Status status = RunFaultHook("shard.write");
  if (status.ok()) status = image.Save(full);
  if (status.ok()) status = RunFaultHook("shard.finish");
  Result<std::string> bytes =
      status.ok() ? ReadFileBytes(full) : Result<std::string>(status);
  if (!bytes.ok()) {
    std::remove(full.c_str());
    return bytes.status();
  }
  auto shard = std::make_shared<FrozenShard>(std::move(image));
  shard->filename = filename;
  shard->file_size = bytes->size();
  shard->file_crc = Crc32c(bytes->data(), bytes->size());
  shard->doc_ids = doc_ids;
  shard->starts.reserve(texts.size());
  uint64_t start = 0;
  for (const std::string& text : texts) {
    shard->starts.push_back(start);
    start += text.size() + 1;
  }
  return std::shared_ptr<const FrozenShard>(std::move(shard));
}

Status DynamicFamily::WriteManifest(const Generation& generation) const {
  std::vector<uint32_t> frozen_ids;
  for (const std::shared_ptr<const FrozenShard>& shard : generation.shards) {
    frozen_ids.insert(frozen_ids.end(), shard->doc_ids.begin(),
                      shard->doc_ids.end());
  }
  // Only tombstones of frozen documents are durable; memtable deletes
  // resolve at flush and would dangle after a reopen.
  std::vector<uint32_t> durable_tombstones;
  for (const uint32_t id : generation.tombstones) {
    if (std::binary_search(frozen_ids.begin(), frozen_ids.end(), id)) {
      durable_tombstones.push_back(id);
    }
  }
  SPINE_RETURN_IF_ERROR(RunFaultHook("manifest.write"));
  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("cannot open " + tmp + " for writing");
    serde::Writer w(out);
    w.Pod(kShardManifestMagic);
    w.Pod(kDynamicManifestVersion);
    w.Pod(static_cast<uint32_t>(alphabet_.kind()));
    w.Pod<uint64_t>(generation.version);
    w.Pod<uint32_t>(generation.next_doc_id);
    w.Pod<uint32_t>(static_cast<uint32_t>(generation.shards.size()));
    for (const std::shared_ptr<const FrozenShard>& shard : generation.shards) {
      w.Pod<uint32_t>(static_cast<uint32_t>(shard->filename.size()));
      w.Bytes(shard->filename.data(), shard->filename.size());
      w.Pod<uint64_t>(shard->file_size);
      w.Pod<uint32_t>(shard->file_crc);
      w.Vec(shard->doc_ids);
    }
    w.Vec(durable_tombstones);
    w.WriteCrcFooter();
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return Status::IoError("write failure on " + tmp);
    }
  }
  Status hook = RunFaultHook("manifest.rename");
  if (!hook.ok()) {
    std::remove(tmp.c_str());
    return hook;
  }
  // The commit point: readers either see the old manifest or the new
  // one in its entirety, never a torn mix.
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    Status status = Status::IoError("rename(" + tmp + ", " + path_ +
                                    "): " + std::strerror(errno));
    std::remove(tmp.c_str());
    return status;
  }
  return Status::OK();
}

Result<std::shared_ptr<DynamicFamily::Generation>>
DynamicFamily::LoadGeneration(const std::string& path, const Options& options,
                              Alphabet* alphabet_out) {
  Result<std::string> manifest_bytes = ReadFileBytes(path);
  if (!manifest_bytes.ok()) return manifest_bytes.status();
  std::istringstream stream(*manifest_bytes);
  serde::Reader r(stream);
  const auto corrupt = [&path](const std::string& what) {
    return Status::Corruption(what + " in " + path);
  };
  uint32_t magic = 0;
  uint32_t version = 0;
  uint32_t alphabet_code = 0;
  if (!r.Pod(&magic) || magic != kShardManifestMagic) {
    return corrupt("bad family manifest magic");
  }
  if (!r.Pod(&version) || version != kDynamicManifestVersion) {
    return corrupt("unsupported family manifest version");
  }
  if (!r.Pod(&alphabet_code)) return corrupt("truncated alphabet kind");
  Result<Alphabet> alphabet = AlphabetFromKindCode(alphabet_code);
  if (!alphabet.ok()) return corrupt("bad alphabet kind");
  if (alphabet->kind() == Alphabet::Kind::kByte) {
    return corrupt("byte alphabet is not valid for a dynamic family");
  }
  uint64_t generation_version = 0;
  uint32_t next_doc_id = 0;
  uint32_t shard_count = 0;
  if (!r.Pod(&generation_version) || generation_version == 0) {
    return corrupt("bad generation version");
  }
  if (!r.Pod(&next_doc_id)) return corrupt("truncated next doc id");
  if (!r.Pod(&shard_count) || shard_count > kMaxDynamicShards) {
    return corrupt("absurd shard count");
  }
  struct ShardMeta {
    std::string filename;
    uint64_t file_size = 0;
    uint32_t file_crc = 0;
    std::vector<uint32_t> doc_ids;
  };
  std::vector<ShardMeta> metas;
  metas.reserve(shard_count);
  int64_t prev_id = -1;
  for (uint32_t s = 0; s < shard_count; ++s) {
    ShardMeta meta;
    uint32_t name_length = 0;
    if (!r.Pod(&name_length) || name_length == 0 || name_length > 4096) {
      return corrupt("bad shard filename length");
    }
    meta.filename.resize(name_length);
    if (!r.Bytes(meta.filename.data(), name_length)) {
      return corrupt("truncated shard filename");
    }
    if (meta.filename.find_first_of("/\\") != std::string::npos ||
        meta.filename.find("..") != std::string::npos) {
      return corrupt("shard filename escapes the family directory");
    }
    if (!r.Pod(&meta.file_size)) return corrupt("truncated shard size");
    if (!r.Pod(&meta.file_crc)) return corrupt("truncated shard checksum");
    if (!r.Vec(&meta.doc_ids) || meta.doc_ids.empty()) {
      return corrupt("empty shard document list");
    }
    for (const uint32_t id : meta.doc_ids) {
      if (static_cast<int64_t>(id) <= prev_id || id >= next_doc_id) {
        return corrupt("shard document ids out of order");
      }
      prev_id = id;
    }
    metas.push_back(std::move(meta));
  }
  std::vector<uint32_t> tombstones;
  if (!r.Vec(&tombstones)) return corrupt("truncated tombstone set");
  std::vector<uint32_t> frozen_ids;
  for (const ShardMeta& meta : metas) {
    frozen_ids.insert(frozen_ids.end(), meta.doc_ids.begin(),
                      meta.doc_ids.end());
  }
  int64_t prev_tombstone = -1;
  for (const uint32_t id : tombstones) {
    if (static_cast<int64_t>(id) <= prev_tombstone) {
      return corrupt("tombstones out of order");
    }
    prev_tombstone = id;
    if (!std::binary_search(frozen_ids.begin(), frozen_ids.end(), id)) {
      return corrupt("tombstone references no frozen document");
    }
  }
  if (!r.VerifyCrcFooter()) return corrupt("manifest checksum mismatch");
  if (r.consumed() + sizeof(uint32_t) != manifest_bytes->size()) {
    return corrupt("trailing bytes after manifest footer");
  }

  auto generation = std::make_shared<Generation>();
  generation->version = generation_version;
  generation->cache_id = core::NextIndexCacheId();
  generation->next_doc_id = next_doc_id;
  generation->tombstones = std::move(tombstones);
  for (ShardMeta& meta : metas) {
    const std::string full = SiblingPath(path, meta.filename);
    std::shared_ptr<const storage::MmapRegion> mapping;
    const auto load_image = [&]() -> Result<GeneralizedCompactSpine> {
      if (options.open.mode == core::OpenMode::kMmap) {
        Result<std::shared_ptr<storage::MmapRegion>> region =
            storage::MmapRegion::MapShared(full,
                                           MmapOptionsFrom(options.open));
        if (!region.ok()) return region.status();
        if ((*region)->size() != meta.file_size) {
          return Status::Corruption("shard " + meta.filename +
                                    " size disagrees with the manifest");
        }
        if (options.open.verify &&
            Crc32c((*region)->data(), (*region)->size()) != meta.file_crc) {
          return Status::Corruption("shard " + meta.filename +
                                    " checksum mismatch");
        }
        mapping = *region;
        return GeneralizedCompactSpine::LoadFromMemory(
            (*region)->data(), (*region)->size(), options.open.verify,
            *std::move(region));
      }
      Result<std::string> bytes = ReadFileBytes(full);
      if (!bytes.ok()) return bytes.status();
      if (bytes->size() != meta.file_size) {
        return Status::Corruption("shard " + meta.filename +
                                  " size disagrees with the manifest");
      }
      if (Crc32c(bytes->data(), bytes->size()) != meta.file_crc) {
        return Status::Corruption("shard " + meta.filename +
                                  " checksum mismatch");
      }
      // new[] guarantees max_align; LoadFromMemory needs 8-aligned data
      // which a std::string's buffer does not promise.
      std::shared_ptr<uint8_t[]> buffer(new uint8_t[bytes->size()]);
      std::memcpy(buffer.get(), bytes->data(), bytes->size());
      return GeneralizedCompactSpine::LoadFromMemory(
          buffer.get(), bytes->size(), /*verify=*/true, buffer);
    };
    Result<GeneralizedCompactSpine> image = load_image();
    if (!image.ok()) return image.status();
    if (image->string_count() != meta.doc_ids.size()) {
      return Status::Corruption("shard " + meta.filename +
                                " document count disagrees with the manifest");
    }
    if (image->alphabet().kind() != alphabet->kind()) {
      return Status::Corruption("shard " + meta.filename +
                                " alphabet disagrees with the manifest");
    }
    auto shard = std::make_shared<FrozenShard>(std::move(*image));
    shard->filename = std::move(meta.filename);
    shard->file_size = meta.file_size;
    shard->file_crc = meta.file_crc;
    shard->doc_ids = std::move(meta.doc_ids);
    shard->mapping = std::move(mapping);
    shard->starts.reserve(shard->doc_ids.size());
    uint64_t start = 0;
    for (uint32_t i = 0; i < shard->doc_ids.size(); ++i) {
      shard->starts.push_back(start);
      start += shard->index.StringLength(i) + 1;
    }
    generation->shards.push_back(std::move(shard));
  }
  generation->BuildDerived();
  *alphabet_out = *alphabet;
  return generation;
}

// --- background flush / compaction -----------------------------------------

void DynamicFamily::StartBackgroundThread() {
  if (options_.flush_threshold_bytes == 0 && options_.compact_fanout == 0) {
    return;
  }
  background_ = std::thread([this] { BackgroundLoop(); });
}

void DynamicFamily::KickBackground() {
  {
    std::lock_guard<std::mutex> lock(bg_mu_);
    bg_kick_ = true;
  }
  bg_cv_.notify_all();
}

void DynamicFamily::BackgroundLoop() {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(bg_mu_);
      bg_cv_.wait(lock, [this] { return bg_stop_ || bg_kick_; });
      if (bg_stop_) return;
      bg_kick_ = false;
    }
    Status status = Status::OK();
    {
      std::lock_guard<std::mutex> writer(writer_mu_);
      std::shared_ptr<const Generation> cur = CurrentGeneration();
      if (options_.flush_threshold_bytes > 0 && cur->memtable != nullptr &&
          cur->memtable->chars >= options_.flush_threshold_bytes) {
        status = FlushLocked();
      }
      if (status.ok() && options_.compact_fanout > 0) {
        cur = CurrentGeneration();
        if (cur->shards.size() >= options_.compact_fanout) {
          status = CompactLocked();
        }
      }
    }
    if (!status.ok()) {
      // A background failure never takes the family down: the prior
      // generation keeps serving; the error is parked for TakeBackgroundError.
      SPINE_OBS_COUNT("lifecycle.background_errors", 1);
      std::lock_guard<std::mutex> lock(bg_mu_);
      bg_error_ = status;
    }
  }
}

Status DynamicFamily::TakeBackgroundError() {
  std::lock_guard<std::mutex> lock(bg_mu_);
  Status status = bg_error_;
  bg_error_ = Status::OK();
  return status;
}

}  // namespace spine::shard
