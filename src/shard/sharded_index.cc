#include "shard/sharded_index.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <utility>

#include "common/crc32c.h"
#include "common/serde.h"
#include "compact/serializer.h"
#include "core/approx.h"
#include "core/matcher.h"
#include "core/search.h"
#include "engine/thread_pool.h"
#include "obs/metrics.h"

namespace spine::shard {

namespace {

// Backstop against corrupt manifests claiming absurd shard counts.
constexpr uint32_t kMaxShards = 1u << 20;

std::string DirName(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

std::string BaseName(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

Result<std::string> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IoError("failed reading " + path);
  return std::move(buffer).str();
}

Result<Alphabet> AlphabetFromKindCode(uint32_t code) {
  switch (static_cast<Alphabet::Kind>(code)) {
    case Alphabet::Kind::kDna: return Alphabet::Dna();
    case Alphabet::Kind::kProtein: return Alphabet::Protein();
    case Alphabet::Kind::kByte: return Alphabet::Byte();
    case Alphabet::Kind::kAscii: return Alphabet::Ascii();
  }
  return Status::Corruption("unknown alphabet kind " + std::to_string(code));
}

// Mirrors the observability block of core/query.h ExecuteQuery: the
// family answers a query with direct generic-algorithm calls (never
// per-shard ExecuteQuery, which would count one logical query K
// times), so it reports the per-kind counter and aggregated work
// counters itself.
void RecordFamilyObs(const Query& query, const QueryResult& result,
                     obs::TraceContext* trace) {
#if !defined(SPINE_OBS_DISABLED)
  static obs::Counter* const kind_counters[kQueryKindCount] = {
      &obs::Registry::Default().GetCounter("core.queries.contains"),
      &obs::Registry::Default().GetCounter("core.queries.findall"),
      &obs::Registry::Default().GetCounter("core.queries.match"),
      &obs::Registry::Default().GetCounter("core.queries.ms"),
      &obs::Registry::Default().GetCounter("core.queries.mismatch"),
      &obs::Registry::Default().GetCounter("core.queries.editdist"),
  };
  kind_counters[static_cast<size_t>(query.kind)]->Add(1);
  SPINE_OBS_COUNT("core.vertebra_steps", result.stats.nodes_checked);
  SPINE_OBS_COUNT("core.link_traversals", result.stats.link_traversals);
  SPINE_OBS_COUNT("core.chain_hops", result.stats.chain_hops);
  if (trace != nullptr) {
    trace->Note("nodes_checked", result.stats.nodes_checked);
    trace->Note("link_traversals", result.stats.link_traversals);
    trace->Note("chain_hops", result.stats.chain_hops);
    trace->Note("found", result.found ? 1 : 0);
  }
#else
  (void)query;
  (void)result;
  (void)trace;
#endif
}

}  // namespace

Result<std::unique_ptr<ShardedIndex>> ShardedIndex::Build(
    const Alphabet& alphabet, std::string_view text, const Options& options) {
  if (options.shards == 0) {
    return Status::InvalidArgument("shard count must be >= 1");
  }
  if (options.max_pattern == 0) {
    return Status::InvalidArgument(
        "shard overlap margin (max_pattern) must be >= 1");
  }
  const uint64_t n = text.size();
  // More shards than characters would only add empty slices.
  const uint32_t shards = static_cast<uint32_t>(
      std::min<uint64_t>(options.shards, std::max<uint64_t>(n, 1)));

  std::unique_ptr<ShardedIndex> family(
      new ShardedIndex(alphabet, n, options.max_pattern));
  family->infos_.reserve(shards);
  family->shards_.reserve(shards);
  const uint64_t base = n / shards;
  const uint64_t rem = n % shards;
  uint64_t start = 0;
  for (uint32_t i = 0; i < shards; ++i) {
    const uint64_t len = base + (i < rem ? 1 : 0);
    family->infos_.push_back(
        {start, start + len,
         std::min<uint64_t>(n, start + len + options.max_pattern)});
    family->shards_.emplace_back(alphabet);
    start += len;
  }

  // Per-shard construction is independent (each shard appends only to
  // its own index), so it fans out across the pool. shards_ and infos_
  // are fully sized before any task starts and never resized after.
  std::vector<Status> statuses(shards, Status::OK());
  {
    engine::ThreadPool pool(options.build_threads);
    for (uint32_t i = 0; i < shards; ++i) {
      pool.Submit([raw = family.get(), &statuses, text, i] {
        const ShardInfo& info = raw->infos_[i];
        statuses[i] = raw->shards_[i].AppendString(
            text.substr(info.core_start, info.slice_end - info.core_start));
      });
    }
    pool.Wait();
  }
  for (uint32_t i = 0; i < shards; ++i) {
    if (!statuses[i].ok()) {
      return Status(statuses[i].code(), "shard " + std::to_string(i) + ": " +
                                            std::string(statuses[i].message()));
    }
  }
  return family;
}

QueryResult ShardedIndex::Execute(const Query& query,
                                  obs::TraceContext* trace,
                                  const CancelToken* cancel) const {
#if defined(SPINE_OBS_DISABLED)
  trace = nullptr;
#endif
  obs::SpanTimer exec_timer(trace, "exec_us");
  // Mapped families fence first: a shrunk shard file must surface as a
  // clean kIoError, never as a SIGBUS inside a walk.
  {
    Status fence = CheckMappingFence();
    if (!fence.ok()) {
      QueryResult failed;
      failed.status_code = fence.code();
      failed.error = std::string(fence.message());
      return failed;
    }
  }
  const bool approx_kind = query.kind == QueryKind::kMismatch ||
                           query.kind == QueryKind::kEditDistance;
  // Degenerate approximate queries (empty pattern, budget >= pattern
  // length) are vacuously empty by core/query.h contract — answered
  // before admission, since they name no window that could straddle a
  // boundary.
  if (approx_kind && (query.pattern.empty() ||
                      query.max_errors >= query.pattern.size())) {
    QueryResult empty;
    RecordFamilyObs(query, empty, trace);
    return empty;
  }
  // Admission: a longer pattern could straddle a shard boundary without
  // any shard seeing it whole, for every query kind (matching
  // statistics are only exact while no match can exceed the margin).
  // An edit-distance window can run max_errors characters past the
  // pattern length (insertions), so the margin must cover that too.
  const uint64_t window_len =
      query.pattern.size() +
      (query.kind == QueryKind::kEditDistance ? query.max_errors : 0);
  if (window_len > max_pattern_) {
    QueryResult rejected;
    rejected.status_code = StatusCode::kInvalidArgument;
    rejected.error = "query window length " + std::to_string(window_len) +
                     " exceeds the shard overlap margin (max_pattern=" +
                     std::to_string(max_pattern_) +
                     "); rebuild with a larger --max-pattern";
    return rejected;
  }
  SPINE_OBS_COUNT("shard.queries", shard_count());
#if !defined(SPINE_OBS_DISABLED)
  {
    static obs::Histogram& fanout = obs::Registry::Default().GetHistogram(
        "shard.fanout", obs::Histogram::ExponentialBounds(1, 2, 8));
    fanout.Observe(shard_count());
  }
  if (trace != nullptr) trace->Note("shard_fanout", shard_count());
#endif
  QueryResult result;
  switch (query.kind) {
    case QueryKind::kContains:
      result = ExecuteContains(query, cancel);
      break;
    case QueryKind::kFindAll:
      result = ExecuteFindAll(query, cancel);
      break;
    case QueryKind::kMaximalMatches:
      result = ExecuteMaximalMatches(query, cancel);
      break;
    case QueryKind::kMatchingStats:
      result = ExecuteMatchingStats(query, cancel);
      break;
    case QueryKind::kMismatch:
    case QueryKind::kEditDistance:
      result = ExecuteApprox(query, cancel);
      break;
  }
  RecordFamilyObs(query, result, trace);
  // A fired token invalidates whatever partial merge the walks left.
  if (cancel != nullptr) {
    Status status = cancel->ToStatus();
    if (!status.ok()) {
      QueryResult timed_out;
      timed_out.stats = result.stats;
      timed_out.status_code = status.code();
      timed_out.error = std::string(status.message());
      return timed_out;
    }
  }
  return result;
}

QueryResult ShardedIndex::ExecuteContains(const Query& query,
                                          const CancelToken* cancel) const {
  QueryResult result;
  for (size_t i = 0; i < shards_.size(); ++i) {
    // Warm the next shard's root Link Table line while this shard
    // walks; shards are probed strictly in order on the miss path.
    if (i + 1 < shards_.size()) shards_[i + 1].PrefetchNode(kRootNode);
    if (GenericFindFirstEnd(shards_[i], query.pattern, &result.stats, cancel)
            .has_value()) {
      result.found = true;
      break;
    }
  }
  return result;
}

QueryResult ShardedIndex::ExecuteFindAll(const Query& query,
                                         const CancelToken* cancel) const {
  QueryResult result;
  if (!query.pattern.empty()) {
    const uint32_t m = static_cast<uint32_t>(query.pattern.size());
    std::vector<std::vector<uint32_t>> local(shards_.size());
    for (size_t i = 0; i < shards_.size(); ++i) {
      local[i] =
          GenericFindAll(shards_[i], query.pattern, &result.stats, cancel);
    }
    SPINE_OBS_SCOPED_TIMER_US("shard.merge_us");
    for (size_t i = 0; i < shards_.size(); ++i) {
      for (uint32_t pos : local[i]) {
        // Keep an occurrence only in the shard whose core range owns
        // its start; overlap copies are the next shard's problem.
        const uint64_t global = infos_[i].core_start + pos;
        if (global < infos_[i].core_end) {
          result.hits.push_back({static_cast<uint32_t>(global), m, 0});
        }
      }
    }
  }
  result.found = !result.hits.empty();
  return result;
}

std::vector<uint32_t> ShardedIndex::MergedMatchingStats(
    std::string_view pattern, SearchStats* stats,
    const CancelToken* cancel) const {
  std::vector<uint32_t> merged(pattern.size(), 0);
  for (const CompactSpineIndex& shard : shards_) {
    const std::vector<uint32_t> local =
        GenericMatchingStatistics(shard, pattern, stats, cancel);
    for (size_t q = 0; q < merged.size(); ++q) {
      merged[q] = std::max(merged[q], local[q]);
    }
  }
  return merged;
}

QueryResult ShardedIndex::ExecuteMatchingStats(
    const Query& query, const CancelToken* cancel) const {
  QueryResult result;
  result.matching_stats =
      MergedMatchingStats(query.pattern, &result.stats, cancel);
  {
    SPINE_OBS_SCOPED_TIMER_US("shard.merge_us");
    result.found = std::any_of(result.matching_stats.begin(),
                               result.matching_stats.end(),
                               [](uint32_t v) { return v > 0; });
  }
  return result;
}

QueryResult ShardedIndex::ExecuteMaximalMatches(
    const Query& query, const CancelToken* cancel) const {
  const uint32_t min_len = std::max<uint32_t>(query.min_len, 1);
  const std::string_view pattern = query.pattern;
  QueryResult result;
  // Since no match can exceed the admitted pattern length (<= margin),
  // the merged statistics equal the monolithic ones, and the maximal
  // matches are exactly the positions where ms[q] >= min_len and
  // ms[q-1] <= ms[q] (see core/matcher.h).
  const std::vector<uint32_t> ms =
      MergedMatchingStats(pattern, &result.stats, cancel);
  SPINE_OBS_SCOPED_TIMER_US("shard.merge_us");
  CancelCheckpoint checkpoint(cancel);
  for (uint32_t q = 0; q < ms.size(); ++q) {
    if (checkpoint.ShouldStop()) break;
    const uint32_t len = ms[q];
    if (len < min_len) continue;
    if (q > 0 && ms[q - 1] > len) continue;  // inside an earlier match
    const std::string_view sub = pattern.substr(q, len);
    if (query.expand_occurrences) {
      for (size_t i = 0; i < shards_.size(); ++i) {
        for (uint32_t pos :
             GenericFindAll(shards_[i], sub, &result.stats, cancel)) {
          const uint64_t global = infos_[i].core_start + pos;
          if (global < infos_[i].core_end) {
            result.hits.push_back({static_cast<uint32_t>(global), len, q});
          }
        }
      }
    } else {
      uint32_t first = std::numeric_limits<uint32_t>::max();
      for (size_t i = 0; i < shards_.size(); ++i) {
        const std::optional<NodeId> end =
            GenericFindFirstEnd(shards_[i], sub, &result.stats, cancel);
        if (end.has_value()) {
          first = std::min(
              first, static_cast<uint32_t>(infos_[i].core_start + *end - len));
        }
      }
      if (first == std::numeric_limits<uint32_t>::max()) continue;
      result.hits.push_back({first, len, q});
    }
  }
  result.found = !result.hits.empty();
  return result;
}

QueryResult ShardedIndex::ExecuteApprox(const Query& query,
                                        const CancelToken* cancel) const {
  QueryResult result;
  // Admission guarantees a window starting in shard i's core range lies
  // entirely inside slice i, so per-shard hits kept by the ownership
  // filter were verified on complete windows — identical to the
  // monolithic answer.
  ApproxSearchStats family_stats;
  std::vector<std::vector<ApproxHit>> local(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    ApproxSearchStats shard_stats;
    local[i] = query.kind == QueryKind::kMismatch
                   ? GenericFindMismatch(shards_[i], query.pattern,
                                         query.max_errors, &result.stats,
                                         &shard_stats, cancel)
                   : GenericFindEditDistance(shards_[i], query.pattern,
                                             query.max_errors, &result.stats,
                                             &shard_stats, cancel);
    family_stats.candidates += shard_stats.candidates;
    family_stats.seeded = family_stats.seeded || shard_stats.seeded;
    family_stats.seed_len =
        std::max(family_stats.seed_len, shard_stats.seed_len);
  }
  SPINE_OBS_SCOPED_TIMER_US("shard.merge_us");
  for (size_t i = 0; i < shards_.size(); ++i) {
    for (const ApproxHit& hit : local[i]) {
      const uint64_t global = infos_[i].core_start + hit.pos;
      if (global < infos_[i].core_end) {
        result.hits.push_back(
            {static_cast<uint32_t>(global), hit.length, hit.errors});
      }
    }
  }
  result.found = !result.hits.empty();
  family_stats.verified = result.hits.size();
  RecordApproxObs(family_stats);
  return result;
}

Status ShardedIndex::CheckMappingFence() const {
  for (const std::shared_ptr<const storage::MmapRegion>& mapping : mappings_) {
    Status fence = mapping->CheckFence();
    if (!fence.ok()) return fence;
  }
  return Status::OK();
}

Status ShardedIndex::VerifyStructure() const {
  Status fence = CheckMappingFence();
  if (!fence.ok()) return fence;
  if (shards_.empty()) {
    return Status::Corruption("sharded family has no shards");
  }
  uint64_t expect_start = 0;
  for (uint32_t i = 0; i < shard_count(); ++i) {
    const ShardInfo& info = infos_[i];
    const std::string tag = "shard " + std::to_string(i);
    if (info.core_start != expect_start || info.core_end < info.core_start) {
      return Status::Corruption(tag +
                                ": core ranges do not partition the string");
    }
    if (info.slice_end !=
        std::min<uint64_t>(n_, info.core_end + max_pattern_)) {
      return Status::Corruption(tag +
                                ": slice end disagrees with the overlap "
                                "margin");
    }
    if (shards_[i].size() != info.slice_end - info.core_start) {
      return Status::Corruption(tag +
                                ": index size disagrees with the manifest "
                                "slice");
    }
    Status status = shards_[i].Validate();
    if (!status.ok()) {
      return Status(status.code(),
                    tag + ": " + std::string(status.message()));
    }
    expect_start = info.core_end;
  }
  if (expect_start != n_) {
    return Status::Corruption("core ranges do not cover the string");
  }
  // Neighbouring shards must agree on every overlap character, or the
  // dedup-by-core-range merge would silently drop/duplicate hits.
  for (uint32_t i = 0; i + 1 < shard_count(); ++i) {
    for (uint64_t pos = infos_[i].core_end; pos < infos_[i].slice_end; ++pos) {
      if (shards_[i].CharAt(pos - infos_[i].core_start) !=
          shards_[i + 1].CharAt(pos - infos_[i + 1].core_start)) {
        return Status::Corruption(
            "shards " + std::to_string(i) + " and " + std::to_string(i + 1) +
            " disagree on overlap character at position " +
            std::to_string(pos));
      }
    }
  }
  return Status::OK();
}

uint64_t ShardedIndex::MemoryBytes() const {
  uint64_t total = infos_.capacity() * sizeof(ShardInfo);
  for (const CompactSpineIndex& shard : shards_) {
    total += shard.MemoryBytes();
  }
  return total;
}

Status ShardedIndex::Save(const std::string& path) const {
  const std::string base = BaseName(path);
  std::vector<std::string> names(shard_count());
  std::vector<uint64_t> sizes(shard_count());
  std::vector<uint32_t> crcs(shard_count());
  for (uint32_t i = 0; i < shard_count(); ++i) {
    names[i] = base + ".shard" + std::to_string(i);
    const std::string shard_path = path + ".shard" + std::to_string(i);
    Status status = SaveCompactSpine(shards_[i], shard_path);
    if (!status.ok()) return status;
    // Re-read what actually hit the disk so the manifest pins the
    // written bytes, not what we meant to write.
    Result<std::string> bytes = ReadFileBytes(shard_path);
    if (!bytes.ok()) return bytes.status();
    sizes[i] = bytes->size();
    crcs[i] = Crc32c(bytes->data(), bytes->size());
  }

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot create " + path + ": " +
                           std::strerror(errno));
  }
  serde::Writer writer(out);
  writer.Pod(kShardManifestMagic);
  writer.Pod(kShardManifestVersion);
  writer.Pod(static_cast<uint32_t>(alphabet_.kind()));
  writer.Pod(n_);
  writer.Pod(shard_count());
  writer.Pod(max_pattern_);
  for (uint32_t i = 0; i < shard_count(); ++i) {
    writer.Pod(infos_[i].core_start);
    writer.Pod(infos_[i].core_end);
    writer.Pod(infos_[i].slice_end);
    const std::vector<char> name(names[i].begin(), names[i].end());
    writer.Vec(name);
    writer.Pod(sizes[i]);
    writer.Pod(crcs[i]);
  }
  writer.WriteCrcFooter();
  out.flush();
  if (!out) return Status::IoError("failed writing " + path);
  return Status::OK();
}

Result<std::unique_ptr<ShardedIndex>> ShardedIndex::Load(
    const std::string& path, const core::OpenOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  serde::Reader reader(in);
  const auto corrupt = [&path](const std::string& what) {
    return Status::Corruption(path + ": " + what);
  };

  uint32_t magic = 0;
  if (!reader.Pod(&magic)) return corrupt("truncated manifest");
  if (magic != kShardManifestMagic) {
    return corrupt("not a shard manifest (bad magic)");
  }
  uint32_t version = 0;
  if (!reader.Pod(&version)) return corrupt("truncated manifest");
  if (version != kShardManifestVersion) {
    return corrupt("unsupported manifest version " + std::to_string(version));
  }
  uint32_t alphabet_code = 0;
  uint64_t n = 0;
  uint32_t shards = 0;
  uint32_t max_pattern = 0;
  if (!reader.Pod(&alphabet_code) || !reader.Pod(&n) ||
      !reader.Pod(&shards) || !reader.Pod(&max_pattern)) {
    return corrupt("truncated manifest");
  }
  Result<Alphabet> alphabet = AlphabetFromKindCode(alphabet_code);
  if (!alphabet.ok()) return corrupt(std::string(alphabet.status().message()));
  if (shards == 0 || shards > kMaxShards) {
    return corrupt("implausible shard count " + std::to_string(shards));
  }
  if (max_pattern == 0) return corrupt("zero overlap margin");

  std::vector<ShardInfo> infos(shards);
  std::vector<std::string> names(shards);
  std::vector<uint64_t> sizes(shards);
  std::vector<uint32_t> crcs(shards);
  uint64_t expect_start = 0;
  for (uint32_t i = 0; i < shards; ++i) {
    ShardInfo& info = infos[i];
    std::vector<char> name;
    if (!reader.Pod(&info.core_start) || !reader.Pod(&info.core_end) ||
        !reader.Pod(&info.slice_end) || !reader.Vec(&name) ||
        !reader.Pod(&sizes[i]) || !reader.Pod(&crcs[i])) {
      return corrupt("truncated manifest");
    }
    const std::string tag = "shard " + std::to_string(i);
    if (info.core_start != expect_start || info.core_end < info.core_start ||
        info.slice_end !=
            std::min<uint64_t>(n, info.core_end + max_pattern)) {
      return corrupt(tag + ": invalid split geometry");
    }
    names[i].assign(name.begin(), name.end());
    // Manifest filenames are plain siblings of the manifest; anything
    // else (corruption or tampering) must not escape its directory.
    if (names[i].empty() ||
        names[i].find_first_of("/\\") != std::string::npos ||
        names[i].find("..") != std::string::npos) {
      return corrupt(tag + ": invalid shard filename");
    }
    expect_start = info.core_end;
  }
  if (expect_start != n) {
    return corrupt("core ranges do not cover the string");
  }
  if (!reader.VerifyCrcFooter()) return corrupt("manifest checksum mismatch");

  std::unique_ptr<ShardedIndex> family(
      new ShardedIndex(*alphabet, n, max_pattern));
  family->infos_ = std::move(infos);
  family->shards_.reserve(shards);
  const std::string dir = DirName(path);
  for (uint32_t i = 0; i < shards; ++i) {
    const std::string shard_path =
        dir.empty() ? names[i] : dir + "/" + names[i];
    Result<CompactSpineIndex> index = Status::OK();
    if (options.mode == core::OpenMode::kMmap) {
      // Zero-copy: map the shard image and borrow its tables. The
      // whole-file CRC pass (the only full read) is skipped with
      // verify=false, keeping open cost independent of shard size.
      storage::MmapOptions mmap_options;
      mmap_options.populate = options.populate;
      mmap_options.hugepage = options.hugepage;
      Result<std::shared_ptr<storage::MmapRegion>> region =
          storage::MmapRegion::MapShared(shard_path, mmap_options);
      if (!region.ok()) return region.status();
      if ((*region)->size() != sizes[i]) {
        return Status::Corruption(
            shard_path + ": size mismatch (manifest says " +
            std::to_string(sizes[i]) + " bytes, file has " +
            std::to_string((*region)->size()) + ")");
      }
      if (options.verify &&
          Crc32c((*region)->data(), (*region)->size()) != crcs[i]) {
        return Status::Corruption(shard_path +
                                  ": shard file checksum mismatch");
      }
      index = LoadCompactSpineFromMemory((*region)->data(), (*region)->size(),
                                         options.verify, *region);
      if (index.ok()) family->mappings_.push_back(std::move(*region));
    } else {
      Result<std::string> bytes = ReadFileBytes(shard_path);
      if (!bytes.ok()) return bytes.status();
      if (bytes->size() != sizes[i]) {
        return Status::Corruption(
            shard_path + ": size mismatch (manifest says " +
            std::to_string(sizes[i]) + " bytes, file has " +
            std::to_string(bytes->size()) + ")");
      }
      if (Crc32c(bytes->data(), bytes->size()) != crcs[i]) {
        return Status::Corruption(shard_path +
                                  ": shard file checksum mismatch");
      }
      std::istringstream stream(*bytes);
      index = LoadCompactSpineFromStream(stream);
    }
    if (!index.ok()) {
      return Status(index.status().code(),
                    shard_path + ": " +
                        std::string(index.status().message()));
    }
    const ShardInfo& info = family->infos_[i];
    if (index->size() != info.slice_end - info.core_start ||
        index->alphabet().kind() != alphabet->kind()) {
      return Status::Corruption(shard_path +
                                ": shard image disagrees with the manifest");
    }
    family->shards_.push_back(std::move(*index));
  }
  return family;
}

}  // namespace spine::shard
