// shard::DynamicFamily — an LSM-style document index with memtable
// shards, versioned generations, and background compaction.
//
// Everything else in the repo is build-once/serve-forever; this is the
// subsystem that exploits SPINE's *online* construction (PAPER.md §4)
// at the system level. Documents are mutable at the granularity of
// whole strings:
//
//   insert    lands in an in-memory memtable shard — a live
//             GeneralizedSpineIndex, appended to in place — and is
//             queryable immediately (volatile until the next flush);
//   delete    adds the doc id to the tombstone set: the document stops
//             matching at once and is physically dropped at the next
//             compaction that rewrites its shard;
//   flush     freezes the memtable, serializes the live documents to a
//             compact image (<manifest>.g<version>), and swaps the
//             generation pointer — the durability point;
//   compact   flushes, then merges every frozen shard into one compact
//             image, dropping tombstoned documents and their
//             tombstones.
//
// Generations: the family's entire queryable state is an immutable,
// refcounted Generation — frozen shard list + memtable snapshot
// (visible-document count) + tombstone set + a fresh cache_id. Readers
// pin the current generation (shared_ptr) for the duration of one
// query or one engine batch (core::Index::PinSnapshot), so a query
// never observes a torn or mixed index: mutations build a *new*
// generation and swap the pointer. Because each generation mints a new
// cache_id, the engine's result LRU self-invalidates on swap — a
// cached answer from generation N is unreachable once N+1 publishes.
//
// Durability: the `.spinefam` manifest (magic "SPFM", version 2 — the
// version field distinguishes it from shard::ShardedIndex's static v1)
// is a generation pointer: generation version counter, next doc id,
// shard list (filename, byte size, whole-file CRC32C, doc ids) and
// tombstone set, closed by a CRC32C footer. It is written to
// <path>.tmp and committed by atomic rename(2); shard image files are
// uniquely named per generation and never rewritten in place. A crash
// or injected fault anywhere on the flush/compaction write path
// therefore leaves the previous generation fully live, on disk and in
// memory. Inserts are volatile until flushed; durable tombstones
// (deletes of already-frozen documents) rewrite the manifest at delete
// time. docs/LIFECYCLE.md specifies the state machine and the
// crash-consistency contract.
//
// Query semantics: answers are byte-exact over the canonical
// separator-joined concatenation of the live documents in doc-id
// order — exactly what a GeneralizedSpineIndex rebuilt from scratch
// over the same documents answers through ExecuteQuery on its
// underlying index (the differential oracle in
// tests/lifecycle_differential_test.cc). Hit positions are offsets
// into that virtual concatenation. Patterns containing a reserved
// separator byte ('\n' or '\x1f') are rejected with kInvalidArgument —
// they could otherwise match across document boundaries, which is
// composition-dependent nonsense — and never answered silently wrong.

#ifndef SPINE_SHARD_DYNAMIC_FAMILY_H_
#define SPINE_SHARD_DYNAMIC_FAMILY_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "alphabet/alphabet.h"
#include "common/cancel.h"
#include "common/status.h"
#include "core/index.h"
#include "core/query.h"
#include "obs/trace.h"

namespace spine::shard {

// Manifest version written by DynamicFamily under the shared "SPFM"
// magic (shard/sharded_index.h). The registry routes on this field.
inline constexpr uint32_t kDynamicManifestVersion = 2;

class DynamicFamily final : public core::MutableIndex {
 public:
  struct Options {
    // How frozen shard images are materialized (heap copy or shared
    // mapping; storage::MmapRegion::MapShared under OpenMode::kMmap).
    core::OpenOptions open;
    // Auto-flush trigger: when the memtable holds at least this many
    // characters, the background thread freezes it. 0 disables
    // size-triggered flushing.
    uint64_t flush_threshold_bytes = 0;
    // Background compaction trigger: merge frozen shards whenever at
    // least this many exist. 0 disables background compaction.
    // The background thread runs iff either trigger is enabled.
    uint32_t compact_fanout = 0;
    // Test-only fault hook on the flush/compaction/delete write path:
    // invoked before each named step ("shard.write", "shard.finish",
    // "manifest.write", "manifest.rename"); a non-OK return aborts the
    // mutation at that point. The contract under any such fault: the
    // prior generation keeps serving, on disk and in memory.
    std::function<Status(std::string_view step)> write_fault_hook;
  };

  // Creates a brand-new empty family at `path` (writes the initial
  // manifest). kFailedPrecondition if `path` already exists.
  static Result<std::unique_ptr<DynamicFamily>> Create(
      const std::string& path, const Alphabet& alphabet,
      const Options& options);

  // Reopens a family from its manifest, verifying the manifest CRC and
  // (under options.open.verify) every shard file's size + CRC32C; any
  // mismatch is kCorruption, never a crash or a torn load.
  static Result<std::unique_ptr<DynamicFamily>> Open(
      const std::string& path, const Options& options);

  ~DynamicFamily() override;

  // --- core::Index ---------------------------------------------------------

  core::IndexKind kind() const override { return core::IndexKind::kDynamic; }
  core::Capabilities capabilities() const override {
    core::Capabilities caps;
    caps.supports_approx = true;  // per-source seed-and-extend
    caps.persistent = true;
    return caps;
  }
  const Alphabet& alphabet() const override { return alphabet_; }
  // Characters in the live concatenation, separators included (the
  // oracle's underlying().size()).
  uint64_t size() const override;
  QueryResult Execute(const Query& query,
                      obs::TraceContext* trace = nullptr,
                      const CancelToken* cancel = nullptr) const override;
  Status VerifyStructure() const override;
  uint64_t MemoryBytes() const override;
  // The *current generation's* id: every mutation publishes a new
  // generation with a freshly minted id, so engine-cached answers from
  // older generations become unreachable at the swap.
  uint64_t cache_id() const override;
  // An immutable view of the current generation; its answers, size and
  // cache_id stay frozen while writers swap underneath.
  std::shared_ptr<const core::Index> PinSnapshot() const override;

  // --- core::MutableIndex --------------------------------------------------

  Result<uint32_t> InsertDocument(std::string_view text) override;
  Status DeleteDocument(uint32_t doc_id) override;
  Status Flush() override;
  Status Compact() override;
  Status Reload() override;
  uint64_t generation_version() const override;
  uint32_t live_documents() const override;

  // --- Accessors -----------------------------------------------------------

  const std::string& path() const { return path_; }
  uint32_t next_doc_id() const;
  uint32_t frozen_shard_count() const;
  // Documents currently in the (volatile) memtable, live or not.
  uint32_t memtable_documents() const;
  uint32_t tombstone_count() const;
  // Takes (clears) the most recent background flush/compaction error.
  // Background failures never take the family down — the old
  // generation keeps serving — but tests and operators want to see
  // them.
  Status TakeBackgroundError();

 private:
  struct MemtableShard;
  struct FrozenShard;
  struct Generation;
  class Snapshot;

  DynamicFamily(std::string path, const Alphabet& alphabet, Options options);

  std::shared_ptr<const Generation> CurrentGeneration() const;
  void Publish(std::shared_ptr<const Generation> generation);
  void StartBackgroundThread();
  void BackgroundLoop();
  void KickBackground();

  // The shared implementation of Execute for the family and its
  // pinned snapshots.
  static QueryResult ExecuteOnGeneration(const Generation& generation,
                                         const Query& query,
                                         obs::TraceContext* trace,
                                         const CancelToken* cancel);
  static Status VerifyGeneration(const Generation& generation);
  static uint64_t GenerationMemoryBytes(const Generation& generation);

  // Mutation bodies; writer_mu_ held by the caller.
  Status FlushLocked();
  Status CompactLocked();
  Status ReloadLocked();
  // Serializes `docs` (id, text) to <path_>.g<version>, returning the
  // loaded FrozenShard. Fault-hook steps: shard.write, shard.finish.
  Result<std::shared_ptr<const FrozenShard>> WriteShard(
      uint64_t version, const std::vector<uint32_t>& doc_ids,
      const std::vector<std::string>& texts) const;
  // Writes the manifest for `generation` to <path_>.tmp and commits it
  // by rename. Fault-hook steps: manifest.write, manifest.rename.
  Status WriteManifest(const Generation& generation) const;
  Status RunFaultHook(std::string_view step) const;

  // Parses + loads the on-disk state into a ready generation. Mutable
  // so Reload can keep the version counter monotone before publishing.
  static Result<std::shared_ptr<Generation>> LoadGeneration(
      const std::string& path, const Options& options,
      Alphabet* alphabet_out);

  std::string path_;
  Alphabet alphabet_;
  Options options_;

  // Serializes all mutations (insert/delete/flush/compact/reload).
  mutable std::mutex writer_mu_;
  // Guards only the current_ pointer swap; queries copy the pointer
  // and run lock-free against the immutable generation.
  mutable std::mutex gen_mu_;
  std::shared_ptr<const Generation> current_;

  // Background flush/compaction.
  std::thread background_;
  std::mutex bg_mu_;
  std::condition_variable bg_cv_;
  bool bg_stop_ = false;
  bool bg_kick_ = false;
  Status bg_error_;
};

}  // namespace spine::shard

#endif  // SPINE_SHARD_DYNAMIC_FAMILY_H_
