// shard::ShardedIndex — a family of compact SPINE indexes serving one
// string, itself a core::Index.
//
// The string is split into K core ranges [core_start, core_end) that
// partition [0, n). Shard i physically indexes the *slice*
// [core_start, min(n, core_end + max_pattern)): the extra max_pattern
// characters (the overlap margin) guarantee that any pattern of length
// m <= max_pattern starting inside a core range lies entirely inside
// that shard's slice. With that invariant every query kind merges
// exactly:
//
//   contains  OR over shards (early exit on the first hit);
//   findall   per-shard FindAll mapped by +core_start, kept only when
//             the global start falls in the shard's core range (drops
//             overlap duplicates), concatenated in shard order — the
//             result is globally ascending, byte-identical to the
//             monolithic answer;
//   ms        elementwise max of per-shard matching statistics (a
//             matching substring lives wholly in some slice, and every
//             per-shard statistic is a true global lower bound);
//   match     derived from the merged ms exactly where the monolithic
//             matcher reports: ms[q] >= min_len and (q == 0 or
//             ms[q-1] <= ms[q]); occurrence positions come from
//             per-shard lookups of the matched substring.
//   mismatch/ per-shard generic seed-and-extend (core/approx.h) over
//   edit      the slice, kept only when the window's start falls in the
//             core range — the margin guarantees the full window (m
//             characters, m + d for edit distance) is inside the slice,
//             so kept hits are verified on complete windows.
//
// Patterns longer than max_pattern could straddle a boundary without
// any shard seeing them whole, so Execute rejects them loudly with
// kInvalidArgument at admission — never a silently wrong answer. For
// kEditDistance the admitted window is pattern length + max_errors
// (insertions can lengthen the matched window by up to d characters).
//
// Construction is the first parallel build path in the repo: per-shard
// compact indexes build concurrently on an engine::ThreadPool.
//
// Persistence: Save writes one compact image per shard
// (<path>.shard<i>) plus a versioned manifest at <path> — magic "SPFM"
// — recording the split geometry and, per shard file, its byte size
// and whole-file CRC32C. Load re-verifies every checksum, so a single
// bit flip in any shard file or in the manifest is kCorruption.

#ifndef SPINE_SHARD_SHARDED_INDEX_H_
#define SPINE_SHARD_SHARDED_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "alphabet/alphabet.h"
#include "common/status.h"
#include "compact/compact_spine.h"
#include "core/index.h"
#include "storage/mmap_region.h"

namespace spine::shard {

// Manifest leading magic ("SPFM") and current format version.
inline constexpr uint32_t kShardManifestMagic = 0x5350464d;
inline constexpr uint32_t kShardManifestVersion = 1;

// Default overlap margin: the longest pattern a sharded family accepts
// unless built with an explicit --max-pattern.
inline constexpr uint32_t kDefaultMaxPattern = 1024;

// Split geometry of one shard. Core ranges partition [0, n); the slice
// is what the shard physically indexes.
struct ShardInfo {
  uint64_t core_start = 0;
  uint64_t core_end = 0;   // exclusive
  uint64_t slice_end = 0;  // min(n, core_end + max_pattern)
};

class ShardedIndex final : public core::Index {
 public:
  struct Options {
    // Number of shards (>= 1; clamped to the string length so no more
    // than one shard is empty-cored).
    uint32_t shards = 2;
    // Overlap margin == longest admissible query pattern (>= 1).
    uint32_t max_pattern = kDefaultMaxPattern;
    // Build-pool threads; 0 picks hardware concurrency.
    uint32_t build_threads = 0;
  };

  // Splits `text` and builds the per-shard compact indexes in parallel.
  static Result<std::unique_ptr<ShardedIndex>> Build(const Alphabet& alphabet,
                                                     std::string_view text,
                                                     const Options& options);

  // Writes <path> (manifest) plus <path>.shard<i> compact images.
  Status Save(const std::string& path) const;

  // Reopens a family saved by Save. Verifies the manifest CRC, every
  // shard file's size + whole-file CRC32C, and the split geometry;
  // any mismatch is kCorruption. Under OpenMode::kMmap every shard
  // image is mapped and its tables borrowed from the mapping (the
  // manifest itself is small and always read eagerly); per-shard CRC
  // and structural validation are skipped when options.verify is
  // false. Every query then passes the length fence of all shard
  // mappings before touching mapped bytes.
  static Result<std::unique_ptr<ShardedIndex>> Load(
      const std::string& path, const core::OpenOptions& options = {});

  // --- core::Index ---------------------------------------------------------

  core::IndexKind kind() const override { return core::IndexKind::kSharded; }
  core::Capabilities capabilities() const override {
    core::Capabilities caps;
    caps.supports_approx = true;  // per-shard seed-and-extend
    caps.persistent = true;
    return caps;
  }
  const Alphabet& alphabet() const override { return alphabet_; }
  uint64_t size() const override { return n_; }
  // Merged per the header note. Emits shard.queries / shard.fanout /
  // shard.merge_us metrics and a "shard_fanout" trace note. `cancel`
  // is threaded into every per-shard generic walk, so a fired token
  // stops mid-shard, not just between shards.
  QueryResult Execute(const Query& query,
                      obs::TraceContext* trace = nullptr,
                      const CancelToken* cancel = nullptr) const override;
  // Per-shard Validate plus family invariants: core ranges partition
  // [0, n), slices sized to the margin, and overlap characters agree
  // between neighbouring shards.
  Status VerifyStructure() const override;
  uint64_t MemoryBytes() const override;

  // --- Family accessors ----------------------------------------------------

  uint32_t shard_count() const { return static_cast<uint32_t>(shards_.size()); }
  uint32_t max_pattern() const { return max_pattern_; }
  const ShardInfo& info(uint32_t i) const { return infos_[i]; }
  const CompactSpineIndex& shard(uint32_t i) const { return shards_[i]; }

 private:
  ShardedIndex(const Alphabet& alphabet, uint64_t n, uint32_t max_pattern)
      : alphabet_(alphabet), n_(n), max_pattern_(max_pattern) {}

  QueryResult ExecuteContains(const Query& query,
                              const CancelToken* cancel) const;
  QueryResult ExecuteFindAll(const Query& query,
                             const CancelToken* cancel) const;
  QueryResult ExecuteMatchingStats(const Query& query,
                                   const CancelToken* cancel) const;
  QueryResult ExecuteMaximalMatches(const Query& query,
                                    const CancelToken* cancel) const;
  // kMismatch / kEditDistance: per-shard core/approx.h generics over the
  // slices, deduplicated by core-range ownership like ExecuteFindAll.
  QueryResult ExecuteApprox(const Query& query,
                            const CancelToken* cancel) const;

  // Elementwise-max merge of per-shard matching statistics; stats
  // accumulate the per-shard search work.
  std::vector<uint32_t> MergedMatchingStats(std::string_view pattern,
                                            SearchStats* stats,
                                            const CancelToken* cancel) const;

  // kIoError when any shard mapping's backing file shrank below its
  // mapped length (storage::MmapRegion::CheckFence); OK for heap-loaded
  // families (no mappings to fence).
  Status CheckMappingFence() const;

  Alphabet alphabet_;
  uint64_t n_ = 0;
  uint32_t max_pattern_ = 0;
  std::vector<ShardInfo> infos_;
  std::vector<CompactSpineIndex> shards_;
  // One region per shard when the family was opened with
  // OpenMode::kMmap (shards_[i] borrows from mappings_[i]); empty on
  // the heap path.
  std::vector<std::shared_ptr<const storage::MmapRegion>> mappings_;
};

}  // namespace spine::shard

#endif  // SPINE_SHARD_SHARDED_INDEX_H_
