// Brute-force reference implementations used as ground truth in tests.
// Everything here is O(n * m) or worse by design: correctness over speed.

#ifndef SPINE_NAIVE_NAIVE_INDEX_H_
#define SPINE_NAIVE_NAIVE_INDEX_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace spine::naive {

// All start positions (0-based) of `pattern` in `text`, in increasing order.
std::vector<uint32_t> FindAllOccurrences(std::string_view text,
                                         std::string_view pattern);

// End position (exclusive) of the first occurrence of `pattern` in `text`,
// or -1 if absent. This is exactly the SPINE node a valid search path for
// `pattern` must end at.
int64_t FirstOccurrenceEnd(std::string_view text, std::string_view pattern);

// Length of the longest suffix of text[0..i) that also occurs in text
// ending at some position < i. This is SPINE's LEL(i). LEL(0) = 0.
uint32_t LongestEarlierSuffix(std::string_view text, uint32_t i);

// A maximal match between a data string and a query string.
struct NaiveMatch {
  uint32_t query_pos;  // start in the query
  uint32_t length;
  bool operator==(const NaiveMatch&) const = default;
  bool operator<(const NaiveMatch& o) const {
    return query_pos != o.query_pos ? query_pos < o.query_pos
                                    : length < o.length;
  }
};

// For every query position, the length of the longest substring of
// `query` starting there that occurs anywhere in `data`; reports the
// right-maximal ones of length >= min_len. Right-maximal means the match
// cannot be extended by the next query character (or the query ends) —
// the same matches SPINE's streaming matcher reports.
std::vector<NaiveMatch> MaximalMatches(std::string_view data,
                                       std::string_view query,
                                       uint32_t min_len);

}  // namespace spine::naive

#endif  // SPINE_NAIVE_NAIVE_INDEX_H_
