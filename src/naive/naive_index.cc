#include "naive/naive_index.h"

#include <algorithm>

namespace spine::naive {

std::vector<uint32_t> FindAllOccurrences(std::string_view text,
                                         std::string_view pattern) {
  std::vector<uint32_t> out;
  if (pattern.empty() || pattern.size() > text.size()) return out;
  for (size_t i = 0; i + pattern.size() <= text.size(); ++i) {
    if (text.compare(i, pattern.size(), pattern) == 0) {
      out.push_back(static_cast<uint32_t>(i));
    }
  }
  return out;
}

int64_t FirstOccurrenceEnd(std::string_view text, std::string_view pattern) {
  if (pattern.empty()) return 0;
  size_t pos = text.find(pattern);
  if (pos == std::string_view::npos) return -1;
  return static_cast<int64_t>(pos + pattern.size());
}

uint32_t LongestEarlierSuffix(std::string_view text, uint32_t i) {
  for (uint32_t len = i == 0 ? 0 : i - 1; len > 0; --len) {
    std::string_view suffix = text.substr(i - len, len);
    // Does `suffix` occur in text ending strictly before i?
    size_t pos = text.substr(0, i - 1).find(suffix);
    if (pos != std::string_view::npos && pos + len <= i - 1) return len;
  }
  return 0;
}

namespace {

// Matching statistic: longest prefix of query[q..] occurring in data.
uint32_t MatchingStatistic(std::string_view data, std::string_view query,
                           uint32_t q) {
  uint32_t best = 0;
  for (size_t d = 0; d < data.size(); ++d) {
    uint32_t len = 0;
    while (q + len < query.size() && d + len < data.size() &&
           query[q + len] == data[d + len]) {
      ++len;
    }
    best = std::max(best, len);
  }
  return best;
}

}  // namespace

std::vector<NaiveMatch> MaximalMatches(std::string_view data,
                                       std::string_view query,
                                       uint32_t min_len) {
  std::vector<NaiveMatch> out;
  uint32_t prev = 0;
  for (uint32_t q = 0; q < query.size(); ++q) {
    uint32_t len = MatchingStatistic(data, query, q);
    // Maximal: not a proper suffix of the match starting one position
    // earlier (which would have covered it).
    if (len >= min_len && (q == 0 || prev < len + 1)) {
      out.push_back({q, len});
    }
    prev = len;
  }
  return out;
}

}  // namespace spine::naive
