// AVX2 comparison level: 32 bytes per step. This translation unit is
// compiled with -mavx2 (when the compiler supports it; otherwise
// kernel.cc reports the level unsupported) and is reachable only after
// the cpuid check in kernel.cc confirms AVX2. Loads never touch bytes
// past a+len / b+len: full 32-byte blocks only, with the tail delegated
// to the narrower levels — the kernel-matrix ASan CI job runs with
// SPINE_KERNEL=avx2 to enforce exactly this.

#include "kernel/kernel_detail.h"

#if defined(SPINE_KERNEL_X86) && defined(__AVX2__)

#include <immintrin.h>

#include <bit>

namespace spine::kernel::detail {

size_t MatchRunAvx2(const uint8_t* a, const uint8_t* b, size_t len) {
  size_t i = 0;
  for (; i + 32 <= len; i += 32) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const uint32_t eq = static_cast<uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(va, vb)));
    if (eq != 0xffffffffu) {
      return i + static_cast<size_t>(std::countr_zero(~eq));
    }
  }
  return i + MatchRunSse2(a + i, b + i, len - i);
}

bool VerifyEqAvx2(const uint8_t* a, const uint8_t* b, size_t len) {
  size_t i = 0;
  for (; i + 32 <= len; i += 32) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    if (static_cast<uint32_t>(_mm256_movemask_epi8(
            _mm256_cmpeq_epi8(va, vb))) != 0xffffffffu) {
      return false;
    }
  }
  return VerifyEqSse2(a + i, b + i, len - i);
}

bool Avx2Compiled() { return true; }

}  // namespace spine::kernel::detail

#elif defined(SPINE_KERNEL_X86)

// Compiler without AVX2 support for this TU: keep the symbols defined
// so kernel.cc links; Avx2Compiled() == false makes Supported(kAvx2)
// report false, so these stubs are unreachable through dispatch.
namespace spine::kernel::detail {

size_t MatchRunAvx2(const uint8_t* a, const uint8_t* b, size_t len) {
  return MatchRunSse2(a, b, len);
}

bool VerifyEqAvx2(const uint8_t* a, const uint8_t* b, size_t len) {
  return VerifyEqSse2(a, b, len);
}

bool Avx2Compiled() { return false; }

}  // namespace spine::kernel::detail

#endif  // SPINE_KERNEL_X86 && __AVX2__
