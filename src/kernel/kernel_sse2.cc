// SSE2 comparison level: 16 bytes per step. Compiled with -msse2 (a
// no-op on x86-64 where SSE2 is baseline); reachable only after the
// cpuid check in kernel.cc says the CPU has SSE2.

#include "kernel/kernel_detail.h"

#if defined(SPINE_KERNEL_X86)

#include <emmintrin.h>

#include <bit>

namespace spine::kernel::detail {

size_t MatchRunSse2(const uint8_t* a, const uint8_t* b, size_t len) {
  size_t i = 0;
  for (; i + 16 <= len; i += 16) {
    const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    const unsigned eq =
        static_cast<unsigned>(_mm_movemask_epi8(_mm_cmpeq_epi8(va, vb)));
    if (eq != 0xffffu) {
      return i + static_cast<size_t>(std::countr_zero(~eq & 0xffffu));
    }
  }
  return i + MatchRunSwar(a + i, b + i, len - i);
}

bool VerifyEqSse2(const uint8_t* a, const uint8_t* b, size_t len) {
  size_t i = 0;
  for (; i + 16 <= len; i += 16) {
    const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    if (_mm_movemask_epi8(_mm_cmpeq_epi8(va, vb)) != 0xffff) return false;
  }
  return VerifyEqSwar(a + i, b + i, len - i);
}

}  // namespace spine::kernel::detail

#endif  // SPINE_KERNEL_X86
