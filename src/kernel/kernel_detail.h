// Internal entry points of the individual dispatch levels. The SSE2 and
// AVX2 implementations live in their own translation units so they can
// be compiled with the matching -m flags while the rest of the library
// stays at the baseline ISA; nothing outside src/kernel may include
// this header.

#ifndef SPINE_KERNEL_KERNEL_DETAIL_H_
#define SPINE_KERNEL_KERNEL_DETAIL_H_

#include <cstddef>
#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#define SPINE_KERNEL_X86 1
#endif

namespace spine::kernel::detail {

size_t MatchRunScalar(const uint8_t* a, const uint8_t* b, size_t len);
bool VerifyEqScalar(const uint8_t* a, const uint8_t* b, size_t len);

size_t MatchRunSwar(const uint8_t* a, const uint8_t* b, size_t len);
bool VerifyEqSwar(const uint8_t* a, const uint8_t* b, size_t len);

// Per-code packed reference (the scalar level's packed comparator).
size_t MatchRunPackedScalar(const uint64_t* a_words, size_t a_nwords,
                            uint64_t a_bit, const uint64_t* b_words,
                            size_t b_nwords, uint64_t b_bit, size_t n,
                            uint32_t bits_per_code);

// 64-bit-window packed comparator (32 DNA bases per step), shared by
// every word-parallel level.
size_t MatchRunPackedWords(const uint64_t* a_words, size_t a_nwords,
                           uint64_t a_bit, const uint64_t* b_words,
                           size_t b_nwords, uint64_t b_bit, size_t n,
                           uint32_t bits_per_code);

#if defined(SPINE_KERNEL_X86)
size_t MatchRunSse2(const uint8_t* a, const uint8_t* b, size_t len);
bool VerifyEqSse2(const uint8_t* a, const uint8_t* b, size_t len);
size_t MatchRunAvx2(const uint8_t* a, const uint8_t* b, size_t len);
bool VerifyEqAvx2(const uint8_t* a, const uint8_t* b, size_t len);
// True when kernel_avx2.cc was actually compiled with AVX2 codegen;
// Supported(kAvx2) requires this in addition to the cpuid check.
bool Avx2Compiled();
#endif

}  // namespace spine::kernel::detail

#endif  // SPINE_KERNEL_KERNEL_DETAIL_H_
