// Word-parallel comparison kernels for the search hot paths.
//
// Every SPINE search ultimately spends its time comparing a run of
// pattern characters against a run of backbone (vertebra) labels. This
// library provides that comparison at the widest granularity the
// hardware offers, selected once at runtime:
//
//   scalar  one byte / one code per step (the reference; always built)
//   swar    8 bytes per step on plain uint64 (any 64-bit target)
//   sse2    16 bytes per step (x86, baseline on x86-64)
//   avx2    32 bytes per step (x86 with AVX2, checked via cpuid)
//
// Packed-code comparison works directly on the alphabet/packed_string
// word layout: with 2-bit DNA codes one 64-bit word compares 32 bases
// at once, without ever unpacking the text.
//
// Dispatch: the best supported level is chosen on first use via
// __builtin_cpu_supports. The SPINE_KERNEL environment variable
// (scalar|swar|sse2|avx2|auto) overrides the choice at startup, and
// Force() overrides it programmatically (the CLI's --kernel= flag and
// the differential tests use this). Forcing a level the CPU lacks is a
// loud kInvalidArgument, never a silent fallback.
//
// Observability: the selected level is exported as the gauge
// "kernel.dispatch" (value == static_cast<int>(Kind)) and every
// comparison adds its examined bytes to the per-level counter
// "kernel.<name>.bytes_compared". See docs/PERF.md.
//
// Thread safety: selection is an atomic pointer swap; the kernel
// functions themselves are pure. Force() is safe to call concurrently
// with searches (in-flight comparisons finish on the old level).

#ifndef SPINE_KERNEL_KERNEL_H_
#define SPINE_KERNEL_KERNEL_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "alphabet/alphabet.h"
#include "alphabet/packed_string.h"
#include "common/status.h"

namespace spine::kernel {

enum class Kind : uint8_t { kScalar = 0, kSwar = 1, kSse2 = 2, kAvx2 = 3 };
inline constexpr size_t kNumKinds = 4;

const char* KindName(Kind kind);
std::optional<Kind> ParseKind(std::string_view name);

// One dispatch level's function table.
struct Ops {
  Kind kind = Kind::kScalar;

  // Index of the first mismatching byte in [0, len); len when equal.
  size_t (*match_run)(const uint8_t* a, const uint8_t* b, size_t len);

  // True iff a[0..len) == b[0..len).
  bool (*verify_eq)(const uint8_t* a, const uint8_t* b, size_t len);

  // Packed-code comparison on the alphabet/packed_string word layout:
  // index of the first mismatching code among `n` codes, n when equal.
  // Stream a starts at absolute bit offset a_bit inside a_words (which
  // holds a_nwords words); b likewise. Implementations never read
  // beyond words[nwords - 1], so exactly-sized buffers are safe under
  // ASan even at unaligned tails.
  size_t (*match_run_packed)(const uint64_t* a_words, size_t a_nwords,
                             uint64_t a_bit, const uint64_t* b_words,
                             size_t b_nwords, uint64_t b_bit, size_t n,
                             uint32_t bits_per_code);
};

// The table for one dispatch level. Tables for every Kind exist on
// every build (so tests can enumerate them); whether the CPU can run
// one is a separate question — see Supported().
const Ops& Get(Kind kind);

// True when the running CPU can execute this level.
bool Supported(Kind kind);

// All supported levels, in increasing width order (always starts with
// kScalar, kSwar).
std::vector<Kind> SupportedKinds();

// The active level: SPINE_KERNEL if set and usable, else the widest
// supported one. First call performs the selection.
const Ops& Active();
Kind ActiveKind();

// Forces the active level (tests, CLI --kernel=). Fails with
// kInvalidArgument when the CPU lacks the level or the name is
// unknown; the active level is unchanged in that case.
Status Force(Kind kind);
Status ForceByName(std::string_view name);  // also accepts "auto"

// --- Metered convenience wrappers over Active() ------------------------
//
// These are what the hot paths call: they dispatch through the active
// table and account the examined bytes to kernel.<name>.bytes_compared.

size_t MatchRun(const uint8_t* a, const uint8_t* b, size_t len);
bool VerifyEq(const uint8_t* a, const uint8_t* b, size_t len);
inline size_t MatchRun(std::string_view a, std::string_view b) {
  const size_t len = a.size() < b.size() ? a.size() : b.size();
  return MatchRun(reinterpret_cast<const uint8_t*>(a.data()),
                  reinterpret_cast<const uint8_t*>(b.data()), len);
}
inline bool VerifyEq(std::string_view a, std::string_view b) {
  return a.size() == b.size() &&
         VerifyEq(reinterpret_cast<const uint8_t*>(a.data()),
                  reinterpret_cast<const uint8_t*>(b.data()), a.size());
}
size_t MatchRunPacked(const uint64_t* a_words, size_t a_nwords, uint64_t a_bit,
                      const uint64_t* b_words, size_t b_nwords, uint64_t b_bit,
                      size_t n, uint32_t bits_per_code);

// --- Pattern pre-encoding ----------------------------------------------
//
// A query pattern encoded once so every vertebra-run comparison against
// it is a packed word compare instead of a per-character Encode+Get.
// Out-of-alphabet characters keep their positions (they act as
// universal mismatches in the search algorithms) but bound the runs a
// packed compare may cover.
class EncodedPattern {
 public:
  EncodedPattern(const Alphabet& alphabet, std::string_view pattern);

  size_t size() const { return codes_.size(); }
  // kInvalidCode for out-of-alphabet characters.
  Code code(size_t i) const { return static_cast<Code>(codes_[i]); }
  // Codes bit-packed exactly like an index's backbone labels (invalid
  // positions hold 0 — never compare across them; see ValidRunLength).
  const PackedString& packed() const { return packed_; }
  // Number of consecutive in-alphabet codes starting at `i`: the
  // longest stretch a packed comparison may legally cover.
  size_t ValidRunLength(size_t i) const;

 private:
  std::string codes_;
  PackedString packed_;
  std::vector<uint32_t> invalid_pos_;  // sorted, typically empty
};

}  // namespace spine::kernel

#endif  // SPINE_KERNEL_KERNEL_H_
