#include "kernel/kernel.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "kernel/kernel_detail.h"
#include "obs/metrics.h"

namespace spine::kernel {
namespace detail {

size_t MatchRunScalar(const uint8_t* a, const uint8_t* b, size_t len) {
  for (size_t i = 0; i < len; ++i) {
    if (a[i] != b[i]) return i;
  }
  return len;
}

bool VerifyEqScalar(const uint8_t* a, const uint8_t* b, size_t len) {
  return MatchRunScalar(a, b, len) == len;
}

namespace {

inline uint64_t LoadWord(const uint8_t* p) {
  uint64_t word;
  std::memcpy(&word, p, sizeof(word));
  return word;
}

// Byte index of the lowest differing byte in a nonzero XOR word.
inline size_t FirstDiffByte(uint64_t x) {
  if constexpr (std::endian::native == std::endian::little) {
    return static_cast<size_t>(std::countr_zero(x)) / 8;
  } else {
    return static_cast<size_t>(std::countl_zero(x)) / 8;
  }
}

}  // namespace

size_t MatchRunSwar(const uint8_t* a, const uint8_t* b, size_t len) {
  size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    const uint64_t x = LoadWord(a + i) ^ LoadWord(b + i);
    if (x != 0) return i + FirstDiffByte(x);
  }
  for (; i < len; ++i) {
    if (a[i] != b[i]) return i;
  }
  return len;
}

bool VerifyEqSwar(const uint8_t* a, const uint8_t* b, size_t len) {
  size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    if (LoadWord(a + i) != LoadWord(b + i)) return false;
  }
  for (; i < len; ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

namespace {

// Up to 64 bits starting at absolute bit offset `bit`, zero-extended.
// Never dereferences words[nwords] — the packed tail of an
// exactly-sized buffer stays in bounds (ASan-clean by construction).
inline uint64_t LoadBits(const uint64_t* words, size_t nwords, uint64_t bit,
                         uint32_t nbits) {
  const size_t w = static_cast<size_t>(bit / 64);
  const uint32_t off = static_cast<uint32_t>(bit % 64);
  uint64_t value = words[w] >> off;
  if (off != 0 && off + nbits > 64 && w + 1 < nwords) {
    value |= words[w + 1] << (64 - off);
  }
  if (nbits < 64) value &= (uint64_t{1} << nbits) - 1;
  return value;
}

}  // namespace

size_t MatchRunPackedScalar(const uint64_t* a_words, size_t a_nwords,
                            uint64_t a_bit, const uint64_t* b_words,
                            size_t b_nwords, uint64_t b_bit, size_t n,
                            uint32_t bits_per_code) {
  for (size_t i = 0; i < n; ++i) {
    const uint64_t a_code =
        LoadBits(a_words, a_nwords, a_bit + i * bits_per_code, bits_per_code);
    const uint64_t b_code =
        LoadBits(b_words, b_nwords, b_bit + i * bits_per_code, bits_per_code);
    if (a_code != b_code) return i;
  }
  return n;
}

size_t MatchRunPackedWords(const uint64_t* a_words, size_t a_nwords,
                           uint64_t a_bit, const uint64_t* b_words,
                           size_t b_nwords, uint64_t b_bit, size_t n,
                           uint32_t bits_per_code) {
  const uint64_t total_bits = static_cast<uint64_t>(n) * bits_per_code;
  uint64_t done = 0;
  while (done < total_bits) {
    const uint32_t take =
        static_cast<uint32_t>(std::min<uint64_t>(64, total_bits - done));
    const uint64_t xored = LoadBits(a_words, a_nwords, a_bit + done, take) ^
                           LoadBits(b_words, b_nwords, b_bit + done, take);
    if (xored != 0) {
      // The first differing bit pins the first differing code, even
      // when that code straddles the window boundary (its low bits,
      // compared in the previous window, were equal).
      return static_cast<size_t>((done + std::countr_zero(xored)) /
                                 bits_per_code);
    }
    done += take;
  }
  return n;
}

}  // namespace detail

namespace {

// Metric accounting: bytes submitted to each level's comparators.
void RecordBytes(Kind kind, uint64_t bytes) {
#if !defined(SPINE_OBS_DISABLED)
  static obs::Counter* const counters[kNumKinds] = {
      &obs::Registry::Default().GetCounter("kernel.scalar.bytes_compared"),
      &obs::Registry::Default().GetCounter("kernel.swar.bytes_compared"),
      &obs::Registry::Default().GetCounter("kernel.sse2.bytes_compared"),
      &obs::Registry::Default().GetCounter("kernel.avx2.bytes_compared"),
  };
  counters[static_cast<size_t>(kind)]->Add(bytes);
#else
  (void)kind;
  (void)bytes;
#endif
}

constexpr Ops kScalarOps = {Kind::kScalar, detail::MatchRunScalar,
                            detail::VerifyEqScalar,
                            detail::MatchRunPackedScalar};
constexpr Ops kSwarOps = {Kind::kSwar, detail::MatchRunSwar,
                          detail::VerifyEqSwar, detail::MatchRunPackedWords};
#if defined(SPINE_KERNEL_X86)
constexpr Ops kSse2Ops = {Kind::kSse2, detail::MatchRunSse2,
                          detail::VerifyEqSse2, detail::MatchRunPackedWords};
constexpr Ops kAvx2Ops = {Kind::kAvx2, detail::MatchRunAvx2,
                          detail::VerifyEqAvx2, detail::MatchRunPackedWords};
#else
// Non-x86 build: the tables exist (so callers can enumerate them) but
// Supported() reports false, keeping them unreachable via dispatch.
constexpr Ops kSse2Ops = {Kind::kSse2, detail::MatchRunSwar,
                          detail::VerifyEqSwar, detail::MatchRunPackedWords};
constexpr Ops kAvx2Ops = {Kind::kAvx2, detail::MatchRunSwar,
                          detail::VerifyEqSwar, detail::MatchRunPackedWords};
#endif

const Ops* const kTables[kNumKinds] = {&kScalarOps, &kSwarOps, &kSse2Ops,
                                       &kAvx2Ops};

const Ops* BestSupported() {
  if (Supported(Kind::kAvx2)) return &kAvx2Ops;
  if (Supported(Kind::kSse2)) return &kSse2Ops;
  return &kSwarOps;
}

std::atomic<const Ops*> g_active{nullptr};

void PublishDispatchGauge(Kind kind) {
  SPINE_OBS_GAUGE_SET("kernel.dispatch", static_cast<int64_t>(kind));
#if defined(SPINE_OBS_DISABLED)
  (void)kind;
#endif
}

// Startup choice: $SPINE_KERNEL if usable, else the widest level the
// CPU supports. A bad value warns once on stderr instead of failing:
// the environment is advisory, unlike the CLI flag.
const Ops* SelectAtStartup() {
  const char* env = std::getenv("SPINE_KERNEL");
  if (env != nullptr && env[0] != '\0' &&
      std::string_view(env) != "auto") {
    const std::optional<Kind> kind = ParseKind(env);
    if (kind.has_value() && Supported(*kind)) return kTables[static_cast<size_t>(*kind)];
    std::fprintf(stderr,
                 "spine: ignoring SPINE_KERNEL='%s' (%s); selecting "
                 "automatically\n",
                 env,
                 kind.has_value() ? "not supported by this CPU"
                                  : "unknown kernel name");
  }
  return BestSupported();
}

}  // namespace

const char* KindName(Kind kind) {
  switch (kind) {
    case Kind::kScalar:
      return "scalar";
    case Kind::kSwar:
      return "swar";
    case Kind::kSse2:
      return "sse2";
    case Kind::kAvx2:
      return "avx2";
  }
  return "unknown";
}

std::optional<Kind> ParseKind(std::string_view name) {
  if (name == "scalar") return Kind::kScalar;
  if (name == "swar") return Kind::kSwar;
  if (name == "sse2") return Kind::kSse2;
  if (name == "avx2") return Kind::kAvx2;
  return std::nullopt;
}

const Ops& Get(Kind kind) { return *kTables[static_cast<size_t>(kind)]; }

bool Supported(Kind kind) {
  switch (kind) {
    case Kind::kScalar:
    case Kind::kSwar:
      return true;
#if defined(SPINE_KERNEL_X86)
    case Kind::kSse2:
      return __builtin_cpu_supports("sse2") != 0;
    case Kind::kAvx2:
      return detail::Avx2Compiled() && __builtin_cpu_supports("avx2") != 0;
#else
    case Kind::kSse2:
    case Kind::kAvx2:
      return false;
#endif
  }
  return false;
}

std::vector<Kind> SupportedKinds() {
  std::vector<Kind> kinds;
  for (size_t i = 0; i < kNumKinds; ++i) {
    const Kind kind = static_cast<Kind>(i);
    if (Supported(kind)) kinds.push_back(kind);
  }
  return kinds;
}

const Ops& Active() {
  const Ops* ops = g_active.load(std::memory_order_acquire);
  if (ops == nullptr) {
    const Ops* selected = SelectAtStartup();
    const Ops* expected = nullptr;
    if (g_active.compare_exchange_strong(expected, selected,
                                         std::memory_order_acq_rel)) {
      PublishDispatchGauge(selected->kind);
      ops = selected;
    } else {
      ops = expected;  // another thread won the race
    }
  }
  return *ops;
}

Kind ActiveKind() { return Active().kind; }

Status Force(Kind kind) {
  if (!Supported(kind)) {
    return Status::InvalidArgument(std::string("kernel '") + KindName(kind) +
                                   "' is not supported by this CPU");
  }
  g_active.store(kTables[static_cast<size_t>(kind)],
                 std::memory_order_release);
  PublishDispatchGauge(kind);
  return Status::OK();
}

Status ForceByName(std::string_view name) {
  if (name == "auto") {
    const Ops* best = BestSupported();
    g_active.store(best, std::memory_order_release);
    PublishDispatchGauge(best->kind);
    return Status::OK();
  }
  const std::optional<Kind> kind = ParseKind(name);
  if (!kind.has_value()) {
    return Status::InvalidArgument("unknown kernel '" + std::string(name) +
                                   "' (use scalar, swar, sse2, avx2 or auto)");
  }
  return Force(*kind);
}

size_t MatchRun(const uint8_t* a, const uint8_t* b, size_t len) {
  const Ops& ops = Active();
  RecordBytes(ops.kind, len);
  return ops.match_run(a, b, len);
}

bool VerifyEq(const uint8_t* a, const uint8_t* b, size_t len) {
  const Ops& ops = Active();
  RecordBytes(ops.kind, len);
  return ops.verify_eq(a, b, len);
}

size_t MatchRunPacked(const uint64_t* a_words, size_t a_nwords, uint64_t a_bit,
                      const uint64_t* b_words, size_t b_nwords, uint64_t b_bit,
                      size_t n, uint32_t bits_per_code) {
  const Ops& ops = Active();
  RecordBytes(ops.kind,
              (static_cast<uint64_t>(n) * bits_per_code + 7) / 8);
  return ops.match_run_packed(a_words, a_nwords, a_bit, b_words, b_nwords,
                              b_bit, n, bits_per_code);
}

EncodedPattern::EncodedPattern(const Alphabet& alphabet,
                               std::string_view pattern)
    : packed_(alphabet.bits_per_code()) {
  codes_.reserve(pattern.size());
  for (size_t i = 0; i < pattern.size(); ++i) {
    const Code code = alphabet.Encode(pattern[i]);
    if (code == kInvalidCode) {
      codes_.push_back(static_cast<char>(kInvalidCode));
      packed_.Append(0);  // placeholder; ValidRunLength fences it off
      invalid_pos_.push_back(static_cast<uint32_t>(i));
    } else {
      codes_.push_back(static_cast<char>(code));
      packed_.Append(code);
    }
  }
}

size_t EncodedPattern::ValidRunLength(size_t i) const {
  if (i >= codes_.size()) return 0;
  const auto next = std::lower_bound(invalid_pos_.begin(), invalid_pos_.end(),
                                     static_cast<uint32_t>(i));
  const size_t fence =
      next == invalid_pos_.end() ? codes_.size() : static_cast<size_t>(*next);
  return fence - i;
}

}  // namespace spine::kernel
