// Thread-safe LRU cache of QueryResults, keyed on
// (backend id, query kind, kind parameters, pattern).
//
// The engine consults it before touching a backend: skewed query
// workloads (hot patterns, retried requests) short-circuit to a stored
// answer. Capacity is a byte budget; insertion evicts from the
// least-recently-used end until the budget holds. A capacity of zero
// disables the cache entirely (Get always misses, Put is a no-op).
//
// Stored answers carry the SearchStats of the execution that produced
// them; batch-level work accounting only counts executed (missed)
// queries, so cached stats are informational.

#ifndef SPINE_ENGINE_QUERY_CACHE_H_
#define SPINE_ENGINE_QUERY_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "core/query.h"
#include "kernel/kernel.h"

namespace spine::engine {

// Key equality for the cache map, routed through the active comparison
// kernel. Cache keys embed the full query pattern, so on hit-heavy
// workloads this equality check is the engine's hottest byte compare;
// same-bucket collisions resolve at SIMD width instead of bytewise.
struct KernelKeyEq {
  bool operator()(const std::string& a, const std::string& b) const {
    return kernel::VerifyEq(a, b);
  }
};

class QueryCache {
 public:
  explicit QueryCache(uint64_t capacity_bytes);

  // Canonical cache key. backend_id namespaces entries per logical
  // index. The engine always passes core::Index::cache_id(), which is
  // issued by an atomic counter at Index construction — two live
  // indexes can never share an id, so a cached answer can never be
  // served for the wrong index (the caller-managed-id footgun PR 1
  // shipped with). Manual ids remain possible for direct cache users.
  static std::string Key(uint64_t backend_id, const Query& query);

  bool enabled() const { return capacity_ > 0; }

  // Returns a copy of the stored answer and refreshes its recency.
  std::optional<QueryResult> Get(const std::string& key);
  void Put(const std::string& key, const QueryResult& result);
  void Clear();

  struct Counters {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
  };
  Counters counters() const;

  uint64_t capacity_bytes() const { return capacity_; }
  uint64_t size_bytes() const;
  uint64_t entry_count() const;

 private:
  struct Entry {
    std::string key;
    QueryResult result;
    uint64_t bytes = 0;
  };

  static uint64_t EntryBytes(const std::string& key, const QueryResult& r);

  const uint64_t capacity_;
  mutable std::mutex mu_;
  // Front = most recently used. The map indexes into the list.
  std::list<Entry> lru_;
  std::unordered_map<std::string, std::list<Entry>::iterator,
                     std::hash<std::string>, KernelKeyEq>
      index_;
  uint64_t size_ = 0;
  Counters counters_;
};

}  // namespace spine::engine

#endif  // SPINE_ENGINE_QUERY_CACHE_H_
