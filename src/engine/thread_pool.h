// Work-stealing thread pool for the batch query engine.
//
// Each worker owns a deque: it pushes/pops its own work LIFO (cache-hot)
// and steals FIFO from victims when its deque runs dry, so uneven query
// costs (a Contains miss vs. a full-genome matching-statistics pass)
// balance automatically without a central run queue becoming the
// bottleneck. Submission round-robins across worker deques.
//
// The pool is intentionally small and lock-based (one mutex per deque,
// one for sleep/wake bookkeeping): correctness under ThreadSanitizer is
// a hard requirement (the CI tsan job runs the engine tests), and the
// per-task cost is dominated by index search work, not queue ops.

#ifndef SPINE_ENGINE_THREAD_POOL_H_
#define SPINE_ENGINE_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace spine::engine {

class ThreadPool {
 public:
  // threads == 0 picks std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(uint32_t threads = 0);
  // Joins after draining every submitted task.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  uint32_t thread_count() const {
    return static_cast<uint32_t>(threads_.size());
  }

  // Enqueues a task. Tasks may run on any worker in any order; a task
  // must not block waiting for a later-submitted task.
  void Submit(std::function<void()> task);

  // Blocks until every task submitted so far has finished.
  void Wait();

  // Total tasks stolen from another worker's deque (scheduling
  // diagnostics; exact under a quiescent pool).
  uint64_t steal_count() const;

  // Index in [0, thread_count) of the pool worker executing the calling
  // thread, or -1 outside the pool. Valid inside submitted tasks; used
  // for per-thread result aggregation without locks.
  static int worker_index();

 private:
  struct Worker {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(uint32_t self);
  // Pops LIFO from the worker's own deque.
  bool PopOwn(uint32_t self, std::function<void()>* task);
  // Steals FIFO from the next non-empty victim deque.
  bool Steal(uint32_t self, std::function<void()>* task);

  std::vector<std::unique_ptr<Worker>> queues_;
  std::vector<std::thread> threads_;

  mutable std::mutex mu_;        // guards the fields below
  std::condition_variable work_cv_;  // workers sleep here
  std::condition_variable idle_cv_;  // Wait() sleeps here
  uint64_t queued_ = 0;          // submitted, not yet started
  uint64_t pending_ = 0;         // submitted, not yet finished
  uint64_t steals_ = 0;
  uint64_t submit_cursor_ = 0;   // round-robin target
  bool stop_ = false;
};

}  // namespace spine::engine

#endif  // SPINE_ENGINE_THREAD_POOL_H_
