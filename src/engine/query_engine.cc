#include "engine/query_engine.h"

namespace spine::engine {

QueryEngine::QueryEngine() : QueryEngine(Options{}) {}

QueryEngine::QueryEngine(const Options& options)
    : pool_(options.threads), cache_(options.cache_bytes), options_(options) {}

}  // namespace spine::engine
