#include "engine/query_engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>

#include "obs/metrics.h"

namespace spine::engine {

QueryEngine::QueryEngine() : QueryEngine(Options{}) {}

QueryEngine::QueryEngine(const Options& options)
    : pool_(options.threads), cache_(options.cache_bytes), options_(options) {}

QueryResult QueryEngine::AnswerOne(const core::Index& index,
                                   const Query& query, std::mutex* backend_mu,
                                   bool* cache_hit, uint64_t* retries,
                                   obs::TraceContext* trace,
                                   const CancelToken* batch_cancel,
                                   Deadline::Clock::time_point epoch) {
  *cache_hit = false;
  // Pin the query's relative budget to the batch epoch (not "now"):
  // time spent queued behind other chunks already counts against it.
  // The per-query token chains under the batch-wide one, so either an
  // expired budget or a batch Cancel() stops this query.
  std::optional<CancelToken> scoped;
  const CancelToken* cancel = batch_cancel;
  if (query.deadline_ms > 0) {
    scoped.emplace(
        Deadline::At(epoch + std::chrono::milliseconds(query.deadline_ms)),
        batch_cancel);
    cancel = &*scoped;
  }
  // Fail-before-dispatch: a query whose budget is gone before a worker
  // even picks it up gets its verdict without touching the backend (or
  // the cache — deterministic regardless of residency).
  if (cancel != nullptr) {
    Status fired = cancel->ToStatus();
    if (!fired.ok()) {
      QueryResult expired;
      expired.status_code = fired.code();
      expired.error = std::string(fired.message()) + " before dispatch";
      return expired;
    }
  }
  std::string key;
  if (cache_.enabled()) {
    key = QueryCache::Key(index.cache_id(), query);
    if (std::optional<QueryResult> cached = cache_.Get(key)) {
      *cache_hit = true;
#if !defined(SPINE_OBS_DISABLED)
      if (trace != nullptr) trace->Note("cache_hit", 1);
#endif
      return *std::move(cached);
    }
  }
  QueryResult result;
  uint64_t attempts_used = 0;
  uint32_t backoff_us = options_.retry_backoff_us;
  {
    SPINE_OBS_SCOPED_TIMER_US("engine.exec_us");
    for (uint32_t attempt = 0;; ++attempt) {
      if (backend_mu != nullptr) {
        std::lock_guard<std::mutex> lock(*backend_mu);
        result = index.Execute(query, trace, cancel);
      } else {
        result = index.Execute(query, trace, cancel);
      }
      // Only kIoError is presumed transient; corruption and everything
      // else is a property of the data, not the attempt.
      if (result.status_code != StatusCode::kIoError ||
          attempt >= options_.retry_limit) {
        break;
      }
      // Retries respect the remaining budget: a token that fired while
      // the failing attempt ran ends the loop with the time verdict
      // (keeping the transient error's detail — it is what actually
      // consumed the budget).
      if (cancel != nullptr) {
        Status fired = cancel->ToStatus();
        if (!fired.ok()) {
          result.status_code = fired.code();
          result.error =
              std::string(fired.message()) + " while retrying: " + result.error;
          break;
        }
      }
      ++*retries;
      ++attempts_used;
      if (backoff_us > 0) {
        // Never sleep past the deadline; the next attempt (or its
        // pre-execute checkpoint) delivers the verdict promptly.
        uint64_t sleep_us = backoff_us;
        if (scoped.has_value()) {
          sleep_us = std::min<uint64_t>(
              sleep_us,
              static_cast<uint64_t>(scoped->deadline().RemainingMicros()));
        }
        std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
        backoff_us *= 2;
      }
    }
  }
#if !defined(SPINE_OBS_DISABLED)
  if (trace != nullptr) {
    trace->Note("cache_hit", 0);
    trace->Note("retries", attempts_used);
  }
#else
  (void)attempts_used;
#endif
  // Error results are never cached: the next ask deserves a fresh try.
  if (cache_.enabled() && result.ok()) cache_.Put(key, result);
  return result;
}

std::vector<QueryResult> QueryEngine::ExecuteBatch(
    const core::Index& index, const std::vector<Query>& queries,
    BatchStats* stats, const CancelToken* cancel) {
  std::vector<BatchStats> multi_stats;
  std::vector<std::vector<QueryResult>> results =
      ExecuteBatch(std::vector<const core::Index*>{&index}, queries,
                   stats != nullptr ? &multi_stats : nullptr, cancel);
  if (stats != nullptr) *stats = std::move(multi_stats.front());
  return std::move(results.front());
}

std::vector<std::vector<QueryResult>> QueryEngine::ExecuteBatch(
    const std::vector<const core::Index*>& indexes,
    const std::vector<Query>& queries, std::vector<BatchStats>* stats,
    const CancelToken* cancel) {
  // Every per-query deadline in this batch is pinned to this instant.
  const Deadline::Clock::time_point epoch = Deadline::Clock::now();
  const size_t m = indexes.size();
  const size_t n = queries.size();
  const uint32_t thread_count = pool_.thread_count();

  // Pin every backend's snapshot once for the whole batch: a dynamic
  // index keeps answering from one generation even while writers swap
  // the pointer underneath, so all n queries in the batch see the same
  // frozen state — and the cache key carries that generation's id, so
  // answers cached against generation N are unreachable after a swap.
  // Backends that are already immutable return nullptr and are used
  // directly.
  std::vector<std::shared_ptr<const core::Index>> pins(m);
  std::vector<const core::Index*> effective(indexes);
  for (size_t j = 0; j < m; ++j) {
    pins[j] = indexes[j]->PinSnapshot();
    if (pins[j] != nullptr) effective[j] = pins[j].get();
  }

  std::vector<std::vector<QueryResult>> results(m);
  std::vector<std::vector<SearchStats>> per_thread(
      m, std::vector<SearchStats>(thread_count));
  // Per-query traces, in input order; each task writes only its own
  // queries' slots, so no synchronization is needed.
  std::vector<std::vector<obs::TraceContext>> traces(m);
  struct BatchCounters {
    std::atomic<uint64_t> cache_hits{0};
    std::atomic<uint64_t> failed{0};
    std::atomic<uint64_t> retries{0};
    std::atomic<uint64_t> deadline_exceeded{0};
    std::atomic<uint64_t> cancelled{0};
  };
  std::vector<BatchCounters> counters(m);
  // Serialization locks for backends without concurrent-safe reads.
  std::vector<std::mutex> backend_mus(m);
  std::vector<std::mutex*> serialize(m, nullptr);
  for (size_t j = 0; j < m; ++j) {
    results[j].resize(n);
#if !defined(SPINE_OBS_DISABLED)
    if (options_.tracing && stats != nullptr) traces[j].resize(n);
#endif
    if (!effective[j]->capabilities().concurrent_reads) {
      serialize[j] = &backend_mus[j];
    }
  }

  if (m > 0 && n > 0) {
    // Oversubscribe chunks so stealing can rebalance uneven query
    // costs; every (index, chunk) pair is one pool task, so slow
    // backends overlap with fast ones instead of running after them.
    const size_t chunk =
        std::max<size_t>(1, n / (static_cast<size_t>(thread_count) * 8));
    const size_t tasks_per_index = (n + chunk - 1) / chunk;
    std::atomic<size_t> remaining{m * tasks_per_index};
    std::promise<void> all_done;
    std::future<void> done = all_done.get_future();
    for (size_t j = 0; j < m; ++j) {
      obs::TraceContext* const trace_slots =
          traces[j].empty() ? nullptr : traces[j].data();
      for (size_t t = 0; t < tasks_per_index; ++t) {
        const size_t begin = t * chunk;
        const size_t end = std::min(n, begin + chunk);
        typename obs::TraceContext::Clock::time_point submitted{};
#if !defined(SPINE_OBS_DISABLED)
        submitted = obs::TraceContext::Clock::now();
#endif
        pool_.Submit([&, j, begin, end, trace_slots, submitted] {
#if !defined(SPINE_OBS_DISABLED)
          const double queue_wait_us =
              std::chrono::duration<double, std::micro>(
                  obs::TraceContext::Clock::now() - submitted)
                  .count();
          SPINE_OBS_OBSERVE_US("engine.queue_wait_us", queue_wait_us);
          if (trace_slots != nullptr) {
            for (size_t i = begin; i < end; ++i) {
              trace_slots[i].RecordSpan("queue_wait_us", queue_wait_us);
            }
          }
#else
          (void)submitted;
#endif
          SearchStats local;
          uint64_t local_hits = 0;
          uint64_t local_failed = 0;
          uint64_t local_retries = 0;
          uint64_t local_deadline = 0;
          uint64_t local_cancelled = 0;
          for (size_t i = begin; i < end; ++i) {
            bool hit = false;
            results[j][i] =
                AnswerOne(*effective[j], queries[i], serialize[j], &hit,
                          &local_retries,
                          trace_slots == nullptr ? nullptr : &trace_slots[i],
                          cancel, epoch);
            if (hit) {
              ++local_hits;
            } else {
              local.Add(results[j][i].stats);
            }
            if (!results[j][i].ok()) {
              ++local_failed;
              if (results[j][i].status_code == StatusCode::kDeadlineExceeded) {
                ++local_deadline;
              } else if (results[j][i].status_code == StatusCode::kCancelled) {
                ++local_cancelled;
              }
            }
          }
          per_thread[j][static_cast<size_t>(ThreadPool::worker_index())].Add(
              local);
          counters[j].cache_hits.fetch_add(local_hits,
                                           std::memory_order_relaxed);
          counters[j].failed.fetch_add(local_failed,
                                       std::memory_order_relaxed);
          counters[j].retries.fetch_add(local_retries,
                                        std::memory_order_relaxed);
          counters[j].deadline_exceeded.fetch_add(local_deadline,
                                                  std::memory_order_relaxed);
          counters[j].cancelled.fetch_add(local_cancelled,
                                          std::memory_order_relaxed);
          if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            all_done.set_value();
          }
        });
      }
    }
    done.wait();
  }

  if (stats != nullptr) stats->assign(m, BatchStats{});
  for (size_t j = 0; j < m; ++j) {
    const uint64_t total_hits =
        counters[j].cache_hits.load(std::memory_order_relaxed);
    const uint64_t total_failed =
        counters[j].failed.load(std::memory_order_relaxed);
    const uint64_t total_retries =
        counters[j].retries.load(std::memory_order_relaxed);
    const uint64_t total_deadline =
        counters[j].deadline_exceeded.load(std::memory_order_relaxed);
    const uint64_t total_cancelled =
        counters[j].cancelled.load(std::memory_order_relaxed);
    SPINE_OBS_COUNT("engine.queries", n);
    SPINE_OBS_COUNT("engine.cache_hits", total_hits);
    SPINE_OBS_COUNT("engine.executed", n - total_hits);
    SPINE_OBS_COUNT("engine.failed", total_failed);
    SPINE_OBS_COUNT("engine.retries", total_retries);
    SPINE_OBS_COUNT("engine.deadline_exceeded", total_deadline);
    SPINE_OBS_COUNT("engine.cancelled", total_cancelled);
    if (stats != nullptr) {
      BatchStats& out = (*stats)[j];
      out.queries = n;
      out.cache_hits = total_hits;
      out.executed = n - total_hits;
      out.failed = total_failed;
      out.retries = total_retries;
      out.deadline_exceeded = total_deadline;
      out.cancelled = total_cancelled;
      for (const SearchStats& s : per_thread[j]) out.search.Add(s);
      out.per_thread = std::move(per_thread[j]);
      out.traces = std::move(traces[j]);
    }
  }
  return results;
}

}  // namespace spine::engine
