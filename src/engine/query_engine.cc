#include "engine/query_engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <optional>
#include <string>
#include <thread>
#include <utility>

#include "obs/metrics.h"

namespace spine::engine {

QueryEngine::QueryEngine() : QueryEngine(Options{}) {}

QueryEngine::QueryEngine(const Options& options)
    : pool_(options.threads), cache_(options.cache_bytes), options_(options) {
  // Merge the deprecated max_retries spelling, once, at the only read
  // site; everything downstream sees retry_limit.
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif
  if (options.max_retries != Options::kRetryLimitUnset) {
    options_.retry_limit = options.max_retries;
  }
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic pop
#endif
}

QueryResult QueryEngine::AnswerOne(const core::Index& index,
                                   const Query& query, std::mutex* backend_mu,
                                   bool* cache_hit, uint64_t* retries,
                                   obs::TraceContext* trace) {
  *cache_hit = false;
  std::string key;
  if (cache_.enabled()) {
    key = QueryCache::Key(index.cache_id(), query);
    if (std::optional<QueryResult> cached = cache_.Get(key)) {
      *cache_hit = true;
#if !defined(SPINE_OBS_DISABLED)
      if (trace != nullptr) trace->Note("cache_hit", 1);
#endif
      return *std::move(cached);
    }
  }
  QueryResult result;
  uint64_t attempts_used = 0;
  uint32_t backoff_us = options_.retry_backoff_us;
  {
    SPINE_OBS_SCOPED_TIMER_US("engine.exec_us");
    for (uint32_t attempt = 0;; ++attempt) {
      if (backend_mu != nullptr) {
        std::lock_guard<std::mutex> lock(*backend_mu);
        result = index.Execute(query, trace);
      } else {
        result = index.Execute(query, trace);
      }
      // Only kIoError is presumed transient; corruption and everything
      // else is a property of the data, not the attempt.
      if (result.status_code != StatusCode::kIoError ||
          attempt >= options_.retry_limit) {
        break;
      }
      ++*retries;
      ++attempts_used;
      if (backoff_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
        backoff_us *= 2;
      }
    }
  }
#if !defined(SPINE_OBS_DISABLED)
  if (trace != nullptr) {
    trace->Note("cache_hit", 0);
    trace->Note("retries", attempts_used);
  }
#else
  (void)attempts_used;
#endif
  // Error results are never cached: the next ask deserves a fresh try.
  if (cache_.enabled() && result.ok()) cache_.Put(key, result);
  return result;
}

std::vector<QueryResult> QueryEngine::ExecuteBatch(
    const core::Index& index, const std::vector<Query>& queries,
    BatchStats* stats) {
  std::vector<BatchStats> multi_stats;
  std::vector<std::vector<QueryResult>> results =
      ExecuteBatch(std::vector<const core::Index*>{&index}, queries,
                   stats != nullptr ? &multi_stats : nullptr);
  if (stats != nullptr) *stats = std::move(multi_stats.front());
  return std::move(results.front());
}

std::vector<std::vector<QueryResult>> QueryEngine::ExecuteBatch(
    const std::vector<const core::Index*>& indexes,
    const std::vector<Query>& queries, std::vector<BatchStats>* stats) {
  const size_t m = indexes.size();
  const size_t n = queries.size();
  const uint32_t thread_count = pool_.thread_count();

  std::vector<std::vector<QueryResult>> results(m);
  std::vector<std::vector<SearchStats>> per_thread(
      m, std::vector<SearchStats>(thread_count));
  // Per-query traces, in input order; each task writes only its own
  // queries' slots, so no synchronization is needed.
  std::vector<std::vector<obs::TraceContext>> traces(m);
  struct BatchCounters {
    std::atomic<uint64_t> cache_hits{0};
    std::atomic<uint64_t> failed{0};
    std::atomic<uint64_t> retries{0};
  };
  std::vector<BatchCounters> counters(m);
  // Serialization locks for backends without concurrent-safe reads.
  std::vector<std::mutex> backend_mus(m);
  std::vector<std::mutex*> serialize(m, nullptr);
  for (size_t j = 0; j < m; ++j) {
    results[j].resize(n);
#if !defined(SPINE_OBS_DISABLED)
    if (options_.tracing && stats != nullptr) traces[j].resize(n);
#endif
    if (!indexes[j]->capabilities().concurrent_reads) {
      serialize[j] = &backend_mus[j];
    }
  }

  if (m > 0 && n > 0) {
    // Oversubscribe chunks so stealing can rebalance uneven query
    // costs; every (index, chunk) pair is one pool task, so slow
    // backends overlap with fast ones instead of running after them.
    const size_t chunk =
        std::max<size_t>(1, n / (static_cast<size_t>(thread_count) * 8));
    const size_t tasks_per_index = (n + chunk - 1) / chunk;
    std::atomic<size_t> remaining{m * tasks_per_index};
    std::promise<void> all_done;
    std::future<void> done = all_done.get_future();
    for (size_t j = 0; j < m; ++j) {
      obs::TraceContext* const trace_slots =
          traces[j].empty() ? nullptr : traces[j].data();
      for (size_t t = 0; t < tasks_per_index; ++t) {
        const size_t begin = t * chunk;
        const size_t end = std::min(n, begin + chunk);
        typename obs::TraceContext::Clock::time_point submitted{};
#if !defined(SPINE_OBS_DISABLED)
        submitted = obs::TraceContext::Clock::now();
#endif
        pool_.Submit([&, j, begin, end, trace_slots, submitted] {
#if !defined(SPINE_OBS_DISABLED)
          const double queue_wait_us =
              std::chrono::duration<double, std::micro>(
                  obs::TraceContext::Clock::now() - submitted)
                  .count();
          SPINE_OBS_OBSERVE_US("engine.queue_wait_us", queue_wait_us);
          if (trace_slots != nullptr) {
            for (size_t i = begin; i < end; ++i) {
              trace_slots[i].RecordSpan("queue_wait_us", queue_wait_us);
            }
          }
#else
          (void)submitted;
#endif
          SearchStats local;
          uint64_t local_hits = 0;
          uint64_t local_failed = 0;
          uint64_t local_retries = 0;
          for (size_t i = begin; i < end; ++i) {
            bool hit = false;
            results[j][i] =
                AnswerOne(*indexes[j], queries[i], serialize[j], &hit,
                          &local_retries,
                          trace_slots == nullptr ? nullptr : &trace_slots[i]);
            if (hit) {
              ++local_hits;
            } else {
              local.Add(results[j][i].stats);
            }
            if (!results[j][i].ok()) ++local_failed;
          }
          per_thread[j][static_cast<size_t>(ThreadPool::worker_index())].Add(
              local);
          counters[j].cache_hits.fetch_add(local_hits,
                                           std::memory_order_relaxed);
          counters[j].failed.fetch_add(local_failed,
                                       std::memory_order_relaxed);
          counters[j].retries.fetch_add(local_retries,
                                        std::memory_order_relaxed);
          if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            all_done.set_value();
          }
        });
      }
    }
    done.wait();
  }

  if (stats != nullptr) stats->assign(m, BatchStats{});
  for (size_t j = 0; j < m; ++j) {
    const uint64_t total_hits =
        counters[j].cache_hits.load(std::memory_order_relaxed);
    const uint64_t total_failed =
        counters[j].failed.load(std::memory_order_relaxed);
    const uint64_t total_retries =
        counters[j].retries.load(std::memory_order_relaxed);
    SPINE_OBS_COUNT("engine.queries", n);
    SPINE_OBS_COUNT("engine.cache_hits", total_hits);
    SPINE_OBS_COUNT("engine.executed", n - total_hits);
    SPINE_OBS_COUNT("engine.failed", total_failed);
    SPINE_OBS_COUNT("engine.retries", total_retries);
    if (stats != nullptr) {
      BatchStats& out = (*stats)[j];
      out.queries = n;
      out.cache_hits = total_hits;
      out.executed = n - total_hits;
      out.failed = total_failed;
      out.retries = total_retries;
      for (const SearchStats& s : per_thread[j]) out.search.Add(s);
      out.per_thread = std::move(per_thread[j]);
      out.traces = std::move(traces[j]);
    }
  }
  return results;
}

}  // namespace spine::engine
