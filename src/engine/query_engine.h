// Concurrent batch query engine over any core::Index backend.
//
// A batch of heterogeneous Queries (core/query.h) is sharded across the
// work-stealing pool; results come back in input order, byte-identical
// to sequential execution at any thread count (every backend's Execute
// is deterministic, and each query writes only its own result slot).
// SearchStats are aggregated per worker thread without locks and merged
// at the end.
//
// Backends whose const reads are NOT safe to run concurrently — the
// disk backends, whose reads share a buffer pool — declare so via
// Capabilities::concurrent_reads, and the engine serializes them
// through one per-index mutex. The batch still benefits from cache hits
// and from overlapping with other indexes.
//
// The optional LRU result cache (engine/query_cache.h) is keyed per
// (Index::cache_id(), query); ids are issued at Index construction, so
// two live indexes can never collide.
//
// Fault tolerance (PR 2): a query whose backend hits an I/O error or
// detects corruption yields a per-query error QueryResult (status_code
// != kOk) while the rest of the batch completes normally. Transient
// kIoError failures are retried with exponential backoff
// (Options::retry_limit); kCorruption is never retried (the medium is
// wrong, not the moment). Error results are never cached.
//
// Deadlines (PR 7): Query::deadline_ms is pinned to an absolute
// common/cancel.h Deadline once, at batch entry — so time spent queued
// behind other work counts against the budget. A query already expired
// when a worker picks it up fails with kDeadlineExceeded before
// touching the backend; one that expires mid-walk is stopped at the
// next cooperative checkpoint. Retries never sleep past the deadline,
// and a budget exhausted between attempts yields kDeadlineExceeded
// carrying the transient error's detail. The optional batch-wide
// CancelToken (the serve layer passes its per-connection token) chains
// above every per-query deadline; Cancel() aborts queries still
// pending with kCancelled. Deadline results are never cached either.
//
// The multi-index overload fans one batch across several indexes at
// once: every (index, chunk) pair becomes a pool task, so a slow
// backend (disk) overlaps with fast ones (in-memory) instead of
// running after them.

#ifndef SPINE_ENGINE_QUERY_ENGINE_H_
#define SPINE_ENGINE_QUERY_ENGINE_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "core/index.h"
#include "core/query.h"
#include "engine/query_cache.h"
#include "engine/thread_pool.h"
#include "obs/trace.h"

namespace spine::engine {

struct BatchStats {
  uint64_t queries = 0;
  uint64_t executed = 0;    // answered by the backend (cache misses)
  uint64_t cache_hits = 0;  // answered from the result cache
  uint64_t failed = 0;      // queries that returned an error result
  uint64_t retries = 0;     // transient-fault re-executions
  // Subsets of `failed`, broken out because they are verdicts about
  // time, not about the data: ran out of budget / token cancelled.
  uint64_t deadline_exceeded = 0;
  uint64_t cancelled = 0;
  SearchStats search;       // total backend work, summed over workers
  std::vector<SearchStats> per_thread;  // one slot per pool worker
  // One trace per query, in input order, when Options::tracing is on
  // (and the build has observability compiled in); empty otherwise.
  // Traces are observational: results are identical either way.
  std::vector<obs::TraceContext> traces;
};

class QueryEngine {
 public:
  // Field names follow the one naming scheme shared with
  // serve::Options (threads / queue_cap / retry_* / tracing); the
  // defaults table for both lives in docs/SERVING.md.
  struct Options {
    uint32_t threads = 0;      // 0 → hardware concurrency
    uint64_t cache_bytes = 0;  // 0 → result cache disabled
    // Transient-fault handling: a query failing with kIoError is
    // re-executed up to retry_limit times, sleeping retry_backoff_us,
    // 2x, 4x, ... between attempts (never past the query's deadline).
    // Corruption is never retried.
    uint32_t retry_limit = 2;
    uint32_t retry_backoff_us = 500;
    // Collect a per-query TraceContext (spans + notes) into
    // BatchStats::traces. No effect on results or on builds compiled
    // with SPINE_OBS_DISABLED.
    bool tracing = false;
  };

  QueryEngine();  // default Options
  explicit QueryEngine(const Options& options);

  uint32_t thread_count() const { return pool_.thread_count(); }
  QueryCache& cache() { return cache_; }
  const QueryCache& cache() const { return cache_; }
  ThreadPool& pool() { return pool_; }

  // Executes every query in `queries` against `index` and returns the
  // answers in input order. Thread-safe: concurrent batches (against the
  // same or different backends) share the pool and cache. `cancel`,
  // when non-null, must outlive the call; it parents every per-query
  // deadline token, so one Cancel() aborts the whole batch cooperatively.
  std::vector<QueryResult> ExecuteBatch(const core::Index& index,
                                        const std::vector<Query>& queries,
                                        BatchStats* stats = nullptr,
                                        const CancelToken* cancel = nullptr);

  // Fans the batch across every index at once; result[j][i] answers
  // queries[i] on *indexes[j]. When `stats` is non-null it is resized
  // to one BatchStats per index. Null index pointers are not allowed.
  std::vector<std::vector<QueryResult>> ExecuteBatch(
      const std::vector<const core::Index*>& indexes,
      const std::vector<Query>& queries,
      std::vector<BatchStats>* stats = nullptr,
      const CancelToken* cancel = nullptr);

 private:
  QueryResult AnswerOne(const core::Index& index, const Query& query,
                        std::mutex* backend_mu, bool* cache_hit,
                        uint64_t* retries, obs::TraceContext* trace,
                        const CancelToken* batch_cancel,
                        Deadline::Clock::time_point epoch);

  ThreadPool pool_;
  QueryCache cache_;
  Options options_;
};

}  // namespace spine::engine

#endif  // SPINE_ENGINE_QUERY_ENGINE_H_
