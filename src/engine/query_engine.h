// Concurrent batch query engine over any SPINE backend.
//
// A batch of heterogeneous Queries (core/query.h) is sharded across the
// work-stealing pool; results come back in input order, byte-identical
// to sequential execution at any thread count (every algorithm in
// core/search.h / core/matcher.h is deterministic, and each query writes
// only its own result slot). SearchStats are aggregated per worker
// thread without locks and merged at the end.
//
// Backends whose const reads are NOT safe to run concurrently — only
// storage::DiskSpine today, because its reads go through a shared buffer
// pool — are serialized through one mutex, selected at compile time via
// the kConcurrentSafeReads trait. The batch still benefits from cache
// hits and from overlapping with other backends.
//
// The optional LRU result cache (engine/query_cache.h) is keyed per
// (backend_id, query); callers hand each logical index a distinct id.
//
// Fault tolerance (PR 2): a query whose backend hits an I/O error or
// detects corruption yields a per-query error QueryResult (status_code
// != kOk) while the rest of the batch completes normally. Transient
// kIoError failures are retried with exponential backoff
// (Options::max_retries); kCorruption is never retried (the medium is
// wrong, not the moment). Error results are never cached.

#ifndef SPINE_ENGINE_QUERY_ENGINE_H_
#define SPINE_ENGINE_QUERY_ENGINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/query.h"
#include "engine/query_cache.h"
#include "engine/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace spine::storage {
class DiskSpine;
}  // namespace spine::storage

namespace spine::engine {

// True when the backend's const search methods may run on many threads
// at once (see "Thread safety" notes in each backend header).
template <typename Index>
inline constexpr bool kConcurrentSafeReads = true;
template <>
inline constexpr bool kConcurrentSafeReads<storage::DiskSpine> = false;

struct BatchStats {
  uint64_t queries = 0;
  uint64_t executed = 0;    // answered by the backend (cache misses)
  uint64_t cache_hits = 0;  // answered from the result cache
  uint64_t failed = 0;      // queries that returned an error result
  uint64_t retries = 0;     // transient-fault re-executions
  SearchStats search;       // total backend work, summed over workers
  std::vector<SearchStats> per_thread;  // one slot per pool worker
  // One trace per query, in input order, when Options::tracing is on
  // (and the build has observability compiled in); empty otherwise.
  // Traces are observational: results are identical either way.
  std::vector<obs::TraceContext> traces;
};

class QueryEngine {
 public:
  struct Options {
    uint32_t threads = 0;      // 0 → hardware concurrency
    uint64_t cache_bytes = 0;  // 0 → result cache disabled
    // Transient-fault handling: a query failing with kIoError is
    // re-executed up to max_retries times, sleeping retry_backoff_us,
    // 2x, 4x, ... between attempts. Corruption is never retried.
    uint32_t max_retries = 2;
    uint32_t retry_backoff_us = 500;
    // Collect a per-query TraceContext (spans + notes) into
    // BatchStats::traces. No effect on results or on builds compiled
    // with SPINE_OBS_DISABLED.
    bool tracing = false;
  };

  QueryEngine();  // default Options
  explicit QueryEngine(const Options& options);

  uint32_t thread_count() const { return pool_.thread_count(); }
  QueryCache& cache() { return cache_; }
  const QueryCache& cache() const { return cache_; }
  ThreadPool& pool() { return pool_; }

  // Executes every query in `queries` against `index` and returns the
  // answers in input order. Thread-safe: concurrent batches (against the
  // same or different backends) share the pool and cache.
  template <typename Index>
  std::vector<QueryResult> ExecuteBatch(const Index& index,
                                        const std::vector<Query>& queries,
                                        uint64_t backend_id = 0,
                                        BatchStats* stats = nullptr);

 private:
  template <typename Index>
  QueryResult AnswerOne(const Index& index, const Query& query,
                        uint64_t backend_id, std::mutex* backend_mu,
                        bool* cache_hit, uint64_t* retries,
                        obs::TraceContext* trace);

  ThreadPool pool_;
  QueryCache cache_;
  Options options_;
};

template <typename Index>
QueryResult QueryEngine::AnswerOne(const Index& index, const Query& query,
                                   uint64_t backend_id,
                                   std::mutex* backend_mu, bool* cache_hit,
                                   uint64_t* retries,
                                   obs::TraceContext* trace) {
  *cache_hit = false;
  std::string key;
  if (cache_.enabled()) {
    key = QueryCache::Key(backend_id, query);
    if (std::optional<QueryResult> cached = cache_.Get(key)) {
      *cache_hit = true;
#if !defined(SPINE_OBS_DISABLED)
      if (trace != nullptr) trace->Note("cache_hit", 1);
#endif
      return *std::move(cached);
    }
  }
  QueryResult result;
  uint64_t attempts_used = 0;
  uint32_t backoff_us = options_.retry_backoff_us;
  {
    SPINE_OBS_SCOPED_TIMER_US("engine.exec_us");
    for (uint32_t attempt = 0;; ++attempt) {
      if (backend_mu != nullptr) {
        std::lock_guard<std::mutex> lock(*backend_mu);
        result = ExecuteQuery(index, query, trace);
      } else {
        result = ExecuteQuery(index, query, trace);
      }
      // Only kIoError is presumed transient; corruption and everything
      // else is a property of the data, not the attempt.
      if (result.status_code != StatusCode::kIoError ||
          attempt >= options_.max_retries) {
        break;
      }
      ++*retries;
      ++attempts_used;
      if (backoff_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
        backoff_us *= 2;
      }
    }
  }
#if !defined(SPINE_OBS_DISABLED)
  if (trace != nullptr) {
    trace->Note("cache_hit", 0);
    trace->Note("retries", attempts_used);
  }
#else
  (void)attempts_used;
#endif
  // Error results are never cached: the next ask deserves a fresh try.
  if (cache_.enabled() && result.ok()) cache_.Put(key, result);
  return result;
}

template <typename Index>
std::vector<QueryResult> QueryEngine::ExecuteBatch(
    const Index& index, const std::vector<Query>& queries,
    uint64_t backend_id, BatchStats* stats) {
  const size_t n = queries.size();
  const uint32_t thread_count = pool_.thread_count();
  std::vector<QueryResult> results(n);
  std::vector<SearchStats> per_thread(thread_count);
  std::atomic<uint64_t> cache_hits{0};
  std::atomic<uint64_t> failed{0};
  std::atomic<uint64_t> retries{0};
  // Per-query traces, in input order; each task writes only its own
  // queries' slots, so no synchronization is needed.
  std::vector<obs::TraceContext> traces;
#if !defined(SPINE_OBS_DISABLED)
  if (options_.tracing && stats != nullptr) traces.resize(n);
#endif
  obs::TraceContext* const trace_slots = traces.empty() ? nullptr : traces.data();
  // Serialization lock for backends without concurrent-safe reads.
  std::mutex backend_mu;
  std::mutex* serialize =
      kConcurrentSafeReads<Index> ? nullptr : &backend_mu;

  if (n > 0) {
    // Oversubscribe chunks so stealing can rebalance uneven query costs.
    const size_t chunk =
        std::max<size_t>(1, n / (static_cast<size_t>(thread_count) * 8));
    const size_t tasks = (n + chunk - 1) / chunk;
    std::atomic<size_t> remaining{tasks};
    std::promise<void> all_done;
    std::future<void> done = all_done.get_future();
    for (size_t t = 0; t < tasks; ++t) {
      const size_t begin = t * chunk;
      const size_t end = std::min(n, begin + chunk);
      typename obs::TraceContext::Clock::time_point submitted{};
#if !defined(SPINE_OBS_DISABLED)
      submitted = obs::TraceContext::Clock::now();
#endif
      pool_.Submit([&, begin, end, submitted] {
#if !defined(SPINE_OBS_DISABLED)
        const double queue_wait_us =
            std::chrono::duration<double, std::micro>(
                obs::TraceContext::Clock::now() - submitted)
                .count();
        SPINE_OBS_OBSERVE_US("engine.queue_wait_us", queue_wait_us);
        if (trace_slots != nullptr) {
          for (size_t i = begin; i < end; ++i) {
            trace_slots[i].RecordSpan("queue_wait_us", queue_wait_us);
          }
        }
#else
        (void)submitted;
#endif
        SearchStats local;
        uint64_t local_hits = 0;
        uint64_t local_failed = 0;
        uint64_t local_retries = 0;
        for (size_t i = begin; i < end; ++i) {
          bool hit = false;
          results[i] =
              AnswerOne(index, queries[i], backend_id, serialize, &hit,
                        &local_retries,
                        trace_slots == nullptr ? nullptr : &trace_slots[i]);
          if (hit) {
            ++local_hits;
          } else {
            local.Add(results[i].stats);
          }
          if (!results[i].ok()) ++local_failed;
        }
        per_thread[static_cast<size_t>(ThreadPool::worker_index())].Add(
            local);
        cache_hits.fetch_add(local_hits, std::memory_order_relaxed);
        failed.fetch_add(local_failed, std::memory_order_relaxed);
        retries.fetch_add(local_retries, std::memory_order_relaxed);
        if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          all_done.set_value();
        }
      });
    }
    done.wait();
  }

  const uint64_t total_hits = cache_hits.load(std::memory_order_relaxed);
  const uint64_t total_failed = failed.load(std::memory_order_relaxed);
  const uint64_t total_retries = retries.load(std::memory_order_relaxed);
  SPINE_OBS_COUNT("engine.queries", n);
  SPINE_OBS_COUNT("engine.cache_hits", total_hits);
  SPINE_OBS_COUNT("engine.executed", n - total_hits);
  SPINE_OBS_COUNT("engine.failed", total_failed);
  SPINE_OBS_COUNT("engine.retries", total_retries);

  if (stats != nullptr) {
    stats->queries = n;
    stats->cache_hits = total_hits;
    stats->executed = n - total_hits;
    stats->failed = total_failed;
    stats->retries = total_retries;
    stats->search = SearchStats{};
    for (const SearchStats& s : per_thread) stats->search.Add(s);
    stats->per_thread = std::move(per_thread);
    stats->traces = std::move(traces);
  }
  return results;
}

}  // namespace spine::engine

#endif  // SPINE_ENGINE_QUERY_ENGINE_H_
