#include "engine/query_cache.h"

#include <utility>

namespace spine::engine {

QueryCache::QueryCache(uint64_t capacity_bytes) : capacity_(capacity_bytes) {}

std::string QueryCache::Key(uint64_t backend_id, const Query& query) {
  std::string key;
  key.reserve(query.pattern.size() + 24);
  key += std::to_string(backend_id);
  key += '|';
  key += std::to_string(static_cast<unsigned>(query.kind));
  key += '|';
  key += std::to_string(query.min_len);
  key += '|';
  key += query.expand_occurrences ? '1' : '0';
  key += '|';
  key += std::to_string(query.max_errors);
  key += '|';
  key += query.pattern;  // last field, so embedded '|' is unambiguous
  return key;
}

uint64_t QueryCache::EntryBytes(const std::string& key,
                                const QueryResult& r) {
  // Payload plus a flat estimate of node/map bookkeeping.
  constexpr uint64_t kOverhead = 96;
  return kOverhead + key.size() + r.hits.size() * sizeof(Hit) +
         r.matching_stats.size() * sizeof(uint32_t);
}

std::optional<QueryResult> QueryCache::Get(const std::string& key) {
  if (!enabled()) return std::nullopt;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++counters_.misses;
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  ++counters_.hits;
  return it->second->result;
}

void QueryCache::Put(const std::string& key, const QueryResult& result) {
  if (!enabled()) return;
  const uint64_t bytes = EntryBytes(key, result);
  if (bytes > capacity_) return;  // would evict everything for one entry
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Another thread answered the same query first; refresh the entry
    // (answers are deterministic, so the payloads match).
    size_ -= it->second->bytes;
    it->second->result = result;
    it->second->bytes = bytes;
    size_ += bytes;
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front(Entry{key, result, bytes});
    index_[key] = lru_.begin();
    size_ += bytes;
    ++counters_.insertions;
  }
  while (size_ > capacity_) {
    Entry& victim = lru_.back();
    size_ -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    ++counters_.evictions;
  }
}

void QueryCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  size_ = 0;
}

QueryCache::Counters QueryCache::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

uint64_t QueryCache::size_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return size_;
}

uint64_t QueryCache::entry_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace spine::engine
