#include "engine/thread_pool.h"

#include <algorithm>
#include <utility>

namespace spine::engine {

namespace {
thread_local int tl_worker_index = -1;
}  // namespace

ThreadPool::ThreadPool(uint32_t threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  queues_.reserve(threads);
  for (uint32_t i = 0; i < threads; ++i) {
    queues_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(threads);
  for (uint32_t i = 0; i < threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  uint32_t target;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++queued_;
    ++pending_;
    target = static_cast<uint32_t>(submit_cursor_++ % queues_.size());
  }
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mu);
    queues_[target]->tasks.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return pending_ == 0; });
}

uint64_t ThreadPool::steal_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return steals_;
}

int ThreadPool::worker_index() { return tl_worker_index; }

bool ThreadPool::PopOwn(uint32_t self, std::function<void()>* task) {
  Worker& w = *queues_[self];
  std::lock_guard<std::mutex> lock(w.mu);
  if (w.tasks.empty()) return false;
  *task = std::move(w.tasks.back());
  w.tasks.pop_back();
  return true;
}

bool ThreadPool::Steal(uint32_t self, std::function<void()>* task) {
  const uint32_t n = static_cast<uint32_t>(queues_.size());
  for (uint32_t d = 1; d < n; ++d) {
    Worker& victim = *queues_[(self + d) % n];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (victim.tasks.empty()) continue;
    *task = std::move(victim.tasks.front());
    victim.tasks.pop_front();
    {
      std::lock_guard<std::mutex> stats_lock(mu_);
      ++steals_;
    }
    return true;
  }
  return false;
}

void ThreadPool::WorkerLoop(uint32_t self) {
  tl_worker_index = static_cast<int>(self);
  while (true) {
    std::function<void()> task;
    if (!PopOwn(self, &task) && !Steal(self, &task)) {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || queued_ > 0; });
      if (stop_ && queued_ == 0) return;
      continue;  // re-probe the deques under no lock
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --queued_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace spine::engine
