// PackedSuffixTree: a space-reduced suffix tree in the spirit of Kurtz
// ("Reducing the space requirements of suffix trees", SP&E 1999 — the
// implementation class the paper benchmarks against at ~17 bytes per
// indexed character).
//
// Space tricks relative to the textbook SuffixTree (suffix_tree.h):
//  * Leaves are identified by their suffix index and store ONLY a
//    4-byte sibling pointer: a leaf's edge label is
//    text[suffix + parent_depth .. n), so nothing else is needed.
//  * Internal nodes store (head, depth) instead of edge offsets: the
//    incoming edge of node v with parent p is
//    text[v.head + p.depth .. v.head + v.depth). head is the start of
//    the first suffix ever inserted through v, which Ukkonen's
//    construction provides for free.
//  * Child references are tagged 32-bit ids (high bit = leaf).
//  * The text itself is bit-packed (2 bits/char for DNA).
//
// Cost: 4 bytes per leaf + 20 per internal node (~0.6-0.8n of them)
// ≈ 16-20 B/char on genomic data — matching the implementation class
// the paper's ST numbers describe. Functionally equivalent to
// SuffixTree for Contains/FindAll (tests assert exact agreement).

#ifndef SPINE_SUFFIX_TREE_PACKED_SUFFIX_TREE_H_
#define SPINE_SUFFIX_TREE_PACKED_SUFFIX_TREE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "alphabet/alphabet.h"
#include "alphabet/packed_string.h"
#include "common/status.h"

namespace spine {

class PackedSuffixTree {
 public:
  explicit PackedSuffixTree(const Alphabet& alphabet);

  PackedSuffixTree(const PackedSuffixTree&) = delete;
  PackedSuffixTree& operator=(const PackedSuffixTree&) = delete;
  PackedSuffixTree(PackedSuffixTree&&) = default;
  PackedSuffixTree& operator=(PackedSuffixTree&&) = default;

  // Online extension (Ukkonen).
  Status Append(char c);
  Status AppendString(std::string_view s);

  const Alphabet& alphabet() const { return alphabet_; }
  uint64_t size() const { return text_.size(); }
  uint64_t internal_node_count() const { return internals_.size(); }
  uint64_t MemoryBytes() const;

  bool Contains(std::string_view pattern) const;
  // All start positions of `pattern`, ascending.
  std::vector<uint32_t> FindAll(std::string_view pattern) const;

  // Structural checks: depths increase along edges, heads are valid,
  // every suffix is reachable.
  Status Validate() const;

 private:
  // Tagged child reference: high bit set -> leaf (value = suffix
  // index); clear -> internal node id. kNullRef = absent.
  using Ref = uint32_t;
  static constexpr Ref kNullRef = 0xffffffffu;
  static constexpr Ref kLeafTag = 0x80000000u;
  static constexpr Ref kRootRef = 0;  // internal node 0

  struct Internal {
    uint32_t head;         // start of the first suffix through this node
    uint32_t depth;        // string depth
    Ref first_child = kNullRef;
    Ref next_sibling = kNullRef;
    uint32_t suffix_link = 0;
  };

  static bool IsLeaf(Ref ref) { return (ref & kLeafTag) != 0; }
  static uint32_t LeafSuffix(Ref ref) { return ref & ~kLeafTag; }

  // Edge label range of `child` when descended from a parent of depth
  // `parent_depth`; end is exclusive (text_.size() for leaves).
  uint32_t EdgeStart(Ref child, uint32_t parent_depth) const {
    return (IsLeaf(child) ? LeafSuffix(child) : internals_[child].head) +
           parent_depth;
  }
  uint32_t EdgeEnd(Ref child) const {
    return IsLeaf(child)
               ? static_cast<uint32_t>(text_.size())
               : internals_[child].head + internals_[child].depth;
  }

  Ref FindChild(uint32_t parent, Code c) const;
  void AddChild(uint32_t parent, Ref child);
  void ReplaceChild(uint32_t parent, Ref old_child, Ref new_child);
  Ref& SiblingSlot(Ref child);
  void ExtendWithCode(Code c);
  void CollectLeaves(Ref ref, std::vector<uint32_t>* out) const;

  Alphabet alphabet_;
  PackedString text_;
  std::vector<Internal> internals_;   // node 0 = root (head 0, depth 0)
  std::vector<Ref> leaf_next_;        // sibling pointer per suffix index

  // Ukkonen state.
  uint32_t active_node_ = 0;
  uint32_t active_edge_ = 0;
  uint32_t active_length_ = 0;
  uint32_t remainder_ = 0;
  uint32_t need_suffix_link_ = 0xffffffffu;
};

}  // namespace spine

#endif  // SPINE_SUFFIX_TREE_PACKED_SUFFIX_TREE_H_
