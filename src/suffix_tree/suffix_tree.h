// SuffixTree: the vertical-compaction baseline SPINE is evaluated
// against (the paper uses MUMmer's suffix tree; we implement the same
// class of structure: an online Ukkonen suffix tree with suffix links).
//
// Children are kept as first-child/next-sibling lists, the standard
// space-conscious textbook layout. Leaf edges use an open end that
// implicitly tracks the current string length, so construction is
// online like SPINE's.

#ifndef SPINE_SUFFIX_TREE_SUFFIX_TREE_H_
#define SPINE_SUFFIX_TREE_SUFFIX_TREE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "alphabet/alphabet.h"
#include "common/status.h"
#include "core/spine_index.h"  // SearchStats

namespace spine {

class SuffixTree {
 public:
  static constexpr uint32_t kNoNode32 = 0xffffffffu;

  struct Node {
    uint32_t start = 0;        // edge label: text_[start, end)
    uint32_t end = 0;          // kOpenEnd on leaves
    uint32_t suffix_link = 0;
    uint32_t first_child = kNoNode32;
    uint32_t next_sibling = kNoNode32;
    uint32_t suffix_index = kNoNode32;  // for leaves: start of the suffix
  };

  explicit SuffixTree(const Alphabet& alphabet);

  SuffixTree(const SuffixTree&) = delete;
  SuffixTree& operator=(const SuffixTree&) = delete;
  SuffixTree(SuffixTree&&) = default;
  SuffixTree& operator=(SuffixTree&&) = default;

  // Online extension by one character (Ukkonen's algorithm).
  Status Append(char c);
  Status AppendString(std::string_view s);

  const Alphabet& alphabet() const { return alphabet_; }
  uint64_t size() const { return text_.size(); }
  uint64_t node_count() const { return nodes_.size(); }
  uint64_t MemoryBytes() const;

  Code CodeAt(uint64_t i) const { return text_[i]; }

  bool Contains(std::string_view pattern, SearchStats* stats = nullptr) const;
  // All start positions of `pattern`, ascending.
  std::vector<uint32_t> FindAll(std::string_view pattern,
                                SearchStats* stats = nullptr) const;

  // Structural sanity checks (suffix link targets, edge ranges, leaf
  // count equals string length).
  Status Validate() const;

  // --- Internals exposed for the streaming matcher -----------------------

  static constexpr uint32_t kRoot = 0;
  static constexpr uint32_t kOpenEnd = 0xffffffffu;

  const Node& node(uint32_t id) const { return nodes_[id]; }
  uint32_t EdgeEnd(uint32_t id) const {
    return nodes_[id].end == kOpenEnd ? static_cast<uint32_t>(text_.size())
                                      : nodes_[id].end;
  }
  uint32_t EdgeLength(uint32_t id) const {
    return EdgeEnd(id) - nodes_[id].start;
  }
  // Child of `parent` whose edge starts with code `c`; kNoNode32 if none.
  uint32_t FindChild(uint32_t parent, Code c, SearchStats* stats) const;
  // Appends all leaf suffix indexes under `id` to `out`.
  void CollectLeaves(uint32_t id, std::vector<uint32_t>* out) const;

 private:
  uint32_t NewNode(uint32_t start, uint32_t end);
  void AddChild(uint32_t parent, uint32_t child);
  void ReplaceChild(uint32_t parent, uint32_t old_child, uint32_t new_child);
  void ExtendWithCode(Code c);

  Alphabet alphabet_;
  std::vector<Code> text_;
  std::vector<Node> nodes_;

  // Ukkonen state.
  uint32_t active_node_ = kRoot;
  uint32_t active_edge_ = 0;   // index into text_ of the edge's first code
  uint32_t active_length_ = 0;
  uint32_t remainder_ = 0;
  uint32_t need_suffix_link_ = kNoNode32;
};

}  // namespace spine

#endif  // SPINE_SUFFIX_TREE_SUFFIX_TREE_H_
