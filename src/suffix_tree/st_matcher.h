// Streaming maximal-match finder over a suffix tree, the baseline for
// the paper's search comparison (Sections 4.1, 6.1, Tables 5-7).
//
// This is the classical suffix-link walk (as used by MUMmer): on a
// mismatch the matched suffix shrinks by ONE character per suffix-link
// hop, re-descending edge remainders by skip/count. SPINE's link chain
// shrinks by whole suffix *sets* per hop — the difference the paper
// quantifies in Table 6 as "number of nodes checked".
//
// The implementation is a template over the tree type so the in-memory
// SuffixTree and the disk-resident storage::DiskSuffixTree share it. A
// Tree must provide: alphabet(), node(id) (by value or reference),
// EdgeLength(id), CodeAt(i), FindChild(parent, code, stats), and the
// kRoot / kNoNode32 constants of SuffixTree.

#ifndef SPINE_SUFFIX_TREE_ST_MATCHER_H_
#define SPINE_SUFFIX_TREE_ST_MATCHER_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/check.h"
#include "suffix_tree/suffix_tree.h"

namespace spine {

struct StMatch {
  uint32_t query_pos = 0;
  uint32_t length = 0;
  bool operator==(const StMatch&) const = default;
};

namespace st_internal {

// Position in the tree: the implicit node reached after matching some
// string. `node` is the deepest explicit node at or above the position;
// when `edge_offset` > 0 the position lies `edge_offset` codes down the
// edge to `child`. The position is never normalized onto a leaf (leaves
// carry no valid suffix link).
struct TreePos {
  uint32_t node = SuffixTree::kRoot;
  uint32_t child = SuffixTree::kNoNode32;
  uint32_t edge_offset = 0;
};

template <typename Tree>
bool IsLeaf(const Tree& tree, uint32_t id) {
  return tree.node(id).first_child == SuffixTree::kNoNode32;
}

template <typename Tree>
void Normalize(const Tree& tree, TreePos* pos) {
  if (pos->edge_offset == 0) return;
  if (pos->edge_offset == tree.EdgeLength(pos->child) &&
      !IsLeaf(tree, pos->child)) {
    pos->node = pos->child;
    pos->child = SuffixTree::kNoNode32;
    pos->edge_offset = 0;
  }
}

// Skip/count descent of `codes` from `pos->node`, assuming the path
// exists (used after suffix-link hops, where existence is guaranteed).
template <typename Tree>
void SkipCountDown(const Tree& tree, const Code* codes, uint32_t len,
                   TreePos* pos, SearchStats* stats) {
  uint32_t consumed = 0;
  pos->child = SuffixTree::kNoNode32;
  pos->edge_offset = 0;
  while (consumed < len) {
    uint32_t child = tree.FindChild(pos->node, codes[consumed], stats);
    SPINE_DCHECK(child != SuffixTree::kNoNode32);
    uint32_t edge_len = tree.EdgeLength(child);
    uint32_t remaining = len - consumed;
    if (remaining < edge_len || IsLeaf(tree, child)) {
      SPINE_DCHECK(remaining <= edge_len);
      pos->child = child;
      pos->edge_offset = remaining;
      return;
    }
    consumed += edge_len;
    pos->node = child;
    if (stats != nullptr) ++stats->link_traversals;
  }
}

template <typename Tree>
bool TryExtend(const Tree& tree, TreePos* pos, Code c, SearchStats* stats) {
  if (pos->edge_offset == 0) {
    uint32_t child = tree.FindChild(pos->node, c, stats);
    if (child == SuffixTree::kNoNode32) return false;
    pos->child = child;
    pos->edge_offset = 1;
    Normalize(tree, pos);
    return true;
  }
  if (pos->edge_offset == tree.EdgeLength(pos->child)) {
    return false;  // exhausted leaf edge: the data suffix ends here
  }
  const auto child = tree.node(pos->child);
  if (stats != nullptr) ++stats->nodes_checked;
  if (tree.CodeAt(child.start + pos->edge_offset) != c) return false;
  ++pos->edge_offset;
  Normalize(tree, pos);
  return true;
}

}  // namespace st_internal

template <typename Tree>
std::vector<StMatch> GenericStFindMaximalMatches(const Tree& tree,
                                                 std::string_view query,
                                                 uint32_t min_len,
                                                 SearchStats* stats) {
  SPINE_CHECK(min_len >= 1);
  std::vector<StMatch> out;
  const Alphabet& alphabet = tree.alphabet();

  // Encoded query (needed to re-descend after suffix-link hops).
  std::vector<Code> query_codes;
  query_codes.reserve(query.size());
  for (char ch : query) query_codes.push_back(alphabet.Encode(ch));

  st_internal::TreePos pos;
  uint32_t pathlen = 0;

  auto report = [&](uint32_t end_pos) {
    if (pathlen >= min_len) out.push_back({end_pos - pathlen, pathlen});
  };

  for (uint32_t i = 0; i < query.size(); ++i) {
    Code c = query_codes[i];
    if (c == kInvalidCode) {
      report(i);
      pos = st_internal::TreePos{};
      pathlen = 0;
      continue;
    }
    bool reported = false;
    while (true) {
      if (st_internal::TryExtend(tree, &pos, c, stats)) {
        ++pathlen;
        break;
      }
      if (!reported) {
        report(i);
        reported = true;
      }
      if (pathlen == 0) break;  // character absent under the root
      // Shrink by exactly one suffix: the suffix-link walk. Unlike
      // SPINE's set-based links this drops a single character per hop.
      --pathlen;
      if (pos.node == SuffixTree::kRoot) {
        pos = st_internal::TreePos{};
        st_internal::SkipCountDown(tree, query_codes.data() + (i - pathlen),
                                   pathlen, &pos, stats);
      } else {
        uint32_t above = pos.edge_offset;  // codes hanging below pos.node
        pos.node = tree.node(pos.node).suffix_link;
        if (stats != nullptr) ++stats->link_traversals;
        pos.child = SuffixTree::kNoNode32;
        pos.edge_offset = 0;
        if (above > 0) {
          st_internal::SkipCountDown(tree, query_codes.data() + (i - above),
                                     above, &pos, stats);
        }
      }
    }
  }
  if (pathlen >= min_len) {
    out.push_back({static_cast<uint32_t>(query.size()) - pathlen, pathlen});
  }
  return out;
}

// All maximal matches of length >= min_len between the tree's string and
// `query`; same match set as spine::FindMaximalMatches on a SpineIndex.
std::vector<StMatch> FindMaximalMatches(const SuffixTree& tree,
                                        std::string_view query,
                                        uint32_t min_len,
                                        SearchStats* stats = nullptr);

struct StMatchOccurrences {
  StMatch match;
  std::vector<uint32_t> data_positions;  // ascending start offsets
};

// Expands matches to all occurrences the suffix-tree way: re-descend the
// matched substring and enumerate the leaves below (the per-match
// subtree walk SPINE's single backbone scan replaces).
std::vector<StMatchOccurrences> CollectAllOccurrences(
    const SuffixTree& tree, std::string_view query,
    const std::vector<StMatch>& matches, SearchStats* stats = nullptr);

}  // namespace spine

#endif  // SPINE_SUFFIX_TREE_ST_MATCHER_H_
