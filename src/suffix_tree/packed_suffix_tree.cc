#include "suffix_tree/packed_suffix_tree.h"

#include <algorithm>

#include "common/check.h"

namespace spine {

PackedSuffixTree::PackedSuffixTree(const Alphabet& alphabet)
    : alphabet_(alphabet), text_(alphabet.bits_per_code()) {
  internals_.push_back(Internal{0, 0, kNullRef, kNullRef, 0});  // root
}

PackedSuffixTree::Ref PackedSuffixTree::FindChild(uint32_t parent,
                                                  Code c) const {
  const uint32_t parent_depth = internals_[parent].depth;
  Ref child = internals_[parent].first_child;
  while (child != kNullRef) {
    if (text_.Get(EdgeStart(child, parent_depth)) == c) return child;
    child = IsLeaf(child) ? leaf_next_[LeafSuffix(child)]
                          : internals_[child].next_sibling;
  }
  return kNullRef;
}

PackedSuffixTree::Ref& PackedSuffixTree::SiblingSlot(Ref child) {
  return IsLeaf(child) ? leaf_next_[LeafSuffix(child)]
                       : internals_[child].next_sibling;
}

void PackedSuffixTree::AddChild(uint32_t parent, Ref child) {
  SiblingSlot(child) = internals_[parent].first_child;
  internals_[parent].first_child = child;
}

void PackedSuffixTree::ReplaceChild(uint32_t parent, Ref old_child,
                                    Ref new_child) {
  Ref* slot = &internals_[parent].first_child;
  while (*slot != old_child) {
    SPINE_DCHECK(*slot != kNullRef);
    slot = &SiblingSlot(*slot);
  }
  *slot = new_child;
  SiblingSlot(new_child) = SiblingSlot(old_child);
  SiblingSlot(old_child) = kNullRef;
}

Status PackedSuffixTree::Append(char ch) {
  Code c = alphabet_.Encode(ch);
  if (c == kInvalidCode) {
    return Status::InvalidArgument(
        std::string("character '") + ch + "' is not in the " +
        alphabet_.name() + " alphabet");
  }
  ExtendWithCode(c);
  return Status::OK();
}

Status PackedSuffixTree::AppendString(std::string_view s) {
  for (char ch : s) {
    SPINE_RETURN_IF_ERROR(Append(ch));
  }
  return Status::OK();
}

void PackedSuffixTree::ExtendWithCode(Code c) {
  text_.Append(c);
  leaf_next_.push_back(kNullRef);
  const uint32_t pos = static_cast<uint32_t>(text_.size() - 1);
  need_suffix_link_ = 0xffffffffu;
  ++remainder_;

  auto add_suffix_link = [&](uint32_t node) {
    if (need_suffix_link_ != 0xffffffffu) {
      internals_[need_suffix_link_].suffix_link = node;
    }
    need_suffix_link_ = node;
  };

  while (remainder_ > 0) {
    if (active_length_ == 0) active_edge_ = pos;
    Ref child = FindChild(active_node_, text_.Get(active_edge_));
    if (child == kNullRef) {
      // Rule 2: new leaf directly under the active node.
      uint32_t suffix = pos + 1 - remainder_;
      AddChild(active_node_, kLeafTag | suffix);
      add_suffix_link(active_node_);
    } else {
      const uint32_t parent_depth = internals_[active_node_].depth;
      uint32_t edge_start = EdgeStart(child, parent_depth);
      uint32_t edge_len = EdgeEnd(child) - edge_start;
      if (active_length_ >= edge_len) {
        // Skip/count: the active point lies beyond this edge. Only
        // internal children can be skipped into (the active point's
        // depth is below remainder_, shorter than any leaf edge path).
        SPINE_DCHECK(!IsLeaf(child));
        active_edge_ += edge_len;
        active_length_ -= edge_len;
        active_node_ = child;
        continue;
      }
      if (text_.Get(edge_start + active_length_) == c) {
        // Rule 3: already present; the phase ends.
        ++active_length_;
        add_suffix_link(active_node_);
        break;
      }
      // Rule 2 with an edge split. The split node inherits the head of
      // the existing child (the first suffix through this subtree), so
      // the child needs no update at all in the (head, depth) layout.
      uint32_t child_head =
          IsLeaf(child) ? LeafSuffix(child) : internals_[child].head;
      internals_.push_back(Internal{child_head,
                                    parent_depth + active_length_, kNullRef,
                                    kNullRef, 0});
      uint32_t split = static_cast<uint32_t>(internals_.size() - 1);
      ReplaceChild(active_node_, child, split);
      AddChild(split, child);
      uint32_t suffix = pos + 1 - remainder_;
      AddChild(split, kLeafTag | suffix);
      add_suffix_link(split);
    }
    --remainder_;
    if (active_node_ == kRootRef && active_length_ > 0) {
      --active_length_;
      active_edge_ = pos - remainder_ + 1;
    } else if (active_node_ != kRootRef) {
      active_node_ = internals_[active_node_].suffix_link;
    }
  }
}

uint64_t PackedSuffixTree::MemoryBytes() const {
  return internals_.size() * sizeof(Internal) +
         leaf_next_.size() * sizeof(Ref) + text_.MemoryBytes();
}

bool PackedSuffixTree::Contains(std::string_view pattern) const {
  if (pattern.empty()) return true;
  uint32_t node = kRootRef;
  size_t i = 0;
  while (i < pattern.size()) {
    Code c = alphabet_.Encode(pattern[i]);
    if (c == kInvalidCode) return false;
    Ref child = FindChild(node, c);
    if (child == kNullRef) return false;
    uint32_t start = EdgeStart(child, internals_[node].depth);
    uint32_t end = EdgeEnd(child);
    for (uint32_t k = start; k < end && i < pattern.size(); ++k, ++i) {
      Code pc = alphabet_.Encode(pattern[i]);
      if (pc == kInvalidCode || text_.Get(k) != pc) return false;
    }
    if (i < pattern.size()) {
      if (IsLeaf(child)) return false;  // leaf edge exhausted
      node = child;
    }
  }
  return true;
}

std::vector<uint32_t> PackedSuffixTree::FindAll(
    std::string_view pattern) const {
  std::vector<uint32_t> out;
  if (pattern.empty() || pattern.size() > text_.size()) return out;
  uint32_t node = kRootRef;
  Ref located = kNullRef;
  size_t i = 0;
  while (i < pattern.size()) {
    Code c = alphabet_.Encode(pattern[i]);
    if (c == kInvalidCode) return out;
    Ref child = FindChild(node, c);
    if (child == kNullRef) return out;
    uint32_t start = EdgeStart(child, internals_[node].depth);
    uint32_t end = EdgeEnd(child);
    bool mismatch = false;
    for (uint32_t k = start; k < end && i < pattern.size(); ++k, ++i) {
      Code pc = alphabet_.Encode(pattern[i]);
      if (pc == kInvalidCode || text_.Get(k) != pc) {
        mismatch = true;
        break;
      }
    }
    if (mismatch) return out;
    located = child;
    if (i < pattern.size()) {
      if (IsLeaf(child)) return out;  // leaf edge exhausted
      node = child;
    }
  }
  CollectLeaves(located, &out);
  // Suffixes still implicit (pending) have no leaves; check directly.
  const uint32_t n = static_cast<uint32_t>(text_.size());
  const uint32_t m = static_cast<uint32_t>(pattern.size());
  for (uint32_t j = n - remainder_; j + m <= n; ++j) {
    bool match = true;
    for (uint32_t k = 0; k < m; ++k) {
      if (text_.Get(j + k) != alphabet_.Encode(pattern[k])) {
        match = false;
        break;
      }
    }
    if (match) out.push_back(j);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void PackedSuffixTree::CollectLeaves(Ref ref,
                                     std::vector<uint32_t>* out) const {
  std::vector<Ref> stack = {ref};
  while (!stack.empty()) {
    Ref cur = stack.back();
    stack.pop_back();
    if (IsLeaf(cur)) {
      out->push_back(LeafSuffix(cur));
      continue;
    }
    for (Ref child = internals_[cur].first_child; child != kNullRef;
         child = IsLeaf(child) ? leaf_next_[LeafSuffix(child)]
                               : internals_[child].next_sibling) {
      stack.push_back(child);
    }
  }
}

Status PackedSuffixTree::Validate() const {
  const uint32_t n = static_cast<uint32_t>(text_.size());
  // DFS over (ref, parent_depth) pairs.
  std::vector<std::pair<Ref, uint32_t>> stack;
  for (Ref child = internals_[kRootRef].first_child; child != kNullRef;
       child = IsLeaf(child)
                   ? leaf_next_[LeafSuffix(child)]
                   : internals_[child].next_sibling) {
    stack.push_back({child, 0});
  }
  uint64_t leaf_count = 0;
  uint64_t visited_internal = 0;
  while (!stack.empty()) {
    auto [ref, parent_depth] = stack.back();
    stack.pop_back();
    uint32_t start = EdgeStart(ref, parent_depth);
    uint32_t end = EdgeEnd(ref);
    if (start >= end || end > n) {
      return Status::Corruption("bad edge range");
    }
    if (IsLeaf(ref)) {
      ++leaf_count;
      if (LeafSuffix(ref) >= n) {
        return Status::Corruption("leaf suffix out of range");
      }
      continue;
    }
    ++visited_internal;
    const Internal& node = internals_[ref];
    if (node.depth <= parent_depth) {
      return Status::Corruption("depth not increasing");
    }
    if (node.head >= n) return Status::Corruption("head out of range");
    if (node.suffix_link >= internals_.size()) {
      return Status::Corruption("dangling suffix link");
    }
    for (Ref child = node.first_child; child != kNullRef;
         child = IsLeaf(child)
                     ? leaf_next_[LeafSuffix(child)]
                     : internals_[child].next_sibling) {
      stack.push_back({child, node.depth});
    }
  }
  if (leaf_count + remainder_ != n) {
    return Status::Corruption("leaf count + pending != text length");
  }
  if (visited_internal + 1 > internals_.size()) {
    return Status::Corruption("internal node count mismatch");
  }
  return Status::OK();
}

}  // namespace spine
