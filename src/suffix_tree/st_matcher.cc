#include "suffix_tree/st_matcher.h"

namespace spine {

std::vector<StMatch> FindMaximalMatches(const SuffixTree& tree,
                                        std::string_view query,
                                        uint32_t min_len, SearchStats* stats) {
  return GenericStFindMaximalMatches(tree, query, min_len, stats);
}

std::vector<StMatchOccurrences> CollectAllOccurrences(
    const SuffixTree& tree, std::string_view query,
    const std::vector<StMatch>& matches, SearchStats* stats) {
  std::vector<StMatchOccurrences> out;
  out.reserve(matches.size());
  for (const StMatch& match : matches) {
    StMatchOccurrences occ;
    occ.match = match;
    occ.data_positions =
        tree.FindAll(query.substr(match.query_pos, match.length), stats);
    out.push_back(std::move(occ));
  }
  return out;
}

}  // namespace spine
