#include "suffix_tree/suffix_tree.h"

#include <algorithm>

#include "common/check.h"

namespace spine {

SuffixTree::SuffixTree(const Alphabet& alphabet) : alphabet_(alphabet) {
  nodes_.push_back(Node{});  // root; its edge fields are unused
}

uint32_t SuffixTree::NewNode(uint32_t start, uint32_t end) {
  nodes_.push_back(Node{start, end, kRoot, kNoNode32, kNoNode32, kNoNode32});
  return static_cast<uint32_t>(nodes_.size() - 1);
}

void SuffixTree::AddChild(uint32_t parent, uint32_t child) {
  nodes_[child].next_sibling = nodes_[parent].first_child;
  nodes_[parent].first_child = child;
}

void SuffixTree::ReplaceChild(uint32_t parent, uint32_t old_child,
                              uint32_t new_child) {
  uint32_t* slot = &nodes_[parent].first_child;
  while (*slot != old_child) {
    SPINE_DCHECK(*slot != kNoNode32);
    slot = &nodes_[*slot].next_sibling;
  }
  *slot = new_child;
  nodes_[new_child].next_sibling = nodes_[old_child].next_sibling;
  nodes_[old_child].next_sibling = kNoNode32;
}

uint32_t SuffixTree::FindChild(uint32_t parent, Code c,
                               SearchStats* stats) const {
  uint32_t child = nodes_[parent].first_child;
  while (child != kNoNode32) {
    if (stats != nullptr) ++stats->nodes_checked;
    if (text_[nodes_[child].start] == c) return child;
    child = nodes_[child].next_sibling;
  }
  return kNoNode32;
}

Status SuffixTree::Append(char ch) {
  Code c = alphabet_.Encode(ch);
  if (c == kInvalidCode) {
    return Status::InvalidArgument(
        std::string("character '") + ch + "' is not in the " +
        alphabet_.name() + " alphabet");
  }
  ExtendWithCode(c);
  return Status::OK();
}

Status SuffixTree::AppendString(std::string_view s) {
  for (char ch : s) {
    SPINE_RETURN_IF_ERROR(Append(ch));
  }
  return Status::OK();
}

void SuffixTree::ExtendWithCode(Code c) {
  text_.push_back(c);
  const uint32_t pos = static_cast<uint32_t>(text_.size() - 1);
  need_suffix_link_ = kNoNode32;
  ++remainder_;

  auto add_suffix_link = [&](uint32_t node) {
    if (need_suffix_link_ != kNoNode32) {
      nodes_[need_suffix_link_].suffix_link = node;
    }
    need_suffix_link_ = node;
  };

  while (remainder_ > 0) {
    if (active_length_ == 0) active_edge_ = pos;
    uint32_t child = FindChild(active_node_, text_[active_edge_], nullptr);
    if (child == kNoNode32) {
      // Rule 2: new leaf directly under the active node.
      uint32_t leaf = NewNode(pos, kOpenEnd);
      nodes_[leaf].suffix_index = pos + 1 - remainder_;
      AddChild(active_node_, leaf);
      add_suffix_link(active_node_);
    } else {
      // Skip/count: descend if the active point lies beyond this edge.
      uint32_t edge_len = EdgeLength(child);
      if (active_length_ >= edge_len) {
        active_edge_ += edge_len;
        active_length_ -= edge_len;
        active_node_ = child;
        continue;
      }
      if (text_[nodes_[child].start + active_length_] == c) {
        // Rule 3: the suffix is already present; the phase ends.
        ++active_length_;
        add_suffix_link(active_node_);
        break;
      }
      // Rule 2 with an edge split.
      uint32_t split = NewNode(nodes_[child].start,
                               nodes_[child].start + active_length_);
      ReplaceChild(active_node_, child, split);
      nodes_[child].start += active_length_;
      AddChild(split, child);
      uint32_t leaf = NewNode(pos, kOpenEnd);
      nodes_[leaf].suffix_index = pos + 1 - remainder_;
      AddChild(split, leaf);
      add_suffix_link(split);
    }
    --remainder_;
    if (active_node_ == kRoot && active_length_ > 0) {
      --active_length_;
      active_edge_ = pos - remainder_ + 1;
    } else if (active_node_ != kRoot) {
      active_node_ = nodes_[active_node_].suffix_link;
    }
  }
}

uint64_t SuffixTree::MemoryBytes() const {
  return nodes_.size() * sizeof(Node) + text_.size() * sizeof(Code);
}

bool SuffixTree::Contains(std::string_view pattern,
                          SearchStats* stats) const {
  if (pattern.empty()) return true;
  uint32_t node = kRoot;
  size_t i = 0;
  while (i < pattern.size()) {
    Code c = alphabet_.Encode(pattern[i]);
    if (c == kInvalidCode) return false;
    uint32_t child = FindChild(node, c, stats);
    if (child == kNoNode32) return false;
    uint32_t start = nodes_[child].start;
    uint32_t end = EdgeEnd(child);
    for (uint32_t k = start; k < end && i < pattern.size(); ++k, ++i) {
      Code pc = alphabet_.Encode(pattern[i]);
      if (pc == kInvalidCode || text_[k] != pc) return false;
    }
    node = child;
  }
  return true;
}

std::vector<uint32_t> SuffixTree::FindAll(std::string_view pattern,
                                          SearchStats* stats) const {
  std::vector<uint32_t> out;
  if (pattern.empty() || pattern.size() > text_.size()) return out;
  uint32_t node = kRoot;
  size_t i = 0;
  while (i < pattern.size()) {
    Code c = alphabet_.Encode(pattern[i]);
    if (c == kInvalidCode) return out;
    uint32_t child = FindChild(node, c, stats);
    if (child == kNoNode32) return out;
    uint32_t start = nodes_[child].start;
    uint32_t end = EdgeEnd(child);
    for (uint32_t k = start; k < end && i < pattern.size(); ++k, ++i) {
      Code pc = alphabet_.Encode(pattern[i]);
      if (pc == kInvalidCode || text_[k] != pc) return out;
    }
    node = child;
  }
  CollectLeaves(node, &out);
  // The tree is implicit (online construction): the last `remainder_`
  // suffixes have no leaves yet. Occurrences that only those suffixes
  // would report are checked against the text directly.
  const uint32_t n = static_cast<uint32_t>(text_.size());
  const uint32_t m = static_cast<uint32_t>(pattern.size());
  uint32_t first_pending = n - remainder_;
  for (uint32_t j = first_pending; j + m <= n; ++j) {
    bool match = true;
    for (uint32_t k = 0; k < m; ++k) {
      if (text_[j + k] != alphabet_.Encode(pattern[k])) {
        match = false;
        break;
      }
    }
    if (match) out.push_back(j);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void SuffixTree::CollectLeaves(uint32_t id, std::vector<uint32_t>* out) const {
  if (nodes_[id].first_child == kNoNode32) {
    if (nodes_[id].suffix_index != kNoNode32) {
      out->push_back(nodes_[id].suffix_index);
    }
    return;
  }
  // Iterative DFS: subtrees can be deep on repetitive strings.
  std::vector<uint32_t> stack = {nodes_[id].first_child};
  while (!stack.empty()) {
    uint32_t cur = stack.back();
    stack.pop_back();
    for (uint32_t n = cur; n != kNoNode32; n = nodes_[n].next_sibling) {
      if (nodes_[n].first_child == kNoNode32) {
        if (nodes_[n].suffix_index != kNoNode32) {
          out->push_back(nodes_[n].suffix_index);
        }
      } else {
        stack.push_back(nodes_[n].first_child);
      }
    }
  }
}

Status SuffixTree::Validate() const {
  const uint32_t n = static_cast<uint32_t>(text_.size());
  uint64_t leaf_count = 0;
  for (uint32_t id = 1; id < nodes_.size(); ++id) {
    const Node& node = nodes_[id];
    uint32_t end = EdgeEnd(id);
    if (node.start >= end || end > n) {
      return Status::Corruption("bad edge range at node " +
                                std::to_string(id));
    }
    if (node.first_child == kNoNode32) {
      ++leaf_count;
      if (node.suffix_index == kNoNode32 || node.suffix_index >= n) {
        return Status::Corruption("leaf without valid suffix index at node " +
                                  std::to_string(id));
      }
      if (node.end != kOpenEnd) {
        return Status::Corruption("leaf with closed end at node " +
                                  std::to_string(id));
      }
    } else {
      if (node.suffix_link >= nodes_.size()) {
        return Status::Corruption("dangling suffix link at node " +
                                  std::to_string(id));
      }
    }
  }
  // Every suffix that is not a prefix of a longer pending suffix has a
  // leaf; with remainder_ suffixes still implicit, leaves = n - remainder_.
  if (leaf_count + remainder_ != n) {
    return Status::Corruption("leaf count " + std::to_string(leaf_count) +
                              " + pending " + std::to_string(remainder_) +
                              " != text length " + std::to_string(n));
  }
  if (nodes_.size() > 2 * static_cast<uint64_t>(n) + 1) {
    return Status::Corruption("node count exceeds 2n");
  }
  return Status::OK();
}

}  // namespace spine
