// The unified, backend-agnostic query API.
//
// Every search entry point in the system — the batch QueryEngine, the
// CLI subcommands, benches — speaks these three value types instead of
// per-algorithm ad-hoc shapes (std::vector<uint32_t> position lists,
// MatchOccurrences, raw matching-statistics vectors):
//
//   Query        what to ask: a kind, a pattern, and kind parameters;
//   Hit          one occurrence: (data position, length, query offset);
//   QueryResult  the answer: hits / matching statistics + work counters.
//
// ExecuteQuery dispatches a Query against any backend satisfying the
// Index concept of core/search.h (reference SpineIndex,
// CompactSpineIndex, storage::DiskSpine, ...), so there is exactly one
// implementation of each search algorithm across all backends.

#ifndef SPINE_CORE_QUERY_H_
#define SPINE_CORE_QUERY_H_

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/cancel.h"
#include "common/status.h"
#include "core/approx.h"
#include "core/matcher.h"
#include "core/search.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace spine {

enum class QueryKind : uint8_t {
  kContains = 0,        // does the pattern occur at all?
  kFindAll = 1,         // all start positions of an exact pattern
  kMaximalMatches = 2,  // maximal matching substrings >= min_len
  kMatchingStats = 3,   // Chang-Lawler matching statistics
  kMismatch = 4,        // windows within max_errors Hamming distance
  kEditDistance = 5,    // windows within max_errors edit distance
};

// Number of query kinds (the per-kind counter arrays and the wire
// bounds checks all derive from this).
inline constexpr size_t kQueryKindCount = 6;

constexpr std::string_view QueryKindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kContains: return "contains";
    case QueryKind::kFindAll: return "findall";
    case QueryKind::kMaximalMatches: return "match";
    case QueryKind::kMatchingStats: return "ms";
    case QueryKind::kMismatch: return "mismatch";
    case QueryKind::kEditDistance: return "edit";
  }
  return "unknown";
}

struct Query {
  QueryKind kind = QueryKind::kFindAll;
  std::string pattern;
  // kMaximalMatches: minimum reported match length (>= 1).
  uint32_t min_len = 1;
  // kMaximalMatches: report every data-string occurrence of every match
  // (the paper's deferred backbone scan) instead of first occurrences.
  bool expand_occurrences = false;
  // Time budget in milliseconds; 0 means unbounded. Relative — the
  // engine pins it to an absolute common/cancel.h Deadline once, at
  // batch entry, so queue time counts. Carried by all three wire
  // encodings (core/wire.h). Not part of the result-cache key: a cached
  // answer is complete and equally valid under any budget.
  uint32_t deadline_ms = 0;
  // kMismatch / kEditDistance: the error budget (k resp. d). A budget
  // >= the pattern length is degenerate — every position would qualify
  // vacuously — and yields an empty kOk answer, like an empty pattern.
  // Part of the result-cache key (core semantics, unlike deadline_ms).
  uint32_t max_errors = 0;

  static Query Contains(std::string pattern) {
    return {QueryKind::kContains, std::move(pattern), 1, false};
  }
  static Query FindAll(std::string pattern) {
    return {QueryKind::kFindAll, std::move(pattern), 1, false};
  }
  static Query MaximalMatches(std::string pattern, uint32_t min_len,
                              bool expand_occurrences = false) {
    return {QueryKind::kMaximalMatches, std::move(pattern),
            std::max<uint32_t>(min_len, 1), expand_occurrences};
  }
  static Query MatchingStats(std::string pattern) {
    return {QueryKind::kMatchingStats, std::move(pattern), 1, false};
  }
  static Query Mismatch(std::string pattern, uint32_t max_mismatches) {
    return {QueryKind::kMismatch, std::move(pattern), 1, false, 0,
            max_mismatches};
  }
  static Query EditDistance(std::string pattern, uint32_t max_edits) {
    return {QueryKind::kEditDistance, std::move(pattern), 1, false, 0,
            max_edits};
  }

  bool operator==(const Query&) const = default;
};

// One occurrence of a pattern (or maximal match) in the data string.
// For the approximate kinds, `length` is the matched window length
// (always the pattern length for kMismatch) and `query_pos` carries the
// error count actually used (<= Query::max_errors) — so k=0 / d=0 hits
// are bit-identical to kFindAll's.
struct Hit {
  uint32_t pos = 0;        // start offset in the data string
  uint32_t length = 0;     // matched length
  uint32_t query_pos = 0;  // query offset (maximal matches) / error count

  bool operator==(const Hit&) const = default;
};

struct QueryResult {
  bool found = false;
  std::vector<Hit> hits;                 // kFindAll / kMaximalMatches
  std::vector<uint32_t> matching_stats;  // kMatchingStats
  SearchStats stats;                     // work done answering this query

  // Per-query error verdict (PR 2): kOk means the payload is a correct
  // answer; anything else means the backend hit an I/O error or
  // detected corruption and the payload must not be trusted. A failed
  // query never crashes the batch — see engine/query_engine.h.
  StatusCode status_code = StatusCode::kOk;
  std::string error;  // human-readable detail when status_code != kOk

  bool ok() const { return status_code == StatusCode::kOk; }
  Status status() const {
    return ok() ? Status::OK() : Status(status_code, error);
  }

  // Payload equality, ignoring the work counters (which legitimately
  // differ between backends and between cached and executed answers).
  bool SameAnswer(const QueryResult& o) const {
    return status_code == o.status_code && found == o.found &&
           hits == o.hits && matching_stats == o.matching_stats;
  }
};

// Backends whose I/O layer latches errors instead of throwing/aborting
// (storage::DiskSpine). ExecuteQuery drains the latch after running the
// search and converts it into a per-query error result.
template <typename Index>
concept IoLatchedIndex = requires(const Index& index) {
  { index.ConsumeError() } -> std::same_as<Status>;
};

// Backends whose I/O layer can observe a CancelToken on its own
// (storage::DiskSpine, storage::DiskSuffixTree route it to the
// BufferPool, which polls it on every page miss — the natural
// checkpoint for paged walks, where one miss may cost milliseconds).
// ExecuteQuery scopes the token onto the backend for the duration of
// one query.
template <typename Index>
concept CancelScopedIndex = requires(const Index& index) {
  index.SetCancelToken(static_cast<const CancelToken*>(nullptr));
};

namespace internal {
// Clears the backend's scoped token on every exit path.
template <typename Index>
struct CancelScopeGuard {
  CancelScopeGuard(const Index& index, const CancelToken* cancel)
      : index_(index) {
    if constexpr (CancelScopedIndex<Index>) index_.SetCancelToken(cancel);
  }
  ~CancelScopeGuard() {
    if constexpr (CancelScopedIndex<Index>) index_.SetCancelToken(nullptr);
  }
  const Index& index_;
};
}  // namespace internal

// Answers one query against any backend satisfying the Index concept.
// Deterministic: the same (index contents, query) pair always produces
// the same QueryResult payload, on any thread.
//
// For IoLatchedIndex backends the result is only reported as kOk when
// the whole traversal completed without the pool latching an error;
// otherwise the payload is discarded and status_code/error carry the
// failure, so a fault can never surface as a silently wrong answer.
//
// `trace`, when non-null, receives an "exec_us" span plus the work
// counters as notes. Tracing is strictly observational: the returned
// QueryResult is byte-identical with trace == nullptr.
//
// `cancel`, when non-null, bounds the work: the generic walks poll it
// at checkpoints (common/cancel.h) and a fired token yields a
// kDeadlineExceeded / kCancelled result — never a partial payload
// reported as kOk. CancelScopedIndex backends additionally observe the
// token on every page miss.
//
// `doc_separator`, when set, is the document-boundary character of a
// generalized (multi-document) index; the approximate kinds never
// report a window crossing it. Exact kinds ignore it (separator codes
// never equal pattern codes, so they get the guarantee for free).
template <typename Index>
QueryResult ExecuteQuery(const Index& index, const Query& query,
                         obs::TraceContext* trace = nullptr,
                         const CancelToken* cancel = nullptr,
                         std::optional<char> doc_separator = std::nullopt) {
#if defined(SPINE_OBS_DISABLED)
  trace = nullptr;  // capture sites compile out in disabled builds
#endif
  obs::SpanTimer exec_timer(trace, "exec_us");
  if constexpr (IoLatchedIndex<Index>) {
    // Drop any stale latch so this query's verdict is its own.
    (void)index.ConsumeError();
  }
  internal::CancelScopeGuard<Index> cancel_scope(index, cancel);
  QueryResult result;
  switch (query.kind) {
    case QueryKind::kContains:
      result.found =
          GenericFindFirstEnd(index, query.pattern, &result.stats, cancel)
              .has_value();
      break;
    case QueryKind::kFindAll: {
      std::vector<uint32_t> starts =
          GenericFindAll(index, query.pattern, &result.stats, cancel);
      const uint32_t m = static_cast<uint32_t>(query.pattern.size());
      result.hits.reserve(starts.size());
      for (uint32_t pos : starts) result.hits.push_back({pos, m, 0});
      result.found = !result.hits.empty();
      break;
    }
    case QueryKind::kMaximalMatches: {
      const uint32_t min_len = std::max<uint32_t>(query.min_len, 1);
      std::vector<MaximalMatch> matches = GenericFindMaximalMatches(
          index, query.pattern, min_len, &result.stats, cancel);
      if (query.expand_occurrences) {
        for (const MatchOccurrences& occ :
             GenericCollectAllOccurrences(index, matches, cancel)) {
          for (uint32_t pos : occ.data_positions) {
            result.hits.push_back({pos, occ.match.length, occ.match.query_pos});
          }
        }
      } else {
        result.hits.reserve(matches.size());
        for (const MaximalMatch& match : matches) {
          result.hits.push_back(
              {match.first_end - match.length, match.length, match.query_pos});
        }
      }
      result.found = !result.hits.empty();
      break;
    }
    case QueryKind::kMatchingStats: {
      result.matching_stats = GenericMatchingStatistics(
          index, query.pattern, &result.stats, cancel);
      result.found = std::any_of(result.matching_stats.begin(),
                                 result.matching_stats.end(),
                                 [](uint32_t v) { return v > 0; });
      break;
    }
    case QueryKind::kMismatch:
    case QueryKind::kEditDistance: {
      if constexpr (CodeAddressable<Index>) {
        ApproxSearchStats approx_stats;
        std::vector<ApproxHit> approx_hits =
            query.kind == QueryKind::kMismatch
                ? GenericFindMismatch(index, query.pattern, query.max_errors,
                                      &result.stats, &approx_stats, cancel,
                                      doc_separator)
                : GenericFindEditDistance(index, query.pattern,
                                          query.max_errors, &result.stats,
                                          &approx_stats, cancel,
                                          doc_separator);
        result.hits.reserve(approx_hits.size());
        for (const ApproxHit& hit : approx_hits) {
          result.hits.push_back({hit.pos, hit.length, hit.errors});
        }
        result.found = !result.hits.empty();
        RecordApproxObs(approx_stats);
        if (trace != nullptr) {
          trace->Note("approx_candidates", approx_stats.candidates);
          trace->Note("approx_seed_len", approx_stats.seed_len);
        }
      } else {
        // Adapters route unsupported kinds away before dispatch
        // (Capabilities::query_kinds); this is the belt to that brace.
        result.status_code = StatusCode::kInvalidArgument;
        result.error = "backend cannot address text positions";
        return result;
      }
      break;
    }
  }
#if !defined(SPINE_OBS_DISABLED)
  {
    // The paper's Table 6 work counters, accumulated across all queries
    // and all backends; work done before a latched fault still counts.
    // The per-kind counter cannot go through SPINE_OBS_COUNT (the name
    // is dynamic), so it resolves all kQueryKindCount once per
    // instantiation.
    static obs::Counter* const kind_counters[kQueryKindCount] = {
        &obs::Registry::Default().GetCounter("core.queries.contains"),
        &obs::Registry::Default().GetCounter("core.queries.findall"),
        &obs::Registry::Default().GetCounter("core.queries.match"),
        &obs::Registry::Default().GetCounter("core.queries.ms"),
        &obs::Registry::Default().GetCounter("core.queries.mismatch"),
        &obs::Registry::Default().GetCounter("core.queries.editdist"),
    };
    kind_counters[static_cast<size_t>(query.kind)]->Add(1);
    SPINE_OBS_COUNT("core.vertebra_steps", result.stats.nodes_checked);
    SPINE_OBS_COUNT("core.link_traversals", result.stats.link_traversals);
    SPINE_OBS_COUNT("core.chain_hops", result.stats.chain_hops);
    if (trace != nullptr) {
      trace->Note("nodes_checked", result.stats.nodes_checked);
      trace->Note("link_traversals", result.stats.link_traversals);
      trace->Note("chain_hops", result.stats.chain_hops);
      trace->Note("found", result.found ? 1 : 0);
    }
  }
#endif
  if constexpr (IoLatchedIndex<Index>) {
    Status status = index.ConsumeError();
    if (!status.ok()) {
      QueryResult failed;
      failed.stats = result.stats;  // work done before the fault counts
      failed.status_code = status.code();
      failed.error = std::string(status.message());
      return failed;
    }
  }
  // A fired token trumps whatever partial payload the abandoned walk
  // left behind. (Checked after the latch: a paged backend that
  // observed the deadline on a page miss latched the same verdict.)
  if (cancel != nullptr) {
    Status status = cancel->ToStatus();
    if (!status.ok()) {
      QueryResult timed_out;
      timed_out.stats = result.stats;  // work done before the stop counts
      timed_out.status_code = status.code();
      timed_out.error = std::string(status.message());
      return timed_out;
    }
  }
  return result;
}

}  // namespace spine

#endif  // SPINE_CORE_QUERY_H_
