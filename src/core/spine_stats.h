// Statistics collectors over a built SpineIndex, backing the paper's
// Table 3 (maximum label values), Table 4 (rib distribution) and
// Figure 8 (link-destination distribution).

#ifndef SPINE_CORE_SPINE_STATS_H_
#define SPINE_CORE_SPINE_STATS_H_

#include <cstdint>
#include <vector>

#include "core/spine_index.h"

namespace spine {

// Maximum numeric label values in the index (Table 3). The paper's key
// observation: these stay far below 65536 even for 50M+ character
// genomes, so two bytes suffice (with an overflow table for safety).
struct LabelMaxima {
  uint32_t max_lel = 0;
  uint32_t max_pt = 0;   // over ribs and extribs
  uint32_t max_prt = 0;
};

LabelMaxima ComputeLabelMaxima(const SpineIndex& index);

// Distribution of forward-edge fan-out across nodes (Table 4):
// nodes_with_fanout[k] = number of nodes with exactly k outgoing
// ribs+extribs (k >= 1; k = 0 nodes are the complement).
struct RibDistribution {
  uint64_t total_nodes = 0;  // excludes the root? No: includes all n+1 nodes
  std::vector<uint64_t> nodes_with_fanout;  // index k -> count, k >= 1

  // Fraction of nodes with at least one forward edge.
  double FractionWithEdges() const;
  double FractionWithFanout(uint32_t k) const;
};

RibDistribution ComputeRibDistribution(const SpineIndex& index);

// Histogram of link destinations over the backbone in `bins` equal-width
// bins (Figure 8). Percentages sum to ~100.
std::vector<double> ComputeLinkDestinationHistogram(const SpineIndex& index,
                                                    uint32_t bins);

// Generic version, usable with any index exposing size()/LinkDest().
template <typename Index>
std::vector<double> ComputeLinkDestinationHistogramT(const Index& index,
                                                     uint32_t bins) {
  std::vector<double> histogram(bins, 0.0);
  const NodeId n = static_cast<NodeId>(index.size());
  if (n == 0 || bins == 0) return histogram;
  for (NodeId i = 1; i <= n; ++i) {
    uint64_t bin = static_cast<uint64_t>(index.LinkDest(i)) * bins / (n + 1);
    histogram[static_cast<uint32_t>(bin)] += 1.0;
  }
  for (double& value : histogram) value = value * 100.0 / n;
  return histogram;
}

}  // namespace spine

#endif  // SPINE_CORE_SPINE_STATS_H_
