#include "core/index.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>

namespace spine::core {

namespace {
// Ids start at 1 so 0 can never collide with a live index (it was the
// old "default backend" magic value callers passed by hand).
std::atomic<uint64_t> g_next_cache_id{1};
}  // namespace

uint64_t NextIndexCacheId() {
  return g_next_cache_id.fetch_add(1, std::memory_order_relaxed);
}

Index::Index() : cache_id_(NextIndexCacheId()) {}

Result<OpenOptions> ParseOpenSpec(std::string_view spec) {
  OpenOptions options;
  if (spec == "heap") return options;
  if (spec == "mmap") {
    options.mode = OpenMode::kMmap;
    return options;
  }
  if (spec == "mmap-noverify") {
    options.mode = OpenMode::kMmap;
    options.verify = false;
    return options;
  }
  return Status::InvalidArgument("unknown open mode '" + std::string(spec) +
                                 "' (expected heap, mmap or mmap-noverify)");
}

std::string_view OpenOptionsName(const OpenOptions& options) {
  if (options.mode == OpenMode::kHeap) return "heap";
  return options.verify ? "mmap" : "mmap-noverify";
}

OpenOptions DefaultOpenOptions() {
  // Resolved once: the env var is process configuration, not a per-open
  // knob (per-open choice is what the OpenOptions parameter is for).
  static const OpenOptions resolved = [] {
    OpenOptions options;
    const char* spec = std::getenv("SPINE_OPEN");
    if (spec == nullptr || spec[0] == '\0') return options;
    Result<OpenOptions> parsed = ParseOpenSpec(spec);
    if (!parsed.ok()) {
      std::fprintf(stderr,
                   "spine: ignoring invalid SPINE_OPEN=%s (%s); using heap\n",
                   spec, parsed.status().message().c_str());
      return options;
    }
    return *parsed;
  }();
  return resolved;
}

}  // namespace spine::core
