#include "core/index.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>

namespace spine::core {

namespace {
// Ids start at 1 so 0 can never collide with a live index (it was the
// old "default backend" magic value callers passed by hand).
std::atomic<uint64_t> g_next_cache_id{1};
}  // namespace

uint64_t NextIndexCacheId() {
  return g_next_cache_id.fetch_add(1, std::memory_order_relaxed);
}

Index::Index() : cache_id_(NextIndexCacheId()) {}

Result<OpenOptions> ParseOpenSpec(std::string_view spec) {
  // Split off the base mode; what follows are comma-separated flags.
  std::string_view base = spec;
  std::string_view flags;
  if (size_t comma = spec.find(','); comma != std::string_view::npos) {
    base = spec.substr(0, comma);
    flags = spec.substr(comma + 1);
  }
  OpenOptions options;
  if (base == "mmap") {
    options.mode = OpenMode::kMmap;
  } else if (base == "mmap-noverify") {
    options.mode = OpenMode::kMmap;
    options.verify = false;
  } else if (base != "heap") {
    return Status::InvalidArgument("unknown open mode '" + std::string(spec) +
                                   "' (expected heap, mmap or mmap-noverify, "
                                   "with optional ,populate / ,hugepage)");
  }
  while (!flags.empty()) {
    std::string_view flag = flags;
    if (size_t comma = flags.find(','); comma != std::string_view::npos) {
      flag = flags.substr(0, comma);
      flags = flags.substr(comma + 1);
    } else {
      flags = {};
    }
    // Flags on "heap" are rejected rather than silently ignored: the
    // caller asked for mmap behavior the heap path cannot deliver.
    if (options.mode == OpenMode::kHeap) {
      return Status::InvalidArgument("open flag '" + std::string(flag) +
                                     "' requires an mmap mode");
    }
    if (flag == "populate") {
      options.populate = true;
    } else if (flag == "hugepage") {
      options.hugepage = true;
    } else {
      return Status::InvalidArgument(
          "unknown open flag '" + std::string(flag) +
          "' (expected populate or hugepage)");
    }
  }
  return options;
}

std::string_view OpenOptionsName(const OpenOptions& options) {
  if (options.mode == OpenMode::kHeap) return "heap";
  // open_mode() promises a string literal, so enumerate the combos.
  const int flags =
      (options.populate ? 1 : 0) | (options.hugepage ? 2 : 0);
  if (options.verify) {
    constexpr std::string_view kNames[] = {
        "mmap", "mmap,populate", "mmap,hugepage", "mmap,populate,hugepage"};
    return kNames[flags];
  }
  constexpr std::string_view kNames[] = {
      "mmap-noverify", "mmap-noverify,populate", "mmap-noverify,hugepage",
      "mmap-noverify,populate,hugepage"};
  return kNames[flags];
}

OpenOptions DefaultOpenOptions() {
  // Resolved once: the env var is process configuration, not a per-open
  // knob (per-open choice is what the OpenOptions parameter is for).
  static const OpenOptions resolved = [] {
    OpenOptions options;
    const char* spec = std::getenv("SPINE_OPEN");
    if (spec == nullptr || spec[0] == '\0') return options;
    Result<OpenOptions> parsed = ParseOpenSpec(spec);
    if (!parsed.ok()) {
      std::fprintf(stderr,
                   "spine: ignoring invalid SPINE_OPEN=%s (%s); using heap\n",
                   spec, parsed.status().message().c_str());
      return options;
    }
    return *parsed;
  }();
  return resolved;
}

}  // namespace spine::core
