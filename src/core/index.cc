#include "core/index.h"

#include <atomic>

namespace spine::core {

namespace {
// Ids start at 1 so 0 can never collide with a live index (it was the
// old "default backend" magic value callers passed by hand).
std::atomic<uint64_t> g_next_cache_id{1};
}  // namespace

uint64_t NextIndexCacheId() {
  return g_next_cache_id.fetch_add(1, std::memory_order_relaxed);
}

Index::Index() : cache_id_(NextIndexCacheId()) {}

}  // namespace spine::core
