#include "core/spine_stats.h"

#include <algorithm>
#include <unordered_map>

namespace spine {

LabelMaxima ComputeLabelMaxima(const SpineIndex& index) {
  LabelMaxima maxima;
  const NodeId n = static_cast<NodeId>(index.size());
  for (NodeId i = 1; i <= n; ++i) {
    maxima.max_lel = std::max(maxima.max_lel, index.LinkLel(i));
  }
  index.ForEachRib([&](NodeId, Code, const SpineIndex::Rib& rib) {
    maxima.max_pt = std::max(maxima.max_pt, rib.pt);
  });
  index.ForEachExtrib([&](NodeId, const SpineIndex::Extrib& e) {
    maxima.max_pt = std::max(maxima.max_pt, e.pt);
    maxima.max_prt = std::max(maxima.max_prt, e.prt);
  });
  return maxima;
}

double RibDistribution::FractionWithEdges() const {
  if (total_nodes == 0) return 0;
  uint64_t with_edges = 0;
  for (uint64_t count : nodes_with_fanout) with_edges += count;
  return static_cast<double>(with_edges) / static_cast<double>(total_nodes);
}

double RibDistribution::FractionWithFanout(uint32_t k) const {
  if (total_nodes == 0 || k == 0 || k > nodes_with_fanout.size()) return 0;
  return static_cast<double>(nodes_with_fanout[k - 1]) /
         static_cast<double>(total_nodes);
}

RibDistribution ComputeRibDistribution(const SpineIndex& index) {
  std::unordered_map<NodeId, uint32_t> fanout;
  index.ForEachRib(
      [&](NodeId source, Code, const SpineIndex::Rib&) { ++fanout[source]; });
  index.ForEachExtrib(
      [&](NodeId source, const SpineIndex::Extrib&) { ++fanout[source]; });

  RibDistribution dist;
  dist.total_nodes = index.size() + 1;
  for (const auto& [node, count] : fanout) {
    if (count > dist.nodes_with_fanout.size()) {
      dist.nodes_with_fanout.resize(count, 0);
    }
    ++dist.nodes_with_fanout[count - 1];
  }
  return dist;
}

std::vector<double> ComputeLinkDestinationHistogram(const SpineIndex& index,
                                                    uint32_t bins) {
  std::vector<double> histogram(bins, 0.0);
  const NodeId n = static_cast<NodeId>(index.size());
  if (n == 0 || bins == 0) return histogram;
  for (NodeId i = 1; i <= n; ++i) {
    uint64_t bin = static_cast<uint64_t>(index.LinkDest(i)) * bins / (n + 1);
    histogram[static_cast<uint32_t>(bin)] += 1.0;
  }
  for (double& value : histogram) value = value * 100.0 / n;
  return histogram;
}

}  // namespace spine
