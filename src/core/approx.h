// Generic approximate-search algorithms (k-mismatch and bounded edit
// distance), shared by every index implementation the same way
// core/search.h shares the exact ones.
//
// Both kinds run seed-and-extend when the backend and the planner
// (plan/planner.h) allow it: the pattern splits into budget+1 pieces,
// at least one of which any qualifying window must contain exactly
// (pigeonhole), so exact occurrences of the pieces — located through
// the SPINE backbone via GenericFindAll, kernel-accelerated where the
// backend supports MatchVertebraRun — enumerate every candidate start.
// Candidates (and, on the fallback path, every text window) are then
// verified by a shared extender:
//   - kMismatch: positional code comparison with early budget exit;
//   - kEditDistance: align::BestPrefixEditDistance, the banded
//     semi-global DP (fewest edits, then shortest prefix).
// Because verification is shared, the seed path and the scan path
// return bit-identical hits — the property the approx differential
// suite pins against an independent O(n*m) oracle.
//
// Comparison happens in code space (Alphabet::Encode), so alphabet
// canonicalization (DNA case folding) behaves exactly as it does for
// the exact kinds, and an out-of-alphabet pattern byte simply never
// matches any indexed character. Generalized (multi-document) backends
// pass their separator character: no window ever crosses a document
// boundary, matching the guarantee the exact kinds get for free from
// separator codes never equaling pattern codes.

#ifndef SPINE_CORE_APPROX_H_
#define SPINE_CORE_APPROX_H_

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "align/edit_distance.h"
#include "common/cancel.h"
#include "core/search.h"
#include "obs/metrics.h"
#include "plan/planner.h"

namespace spine {

// Indexes whose text is addressable by position; the minimum an
// approximate scan needs. Every backend qualifies.
template <typename Index>
concept CodeAddressable = requires(const Index& index) {
  { index.CodeAt(uint64_t{0}) } -> std::convertible_to<Code>;
  { index.size() } -> std::convertible_to<uint64_t>;
  index.alphabet();
};

// Indexes that can additionally locate exact seeds through the
// backbone scan of core/search.h (suffix trees and the naive oracle
// cannot; they always verify by scanning).
template <typename Index>
concept SeedSearchable = CodeAddressable<Index> && requires(const Index& index) {
  { index.LinkLel(NodeId{0}) } -> std::convertible_to<uint32_t>;
  { index.LinkDest(NodeId{0}) } -> std::convertible_to<NodeId>;
};

// One approximate occurrence. `length` is the matched window length in
// the text (always the pattern length for kMismatch); `errors` is the
// mismatch/edit count actually used (<= the budget).
struct ApproxHit {
  uint32_t pos = 0;
  uint32_t length = 0;
  uint32_t errors = 0;
  bool operator==(const ApproxHit&) const = default;
};

// Per-query execution evidence, surfaced to the approx.* metrics and
// (via plan::PlanApprox being pure) reproducible by benches and tests.
struct ApproxSearchStats {
  uint64_t candidates = 0;  // windows handed to the verifier
  uint64_t verified = 0;    // windows that became hits
  uint32_t seed_len = 0;    // planner's choice; 0 on the scan path
  bool seeded = false;      // true when the seed path ran
};

// Records one approximate query's evidence into the metrics registry.
inline void RecordApproxObs(const ApproxSearchStats& stats) {
  if (stats.seeded) {
    SPINE_OBS_COUNT("approx.seeded", 1);
  } else {
    SPINE_OBS_COUNT("approx.scanned", 1);
  }
  SPINE_OBS_COUNT("approx.candidates", stats.candidates);
  SPINE_OBS_COUNT("approx.verified", stats.verified);
#if defined(SPINE_OBS_DISABLED)
  (void)stats;
#endif
}

namespace approx_internal {

// Sorted, deduplicated candidate starts from the exact occurrences of
// each pattern piece, widened by +-shift (0 for mismatch, the edit
// budget for edit distance: each indel before a piece moves its exact
// occurrence by one).
template <typename Index>
std::vector<uint64_t> SeedCandidates(const Index& index,
                                     std::string_view pattern,
                                     const plan::ApproxPlan& plan,
                                     uint32_t shift, uint64_t max_start,
                                     SearchStats* stats,
                                     const CancelToken* cancel) {
  std::vector<uint64_t> starts;
  const uint32_t m = static_cast<uint32_t>(pattern.size());
  for (uint32_t piece = 0; piece < plan.piece_count; ++piece) {
    const auto [begin, end] =
        plan::SeedBoundaries(m, plan.piece_count, piece);
    const std::string_view seed = pattern.substr(begin, end - begin);
    for (const uint32_t occ : GenericFindAll(index, seed, stats, cancel)) {
      const int64_t base = static_cast<int64_t>(occ) - begin;
      for (int64_t s = base - shift; s <= base + shift; ++s) {
        if (s >= 0 && s <= static_cast<int64_t>(max_start)) {
          starts.push_back(static_cast<uint64_t>(s));
        }
      }
    }
  }
  std::sort(starts.begin(), starts.end());
  starts.erase(std::unique(starts.begin(), starts.end()), starts.end());
  return starts;
}

}  // namespace approx_internal

// All windows within `max_mismatches` Hamming distance of `pattern`
// (fixed window length m). Hits arrive in increasing position order.
// A fired `cancel` returns a partial list; the caller converts it into
// a deadline/cancel verdict exactly like the exact kinds.
template <CodeAddressable Index>
std::vector<ApproxHit> GenericFindMismatch(
    const Index& index, std::string_view pattern, uint32_t max_mismatches,
    SearchStats* stats = nullptr, ApproxSearchStats* approx = nullptr,
    const CancelToken* cancel = nullptr,
    std::optional<char> separator = std::nullopt) {
  std::vector<ApproxHit> hits;
  const uint32_t m = static_cast<uint32_t>(pattern.size());
  const uint64_t n = index.size();
  if (m == 0 || max_mismatches >= m || n < m) return hits;
  const Alphabet& alphabet = index.alphabet();
  std::vector<Code> pcodes(m);
  for (uint32_t i = 0; i < m; ++i) pcodes[i] = alphabet.Encode(pattern[i]);
  const std::optional<Code> sep_code =
      separator.has_value() ? std::optional<Code>(alphabet.Encode(*separator))
                            : std::nullopt;

  const plan::ApproxPlan plan =
      plan::PlanApprox(n, alphabet.size(), m, max_mismatches,
                       SeedSearchable<Index>);
  if (approx != nullptr) {
    approx->seeded = plan.use_seeds;
    approx->seed_len = plan.seed_len;
  }
  const uint64_t max_start = n - m;
  uint64_t compared = 0;

  // Shared verifier: the seed and scan paths differ only in which
  // starts reach it, never in the verdict for a given start.
  const auto verify = [&](uint64_t start) {
    if (approx != nullptr) ++approx->candidates;
    uint32_t mm = 0;
    for (uint32_t i = 0; i < m; ++i) {
      ++compared;
      const Code t = index.CodeAt(start + i);
      if (sep_code.has_value() && t == *sep_code) return;  // crosses a doc
      if (t != pcodes[i] && ++mm > max_mismatches) return;
    }
    hits.push_back({static_cast<uint32_t>(start), m, mm});
    if (approx != nullptr) ++approx->verified;
  };

  CancelCheckpoint checkpoint(cancel);
  if constexpr (SeedSearchable<Index>) {
    if (plan.use_seeds) {
      for (const uint64_t start : approx_internal::SeedCandidates(
               index, pattern, plan, /*shift=*/0, max_start, stats, cancel)) {
        if (checkpoint.ShouldStop()) break;
        verify(start);
      }
      if (stats != nullptr) stats->nodes_checked += compared;
      return hits;
    }
  }
  for (uint64_t start = 0; start <= max_start; ++start) {
    if (checkpoint.ShouldStop()) break;
    verify(start);
  }
  if (stats != nullptr) stats->nodes_checked += compared;
  return hits;
}

// All windows whose best prefix is within `max_edits` Levenshtein
// distance of `pattern`. Each hit reports the best (fewest edits, then
// shortest) prefix length and its edit count — align/approximate.h
// semantics, now behind the unified Query API.
template <CodeAddressable Index>
std::vector<ApproxHit> GenericFindEditDistance(
    const Index& index, std::string_view pattern, uint32_t max_edits,
    SearchStats* stats = nullptr, ApproxSearchStats* approx = nullptr,
    const CancelToken* cancel = nullptr,
    std::optional<char> separator = std::nullopt) {
  std::vector<ApproxHit> hits;
  const uint32_t m = static_cast<uint32_t>(pattern.size());
  const uint64_t n = index.size();
  if (m == 0 || max_edits >= m || n == 0) return hits;
  const Alphabet& alphabet = index.alphabet();
  // Canonicalize the pattern the way the index canonicalized its text
  // (DNA folds case); out-of-alphabet bytes stay raw and can never
  // equal a decoded (canonical) text character.
  std::string canonical(pattern);
  for (char& c : canonical) {
    const Code code = alphabet.Encode(c);
    if (code != kInvalidCode) c = alphabet.Decode(code);
  }
  const std::optional<Code> sep_code =
      separator.has_value() ? std::optional<Code>(alphabet.Encode(*separator))
                            : std::nullopt;

  const plan::ApproxPlan plan = plan::PlanApprox(
      n, alphabet.size(), m, max_edits, SeedSearchable<Index>);
  if (approx != nullptr) {
    approx->seeded = plan.use_seeds;
    approx->seed_len = plan.seed_len;
  }
  uint64_t compared = 0;
  std::string window;

  const auto verify = [&](uint64_t start) {
    if (approx != nullptr) ++approx->candidates;
    window.clear();
    const uint64_t limit = std::min<uint64_t>(start + m + max_edits, n);
    for (uint64_t i = start; i < limit; ++i) {
      const Code t = index.CodeAt(i);
      if (sep_code.has_value() && t == *sep_code) break;  // clip at the doc
      window.push_back(alphabet.Decode(t));
    }
    if (window.size() + max_edits < m) return;  // too close to the end
    compared += window.size();
    const auto best =
        align::BestPrefixEditDistance(canonical, window, max_edits);
    if (best.has_value()) {
      hits.push_back({static_cast<uint32_t>(start),
                      best->second, best->first});
      if (approx != nullptr) ++approx->verified;
    }
  };

  CancelCheckpoint checkpoint(cancel);
  if constexpr (SeedSearchable<Index>) {
    if (plan.use_seeds) {
      for (const uint64_t start : approx_internal::SeedCandidates(
               index, pattern, plan, /*shift=*/max_edits, n - 1, stats,
               cancel)) {
        if (checkpoint.ShouldStop()) break;
        verify(start);
      }
      if (stats != nullptr) stats->nodes_checked += compared;
      return hits;
    }
  }
  for (uint64_t start = 0; start < n; ++start) {
    if (checkpoint.ShouldStop()) break;
    verify(start);
  }
  if (stats != nullptr) stats->nodes_checked += compared;
  return hits;
}

}  // namespace spine

#endif  // SPINE_CORE_APPROX_H_
