// GeneralizedSpineIndex: one SPINE index over multiple strings.
//
// The paper notes (Section 1.1) that "a single SPINE index can be used
// to index multiple different strings, using techniques similar to
// those employed in Generalized Suffix Trees". As in a GST, strings are
// concatenated with a separator that cannot appear in queries, so no
// match ever crosses a string boundary; hits are mapped back to
// (string id, offset) through the boundary table.

#ifndef SPINE_CORE_GENERALIZED_SPINE_H_
#define SPINE_CORE_GENERALIZED_SPINE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "alphabet/alphabet.h"
#include "common/status.h"
#include "core/spine_index.h"

namespace spine {

class GeneralizedSpineIndex {
 public:
  // The separator byte; strings containing it are rejected.
  static constexpr char kSeparator = '\x1f';

  // `alphabet` constrains the strings and queries (DNA, protein or
  // byte); internally the index runs over the byte alphabet so the
  // separator can be appended between strings.
  explicit GeneralizedSpineIndex(const Alphabet& alphabet);

  // Adds one string to the index. Fails (leaving the index unchanged)
  // if the string contains the separator or out-of-alphabet characters.
  Status AddString(std::string_view s);

  uint32_t string_count() const {
    return static_cast<uint32_t>(boundaries_.size());
  }
  // Length of string `id` (0-based, in insertion order).
  uint32_t StringLength(uint32_t id) const;

  struct Hit {
    uint32_t string_id;
    uint32_t offset;
    bool operator==(const Hit&) const = default;
  };

  bool Contains(std::string_view pattern) const;
  // All occurrences across all indexed strings, ordered by
  // (insertion order, offset).
  std::vector<Hit> FindAll(std::string_view pattern) const;

  // A maximal match of the query against the indexed collection, with
  // every occurrence mapped to (string, offset).
  struct CollectionMatch {
    uint32_t query_pos = 0;
    uint32_t length = 0;
    std::vector<Hit> hits;  // ordered by (string id, offset)
  };

  // All maximal matching substrings (>= min_len) between `query` and
  // any indexed string, expanded to all occurrences — the multi-string
  // variant of the paper's Section 4 matching operation. The separator
  // guarantees no match spans two strings.
  std::vector<CollectionMatch> MatchAgainst(std::string_view query,
                                            uint32_t min_len) const;

  const SpineIndex& underlying() const { return index_; }

 private:
  // Maps a global start position to (string_id, offset); returns false
  // for positions inside separators (cannot happen for valid patterns).
  bool MapPosition(uint32_t global, Hit* hit) const;

  Alphabet user_alphabet_;
  SpineIndex index_;                 // over Alphabet::Byte()
  std::vector<uint32_t> boundaries_;  // global end (excl.) of each string
};

}  // namespace spine

#endif  // SPINE_CORE_GENERALIZED_SPINE_H_
