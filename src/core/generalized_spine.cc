#include "core/generalized_spine.h"

#include <algorithm>

#include "common/check.h"
#include "core/matcher.h"

namespace spine {

GeneralizedSpineIndex::GeneralizedSpineIndex(const Alphabet& alphabet)
    : user_alphabet_(alphabet), index_(Alphabet::Byte()) {}

Status GeneralizedSpineIndex::AddString(std::string_view s) {
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == kSeparator) {
      return Status::InvalidArgument("string contains the separator byte");
    }
    if (user_alphabet_.Encode(s[i]) == kInvalidCode) {
      return Status::InvalidArgument(
          "character at offset " + std::to_string(i) + " is not in the " +
          user_alphabet_.name() + " alphabet");
    }
  }
  // Validation passed: the byte-alphabet appends below cannot fail.
  Status status = index_.AppendString(s);
  SPINE_CHECK(status.ok());
  status = index_.Append(kSeparator);
  SPINE_CHECK(status.ok());
  boundaries_.push_back(static_cast<uint32_t>(index_.size()));
  return Status::OK();
}

uint32_t GeneralizedSpineIndex::StringLength(uint32_t id) const {
  SPINE_CHECK(id < boundaries_.size());
  uint32_t start = id == 0 ? 0 : boundaries_[id - 1];
  return boundaries_[id] - start - 1;  // minus the separator
}

bool GeneralizedSpineIndex::MapPosition(uint32_t global, Hit* hit) const {
  auto it = std::upper_bound(boundaries_.begin(), boundaries_.end(), global);
  if (it == boundaries_.end()) return false;
  uint32_t id = static_cast<uint32_t>(it - boundaries_.begin());
  uint32_t start = id == 0 ? 0 : boundaries_[id - 1];
  hit->string_id = id;
  hit->offset = global - start;
  return true;
}

bool GeneralizedSpineIndex::Contains(std::string_view pattern) const {
  if (pattern.find(kSeparator) != std::string_view::npos) return false;
  return index_.Contains(pattern);
}

std::vector<GeneralizedSpineIndex::Hit> GeneralizedSpineIndex::FindAll(
    std::string_view pattern) const {
  std::vector<Hit> hits;
  if (pattern.empty() ||
      pattern.find(kSeparator) != std::string_view::npos) {
    return hits;
  }
  for (uint32_t global : index_.FindAll(pattern)) {
    Hit hit;
    // Patterns cannot span separators (the separator never matches), so
    // every occurrence maps cleanly into one string.
    if (MapPosition(global, &hit)) {
      SPINE_DCHECK(hit.offset + pattern.size() <= StringLength(hit.string_id));
      hits.push_back(hit);
    }
  }
  std::sort(hits.begin(), hits.end(), [](const Hit& a, const Hit& b) {
    return a.string_id != b.string_id ? a.string_id < b.string_id
                                      : a.offset < b.offset;
  });
  return hits;
}

std::vector<GeneralizedSpineIndex::CollectionMatch>
GeneralizedSpineIndex::MatchAgainst(std::string_view query,
                                    uint32_t min_len) const {
  std::vector<CollectionMatch> out;
  if (min_len == 0 || query.find(kSeparator) != std::string_view::npos) {
    return out;
  }
  // Queries never contain the separator, so the underlying matcher's
  // matches are automatically confined to single strings.
  auto matches = FindMaximalMatches(index_, query, min_len);
  auto expanded = CollectAllOccurrences(index_, matches);
  out.reserve(expanded.size());
  for (const MatchOccurrences& occ : expanded) {
    CollectionMatch match;
    match.query_pos = occ.match.query_pos;
    match.length = occ.match.length;
    for (uint32_t global : occ.data_positions) {
      Hit hit;
      if (MapPosition(global, &hit)) match.hits.push_back(hit);
    }
    std::sort(match.hits.begin(), match.hits.end(),
              [](const Hit& a, const Hit& b) {
                return a.string_id != b.string_id ? a.string_id < b.string_id
                                                  : a.offset < b.offset;
              });
    out.push_back(std::move(match));
  }
  return out;
}

}  // namespace spine
