// BackendRegistry: the one place that knows how to turn an on-disk
// artifact (or a --backend= name) into a live core::Index.
//
// Before this existed the CLI sniffed file magic in three separate
// command handlers and each invented its own backend_id for the result
// cache. The registry centralizes both: Open() dispatches on the
// artifact's leading magic (and, for page files, the metadata sidecar
// magic), and cache identity comes from the Index base class itself
// (core/index.h NextIndexCacheId), so ids can never collide.
//
// Artifact dispatch table:
//   "SPNE"            compact SPINE image        -> CompactSpineAdapter
//   "SPNG"            generalized compact image  -> GeneralizedCompactAdapter
//   "SPGF" + "SPDM"   page file + spine sidecar  -> DiskSpineAdapter
//   "SPGF" + "STMD"   page file + tree sidecar   -> DiskSuffixTreeAdapter
//   "SPFM"            sharded family manifest    -> shard::ShardedIndex

#ifndef SPINE_CORE_REGISTRY_H_
#define SPINE_CORE_REGISTRY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/index.h"

namespace spine::core {

// Leading magic of the shared page-file container ("SPGF"). Exposed so
// `spine verify` can run its page-checksum pre-pass before opening the
// artifact through the registry.
inline constexpr uint32_t kPageFileMagic = 0x53504746;

struct BackendInfo {
  IndexKind kind;
  // Stable --backend= name; equals IndexKindName(kind).
  std::string_view name;
  // Leading u32 of the artifact file; 0 when the backend has no
  // on-disk artifact of its own.
  uint32_t file_magic = 0;
  // For page-file artifacts (file_magic "SPGF"): the magic of the
  // `.meta` sidecar that selects this backend; 0 otherwise.
  uint32_t meta_magic = 0;
  // One-line artifact description (used by `spine verify`).
  std::string_view artifact;
  // Opens the artifact at `path` the way `options` asks (heap copy or
  // zero-copy mmap); null for backends that are built in memory rather
  // than reopened from disk.
  Result<std::unique_ptr<Index>> (*open)(const std::string& path,
                                         const OpenOptions& options) = nullptr;
};

class BackendRegistry {
 public:
  // The process-wide registry with every built-in backend.
  static const BackendRegistry& Default();

  const std::vector<BackendInfo>& backends() const { return backends_; }

  // Entry for `name` (an IndexKindName), or null.
  const BackendInfo* FindByName(std::string_view name) const;

  // Entry for `kind`, or null.
  const BackendInfo* FindByKind(IndexKind kind) const;

  // Reads the leading u32 of `path`: kIoError when the file cannot be
  // opened, kCorruption when it is shorter than four bytes. The one
  // magic-sniff implementation every consumer shares.
  static Result<uint32_t> SniffMagic(const std::string& path);

  // Opens the artifact at `path`, choosing the backend by sniffing the
  // leading magic (and the sidecar magic for page files). Unrecognized
  // or truncated magic is kCorruption; a missing file is kIoError.
  // `options` picks the open path (heap copy vs zero-copy mmap); the
  // one-argument overload uses DefaultOpenOptions() ($SPINE_OPEN).
  // The returned index reports the spec via Index::open_mode().
  Result<std::unique_ptr<Index>> Open(const std::string& path,
                                      const OpenOptions& options) const;
  Result<std::unique_ptr<Index>> Open(const std::string& path) const {
    return Open(path, DefaultOpenOptions());
  }

  // Opens `path` as the named backend, bypassing the sniff (the
  // --backend= escape hatch). Unknown names and backends without an
  // open function are kInvalidArgument.
  Result<std::unique_ptr<Index>> OpenAs(std::string_view name,
                                        const std::string& path,
                                        const OpenOptions& options) const;
  Result<std::unique_ptr<Index>> OpenAs(std::string_view name,
                                        const std::string& path) const {
    return OpenAs(name, path, DefaultOpenOptions());
  }

 private:
  BackendRegistry();
  std::vector<BackendInfo> backends_;
};

}  // namespace spine::core

#endif  // SPINE_CORE_REGISTRY_H_
