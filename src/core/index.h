// The runtime-polymorphic index interface every consumer speaks.
//
// PR 1-3 unified the *query* vocabulary (core/query.h) but left every
// consumer welded to a concrete backend type: the batch engine was a
// template with a per-backend concurrency trait, and the CLI sniffed
// file magic in three separate places. `core::Index` is the missing
// seam — one abstract interface that every backend (reference SPINE,
// compact SPINE, generalized collections, paged disk structures, the
// suffix-tree and CDAWG baselines, the naive oracle, and sharded
// families) plugs into via thin adapters (core/adapters.h), opened
// uniformly through the BackendRegistry (core/registry.h).
//
// Capabilities replace compile-time traits: instead of specializing
// kConcurrentSafeReads<T>, a backend *reports* whether its const reads
// are thread-safe, whether its I/O layer latches errors, and which
// query kinds it can answer. Consumers branch on data, not on types.
//
// Cache identity: every Index instance is assigned a process-unique
// cache_id() at construction. The engine's result cache keys on it, so
// two distinct indexes can never cross-serve cached answers — the
// caller-managed backend_id footgun of PR 1 is gone by construction.

#ifndef SPINE_CORE_INDEX_H_
#define SPINE_CORE_INDEX_H_

#include <cstdint>
#include <memory>
#include <string_view>

#include "alphabet/alphabet.h"
#include "common/cancel.h"
#include "common/status.h"
#include "core/query.h"
#include "obs/trace.h"

namespace spine::core {

// Which concrete structure sits behind the interface. Extend-only:
// values are stable identifiers used in tests and diagnostics.
enum class IndexKind : uint8_t {
  kSpine = 0,              // reference SpineIndex (core/spine_index.h)
  kCompactSpine = 1,       // Section 5 layout (compact/compact_spine.h)
  kGeneralizedSpine = 2,   // multi-string reference (core/generalized_spine.h)
  kGeneralizedCompact = 3, // multi-string compact (compact/generalized_compact.h)
  kDiskSpine = 4,          // paged SPINE (storage/disk_spine.h)
  kDiskSuffixTree = 5,     // paged ST baseline (storage/disk_suffix_tree.h)
  kSuffixTree = 6,         // in-memory Ukkonen baseline
  kCompactDawg = 7,        // CDAWG baseline (dawg/compact_dawg.h)
  kNaive = 8,              // brute-force oracle (naive/naive_index.h)
  kSharded = 9,            // K-way sharded family (shard/sharded_index.h)
  kDynamic = 10,           // LSM-style lifecycle (shard/dynamic_family.h)
};

constexpr std::string_view IndexKindName(IndexKind kind) {
  switch (kind) {
    case IndexKind::kSpine: return "spine";
    case IndexKind::kCompactSpine: return "compact";
    case IndexKind::kGeneralizedSpine: return "generalized";
    case IndexKind::kGeneralizedCompact: return "generalized-compact";
    case IndexKind::kDiskSpine: return "disk";
    case IndexKind::kDiskSuffixTree: return "disk-st";
    case IndexKind::kSuffixTree: return "suffix-tree";
    case IndexKind::kCompactDawg: return "cdawg";
    case IndexKind::kNaive: return "naive";
    case IndexKind::kSharded: return "sharded";
    case IndexKind::kDynamic: return "dynamic";
  }
  return "unknown";
}

// How an on-disk artifact is materialized at open time.
//
// kHeap reads the image into private memory (every byte copied and
// verified up front). kMmap maps the artifact and serves straight from
// the page cache: compact images borrow their tables from the mapping
// (zero copy, O(small) open), paged backends route their page reads
// through storage::MmapIoBackend. Built-in-memory indexes have no open
// mode; Index::open_mode() reports "built" for them.
enum class OpenMode : uint8_t {
  kHeap = 0,
  kMmap = 1,
};

struct OpenOptions {
  OpenMode mode = OpenMode::kHeap;
  // mmap only: verify the whole-image checksum and structural
  // invariants at open, exactly as the heap path always does (both
  // paths then reach identical verdicts on any artifact). false skips
  // both — bounds/geometry checks only — for artifact-size-independent
  // open cost on trusted images. Ignored by the heap path.
  bool verify = true;
  // mmap only: pre-fault the whole mapping at open (MAP_POPULATE), so
  // the first query never stalls on a page-in. Trades open latency for
  // query-tail latency. Ignored by the heap path.
  bool populate = false;
  // mmap only: advise the kernel to back the mapping with transparent
  // huge pages (MADV_HUGEPAGE, best-effort). Ignored by the heap path.
  bool hugepage = false;
};

// Parses an open spec: a base mode ("heap", "mmap" or "mmap-noverify")
// optionally followed by comma-separated mmap flags ("populate",
// "hugepage") — e.g. "mmap,populate,hugepage". This is the vocabulary
// of --open= and $SPINE_OPEN. kInvalidArgument otherwise (flags on
// "heap" are rejected: they have no heap meaning to silently ignore).
Result<OpenOptions> ParseOpenSpec(std::string_view spec);

// The canonical spec name for `options` (always a string literal, e.g.
// "heap", "mmap", "mmap-noverify,populate", "mmap,populate,hugepage").
std::string_view OpenOptionsName(const OpenOptions& options);

// Process default: $SPINE_OPEN when set and valid, else heap.
// Infallible — an invalid value warns once on stderr and falls back to
// heap (a misspelled env var must not take the serving fleet down).
OpenOptions DefaultOpenOptions();

constexpr uint8_t QueryKindBit(QueryKind kind) {
  return static_cast<uint8_t>(1u << static_cast<uint8_t>(kind));
}

// All six kinds of core/query.h.
inline constexpr uint8_t kAllQueryKinds =
    QueryKindBit(QueryKind::kContains) | QueryKindBit(QueryKind::kFindAll) |
    QueryKindBit(QueryKind::kMaximalMatches) |
    QueryKindBit(QueryKind::kMatchingStats) |
    QueryKindBit(QueryKind::kMismatch) |
    QueryKindBit(QueryKind::kEditDistance);

// The four exact kinds — what backends without position-addressable
// text (compact DAWG) can still answer.
inline constexpr uint8_t kExactQueryKinds =
    QueryKindBit(QueryKind::kContains) | QueryKindBit(QueryKind::kFindAll) |
    QueryKindBit(QueryKind::kMaximalMatches) |
    QueryKindBit(QueryKind::kMatchingStats);

// What a backend can do, reported at runtime. This is the data-driven
// replacement for the engine's old kConcurrentSafeReads<T> template
// trait (and the seam future capabilities — snapshots, online rebuild —
// will extend).
struct Capabilities {
  // Const Execute() calls are safe from many threads at once. False for
  // the paged backends, whose reads mutate a shared buffer pool; the
  // engine serializes those through a per-index mutex.
  bool concurrent_reads = true;
  // The backend's I/O layer latches errors (ConsumeError) instead of
  // aborting; Execute() can return kIoError / kCorruption verdicts that
  // describe the medium, not the query.
  bool statusful_io = false;
  // The backend can run the seed-and-extend path for the approximate
  // kinds (kMismatch / kEditDistance): exact seed location through the
  // backbone plus positional verification. Backends with this flag off
  // still answer those kinds when query_kinds allows it — via the
  // planner's O(n*m) verification scan.
  bool supports_approx = false;
  // The structure round-trips through an on-disk artifact the registry
  // can reopen (compact images, paged files, shard manifests).
  bool persistent = false;
  // Bitmask of answerable QueryKinds (QueryKindBit). Execute() returns
  // a kInvalidArgument result — never a silently empty answer — for
  // kinds outside the mask.
  uint8_t query_kinds = kAllQueryKinds;

  bool Supports(QueryKind kind) const {
    return (query_kinds & QueryKindBit(kind)) != 0;
  }
};

// The abstract index. Implementations are the adapter wrappers in
// core/adapters.h plus shard::ShardedIndex; all are immutable once
// constructed (the interface exposes no mutation).
class Index {
 public:
  Index();
  virtual ~Index() = default;

  // Identity is per-instance (cache_id); copying would forge it.
  Index(const Index&) = delete;
  Index& operator=(const Index&) = delete;

  virtual IndexKind kind() const = 0;
  virtual Capabilities capabilities() const = 0;
  virtual const Alphabet& alphabet() const = 0;
  // Number of indexed characters (for multi-string backends: the total
  // over the concatenation, separators included).
  virtual uint64_t size() const = 0;

  // Answers one query. Statusful: a backend fault surfaces as a
  // QueryResult with status_code != kOk (payload untrusted), never as a
  // crash or a silently wrong answer. Unsupported kinds (see
  // Capabilities::query_kinds) yield kInvalidArgument.
  //
  // `cancel`, when non-null, is polled cooperatively; a fired token
  // yields a kDeadlineExceeded / kCancelled result (common/cancel.h).
  // Checkpoint granularity is per backend: SPINE-shaped walks poll
  // every kCancelCheckInterval steps, paged backends additionally on
  // every buffer-pool miss, baselines at least between phases.
  virtual QueryResult Execute(const Query& query,
                              obs::TraceContext* trace = nullptr,
                              const CancelToken* cancel = nullptr) const = 0;

  // Full structural self-check (invariants + checksums where the
  // backend has them). Used by `spine verify`.
  virtual Status VerifyStructure() const = 0;

  virtual uint64_t MemoryBytes() const = 0;

  // Short human name, IndexKindName(kind()) by default.
  virtual std::string_view Name() const { return IndexKindName(kind()); }

  // Process-unique id for result-cache keying, assigned at
  // construction from a monotone counter (never 0, never reused).
  // Virtual so dynamic backends can report the *current generation's*
  // id instead: every mutation mints a fresh id, so cached answers
  // computed against an older generation become unreachable the moment
  // the generation pointer swaps (the engine LRU self-invalidates).
  virtual uint64_t cache_id() const { return cache_id_; }

  // Dynamic backends return an immutable snapshot of the current
  // generation: an Index whose answers and cache_id() stay frozen for
  // the snapshot's lifetime even while writers swap generations
  // underneath. Consumers that issue several queries expecting one
  // consistent view (the engine's multi-query batches) pin once and
  // query the snapshot. nullptr (the default) means this index is
  // already immutable — query it directly.
  virtual std::shared_ptr<const Index> PinSnapshot() const {
    return nullptr;
  }

  // How this index came to be: "built" (constructed in memory), or the
  // open spec the registry used ("heap" / "mmap" / "mmap-noverify").
  // Surfaced in `spine stats --json` and the server's stats snapshot.
  std::string_view open_mode() const { return open_mode_; }
  // Set by BackendRegistry::Open/OpenAs right after a successful open.
  void set_open_mode(std::string_view mode) { open_mode_ = mode; }

 private:
  const uint64_t cache_id_;
  std::string_view open_mode_ = "built";  // always a string literal
};

// A dynamic index that accepts document-level mutations after open.
// Implemented by shard::DynamicFamily (shard/dynamic_family.h);
// declared here so serve/ and tools/ can drive mutations through the
// abstract seam without depending on shard/. All methods are safe to
// call concurrently with Execute() on the same object; mutations
// themselves are serialized internally.
class MutableIndex : public Index {
 public:
  // Indexes a new document and returns its assigned doc id (monotone,
  // never reused). The document is queryable immediately but volatile
  // until the next Flush()/Compact() persists it.
  virtual Result<uint32_t> InsertDocument(std::string_view text) = 0;

  // Tombstones a live document: its text stops matching queries at
  // once and is physically dropped at the next compaction. kNotFound
  // if the id was never assigned or is already deleted.
  virtual Status DeleteDocument(uint32_t doc_id) = 0;

  // Freezes the memtable into a durable on-disk shard and swaps the
  // generation pointer. After Flush() returns OK, every prior mutation
  // survives crash + reopen.
  virtual Status Flush() = 0;

  // Flush, then merge all frozen shards into one, dropping tombstoned
  // documents. A failed compaction leaves the prior generation fully
  // live (on disk and in memory).
  virtual Status Compact() = 0;

  // Re-adopts the latest on-disk generation, discarding any volatile
  // (unflushed) in-memory state. The serve SIGHUP/`reload` hook.
  virtual Status Reload() = 0;

  // Version counter of the currently-served generation (bumps on every
  // successful mutation, flush, compaction or reload).
  virtual uint64_t generation_version() const = 0;

  // Number of live (inserted and not deleted) documents.
  virtual uint32_t live_documents() const = 0;
};

// Issues the next process-unique cache id (what the Index constructor
// calls; exposed so the registry can report id discipline in tests).
uint64_t NextIndexCacheId();

}  // namespace spine::core

#endif  // SPINE_CORE_INDEX_H_
