// Thin core::Index adapters for every concrete backend.
//
// Each adapter either *borrows* a caller-owned backend (const&
// constructor — the backend must outlive the adapter; this is what
// tests and benches use) or *owns* one (rvalue / unique_ptr
// constructor — what BackendRegistry::Open hands out). Adapters add no
// behavior beyond translating Execute() onto the backend's native
// search entry points and reporting honest Capabilities.
//
// Query semantics are identical across adapters — the engine agreement
// tests assert byte-identical QueryResult payloads for every kind a
// backend supports:
//   - SPINE-shaped backends (reference, compact, disk, generalized)
//     dispatch through core/query.h ExecuteQuery, sharing the generic
//     algorithms of core/search.h and core/matcher.h.
//   - Suffix-tree backends run the suffix-link matcher
//     (suffix_tree/st_matcher.h) and derive matching statistics from
//     maximal matches via the same decay rule the SPINE path uses.
//   - CompactDawg answers kContains only; other kinds return a loud
//     kInvalidArgument result (see Capabilities::query_kinds).
//   - NaiveTextAdapter wraps a raw string with the brute-force oracle,
//     giving tests a ground-truth Index.

#ifndef SPINE_CORE_ADAPTERS_H_
#define SPINE_CORE_ADAPTERS_H_

#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "compact/compact_spine.h"
#include "compact/generalized_compact.h"
#include "core/generalized_spine.h"
#include "core/index.h"
#include "core/spine_index.h"
#include "dawg/compact_dawg.h"
#include "storage/disk_spine.h"
#include "storage/disk_suffix_tree.h"
#include "storage/mmap_region.h"
#include "storage/page_file.h"
#include "suffix_tree/suffix_tree.h"

namespace spine::core {

// A query-kind-unsupported error result (never a silently empty
// answer); shared by the adapters and shard::ShardedIndex.
QueryResult UnsupportedKindResult(std::string_view backend, QueryKind kind);

// A kIoError result for a query admitted after the artifact's mapping
// fence tripped (the file shrank under the mapping; see
// storage/mmap_region.h). Shared by the mmap-opened adapters and
// shard::ShardedIndex.
QueryResult MappingFenceResult(const Status& fence);

class SpineIndexAdapter final : public Index {
 public:
  explicit SpineIndexAdapter(const SpineIndex& index) : index_(&index) {}
  explicit SpineIndexAdapter(SpineIndex&& index)
      : owned_(std::move(index)), index_(&*owned_) {}

  IndexKind kind() const override { return IndexKind::kSpine; }
  Capabilities capabilities() const override {
    Capabilities caps;
    caps.supports_approx = true;  // backbone seed lookup available
    return caps;
  }
  const Alphabet& alphabet() const override { return index_->alphabet(); }
  uint64_t size() const override { return index_->size(); }
  QueryResult Execute(const Query& query,
                      obs::TraceContext* trace = nullptr,
                      const CancelToken* cancel = nullptr) const override {
    return ExecuteQuery(*index_, query, trace, cancel);
  }
  Status VerifyStructure() const override { return index_->Validate(); }
  uint64_t MemoryBytes() const override { return index_->MemoryBytes(); }

 private:
  std::optional<SpineIndex> owned_;
  const SpineIndex* index_;
};

class CompactSpineAdapter final : public Index {
 public:
  explicit CompactSpineAdapter(const CompactSpineIndex& index)
      : index_(&index) {}
  explicit CompactSpineAdapter(CompactSpineIndex&& index)
      : owned_(std::move(index)), index_(&*owned_) {}
  // Zero-copy open: the index borrows its tables from `mapping`; every
  // query admission checks the length fence first so a shrunk artifact
  // surfaces as a clean kIoError, never SIGBUS.
  CompactSpineAdapter(CompactSpineIndex&& index,
                      std::shared_ptr<const storage::MmapRegion> mapping)
      : owned_(std::move(index)),
        index_(&*owned_),
        mapping_(std::move(mapping)) {}

  IndexKind kind() const override { return IndexKind::kCompactSpine; }
  Capabilities capabilities() const override {
    Capabilities caps;
    caps.supports_approx = true;
    caps.persistent = true;
    return caps;
  }
  const Alphabet& alphabet() const override { return index_->alphabet(); }
  uint64_t size() const override { return index_->size(); }
  QueryResult Execute(const Query& query,
                      obs::TraceContext* trace = nullptr,
                      const CancelToken* cancel = nullptr) const override {
    if (mapping_ != nullptr) {
      Status fence = mapping_->CheckFence();
      if (!fence.ok()) return MappingFenceResult(fence);
    }
    return ExecuteQuery(*index_, query, trace, cancel);
  }
  Status VerifyStructure() const override {
    if (mapping_ != nullptr) {
      SPINE_RETURN_IF_ERROR(mapping_->CheckFence());
    }
    return index_->Validate();
  }
  uint64_t MemoryBytes() const override { return index_->MemoryBytes(); }

  const CompactSpineIndex& backend() const { return *index_; }

 private:
  std::optional<CompactSpineIndex> owned_;
  const CompactSpineIndex* index_;
  std::shared_ptr<const storage::MmapRegion> mapping_;
};

// Queries run against the concatenated underlying index, so hit
// positions are global offsets into the separator-joined text (use the
// backend's native FindAll for (string, offset) mapping).
class GeneralizedSpineAdapter final : public Index {
 public:
  explicit GeneralizedSpineAdapter(const GeneralizedSpineIndex& index)
      : index_(&index) {}
  explicit GeneralizedSpineAdapter(GeneralizedSpineIndex&& index)
      : owned_(std::move(index)), index_(&*owned_) {}

  IndexKind kind() const override { return IndexKind::kGeneralizedSpine; }
  Capabilities capabilities() const override {
    Capabilities caps;
    caps.supports_approx = true;
    return caps;
  }
  const Alphabet& alphabet() const override {
    return index_->underlying().alphabet();
  }
  uint64_t size() const override { return index_->underlying().size(); }
  QueryResult Execute(const Query& query,
                      obs::TraceContext* trace = nullptr,
                      const CancelToken* cancel = nullptr) const override {
    // The separator keeps approximate windows inside one document.
    return ExecuteQuery(index_->underlying(), query, trace, cancel,
                        GeneralizedSpineIndex::kSeparator);
  }
  Status VerifyStructure() const override {
    return index_->underlying().Validate();
  }
  uint64_t MemoryBytes() const override {
    return index_->underlying().MemoryBytes();
  }

 private:
  std::optional<GeneralizedSpineIndex> owned_;
  const GeneralizedSpineIndex* index_;
};

class GeneralizedCompactAdapter final : public Index {
 public:
  explicit GeneralizedCompactAdapter(const GeneralizedCompactSpine& index)
      : index_(&index) {}
  explicit GeneralizedCompactAdapter(GeneralizedCompactSpine&& index)
      : owned_(std::move(index)), index_(&*owned_) {}
  // Zero-copy open (see CompactSpineAdapter).
  GeneralizedCompactAdapter(GeneralizedCompactSpine&& index,
                            std::shared_ptr<const storage::MmapRegion> mapping)
      : owned_(std::move(index)),
        index_(&*owned_),
        mapping_(std::move(mapping)) {}

  IndexKind kind() const override { return IndexKind::kGeneralizedCompact; }
  Capabilities capabilities() const override {
    Capabilities caps;
    caps.supports_approx = true;
    caps.persistent = true;
    return caps;
  }
  const Alphabet& alphabet() const override {
    return index_->underlying().alphabet();
  }
  uint64_t size() const override { return index_->underlying().size(); }
  QueryResult Execute(const Query& query,
                      obs::TraceContext* trace = nullptr,
                      const CancelToken* cancel = nullptr) const override {
    if (mapping_ != nullptr) {
      Status fence = mapping_->CheckFence();
      if (!fence.ok()) return MappingFenceResult(fence);
    }
    // The separator keeps approximate windows inside one document.
    return ExecuteQuery(index_->underlying(), query, trace, cancel,
                        GeneralizedCompactSpine::kSeparator);
  }
  Status VerifyStructure() const override {
    if (mapping_ != nullptr) {
      SPINE_RETURN_IF_ERROR(mapping_->CheckFence());
    }
    return index_->underlying().Validate();
  }
  uint64_t MemoryBytes() const override {
    return index_->underlying().MemoryBytes();
  }

  const GeneralizedCompactSpine& backend() const { return *index_; }

 private:
  std::optional<GeneralizedCompactSpine> owned_;
  const GeneralizedCompactSpine* index_;
  std::shared_ptr<const storage::MmapRegion> mapping_;
};

class DiskSpineAdapter final : public Index {
 public:
  explicit DiskSpineAdapter(const storage::DiskSpine& index)
      : index_(&index) {}
  explicit DiskSpineAdapter(std::unique_ptr<storage::DiskSpine> index)
      : owned_(std::move(index)), index_(owned_.get()) {}

  IndexKind kind() const override { return IndexKind::kDiskSpine; }
  Capabilities capabilities() const override {
    Capabilities caps;
    caps.concurrent_reads = false;  // const reads share the buffer pool
    caps.statusful_io = true;
    caps.supports_approx = true;
    caps.persistent = true;
    return caps;
  }
  const Alphabet& alphabet() const override { return index_->alphabet(); }
  uint64_t size() const override { return index_->size(); }
  QueryResult Execute(const Query& query,
                      obs::TraceContext* trace = nullptr,
                      const CancelToken* cancel = nullptr) const override {
    // ExecuteQuery drains + re-checks the I/O error latch around the
    // traversal (the IoLatchedIndex concept), so faults surface as
    // per-query error results here too; the CancelScopedIndex concept
    // additionally routes `cancel` to the buffer pool, which polls it
    // on every page miss.
    return ExecuteQuery(*index_, query, trace, cancel);
  }
  Status VerifyStructure() const override {
    Status status = index_->VerifyStructure();
    if (status.ok()) status = index_->ConsumeError();
    return status;
  }
  uint64_t MemoryBytes() const override {
    return index_->PoolMemoryBytes() + index_->MetadataBytes();
  }

  const storage::DiskSpine& backend() const { return *index_; }

 private:
  std::unique_ptr<storage::DiskSpine> owned_;
  const storage::DiskSpine* index_;
};

class DiskSuffixTreeAdapter final : public Index {
 public:
  explicit DiskSuffixTreeAdapter(const storage::DiskSuffixTree& tree)
      : tree_(&tree) {}
  explicit DiskSuffixTreeAdapter(std::unique_ptr<storage::DiskSuffixTree> tree)
      : owned_(std::move(tree)), tree_(owned_.get()) {}

  IndexKind kind() const override { return IndexKind::kDiskSuffixTree; }
  Capabilities capabilities() const override {
    Capabilities caps;
    caps.concurrent_reads = false;  // const reads share the buffer pool
    caps.statusful_io = true;
    caps.persistent = true;
    return caps;
  }
  const Alphabet& alphabet() const override { return tree_->alphabet(); }
  uint64_t size() const override { return tree_->size(); }
  QueryResult Execute(const Query& query,
                      obs::TraceContext* trace = nullptr,
                      const CancelToken* cancel = nullptr) const override;
  // Paged node/text walk: edge ranges, child targets and suffix indexes
  // in bounds. Reads every record, so page checksums are exercised too.
  Status VerifyStructure() const override;
  uint64_t MemoryBytes() const override {
    return tree_->PagesUsed() * storage::kPageSize;
  }

  const storage::DiskSuffixTree& backend() const { return *tree_; }

 private:
  std::unique_ptr<storage::DiskSuffixTree> owned_;
  const storage::DiskSuffixTree* tree_;
};

class SuffixTreeAdapter final : public Index {
 public:
  explicit SuffixTreeAdapter(const SuffixTree& tree) : tree_(&tree) {}
  explicit SuffixTreeAdapter(SuffixTree&& tree)
      : owned_(std::move(tree)), tree_(&*owned_) {}

  IndexKind kind() const override { return IndexKind::kSuffixTree; }
  Capabilities capabilities() const override { return Capabilities{}; }
  const Alphabet& alphabet() const override { return tree_->alphabet(); }
  uint64_t size() const override { return tree_->size(); }
  QueryResult Execute(const Query& query,
                      obs::TraceContext* trace = nullptr,
                      const CancelToken* cancel = nullptr) const override;
  Status VerifyStructure() const override { return tree_->Validate(); }
  uint64_t MemoryBytes() const override { return tree_->MemoryBytes(); }

 private:
  std::optional<SuffixTree> owned_;
  const SuffixTree* tree_;
};

class CompactDawgAdapter final : public Index {
 public:
  explicit CompactDawgAdapter(const CompactDawg& dawg) : dawg_(&dawg) {}
  explicit CompactDawgAdapter(CompactDawg&& dawg)
      : owned_(std::move(dawg)), dawg_(&*owned_) {}

  IndexKind kind() const override { return IndexKind::kCompactDawg; }
  Capabilities capabilities() const override {
    Capabilities caps;
    caps.query_kinds = QueryKindBit(QueryKind::kContains);
    return caps;
  }
  const Alphabet& alphabet() const override;
  uint64_t size() const override { return dawg_->size(); }
  QueryResult Execute(const Query& query,
                      obs::TraceContext* trace = nullptr,
                      const CancelToken* cancel = nullptr) const override;
  Status VerifyStructure() const override { return dawg_->Validate(); }
  uint64_t MemoryBytes() const override { return dawg_->MemoryBytes(); }

 private:
  std::optional<CompactDawg> owned_;
  const CompactDawg* dawg_;
};

// Brute-force oracle over a plain text copy — the slowest and most
// obviously correct Index, for agreement tests.
class NaiveTextAdapter final : public Index {
 public:
  NaiveTextAdapter(const Alphabet& alphabet, std::string text)
      : alphabet_(alphabet), text_(std::move(text)) {}

  IndexKind kind() const override { return IndexKind::kNaive; }
  Capabilities capabilities() const override { return Capabilities{}; }
  const Alphabet& alphabet() const override { return alphabet_; }
  uint64_t size() const override { return text_.size(); }
  QueryResult Execute(const Query& query,
                      obs::TraceContext* trace = nullptr,
                      const CancelToken* cancel = nullptr) const override;
  Status VerifyStructure() const override { return Status::OK(); }
  uint64_t MemoryBytes() const override { return text_.capacity(); }

 private:
  Alphabet alphabet_;
  std::string text_;
};

}  // namespace spine::core

#endif  // SPINE_CORE_ADAPTERS_H_
