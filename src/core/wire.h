// The unified request/response envelope shared by every query
// front-end: the CLI subcommands, the randomized fuzzer, and the
// `spine serve` network server all (de)serialize queries and answers
// through exactly these functions — there is no per-frontend ad-hoc
// parsing or printing left anywhere in the tree.
//
// Three representations of the same envelope:
//
//   binary frames   the serving wire (docs/SERVING.md):
//                     u32 length | u8 version | u8 type | payload
//                   little-endian, length covers version..payload and
//                   is capped at kMaxFramePayload, so a corrupt prefix
//                   can never provoke a huge allocation;
//   JSON lines      one JSON object per line, same fields by name —
//                   the debugging fallback (`serve` auto-detects it per
//                   connection) and the `--json` client format;
//   query text      the human form used by batch pattern files and the
//                   `query` subcommand ("KIND PATTERN" lines).
//
// Versioning: every frame and JSON line carries kWireVersion. Decoders
// reject other versions with kProtocolError — never a crash, never a
// silently misread payload (tests/wire_test.cc and the spine_fuzz
// `frames` mode enforce this over junk/truncated/oversized inputs).

#ifndef SPINE_CORE_WIRE_H_
#define SPINE_CORE_WIRE_H_

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>

#include "common/status.h"
#include "core/query.h"

namespace spine::core::wire {

// Bumped when the frame layout or a payload encoding changes shape.
inline constexpr uint8_t kWireVersion = 1;

// Upper bound on the length field of one frame (version byte + type
// byte + payload). Oversized frames are a protocol error: the decoder
// refuses them before allocating anything. Encoders honor the same
// cap: AppendResponseFrame degrades an over-cap result to a small
// kResourceExhausted response, and request senders must bound the
// pattern (serve::Client::Send rejects oversized patterns with
// kInvalidArgument) — so no emitted frame is ever un-receivable.
inline constexpr uint32_t kMaxFramePayload = 1u << 24;  // 16 MiB

enum class FrameType : uint8_t {
  kQuery = 1,           // client -> server: QueryRequest
  kResponse = 2,        // server -> client: QueryResponse
  kStats = 3,           // client -> server: STATS verb (empty payload)
  kStatsResponse = 4,   // server -> client: stats JSON document
  kError = 5,           // server -> client: connection-level error
  kMutate = 6,          // client -> server: MutateRequest (dynamic index)
  kMutateResponse = 7,  // server -> client: MutateResponse
};

// Lifecycle verbs a client may send against a server whose backend is a
// mutable (dynamic) index. Servers over static backends answer every
// mutate with kInvalidArgument — the verb set is part of the wire
// contract either way.
enum class MutateOp : uint8_t {
  kInsert = 1,   // add `document`; response carries the new doc_id
  kDelete = 2,   // tombstone `doc_id`
  kCompact = 3,  // flush + merge frozen shards, dropping tombstones
  kReload = 4,   // reopen from the on-disk manifest
};

// "insert" / "delete" / "compact" / "reload".
std::string_view MutateOpName(MutateOp op);

// The inverse of QueryKindName: "findall" / "contains" / "match" /
// "ms" / "mismatch" / "edit" -> the kind; nullopt for anything else.
// Shared by the JSON parser and the CLI's --kind flag.
std::optional<QueryKind> KindFromName(std::string_view name);

// What to ask, plus a client-chosen correlation id echoed back in the
// response (responses to pipelined requests arrive in request order,
// but the id makes matching robust and survives shed queries).
struct QueryRequest {
  uint64_t id = 0;
  Query query;

  bool operator==(const QueryRequest&) const = default;
};

// The answer envelope. `result.status_code` carries per-query verdicts
// including the serving-layer ones: kOverloaded when admission control
// shed the query, kInvalidArgument when the backend cannot answer the
// kind, I/O and corruption verdicts from the medium.
struct QueryResponse {
  uint64_t id = 0;
  QueryResult result;
};

// One lifecycle mutation. `document` is meaningful only for kInsert;
// `doc_id` only for kDelete.
struct MutateRequest {
  uint64_t id = 0;
  MutateOp op = MutateOp::kInsert;
  uint32_t doc_id = 0;
  std::string document;

  bool operator==(const MutateRequest&) const = default;
};

// The mutation verdict. On success `generation` is the index generation
// the mutation published (so a client can confirm its write is visible
// to every later query), and for kInsert `doc_id` is the id assigned to
// the new document.
struct MutateResponse {
  uint64_t id = 0;
  MutateOp op = MutateOp::kInsert;
  uint32_t doc_id = 0;
  StatusCode status = StatusCode::kOk;
  std::string error;
  uint64_t generation = 0;

  bool operator==(const MutateResponse&) const = default;
};

// Connection-level error frame (protocol violations, where there may be
// no request id to respond to). After sending one the server closes the
// connection: framing cannot be trusted once a length prefix lied.
struct WireError {
  uint64_t id = 0;  // 0 when the offending frame never yielded an id
  StatusCode code = StatusCode::kProtocolError;
  std::string message;
};

// --- binary frames ---------------------------------------------------------

// Serializers append one complete frame (length prefix included). The
// result always fits kMaxFramePayload: a response too large for one
// frame (millions of hits, matching stats over a near-cap pattern) is
// replaced by a kResourceExhausted response carrying the same id, so
// the client gets a deliverable verdict instead of a frame its
// ExtractFrame must reject. Requests have no such fallback — callers
// keep pattern + 24 bytes of fixed fields under the cap (enforced by
// SPINE_CHECK; serve::Client::Send pre-validates).
//
// Request payloads carry a trailing u32 deadline_ms (0 = none)
// followed by a trailing u32 max_errors (the k/d budget of the
// approximate kinds; 0 otherwise). Both were appended after the
// pattern precisely so DecodeRequest can accept the older payload
// shapes (ending at the pattern, or after the deadline) under the same
// kWireVersion — see the decoder comment.
void AppendRequestFrame(const QueryRequest& request, std::string* out);
void AppendResponseFrame(const QueryResponse& response, std::string* out);
void AppendStatsRequestFrame(std::string* out);
void AppendStatsResponseFrame(std::string_view stats_json, std::string* out);
void AppendErrorFrame(const WireError& error, std::string* out);
// Mutate senders keep `document` + 21 bytes of fixed fields under the
// frame cap (serve::Client::SendMutate pre-validates); responses are
// small by construction.
void AppendMutateFrame(const MutateRequest& request, std::string* out);
void AppendMutateResponseFrame(const MutateResponse& response,
                               std::string* out);

// One frame lifted out of a byte stream; `payload` points into the
// caller's buffer (valid only while the buffer lives).
struct Frame {
  uint8_t version = 0;
  FrameType type = FrameType::kError;
  std::string_view payload;
};

// Extracts the first complete frame from `buffer`. Three outcomes:
//   OK, *consumed > 0   — *frame is valid, drop *consumed bytes;
//   OK, *consumed == 0  — the buffer holds only a partial frame, read
//                         more bytes and try again;
//   kProtocolError      — the prefix can never become a valid frame
//                         (oversized length, bad version, unknown
//                         type); close the connection.
Status ExtractFrame(std::string_view buffer, Frame* frame, size_t* consumed);

// Payload decoders for the matching FrameType. All reject malformed
// payloads with kProtocolError.
Result<QueryRequest> DecodeRequest(std::string_view payload);
Result<QueryResponse> DecodeResponse(std::string_view payload);
Result<std::string> DecodeStatsResponse(std::string_view payload);
Result<WireError> DecodeError(std::string_view payload);
Result<MutateRequest> DecodeMutate(std::string_view payload);
Result<MutateResponse> DecodeMutateResponse(std::string_view payload);

// --- JSON lines ------------------------------------------------------------

// {"v":1,"type":"query","id":N,"kind":"findall","pattern":"...",
//  "min_len":N,"expand":bool,"deadline_ms":N,"max_errors":N} —
// deadline_ms and max_errors are emitted only when non-zero and
// default to 0 on parse — and the response mirror with "status",
// "found", "hits":[{"pos","len","qpos"}], "ms":[...], "error". For the
// approximate kinds a hit's "qpos" carries its error count.
std::string RequestToJson(const QueryRequest& request);
std::string ResponseToJson(const QueryResponse& response);
Result<QueryRequest> ParseRequestJson(std::string_view line);
Result<QueryResponse> ParseResponseJson(std::string_view line);

// {"v":1,"type":"mutate","id":N,"op":"insert","doc":"..."} (a delete
// carries "doc_id" instead of "doc"; compact/reload carry neither) and
// the response mirror {"v":1,"type":"mutate_response","id":N,
// "op":"insert","status":"ok","doc_id":N,"generation":N,"error":...}.
std::string MutateToJson(const MutateRequest& request);
std::string MutateResponseToJson(const MutateResponse& response);
Result<MutateRequest> ParseMutateJson(std::string_view line);
Result<MutateResponse> ParseMutateResponseJson(std::string_view line);

// --- query text ------------------------------------------------------------

// One line of the human query form: 'PATTERN' (findall) or
// 'KIND PATTERN' with KIND in {findall, contains, match, ms, mismatch,
// edit}. KIND may carry an error-budget suffix 'KIND:ERRORS'
// (approximate kinds only, e.g. "mismatch:2 abra") and/or a per-query
// deadline suffix 'KIND@MS' (milliseconds, e.g. "findall@250 abra";
// combined: "edit:1@250 abra"). Blank lines and '#' comments yield
// nullopt. `min_len` seeds Query::min_len for match queries.
std::optional<Query> ParseQueryText(std::string_view line, uint32_t min_len);

// Human rendering of one answer, e.g. "4 occurrence(s) 0 4 8 12" or
// "ERROR: ...". At most `max_listed` hits are listed, then
// "(+k more)"; pass SIZE_MAX to list everything. Shared by the CLI's
// query and batch printers.
void PrintResultSummary(std::ostream& out, const Query& query,
                        const QueryResult& result,
                        size_t max_listed = 16);

}  // namespace spine::core::wire

#endif  // SPINE_CORE_WIRE_H_
