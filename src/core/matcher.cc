#include "core/matcher.h"

#include "common/check.h"

namespace spine {

std::vector<MaximalMatch> FindMaximalMatches(const SpineIndex& index,
                                             std::string_view query,
                                             uint32_t min_len,
                                             SearchStats* stats) {
  SPINE_CHECK(min_len >= 1);
  return GenericFindMaximalMatches(index, query, min_len, stats);
}

std::vector<MatchOccurrences> CollectAllOccurrences(
    const SpineIndex& index, const std::vector<MaximalMatch>& matches) {
  return GenericCollectAllOccurrences(index, matches);
}

}  // namespace spine
