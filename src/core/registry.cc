#include "core/registry.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <utility>

#include "compact/serializer.h"
#include "core/adapters.h"
#include "shard/dynamic_family.h"
#include "shard/sharded_index.h"
#include "storage/mmap_region.h"

namespace spine::core {

namespace {

constexpr uint32_t kCompactMagic = 0x53504e45;     // "SPNE"
constexpr uint32_t kGeneralizedMagic = 0x53504e47; // "SPNG"
constexpr uint32_t kDiskSpineMeta = 0x5350444d;    // "SPDM"
constexpr uint32_t kDiskTreeMeta = 0x53544d44;     // "STMD"

// N in-process opens of one artifact share a single mapping (the
// storage::MmapRegion::MapShared weak cache), with populate/hugepage
// toggles carried through from the open spec.
storage::MmapOptions MmapOptionsFrom(const OpenOptions& options) {
  storage::MmapOptions mmap_options;
  mmap_options.populate = options.populate;
  mmap_options.hugepage = options.hugepage;
  return mmap_options;
}

Result<std::unique_ptr<Index>> OpenCompact(const std::string& path,
                                           const OpenOptions& options) {
  if (options.mode == OpenMode::kMmap) {
    Result<std::shared_ptr<storage::MmapRegion>> region =
        storage::MmapRegion::MapShared(path, MmapOptionsFrom(options));
    if (!region.ok()) return region.status();
    Result<CompactSpineIndex> index = LoadCompactSpineFromMemory(
        (*region)->data(), (*region)->size(), options.verify, *region);
    if (!index.ok()) return index.status();
    return std::unique_ptr<Index>(
        new CompactSpineAdapter(std::move(*index), std::move(*region)));
  }
  Result<CompactSpineIndex> index = LoadCompactSpine(path);
  if (!index.ok()) return index.status();
  return std::unique_ptr<Index>(
      new CompactSpineAdapter(std::move(*index)));
}

Result<std::unique_ptr<Index>> OpenGeneralizedCompact(
    const std::string& path, const OpenOptions& options) {
  if (options.mode == OpenMode::kMmap) {
    Result<std::shared_ptr<storage::MmapRegion>> region =
        storage::MmapRegion::MapShared(path, MmapOptionsFrom(options));
    if (!region.ok()) return region.status();
    Result<GeneralizedCompactSpine> index =
        GeneralizedCompactSpine::LoadFromMemory(
            (*region)->data(), (*region)->size(), options.verify, *region);
    if (!index.ok()) return index.status();
    return std::unique_ptr<Index>(
        new GeneralizedCompactAdapter(std::move(*index), std::move(*region)));
  }
  Result<GeneralizedCompactSpine> index = GeneralizedCompactSpine::Load(path);
  if (!index.ok()) return index.status();
  return std::unique_ptr<Index>(
      new GeneralizedCompactAdapter(std::move(*index)));
}

Result<std::unique_ptr<Index>> OpenDiskSpine(const std::string& path,
                                             const OpenOptions& options) {
  storage::DiskSpine::Options disk_options;
  if (options.mode == OpenMode::kMmap) {
    disk_options.backend = storage::MmapIoBackend();
  }
  Result<std::unique_ptr<storage::DiskSpine>> index =
      storage::DiskSpine::Open(path, disk_options);
  if (!index.ok()) return index.status();
  return std::unique_ptr<Index>(new DiskSpineAdapter(std::move(*index)));
}

Result<std::unique_ptr<Index>> OpenDiskSuffixTree(const std::string& path,
                                                  const OpenOptions& options) {
  storage::DiskSuffixTree::Options tree_options;
  if (options.mode == OpenMode::kMmap) {
    tree_options.backend = storage::MmapIoBackend();
  }
  Result<std::unique_ptr<storage::DiskSuffixTree>> tree =
      storage::DiskSuffixTree::Open(path, tree_options);
  if (!tree.ok()) return tree.status();
  return std::unique_ptr<Index>(new DiskSuffixTreeAdapter(std::move(*tree)));
}

Result<std::unique_ptr<Index>> OpenDynamic(const std::string& path,
                                           const OpenOptions& options) {
  shard::DynamicFamily::Options family_options;
  family_options.open = options;
  Result<std::unique_ptr<shard::DynamicFamily>> family =
      shard::DynamicFamily::Open(path, family_options);
  if (!family.ok()) return family.status();
  return std::unique_ptr<Index>(std::move(*family));
}

// Both family flavors share the "SPFM" magic; the version field right
// behind it says which lifecycle wrote the manifest (v1 static
// ShardedIndex, v2 DynamicFamily generation pointer).
Result<std::unique_ptr<Index>> OpenSharded(const std::string& path,
                                           const OpenOptions& options) {
  uint32_t version = 0;
  {
    std::ifstream probe(path, std::ios::binary);
    if (!probe) {
      return Status::IoError("cannot open " + path + ": " +
                             std::strerror(errno));
    }
    probe.seekg(sizeof(uint32_t));
    probe.read(reinterpret_cast<char*>(&version), sizeof(version));
    if (!probe) {
      return Status::Corruption(path + " is too short to hold a manifest");
    }
  }
  if (version == shard::kDynamicManifestVersion) {
    return OpenDynamic(path, options);
  }
  Result<std::unique_ptr<shard::ShardedIndex>> index =
      shard::ShardedIndex::Load(path, options);
  if (!index.ok()) return index.status();
  return std::unique_ptr<Index>(std::move(*index));
}

}  // namespace

BackendRegistry::BackendRegistry() {
  backends_ = {
      {IndexKind::kCompactSpine, IndexKindName(IndexKind::kCompactSpine),
       kCompactMagic, 0, "compact image", &OpenCompact},
      {IndexKind::kGeneralizedCompact,
       IndexKindName(IndexKind::kGeneralizedCompact), kGeneralizedMagic, 0,
       "generalized compact image", &OpenGeneralizedCompact},
      {IndexKind::kDiskSpine, IndexKindName(IndexKind::kDiskSpine),
       kPageFileMagic, kDiskSpineMeta, "disk spine", &OpenDiskSpine},
      {IndexKind::kDiskSuffixTree,
       IndexKindName(IndexKind::kDiskSuffixTree), kPageFileMagic,
       kDiskTreeMeta, "disk suffix tree", &OpenDiskSuffixTree},
      {IndexKind::kSharded, IndexKindName(IndexKind::kSharded),
       shard::kShardManifestMagic, 0, "sharded family manifest",
       &OpenSharded},
      // Same file magic as kSharded (OpenSharded routes on the version
      // field); listed so --backend=dynamic can force the open and so
      // diagnostics can name the kind. FindByMagic-style scans hit the
      // kSharded row first, which dispatches correctly for both.
      {IndexKind::kDynamic, IndexKindName(IndexKind::kDynamic), 0, 0,
       "dynamic family manifest", &OpenDynamic},
      // Memory-built backends: addressable by name for diagnostics,
      // but with no on-disk artifact to open.
      {IndexKind::kSpine, IndexKindName(IndexKind::kSpine), 0, 0,
       "in-memory reference index", nullptr},
      {IndexKind::kGeneralizedSpine,
       IndexKindName(IndexKind::kGeneralizedSpine), 0, 0,
       "in-memory generalized index", nullptr},
      {IndexKind::kSuffixTree, IndexKindName(IndexKind::kSuffixTree), 0, 0,
       "in-memory suffix tree", nullptr},
      {IndexKind::kCompactDawg, IndexKindName(IndexKind::kCompactDawg), 0, 0,
       "in-memory CDAWG", nullptr},
      {IndexKind::kNaive, IndexKindName(IndexKind::kNaive), 0, 0,
       "brute-force oracle", nullptr},
  };
}

const BackendRegistry& BackendRegistry::Default() {
  static const BackendRegistry* const registry = new BackendRegistry();
  return *registry;
}

const BackendInfo* BackendRegistry::FindByName(std::string_view name) const {
  for (const BackendInfo& info : backends_) {
    if (info.name == name) return &info;
  }
  return nullptr;
}

const BackendInfo* BackendRegistry::FindByKind(IndexKind kind) const {
  for (const BackendInfo& info : backends_) {
    if (info.kind == kind) return &info;
  }
  return nullptr;
}

Result<uint32_t> BackendRegistry::SniffMagic(const std::string& path) {
  std::ifstream probe(path, std::ios::binary);
  if (!probe) {
    return Status::IoError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  uint32_t magic = 0;
  probe.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!probe) {
    return Status::Corruption(path + " is too short to hold an index");
  }
  return magic;
}

namespace {

// Every successful open reports the spec it used, so `spine stats` and
// the server snapshot can tell a heap copy from a live mapping.
Result<std::unique_ptr<Index>> Stamp(Result<std::unique_ptr<Index>> opened,
                                     const OpenOptions& options) {
  if (opened.ok()) (*opened)->set_open_mode(OpenOptionsName(options));
  return opened;
}

}  // namespace

Result<std::unique_ptr<Index>> BackendRegistry::Open(
    const std::string& path, const OpenOptions& options) const {
  Result<uint32_t> magic = SniffMagic(path);
  if (!magic.ok()) return magic.status();

  if (*magic == kPageFileMagic) {
    // Page files are shared between disk backends; the metadata sidecar
    // says which one persisted this file.
    Result<uint32_t> meta = SniffMagic(path + ".meta");
    if (!meta.ok()) {
      if (meta.status().code() == StatusCode::kIoError) {
        return Status::InvalidArgument(
            path + " is a page file with no metadata sidecar (" + path +
            ".meta); cannot open as an index");
      }
      return Status::Corruption(path + ".meta is truncated");
    }
    for (const BackendInfo& info : backends_) {
      if (info.file_magic == kPageFileMagic && info.meta_magic == *meta) {
        return Stamp(info.open(path, options), options);
      }
    }
    return Status::Corruption("unrecognized metadata magic in " + path +
                              ".meta");
  }

  for (const BackendInfo& info : backends_) {
    if (info.file_magic != 0 && info.file_magic == *magic &&
        info.meta_magic == 0) {
      return Stamp(info.open(path, options), options);
    }
  }
  return Status::Corruption(
      path + ": unrecognized magic (expected a compact image, a page file "
             "or a shard manifest)");
}

Result<std::unique_ptr<Index>> BackendRegistry::OpenAs(
    std::string_view name, const std::string& path,
    const OpenOptions& options) const {
  const BackendInfo* info = FindByName(name);
  if (info == nullptr) {
    return Status::InvalidArgument("unknown backend '" + std::string(name) +
                                   "'");
  }
  if (info->open == nullptr) {
    return Status::InvalidArgument("backend '" + std::string(name) +
                                   "' has no on-disk artifact to open");
  }
  return Stamp(info->open(path, options), options);
}

}  // namespace spine::core
