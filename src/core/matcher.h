// Streaming matcher: finds all maximal matching substrings between an
// indexed data string and a query string (the "complex matching
// operation" of Section 4, the core of genome alignment tools).
//
// The matcher streams the query once, maintaining the invariant that the
// current state (node, pathlen) describes the longest suffix of the
// processed query that is a substring of the data string, with the node
// being the end of that substring's first occurrence. On a mismatch the
// match is reported and the suffix set is shrunk *set-wise*: one hop per
// link-chain node rather than one hop per suffix, which is where SPINE
// checks far fewer nodes than a suffix tree (Section 4.1 / Table 6).
//
// A reported match (query_pos, length) is maximal: it cannot be extended
// to the right (the next query character mismatches or the query ends)
// and it is not a suffix of a longer reported match.

#ifndef SPINE_CORE_MATCHER_H_
#define SPINE_CORE_MATCHER_H_

#include <cstdint>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/cancel.h"
#include "core/search.h"
#include "core/spine_index.h"

namespace spine {

struct MaximalMatch {
  uint32_t query_pos = 0;   // start offset in the query
  uint32_t length = 0;
  NodeId first_end = 0;     // end node of the first occurrence in the data

  bool operator==(const MaximalMatch&) const = default;
};

// All maximal matches of length >= min_len between the indexed string and
// `query`. Query characters outside the alphabet act as universal
// mismatches. min_len must be >= 1.
std::vector<MaximalMatch> FindMaximalMatches(const SpineIndex& index,
                                             std::string_view query,
                                             uint32_t min_len,
                                             SearchStats* stats = nullptr);

// One occurrence of a maximal match within the data string.
struct MatchOccurrences {
  MaximalMatch match;
  std::vector<uint32_t> data_positions;  // start offsets in the data string
};

// Expands every match to all of its occurrences in the data string using
// the paper's deferred technique: a single sequential scan of the
// backbone serving all matches concurrently (Section 4).
std::vector<MatchOccurrences> CollectAllOccurrences(
    const SpineIndex& index, const std::vector<MaximalMatch>& matches);

// ---------------------------------------------------------------------
// Generic versions, usable with any index exposing the search interface
// documented in core/search.h (CompactSpineIndex, storage::DiskSpine).
// ---------------------------------------------------------------------

template <typename Index>
std::vector<MaximalMatch> GenericFindMaximalMatches(
    const Index& index, std::string_view query, uint32_t min_len,
    SearchStats* stats = nullptr, const CancelToken* cancel = nullptr) {
  std::vector<MaximalMatch> out;
  const Alphabet& alphabet = index.alphabet();
  NodeId node = kRootNode;
  uint32_t pathlen = 0;
  CancelCheckpoint checkpoint(cancel);
  auto report = [&](uint32_t end_pos) {
    if (pathlen >= min_len) out.push_back({end_pos - pathlen, pathlen, node});
  };
  // Word-parallel fast path: runs of matching vertebras are consumed in
  // bulk by the active comparison kernel (kernel/kernel.h); the
  // per-step loop below only resolves run boundaries (mismatch, rib
  // thresholds, link shrinking). Answers and SearchStats are identical
  // to the per-step walk.
  [[maybe_unused]] std::optional<kernel::EncodedPattern> encoded;
  if constexpr (KernelAccelerated<Index>) encoded.emplace(alphabet, query);
  for (uint32_t i = 0; i < query.size(); ++i) {
    // One poll per query character bounds the overshoot even when the
    // link-shrink inner loop below is long (its depth is bounded by the
    // current pathlen, which the outer loop grows one step at a time).
    if (checkpoint.ShouldStop()) return {};
    if constexpr (KernelAccelerated<Index>) {
      const uint32_t run = index.MatchVertebraRun(node, *encoded, i);
      if (run > 0) {
        if (stats != nullptr) stats->nodes_checked += run;
        node += run;
        pathlen += run;
        i += run;
        if (i >= query.size()) break;
      }
    }
    Code c = alphabet.Encode(query[i]);
    if (c == kInvalidCode) {
      report(i);
      node = kRootNode;
      pathlen = 0;
      continue;
    }
    bool reported = false;
    while (true) {
      StepResult step = index.Step(node, c, pathlen, stats);
      if (step.ok) {
        node = step.dest;
        ++pathlen;
        break;
      }
      if (!reported) {
        report(i);
        reported = true;
      }
      if (step.has_edge) {
        node = step.fallback_dest;
        pathlen = step.fallback_pt + 1;
        if constexpr (NodePrefetchable<Index>) index.PrefetchNode(node);
        break;
      }
      if (node == kRootNode) break;
      pathlen = index.LinkLel(node);
      node = index.LinkDest(node);
      if constexpr (NodePrefetchable<Index>) index.PrefetchNode(node);
      if (stats != nullptr) ++stats->link_traversals;
    }
  }
  if (pathlen >= min_len) {
    out.push_back(
        {static_cast<uint32_t>(query.size()) - pathlen, pathlen, node});
  }
  return out;
}

// Matching statistics (Chang-Lawler): ms[q] = length of the longest
// prefix of query[q..] that occurs anywhere in the indexed string.
// Computed in one streaming pass using the same set-based shrinking as
// the maximal-match finder; maximal matches are exactly the positions
// where ms[q] >= min_len and ms[q-1] <= ms[q].
template <typename Index>
std::vector<uint32_t> GenericMatchingStatistics(
    const Index& index, std::string_view query, SearchStats* stats = nullptr,
    const CancelToken* cancel = nullptr) {
  // Derived from the maximal matches via the O(n) decay rule. Each
  // maximal match is uniquely identified by its query start (two
  // right-maximal matches sharing a start would make the shorter one
  // extendable), so seeding ms[start] = length and sweeping
  // ms[q] = max(ms[q], ms[q-1] - 1) left-to-right computes
  // max over covering matches of (match_end - q) in one pass — the
  // per-match inner loop this replaces was quadratic on highly
  // repetitive queries where long matches overlap densely.
  std::vector<uint32_t> ms(query.size(), 0);
  for (const MaximalMatch& match :
       GenericFindMaximalMatches(index, query, 1, stats, cancel)) {
    ms[match.query_pos] = match.length;
  }
  for (size_t q = 1; q < ms.size(); ++q) {
    if (ms[q - 1] > 1 && ms[q - 1] - 1 > ms[q]) ms[q] = ms[q - 1] - 1;
  }
  return ms;
}

template <typename Index>
std::vector<MatchOccurrences> GenericCollectAllOccurrences(
    const Index& index, const std::vector<MaximalMatch>& matches,
    const CancelToken* cancel = nullptr) {
  std::vector<MatchOccurrences> results(matches.size());
  std::unordered_map<NodeId, std::vector<uint32_t>> watch;
  for (uint32_t idx = 0; idx < matches.size(); ++idx) {
    results[idx].match = matches[idx];
    results[idx].data_positions.push_back(matches[idx].first_end -
                                          matches[idx].length);
    watch[matches[idx].first_end].push_back(idx);
  }
  if (matches.empty()) return results;
  const NodeId n = static_cast<NodeId>(index.size());
  std::vector<uint32_t> newly_matched;
  // The other O(n) full-backbone scan (besides GenericFindAll's); same
  // checkpoint discipline.
  CancelCheckpoint checkpoint(cancel);
  for (NodeId j = 1; j <= n; ++j) {
    if (checkpoint.ShouldStop()) return {};
    const uint32_t lel = index.LinkLel(j);
    if (lel == 0) continue;
    auto it = watch.find(index.LinkDest(j));
    if (it == watch.end()) continue;
    newly_matched.clear();
    for (uint32_t idx : it->second) {
      if (matches[idx].length <= lel) {
        results[idx].data_positions.push_back(j - matches[idx].length);
        newly_matched.push_back(idx);
      }
    }
    if (!newly_matched.empty()) {
      std::vector<uint32_t>& at_j = watch[j];
      at_j.insert(at_j.end(), newly_matched.begin(), newly_matched.end());
    }
  }
  return results;
}

// ---------------------------------------------------------------------
// Classical string problems that fall out of the SPINE structure.
// ---------------------------------------------------------------------

struct RepeatedSubstring {
  uint32_t first_end = 0;  // end position of the FIRST occurrence
  uint32_t length = 0;
};

// Longest substring occurring at least twice in the indexed string.
// On SPINE this is simply the maximum LEL over the backbone: LEL(i) is
// by definition the longest suffix of s[0..i) that occurred earlier.
// O(n), no extra memory.
template <typename Index>
RepeatedSubstring LongestRepeatedSubstring(const Index& index) {
  RepeatedSubstring best;
  const NodeId n = static_cast<NodeId>(index.size());
  for (NodeId i = 1; i <= n; ++i) {
    uint32_t lel = index.LinkLel(i);
    if (lel > best.length) {
      best.length = lel;
      best.first_end = index.LinkDest(i);
    }
  }
  return best;
}

// Longest common substring of the indexed string and `query`: the
// largest matching statistic, i.e. the longest maximal match.
template <typename Index>
MaximalMatch LongestCommonSubstring(const Index& index,
                                    std::string_view query,
                                    SearchStats* stats = nullptr) {
  MaximalMatch best;
  for (const MaximalMatch& match :
       GenericFindMaximalMatches(index, query, 1, stats)) {
    if (match.length > best.length) best = match;
  }
  return best;
}

}  // namespace spine

#endif  // SPINE_CORE_MATCHER_H_
