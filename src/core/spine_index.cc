#include "core/spine_index.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"
#include "core/search.h"

namespace spine {

SpineIndex::SpineIndex(const Alphabet& alphabet)
    : alphabet_(alphabet), codes_(alphabet.bits_per_code()) {
  // Node 0 (root) exists from the start; its link entries are unused.
  link_dest_.push_back(kNoNode);
  link_lel_.push_back(0);
}

void SpineIndex::SetLink(NodeId node, NodeId dest, uint32_t lel) {
  SPINE_DCHECK(node == link_dest_.size() - 1);
  SPINE_DCHECK(dest < node);
  link_dest_[node] = dest;
  link_lel_[node] = lel;
}

Status SpineIndex::Append(char ch) {
  Code c = alphabet_.Encode(ch);
  if (c == kInvalidCode) {
    return Status::InvalidArgument(
        std::string("character '") + ch + "' is not in the " +
        alphabet_.name() + " alphabet");
  }
  const NodeId old_tail = static_cast<NodeId>(size());
  const NodeId t = old_tail + 1;

  // Grow the backbone: vertebra old_tail -> t labeled c.
  codes_.Append(c);
  link_dest_.push_back(kNoNode);
  link_lel_.push_back(0);

  if (old_tail == kRootNode) {
    // First character: the only suffix is end-terminating.
    SetLink(t, kRootNode, 0);
    return Status::OK();
  }

  // Walk the link chain starting from the old tail. Invariant on entry
  // to each iteration: the suffixes of s[0..old_tail) still requiring an
  // explicit extension edge for c have lengths in (LEL(w), L], and all of
  // them terminate at node w.
  NodeId w = link_dest_[old_tail];
  uint32_t lel = link_lel_[old_tail];
  while (true) {
    // Vertebra at w?
    if (codes_.Get(w) == c) {
      // Every pending suffix, extended by c, first-ends at w + 1.
      SetLink(t, w + 1, lel + 1);
      return Status::OK();
    }
    auto rib_it = ribs_.find(RibKey(w, c));
    if (rib_it == ribs_.end()) {
      // No edge: record the extension of the pending suffix set.
      ribs_.emplace(RibKey(w, c), Rib{t, lel});
      if (w == kRootNode) {
        // First occurrence of character c in the whole string.
        SPINE_DCHECK(lel == 0);
        SetLink(t, kRootNode, 0);
        return Status::OK();
      }
      // Shorter suffixes terminate further up the chain.
      lel = link_lel_[w];
      w = link_dest_[w];
      continue;
    }

    Rib& rib = rib_it->second;
    if (rib.pt >= lel) {
      // The pre-existing rib already covers every pending length.
      SetLink(t, rib.dest, lel + 1);
      return Status::OK();
    }

    // Threshold failure: the rib only covers lengths <= rib.pt < L.
    // Walk the (shared) extrib chain from the rib's destination looking
    // for a sibling (PRT == rib.pt) that covers length L.
    NodeId last_sibling_dest = rib.dest;  // the rib itself, conceptually
    uint32_t last_sibling_pt = rib.pt;
    NodeId x = rib.dest;
    while (true) {
      auto ext_it = extribs_.find(x);
      if (ext_it == extribs_.end()) break;
      const Extrib& e = ext_it->second;
      if (e.prt == rib.pt && e.parent_dest == rib.dest) {
        if (e.pt >= lel) {
          // This extension already covers the pending lengths.
          SetLink(t, e.dest, lel + 1);
          return Status::OK();
        }
        last_sibling_dest = e.dest;
        last_sibling_pt = e.pt;
      }
      x = e.dest;
    }
    // No extension covers length L: append a new extrib at the chain end
    // covering lengths (last_sibling_pt, L]. The longest suffix of the
    // *new* prefix that occurred before is (length last_sibling_pt) + c.
    extribs_.emplace(x, Extrib{t, lel, rib.pt, /*parent_dest=*/rib.dest});
    SetLink(t, last_sibling_dest, last_sibling_pt + 1);
    return Status::OK();
  }
}

Status SpineIndex::AppendString(std::string_view s) {
  for (char ch : s) {
    SPINE_RETURN_IF_ERROR(Append(ch));
  }
  return Status::OK();
}

std::string SpineIndex::ReconstructString() const {
  std::string out;
  out.reserve(size());
  for (uint64_t i = 0; i < size(); ++i) out.push_back(CharAt(i));
  return out;
}

const SpineIndex::Rib* SpineIndex::FindRib(NodeId node, Code c) const {
  auto it = ribs_.find(RibKey(node, c));
  return it == ribs_.end() ? nullptr : &it->second;
}

const SpineIndex::Extrib* SpineIndex::FindExtrib(NodeId node) const {
  auto it = extribs_.find(node);
  return it == extribs_.end() ? nullptr : &it->second;
}

uint64_t SpineIndex::MemoryBytes() const {
  // Container book-keeping approximated by typical libstdc++ overheads.
  constexpr uint64_t kHashNodeOverhead = 16;  // bucket ptr + node next ptr
  return codes_.MemoryBytes() +
         link_dest_.size() * sizeof(NodeId) +
         link_lel_.size() * sizeof(uint32_t) +
         ribs_.size() * (sizeof(uint64_t) + sizeof(Rib) + kHashNodeOverhead) +
         extribs_.size() *
             (sizeof(NodeId) + sizeof(Extrib) + kHashNodeOverhead);
}

uint32_t SpineIndex::MatchVertebraRun(NodeId node,
                                      const kernel::EncodedPattern& pattern,
                                      size_t pattern_pos) const {
  const uint64_t limit = std::min<uint64_t>(
      pattern.ValidRunLength(pattern_pos), size() - node);
  if (limit == 0) return 0;
  const uint32_t bits = codes_.bits_per_code();
  return static_cast<uint32_t>(kernel::MatchRunPacked(
      codes_.words().data(), codes_.words().size(),
      static_cast<uint64_t>(node) * bits, pattern.packed().words().data(),
      pattern.packed().words().size(),
      static_cast<uint64_t>(pattern_pos) * bits, limit, bits));
}

StepResult SpineIndex::Step(NodeId node, Code c, uint32_t pathlen,
                                        SearchStats* stats) const {
  StepResult result;
  if (stats != nullptr) ++stats->nodes_checked;
  if (node < size() && codes_.Get(node) == c) {
    // Vertebras are unconditionally traversable.
    result.ok = true;
    result.has_edge = true;
    result.dest = node + 1;
    return result;
  }
  const Rib* rib = FindRib(node, c);
  if (rib == nullptr) return result;
  result.has_edge = true;
  if (pathlen <= rib->pt) {
    result.ok = true;
    result.dest = rib->dest;
    return result;
  }
  // Threshold failed: consult the extrib chain for a covering sibling.
  result.fallback_dest = rib->dest;
  result.fallback_pt = rib->pt;
  NodeId x = rib->dest;
  while (true) {
    const Extrib* e = FindExtrib(x);
    if (e == nullptr) break;
    if (stats != nullptr) ++stats->chain_hops;
    if (e->prt == rib->pt && e->parent_dest == rib->dest) {
      if (e->pt >= pathlen) {
        result.ok = true;
        result.dest = e->dest;
        return result;
      }
      result.fallback_dest = e->dest;
      result.fallback_pt = e->pt;
    }
    x = e->dest;
  }
  return result;  // has_edge, not ok: caller may shrink to fallback_pt.
}

bool SpineIndex::Contains(std::string_view pattern) const {
  return FindFirstEnd(pattern).has_value();
}

std::optional<NodeId> SpineIndex::FindFirstEnd(std::string_view pattern,
                                               SearchStats* stats) const {
  return GenericFindFirstEnd(*this, pattern, stats);
}

std::vector<uint32_t> SpineIndex::FindAll(std::string_view pattern,
                                          SearchStats* stats) const {
  return GenericFindAll(*this, pattern, stats);
}

Status SpineIndex::Validate() const {
  const NodeId n = static_cast<NodeId>(size());
  for (NodeId i = 1; i <= n; ++i) {
    if (link_dest_[i] >= i) {
      return Status::Corruption("link at node " + std::to_string(i) +
                                " does not point upstream");
    }
    if (link_lel_[i] + 1 > i) {
      return Status::Corruption("LEL at node " + std::to_string(i) +
                                " exceeds prefix length - 1");
    }
    if ((link_lel_[i] == 0) != (link_dest_[i] == kRootNode)) {
      return Status::Corruption("LEL/root mismatch at node " +
                                std::to_string(i));
    }
    if (link_lel_[i] > link_dest_[i]) {
      return Status::Corruption("LEL at node " + std::to_string(i) +
                                " longer than its destination prefix");
    }
  }
  for (const auto& [key, rib] : ribs_) {
    const NodeId source = static_cast<NodeId>(key >> 8);
    if (rib.dest <= source) {
      return Status::Corruption("rib at node " + std::to_string(source) +
                                " does not point downstream");
    }
    if (source != kRootNode && rib.pt <= link_lel_[source]) {
      return Status::Corruption(
          "rib PT at node " + std::to_string(source) +
          " does not exceed the node's LEL (covers nothing)");
    }
    if (source == kRootNode && rib.pt != 0) {
      return Status::Corruption("root rib with non-zero PT");
    }
  }
  for (const auto& [source, e] : extribs_) {
    if (e.dest <= source) {
      return Status::Corruption("extrib at node " + std::to_string(source) +
                                " does not point downstream");
    }
    if (e.prt >= e.pt) {
      return Status::Corruption("extrib at node " + std::to_string(source) +
                                " has PRT >= PT");
    }
  }
  return Status::OK();
}

std::string SpineIndex::DebugString() const {
  std::ostringstream out;
  const NodeId n = static_cast<NodeId>(size());
  out << "SpineIndex over \"" << ReconstructString() << "\" (" << n
      << " nodes)\n";
  for (NodeId i = 0; i <= n; ++i) {
    out << "node " << i;
    if (i < n) out << "  vertebra '" << CharAt(i) << "' -> " << (i + 1);
    if (i != kRootNode) {
      out << "  link -> " << link_dest_[i] << " (LEL " << link_lel_[i] << ")";
    }
    for (uint32_t c = 0; c < alphabet_.size(); ++c) {
      const Rib* rib = FindRib(i, static_cast<Code>(c));
      if (rib != nullptr) {
        out << "  rib '" << alphabet_.Decode(static_cast<Code>(c)) << "' -> "
            << rib->dest << " (PT " << rib->pt << ")";
      }
    }
    const Extrib* e = FindExtrib(i);
    if (e != nullptr) {
      out << "  extrib -> " << e->dest << " (PT " << e->pt << ", PRT "
          << e->prt << ")";
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace spine
