// Generic SPINE search algorithms, shared by every index implementation
// (reference SpineIndex, CompactSpineIndex, storage::DiskSpine).
//
// An Index must provide:
//   const Alphabet& alphabet() const;
//   uint64_t size() const;
//   NodeId LinkDest(NodeId) const;   uint32_t LinkLel(NodeId) const;
//   StepResult Step(NodeId, Code, uint32_t pathlen, SearchStats*) const;

#ifndef SPINE_CORE_SEARCH_H_
#define SPINE_CORE_SEARCH_H_

#include <algorithm>
#include <optional>
#include <string_view>
#include <vector>

#include "core/spine_index.h"

namespace spine {

// End node (== end position) of the first occurrence of `pattern`.
template <typename Index>
std::optional<NodeId> GenericFindFirstEnd(const Index& index,
                                          std::string_view pattern,
                                          SearchStats* stats = nullptr) {
  NodeId node = kRootNode;
  uint32_t pathlen = 0;
  for (char ch : pattern) {
    Code c = index.alphabet().Encode(ch);
    if (c == kInvalidCode) return std::nullopt;
    StepResult step = index.Step(node, c, pathlen, stats);
    if (!step.ok) return std::nullopt;
    node = step.dest;
    ++pathlen;
  }
  return node;
}

// All start positions via the paper's target-node-buffer backbone scan.
template <typename Index>
std::vector<uint32_t> GenericFindAll(const Index& index,
                                     std::string_view pattern,
                                     SearchStats* stats = nullptr) {
  std::vector<uint32_t> starts;
  if (pattern.empty()) return starts;
  std::optional<NodeId> first = GenericFindFirstEnd(index, pattern, stats);
  if (!first.has_value()) return starts;
  const uint32_t m = static_cast<uint32_t>(pattern.size());
  std::vector<NodeId> buffer = {*first};
  const NodeId n = static_cast<NodeId>(index.size());
  for (NodeId j = *first + 1; j <= n; ++j) {
    if (index.LinkLel(j) < m) continue;
    if (std::binary_search(buffer.begin(), buffer.end(), index.LinkDest(j))) {
      buffer.push_back(j);
    }
  }
  starts.reserve(buffer.size());
  for (NodeId end : buffer) starts.push_back(end - m);
  return starts;
}

}  // namespace spine

#endif  // SPINE_CORE_SEARCH_H_
