// Generic SPINE search algorithms, shared by every index implementation
// (reference SpineIndex, CompactSpineIndex, storage::DiskSpine).
//
// An Index must provide:
//   const Alphabet& alphabet() const;
//   uint64_t size() const;
//   NodeId LinkDest(NodeId) const;   uint32_t LinkLel(NodeId) const;
//   StepResult Step(NodeId, Code, uint32_t pathlen, SearchStats*) const;
//
// Two optional capabilities accelerate the walk without changing any
// answer or any SearchStats count (see the concepts below):
//   uint32_t MatchVertebraRun(NodeId, const kernel::EncodedPattern&, size_t)
//       — word-parallel bulk comparison of consecutive vertebra labels
//         via the runtime-dispatched kernels of kernel/kernel.h;
//   void PrefetchNode(NodeId) — prefetch hint ahead of a link/rib hop.

#ifndef SPINE_CORE_SEARCH_H_
#define SPINE_CORE_SEARCH_H_

#include <algorithm>
#include <concepts>
#include <optional>
#include <string_view>
#include <vector>

#include "common/cancel.h"
#include "core/spine_index.h"
#include "kernel/kernel.h"

namespace spine {

// Indexes whose backbone (vertebra) labels can be compared in bulk by
// the active comparison kernel. In-memory backbones (SpineIndex,
// CompactSpineIndex) qualify; paged backends keep the per-step walk so
// their buffer-pool accounting and fault latching stay exact.
template <typename Index>
concept KernelAccelerated =
    requires(const Index& index, const kernel::EncodedPattern& pattern) {
      {
        index.MatchVertebraRun(NodeId{0}, pattern, size_t{0})
      } -> std::convertible_to<uint32_t>;
    };

// Indexes that can warm caches for a node about to be visited.
template <typename Index>
concept NodePrefetchable = requires(const Index& index) {
  index.PrefetchNode(NodeId{0});
};

// Cancellation (common/cancel.h): every generic takes an optional
// CancelToken and polls it through a CancelCheckpoint every
// kCancelCheckInterval iterations of its dominant loop. On a fired
// token the walk returns early with a partial value; the *caller*
// (core/query.h ExecuteQuery) re-checks the token and converts the
// abandonment into a kDeadlineExceeded / kCancelled result, so a
// partial payload is never reported as kOk. With cancel == nullptr the
// checkpoint is a null test — the hot paths stay kernel-speed
// (overhead measured in docs/PERF.md).

// End node (== end position) of the first occurrence of `pattern`.
template <typename Index>
std::optional<NodeId> GenericFindFirstEnd(const Index& index,
                                          std::string_view pattern,
                                          SearchStats* stats = nullptr,
                                          const CancelToken* cancel = nullptr) {
  NodeId node = kRootNode;
  uint32_t pathlen = 0;
  CancelCheckpoint checkpoint(cancel);
  if constexpr (KernelAccelerated<Index>) {
    // Runs of matching vertebras are consumed word-parallel; Step()
    // only resolves the boundary character (rib lookup / mismatch).
    // A run of k matches counts k nodes checked, exactly like k
    // successful Step calls would.
    const kernel::EncodedPattern encoded(index.alphabet(), pattern);
    size_t i = 0;
    while (i < pattern.size()) {
      if (checkpoint.ShouldStop()) return std::nullopt;
      const uint32_t run = index.MatchVertebraRun(node, encoded, i);
      if (run > 0) {
        if (stats != nullptr) stats->nodes_checked += run;
        node += run;
        pathlen += run;
        i += run;
        if (i == pattern.size()) break;
      }
      const Code c = encoded.code(i);
      if (c == kInvalidCode) return std::nullopt;
      const StepResult step = index.Step(node, c, pathlen, stats);
      if (!step.ok) return std::nullopt;
      node = step.dest;
      ++pathlen;
      ++i;
    }
    return node;
  } else {
    for (char ch : pattern) {
      if (checkpoint.ShouldStop()) return std::nullopt;
      Code c = index.alphabet().Encode(ch);
      if (c == kInvalidCode) return std::nullopt;
      StepResult step = index.Step(node, c, pathlen, stats);
      if (!step.ok) return std::nullopt;
      node = step.dest;
      ++pathlen;
    }
    return node;
  }
}

// All start positions via the paper's target-node-buffer backbone scan.
template <typename Index>
std::vector<uint32_t> GenericFindAll(const Index& index,
                                     std::string_view pattern,
                                     SearchStats* stats = nullptr,
                                     const CancelToken* cancel = nullptr) {
  std::vector<uint32_t> starts;
  if (pattern.empty()) return starts;
  std::optional<NodeId> first =
      GenericFindFirstEnd(index, pattern, stats, cancel);
  if (!first.has_value()) return starts;
  const uint32_t m = static_cast<uint32_t>(pattern.size());
  std::vector<NodeId> buffer = {*first};
  const NodeId n = static_cast<NodeId>(index.size());
  // The backbone scan is the unbounded part — O(n) over ALL indexed
  // characters regardless of hit count — so this is where a deadline
  // matters most on huge artifacts.
  CancelCheckpoint checkpoint(cancel);
  for (NodeId j = *first + 1; j <= n; ++j) {
    if (checkpoint.ShouldStop()) return {};
    if (index.LinkLel(j) < m) continue;
    if (std::binary_search(buffer.begin(), buffer.end(), index.LinkDest(j))) {
      buffer.push_back(j);
    }
  }
  starts.reserve(buffer.size());
  for (NodeId end : buffer) starts.push_back(end - m);
  return starts;
}

}  // namespace spine

#endif  // SPINE_CORE_SEARCH_H_
