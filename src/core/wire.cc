#include "core/wire.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "common/check.h"
#include "obs/json.h"

namespace spine::core::wire {

namespace {

// All integers travel little-endian, byte-assembled so the encoding is
// identical on any host.
void PutU8(uint8_t v, std::string* out) {
  out->push_back(static_cast<char>(v));
}
void PutU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}
void PutU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

// Bounds-checked cursor over one frame payload. Every getter fails
// cleanly (sets bad) instead of reading past the end, and counts are
// validated against the bytes actually remaining before any allocation
// — the same discipline as serde::Reader.
class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}

  bool bad() const { return bad_; }
  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return !bad_ && pos_ == data_.size(); }

  uint8_t U8() {
    if (remaining() < 1) return Fail();
    return static_cast<uint8_t>(data_[pos_++]);
  }
  uint32_t U32() {
    if (remaining() < 4) return static_cast<uint32_t>(Fail());
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }
  uint64_t U64() {
    if (remaining() < 8) return Fail();
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }
  // Length-prefixed byte string; the count is checked against the
  // remaining payload before anything is copied.
  std::string Bytes() {
    uint32_t n = U32();
    if (bad_ || n > remaining()) {
      Fail();
      return {};
    }
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }

 private:
  uint64_t Fail() {
    bad_ = true;
    return 0;
  }

  std::string_view data_;
  size_t pos_ = 0;
  bool bad_ = false;
};

Status ProtocolError(std::string what) {
  return Status::ProtocolError(std::move(what));
}

// Frame scaffolding: every Append* builds payload bytes then wraps them
// as  u32 length | u8 version | u8 type | payload.
//
// The cap is an invariant, not an input check: every public encoder
// bounds its payload (AppendResponseFrame degrades oversized results,
// request senders validate the pattern first), so a violation here is a
// bug in an encoder — and without the check it would emit a frame the
// peer's ExtractFrame can never accept (or, past 4 GiB, a silently
// truncated length).
void AppendFrame(FrameType type, std::string_view payload,
                 std::string* out) {
  SPINE_CHECK_MSG(payload.size() + 2 <= kMaxFramePayload,
                  "frame payload exceeds kMaxFramePayload");
  PutU32(static_cast<uint32_t>(payload.size() + 2), out);
  PutU8(kWireVersion, out);
  PutU8(static_cast<uint8_t>(type), out);
  out->append(payload);
}

bool ValidStatusCode(uint8_t code) {
  return code <= static_cast<uint8_t>(StatusCode::kCancelled);
}

bool ValidQueryKind(uint8_t kind) {
  return kind <= static_cast<uint8_t>(QueryKind::kEditDistance);
}

bool ValidMutateOp(uint8_t op) {
  return op >= static_cast<uint8_t>(MutateOp::kInsert) &&
         op <= static_cast<uint8_t>(MutateOp::kReload);
}

std::optional<MutateOp> MutateOpFromName(std::string_view name) {
  for (uint8_t op = static_cast<uint8_t>(MutateOp::kInsert);
       op <= static_cast<uint8_t>(MutateOp::kReload); ++op) {
    if (MutateOpName(static_cast<MutateOp>(op)) == name) {
      return static_cast<MutateOp>(op);
    }
  }
  return std::nullopt;
}

std::optional<StatusCode> StatusCodeFromName(std::string_view name) {
  for (uint8_t c = 0; c <= static_cast<uint8_t>(StatusCode::kCancelled);
       ++c) {
    if (StatusCodeToString(static_cast<StatusCode>(c)) == name) {
      return static_cast<StatusCode>(c);
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<QueryKind> KindFromName(std::string_view name) {
  for (uint8_t k = 0; k <= static_cast<uint8_t>(QueryKind::kEditDistance);
       ++k) {
    if (QueryKindName(static_cast<QueryKind>(k)) == name) {
      return static_cast<QueryKind>(k);
    }
  }
  return std::nullopt;
}

std::string_view MutateOpName(MutateOp op) {
  switch (op) {
    case MutateOp::kInsert: return "insert";
    case MutateOp::kDelete: return "delete";
    case MutateOp::kCompact: return "compact";
    case MutateOp::kReload: return "reload";
  }
  return "unknown";
}

void AppendRequestFrame(const QueryRequest& request, std::string* out) {
  std::string payload;
  PutU64(request.id, &payload);
  PutU8(static_cast<uint8_t>(request.query.kind), &payload);
  PutU32(request.query.min_len, &payload);
  PutU8(request.query.expand_occurrences ? 1 : 0, &payload);
  PutU32(static_cast<uint32_t>(request.query.pattern.size()), &payload);
  payload.append(request.query.pattern);
  // deadline_ms and max_errors trail the pattern so decoders from
  // before either field existed stay byte-compatible: DecodeRequest
  // accepts a payload ending at the pattern (neither field), after a
  // u32 deadline (pre-approx), or after deadline + u32 max_errors —
  // all under the same version byte.
  PutU32(request.query.deadline_ms, &payload);
  PutU32(request.query.max_errors, &payload);
  AppendFrame(FrameType::kQuery, payload, out);
}

void AppendResponseFrame(const QueryResponse& response, std::string* out) {
  const QueryResult& r = response.result;
  // Exact payload size: id(8) status(1) found(1) error(4+n) hits(4+12n)
  // matching_stats(4+4n) work counters(24). A findall with millions of
  // hits or matching stats over a near-cap pattern can exceed the frame
  // cap; such a frame would be rejected by the peer's ExtractFrame
  // before delivery, so degrade to a small, deliverable
  // kResourceExhausted verdict instead of an un-receivable answer.
  const uint64_t payload_size =
      8 + 1 + 1 + (4 + r.error.size()) +
      (4 + static_cast<uint64_t>(r.hits.size()) * 12) +
      (4 + static_cast<uint64_t>(r.matching_stats.size()) * 4) + 24;
  if (payload_size + 2 > kMaxFramePayload) {
    QueryResponse degraded;
    degraded.id = response.id;
    degraded.result.status_code = StatusCode::kResourceExhausted;
    degraded.result.found = r.found;
    degraded.result.stats = r.stats;
    degraded.result.error =
        "response too large for one frame (" +
        std::to_string(r.hits.size()) + " hit(s), " +
        std::to_string(r.matching_stats.size()) +
        " matching stat(s)); narrow the query";
    AppendResponseFrame(degraded, out);
    return;
  }
  std::string payload;
  PutU64(response.id, &payload);
  PutU8(static_cast<uint8_t>(r.status_code), &payload);
  PutU8(r.found ? 1 : 0, &payload);
  PutU32(static_cast<uint32_t>(r.error.size()), &payload);
  payload.append(r.error);
  PutU32(static_cast<uint32_t>(r.hits.size()), &payload);
  for (const Hit& hit : r.hits) {
    PutU32(hit.pos, &payload);
    PutU32(hit.length, &payload);
    PutU32(hit.query_pos, &payload);
  }
  PutU32(static_cast<uint32_t>(r.matching_stats.size()), &payload);
  for (uint32_t v : r.matching_stats) PutU32(v, &payload);
  PutU64(r.stats.nodes_checked, &payload);
  PutU64(r.stats.link_traversals, &payload);
  PutU64(r.stats.chain_hops, &payload);
  AppendFrame(FrameType::kResponse, payload, out);
}

void AppendStatsRequestFrame(std::string* out) {
  AppendFrame(FrameType::kStats, {}, out);
}

void AppendStatsResponseFrame(std::string_view stats_json,
                              std::string* out) {
  AppendFrame(FrameType::kStatsResponse, stats_json, out);
}

void AppendMutateFrame(const MutateRequest& request, std::string* out) {
  std::string payload;
  PutU64(request.id, &payload);
  PutU8(static_cast<uint8_t>(request.op), &payload);
  PutU32(request.doc_id, &payload);
  PutU32(static_cast<uint32_t>(request.document.size()), &payload);
  payload.append(request.document);
  AppendFrame(FrameType::kMutate, payload, out);
}

void AppendMutateResponseFrame(const MutateResponse& response,
                               std::string* out) {
  std::string payload;
  PutU64(response.id, &payload);
  PutU8(static_cast<uint8_t>(response.op), &payload);
  PutU32(response.doc_id, &payload);
  PutU8(static_cast<uint8_t>(response.status), &payload);
  PutU32(static_cast<uint32_t>(response.error.size()), &payload);
  payload.append(response.error);
  PutU64(response.generation, &payload);
  AppendFrame(FrameType::kMutateResponse, payload, out);
}

void AppendErrorFrame(const WireError& error, std::string* out) {
  std::string payload;
  PutU64(error.id, &payload);
  PutU8(static_cast<uint8_t>(error.code), &payload);
  PutU32(static_cast<uint32_t>(error.message.size()), &payload);
  payload.append(error.message);
  AppendFrame(FrameType::kError, payload, out);
}

Status ExtractFrame(std::string_view buffer, Frame* frame,
                    size_t* consumed) {
  *consumed = 0;
  if (buffer.size() < 4) return Status::OK();  // need the length prefix
  uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<uint32_t>(static_cast<uint8_t>(buffer[i]))
              << (8 * i);
  }
  if (length < 2) return ProtocolError("frame shorter than its header");
  if (length > kMaxFramePayload) {
    return ProtocolError("frame length " + std::to_string(length) +
                         " exceeds the " +
                         std::to_string(kMaxFramePayload) + "-byte cap");
  }
  if (buffer.size() < 4 + static_cast<size_t>(length)) {
    return Status::OK();  // partial frame: read more
  }
  const uint8_t version = static_cast<uint8_t>(buffer[4]);
  const uint8_t type = static_cast<uint8_t>(buffer[5]);
  if (version != kWireVersion) {
    return ProtocolError("unsupported wire version " +
                         std::to_string(version) + " (this side speaks " +
                         std::to_string(kWireVersion) + ")");
  }
  if (type < static_cast<uint8_t>(FrameType::kQuery) ||
      type > static_cast<uint8_t>(FrameType::kMutateResponse)) {
    return ProtocolError("unknown frame type " + std::to_string(type));
  }
  frame->version = version;
  frame->type = static_cast<FrameType>(type);
  frame->payload = buffer.substr(6, length - 2);
  *consumed = 4 + static_cast<size_t>(length);
  return Status::OK();
}

Result<QueryRequest> DecodeRequest(std::string_view payload) {
  Cursor cursor(payload);
  QueryRequest request;
  request.id = cursor.U64();
  const uint8_t kind = cursor.U8();
  request.query.min_len = cursor.U32();
  request.query.expand_occurrences = cursor.U8() != 0;
  request.query.pattern = cursor.Bytes();
  // Version-tolerant tail: a payload ending at the pattern predates
  // deadlines (deadline_ms = 0); exactly four more bytes are the u32
  // deadline (pre-approx); exactly eight are deadline + u32 max_errors.
  // Anything else is garbage, not a future extension — extensions bump
  // kWireVersion.
  if (!cursor.bad() &&
      (cursor.remaining() == 4 || cursor.remaining() == 8)) {
    const bool has_errors = cursor.remaining() == 8;
    request.query.deadline_ms = cursor.U32();
    if (has_errors) request.query.max_errors = cursor.U32();
  }
  if (cursor.bad() || !cursor.AtEnd()) {
    return ProtocolError("malformed query request payload");
  }
  if (!ValidQueryKind(kind)) {
    return ProtocolError("unknown query kind " + std::to_string(kind));
  }
  request.query.kind = static_cast<QueryKind>(kind);
  return request;
}

Result<QueryResponse> DecodeResponse(std::string_view payload) {
  Cursor cursor(payload);
  QueryResponse response;
  response.id = cursor.U64();
  const uint8_t code = cursor.U8();
  response.result.found = cursor.U8() != 0;
  response.result.error = cursor.Bytes();
  const uint32_t hit_count = cursor.U32();
  if (cursor.bad() ||
      static_cast<uint64_t>(hit_count) * 12 > cursor.remaining()) {
    return ProtocolError("malformed query response payload");
  }
  response.result.hits.reserve(hit_count);
  for (uint32_t i = 0; i < hit_count; ++i) {
    Hit hit;
    hit.pos = cursor.U32();
    hit.length = cursor.U32();
    hit.query_pos = cursor.U32();
    response.result.hits.push_back(hit);
  }
  const uint32_t ms_count = cursor.U32();
  if (cursor.bad() ||
      static_cast<uint64_t>(ms_count) * 4 > cursor.remaining()) {
    return ProtocolError("malformed query response payload");
  }
  response.result.matching_stats.reserve(ms_count);
  for (uint32_t i = 0; i < ms_count; ++i) {
    response.result.matching_stats.push_back(cursor.U32());
  }
  response.result.stats.nodes_checked = cursor.U64();
  response.result.stats.link_traversals = cursor.U64();
  response.result.stats.chain_hops = cursor.U64();
  if (cursor.bad() || !cursor.AtEnd()) {
    return ProtocolError("malformed query response payload");
  }
  if (!ValidStatusCode(code)) {
    return ProtocolError("unknown status code " + std::to_string(code));
  }
  response.result.status_code = static_cast<StatusCode>(code);
  return response;
}

Result<std::string> DecodeStatsResponse(std::string_view payload) {
  return std::string(payload);
}

Result<MutateRequest> DecodeMutate(std::string_view payload) {
  Cursor cursor(payload);
  MutateRequest request;
  request.id = cursor.U64();
  const uint8_t op = cursor.U8();
  request.doc_id = cursor.U32();
  request.document = cursor.Bytes();
  if (cursor.bad() || !cursor.AtEnd()) {
    return ProtocolError("malformed mutate request payload");
  }
  if (!ValidMutateOp(op)) {
    return ProtocolError("unknown mutate op " + std::to_string(op));
  }
  request.op = static_cast<MutateOp>(op);
  return request;
}

Result<MutateResponse> DecodeMutateResponse(std::string_view payload) {
  Cursor cursor(payload);
  MutateResponse response;
  response.id = cursor.U64();
  const uint8_t op = cursor.U8();
  response.doc_id = cursor.U32();
  const uint8_t code = cursor.U8();
  response.error = cursor.Bytes();
  response.generation = cursor.U64();
  if (cursor.bad() || !cursor.AtEnd()) {
    return ProtocolError("malformed mutate response payload");
  }
  if (!ValidMutateOp(op)) {
    return ProtocolError("unknown mutate op " + std::to_string(op));
  }
  if (!ValidStatusCode(code)) {
    return ProtocolError("unknown status code " + std::to_string(code));
  }
  response.op = static_cast<MutateOp>(op);
  response.status = static_cast<StatusCode>(code);
  return response;
}

Result<WireError> DecodeError(std::string_view payload) {
  Cursor cursor(payload);
  WireError error;
  error.id = cursor.U64();
  const uint8_t code = cursor.U8();
  error.message = cursor.Bytes();
  if (cursor.bad() || !cursor.AtEnd() || !ValidStatusCode(code)) {
    return ProtocolError("malformed error payload");
  }
  error.code = static_cast<StatusCode>(code);
  return error;
}

// --- JSON lines ------------------------------------------------------------

std::string RequestToJson(const QueryRequest& request) {
  obs::JsonWriter json;
  json.BeginObject();
  json.Key("v");
  json.Value(static_cast<uint64_t>(kWireVersion));
  json.Key("type");
  json.Value("query");
  json.Key("id");
  json.Value(request.id);
  json.Key("kind");
  json.Value(QueryKindName(request.query.kind));
  json.Key("pattern");
  json.Value(request.query.pattern);
  json.Key("min_len");
  json.Value(request.query.min_len);
  json.Key("expand");
  json.Value(request.query.expand_occurrences);
  if (request.query.deadline_ms > 0) {
    json.Key("deadline_ms");
    json.Value(request.query.deadline_ms);
  }
  if (request.query.max_errors > 0) {
    json.Key("max_errors");
    json.Value(request.query.max_errors);
  }
  json.EndObject();
  return std::move(json).Finish();
}

std::string ResponseToJson(const QueryResponse& response) {
  const QueryResult& r = response.result;
  obs::JsonWriter json;
  json.BeginObject();
  json.Key("v");
  json.Value(static_cast<uint64_t>(kWireVersion));
  json.Key("type");
  json.Value("response");
  json.Key("id");
  json.Value(response.id);
  json.Key("status");
  json.Value(StatusCodeToString(r.status_code));
  if (!r.ok()) {
    json.Key("error");
    json.Value(r.error);
  }
  json.Key("found");
  json.Value(r.found);
  json.Key("hits");
  json.BeginArray();
  for (const Hit& hit : r.hits) {
    json.BeginObject();
    json.Key("pos");
    json.Value(hit.pos);
    json.Key("len");
    json.Value(hit.length);
    json.Key("qpos");
    json.Value(hit.query_pos);
    json.EndObject();
  }
  json.EndArray();
  if (!r.matching_stats.empty()) {
    json.Key("ms");
    json.BeginArray();
    for (uint32_t v : r.matching_stats) json.Value(v);
    json.EndArray();
  }
  json.Key("nodes_checked");
  json.Value(r.stats.nodes_checked);
  json.EndObject();
  return std::move(json).Finish();
}

namespace {

// Shared preamble of both JSON parsers: strict parse, object check,
// version check. Returns nullptr plus an error status on failure.
Result<obs::JsonValue> ParseEnvelopeJson(std::string_view line,
                                         std::string_view expect_type) {
  Result<obs::JsonValue> doc = obs::ParseJson(line);
  if (!doc.ok()) {
    return ProtocolError("bad JSON line: " + doc.status().message());
  }
  if (!doc->is_object()) return ProtocolError("JSON line is not an object");
  const obs::JsonValue* v = doc->Find("v");
  if (v == nullptr || !v->is_number() ||
      v->number != static_cast<double>(kWireVersion)) {
    return ProtocolError("missing or unsupported JSON envelope version");
  }
  const obs::JsonValue* type = doc->Find("type");
  if (type == nullptr || !type->is_string() ||
      type->string_value != expect_type) {
    return ProtocolError("JSON envelope type is not '" +
                         std::string(expect_type) + "'");
  }
  return doc;
}

}  // namespace

Result<QueryRequest> ParseRequestJson(std::string_view line) {
  Result<obs::JsonValue> doc = ParseEnvelopeJson(line, "query");
  if (!doc.ok()) return doc.status();
  QueryRequest request;
  if (const obs::JsonValue* id = doc->Find("id"); id != nullptr) {
    if (!id->is_number() || id->number < 0) {
      return ProtocolError("JSON request id must be a non-negative number");
    }
    request.id = static_cast<uint64_t>(id->number);
  }
  const obs::JsonValue* kind = doc->Find("kind");
  if (kind != nullptr) {
    if (!kind->is_string()) return ProtocolError("JSON 'kind' not a string");
    std::optional<QueryKind> parsed = KindFromName(kind->string_value);
    if (!parsed) {
      return ProtocolError("unknown query kind '" + kind->string_value +
                           "'");
    }
    request.query.kind = *parsed;
  }
  const obs::JsonValue* pattern = doc->Find("pattern");
  if (pattern == nullptr || !pattern->is_string()) {
    return ProtocolError("JSON request needs a string 'pattern'");
  }
  request.query.pattern = pattern->string_value;
  if (const obs::JsonValue* min_len = doc->Find("min_len");
      min_len != nullptr) {
    if (!min_len->is_number() || min_len->number < 0) {
      return ProtocolError("JSON 'min_len' must be a non-negative number");
    }
    request.query.min_len =
        std::max<uint32_t>(1, static_cast<uint32_t>(min_len->number));
  }
  if (const obs::JsonValue* expand = doc->Find("expand");
      expand != nullptr) {
    if (expand->kind != obs::JsonValue::Kind::kBool) {
      return ProtocolError("JSON 'expand' must be a boolean");
    }
    request.query.expand_occurrences = expand->bool_value;
  }
  if (const obs::JsonValue* deadline = doc->Find("deadline_ms");
      deadline != nullptr) {
    if (!deadline->is_number() || deadline->number < 0) {
      return ProtocolError("JSON 'deadline_ms' must be a non-negative number");
    }
    // Values past u32 clamp to the u32 max (~49.7 days) — already
    // "effectively unbounded", and clamping keeps huge JSON numbers
    // from wrapping into tiny budgets.
    request.query.deadline_ms = static_cast<uint32_t>(std::min(
        deadline->number,
        static_cast<double>(std::numeric_limits<uint32_t>::max())));
  }
  if (const obs::JsonValue* errors = doc->Find("max_errors");
      errors != nullptr) {
    if (!errors->is_number() || errors->number < 0) {
      return ProtocolError("JSON 'max_errors' must be a non-negative number");
    }
    // Clamped like deadline_ms: any budget >= the pattern length is
    // equally degenerate, so huge JSON numbers must not wrap.
    request.query.max_errors = static_cast<uint32_t>(std::min(
        errors->number,
        static_cast<double>(std::numeric_limits<uint32_t>::max())));
  }
  return request;
}

Result<QueryResponse> ParseResponseJson(std::string_view line) {
  Result<obs::JsonValue> doc = ParseEnvelopeJson(line, "response");
  if (!doc.ok()) return doc.status();
  QueryResponse response;
  if (const obs::JsonValue* id = doc->Find("id");
      id != nullptr && id->is_number() && id->number >= 0) {
    response.id = static_cast<uint64_t>(id->number);
  }
  const obs::JsonValue* status = doc->Find("status");
  if (status == nullptr || !status->is_string()) {
    return ProtocolError("JSON response needs a string 'status'");
  }
  std::optional<StatusCode> code = StatusCodeFromName(status->string_value);
  if (!code) {
    return ProtocolError("unknown status '" + status->string_value + "'");
  }
  response.result.status_code = *code;
  if (const obs::JsonValue* error = doc->Find("error");
      error != nullptr && error->is_string()) {
    response.result.error = error->string_value;
  }
  if (const obs::JsonValue* found = doc->Find("found");
      found != nullptr && found->kind == obs::JsonValue::Kind::kBool) {
    response.result.found = found->bool_value;
  }
  if (const obs::JsonValue* hits = doc->Find("hits"); hits != nullptr) {
    if (!hits->is_array()) return ProtocolError("JSON 'hits' not an array");
    for (const obs::JsonValue& entry : hits->array) {
      const obs::JsonValue* pos = entry.Find("pos");
      const obs::JsonValue* len = entry.Find("len");
      const obs::JsonValue* qpos = entry.Find("qpos");
      if (pos == nullptr || !pos->is_number() || len == nullptr ||
          !len->is_number() || qpos == nullptr || !qpos->is_number()) {
        return ProtocolError("malformed JSON hit entry");
      }
      response.result.hits.push_back({static_cast<uint32_t>(pos->number),
                                      static_cast<uint32_t>(len->number),
                                      static_cast<uint32_t>(qpos->number)});
    }
  }
  if (const obs::JsonValue* ms = doc->Find("ms"); ms != nullptr) {
    if (!ms->is_array()) return ProtocolError("JSON 'ms' not an array");
    for (const obs::JsonValue& entry : ms->array) {
      if (!entry.is_number()) return ProtocolError("malformed JSON ms entry");
      response.result.matching_stats.push_back(
          static_cast<uint32_t>(entry.number));
    }
  }
  if (const obs::JsonValue* nodes = doc->Find("nodes_checked");
      nodes != nullptr && nodes->is_number()) {
    response.result.stats.nodes_checked =
        static_cast<uint64_t>(nodes->number);
  }
  return response;
}

std::string MutateToJson(const MutateRequest& request) {
  obs::JsonWriter json;
  json.BeginObject();
  json.Key("v");
  json.Value(static_cast<uint64_t>(kWireVersion));
  json.Key("type");
  json.Value("mutate");
  json.Key("id");
  json.Value(request.id);
  json.Key("op");
  json.Value(MutateOpName(request.op));
  if (request.op == MutateOp::kInsert) {
    json.Key("doc");
    json.Value(request.document);
  } else if (request.op == MutateOp::kDelete) {
    json.Key("doc_id");
    json.Value(request.doc_id);
  }
  json.EndObject();
  return std::move(json).Finish();
}

std::string MutateResponseToJson(const MutateResponse& response) {
  obs::JsonWriter json;
  json.BeginObject();
  json.Key("v");
  json.Value(static_cast<uint64_t>(kWireVersion));
  json.Key("type");
  json.Value("mutate_response");
  json.Key("id");
  json.Value(response.id);
  json.Key("op");
  json.Value(MutateOpName(response.op));
  json.Key("status");
  json.Value(StatusCodeToString(response.status));
  if (response.status != StatusCode::kOk) {
    json.Key("error");
    json.Value(response.error);
  }
  json.Key("doc_id");
  json.Value(response.doc_id);
  json.Key("generation");
  json.Value(response.generation);
  json.EndObject();
  return std::move(json).Finish();
}

Result<MutateRequest> ParseMutateJson(std::string_view line) {
  Result<obs::JsonValue> doc = ParseEnvelopeJson(line, "mutate");
  if (!doc.ok()) return doc.status();
  MutateRequest request;
  if (const obs::JsonValue* id = doc->Find("id"); id != nullptr) {
    if (!id->is_number() || id->number < 0) {
      return ProtocolError("JSON mutate id must be a non-negative number");
    }
    request.id = static_cast<uint64_t>(id->number);
  }
  const obs::JsonValue* op = doc->Find("op");
  if (op == nullptr || !op->is_string()) {
    return ProtocolError("JSON mutate needs a string 'op'");
  }
  std::optional<MutateOp> parsed = MutateOpFromName(op->string_value);
  if (!parsed) {
    return ProtocolError("unknown mutate op '" + op->string_value + "'");
  }
  request.op = *parsed;
  if (request.op == MutateOp::kInsert) {
    const obs::JsonValue* body = doc->Find("doc");
    if (body == nullptr || !body->is_string()) {
      return ProtocolError("JSON insert needs a string 'doc'");
    }
    request.document = body->string_value;
  } else if (request.op == MutateOp::kDelete) {
    const obs::JsonValue* doc_id = doc->Find("doc_id");
    if (doc_id == nullptr || !doc_id->is_number() || doc_id->number < 0) {
      return ProtocolError("JSON delete needs a non-negative 'doc_id'");
    }
    request.doc_id = static_cast<uint32_t>(doc_id->number);
  }
  return request;
}

Result<MutateResponse> ParseMutateResponseJson(std::string_view line) {
  Result<obs::JsonValue> doc = ParseEnvelopeJson(line, "mutate_response");
  if (!doc.ok()) return doc.status();
  MutateResponse response;
  if (const obs::JsonValue* id = doc->Find("id");
      id != nullptr && id->is_number() && id->number >= 0) {
    response.id = static_cast<uint64_t>(id->number);
  }
  const obs::JsonValue* op = doc->Find("op");
  if (op == nullptr || !op->is_string()) {
    return ProtocolError("JSON mutate response needs a string 'op'");
  }
  std::optional<MutateOp> parsed_op = MutateOpFromName(op->string_value);
  if (!parsed_op) {
    return ProtocolError("unknown mutate op '" + op->string_value + "'");
  }
  response.op = *parsed_op;
  const obs::JsonValue* status = doc->Find("status");
  if (status == nullptr || !status->is_string()) {
    return ProtocolError("JSON mutate response needs a string 'status'");
  }
  std::optional<StatusCode> code = StatusCodeFromName(status->string_value);
  if (!code) {
    return ProtocolError("unknown status '" + status->string_value + "'");
  }
  response.status = *code;
  if (const obs::JsonValue* error = doc->Find("error");
      error != nullptr && error->is_string()) {
    response.error = error->string_value;
  }
  if (const obs::JsonValue* doc_id = doc->Find("doc_id");
      doc_id != nullptr && doc_id->is_number() && doc_id->number >= 0) {
    response.doc_id = static_cast<uint32_t>(doc_id->number);
  }
  if (const obs::JsonValue* generation = doc->Find("generation");
      generation != nullptr && generation->is_number() &&
      generation->number >= 0) {
    response.generation = static_cast<uint64_t>(generation->number);
  }
  return response;
}

// --- query text ------------------------------------------------------------

std::optional<Query> ParseQueryText(std::string_view line,
                                    uint32_t min_len) {
  size_t begin = line.find_first_not_of(" \t\r");
  if (begin == std::string_view::npos || line[begin] == '#') {
    return std::nullopt;
  }
  size_t end = line.find_last_not_of(" \t\r");
  std::string body(line.substr(begin, end - begin + 1));
  size_t space = body.find_first_of(" \t");
  if (space != std::string::npos) {
    std::string kind = body.substr(0, space);
    std::string pattern = body.substr(body.find_first_not_of(" \t", space));
    // Optional suffixes on the kind word: an error budget
    // "KIND:ERRORS" (approximate kinds only, e.g. "mismatch:2 abra")
    // and a per-query deadline "KIND@MS" (e.g. "findall@250 abra"),
    // combined as "KIND:ERRORS@MS". A malformed suffix makes the whole
    // word an unrecognized kind, which falls through to the
    // findall-whole-line rule below — same as any other unknown first
    // word.
    const auto parse_digits =
        [](std::string_view digits) -> std::optional<uint32_t> {
      if (digits.empty() ||
          digits.find_first_not_of("0123456789") != std::string_view::npos) {
        return std::nullopt;
      }
      uint64_t value = 0;
      for (char c : digits) {
        value = value * 10 + static_cast<uint64_t>(c - '0');
        if (value > std::numeric_limits<uint32_t>::max()) {
          value = std::numeric_limits<uint32_t>::max();  // saturate
          break;
        }
      }
      return static_cast<uint32_t>(value);
    };
    uint32_t deadline_ms = 0;
    uint32_t max_errors = 0;
    bool has_errors = false;
    bool kind_ok = true;
    if (size_t at = kind.find('@'); at != std::string::npos) {
      const std::optional<uint32_t> ms =
          parse_digits(std::string_view(kind).substr(at + 1));
      kind_ok = ms.has_value();
      if (kind_ok) {
        deadline_ms = *ms;
        kind.resize(at);
      }
    }
    if (size_t colon = kind.find(':');
        kind_ok && colon != std::string::npos) {
      const std::optional<uint32_t> errors =
          parse_digits(std::string_view(kind).substr(colon + 1));
      kind_ok = errors.has_value();
      if (kind_ok) {
        max_errors = *errors;
        has_errors = true;
        kind.resize(colon);
      }
    }
    if (kind_ok) {
      std::optional<Query> query;
      if (kind == "findall") query = Query::FindAll(std::move(pattern));
      else if (kind == "contains") query = Query::Contains(std::move(pattern));
      else if (kind == "match") {
        query = Query::MaximalMatches(std::move(pattern), min_len);
      } else if (kind == "ms") query = Query::MatchingStats(std::move(pattern));
      else if (kind == "mismatch") {
        query = Query::Mismatch(std::move(pattern), max_errors);
      } else if (kind == "edit") {
        query = Query::EditDistance(std::move(pattern), max_errors);
      }
      // An error budget on an exact kind ("findall:2") is as malformed
      // as non-digits after the colon: the whole line is a pattern.
      if (query && has_errors && query->kind != QueryKind::kMismatch &&
          query->kind != QueryKind::kEditDistance) {
        query.reset();
      }
      if (query) {
        query->deadline_ms = deadline_ms;
        return query;
      }
    }
  }
  return Query::FindAll(std::move(body));
}

void PrintResultSummary(std::ostream& out, const Query& query,
                        const QueryResult& result, size_t max_listed) {
  if (!result.ok()) {
    out << "ERROR: " << result.error;
    return;
  }
  switch (query.kind) {
    case QueryKind::kContains:
      out << (result.found ? "yes" : "no");
      break;
    case QueryKind::kFindAll:
      out << result.hits.size() << " occurrence(s)";
      for (size_t i = 0; i < result.hits.size() && i < max_listed; ++i) {
        out << " " << result.hits[i].pos;
      }
      if (result.hits.size() > max_listed) {
        out << " (+" << result.hits.size() - max_listed << " more)";
      }
      break;
    case QueryKind::kMaximalMatches:
      out << result.hits.size() << " match(es)";
      for (size_t i = 0; i < result.hits.size() && i < max_listed; ++i) {
        const Hit& hit = result.hits[i];
        out << " query[" << hit.query_pos << ".."
            << hit.query_pos + hit.length << ")@" << hit.pos;
      }
      if (result.hits.size() > max_listed) {
        out << " (+" << result.hits.size() - max_listed << " more)";
      }
      break;
    case QueryKind::kMatchingStats: {
      uint32_t max_ms = 0;
      uint64_t total = 0;
      for (uint32_t v : result.matching_stats) {
        max_ms = std::max(max_ms, v);
        total += v;
      }
      out << "n=" << result.matching_stats.size() << " max=" << max_ms
          << " mean="
          << (result.matching_stats.empty()
                  ? 0.0
                  : static_cast<double>(total) /
                        static_cast<double>(result.matching_stats.size()));
      break;
    }
    case QueryKind::kMismatch:
      out << result.hits.size() << " hit(s) within " << query.max_errors
          << " mismatch(es)";
      for (size_t i = 0; i < result.hits.size() && i < max_listed; ++i) {
        out << " " << result.hits[i].pos << ":" << result.hits[i].query_pos;
      }
      if (result.hits.size() > max_listed) {
        out << " (+" << result.hits.size() - max_listed << " more)";
      }
      break;
    case QueryKind::kEditDistance:
      out << result.hits.size() << " hit(s) within " << query.max_errors
          << " edit(s)";
      for (size_t i = 0; i < result.hits.size() && i < max_listed; ++i) {
        const Hit& hit = result.hits[i];
        out << " " << hit.pos << ":" << hit.length << ":" << hit.query_pos;
      }
      if (result.hits.size() > max_listed) {
        out << " (+" << result.hits.size() - max_listed << " more)";
      }
      break;
  }
}

}  // namespace spine::core::wire
