// SpineIndex: the reference implementation of the SPINE index
// (Neelapala, Mittal, Haritsa, "SPINE: Putting Backbone into String
// Indexing", ICDE 2004).
//
// SPINE is a complete horizontal compaction of the suffix trie of a
// string s of length n: the whole trie collapses onto a linear backbone
// of nodes 0..n, where node i stands for the prefix s[0..i) and the
// vertebra edge i -> i+1 carries the character s[i]. Node i also stands
// for every substring whose *first* occurrence in s ends at position i.
//
// Components (Section 2 of the paper):
//  - link(i) / LEL(i): upstream edge to the node where the longest
//    early-terminating suffix of prefix i terminates. Semantically,
//    LEL(i) is the length of the longest suffix of s[0..i) that also
//    occurs ending before i, and link(i) is the end of its first
//    occurrence.
//  - ribs: downstream edges created when a suffix that terminated early
//    must be extended by a newly appended character. A rib at node w
//    with character c and pathlength threshold PT certifies: every
//    string of length <= PT that first-ends at w is followed by c, and
//    that extension first-ends at the rib's destination.
//  - extribs: chained extensions of a rib whose PT was too small; each
//    carries PT (new covered length) and PRT (the parent rib's PT,
//    disambiguating parents within a shared chain).
//
// A search path is valid only while every rib/extrib it takes satisfies
// current_pathlength <= PT; this rule eliminates the false positives
// horizontal compaction would otherwise introduce.
//
// This class favours clarity and testability; the byte-exact layout of
// the paper's Section 5 lives in compact/compact_spine.h.
//
// Thread safety: const methods are safe to call concurrently once
// construction (Append) has finished; Append itself is not thread-safe.

#ifndef SPINE_CORE_SPINE_INDEX_H_
#define SPINE_CORE_SPINE_INDEX_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "alphabet/alphabet.h"
#include "alphabet/packed_string.h"
#include "common/status.h"
#include "kernel/kernel.h"

namespace spine {

using NodeId = uint32_t;
inline constexpr NodeId kRootNode = 0;
inline constexpr NodeId kNoNode = 0xffffffffu;

// Counters for the "number of nodes checked" comparison (Table 6).
struct SearchStats {
  uint64_t nodes_checked = 0;   // nodes at which an edge lookup happened
  uint64_t link_traversals = 0; // upstream link hops
  uint64_t chain_hops = 0;      // extrib chain elements examined

  void Add(const SearchStats& o) {
    nodes_checked += o.nodes_checked;
    link_traversals += o.link_traversals;
    chain_hops += o.chain_hops;
  }
};

// Result of resolving one forward step during a search. Shared by every
// index implementation (reference, compact, disk-resident).
struct StepResult {
  bool ok = false;           // a valid edge was taken
  bool has_edge = false;     // an edge for the code exists at the node
  NodeId dest = kNoNode;     // destination when ok
  // When a rib exists but every threshold fails: the deepest
  // rib/sibling-extrib, i.e. the longest pathlength that *is*
  // extendable by this code at the node. Used for set-based shrinking.
  NodeId fallback_dest = kNoNode;
  uint32_t fallback_pt = 0;
};

class SpineIndex {
 public:
  struct Rib {
    NodeId dest = kNoNode;
    uint32_t pt = 0;
  };

  struct Extrib {
    NodeId dest = kNoNode;
    uint32_t pt = 0;
    uint32_t prt = 0;
    // Destination node of the parent rib. DEVIATION FROM THE PAPER: the
    // paper identifies an extrib's parent within a shared chain by PRT
    // alone, but two ribs with equal PTs (at different nodes, created in
    // different append steps) can have their chains merge, making PRT
    // ambiguous — we found concrete counterexamples where this yields
    // wrong LEL values and false positives. (parent_dest, prt) is
    // globally unique: ribs created in the same step share their
    // destination but have strictly decreasing PTs, and ribs from
    // different steps have different destinations.
    NodeId parent_dest = kNoNode;
  };

  explicit SpineIndex(const Alphabet& alphabet);

  SpineIndex(const SpineIndex&) = delete;
  SpineIndex& operator=(const SpineIndex&) = delete;
  SpineIndex(SpineIndex&&) = default;
  SpineIndex& operator=(SpineIndex&&) = default;

  // --- Construction (online; Section 3) ---------------------------------

  // Appends one character. Fails if the character is outside the
  // alphabet (the index is unchanged in that case).
  Status Append(char c);
  Status AppendString(std::string_view s);

  // --- Basic accessors ---------------------------------------------------

  const Alphabet& alphabet() const { return alphabet_; }
  // Number of indexed characters; node ids run 0..size().
  uint64_t size() const { return codes_.size(); }
  Code CodeAt(uint64_t i) const { return codes_.Get(i); }
  char CharAt(uint64_t i) const { return alphabet_.Decode(codes_.Get(i)); }
  // Reconstructs the indexed string (the index is self-contained; the
  // original string is not retained separately).
  std::string ReconstructString() const;

  NodeId LinkDest(NodeId i) const { return link_dest_[i]; }
  uint32_t LinkLel(NodeId i) const { return link_lel_[i]; }

  // Rib lookup at a node; nullptr when absent.
  const Rib* FindRib(NodeId node, Code c) const;
  // Outgoing extrib at a node; nullptr when absent.
  const Extrib* FindExtrib(NodeId node) const;

  uint64_t rib_count() const { return ribs_.size(); }
  uint64_t extrib_count() const { return extribs_.size(); }

  // Visits every rib as (source, code, rib) in unspecified order.
  template <typename Fn>
  void ForEachRib(Fn&& fn) const {
    for (const auto& [key, rib] : ribs_) {
      fn(static_cast<NodeId>(key >> 8), static_cast<Code>(key & 0xff), rib);
    }
  }

  // Visits every extrib as (source, extrib) in unspecified order.
  template <typename Fn>
  void ForEachExtrib(Fn&& fn) const {
    for (const auto& [source, e] : extribs_) fn(source, e);
  }

  // Approximate heap bytes used by this (clarity-first) representation.
  uint64_t MemoryBytes() const;

  // --- Search (Section 4) -------------------------------------------------

  // Resolves a single forward step from `node` with matched pathlength
  // `pathlen` on code `c`, applying the PT threshold rules.
  StepResult Step(NodeId node, Code c, uint32_t pathlen,
                  SearchStats* stats = nullptr) const;

  // Number of consecutive vertebra edges matched starting at `node`
  // against pattern codes [pattern_pos, ...), compared word-parallel by
  // the active kernel (kernel/kernel.h). Bounded by the pattern's
  // valid-code run and the backbone end; 0 on an immediate mismatch.
  // Equivalent to (and counted like) that many successful Step calls.
  uint32_t MatchVertebraRun(NodeId node, const kernel::EncodedPattern& pattern,
                            size_t pattern_pos) const;

  // Hints the hardware prefetcher at this node's link entry, issued by
  // the matcher right before a link/rib chain hop lands there.
  void PrefetchNode(NodeId node) const {
    __builtin_prefetch(link_dest_.data() + node);
    __builtin_prefetch(link_lel_.data() + node);
  }

  // True iff `pattern` is a substring of the indexed string.
  bool Contains(std::string_view pattern) const;

  // End node (== end position) of the first occurrence of `pattern`, or
  // nullopt if the pattern does not occur / contains foreign characters.
  // The empty pattern ends at the root.
  std::optional<NodeId> FindFirstEnd(std::string_view pattern,
                                     SearchStats* stats = nullptr) const;

  // All start positions of `pattern`, in increasing order. Implements
  // the paper's backbone scan over the target node buffer.
  std::vector<uint32_t> FindAll(std::string_view pattern,
                                SearchStats* stats = nullptr) const;

  // --- Diagnostics --------------------------------------------------------

  // Structural invariant check; O(n + edges). Returns the first
  // violation found.
  Status Validate() const;

  // Full dump of nodes and edges; intended for small indexes.
  std::string DebugString() const;

 private:
  uint64_t RibKey(NodeId node, Code c) const {
    return (static_cast<uint64_t>(node) << 8) | c;
  }

  void SetLink(NodeId node, NodeId dest, uint32_t lel);

  Alphabet alphabet_;
  PackedString codes_;

  // Entry i describes node i's upstream link; entry 0 (root) is unused.
  std::vector<NodeId> link_dest_;
  std::vector<uint32_t> link_lel_;

  // Sparse forward edges: ~30% of nodes carry any (paper Table 4).
  std::unordered_map<uint64_t, Rib> ribs_;       // key: (node << 8) | code
  std::unordered_map<NodeId, Extrib> extribs_;   // key: source node
};

}  // namespace spine

#endif  // SPINE_CORE_SPINE_INDEX_H_
