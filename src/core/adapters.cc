#include "core/adapters.h"

#include <algorithm>
#include <string_view>

#include "naive/naive_index.h"
#include "obs/metrics.h"
#include "suffix_tree/st_matcher.h"

namespace spine::core {

QueryResult UnsupportedKindResult(std::string_view backend, QueryKind kind) {
  QueryResult result;
  result.status_code = StatusCode::kInvalidArgument;
  result.error = "backend '" + std::string(backend) +
                 "' does not support query kind '" +
                 std::string(QueryKindName(kind)) + "'";
  return result;
}

QueryResult MappingFenceResult(const Status& fence) {
  QueryResult result;
  result.status_code = fence.code();
  result.error = std::string(fence.message());
  return result;
}

namespace {

// The same left-to-right decay GenericMatchingStatistics uses to turn
// seeded maximal-match lengths into full matching statistics.
void DecayMatchingStats(std::vector<uint32_t>* ms) {
  for (size_t q = 1; q < ms->size(); ++q) {
    if ((*ms)[q - 1] > 1 && (*ms)[q - 1] - 1 > (*ms)[q]) {
      (*ms)[q] = (*ms)[q - 1] - 1;
    }
  }
}

bool AnyPositive(const std::vector<uint32_t>& ms) {
  return std::any_of(ms.begin(), ms.end(),
                     [](uint32_t v) { return v > 0; });
}

// Code-space view over the oracle's raw text so the approximate
// generics canonicalize (DNA case folding, out-of-alphabet handling)
// exactly like the real backends. Not SeedSearchable: the oracle always
// takes the verification-scan path.
struct NaiveCodeView {
  const Alphabet* alpha;
  const std::string* text;
  Code CodeAt(uint64_t i) const { return alpha->Encode((*text)[i]); }
  uint64_t size() const { return text->size(); }
  const Alphabet& alphabet() const { return *alpha; }
};

// Mirrors the observability block of core/query.h ExecuteQuery for the
// adapter paths that do not go through it (suffix trees, CDAWG, naive):
// per-kind query counters, Table 6 work counters, and trace notes.
void RecordQueryObs(const Query& query, const QueryResult& result,
                    obs::TraceContext* trace) {
#if !defined(SPINE_OBS_DISABLED)
  static obs::Counter* const kind_counters[kQueryKindCount] = {
      &obs::Registry::Default().GetCounter("core.queries.contains"),
      &obs::Registry::Default().GetCounter("core.queries.findall"),
      &obs::Registry::Default().GetCounter("core.queries.match"),
      &obs::Registry::Default().GetCounter("core.queries.ms"),
      &obs::Registry::Default().GetCounter("core.queries.mismatch"),
      &obs::Registry::Default().GetCounter("core.queries.editdist"),
  };
  kind_counters[static_cast<size_t>(query.kind)]->Add(1);
  SPINE_OBS_COUNT("core.vertebra_steps", result.stats.nodes_checked);
  SPINE_OBS_COUNT("core.link_traversals", result.stats.link_traversals);
  SPINE_OBS_COUNT("core.chain_hops", result.stats.chain_hops);
  if (trace != nullptr) {
    trace->Note("nodes_checked", result.stats.nodes_checked);
    trace->Note("link_traversals", result.stats.link_traversals);
    trace->Note("chain_hops", result.stats.chain_hops);
    trace->Note("found", result.found ? 1 : 0);
  }
#else
  (void)query;
  (void)result;
  (void)trace;
#endif
}

// One Execute implementation for both suffix-tree backends (in-memory
// SuffixTree and paged storage::DiskSuffixTree). Matches the SPINE
// adapters' payloads exactly: maximal matches come from the
// suffix-link matcher, occurrences from per-match FindAll (ascending,
// so front() is the first occurrence — the position SPINE reports),
// and matching statistics from seeded matches plus the decay sweep.
// Cancellation granularity here is coarser than the SPINE generics:
// per maximal match / per phase on the adapter level, plus — for the
// paged tree — every buffer-pool miss via the scoped token
// (CancelScopedIndex). A fired token is converted to an error result
// exactly like an I/O latch, never returned as a partial kOk payload.
template <typename Tree>
QueryResult StExecute(const Tree& tree, std::string_view name,
                      const Query& query, obs::TraceContext* trace,
                      const CancelToken* cancel) {
#if defined(SPINE_OBS_DISABLED)
  trace = nullptr;
#endif
  obs::SpanTimer exec_timer(trace, "exec_us");
  if constexpr (IoLatchedIndex<Tree>) {
    (void)tree.ConsumeError();  // stale latch must not taint this query
  }
  internal::CancelScopeGuard<Tree> cancel_scope(tree, cancel);
  CancelCheckpoint checkpoint(cancel, /*interval=*/1);
  (void)name;
  QueryResult result;
  switch (query.kind) {
    case QueryKind::kContains:
      result.found =
          query.pattern.empty() || tree.Contains(query.pattern, &result.stats);
      break;
    case QueryKind::kFindAll: {
      if (!query.pattern.empty()) {
        const uint32_t m = static_cast<uint32_t>(query.pattern.size());
        for (uint32_t pos : tree.FindAll(query.pattern, &result.stats)) {
          result.hits.push_back({pos, m, 0});
        }
      }
      result.found = !result.hits.empty();
      break;
    }
    case QueryKind::kMaximalMatches: {
      const uint32_t min_len = std::max<uint32_t>(query.min_len, 1);
      for (const StMatch& match : GenericStFindMaximalMatches(
               tree, query.pattern, min_len, &result.stats)) {
        if (checkpoint.ShouldStop()) break;
        const std::string_view sub = std::string_view(query.pattern)
                                         .substr(match.query_pos, match.length);
        std::vector<uint32_t> positions = tree.FindAll(sub, &result.stats);
        if (positions.empty()) continue;  // only reachable via latched fault
        if (query.expand_occurrences) {
          for (uint32_t pos : positions) {
            result.hits.push_back({pos, match.length, match.query_pos});
          }
        } else {
          result.hits.push_back(
              {positions.front(), match.length, match.query_pos});
        }
      }
      result.found = !result.hits.empty();
      break;
    }
    case QueryKind::kMatchingStats: {
      result.matching_stats.assign(query.pattern.size(), 0);
      for (const StMatch& match : GenericStFindMaximalMatches(
               tree, query.pattern, 1, &result.stats)) {
        result.matching_stats[match.query_pos] = match.length;
      }
      DecayMatchingStats(&result.matching_stats);
      result.found = AnyPositive(result.matching_stats);
      break;
    }
    case QueryKind::kMismatch:
    case QueryKind::kEditDistance: {
      // Suffix trees are not SeedSearchable, so the generics take the
      // planner's verification-scan path over CodeAt.
      ApproxSearchStats approx_stats;
      std::vector<ApproxHit> approx_hits =
          query.kind == QueryKind::kMismatch
              ? GenericFindMismatch(tree, query.pattern, query.max_errors,
                                    &result.stats, &approx_stats, cancel)
              : GenericFindEditDistance(tree, query.pattern, query.max_errors,
                                        &result.stats, &approx_stats, cancel);
      for (const ApproxHit& hit : approx_hits) {
        result.hits.push_back({hit.pos, hit.length, hit.errors});
      }
      result.found = !result.hits.empty();
      RecordApproxObs(approx_stats);
      break;
    }
  }
  RecordQueryObs(query, result, trace);
  if constexpr (IoLatchedIndex<Tree>) {
    Status status = tree.ConsumeError();
    if (!status.ok()) {
      QueryResult failed;
      failed.stats = result.stats;  // work done before the fault counts
      failed.status_code = status.code();
      failed.error = std::string(status.message());
      return failed;
    }
  }
  if (cancel != nullptr) {
    Status status = cancel->ToStatus();
    if (!status.ok()) {
      QueryResult timed_out;
      timed_out.stats = result.stats;
      timed_out.status_code = status.code();
      timed_out.error = std::string(status.message());
      return timed_out;
    }
  }
  return result;
}

}  // namespace

QueryResult SuffixTreeAdapter::Execute(const Query& query,
                                       obs::TraceContext* trace,
                                       const CancelToken* cancel) const {
  return StExecute(*tree_, Name(), query, trace, cancel);
}

QueryResult DiskSuffixTreeAdapter::Execute(const Query& query,
                                           obs::TraceContext* trace,
                                           const CancelToken* cancel) const {
  return StExecute(*tree_, Name(), query, trace, cancel);
}

Status DiskSuffixTreeAdapter::VerifyStructure() const {
  (void)tree_->ConsumeError();  // start from a clean latch
  const uint64_t n = tree_->size();
  const uint64_t nodes = tree_->node_count();
  // Touch every text code so each page passes its checksum.
  for (uint64_t i = 0; i < n; ++i) (void)tree_->CodeAt(i);
  for (uint64_t id = 0; id < nodes; ++id) {
    const SuffixTree::Node node = tree_->node(static_cast<uint32_t>(id));
    if (node.start > n) {
      return Status::Corruption("node " + std::to_string(id) +
                                ": edge start beyond text");
    }
    if (node.end != SuffixTree::kOpenEnd &&
        (node.end > n || node.end < node.start)) {
      return Status::Corruption("node " + std::to_string(id) +
                                ": invalid edge range");
    }
    const uint32_t kNone = SuffixTree::kNoNode32;
    if ((node.first_child != kNone && node.first_child >= nodes) ||
        (node.next_sibling != kNone && node.next_sibling >= nodes) ||
        (node.suffix_link != kNone && node.suffix_link >= nodes)) {
      return Status::Corruption("node " + std::to_string(id) +
                                ": out-of-range node reference");
    }
    if (node.suffix_index != kNone && node.suffix_index >= n) {
      return Status::Corruption("node " + std::to_string(id) +
                                ": suffix index beyond text");
    }
  }
  return tree_->ConsumeError();
}

const Alphabet& CompactDawgAdapter::alphabet() const {
  return dawg_->alphabet();
}

QueryResult CompactDawgAdapter::Execute(const Query& query,
                                        obs::TraceContext* trace,
                                        const CancelToken* cancel) const {
#if defined(SPINE_OBS_DISABLED)
  trace = nullptr;
#endif
  if (query.kind != QueryKind::kContains) {
    return UnsupportedKindResult(Name(), query.kind);
  }
  obs::SpanTimer exec_timer(trace, "exec_us");
  QueryResult result;
  // One walk bounded by the pattern length; a boundary check suffices.
  if (cancel != nullptr && cancel->Fired()) {
    result.status_code = cancel->FiredCode();
    result.error = std::string(cancel->ToStatus().message());
    return result;
  }
  result.found = query.pattern.empty() || dawg_->Contains(query.pattern);
  RecordQueryObs(query, result, trace);
  return result;
}

QueryResult NaiveTextAdapter::Execute(const Query& query,
                                      obs::TraceContext* trace,
                                      const CancelToken* cancel) const {
#if defined(SPINE_OBS_DISABLED)
  trace = nullptr;
#endif
  obs::SpanTimer exec_timer(trace, "exec_us");
  // The oracle polls per reported match (interval 1: its per-item work
  // — a full text scan — dwarfs a token poll).
  CancelCheckpoint checkpoint(cancel, /*interval=*/1);
  QueryResult result;
  switch (query.kind) {
    case QueryKind::kContains:
      result.found = query.pattern.empty() ||
                     naive::FirstOccurrenceEnd(text_, query.pattern) >= 0;
      break;
    case QueryKind::kFindAll: {
      if (!query.pattern.empty()) {
        const uint32_t m = static_cast<uint32_t>(query.pattern.size());
        for (uint32_t pos : naive::FindAllOccurrences(text_, query.pattern)) {
          result.hits.push_back({pos, m, 0});
        }
      }
      result.found = !result.hits.empty();
      break;
    }
    case QueryKind::kMaximalMatches: {
      const uint32_t min_len = std::max<uint32_t>(query.min_len, 1);
      for (const naive::NaiveMatch& match :
           naive::MaximalMatches(text_, query.pattern, min_len)) {
        if (checkpoint.ShouldStop()) break;
        const std::string_view sub = std::string_view(query.pattern)
                                         .substr(match.query_pos, match.length);
        if (query.expand_occurrences) {
          for (uint32_t pos : naive::FindAllOccurrences(text_, sub)) {
            result.hits.push_back({pos, match.length, match.query_pos});
          }
        } else {
          const int64_t first_end = naive::FirstOccurrenceEnd(text_, sub);
          result.hits.push_back(
              {static_cast<uint32_t>(first_end) - match.length, match.length,
               match.query_pos});
        }
      }
      result.found = !result.hits.empty();
      break;
    }
    case QueryKind::kMatchingStats: {
      result.matching_stats.assign(query.pattern.size(), 0);
      for (const naive::NaiveMatch& match :
           naive::MaximalMatches(text_, query.pattern, 1)) {
        result.matching_stats[match.query_pos] = match.length;
      }
      DecayMatchingStats(&result.matching_stats);
      result.found = AnyPositive(result.matching_stats);
      break;
    }
    case QueryKind::kMismatch:
    case QueryKind::kEditDistance: {
      const NaiveCodeView view{&alphabet_, &text_};
      ApproxSearchStats approx_stats;
      std::vector<ApproxHit> approx_hits =
          query.kind == QueryKind::kMismatch
              ? GenericFindMismatch(view, query.pattern, query.max_errors,
                                    &result.stats, &approx_stats, cancel)
              : GenericFindEditDistance(view, query.pattern, query.max_errors,
                                        &result.stats, &approx_stats, cancel);
      for (const ApproxHit& hit : approx_hits) {
        result.hits.push_back({hit.pos, hit.length, hit.errors});
      }
      result.found = !result.hits.empty();
      RecordApproxObs(approx_stats);
      break;
    }
  }
  RecordQueryObs(query, result, trace);
  if (cancel != nullptr) {
    Status status = cancel->ToStatus();
    if (!status.ok()) {
      QueryResult timed_out;
      timed_out.stats = result.stats;
      timed_out.status_code = status.code();
      timed_out.error = std::string(status.message());
      return timed_out;
    }
  }
  return result;
}

}  // namespace spine::core
