#include "obs/metrics.h"

#include <algorithm>

#include "common/check.h"
#include "obs/json.h"

namespace spine::obs {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<uint64_t>[bounds_.size() + 1]) {
  SPINE_CHECK(!bounds_.empty());
  for (size_t i = 1; i < bounds_.size(); ++i) {
    SPINE_CHECK(bounds_[i - 1] < bounds_[i]);
  }
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::Observe(double value) {
  // First bound >= value, i.e. the smallest bucket with value <= bound;
  // past-the-end selects the overflow bucket.
  const size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::vector<double> Histogram::ExponentialBounds(double start, double factor,
                                                 uint32_t count) {
  SPINE_CHECK(start > 0.0 && factor > 1.0 && count >= 1);
  std::vector<double> bounds;
  bounds.reserve(count);
  double bound = start;
  for (uint32_t i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

std::vector<double> LatencyBoundsUs() {
  // 1us .. ~1s in x4 steps: 11 buckets + overflow.
  return Histogram::ExponentialBounds(1.0, 4.0, 11);
}

Registry& Registry::Default() {
  static Registry* registry = new Registry;
  return *registry;
}

Counter& Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::GetHistogram(const std::string& name,
                                  std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

MetricsSnapshot Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->value();
  }
  for (const auto& [name, histogram] : histograms_) {
    MetricsSnapshot::HistogramValue value;
    value.bounds = histogram->bounds();
    value.buckets.reserve(value.bounds.size() + 1);
    for (size_t i = 0; i <= value.bounds.size(); ++i) {
      value.buckets.push_back(histogram->bucket_count(i));
    }
    value.count = histogram->count();
    value.sum = histogram->sum();
    snapshot.histograms[name] = std::move(value);
  }
  return snapshot;
}

size_t Registry::metric_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

std::string Registry::ToJson(const MetricsSnapshot& snapshot) {
  JsonWriter json;
  json.BeginObject();
  json.Key("counters");
  json.BeginObject();
  for (const auto& [name, value] : snapshot.counters) {
    json.Key(name);
    json.Value(value);
  }
  json.EndObject();
  json.Key("gauges");
  json.BeginObject();
  for (const auto& [name, value] : snapshot.gauges) {
    json.Key(name);
    json.Value(value);
  }
  json.EndObject();
  json.Key("histograms");
  json.BeginObject();
  for (const auto& [name, value] : snapshot.histograms) {
    json.Key(name);
    json.BeginObject();
    json.Key("count");
    json.Value(value.count);
    json.Key("sum");
    json.Value(value.sum);
    json.Key("buckets");
    json.BeginArray();
    for (size_t i = 0; i < value.buckets.size(); ++i) {
      json.BeginObject();
      json.Key("le");
      if (i < value.bounds.size()) {
        json.Value(value.bounds[i]);
      } else {
        json.Value("+inf");
      }
      json.Key("count");
      json.Value(value.buckets[i]);
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndObject();
  json.EndObject();
  return std::move(json).Finish();
}

}  // namespace spine::obs
