#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/check.h"

namespace spine::obs {

// --- JsonWriter ------------------------------------------------------------

void JsonWriter::Separate() {
  if (after_key_) {
    after_key_ = false;
    return;  // value follows its key; no comma
  }
  if (needs_comma_.back()) out_.push_back(',');
  needs_comma_.back() = true;
}

void JsonWriter::Raw(std::string_view text) { out_.append(text); }

void JsonWriter::BeginObject() {
  Separate();
  out_.push_back('{');
  needs_comma_.push_back(false);
}

void JsonWriter::EndObject() {
  SPINE_CHECK(needs_comma_.size() > 1);
  needs_comma_.pop_back();
  out_.push_back('}');
}

void JsonWriter::BeginArray() {
  Separate();
  out_.push_back('[');
  needs_comma_.push_back(false);
}

void JsonWriter::EndArray() {
  SPINE_CHECK(needs_comma_.size() > 1);
  needs_comma_.pop_back();
  out_.push_back(']');
}

void JsonWriter::Key(std::string_view key) {
  Separate();
  Raw(JsonEscape(key));
  out_.push_back(':');
  after_key_ = true;
}

void JsonWriter::Value(std::string_view value) {
  Separate();
  Raw(JsonEscape(value));
}

void JsonWriter::Value(double value) {
  Separate();
  if (!std::isfinite(value)) {
    // JSON has no inf/nan; clamp to null (consumers treat as missing).
    Raw("null");
    return;
  }
  char buf[40];
  // %.17g round-trips any double but litters short values with digits;
  // try the short form first and keep it when it parses back exactly.
  std::snprintf(buf, sizeof(buf), "%g", value);
  if (std::strtod(buf, nullptr) != value) {
    std::snprintf(buf, sizeof(buf), "%.17g", value);
  }
  Raw(buf);
}

void JsonWriter::Value(uint64_t value) {
  Separate();
  Raw(std::to_string(value));
}

void JsonWriter::Value(int64_t value) {
  Separate();
  Raw(std::to_string(value));
}

void JsonWriter::Value(bool value) {
  Separate();
  Raw(value ? "true" : "false");
}

void JsonWriter::Null() {
  Separate();
  Raw("null");
}

void JsonWriter::RawValue(std::string_view json) {
  Separate();
  Raw(json);
}

std::string JsonWriter::Finish() && {
  SPINE_CHECK(needs_comma_.size() == 1 && !after_key_);
  return std::move(out_);
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('"');
  for (unsigned char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out.push_back('"');
  return out;
}

// --- ParseJson -------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue value;
    SPINE_RETURN_IF_ERROR(ParseValue(&value));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) {
    return Status::InvalidArgument("JSON parse error at byte " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (!Consume(c)) {
      return Error(std::string("expected '") + c + "'");
    }
    return Status::OK();
  }

  Status ParseValue(JsonValue* out) {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return ParseObject(out);
      case '[': return ParseArray(out);
      case '"': {
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string_value);
      }
      case 't':
      case 'f': return ParseLiteral(out);
      case 'n': return ParseLiteral(out);
      default: return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    SPINE_RETURN_IF_ERROR(Expect('{'));
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWhitespace();
      std::string key;
      SPINE_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      SPINE_RETURN_IF_ERROR(Expect(':'));
      JsonValue value;
      SPINE_RETURN_IF_ERROR(ParseValue(&value));
      out->object[std::move(key)] = std::move(value);
      SkipWhitespace();
      if (Consume('}')) return Status::OK();
      SPINE_RETURN_IF_ERROR(Expect(','));
    }
  }

  Status ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    SPINE_RETURN_IF_ERROR(Expect('['));
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue value;
      SPINE_RETURN_IF_ERROR(ParseValue(&value));
      out->array.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(']')) return Status::OK();
      SPINE_RETURN_IF_ERROR(Expect(','));
    }
  }

  Status ParseString(std::string* out) {
    SPINE_RETURN_IF_ERROR(Expect('"'));
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("unterminated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Error("bad \\u escape digit");
          }
          // The emitter only writes \u00xx; decode BMP code points as
          // UTF-8 so round trips are lossless for everything we emit.
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xc0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
          } else {
            out->push_back(static_cast<char>(0xe0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
          }
          break;
        }
        default: return Error("unknown escape");
      }
    }
  }

  Status ParseLiteral(JsonValue* out) {
    auto match = [&](std::string_view word) {
      if (text_.substr(pos_, word.size()) == word) {
        pos_ += word.size();
        return true;
      }
      return false;
    };
    if (match("true")) {
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = true;
      return Status::OK();
    }
    if (match("false")) {
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = false;
      return Status::OK();
    }
    if (match("null")) {
      out->kind = JsonValue::Kind::kNull;
      return Status::OK();
    }
    return Error("unknown literal");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Consume('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      return Error("malformed number '" + token + "'");
    }
    out->kind = JsonValue::Kind::kNumber;
    out->number = value;
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace spine::obs
