// Per-query tracing: a TraceContext rides along one query through the
// engine and records named spans (wall-clock durations) and notes
// (small integer facts: retries, cache hit, nodes checked). Traces are
// strictly observational — they never influence the answer, so a batch
// run with tracing on is byte-identical to one with tracing off.
//
// Capture sites are compiled out under SPINE_OBS_DISABLED; the type
// itself stays so signatures (ExecuteQuery's optional trace parameter,
// BatchStats::traces) do not change between build flavors.

#ifndef SPINE_OBS_TRACE_H_
#define SPINE_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace spine::obs {

class TraceContext {
 public:
  using Clock = std::chrono::steady_clock;

  struct Span {
    const char* name;  // string literal at the capture site
    double micros;
  };

  void RecordSpan(const char* name, double micros) {
    spans_.push_back({name, micros});
  }
  void Note(const char* key, uint64_t value) {
    notes_.emplace_back(key, value);
  }

  const std::vector<Span>& spans() const { return spans_; }
  const std::vector<std::pair<const char*, uint64_t>>& notes() const {
    return notes_;
  }

  // Micros of the span named `name`, or -1 when absent.
  double SpanMicros(const char* name) const;
  // Value of the note named `key`, or `fallback` when absent.
  uint64_t NoteValue(const char* key, uint64_t fallback = 0) const;

  // {"spans": {"exec_us": 12.3, ...}, "notes": {"retries": 0, ...}}
  std::string ToJson() const;

 private:
  std::vector<Span> spans_;
  std::vector<std::pair<const char*, uint64_t>> notes_;
};

// Times one span and records it on destruction. A null context makes
// the timer inert (no clock reads).
class SpanTimer {
 public:
  SpanTimer(TraceContext* trace, const char* name) : trace_(trace) {
    if (trace_ != nullptr) {
      name_ = name;
      start_ = TraceContext::Clock::now();
    }
  }
  ~SpanTimer() {
    if (trace_ != nullptr) {
      trace_->RecordSpan(
          name_, std::chrono::duration<double, std::micro>(
                     TraceContext::Clock::now() - start_)
                     .count());
    }
  }
  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

 private:
  TraceContext* trace_;
  const char* name_ = nullptr;
  TraceContext::Clock::time_point start_;
};

}  // namespace spine::obs

#endif  // SPINE_OBS_TRACE_H_
