#include "obs/trace.h"

#include <cstring>

#include "obs/json.h"

namespace spine::obs {

double TraceContext::SpanMicros(const char* name) const {
  for (const Span& span : spans_) {
    if (std::strcmp(span.name, name) == 0) return span.micros;
  }
  return -1.0;
}

uint64_t TraceContext::NoteValue(const char* key, uint64_t fallback) const {
  for (const auto& [name, value] : notes_) {
    if (std::strcmp(name, key) == 0) return value;
  }
  return fallback;
}

std::string TraceContext::ToJson() const {
  JsonWriter json;
  json.BeginObject();
  json.Key("spans");
  json.BeginObject();
  for (const Span& span : spans_) {
    json.Key(span.name);
    json.Value(span.micros);
  }
  json.EndObject();
  json.Key("notes");
  json.BeginObject();
  for (const auto& [key, value] : notes_) {
    json.Key(key);
    json.Value(value);
  }
  json.EndObject();
  json.EndObject();
  return std::move(json).Finish();
}

}  // namespace spine::obs
