// Low-overhead runtime metrics for the SPINE stack.
//
// A process-wide Registry holds named Counters (monotonic), Gauges
// (signed, settable) and fixed-bucket Histograms. Updates are relaxed
// atomics — safe to fire from any thread, including the query engine's
// worker pool — and a Snapshot() can be taken concurrently with
// updates (it observes each metric atomically, not the set of metrics
// as one instant).
//
// Instrumentation sites never touch the registry directly; they go
// through the SPINE_OBS_* macros below. Each macro resolves its metric
// once (function-local static) and then costs one relaxed atomic RMW.
// Compiling with -DSPINE_OBS_DISABLED (CMake option -DSPINE_OBS=OFF)
// expands every macro to nothing, so the instrumented hot paths carry
// zero overhead — no lookup, no atomic, no clock read. The registry
// type itself stays available either way (an empty snapshot is still a
// valid snapshot), which keeps the JSON surface stable across flavors.
//
// Metric naming: dotted lowercase paths, "<layer>.<component>.<what>",
// e.g. "storage.pool.checksum_failures". docs/OBSERVABILITY.md holds
// the full catalogue.

#ifndef SPINE_OBS_METRICS_H_
#define SPINE_OBS_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace spine::obs {

// Monotonically increasing event count.
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// A value that can move both ways (pool occupancy, bytes resident).
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Fixed-bucket histogram: bucket i counts observations <= bounds[i];
// one implicit overflow bucket counts the rest. Bounds are fixed at
// registration so Observe() is a branch-free scan plus one relaxed RMW.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  // `count` exponentially spaced bounds starting at `start`: the
  // default shape for microsecond latencies.
  static std::vector<double> ExponentialBounds(double start, double factor,
                                               uint32_t count);

  const std::vector<double>& bounds() const { return bounds_; }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  // Count of observations in bucket i (i == bounds().size() is the
  // overflow bucket).
  uint64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::vector<double> bounds_;  // strictly increasing upper bounds
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// Point-in-time copy of every registered metric, safe to serialize or
// diff while the system keeps running.
struct MetricsSnapshot {
  struct HistogramValue {
    std::vector<double> bounds;
    std::vector<uint64_t> buckets;  // bounds.size() + 1 (overflow last)
    uint64_t count = 0;
    double sum = 0.0;
  };

  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramValue> histograms;

  // Value of a counter, 0 when absent (absent == never fired).
  uint64_t counter(const std::string& name) const {
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
  }
};

// Version of the machine-readable stats/bench JSON schema. Bump when a
// field is renamed or its meaning changes; adding metrics is not a
// schema change (consumers must tolerate unknown metric names).
inline constexpr uint32_t kStatsSchemaVersion = 1;

// Named metric store. GetX registers on first use and returns a
// reference that stays valid for the registry's lifetime. One global
// Default() instance serves the whole process; tests build private
// registries to isolate their deltas.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  static Registry& Default();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  // Registering an existing histogram under different bounds keeps the
  // original bounds (first registration wins).
  Histogram& GetHistogram(const std::string& name,
                          std::vector<double> bounds);

  MetricsSnapshot Snapshot() const;
  size_t metric_count() const;
  // Removes every metric. Only for test isolation: references returned
  // by GetX before a Reset dangle, so production code must never call
  // this (the macros cache references in function-local statics).
  void Reset();

  // Snapshot serialized as a JSON object:
  //   {"counters": {...}, "gauges": {...}, "histograms": {...}}
  static std::string ToJson(const MetricsSnapshot& snapshot);

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// Default bucket bounds for microsecond latency histograms: 1us .. ~1s.
std::vector<double> LatencyBoundsUs();

// Wall-clock scope timer feeding a histogram in microseconds.
class ScopedTimerUs {
 public:
  explicit ScopedTimerUs(Histogram& histogram)
      : histogram_(histogram), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimerUs() {
    histogram_.Observe(
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }
  ScopedTimerUs(const ScopedTimerUs&) = delete;
  ScopedTimerUs& operator=(const ScopedTimerUs&) = delete;

 private:
  Histogram& histogram_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace spine::obs

// --- Instrumentation macros ------------------------------------------------
//
// `name` must be a string literal (it keys a function-local static
// lookup). All expand to nothing under SPINE_OBS_DISABLED.

#if defined(SPINE_OBS_DISABLED)

#define SPINE_OBS_COUNT(name, delta) ((void)0)
#define SPINE_OBS_GAUGE_SET(name, value) ((void)0)
#define SPINE_OBS_GAUGE_ADD(name, delta) ((void)0)
#define SPINE_OBS_OBSERVE_US(name, value) ((void)0)
#define SPINE_OBS_SCOPED_TIMER_US(name)

#else

#define SPINE_OBS_COUNT(name, delta)                               \
  do {                                                             \
    static ::spine::obs::Counter& spine_obs_counter_ =             \
        ::spine::obs::Registry::Default().GetCounter(name);        \
    spine_obs_counter_.Add(delta);                                 \
  } while (false)

#define SPINE_OBS_GAUGE_SET(name, value)                           \
  do {                                                             \
    static ::spine::obs::Gauge& spine_obs_gauge_ =                 \
        ::spine::obs::Registry::Default().GetGauge(name);          \
    spine_obs_gauge_.Set(value);                                   \
  } while (false)

#define SPINE_OBS_GAUGE_ADD(name, delta)                           \
  do {                                                             \
    static ::spine::obs::Gauge& spine_obs_gauge_ =                 \
        ::spine::obs::Registry::Default().GetGauge(name);          \
    spine_obs_gauge_.Add(delta);                                   \
  } while (false)

#define SPINE_OBS_OBSERVE_US(name, value)                          \
  do {                                                             \
    static ::spine::obs::Histogram& spine_obs_histogram_ =         \
        ::spine::obs::Registry::Default().GetHistogram(            \
            name, ::spine::obs::LatencyBoundsUs());                \
    spine_obs_histogram_.Observe(value);                           \
  } while (false)

#define SPINE_OBS_SCOPED_TIMER_US_CONCAT2(a, b) a##b
#define SPINE_OBS_SCOPED_TIMER_US_CONCAT(a, b) \
  SPINE_OBS_SCOPED_TIMER_US_CONCAT2(a, b)
#define SPINE_OBS_SCOPED_TIMER_US(name)                                     \
  static ::spine::obs::Histogram&                                           \
      SPINE_OBS_SCOPED_TIMER_US_CONCAT(spine_obs_timer_hist_, __LINE__) =   \
          ::spine::obs::Registry::Default().GetHistogram(                   \
              name, ::spine::obs::LatencyBoundsUs());                       \
  ::spine::obs::ScopedTimerUs SPINE_OBS_SCOPED_TIMER_US_CONCAT(             \
      spine_obs_timer_, __LINE__)(                                          \
      SPINE_OBS_SCOPED_TIMER_US_CONCAT(spine_obs_timer_hist_, __LINE__))

#endif  // SPINE_OBS_DISABLED

#endif  // SPINE_OBS_METRICS_H_
