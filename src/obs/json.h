// Minimal JSON emit/parse support for the observability surface.
//
// JsonWriter is a streaming writer with correct string escaping and
// number formatting (round-trippable doubles, integers emitted without
// an exponent). It is deliberately not a DOM: the stats snapshots and
// bench reports are written in one pass.
//
// JsonValue/ParseJson is the inverse: a small recursive-descent parser
// used by tests and `spine verify`-style tooling to check that every
// JSON artifact the system emits actually parses, with helpers for
// drilling into objects. It accepts strict JSON only (no comments, no
// trailing commas).

#ifndef SPINE_OBS_JSON_H_
#define SPINE_OBS_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace spine::obs {

class JsonWriter {
 public:
  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();
  // Object key; must be followed by exactly one value or container.
  void Key(std::string_view key);
  void Value(std::string_view value);
  void Value(const char* value) { Value(std::string_view(value)); }
  void Value(double value);
  void Value(uint64_t value);
  void Value(int64_t value);
  void Value(uint32_t value) { Value(static_cast<uint64_t>(value)); }
  void Value(int value) { Value(static_cast<int64_t>(value)); }
  void Value(bool value);
  void Null();
  // Splices an already-serialized JSON value (e.g. a nested document
  // from Registry::ToJson) as the next value. The caller vouches that
  // `json` is well-formed.
  void RawValue(std::string_view json);

  // Returns the finished document; the writer is spent afterwards.
  std::string Finish() &&;

 private:
  void Separate();
  void Raw(std::string_view text);

  std::string out_;
  // True when the next emission at this nesting level needs a comma.
  std::vector<bool> needs_comma_ = {false};
  bool after_key_ = false;
};

// Escapes `text` as a JSON string literal including the quotes.
std::string JsonEscape(std::string_view text);

// Parsed JSON document node.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number = 0.0;
  std::string string_value;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  // Member lookup on an object; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
};

// Parses a complete JSON document (one value with only whitespace
// around it). Returns kInvalidArgument with a position on any error.
Result<JsonValue> ParseJson(std::string_view text);

}  // namespace spine::obs

#endif  // SPINE_OBS_JSON_H_
