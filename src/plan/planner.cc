#include "plan/planner.h"

#include <algorithm>

namespace spine::plan {
namespace {

// sigma^len, saturating well above any text length we care about.
uint64_t SaturatingPow(uint64_t sigma, uint32_t len) {
  constexpr uint64_t kCap = uint64_t{1} << 62;
  uint64_t value = 1;
  for (uint32_t i = 0; i < len; ++i) {
    if (value > kCap / std::max<uint64_t>(sigma, 2)) return kCap;
    value *= std::max<uint64_t>(sigma, 2);
  }
  return value;
}

}  // namespace

ApproxPlan PlanApprox(uint64_t text_len, uint32_t sigma,
                      uint32_t pattern_len, uint32_t budget,
                      bool backend_seedable) {
  ApproxPlan plan;
  // Degenerate queries (empty pattern, budget >= m) are answered before
  // any plan runs; a scan plan is a safe identity for them.
  if (!backend_seedable || pattern_len == 0 || budget >= pattern_len) {
    return plan;
  }
  const uint32_t pieces = budget + 1;
  if (pieces > pattern_len) return plan;  // pieces would be empty
  const uint32_t seed_len = pattern_len / pieces;
  // One- and two-character seeds hit a constant fraction of the text;
  // locating them costs more than the scan they were meant to avoid.
  if (seed_len < 3) return plan;
  // Expected verification work: each of `pieces` seeds surfaces about
  // text_len / sigma^seed_len candidates, each verified in O(m). The
  // scan verifies all ~text_len windows. Seeds must win by a margin
  // (4x) to cover the sort/dedup and per-seed lookup overhead.
  const uint64_t denom = SaturatingPow(sigma, seed_len);
  const uint64_t expected_candidates =
      pieces * (text_len / std::max<uint64_t>(denom, 1) + 1);
  if (expected_candidates * 4 >= std::max<uint64_t>(text_len, 1)) {
    return plan;
  }
  plan.use_seeds = true;
  plan.piece_count = pieces;
  plan.seed_len = seed_len;
  return plan;
}

std::pair<uint32_t, uint32_t> SeedBoundaries(uint32_t m, uint32_t pieces,
                                             uint32_t piece) {
  const uint64_t begin = static_cast<uint64_t>(piece) * m / pieces;
  const uint64_t end = (static_cast<uint64_t>(piece) + 1) * m / pieces;
  return {static_cast<uint32_t>(begin), static_cast<uint32_t>(end)};
}

}  // namespace spine::plan
