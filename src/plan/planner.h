// Query planner for the approximate kinds (kMismatch, kEditDistance).
//
// Seed-and-extend rests on the pigeonhole principle: a window matching
// the pattern with at most k errors must contain at least one of k+1
// pattern pieces exactly (substitutions and indels both consume whole
// pieces). The planner decides, from index statistics alone, whether
// locating those exact seeds through the SPINE backbone beats a flat
// O(n*m) verification scan:
//
//   expected candidates per seed  ~  n / sigma^seed_len
//   seed path cost                ~  pieces * (seed_len + E[cand] * m)
//   scan path cost                ~  n * m        (mismatch; edit adds
//                                                  a band factor)
//
// The planner is deliberately dependency-light (no core/ includes): it
// consumes plain numbers so the engine, the shard merger, benches and
// tests can all interrogate it without layering cycles — the
// surface-vs-execution split realm-core uses for its query planner.
//
// Determinism matters: the same inputs always produce the same plan, so
// differential tests can pin down which path produced an answer and
// bench runs can log the chosen seed length per point.

#ifndef SPINE_PLAN_PLANNER_H_
#define SPINE_PLAN_PLANNER_H_

#include <cstdint>
#include <utility>

namespace spine::plan {

// The execution strategy for one approximate query.
struct ApproxPlan {
  // True: locate `piece_count` exact seeds via the index backbone and
  // verify only around their occurrences. False: verify every text
  // window (the O(n*m) fallback every backend can run).
  bool use_seeds = false;
  // Number of pattern pieces (budget + 1) when seeding.
  uint32_t piece_count = 0;
  // Length of the SHORTEST piece — the planner's cost proxy, logged by
  // bench_approx per point.
  uint32_t seed_len = 0;

  bool operator==(const ApproxPlan&) const = default;
};

// Picks the strategy for a pattern of `pattern_len` with `budget`
// allowed errors against `text_len` indexed characters over an
// alphabet of `sigma` symbols. `backend_seedable` is false for
// backends that cannot run the backbone seed lookup (suffix trees, the
// naive oracle); they always get the scan plan.
ApproxPlan PlanApprox(uint64_t text_len, uint32_t sigma,
                      uint32_t pattern_len, uint32_t budget,
                      bool backend_seedable);

// Half-open [begin, end) of piece `piece` (0-based) when a pattern of
// `m` characters splits into `pieces` near-equal parts. The same
// arithmetic as the extender: begin = piece*m/pieces, so earlier
// pieces are never longer than later ones and the shortest piece has
// m/pieces characters.
std::pair<uint32_t, uint32_t> SeedBoundaries(uint32_t m, uint32_t pieces,
                                             uint32_t piece);

}  // namespace spine::plan

#endif  // SPINE_PLAN_PLANNER_H_
