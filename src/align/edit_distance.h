// Edit-distance primitives used by the alignment pipeline: a banded
// Ukkonen-style computation for bounded-error verification, and a plain
// quadratic DP used as the small-case oracle and gap filler.

#ifndef SPINE_ALIGN_EDIT_DISTANCE_H_
#define SPINE_ALIGN_EDIT_DISTANCE_H_

#include <cstdint>
#include <optional>
#include <utility>
#include <string_view>

namespace spine::align {

// Unit-cost Levenshtein distance (substitution/insertion/deletion).
uint32_t EditDistance(std::string_view a, std::string_view b);

// Banded edit distance: returns the distance if it is <= max_edits,
// nullopt otherwise. O((|a|+|b|) * max_edits).
std::optional<uint32_t> BandedEditDistance(std::string_view a,
                                           std::string_view b,
                                           uint32_t max_edits);

// Minimum edit distance between `pattern` and any prefix of `window`,
// within max_edits; returns (edits, prefix_len) of the best (fewest
// edits, then shortest) prefix, or nullopt. The semi-global primitive
// behind approximate matching (align/approximate.h, mrs/).
std::optional<std::pair<uint32_t, uint32_t>> BestPrefixEditDistance(
    std::string_view pattern, std::string_view window, uint32_t max_edits);

}  // namespace spine::align

#endif  // SPINE_ALIGN_EDIT_DISTANCE_H_
