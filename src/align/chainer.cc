#include "align/chainer.h"

#include <algorithm>
#include <queue>

#include "common/check.h"

namespace spine::align {

namespace {

// Fenwick tree over ranks storing (best score, anchor index), queried
// as a prefix maximum.
class PrefixMaxTree {
 public:
  explicit PrefixMaxTree(uint32_t size)
      : scores_(size + 1, 0), indices_(size + 1, kNone) {}

  static constexpr uint32_t kNone = 0xffffffffu;

  void Update(uint32_t rank, uint64_t score, uint32_t index) {
    for (uint32_t i = rank + 1; i < scores_.size(); i += i & (~i + 1)) {
      if (score > scores_[i]) {
        scores_[i] = score;
        indices_[i] = index;
      }
    }
  }

  // Best (score, index) among ranks [0, rank].
  std::pair<uint64_t, uint32_t> Query(uint32_t rank) const {
    uint64_t best = 0;
    uint32_t index = kNone;
    for (uint32_t i = rank + 1; i > 0; i -= i & (~i + 1)) {
      if (scores_[i] > best) {
        best = scores_[i];
        index = indices_[i];
      }
    }
    return {best, index};
  }

 private:
  std::vector<uint64_t> scores_;
  std::vector<uint32_t> indices_;
};

}  // namespace

Chain BestChain(std::vector<Anchor> anchors, uint32_t max_overlap) {
  Chain chain;
  if (anchors.empty()) return chain;
  const uint32_t k = static_cast<uint32_t>(anchors.size());

  // Rank-compress data end positions for the Fenwick tree.
  std::vector<uint32_t> data_ends(k);
  for (uint32_t i = 0; i < k; ++i) {
    data_ends[i] = anchors[i].data_pos + anchors[i].length;
  }
  std::vector<uint32_t> sorted_ends = data_ends;
  std::sort(sorted_ends.begin(), sorted_ends.end());
  sorted_ends.erase(std::unique(sorted_ends.begin(), sorted_ends.end()),
                    sorted_ends.end());
  auto end_rank = [&](uint32_t value) {
    return static_cast<uint32_t>(
        std::lower_bound(sorted_ends.begin(), sorted_ends.end(), value) -
        sorted_ends.begin());
  };
  // Rank of the largest data end <= value, or kNone if none.
  auto last_rank_at_most = [&](uint32_t value) -> uint32_t {
    auto it = std::upper_bound(sorted_ends.begin(), sorted_ends.end(), value);
    if (it == sorted_ends.begin()) return PrefixMaxTree::kNone;
    return static_cast<uint32_t>(it - sorted_ends.begin()) - 1;
  };

  // Process anchors in query-start order; a *processed* anchor becomes
  // a valid predecessor once its query end is <= the current query
  // start + max_overlap (pending anchors wait in a min-heap so their
  // final DP value is what enters the tree).
  std::vector<uint32_t> by_start(k);
  for (uint32_t i = 0; i < k; ++i) by_start[i] = i;
  std::sort(by_start.begin(), by_start.end(), [&](uint32_t a, uint32_t b) {
    return anchors[a].query_pos < anchors[b].query_pos;
  });

  PrefixMaxTree tree(static_cast<uint32_t>(sorted_ends.size()));
  std::vector<uint64_t> dp(k, 0);
  std::vector<uint32_t> parent(k, PrefixMaxTree::kNone);
  // (query end, anchor) of processed anchors not yet in the tree.
  using Pending = std::pair<uint64_t, uint32_t>;
  std::priority_queue<Pending, std::vector<Pending>, std::greater<>> pending;
  uint64_t best_score = 0;
  uint32_t best_index = 0;

  for (uint32_t idx : by_start) {
    const Anchor& a = anchors[idx];
    while (!pending.empty() &&
           pending.top().first <=
               static_cast<uint64_t>(a.query_pos) + max_overlap) {
      uint32_t j = pending.top().second;
      pending.pop();
      tree.Update(end_rank(data_ends[j]), dp[j], j);
    }
    dp[idx] = a.length;
    uint32_t rank = last_rank_at_most(a.data_pos + max_overlap);
    if (rank != PrefixMaxTree::kNone) {
      auto [score, predecessor] = tree.Query(rank);
      if (score > 0) {
        dp[idx] = score + a.length;
        parent[idx] = predecessor;
      }
    }
    pending.push({static_cast<uint64_t>(a.query_pos) + a.length, idx});
    if (dp[idx] > best_score) {
      best_score = dp[idx];
      best_index = idx;
    }
  }

  chain.raw_score = best_score;
  for (uint32_t cur = best_index; cur != PrefixMaxTree::kNone;
       cur = parent[cur]) {
    chain.anchors.push_back(anchors[cur]);
  }
  std::reverse(chain.anchors.begin(), chain.anchors.end());

  // Trim overlaps off each later anchor so the emitted chain is
  // strictly non-overlapping; anchors consumed entirely are dropped.
  std::vector<Anchor> trimmed;
  trimmed.reserve(chain.anchors.size());
  for (Anchor a : chain.anchors) {
    if (!trimmed.empty()) {
      const Anchor& prev = trimmed.back();
      uint32_t q_overlap =
          prev.query_pos + prev.length > a.query_pos
              ? prev.query_pos + prev.length - a.query_pos
              : 0;
      uint32_t d_overlap = prev.data_pos + prev.length > a.data_pos
                               ? prev.data_pos + prev.length - a.data_pos
                               : 0;
      uint32_t trim = std::max(q_overlap, d_overlap);
      if (trim >= a.length) continue;  // nothing left of this anchor
      a.query_pos += trim;
      a.data_pos += trim;
      a.length -= trim;
    }
    trimmed.push_back(a);
  }
  chain.anchors = std::move(trimmed);
  chain.score = 0;
  for (const Anchor& a : chain.anchors) chain.score += a.length;

#ifndef NDEBUG
  // Postcondition: the emitted chain is strictly ordered and
  // non-overlapping (overlaps were trimmed above).
  for (size_t i = 1; i < chain.anchors.size(); ++i) {
    const Anchor& prev = chain.anchors[i - 1];
    const Anchor& cur = chain.anchors[i];
    SPINE_DCHECK(prev.query_pos + prev.length <= cur.query_pos);
    SPINE_DCHECK(prev.data_pos + prev.length <= cur.data_pos);
  }
#endif
  return chain;
}

}  // namespace spine::align
