// k-mismatch (Hamming) search directly on the SPINE structure.
//
// Unlike the seed-and-extend pipeline (approximate.h), this walks the
// index itself: a depth-first search over the threshold-checked forward
// edges, branching on every alphabet character and charging a mismatch
// when the character differs from the pattern. Each complete path
// spells one variant of the pattern that occurs in the data string and
// ends at the variant's first occurrence; all occurrences of all
// variants are then expanded with ONE shared backbone scan (the paper's
// deferred batching, Section 4).
//
// Cost is O(sigma^k * m) node steps in the worst case — meant for small
// mismatch budgets, the common case in read mapping / motif search.

#ifndef SPINE_ALIGN_HAMMING_H_
#define SPINE_ALIGN_HAMMING_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/matcher.h"
#include "core/spine_index.h"

namespace spine::align {

struct HammingHit {
  uint32_t data_pos = 0;     // start of the occurrence
  uint32_t mismatches = 0;   // Hamming distance to the pattern
  bool operator==(const HammingHit&) const = default;
};

// All occurrences (across all matching variants) of `pattern` within
// Hamming distance `max_mismatches`, sorted by position. Works with any
// index exposing the shared search interface (see core/search.h).
template <typename Index>
std::vector<HammingHit> FindHammingMatches(const Index& index,
                                           std::string_view pattern,
                                           uint32_t max_mismatches,
                                           SearchStats* stats = nullptr) {
  std::vector<HammingHit> hits;
  const uint32_t m = static_cast<uint32_t>(pattern.size());
  if (m == 0 || index.size() < m) return hits;
  const Alphabet& alphabet = index.alphabet();

  // Encode the pattern; out-of-alphabet characters always mismatch.
  std::vector<Code> codes;
  codes.reserve(m);
  for (char ch : pattern) codes.push_back(alphabet.Encode(ch));

  // DFS over (node, depth, mismatches). Completed paths become pseudo
  // maximal matches for the shared occurrence scan.
  struct Frame {
    NodeId node;
    uint32_t depth;
    uint32_t mismatches;
  };
  std::vector<Frame> stack = {{kRootNode, 0, 0}};
  std::vector<MaximalMatch> variants;
  std::vector<uint32_t> variant_mismatches;
  while (!stack.empty()) {
    Frame frame = stack.back();
    stack.pop_back();
    if (frame.depth == m) {
      variants.push_back({0, m, frame.node});
      variant_mismatches.push_back(frame.mismatches);
      continue;
    }
    for (uint32_t c = 0; c < alphabet.size(); ++c) {
      uint32_t cost = codes[frame.depth] == c ? 0 : 1;
      if (frame.mismatches + cost > max_mismatches) continue;
      StepResult step =
          index.Step(frame.node, static_cast<Code>(c), frame.depth, stats);
      if (!step.ok) continue;
      stack.push_back({step.dest, frame.depth + 1, frame.mismatches + cost});
    }
  }

  // One backbone scan serves every variant (distinct variants can never
  // occupy the same window, so the union needs no deduplication).
  auto expanded = GenericCollectAllOccurrences(index, variants);
  for (size_t v = 0; v < expanded.size(); ++v) {
    for (uint32_t pos : expanded[v].data_positions) {
      hits.push_back({pos, variant_mismatches[v]});
    }
  }
  std::sort(hits.begin(), hits.end(),
            [](const HammingHit& a, const HammingHit& b) {
              return a.data_pos < b.data_pos;
            });
  return hits;
}

}  // namespace spine::align

#endif  // SPINE_ALIGN_HAMMING_H_
