#include "align/approximate.h"

#include <algorithm>
#include <optional>
#include <string>
#include <unordered_set>

#include "align/edit_distance.h"
#include "common/check.h"

namespace spine::align {



std::vector<ApproximateHit> FindApproximate(const CompactSpineIndex& index,
                                            std::string_view pattern,
                                            uint32_t max_edits) {
  std::vector<ApproximateHit> hits;
  const uint32_t m = static_cast<uint32_t>(pattern.size());
  if (m == 0 || max_edits >= m) return hits;
  const uint32_t n = static_cast<uint32_t>(index.size());
  if (n == 0) return hits;

  // Pigeonhole seeds: k+1 pieces, each non-empty.
  const uint32_t pieces = max_edits + 1;
  if (pieces > m) return hits;

  std::unordered_set<int64_t> candidate_starts;
  for (uint32_t piece = 0; piece < pieces; ++piece) {
    uint32_t begin = piece * m / pieces;
    uint32_t end = (piece + 1) * m / pieces;
    SPINE_DCHECK(end > begin);
    std::string_view seed = pattern.substr(begin, end - begin);
    for (uint32_t hit : index.FindAll(seed)) {
      int64_t base = static_cast<int64_t>(hit) - begin;
      for (int64_t shift = -static_cast<int64_t>(max_edits);
           shift <= static_cast<int64_t>(max_edits); ++shift) {
        int64_t start = base + shift;
        if (start >= 0 && start < n) candidate_starts.insert(start);
      }
    }
  }

  // Verify each candidate window against the indexed text (SPINE is
  // self-contained: characters come from the vertebra labels).
  std::vector<int64_t> starts(candidate_starts.begin(),
                              candidate_starts.end());
  std::sort(starts.begin(), starts.end());
  std::string window;
  for (int64_t start : starts) {
    uint32_t window_len =
        std::min<uint32_t>(m + max_edits, n - static_cast<uint32_t>(start));
    if (window_len + max_edits < m) continue;  // too close to the end
    window.clear();
    for (uint32_t i = 0; i < window_len; ++i) {
      window.push_back(index.CharAt(static_cast<uint64_t>(start) + i));
    }
    auto best = BestPrefixEditDistance(pattern, window, max_edits);
    if (best.has_value()) {
      hits.push_back({static_cast<uint32_t>(start), best->second,
                      best->first});
    }
  }
  return hits;
}

}  // namespace spine::align
