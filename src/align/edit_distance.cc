#include "align/edit_distance.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace spine::align {

uint32_t EditDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  std::vector<uint32_t> row(a.size() + 1);
  for (size_t i = 0; i <= a.size(); ++i) row[i] = static_cast<uint32_t>(i);
  for (size_t j = 1; j <= b.size(); ++j) {
    uint32_t diagonal = row[0];
    row[0] = static_cast<uint32_t>(j);
    for (size_t i = 1; i <= a.size(); ++i) {
      uint32_t up = row[i];
      row[i] = std::min({row[i] + 1, row[i - 1] + 1,
                         diagonal + (a[i - 1] == b[j - 1] ? 0u : 1u)});
      diagonal = up;
    }
  }
  return row[a.size()];
}

std::optional<uint32_t> BandedEditDistance(std::string_view a,
                                           std::string_view b,
                                           uint32_t max_edits) {
  const size_t la = a.size(), lb = b.size();
  const uint64_t len_gap = la > lb ? la - lb : lb - la;
  if (len_gap > max_edits) return std::nullopt;
  const int64_t band = static_cast<int64_t>(max_edits);
  const uint32_t kInf = max_edits + 1;

  // Row-by-row DP restricted to the diagonal band |i - j| <= band.
  std::vector<uint32_t> prev(2 * max_edits + 2, kInf);
  std::vector<uint32_t> cur(2 * max_edits + 2, kInf);
  // Column j maps to band slot j - i + band (valid slots 0..2*band).
  // Row 0: distance j for j <= band.
  for (int64_t slot = 0; slot <= 2 * band; ++slot) {
    int64_t j = slot - band;  // i = 0
    if (j >= 0 && j <= static_cast<int64_t>(lb)) {
      prev[slot] = static_cast<uint32_t>(j);
    }
  }
  for (int64_t i = 1; i <= static_cast<int64_t>(la); ++i) {
    std::fill(cur.begin(), cur.end(), kInf);
    for (int64_t slot = 0; slot <= 2 * band; ++slot) {
      int64_t j = i + slot - band;
      if (j < 0 || j > static_cast<int64_t>(lb)) continue;
      uint32_t best = kInf;
      if (j == 0) {
        best = static_cast<uint32_t>(i);
      } else {
        // Diagonal (i-1, j-1) is the same slot in the previous row.
        if (prev[slot] < kInf) {
          uint32_t cost = a[i - 1] == b[j - 1] ? 0 : 1;
          best = std::min(best, prev[slot] + cost);
        }
        // Left (i, j-1) is slot - 1 in the current row.
        if (slot > 0 && cur[slot - 1] < kInf) {
          best = std::min(best, cur[slot - 1] + 1);
        }
        // Up (i-1, j) is slot + 1 in the previous row.
        if (slot < 2 * band && prev[slot + 1] < kInf) {
          best = std::min(best, prev[slot + 1] + 1);
        }
      }
      if (best <= max_edits) cur[slot] = best;
    }
    std::swap(prev, cur);
  }
  int64_t final_slot = static_cast<int64_t>(lb) - static_cast<int64_t>(la) +
                       band;
  if (final_slot < 0 || final_slot > 2 * band) return std::nullopt;
  uint32_t result = prev[final_slot];
  if (result > max_edits) return std::nullopt;
  return result;
}

std::optional<std::pair<uint32_t, uint32_t>> BestPrefixEditDistance(
    std::string_view pattern, std::string_view window, uint32_t max_edits) {
  const uint32_t m = static_cast<uint32_t>(pattern.size());
  const uint32_t w = static_cast<uint32_t>(window.size());
  const uint32_t kInf = max_edits + 1;
  // dp[j] = edit distance between pattern[0..i) and window[0..j).
  std::vector<uint32_t> dp(w + 1), next(w + 1);
  for (uint32_t j = 0; j <= w; ++j) dp[j] = j <= max_edits ? j : kInf;
  for (uint32_t i = 1; i <= m; ++i) {
    next[0] = i <= max_edits ? i : kInf;
    for (uint32_t j = 1; j <= w; ++j) {
      uint32_t best = kInf;
      if (dp[j - 1] < kInf) {
        best = std::min(best,
                        dp[j - 1] + (pattern[i - 1] == window[j - 1] ? 0 : 1));
      }
      if (dp[j] < kInf) best = std::min(best, dp[j] + 1);
      if (next[j - 1] < kInf) best = std::min(best, next[j - 1] + 1);
      next[j] = best > max_edits ? kInf : best;
    }
    std::swap(dp, next);
  }
  uint32_t best_edits = kInf;
  uint32_t best_len = 0;
  for (uint32_t j = 0; j <= w; ++j) {
    if (dp[j] < best_edits) {
      best_edits = dp[j];
      best_len = j;
    }
  }
  if (best_edits > max_edits) return std::nullopt;
  return std::make_pair(best_edits, best_len);
}

}  // namespace spine::align
