// Whole-sequence aligner built on SPINE: the paper's motivating
// application (Section 1: "performing global alignment between a pair
// of genomes ... the core operation of which is searching for maximal
// unique matches").
//
// Pipeline:
//   1. index the data sequence with SPINE,
//   2. stream the query to collect maximal matching substrings and all
//      their occurrences (Sections 4 of the paper),
//   3. turn occurrences into anchors and chain the best collinear,
//      non-overlapping subset (align/chainer.h),
//   4. fill the gaps between consecutive anchors with banded edit
//      distance, producing alignment statistics.

#ifndef SPINE_ALIGN_ALIGNER_H_
#define SPINE_ALIGN_ALIGNER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "align/chainer.h"
#include "common/status.h"

namespace spine::align {

struct AlignOptions {
  // Minimum maximal-match length used for anchors (the paper's
  // "threshold value"; Section 4 example uses 6, genome scale ~20).
  uint32_t min_anchor_len = 20;
  // Gaps longer than this on either sequence are not edit-aligned; they
  // are reported as unaligned blocks (structural difference).
  uint32_t max_gap = 5000;
  // Use only anchors unique in the data sequence (MUM-style) when true.
  bool unique_anchors_only = false;
};

struct AlignmentResult {
  Chain chain;                   // the selected anchors
  uint64_t anchored_bases = 0;   // total exact-match bases in the chain
  uint64_t gap_edits = 0;        // edit operations inside aligned gaps
  uint64_t gap_aligned_bases = 0;   // bases covered by edit-aligned gaps
  uint64_t unaligned_query = 0;  // query bases in skipped blocks/ends
  uint64_t unaligned_data = 0;   // data bases in skipped blocks/ends

  // Fraction of the query covered by anchors + edit-aligned gaps.
  double QueryCoverage(uint64_t query_len) const;
  // Identity over the aligned portion: anchored / (anchored + edits +
  // gap bases).
  double Identity() const;
};

// Aligns `query` against `data`. Fails only on out-of-alphabet input.
Result<AlignmentResult> AlignSequences(std::string_view data,
                                       std::string_view query,
                                       const AlignOptions& options = {});

}  // namespace spine::align

#endif  // SPINE_ALIGN_ALIGNER_H_
