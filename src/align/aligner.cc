#include "align/aligner.h"

#include <algorithm>

#include "align/edit_distance.h"
#include "common/check.h"
#include "compact/compact_spine.h"
#include "core/matcher.h"

namespace spine::align {

double AlignmentResult::QueryCoverage(uint64_t query_len) const {
  if (query_len == 0) return 0.0;
  // gap_aligned_bases counts query-side bases of edit-aligned gaps.
  return static_cast<double>(anchored_bases + gap_aligned_bases) /
         static_cast<double>(query_len);
}

double AlignmentResult::Identity() const {
  uint64_t aligned = anchored_bases + gap_aligned_bases;
  if (aligned == 0) return 0.0;
  return static_cast<double>(anchored_bases +
                             (gap_aligned_bases > gap_edits
                                  ? gap_aligned_bases - gap_edits
                                  : 0)) /
         static_cast<double>(anchored_bases + gap_aligned_bases);
}

namespace {

// Collects chainable anchors from any SPINE implementation.
template <typename Index>
std::vector<Anchor> CollectAnchors(const Index& index, std::string_view query,
                                   const AlignOptions& options) {
  auto matches =
      GenericFindMaximalMatches(index, query, options.min_anchor_len);
  auto expanded = GenericCollectAllOccurrences(index, matches);
  std::vector<Anchor> anchors;
  for (const MatchOccurrences& occ : expanded) {
    if (options.unique_anchors_only && occ.data_positions.size() != 1) {
      continue;
    }
    for (uint32_t data_pos : occ.data_positions) {
      anchors.push_back({occ.match.query_pos, data_pos, occ.match.length});
    }
  }
  return anchors;
}

// Smallest alphabet covering `data`: dna, ascii, or byte.
Alphabet DetectAlphabet(std::string_view data) {
  bool dna = true, ascii = true;
  Alphabet dna_alphabet = Alphabet::Dna();
  Alphabet ascii_alphabet = Alphabet::Ascii();
  for (char c : data) {
    if (dna && dna_alphabet.Encode(c) == kInvalidCode) dna = false;
    if (ascii && ascii_alphabet.Encode(c) == kInvalidCode) ascii = false;
    if (!dna && !ascii) break;
  }
  if (dna) return dna_alphabet;
  if (ascii) return ascii_alphabet;
  return Alphabet::Byte();
}

}  // namespace

Result<AlignmentResult> AlignSequences(std::string_view data,
                                       std::string_view query,
                                       const AlignOptions& options) {
  Alphabet alphabet = DetectAlphabet(data);

  std::vector<Anchor> anchors;
  if (alphabet.kind() == Alphabet::Kind::kByte) {
    // The compact layout caps the alphabet at 127 symbols; raw bytes go
    // through the reference implementation instead.
    SpineIndex index(alphabet);
    SPINE_RETURN_IF_ERROR(index.AppendString(data));
    anchors = CollectAnchors(index, query, options);
  } else {
    CompactSpineIndex index(alphabet);
    SPINE_RETURN_IF_ERROR(index.AppendString(data));
    anchors = CollectAnchors(index, query, options);
  }

  AlignmentResult result;
  // Maximal matches routinely share a handful of junction characters;
  // allow bounded overlap in the chain and let the chainer trim it.
  result.chain = BestChain(std::move(anchors), /*max_overlap=*/64);
  result.anchored_bases = result.chain.score;
  if (result.chain.anchors.empty()) {
    result.unaligned_query = query.size();
    result.unaligned_data = data.size();
    return result;
  }

  // Fill inter-anchor gaps with banded edit distance.
  auto process_gap = [&](uint32_t q_begin, uint32_t q_end, uint32_t d_begin,
                         uint32_t d_end) {
    uint64_t q_len = q_end - q_begin;
    uint64_t d_len = d_end - d_begin;
    if (q_len == 0 && d_len == 0) return;
    if (q_len > options.max_gap || d_len > options.max_gap) {
      result.unaligned_query += q_len;
      result.unaligned_data += d_len;
      return;
    }
    std::string_view q_gap = query.substr(q_begin, q_len);
    std::string_view d_gap = data.substr(d_begin, d_len);
    uint32_t budget = static_cast<uint32_t>(std::max(q_len, d_len));
    std::optional<uint32_t> edits = BandedEditDistance(q_gap, d_gap, budget);
    SPINE_DCHECK(edits.has_value());  // budget always suffices
    result.gap_edits += edits.value_or(budget);
    result.gap_aligned_bases += q_len;
  };

  const std::vector<Anchor>& chain = result.chain.anchors;
  // Interior gaps only: leading/trailing overhangs are reported as
  // unaligned (global-ish alignment anchored at the chain).
  result.unaligned_query += chain.front().query_pos;
  result.unaligned_data += chain.front().data_pos;
  for (size_t i = 1; i < chain.size(); ++i) {
    process_gap(chain[i - 1].query_pos + chain[i - 1].length,
                chain[i].query_pos,
                chain[i - 1].data_pos + chain[i - 1].length,
                chain[i].data_pos);
  }
  result.unaligned_query +=
      query.size() - (chain.back().query_pos + chain.back().length);
  result.unaligned_data +=
      data.size() - (chain.back().data_pos + chain.back().length);
  return result;
}

}  // namespace spine::align
