// Anchor chaining: selects the best collinear subset of exact-match
// anchors — the post-processing step whole-genome aligners (e.g.
// MUMmer, the paper's motivating application) run on the maximal
// matches that SPINE produces.
//
// An anchor (q, d, len) asserts query[q, q+len) == data[d, d+len).
// A chain is a sequence of anchors in increasing query-start order;
// anchor j may precede i iff q_start_j < q_start_i (processing order),
// q_j + len_j <= q_i + max_overlap and d_j + len_j <= d_i + max_overlap
// — consecutive anchors may overlap by at most `max_overlap` on each
// axis (maximal matches sharing a few junction characters are the
// common case; with max_overlap = 0 this is exact non-overlap
// chaining). The DP maximizes the raw total anchored length via sparse
// dynamic programming (a pending min-heap activates processed anchors
// by query end into a prefix-max Fenwick tree over data ends),
// O(k log k) over k anchors. At emission overlaps are trimmed off the
// later anchor (dropping anchors a trim consumes entirely), so the
// returned chain is strictly non-overlapping.

#ifndef SPINE_ALIGN_CHAINER_H_
#define SPINE_ALIGN_CHAINER_H_

#include <cstdint>
#include <vector>

namespace spine::align {

struct Anchor {
  uint32_t query_pos = 0;
  uint32_t data_pos = 0;
  uint32_t length = 0;
  bool operator==(const Anchor&) const = default;
};

struct Chain {
  std::vector<Anchor> anchors;  // non-overlapping, increasing on both axes
  uint64_t score = 0;           // total anchored length after trimming
  uint64_t raw_score = 0;       // DP objective (before overlap trimming)
};

// Best collinear chain (see the header comment). max_overlap = 0 gives
// strict non-overlap chaining.
Chain BestChain(std::vector<Anchor> anchors, uint32_t max_overlap = 0);

}  // namespace spine::align

#endif  // SPINE_ALIGN_CHAINER_H_
