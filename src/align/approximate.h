// Approximate pattern matching on a SPINE index via seed-and-extend.
//
// The pigeonhole principle: if `pattern` occurs with at most k edits,
// then splitting it into k+1 pieces guarantees at least one piece occurs
// exactly. Each piece is located with the exact index (SPINE FindAll),
// and each candidate window is verified with banded edit distance.
// This is the classical way exact substring indexes (suffix trees,
// SPINE) serve approximate queries — functionality the paper contrasts
// against structures that drop suffix links (Section 7).

#ifndef SPINE_ALIGN_APPROXIMATE_H_
#define SPINE_ALIGN_APPROXIMATE_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "compact/compact_spine.h"

namespace spine::align {

struct ApproximateHit {
  uint32_t data_pos = 0;  // start of the matched window in the data
  uint32_t length = 0;    // window length (within +-edits of |pattern|)
  uint32_t edits = 0;     // edit distance to the pattern
  bool operator==(const ApproximateHit&) const = default;
};

// All positions where `pattern` matches the indexed string with at most
// `max_edits` Levenshtein edits. Hits are reported at the best (lowest
// edit count, then shortest) window per start position, sorted by
// position. Returns empty when pattern is empty or max_edits >=
// |pattern| (where "matches" degenerates).
std::vector<ApproximateHit> FindApproximate(const CompactSpineIndex& index,
                                            std::string_view pattern,
                                            uint32_t max_edits);

}  // namespace spine::align

#endif  // SPINE_ALIGN_APPROXIMATE_H_
