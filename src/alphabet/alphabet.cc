#include "alphabet/alphabet.h"

#include <cctype>

#include "common/check.h"

namespace spine {

namespace {

uint32_t BitsFor(uint32_t size) {
  uint32_t bits = 1;
  while ((1u << bits) < size) ++bits;
  return bits;
}

}  // namespace

Alphabet Alphabet::Dna() { return Alphabet(Kind::kDna, "ACGT", true); }

Alphabet Alphabet::Protein() {
  return Alphabet(Kind::kProtein, "ACDEFGHIKLMNPQRSTVWY", true);
}

Alphabet Alphabet::Byte() { return Alphabet(Kind::kByte, {}, false); }

Alphabet Alphabet::Ascii() {
  std::string letters = "\t\n\r";
  for (char c = ' '; c <= '~'; ++c) letters.push_back(c);
  return Alphabet(Kind::kAscii, letters, false);
}

Alphabet::Alphabet(Kind kind, std::string_view letters, bool fold_case)
    : kind_(kind) {
  encode_.fill(kInvalidCode);
  decode_.fill('?');
  if (kind == Kind::kByte) {
    // 0xFF is reserved as the kInvalidCode sentinel.
    size_ = 255;
    for (int i = 0; i < 255; ++i) {
      encode_[i] = static_cast<Code>(i);
      decode_[i] = static_cast<char>(i);
    }
  } else {
    SPINE_CHECK(letters.size() < 256);
    size_ = static_cast<uint32_t>(letters.size());
    for (uint32_t i = 0; i < size_; ++i) {
      char c = letters[i];
      encode_[static_cast<uint8_t>(c)] = static_cast<Code>(i);
      if (fold_case) {
        encode_[static_cast<uint8_t>(
            std::tolower(static_cast<unsigned char>(c)))] =
            static_cast<Code>(i);
      }
      decode_[i] = c;
    }
  }
  bits_ = BitsFor(size_);
}

Status Alphabet::EncodeString(std::string_view s, std::string* codes) const {
  codes->clear();
  codes->reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    Code code = Encode(s[i]);
    if (code == kInvalidCode) {
      return Status::InvalidArgument("character '" + std::string(1, s[i]) +
                                     "' at offset " + std::to_string(i) +
                                     " is not in the " + name() +
                                     " alphabet");
    }
    codes->push_back(static_cast<char>(code));
  }
  return Status::OK();
}

const char* Alphabet::name() const {
  switch (kind_) {
    case Kind::kDna:
      return "dna";
    case Kind::kProtein:
      return "protein";
    case Kind::kByte:
      return "byte";
    case Kind::kAscii:
      return "ascii";
  }
  return "unknown";
}

}  // namespace spine
