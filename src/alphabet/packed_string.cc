#include "alphabet/packed_string.h"

#include "common/check.h"

namespace spine {

PackedString::PackedString(uint32_t bits_per_code) : bits_(bits_per_code) {
  SPINE_CHECK(bits_ >= 1 && bits_ <= 8);
}

void PackedString::Append(Code code) {
  SPINE_DCHECK(bits_ == 8 || code < (1u << bits_));
  EnsureOwned();
  uint64_t bit_pos = size_ * bits_;
  uint64_t word = bit_pos / 64;
  uint32_t offset = static_cast<uint32_t>(bit_pos % 64);
  if (word >= words_.size()) words_.push_back(0);
  words_[word] |= static_cast<uint64_t>(code) << offset;
  // A code may straddle two words.
  if (offset + bits_ > 64) {
    uint32_t spilled = offset + bits_ - 64;
    words_.push_back(static_cast<uint64_t>(code) >> (bits_ - spilled));
  } else if (offset + bits_ == 64 && (size_ + 1) * bits_ % 64 == 0) {
    // Next append starts a fresh word; nothing to do now.
  }
  ++size_;
}

Code PackedString::Get(uint64_t index) const {
  SPINE_DCHECK(index < size_);
  const uint64_t* words = word_data();
  uint64_t bit_pos = index * bits_;
  uint64_t word = bit_pos / 64;
  uint32_t offset = static_cast<uint32_t>(bit_pos % 64);
  uint64_t value = words[word] >> offset;
  if (offset + bits_ > 64) {
    value |= words[word + 1] << (64 - offset);
  }
  uint64_t mask = bits_ == 64 ? ~0ull : ((1ull << bits_) - 1);
  return static_cast<Code>(value & mask);
}

void PackedString::RestoreFromWords(std::vector<uint64_t> words,
                                    uint64_t size) {
  SPINE_CHECK(words.size() * 64 >= size * bits_);
  words_ = std::move(words);
  view_ = nullptr;
  view_words_ = 0;
  size_ = size;
}

void PackedString::BorrowFromWords(const uint64_t* words, uint64_t word_count,
                                   uint64_t size) {
  SPINE_CHECK(word_count * 64 >= size * bits_);
  SPINE_CHECK(reinterpret_cast<uintptr_t>(words) % alignof(uint64_t) == 0);
  words_.clear();
  view_ = words;
  view_words_ = word_count;
  size_ = size;
}

void PackedString::EnsureOwned() {
  if (view_ == nullptr) return;
  words_.assign(view_, view_ + view_words_);
  view_ = nullptr;
  view_words_ = 0;
}

}  // namespace spine
