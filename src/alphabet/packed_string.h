// PackedString: bit-packed storage of alphabet codes.
//
// SPINE stores one character label per vertebra; with a DNA alphabet the
// label costs 2 bits (the "0.25 bytes" CL entry of the paper's Table 2).
// PackedString provides that storage: an append-only sequence of codes
// packed at Alphabet::bits_per_code() bits each.

#ifndef SPINE_ALPHABET_PACKED_STRING_H_
#define SPINE_ALPHABET_PACKED_STRING_H_

#include <cstdint>
#include <vector>

#include "alphabet/alphabet.h"

namespace spine {

class PackedString {
 public:
  explicit PackedString(uint32_t bits_per_code);

  void Append(Code code);
  Code Get(uint64_t index) const;
  uint64_t size() const { return size_; }
  uint32_t bits_per_code() const { return bits_; }

  // Bytes of heap storage used by the packed words.
  uint64_t MemoryBytes() const { return words_.size() * sizeof(uint64_t); }

  // Raw word access for serialization.
  const std::vector<uint64_t>& words() const { return words_; }
  void RestoreFromWords(std::vector<uint64_t> words, uint64_t size);

 private:
  uint32_t bits_;
  uint64_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace spine

#endif  // SPINE_ALPHABET_PACKED_STRING_H_
