// PackedString: bit-packed storage of alphabet codes.
//
// SPINE stores one character label per vertebra; with a DNA alphabet the
// label costs 2 bits (the "0.25 bytes" CL entry of the paper's Table 2).
// PackedString provides that storage: an append-only sequence of codes
// packed at Alphabet::bits_per_code() bits each.

#ifndef SPINE_ALPHABET_PACKED_STRING_H_
#define SPINE_ALPHABET_PACKED_STRING_H_

#include <cstdint>
#include <vector>

#include "alphabet/alphabet.h"

namespace spine {

class PackedString {
 public:
  explicit PackedString(uint32_t bits_per_code);

  void Append(Code code);
  Code Get(uint64_t index) const;
  uint64_t size() const { return size_; }
  uint32_t bits_per_code() const { return bits_; }

  // Bytes of private heap storage used by the packed words. A borrowed
  // view costs nothing here: its pages belong to the mapping.
  uint64_t MemoryBytes() const {
    return view_ != nullptr ? 0 : words_.size() * sizeof(uint64_t);
  }

  // Raw word access for serialization and the match kernels. Valid in
  // both owned and borrowed modes; `words()` is only for owned strings
  // (kernel::EncodedPattern builds its own).
  const uint64_t* word_data() const {
    return view_ != nullptr ? view_ : words_.data();
  }
  uint64_t word_count() const {
    return view_ != nullptr ? view_words_ : words_.size();
  }
  const std::vector<uint64_t>& words() const { return words_; }

  void RestoreFromWords(std::vector<uint64_t> words, uint64_t size);
  // Zero-copy restore: points at `word_count` externally owned words
  // (an mmap'd image; the caller keeps the mapping alive). The pointer
  // must be 8-aligned. Append() copies out of the view first.
  void BorrowFromWords(const uint64_t* words, uint64_t word_count,
                       uint64_t size);
  bool borrowed() const { return view_ != nullptr; }

 private:
  // Copies a borrowed view into owned storage; no-op when owned.
  void EnsureOwned();

  uint32_t bits_;
  uint64_t size_ = 0;
  std::vector<uint64_t> words_;
  const uint64_t* view_ = nullptr;  // non-null => borrowed mode
  uint64_t view_words_ = 0;
};

}  // namespace spine

#endif  // SPINE_ALPHABET_PACKED_STRING_H_
