// Alphabet: maps between external characters and dense internal codes.
//
// The paper indexes DNA (sigma = 4, 2 bits/char) and proteins
// (sigma = 20, 5 bits/char). The library additionally supports arbitrary
// byte alphabets so the index can be used on plain text.

#ifndef SPINE_ALPHABET_ALPHABET_H_
#define SPINE_ALPHABET_ALPHABET_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace spine {

// Dense code for a character; valid codes are < Alphabet::size().
using Code = uint8_t;

inline constexpr Code kInvalidCode = 0xff;

class Alphabet {
 public:
  enum class Kind { kDna, kProtein, kByte, kAscii };

  // Factory functions for the supported alphabets.
  static Alphabet Dna();      // ACGT (case-insensitive)
  static Alphabet Protein();  // the 20 standard amino-acid letters
  static Alphabet Byte();     // bytes 0x00..0xFE (0xFF is the invalid sentinel)
  // Printable ASCII + tab/newline/CR (98 symbols, 7 bits/code): lets
  // the compact index (whose rib slots hold 7-bit character labels)
  // cover plain text.
  static Alphabet Ascii();

  Kind kind() const { return kind_; }
  // Number of distinct codes.
  uint32_t size() const { return size_; }
  // Bits needed to store one code (2 for DNA, 5 for protein, 8 for byte).
  uint32_t bits_per_code() const { return bits_; }

  // Returns kInvalidCode for characters outside the alphabet.
  Code Encode(char c) const {
    return encode_[static_cast<uint8_t>(c)];
  }
  char Decode(Code code) const { return decode_[code]; }

  // Encodes a whole string; fails on the first out-of-alphabet character.
  Status EncodeString(std::string_view s, std::string* codes) const;

  // Human-readable name ("dna", "protein", "byte", "ascii").
  const char* name() const;

 private:
  Alphabet(Kind kind, std::string_view letters, bool fold_case);

  Kind kind_;
  uint32_t size_;
  uint32_t bits_;
  std::array<Code, 256> encode_;
  std::array<char, 256> decode_;
};

}  // namespace spine

#endif  // SPINE_ALPHABET_ALPHABET_H_
