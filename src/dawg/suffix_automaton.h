// Suffix automaton — the DAWG (Directed Acyclic Word Graph) of Blumer
// et al., "The Smallest Automaton Recognizing the Subwords of a Text"
// (TCS 1985): the paper's only prior horizontal-compaction relative
// (Section 7, quoted at ~34 bytes/char for DNA).
//
// The suffix automaton is the minimal DFA accepting all substrings of
// the string; it is built online in O(n * sigma) with the classical
// Blumer/Crochemore construction. Two of the paper's contrasts are
// directly observable here:
//   * DAWG states do not correspond to text positions, so locating
//     occurrences needs an extra first-position + suffix-link-tree
//     pass (SPINE's nodes ARE positions);
//   * the automaton has up to 2n states and 3n transitions, several
//     times SPINE's footprint.

#ifndef SPINE_DAWG_SUFFIX_AUTOMATON_H_
#define SPINE_DAWG_SUFFIX_AUTOMATON_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "alphabet/alphabet.h"
#include "common/status.h"

namespace spine {

class SuffixAutomaton {
 public:
  explicit SuffixAutomaton(const Alphabet& alphabet);

  SuffixAutomaton(const SuffixAutomaton&) = delete;
  SuffixAutomaton& operator=(const SuffixAutomaton&) = delete;
  SuffixAutomaton(SuffixAutomaton&&) = default;
  SuffixAutomaton& operator=(SuffixAutomaton&&) = default;

  // Online extension by one character.
  Status Append(char c);
  Status AppendString(std::string_view s);

  const Alphabet& alphabet() const { return alphabet_; }
  uint64_t size() const { return length_; }
  uint64_t state_count() const { return states_.size(); }
  uint64_t transition_count() const;
  uint64_t MemoryBytes() const;

  bool Contains(std::string_view pattern) const;
  // Number of occurrences of `pattern` (via suffix-link-tree counts).
  uint64_t CountOccurrences(std::string_view pattern) const;
  // All start positions, ascending (via first-position propagation down
  // the suffix-link tree).
  std::vector<uint32_t> FindAll(std::string_view pattern) const;

  // Structural checks (automaton invariants: len(link(v)) < len(v),
  // transition monotonicity, state count <= 2n - 1).
  Status Validate() const;

  // --- Introspection (used by CompactDawg::Build) -----------------------

  static constexpr uint32_t kInitialState = 0;
  uint32_t StateOutDegree(uint32_t v) const {
    return static_cast<uint32_t>(states_[v].next.size());
  }
  uint32_t StateFirstEnd(uint32_t v) const { return states_[v].first_end; }
  // Visits (code, target) pairs in code order.
  template <typename Fn>
  void ForEachTransition(uint32_t v, Fn&& fn) const {
    for (const auto& [code, target] : states_[v].next) fn(code, target);
  }

 private:
  struct State {
    uint32_t len = 0;        // length of the longest string in the class
    uint32_t link = kNone;   // suffix link
    uint32_t first_end = 0;  // end position of the first occurrence
    bool is_clone = false;
    // Sorted (code, target) transition list — compact for genomic
    // alphabets where most states have very few transitions.
    std::vector<std::pair<Code, uint32_t>> next;
  };
  static constexpr uint32_t kNone = 0xffffffffu;

  uint32_t Transition(uint32_t state, Code c) const;
  void SetTransition(uint32_t state, Code c, uint32_t target);
  // State reached by `pattern`, or kNone.
  uint32_t Walk(std::string_view pattern) const;

  Alphabet alphabet_;
  std::vector<State> states_;
  uint32_t last_ = 0;
  uint64_t length_ = 0;
};

}  // namespace spine

#endif  // SPINE_DAWG_SUFFIX_AUTOMATON_H_
