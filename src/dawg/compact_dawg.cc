#include "dawg/compact_dawg.h"

#include <unordered_map>

#include "common/check.h"

namespace spine {

Result<CompactDawg> CompactDawg::Build(const Alphabet& alphabet,
                                       std::string_view text) {
  SuffixAutomaton automaton(alphabet);
  SPINE_RETURN_IF_ERROR(automaton.AppendString(text));

  CompactDawg cdawg(alphabet, alphabet.bits_per_code());
  for (char ch : text) cdawg.text_.Append(alphabet.Encode(ch));

  // CDAWG nodes = the automaton's initial state plus every state whose
  // out-degree differs from 1 (branching states and the sink).
  std::unordered_map<uint32_t, uint32_t> node_id;
  std::vector<uint32_t> node_states;
  auto ensure_node = [&](uint32_t state) {
    auto [it, inserted] =
        node_id.emplace(state, static_cast<uint32_t>(node_states.size()));
    if (inserted) node_states.push_back(state);
    return it->second;
  };
  ensure_node(SuffixAutomaton::kInitialState);
  for (uint32_t v = 0; v < automaton.state_count(); ++v) {
    if (automaton.StateOutDegree(v) != 1) ensure_node(v);
  }

  // Compress chains of out-degree-1 states into single labelled edges.
  // Chains are shared between in-edges (the automaton is a DAG that
  // merges), so tails are memoized: chain_target/chain_len give, for an
  // out-degree-1 state, the terminal node its chain reaches and the
  // remaining chain length.
  constexpr uint32_t kUnknown = 0xffffffffu;
  std::vector<uint32_t> chain_target(automaton.state_count(), kUnknown);
  std::vector<uint32_t> chain_len(automaton.state_count(), 0);
  std::vector<uint32_t> path;
  auto resolve_chain = [&](uint32_t start) {
    path.clear();
    uint32_t state = start;
    while (automaton.StateOutDegree(state) == 1 &&
           chain_target[state] == kUnknown) {
      path.push_back(state);
      uint32_t next = 0;
      automaton.ForEachTransition(state,
                                  [&](Code, uint32_t t) { next = t; });
      state = next;
    }
    uint32_t terminal;
    uint32_t suffix_len;
    if (automaton.StateOutDegree(state) != 1) {
      terminal = state;
      suffix_len = 0;
    } else {
      terminal = chain_target[state];
      suffix_len = chain_len[state];
    }
    for (auto it = path.rbegin(); it != path.rend(); ++it) {
      ++suffix_len;
      chain_target[*it] = terminal;
      chain_len[*it] = suffix_len;
    }
    return std::make_pair(
        automaton.StateOutDegree(start) != 1 ? start : chain_target[start],
        automaton.StateOutDegree(start) != 1 ? 0u : chain_len[start]);
  };

  // node_states grows only via ensure_node (chain interiors have
  // out-degree 1 and never become nodes), so indexing by position is
  // stable during the loop.
  cdawg.first_edge_.push_back(0);
  for (uint32_t id = 0; id < node_states.size(); ++id) {
    uint32_t state = node_states[id];
    automaton.ForEachTransition(state, [&](Code, uint32_t first_target) {
      auto [target, tail_len] = resolve_chain(first_target);
      uint32_t length = 1 + tail_len;
      // Every string reaching `target` first-ends at its first
      // occurrence, so the compressed label is the text slice ending
      // there.
      uint32_t label_start = automaton.StateFirstEnd(target) - length;
      cdawg.edges_.push_back({label_start, length, ensure_node(target)});
    });
    cdawg.first_edge_.push_back(static_cast<uint32_t>(cdawg.edges_.size()));
  }
  return cdawg;
}

uint64_t CompactDawg::MemoryBytes() const {
  return edges_.size() * sizeof(Edge) +
         first_edge_.size() * sizeof(uint32_t) + text_.MemoryBytes();
}

bool CompactDawg::Contains(std::string_view pattern) const {
  if (pattern.empty()) return true;
  if (text_.size() == 0) return false;
  uint32_t node = 0;
  size_t i = 0;
  while (i < pattern.size()) {
    Code c = alphabet_.Encode(pattern[i]);
    if (c == kInvalidCode) return false;
    // Out-edges have distinct first characters (inherited from the
    // automaton's deterministic transitions).
    const Edge* chosen = nullptr;
    for (uint32_t e = first_edge_[node]; e < first_edge_[node + 1]; ++e) {
      if (text_.Get(edges_[e].label_start) == c) {
        chosen = &edges_[e];
        break;
      }
    }
    if (chosen == nullptr) return false;
    for (uint32_t k = 0; k < chosen->label_len && i < pattern.size();
         ++k, ++i) {
      Code pc = alphabet_.Encode(pattern[i]);
      if (pc == kInvalidCode || text_.Get(chosen->label_start + k) != pc) {
        return false;
      }
    }
    node = chosen->target;
  }
  return true;
}

Status CompactDawg::Validate() const {
  const uint32_t n = static_cast<uint32_t>(text_.size());
  if (first_edge_.empty() || first_edge_[0] != 0 ||
      first_edge_.back() != edges_.size()) {
    return Status::Corruption("CSR adjacency malformed");
  }
  for (size_t v = 1; v < first_edge_.size(); ++v) {
    if (first_edge_[v] < first_edge_[v - 1]) {
      return Status::Corruption("CSR offsets not monotone");
    }
  }
  for (const Edge& edge : edges_) {
    if (edge.label_len == 0 ||
        static_cast<uint64_t>(edge.label_start) + edge.label_len > n) {
      return Status::Corruption("edge label out of range");
    }
    if (edge.target >= node_count()) {
      return Status::Corruption("edge target out of range");
    }
  }
  return Status::OK();
}

}  // namespace spine
