// CompactDawg (CDAWG): the compacted directed acyclic word graph of
// Inenaga et al. / Crochemore-Verin — the second DAWG variant the
// paper's Section 7 discusses (quoted at ~22 bytes per indexed
// character, still unable to reach SPINE's complete compaction).
//
// Built statically from the online SuffixAutomaton by compressing
// non-branching transition chains, exactly as a suffix tree compresses
// trie paths. Edge labels are recovered positionally: every string
// reaching automaton state v first-ends at v's first occurrence, so a
// compressed edge of length L into v is labelled text[first_end(v)-L,
// first_end(v)) — no label material is copied, only (start, len) pairs
// plus the bit-packed text.

#ifndef SPINE_DAWG_COMPACT_DAWG_H_
#define SPINE_DAWG_COMPACT_DAWG_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "alphabet/alphabet.h"
#include "alphabet/packed_string.h"
#include "common/status.h"
#include "dawg/suffix_automaton.h"

namespace spine {

class CompactDawg {
 public:
  // Builds the CDAWG of `text` (via a temporary suffix automaton).
  static Result<CompactDawg> Build(const Alphabet& alphabet,
                                   std::string_view text);

  const Alphabet& alphabet() const { return alphabet_; }
  uint64_t size() const { return text_.size(); }
  uint64_t node_count() const { return first_edge_.size() - 1; }
  uint64_t edge_count() const { return edges_.size(); }
  uint64_t MemoryBytes() const;

  bool Contains(std::string_view pattern) const;

  // Structural checks (edge ranges, targets, acyclicity by node order).
  Status Validate() const;

 private:
  CompactDawg(const Alphabet& alphabet, uint32_t bits)
      : alphabet_(alphabet), text_(bits) {}

  struct Edge {
    uint32_t label_start;  // into text_
    uint32_t label_len;
    uint32_t target;       // CDAWG node id
  };

  Alphabet alphabet_;
  PackedString text_;
  // CSR adjacency: node v's edges are edges_[first_edge_[v] ..
  // first_edge_[v+1]). Node 0 is the source (the automaton's initial
  // state).
  std::vector<uint32_t> first_edge_;
  std::vector<Edge> edges_;
};

}  // namespace spine

#endif  // SPINE_DAWG_COMPACT_DAWG_H_
