#include "dawg/suffix_automaton.h"

#include <algorithm>

#include "common/check.h"

namespace spine {

SuffixAutomaton::SuffixAutomaton(const Alphabet& alphabet)
    : alphabet_(alphabet) {
  states_.push_back(State{});  // initial state
}

uint32_t SuffixAutomaton::Transition(uint32_t state, Code c) const {
  const auto& next = states_[state].next;
  auto it = std::lower_bound(
      next.begin(), next.end(), c,
      [](const std::pair<Code, uint32_t>& entry, Code code) {
        return entry.first < code;
      });
  if (it != next.end() && it->first == c) return it->second;
  return kNone;
}

void SuffixAutomaton::SetTransition(uint32_t state, Code c, uint32_t target) {
  auto& next = states_[state].next;
  auto it = std::lower_bound(
      next.begin(), next.end(), c,
      [](const std::pair<Code, uint32_t>& entry, Code code) {
        return entry.first < code;
      });
  if (it != next.end() && it->first == c) {
    it->second = target;
  } else {
    next.insert(it, {c, target});
  }
}

Status SuffixAutomaton::Append(char ch) {
  Code c = alphabet_.Encode(ch);
  if (c == kInvalidCode) {
    return Status::InvalidArgument(
        std::string("character '") + ch + "' is not in the " +
        alphabet_.name() + " alphabet");
  }
  // Classical online construction (Blumer et al. / suffix automaton).
  const uint32_t new_len = static_cast<uint32_t>(length_ + 1);
  states_.push_back(State{new_len, kNone, new_len, false, {}});
  uint32_t cur = static_cast<uint32_t>(states_.size() - 1);
  uint32_t p = last_;
  while (p != kNone && Transition(p, c) == kNone) {
    SetTransition(p, c, cur);
    p = states_[p].link;
  }
  if (p == kNone) {
    states_[cur].link = 0;
  } else {
    uint32_t q = Transition(p, c);
    if (states_[q].len == states_[p].len + 1) {
      states_[cur].link = q;
    } else {
      // Clone q at the shorter length.
      State clone = states_[q];
      clone.len = states_[p].len + 1;
      clone.is_clone = true;
      states_.push_back(std::move(clone));
      uint32_t clone_id = static_cast<uint32_t>(states_.size() - 1);
      while (p != kNone && Transition(p, c) == q) {
        SetTransition(p, c, clone_id);
        p = states_[p].link;
      }
      states_[q].link = clone_id;
      states_[cur].link = clone_id;
    }
  }
  last_ = cur;
  ++length_;
  return Status::OK();
}

Status SuffixAutomaton::AppendString(std::string_view s) {
  for (char ch : s) {
    SPINE_RETURN_IF_ERROR(Append(ch));
  }
  return Status::OK();
}

uint64_t SuffixAutomaton::transition_count() const {
  uint64_t total = 0;
  for (const State& state : states_) total += state.next.size();
  return total;
}

uint64_t SuffixAutomaton::MemoryBytes() const {
  // len + link + first_end + flag, plus 5 logical bytes per transition
  // (code + packed target); matches the accounting style of the other
  // structures in bench_space_per_char.
  return states_.size() * 13 + transition_count() * 5;
}

uint32_t SuffixAutomaton::Walk(std::string_view pattern) const {
  uint32_t state = 0;
  for (char ch : pattern) {
    Code c = alphabet_.Encode(ch);
    if (c == kInvalidCode) return kNone;
    state = Transition(state, c);
    if (state == kNone) return kNone;
  }
  return state;
}

bool SuffixAutomaton::Contains(std::string_view pattern) const {
  return Walk(pattern) != kNone;
}

uint64_t SuffixAutomaton::CountOccurrences(std::string_view pattern) const {
  return FindAll(pattern).size();
}

std::vector<uint32_t> SuffixAutomaton::FindAll(
    std::string_view pattern) const {
  std::vector<uint32_t> out;
  if (pattern.empty()) return out;
  uint32_t state = Walk(pattern);
  if (state == kNone) return out;

  // End positions = first-occurrence ends of the non-clone states in the
  // suffix-link subtree of `state`. SPINE gets the same answer from a
  // single backbone scan; the DAWG must materialize the link tree (the
  // "lack of position information" contrast of Section 7).
  std::vector<std::vector<uint32_t>> children(states_.size());
  for (uint32_t v = 1; v < states_.size(); ++v) {
    children[states_[v].link].push_back(v);
  }
  std::vector<uint32_t> stack = {state};
  while (!stack.empty()) {
    uint32_t v = stack.back();
    stack.pop_back();
    if (!states_[v].is_clone && v != 0) {
      out.push_back(states_[v].first_end -
                    static_cast<uint32_t>(pattern.size()));
    }
    for (uint32_t child : children[v]) stack.push_back(child);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Status SuffixAutomaton::Validate() const {
  if (length_ >= 2 && states_.size() > 2 * length_ - 1) {
    return Status::Corruption("state count exceeds 2n - 1");
  }
  for (uint32_t v = 1; v < states_.size(); ++v) {
    const State& state = states_[v];
    if (state.link == kNone || state.link >= states_.size()) {
      return Status::Corruption("dangling suffix link at state " +
                                std::to_string(v));
    }
    if (states_[state.link].len >= state.len) {
      return Status::Corruption("suffix link does not shorten at state " +
                                std::to_string(v));
    }
    for (const auto& [code, target] : state.next) {
      if (target >= states_.size() || states_[target].len < state.len + 1) {
        return Status::Corruption("bad transition at state " +
                                  std::to_string(v));
      }
    }
  }
  return Status::OK();
}

}  // namespace spine
