// Differential suite for the comparison kernels: the same
// seed-reproducible query batches run through every backend under every
// supported dispatch level, and every answer must be byte-identical to
// the forced-scalar run (and to the brute-force oracle). This is the
// guarantee that picking a wider kernel can never change a result.
//
// The backend fleet and the engine agreement loop are shared with
// index_interface_test.cc via backend_agreement.h.

#include "kernel/kernel.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "compact/compact_spine.h"
#include "core/matcher.h"
#include "core/query.h"
#include "core/spine_index.h"

#include "backend_agreement.h"
#include "test_util.h"

namespace spine {
namespace {

using test::BackendFleet;
using test::ExpectAllBackendsAgree;
using test::MixedQueries;
using test::RandomDna;
using test::RandomProtein;
using test::TestCorpus;

// Restores auto-selection however a test exits, so a forced level
// never leaks into other tests in the binary.
struct KernelRestore {
  ~KernelRestore() { (void)kernel::ForceByName("auto"); }
};

// MixedQueries plus the cases that stress kernel-specific plumbing:
// patterns with out-of-alphabet bytes at the head / middle / tail
// (EncodedPattern must fence bulk compares at them) and patterns whose
// length sits on 8/16/32-byte comparison block boundaries.
std::vector<Query> KernelQueries(const std::string& corpus, Rng& rng) {
  std::vector<Query> queries = MixedQueries(corpus, 120);
  for (const size_t len : {8, 16, 31, 32, 33, 64, 127}) {
    const size_t offset = rng.Below(corpus.size() - 128);
    queries.push_back(Query::FindAll(corpus.substr(offset, len)));
  }
  for (const size_t bad_at : {size_t{0}, size_t{13}, size_t{39}}) {
    std::string pattern = corpus.substr(rng.Below(corpus.size() - 128), 40);
    pattern[bad_at] = '#';
    queries.push_back(Query::Contains(pattern));
    queries.push_back(Query::FindAll(pattern));
    queries.push_back(Query::MaximalMatches(pattern, 4));
    queries.push_back(Query::MatchingStats(pattern));
  }
  queries.push_back(Query::Contains(""));
  queries.push_back(Query::FindAll(""));
  return queries;
}

void RunDifferential(const Alphabet& alphabet, const std::string& corpus,
                     const std::vector<Query>& queries) {
  KernelRestore restore;
  BackendFleet fleet(alphabet, corpus);
  ASSERT_TRUE(fleet.ok()) << fleet.error();
  for (const kernel::Kind kind : kernel::SupportedKinds()) {
    ASSERT_TRUE(kernel::Force(kind).ok());
    ASSERT_EQ(kernel::ActiveKind(), kind);
    ExpectAllBackendsAgree(fleet.indexes(), queries,
                           std::string("kernel=") + kernel::KindName(kind));
  }
}

TEST(DifferentialKernelTest, AllBackendsAgreeUnderEveryKernelDna) {
  Rng rng(20240806);
  const std::string corpus = TestCorpus(8'000, /*seed=*/11);
  RunDifferential(Alphabet::Dna(), corpus, KernelQueries(corpus, rng));
}

TEST(DifferentialKernelTest, AllBackendsAgreeUnderEveryKernelRandomDna) {
  Rng rng(77);
  const std::string corpus = RandomDna(rng, 8'000);
  RunDifferential(Alphabet::Dna(), corpus, KernelQueries(corpus, rng));
}

TEST(DifferentialKernelTest, AllBackendsAgreeUnderEveryKernelProtein) {
  Rng rng(4242);
  const std::string corpus = RandomProtein(rng, 6'000);
  RunDifferential(Alphabet::Protein(), corpus, KernelQueries(corpus, rng));
}

// The bulk path must be invisible in SearchStats too: a run of k
// matched vertebras counts exactly k nodes_checked, and the link/chain
// walks at run boundaries are untouched. Each kernel's counters must
// equal the forced-scalar counters for the identical workload.
TEST(DifferentialKernelTest, SearchStatsIdenticalAcrossKernels) {
  KernelRestore restore;
  Rng rng(99);
  const std::string corpus = TestCorpus(10'000, /*seed=*/3);
  SpineIndex reference(Alphabet::Dna());
  ASSERT_TRUE(reference.AppendString(corpus).ok());
  CompactSpineIndex compact(Alphabet::Dna());
  ASSERT_TRUE(compact.AppendString(corpus).ok());

  std::vector<std::string> patterns;
  for (int i = 0; i < 60; ++i) {
    std::string p =
        corpus.substr(rng.Below(corpus.size() - 300), 1 + rng.Below(260));
    if (i % 3 == 0) p[p.size() / 2] = '#';
    if (i % 3 == 1) p.back() = 'A';  // likely mid-walk mismatch
    patterns.push_back(std::move(p));
  }

  auto collect = [&](kernel::Kind kind) {
    EXPECT_TRUE(kernel::Force(kind).ok());
    SearchStats stats;
    for (const std::string& p : patterns) {
      reference.FindFirstEnd(p, &stats);
      compact.FindFirstEnd(p, &stats);
      GenericFindMaximalMatches(reference, p, 4, &stats);
      GenericFindMaximalMatches(compact, p, 4, &stats);
    }
    return stats;
  };

  const SearchStats scalar = collect(kernel::Kind::kScalar);
  EXPECT_GT(scalar.nodes_checked, 0u);
  for (const kernel::Kind kind : kernel::SupportedKinds()) {
    const SearchStats got = collect(kind);
    EXPECT_EQ(got.nodes_checked, scalar.nodes_checked)
        << kernel::KindName(kind);
    EXPECT_EQ(got.link_traversals, scalar.link_traversals)
        << kernel::KindName(kind);
    EXPECT_EQ(got.chain_hops, scalar.chain_hops) << kernel::KindName(kind);
  }
}

}  // namespace
}  // namespace spine
