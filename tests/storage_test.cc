// Tests for the storage substrate: page file, buffer pool policies,
// paged arrays, and the disk-resident SPINE / suffix tree.

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "compact/compact_spine.h"
#include "core/adapters.h"
#include "core/matcher.h"
#include "naive/naive_index.h"
#include "obs/metrics.h"
#include "storage/mmap_region.h"
#include "storage/buffer_pool.h"
#include "storage/disk_model.h"
#include "storage/disk_spine.h"
#include "storage/disk_suffix_tree.h"
#include "storage/paged_array.h"
#include "storage/page_file.h"
#include "suffix_tree/st_matcher.h"
#include "suffix_tree/suffix_tree.h"
#include "test_util.h"

namespace spine::storage {
namespace {

using spine::test::TempPath;

TEST(PageFileTest, WriteReadRoundTrip) {
  Result<PageFile> file =
      PageFile::Create(TempPath("pf1.dat"), PageFile::SyncMode::kNone);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  uint8_t page[kPageSize];
  std::memset(page, 0xab, sizeof(page));
  ASSERT_TRUE(file->WritePage(3, page).ok());
  uint8_t back[kPageSize];
  ASSERT_TRUE(file->ReadPage(3, back).ok());
  EXPECT_EQ(std::memcmp(page, back, kPageSize), 0);
  // Unwritten pages read as zeros.
  ASSERT_TRUE(file->ReadPage(100, back).ok());
  for (uint32_t i = 0; i < kPageSize; ++i) ASSERT_EQ(back[i], 0);
  EXPECT_EQ(file->pages_written(), 1u);
}

TEST(PageFileTest, SyncEveryWriteMode) {
  Result<PageFile> file = PageFile::Create(TempPath("pf2.dat"),
                                           PageFile::SyncMode::kSyncEveryWrite);
  ASSERT_TRUE(file.ok());
  uint8_t page[kPageSize] = {1, 2, 3};
  ASSERT_TRUE(file->WritePage(0, page).ok());
  ASSERT_TRUE(file->Sync().ok());
}

class BufferPoolPolicyTest
    : public ::testing::TestWithParam<ReplacementPolicy> {};

TEST_P(BufferPoolPolicyTest, DataSurvivesEvictionPressure) {
  Result<PageFile> file = PageFile::Create(
      TempPath(std::string("bp_") + PolicyName(GetParam()) + ".dat"),
      PageFile::SyncMode::kNone);
  ASSERT_TRUE(file.ok());
  BufferPool pool(&*file, 4, GetParam());

  // Write a recognizable stamp into 64 pages through a 4-frame pool.
  // FetchPage returns the checksummed page's payload region.
  for (uint64_t p = 0; p < 64; ++p) {
    uint8_t* page = pool.FetchPage(p, true);
    ASSERT_NE(page, nullptr);
    std::memset(page, static_cast<int>(p + 1), kPagePayloadSize);
  }
  // Read everything back (faults evicted pages back in).
  for (uint64_t p = 0; p < 64; ++p) {
    uint8_t* page = pool.FetchPage(p, false);
    ASSERT_NE(page, nullptr);
    for (uint32_t i = 0; i < kPagePayloadSize; i += 512) {
      ASSERT_EQ(page[i], static_cast<uint8_t>(p + 1)) << "page " << p;
    }
  }
  EXPECT_GT(pool.stats().evictions, 0u);
  EXPECT_GT(pool.stats().dirty_writebacks, 0u);
  ASSERT_TRUE(pool.FlushAll().ok());
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, BufferPoolPolicyTest,
                         ::testing::Values(ReplacementPolicy::kLru,
                                           ReplacementPolicy::kClock,
                                           ReplacementPolicy::kPinTop),
                         [](const auto& info) {
                           std::string name = PolicyName(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(BufferPoolTest, HitAndMissAccounting) {
  Result<PageFile> file =
      PageFile::Create(TempPath("bp_stats.dat"), PageFile::SyncMode::kNone);
  ASSERT_TRUE(file.ok());
  BufferPool pool(&*file, 8, ReplacementPolicy::kLru);
  pool.FetchPage(0, false);
  pool.FetchPage(0, false);
  pool.FetchPage(1, false);
  EXPECT_EQ(pool.stats().misses, 2u);
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_DOUBLE_EQ(pool.stats().HitRate(), 1.0 / 3.0);
}

TEST(BufferPoolTest, PinTopKeepsLowPagesResident) {
  Result<PageFile> file =
      PageFile::Create(TempPath("bp_pintop.dat"), PageFile::SyncMode::kNone);
  ASSERT_TRUE(file.ok());
  // 16 frames -> the lowest 4 page ids are protected.
  BufferPool pin_pool(&*file, 16, ReplacementPolicy::kPinTop);
  for (uint64_t p = 0; p < 100; ++p) pin_pool.FetchPage(p, false);
  pin_pool.ResetStats();
  for (uint64_t p = 0; p < 4; ++p) pin_pool.FetchPage(p, false);
  EXPECT_EQ(pin_pool.stats().hits, 4u);
  EXPECT_EQ(pin_pool.stats().misses, 0u);

  // Plain LRU would have evicted the top pages during the long scan.
  Result<PageFile> file2 =
      PageFile::Create(TempPath("bp_lru2.dat"), PageFile::SyncMode::kNone);
  ASSERT_TRUE(file2.ok());
  BufferPool lru_pool(&*file2, 16, ReplacementPolicy::kLru);
  for (uint64_t p = 0; p < 100; ++p) lru_pool.FetchPage(p, false);
  lru_pool.ResetStats();
  for (uint64_t p = 0; p < 4; ++p) lru_pool.FetchPage(p, false);
  EXPECT_EQ(lru_pool.stats().misses, 4u);
}

TEST(PagedArrayTest, AppendGetSetAcrossPages) {
  Result<PageFile> file =
      PageFile::Create(TempPath("pa.dat"), PageFile::SyncMode::kNone);
  ASSERT_TRUE(file.ok());
  BufferPool pool(&*file, 3, ReplacementPolicy::kLru);
  PageAllocator allocator;
  PagedArray<uint64_t> array(&pool, &allocator);
  for (uint64_t i = 0; i < 5000; ++i) array.Append(i * 7);
  for (uint64_t i = 0; i < 5000; ++i) ASSERT_EQ(array.Get(i), i * 7);
  array.Set(4242, 99);
  EXPECT_EQ(array.Get(4242), 99u);
  EXPECT_GT(array.PagesUsed(), 5u);
}

TEST(PagedCodesTest, RoundTripAllWidths) {
  for (uint32_t bits : {2u, 5u, 8u}) {
    Result<PageFile> file = PageFile::Create(
        TempPath("pc" + std::to_string(bits) + ".dat"),
        PageFile::SyncMode::kNone);
    ASSERT_TRUE(file.ok());
    BufferPool pool(&*file, 2, ReplacementPolicy::kLru);
    PageAllocator allocator;
    PagedCodes codes(&pool, &allocator, bits);
    Rng rng(bits);
    std::vector<Code> expected;
    for (int i = 0; i < 40000; ++i) {
      Code c = static_cast<Code>(rng.Below(1u << bits));
      expected.push_back(c);
      codes.Append(c);
    }
    for (int i = 0; i < 40000; ++i) {
      ASSERT_EQ(codes.Get(i), expected[i]) << "bits " << bits << " idx " << i;
    }
  }
}

TEST(DiskModelTest, ModeledTimeScalesWithMisses) {
  DiskCostModel model;
  IoStats cheap{1000, 10, 0, 0};
  IoStats costly{1000, 1000, 900, 500};
  EXPECT_LT(model.ModeledSeconds(cheap), model.ModeledSeconds(costly));
  EXPECT_GT(model.PageIoMs(), 8.0);
}

// ---------------------------------------------------------------------
// Disk-resident SPINE: equivalence with the in-memory compact index
// under heavy eviction pressure.
// ---------------------------------------------------------------------

TEST(DiskSpineTest, MatchesCompactIndexUnderTinyPool) {
  Rng rng(2024);
  const char* letters = "ACGT";
  std::string s;
  for (int i = 0; i < 20000; ++i) s.push_back(letters[rng.Below(4)]);

  DiskSpine::Options options;
  options.pool_frames = 8;  // brutal pressure
  Result<std::unique_ptr<DiskSpine>> disk =
      DiskSpine::Create(Alphabet::Dna(), TempPath("ds1.idx"), options);
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();
  ASSERT_TRUE((*disk)->AppendString(s).ok());

  CompactSpineIndex compact(Alphabet::Dna());
  ASSERT_TRUE(compact.AppendString(s).ok());

  ASSERT_EQ((*disk)->size(), compact.size());
  for (NodeId i = 1; i <= compact.size(); i += 97) {
    ASSERT_EQ((*disk)->LinkDest(i), compact.LinkDest(i)) << i;
    ASSERT_EQ((*disk)->LinkLel(i), compact.LinkLel(i)) << i;
  }
  for (int trial = 0; trial < 40; ++trial) {
    uint32_t start = static_cast<uint32_t>(rng.Below(s.size() - 12));
    std::string pattern = s.substr(start, 3 + rng.Below(9));
    ASSERT_EQ((*disk)->FindAll(pattern), compact.FindAll(pattern)) << pattern;
  }
  EXPECT_GT((*disk)->io_stats().evictions, 0u);
  EXPECT_GT((*disk)->PagesUsed(), 8u);
  ASSERT_TRUE((*disk)->Flush().ok());
}

TEST(DiskSpineTest, MaximalMatchesViaGenericMatcher) {
  std::string data = "ACCACAACAGGTTACCACAACA";
  std::string query = "TTACCACA";
  DiskSpine::Options options;
  options.pool_frames = 4;
  Result<std::unique_ptr<DiskSpine>> disk =
      DiskSpine::Create(Alphabet::Dna(), TempPath("ds2.idx"), options);
  ASSERT_TRUE(disk.ok());
  ASSERT_TRUE((*disk)->AppendString(data).ok());
  auto matches = GenericFindMaximalMatches(**disk, query, 3);
  auto expected = naive::MaximalMatches(data, query, 3);
  ASSERT_EQ(matches.size(), expected.size());
  for (size_t k = 0; k < expected.size(); ++k) {
    EXPECT_EQ(matches[k].query_pos, expected[k].query_pos);
    EXPECT_EQ(matches[k].length, expected[k].length);
  }
}

TEST(DiskSpineTest, SyncModeWorks) {
  DiskSpine::Options options;
  options.pool_frames = 4;
  options.sync_mode = PageFile::SyncMode::kSyncEveryWrite;
  Result<std::unique_ptr<DiskSpine>> disk =
      DiskSpine::Create(Alphabet::Dna(), TempPath("ds3.idx"), options);
  ASSERT_TRUE(disk.ok());
  ASSERT_TRUE((*disk)->AppendString("ACGTACGTACGT").ok());
  EXPECT_TRUE((*disk)->Contains("GTAC"));
}

TEST(DiskSpinePersistenceTest, CheckpointAndReopen) {
  Rng rng(808);
  const char* letters = "ACGT";
  std::string s;
  for (int i = 0; i < 12000; ++i) s.push_back(letters[rng.Below(4)]);
  const std::string path = TempPath("persist.idx");

  {
    DiskSpine::Options options;
    options.pool_frames = 16;
    auto index = DiskSpine::Create(Alphabet::Dna(), path, options);
    ASSERT_TRUE(index.ok());
    ASSERT_TRUE((*index)->AppendString(s).ok());
    Status checkpoint = (*index)->Checkpoint();
    ASSERT_TRUE(checkpoint.ok()) << checkpoint.ToString();
  }  // index destroyed: only the file + sidecar survive

  DiskSpine::Options options;
  options.pool_frames = 16;
  auto reopened = DiskSpine::Open(path, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ASSERT_EQ((*reopened)->size(), s.size());
  CompactSpineIndex expected(Alphabet::Dna());
  ASSERT_TRUE(expected.AppendString(s).ok());
  for (NodeId i = 1; i <= s.size(); i += 53) {
    ASSERT_EQ((*reopened)->LinkDest(i), expected.LinkDest(i)) << i;
    ASSERT_EQ((*reopened)->LinkLel(i), expected.LinkLel(i)) << i;
  }
  for (int trial = 0; trial < 25; ++trial) {
    uint32_t start = static_cast<uint32_t>(rng.Below(s.size() - 10));
    std::string pattern = s.substr(start, 2 + rng.Below(8));
    ASSERT_EQ((*reopened)->FindAll(pattern), expected.FindAll(pattern));
  }

  // The reopened index remains appendable: extend and verify.
  std::string extension;
  for (int i = 0; i < 500; ++i) extension.push_back(letters[rng.Below(4)]);
  ASSERT_TRUE((*reopened)->AppendString(extension).ok());
  ASSERT_TRUE(expected.AppendString(extension).ok());
  for (int trial = 0; trial < 15; ++trial) {
    uint32_t start =
        static_cast<uint32_t>(s.size() - 20 + rng.Below(500));
    std::string pattern = (s + extension).substr(start, 6);
    ASSERT_EQ((*reopened)->FindAll(pattern), expected.FindAll(pattern));
  }
}

TEST(DiskSpineTest, ProteinHighFanoutSpillsOnDisk) {
  // The engineered protein string from the compact tests: one node
  // accumulates > 4 ribs, exercising the disk index's big-entry spill.
  std::string s;
  const std::string residues = "CDEFGHIKLMNPQRSTVWY";
  for (char r : residues) {
    s += "AA";
    s += r;
  }
  DiskSpine::Options options;
  options.pool_frames = 4;
  auto disk = DiskSpine::Create(Alphabet::Protein(),
                                TempPath("ds_protein.idx"), options);
  ASSERT_TRUE(disk.ok());
  ASSERT_TRUE((*disk)->AppendString(s).ok());
  CompactSpineIndex expected(Alphabet::Protein());
  ASSERT_TRUE(expected.AppendString(s).ok());
  for (NodeId i = 1; i <= s.size(); ++i) {
    ASSERT_EQ((*disk)->LinkDest(i), expected.LinkDest(i)) << i;
    ASSERT_EQ((*disk)->LinkLel(i), expected.LinkLel(i)) << i;
  }
  EXPECT_TRUE((*disk)->Contains("AAC"));
  EXPECT_TRUE((*disk)->Contains("CAAD"));
  EXPECT_FALSE((*disk)->Contains("CC"));

  // Persistence round-trips the big entries too.
  ASSERT_TRUE((*disk)->Checkpoint().ok());
  auto reopened = DiskSpine::Open(TempPath("ds_protein.idx"), options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_TRUE((*reopened)->Contains("AAW"));
  EXPECT_FALSE((*reopened)->Contains("WW"));
}

TEST(DiskSpinePersistenceTest, OpenFailures) {
  DiskSpine::Options options;
  EXPECT_FALSE(DiskSpine::Open("/nonexistent/nope.idx", options).ok());
  // A garbage sidecar is rejected.
  const std::string path = TempPath("persist_bad.idx");
  {
    std::ofstream data(path);
    data << "data";
    std::ofstream meta(path + ".meta");
    meta << "not metadata";
  }
  Result<std::unique_ptr<DiskSpine>> opened = DiskSpine::Open(path, options);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kCorruption);
}

// ---------------------------------------------------------------------
// Disk-resident suffix tree.
// ---------------------------------------------------------------------

TEST(DiskSuffixTreeTest, MatchesInMemoryTreeUnderTinyPool) {
  Rng rng(31337);
  const char* letters = "ACGT";
  std::string s;
  for (int i = 0; i < 8000; ++i) s.push_back(letters[rng.Below(4)]);

  DiskSuffixTree::Options options;
  options.pool_frames = 8;
  Result<std::unique_ptr<DiskSuffixTree>> disk =
      DiskSuffixTree::Create(Alphabet::Dna(), TempPath("dst1.idx"), options);
  ASSERT_TRUE(disk.ok());
  ASSERT_TRUE((*disk)->AppendString(s).ok());

  SuffixTree tree(Alphabet::Dna());
  ASSERT_TRUE(tree.AppendString(s).ok());
  ASSERT_EQ((*disk)->node_count(), tree.node_count());

  for (int trial = 0; trial < 30; ++trial) {
    uint32_t start = static_cast<uint32_t>(rng.Below(s.size() - 10));
    std::string pattern = s.substr(start, 2 + rng.Below(8));
    ASSERT_EQ((*disk)->FindAll(pattern), tree.FindAll(pattern)) << pattern;
  }
  EXPECT_GT((*disk)->io_stats().evictions, 0u);
}

TEST(DiskSuffixTreeTest, GenericMatcherParity) {
  std::string data = "ACCACAACAGGTTACCACAACAGT";
  std::string query = "CCACAAGTTTACCA";
  DiskSuffixTree::Options options;
  options.pool_frames = 4;
  Result<std::unique_ptr<DiskSuffixTree>> disk =
      DiskSuffixTree::Create(Alphabet::Dna(), TempPath("dst2.idx"), options);
  ASSERT_TRUE(disk.ok());
  ASSERT_TRUE((*disk)->AppendString(data).ok());
  auto got = GenericStFindMaximalMatches(**disk, query, 2, nullptr);
  auto want = naive::MaximalMatches(data, query, 2);
  ASSERT_EQ(got.size(), want.size());
  for (size_t k = 0; k < want.size(); ++k) {
    EXPECT_EQ(got[k].query_pos, want[k].query_pos);
    EXPECT_EQ(got[k].length, want[k].length);
  }
}

TEST(DiskSuffixTreePersistenceTest, CheckpointAndReopen) {
  Rng rng(909);
  const char* letters = "ACGT";
  std::string s;
  for (int i = 0; i < 6000; ++i) s.push_back(letters[rng.Below(4)]);
  const std::string path = TempPath("persist_tree.idx");
  {
    DiskSuffixTree::Options options;
    options.pool_frames = 16;
    auto tree = DiskSuffixTree::Create(Alphabet::Dna(), path, options);
    ASSERT_TRUE(tree.ok());
    ASSERT_TRUE((*tree)->AppendString(s).ok());
    ASSERT_TRUE((*tree)->Checkpoint().ok());
  }
  DiskSuffixTree::Options options;
  options.pool_frames = 16;
  auto reopened = DiskSuffixTree::Open(path, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ASSERT_EQ((*reopened)->size(), s.size());

  SuffixTree expected(Alphabet::Dna());
  ASSERT_TRUE(expected.AppendString(s).ok());
  ASSERT_EQ((*reopened)->node_count(), expected.node_count());
  for (int trial = 0; trial < 25; ++trial) {
    uint32_t start = static_cast<uint32_t>(rng.Below(s.size() - 10));
    std::string pattern = s.substr(start, 2 + rng.Below(8));
    ASSERT_EQ((*reopened)->FindAll(pattern), expected.FindAll(pattern))
        << pattern;
  }
  // Still appendable after reopen (the Ukkonen state was persisted).
  std::string extension;
  for (int i = 0; i < 400; ++i) extension.push_back(letters[rng.Below(4)]);
  ASSERT_TRUE((*reopened)->AppendString(extension).ok());
  ASSERT_TRUE(expected.AppendString(extension).ok());
  for (int trial = 0; trial < 15; ++trial) {
    uint32_t start =
        static_cast<uint32_t>(s.size() - 20 + rng.Below(400));
    std::string pattern = (s + extension).substr(start, 6);
    ASSERT_EQ((*reopened)->FindAll(pattern), expected.FindAll(pattern));
  }
  EXPECT_FALSE(DiskSuffixTree::Open("/nonexistent.idx", options).ok());
}

// ---------------------------------------------------------------------
// Checksums, superblock and the buffer-pool error latch (PR 2).
// ---------------------------------------------------------------------

TEST(PageChecksumTest, SealVerifyAndMisdirection) {
  uint8_t page[kPageSize] = {};
  // A never-written (all-zero) page verifies trivially.
  EXPECT_TRUE(VerifyPageChecksum(7, page).ok());
  page[kPageHeaderSize + 10] = 0x42;
  SealPageChecksum(7, page);
  EXPECT_TRUE(VerifyPageChecksum(7, page).ok());
  // Same bytes presented as a different page id: misdirected read.
  Status misdirected = VerifyPageChecksum(8, page);
  ASSERT_FALSE(misdirected.ok());
  EXPECT_EQ(misdirected.code(), StatusCode::kCorruption);
  // A payload bit flip breaks the CRC.
  page[kPageHeaderSize + 10] ^= 0x01;
  Status flipped = VerifyPageChecksum(7, page);
  ASSERT_FALSE(flipped.ok());
  EXPECT_EQ(flipped.code(), StatusCode::kCorruption);
}

TEST(PageFileTest, SuperblockRejectsCorruption) {
  const std::string path = TempPath("sb_bad.dat");
  {
    Result<PageFile> file = PageFile::Create(path, PageFile::SyncMode::kNone);
    ASSERT_TRUE(file.ok());
    uint8_t page[kPageSize] = {1};
    ASSERT_TRUE(file->WritePage(0, page).ok());
    ASSERT_TRUE(file->Sync().ok());
  }
  ASSERT_TRUE(PageFile::Open(path, PageFile::SyncMode::kNone).ok());
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(1);  // inside the superblock magic
    char c = 0x7f;
    f.write(&c, 1);
  }
  Result<PageFile> reopened = PageFile::Open(path, PageFile::SyncMode::kNone);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kCorruption);
}

TEST(BufferPoolTest, LatchesOnPersistentBitFlipAndConsumeResets) {
  const std::string path = TempPath("crc_flip.dat");
  {
    Result<PageFile> file = PageFile::Create(path, PageFile::SyncMode::kNone);
    ASSERT_TRUE(file.ok());
    BufferPool pool(&*file, 4, ReplacementPolicy::kLru);
    uint8_t* page = pool.FetchPage(0, true);
    ASSERT_NE(page, nullptr);
    std::memset(page, 0x5a, kPagePayloadSize);
    ASSERT_TRUE(pool.FlushAll().ok());
    ASSERT_TRUE(file->Sync().ok());
  }
  {
    // Flip one payload bit of logical page 0 (physical page 1) on disk.
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(kPageSize + kPageHeaderSize + 100);
    char c = 0;
    f.read(&c, 1);
    c = static_cast<char>(c ^ 0x04);
    f.seekp(kPageSize + kPageHeaderSize + 100);
    f.write(&c, 1);
  }
  Result<PageFile> file = PageFile::Open(path, PageFile::SyncMode::kNone);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  BufferPool pool(&*file, 4, ReplacementPolicy::kLru);
  // Persistent corruption: the pool's single re-read hits the same
  // bytes, so the fetch fails and the error latches.
  EXPECT_EQ(pool.FetchPage(0, false), nullptr);
  ASSERT_TRUE(pool.has_error());
  // Latched: every subsequent fetch fails fast.
  EXPECT_EQ(pool.FetchPage(1, false), nullptr);
  Status latched = pool.ConsumeError();
  EXPECT_EQ(latched.code(), StatusCode::kCorruption);
  // Consuming clears the latch; clean pages are reachable again.
  EXPECT_FALSE(pool.has_error());
  EXPECT_NE(pool.FetchPage(1, false), nullptr);
}

// SPINE's disk construction exhibits better locality than the suffix
// tree's: with the same pool budget it needs fewer page faults per
// appended character (the Fig. 7 effect).
TEST(DiskLocalityTest, SpineFaultsLessThanSuffixTree) {
  Rng rng(9);
  const char* letters = "ACGT";
  std::string s;
  for (int i = 0; i < 30000; ++i) s.push_back(letters[rng.Below(4)]);

  DiskSpine::Options so;
  so.pool_frames = 32;
  auto disk_spine = DiskSpine::Create(Alphabet::Dna(), TempPath("loc1.idx"), so);
  ASSERT_TRUE(disk_spine.ok());
  ASSERT_TRUE((*disk_spine)->AppendString(s).ok());

  DiskSuffixTree::Options to;
  to.pool_frames = 32;
  auto disk_tree =
      DiskSuffixTree::Create(Alphabet::Dna(), TempPath("loc2.idx"), to);
  ASSERT_TRUE(disk_tree.ok());
  ASSERT_TRUE((*disk_tree)->AppendString(s).ok());

  EXPECT_LT((*disk_spine)->io_stats().misses,
            (*disk_tree)->io_stats().misses);
}

// --- MmapRegion + MmapIoBackend (PR 8) --------------------------------------

TEST(MmapRegionTest, MapReadAtAndBounds) {
  const std::string path = TempPath("mmap_basic.bin");
  const std::string payload = "zero-copy artifact bytes";
  spine::test::WriteFile(path, payload);

  auto region = MmapRegion::Map(path);
  ASSERT_TRUE(region.ok()) << region.status().ToString();
  ASSERT_EQ((*region)->size(), payload.size());
  EXPECT_EQ((*region)->path(), path);
  EXPECT_EQ(std::memcmp((*region)->data(), payload.data(), payload.size()), 0);
  EXPECT_TRUE((*region)->CheckFence().ok());

  // Bounded read semantics mirror the IoBackend contract.
  char buf[64] = {};
  size_t bytes_read = 0;
  ASSERT_TRUE((*region)->ReadAt(5, buf, 4, &bytes_read).ok());
  EXPECT_EQ(bytes_read, 4u);
  EXPECT_EQ(std::string(buf, 4), "copy");
  // Reading past EOF truncates; reading at/after EOF returns 0 bytes.
  ASSERT_TRUE((*region)->ReadAt(payload.size() - 2, buf, 10, &bytes_read).ok());
  EXPECT_EQ(bytes_read, 2u);
  ASSERT_TRUE((*region)->ReadAt(payload.size() + 7, buf, 10, &bytes_read).ok());
  EXPECT_EQ(bytes_read, 0u);
}

TEST(MmapRegionTest, OpenFailuresAreClean) {
  auto missing = MmapRegion::Map(TempPath("mmap_nope.bin"));
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kIoError);

  auto directory = MmapRegion::Map(::testing::TempDir());
  ASSERT_FALSE(directory.ok());
  EXPECT_EQ(directory.status().code(), StatusCode::kIoError);
}

TEST(MmapRegionTest, EmptyFileMapsToNullRegion) {
  const std::string path = TempPath("mmap_empty.bin");
  spine::test::WriteFile(path, "");
  auto region = MmapRegion::Map(path);
  ASSERT_TRUE(region.ok()) << region.status().ToString();
  EXPECT_EQ((*region)->size(), 0u);
  EXPECT_TRUE((*region)->CheckFence().ok());
  char buf[4];
  size_t bytes_read = 7;
  ASSERT_TRUE((*region)->ReadAt(0, buf, 4, &bytes_read).ok());
  EXPECT_EQ(bytes_read, 0u);
}

// The length fence: a file shrunk under a live mapping turns every
// subsequent access into kIoError instead of SIGBUS.
TEST(MmapRegionTest, FenceDetectsShrunkFile) {
  const std::string path = TempPath("mmap_shrink.bin");
  spine::test::WriteFile(path, std::string(8192, 'x'));
  auto region = MmapRegion::Map(path);
  ASSERT_TRUE(region.ok());
  ASSERT_TRUE((*region)->CheckFence().ok());

  std::filesystem::resize_file(path, 100);
  Status fence = (*region)->CheckFence();
  ASSERT_FALSE(fence.ok());
  EXPECT_EQ(fence.code(), StatusCode::kIoError);
  char buf[8];
  size_t bytes_read = 0;
  Status read = (*region)->ReadAt(0, buf, 8, &bytes_read);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.code(), StatusCode::kIoError);

  // Growing the file back (or beyond) re-arms the mapping: the mapped
  // prefix is covered again.
  std::filesystem::resize_file(path, 16384);
  EXPECT_TRUE((*region)->CheckFence().ok());
}

TEST(MmapRegionTest, MlockFailureIsBestEffort) {
  // An mlock request may or may not succeed depending on
  // RLIMIT_MEMLOCK; either way the map itself must succeed.
  const std::string path = TempPath("mmap_lock.bin");
  spine::test::WriteFile(path, std::string(4096, 'y'));
  MmapOptions options;
  options.lock = true;
  auto region = MmapRegion::Map(path, options);
  ASSERT_TRUE(region.ok()) << region.status().ToString();
  EXPECT_EQ((*region)->size(), 4096u);
}

// The shared-mapping cache: N concurrent opens of the same artifact
// share one refcounted region, hits move the storage.mmap.cache_hits
// gauge, and the cache is keyed on mapping-relevant options.
TEST(MmapRegionTest, MapSharedDeduplicatesLiveMappings) {
  const std::string path = TempPath("mmap_shared.bin");
  spine::test::WriteFile(path, std::string(8192, 'a'));
  spine::obs::Gauge& hits =
      spine::obs::Registry::Default().GetGauge("storage.mmap.cache_hits");
  const int64_t hits_before = hits.value();

  auto first = MmapRegion::MapShared(path);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(hits.value(), hits_before);  // first open is a miss

  auto second = MmapRegion::MapShared(path);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->get(), second->get());  // same physical mapping
  EXPECT_EQ(hits.value(), hits_before + 1);

  // Different mapping-relevant options must NOT share: a populated
  // mapping is not byte-equivalent in behavior to a lazy one.
  MmapOptions populate;
  populate.populate = true;
  auto distinct = MmapRegion::MapShared(path, populate);
  ASSERT_TRUE(distinct.ok()) << distinct.status().ToString();
  EXPECT_NE(first->get(), distinct->get());
  EXPECT_EQ(hits.value(), hits_before + 1);

  // Once the last holder releases, the next open maps afresh (a
  // replaced artifact is picked up), so it is a miss again.
  const MmapRegion* stale = first->get();
  first->reset();
  second->reset();
  auto remapped = MmapRegion::MapShared(path);
  ASSERT_TRUE(remapped.ok());
  EXPECT_EQ(hits.value(), hits_before + 1);
  (void)stale;  // the old pointer is dead; only the miss count matters
}

// A cached region whose backing file shrank under it is dropped and
// remapped instead of handed out: the new holder sees a working fence.
TEST(MmapRegionTest, MapSharedDropsFencedRegions) {
  const std::string path = TempPath("mmap_shared_shrink.bin");
  spine::test::WriteFile(path, std::string(8192, 'b'));
  auto first = MmapRegion::MapShared(path);
  ASSERT_TRUE(first.ok()) << first.status().ToString();

  std::filesystem::resize_file(path, 4096);
  ASSERT_FALSE((*first)->CheckFence().ok());

  auto second = MmapRegion::MapShared(path);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_NE(first->get(), second->get());
  EXPECT_EQ((*second)->size(), 4096u);
  EXPECT_TRUE((*second)->CheckFence().ok());
}

// A disk index opened over the mmap backend whose page file shrinks
// mid-life: the per-read fence converts the lost pages into latched
// kIoError, never SIGBUS.
TEST(MmapRegionTest, DiskSpineOverShrunkFileLatchesIoError) {
  Rng rng(66);
  const std::string s = spine::test::RandomDna(rng, 5000);
  const std::string path = TempPath("mmap_shrunk_disk.idx");
  {
    DiskSpine::Options options;
    options.pool_frames = 64;
    auto disk = DiskSpine::Create(Alphabet::Dna(), path, options);
    ASSERT_TRUE(disk.ok());
    ASSERT_TRUE((*disk)->AppendString(s).ok());
    ASSERT_TRUE((*disk)->Checkpoint().ok());
  }
  DiskSpine::Options options;
  options.pool_frames = 4;  // cold pool: queries must hit the backend
  options.backend = MmapIoBackend();
  auto disk = DiskSpine::Open(path, options);
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();
  EXPECT_TRUE((*disk)->Contains(s.substr(20, 10)));

  // Chop the tail off the page file while the index is live.
  std::filesystem::resize_file(path, kPageSize);
  (void)(*disk)->ConsumeError();
  core::DiskSpineAdapter adapter(**disk);
  QueryResult result = adapter.Execute(Query::FindAll(s.substr(40, 12)));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status_code, StatusCode::kIoError);
}

}  // namespace
}  // namespace spine::storage
