// End-to-end tests for the spine serve network front-end: responses
// over the wire match in-process execution exactly, admission control
// sheds with kOverloaded instead of stalling, graceful drain answers
// everything already accepted, and protocol violations kill the
// connection cleanly — never the server.

#include "serve/server.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "compact/compact_spine.h"
#include "core/adapters.h"
#include "core/query.h"
#include "core/wire.h"
#include "obs/json.h"
#include "serve/client.h"
#include "shard/sharded_index.h"
#include "test_util.h"

namespace spine::serve {
namespace {

namespace wire = core::wire;
using spine::test::TestCorpus;

// One shared fixture corpus/index per binary: building the index once
// keeps the suite fast, and every test treats it as read-only.
class ServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus_ = new std::string(TestCorpus(20000));
    index_ = new CompactSpineIndex(Alphabet::Dna());
    ASSERT_TRUE(index_->AppendString(*corpus_).ok());
    adapter_ = new core::CompactSpineAdapter(*index_);
  }
  static void TearDownTestSuite() {
    delete adapter_;
    delete index_;
    delete corpus_;
    adapter_ = nullptr;
    index_ = nullptr;
    corpus_ = nullptr;
  }

  // A deterministic mixed-kind query stream; `salt` decorrelates the
  // streams of concurrent clients.
  static Query NthQuery(size_t i, size_t salt) {
    const size_t len = 6 + (i * 7 + salt) % 20;
    const size_t offset = (i * 131 + salt * 977) % (corpus_->size() - 128);
    std::string pattern = corpus_->substr(offset, len);
    switch (i % 4) {
      case 0:
        return Query::FindAll(pattern);
      case 1:
        return Query::Contains(pattern);
      case 2:
        return Query::MaximalMatches(corpus_->substr(offset, 64), 8);
      default:
        return Query::MatchingStats(corpus_->substr(offset, 32));
    }
  }

  static std::string* corpus_;
  static CompactSpineIndex* index_;
  static core::CompactSpineAdapter* adapter_;
};

std::string* ServeTest::corpus_ = nullptr;
CompactSpineIndex* ServeTest::index_ = nullptr;
core::CompactSpineAdapter* ServeTest::adapter_ = nullptr;

Options TestOptions() {
  Options options;
  options.port = 0;  // ephemeral
  options.threads = 4;
  return options;
}

TEST_F(ServeTest, ConcurrentClientsMatchInProcessExecutionExactly) {
  Server server(*adapter_, TestOptions());
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.port(), 0);

  constexpr int kClients = 4;
  constexpr size_t kQueriesPerClient = 60;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Result<Client> client = Client::Connect("127.0.0.1", server.port(),
                                              /*json=*/c % 2 == 1);
      if (!client.ok()) {
        ++failures;
        return;
      }
      for (size_t i = 0; i < kQueriesPerClient; ++i) {
        const Query query = NthQuery(i, static_cast<size_t>(c));
        const uint64_t id = static_cast<uint64_t>(c) * 1000 + i;
        if (!client->Send({id, query}).ok()) {
          ++failures;
          return;
        }
        Result<wire::QueryResponse> response = client->ReceiveResponse();
        if (!response.ok() || response->id != id) {
          ++failures;
          return;
        }
        // The ground truth: the same Index the server wraps, executed
        // in-process. The wire answer must be payload-identical.
        const QueryResult oracle = adapter_->Execute(query);
        if (!response->result.SameAnswer(oracle)) ++failures;
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.queries, kClients * kQueriesPerClient);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.protocol_errors, 0u);
  server.Stop();
}

TEST_F(ServeTest, PipelinedRequestsAnswerInOrderAfterClientEof) {
  Server server(*adapter_, TestOptions());
  ASSERT_TRUE(server.Start().ok());
  Result<Client> client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  constexpr size_t kCount = 40;
  std::string burst;
  for (size_t i = 0; i < kCount; ++i) {
    wire::AppendRequestFrame({i, NthQuery(i, 3)}, &burst);
  }
  ASSERT_TRUE(client->SendRaw(burst).ok());
  // EOF-drain path: the server must answer every frame it received
  // before the half-close, then close the connection.
  client->ShutdownSend();
  for (size_t i = 0; i < kCount; ++i) {
    Result<wire::QueryResponse> response = client->ReceiveResponse();
    ASSERT_TRUE(response.ok()) << response.status().ToString() << " at "
                               << i;
    EXPECT_EQ(response->id, i);  // responses arrive in request order
    EXPECT_TRUE(
        response->result.SameAnswer(adapter_->Execute(NthQuery(i, 3))));
  }
  EXPECT_FALSE(client->ReceiveResponse().ok());  // clean EOF afterwards
  server.Stop();
}

TEST_F(ServeTest, SaturatingBurstShedsWithOverloadedAndAnswersEverything) {
  Options options = TestOptions();
  options.threads = 1;
  options.queue_cap = 1;     // admit one query per batch window
  options.max_inflight = 1;  // and one across the server
  Server server(*adapter_, options);
  ASSERT_TRUE(server.Start().ok());

  // A saturating burst in one write: the reader drains it in few batch
  // windows, each admitting queue_cap=1 and shedding the rest. Retried
  // because TCP may (rarely) deliver the burst in many tiny chunks,
  // giving every window just one admittable query.
  constexpr size_t kBurst = 400;
  bool shed_seen = false;
  for (int attempt = 0; attempt < 5 && !shed_seen; ++attempt) {
    Result<Client> client = Client::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok());
    std::string burst;
    for (size_t i = 0; i < kBurst; ++i) {
      wire::AppendRequestFrame({i, NthQuery(i, 7)}, &burst);
    }
    ASSERT_TRUE(client->SendRaw(burst).ok());
    client->ShutdownSend();

    size_t ok_answers = 0;
    size_t overloaded = 0;
    for (size_t i = 0; i < kBurst; ++i) {
      Result<wire::QueryResponse> response = client->ReceiveResponse();
      ASSERT_TRUE(response.ok()) << response.status().ToString() << " at "
                                 << i;
      EXPECT_EQ(response->id, i);
      if (response->result.status_code == StatusCode::kOverloaded) {
        EXPECT_FALSE(response->result.error.empty());
        ++overloaded;
      } else {
        // Admitted queries answer correctly even under saturation.
        EXPECT_TRUE(
            response->result.SameAnswer(adapter_->Execute(NthQuery(i, 7))));
        ++ok_answers;
      }
    }
    // Shed or not, every single request got exactly one response.
    EXPECT_EQ(ok_answers + overloaded, kBurst);
    shed_seen = overloaded > 0;
  }
  EXPECT_TRUE(shed_seen) << "a 400-request burst against queue_cap=1 "
                            "never shed in 5 attempts";
  EXPECT_GT(server.stats().shed, 0u);
  server.Stop();
}

TEST_F(ServeTest, GracefulDrainAnswersEveryAcceptedQuery) {
  Options options = TestOptions();
  // Wide-open admission: this test isolates drain behavior, and a shed
  // response would mask a lost one.
  options.queue_cap = 1024;
  options.max_inflight = 1024;
  Server server(*adapter_, options);
  ASSERT_TRUE(server.Start().ok());
  Result<Client> client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  // Warm-up round trip proves the connection is accepted and readable.
  ASSERT_TRUE(client->Send({0, Query::Contains("ACGT")}).ok());
  ASSERT_TRUE(client->ReceiveResponse().ok());

  constexpr size_t kCount = 100;
  std::string burst;
  for (size_t i = 1; i <= kCount; ++i) {
    wire::AppendRequestFrame({i, NthQuery(i, 11)}, &burst);
  }
  ASSERT_TRUE(client->SendRaw(burst).ok());
  // Give loopback TCP time to land the burst in the server's receive
  // buffer, then drain: everything already accepted must be answered.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  server.RequestDrain();
  EXPECT_TRUE(server.draining());

  for (size_t i = 1; i <= kCount; ++i) {
    Result<wire::QueryResponse> response = client->ReceiveResponse();
    ASSERT_TRUE(response.ok())
        << "query " << i << " lost in drain: " << response.status().ToString();
    EXPECT_EQ(response->id, i);
    EXPECT_TRUE(
        response->result.SameAnswer(adapter_->Execute(NthQuery(i, 11))));
  }
  EXPECT_FALSE(client->ReceiveResponse().ok());  // then EOF
  server.Stop();
  EXPECT_EQ(server.stats().queries, kCount + 1);
  EXPECT_EQ(server.stats().shed, 0u);

  // Draining servers refuse new connections outright.
  Result<Client> late = Client::Connect("127.0.0.1", server.port());
  if (late.ok()) EXPECT_FALSE(late->ReceiveResponse().ok());
}

TEST_F(ServeTest, StatsVerbReportsServerCountersOverBothDialects) {
  Server server(*adapter_, TestOptions());
  ASSERT_TRUE(server.Start().ok());

  for (const bool json : {false, true}) {
    Result<Client> client =
        Client::Connect("127.0.0.1", server.port(), json);
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(client->Send({1, Query::FindAll("ACGT")}).ok());
    ASSERT_TRUE(client->ReceiveResponse().ok());
    ASSERT_TRUE(client->SendStatsRequest().ok());
    Result<std::string> stats = client->ReceiveStatsJson();
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();

    Result<obs::JsonValue> doc = obs::ParseJson(*stats);
    ASSERT_TRUE(doc.ok()) << *stats;
    const obs::JsonValue* serve = doc->Find("serve");
    ASSERT_NE(serve, nullptr);
    const obs::JsonValue* queries = serve->Find("queries");
    ASSERT_NE(queries, nullptr);
    EXPECT_GE(queries->number, 1.0);
    EXPECT_NE(doc->Find("schema_version"), nullptr);
    EXPECT_NE(doc->Find("metrics"), nullptr);
  }
  server.Stop();
}

TEST_F(ServeTest, ProtocolViolationsGetAnErrorAndCloseOnlyThatConnection) {
  Server server(*adapter_, TestOptions());
  ASSERT_TRUE(server.Start().ok());

  {  // Oversized length prefix.
    Result<Client> client = Client::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok());
    std::string huge = {'\xff', '\xff', '\xff', '\x7f', 0, 0};
    ASSERT_TRUE(client->SendRaw(huge).ok());
    Result<wire::QueryResponse> response = client->ReceiveResponse();
    ASSERT_FALSE(response.ok());
    EXPECT_EQ(response.status().code(), StatusCode::kProtocolError);
  }
  {  // Wrong version byte.
    Result<Client> client = Client::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok());
    std::string frame;
    wire::AppendRequestFrame({1, Query::FindAll("ACGT")}, &frame);
    frame[4] = static_cast<char>(wire::kWireVersion + 1);
    ASSERT_TRUE(client->SendRaw(frame).ok());
    EXPECT_EQ(client->ReceiveResponse().status().code(),
              StatusCode::kProtocolError);
  }
  {  // A server-to-client frame type from a client.
    Result<Client> client = Client::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok());
    std::string frame;
    wire::AppendResponseFrame({1, QueryResult{}}, &frame);
    ASSERT_TRUE(client->SendRaw(frame).ok());
    EXPECT_EQ(client->ReceiveResponse().status().code(),
              StatusCode::kProtocolError);
  }
  {  // JSON dialect: junk line.
    Result<Client> client =
        Client::Connect("127.0.0.1", server.port(), /*json=*/true);
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(client->SendRaw("{this is not json}\n").ok());
    EXPECT_EQ(client->ReceiveResponse().status().code(),
              StatusCode::kProtocolError);
  }
  {  // A complete JSON line shorter than a frame header still selects
     // JSON mode (and fails the request parse) instead of stalling the
     // dialect sniff forever.
    Result<Client> client =
        Client::Connect("127.0.0.1", server.port(), /*json=*/true);
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(client->SendRaw("{}\n").ok());
    EXPECT_EQ(client->ReceiveResponse().status().code(),
              StatusCode::kProtocolError);
  }
  {  // A trailing partial frame at EOF is dropped silently.
    Result<Client> client = Client::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(client->SendRaw(std::string("\x20\x00", 2)).ok());
    client->ShutdownSend();
    EXPECT_FALSE(client->ReceiveResponse().ok());
  }

  EXPECT_GE(server.stats().protocol_errors, 4u);
  // The server survives all of it: a fresh connection still works.
  Result<Client> client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Send({5, Query::Contains("ACGT")}).ok());
  Result<wire::QueryResponse> response = client->ReceiveResponse();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->id, 5u);
  server.Stop();
}

TEST_F(ServeTest, BinaryFrameWhoseLengthLowByteIsBraceStaysBinary) {
  Server server(*adapter_, TestOptions());
  ASSERT_TRUE(server.Start().ok());
  Result<Client> client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  // A 103-byte pattern makes the frame length 123 — so the first wire
  // byte is '{' (0x7b, the little-endian low byte). The dialect sniff
  // must still classify the connection as binary, not kill it as
  // malformed JSON.
  const Query query = Query::FindAll(corpus_->substr(0, 103));
  std::string frame;
  wire::AppendRequestFrame({42, query}, &frame);
  ASSERT_EQ(frame[0], '{');  // the premise of the regression
  ASSERT_TRUE(client->SendRaw(frame).ok());

  Result<wire::QueryResponse> response = client->ReceiveResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->id, 42u);
  EXPECT_TRUE(response->result.SameAnswer(adapter_->Execute(query)));
  EXPECT_EQ(server.stats().protocol_errors, 0u);
  server.Stop();
}

TEST_F(ServeTest, NewlineFreeJsonStreamIsBoundedNotUnbounded) {
  Server server(*adapter_, TestOptions());
  ASSERT_TRUE(server.Start().ok());
  Result<Client> client =
      Client::Connect("127.0.0.1", server.port(), /*json=*/true);
  ASSERT_TRUE(client.ok());

  // Commit the connection to JSON mode, then stream past the frame cap
  // without ever sending a newline: the server must kill the
  // connection with a protocol error instead of buffering forever.
  ASSERT_TRUE(client->SendRaw("{\"v\":1,").ok());
  const std::string chunk(1 << 20, 'x');
  for (int i = 0; i <= 16; ++i) {
    // The server may close mid-stream; a failed send is the expected
    // way to find out.
    if (!client->SendRaw(chunk).ok()) break;
  }
  Result<wire::QueryResponse> response = client->ReceiveResponse();
  EXPECT_FALSE(response.ok());
  EXPECT_GE(server.stats().protocol_errors, 1u);
  server.Stop();
}

TEST_F(ServeTest, ConnectionLimitRejectsWithOverloadedErrorFrame) {
  Options options = TestOptions();
  options.max_connections = 1;
  Server server(*adapter_, options);
  ASSERT_TRUE(server.Start().ok());

  Result<Client> first = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->Send({1, Query::Contains("ACGT")}).ok());
  ASSERT_TRUE(first->ReceiveResponse().ok());

  Result<Client> second = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(second.ok());  // TCP accepts; the server then rejects
  Result<wire::QueryResponse> rejected = second->ReceiveResponse();
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kOverloaded);

  // The first connection is unaffected.
  ASSERT_TRUE(first->Send({2, Query::Contains("TTTT")}).ok());
  EXPECT_TRUE(first->ReceiveResponse().ok());
  server.Stop();
}

TEST_F(ServeTest, ServesAShardedFamilyIncludingItsErrorVerdicts) {
  shard::ShardedIndex::Options build;
  build.shards = 3;
  build.max_pattern = 16;
  Result<std::unique_ptr<shard::ShardedIndex>> family =
      shard::ShardedIndex::Build(Alphabet::Dna(), *corpus_, build);
  ASSERT_TRUE(family.ok()) << family.status().ToString();

  Server server(**family, TestOptions());
  ASSERT_TRUE(server.Start().ok());
  Result<Client> client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  const Query good = Query::FindAll(corpus_->substr(100, 12));
  ASSERT_TRUE(client->Send({1, good}).ok());
  Result<wire::QueryResponse> response = client->ReceiveResponse();
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response->result.SameAnswer((*family)->Execute(good)));

  // An overlong pattern is a per-query backend error; it must travel
  // the wire as a statusful response, not break the connection.
  const Query too_long = Query::FindAll(corpus_->substr(0, 64));
  ASSERT_TRUE(client->Send({2, too_long}).ok());
  response = client->ReceiveResponse();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->result.status_code, StatusCode::kInvalidArgument);

  ASSERT_TRUE(client->Send({3, good}).ok());
  EXPECT_TRUE(client->ReceiveResponse().ok());  // connection survives
  server.Stop();
}

TEST_F(ServeTest, StartFailuresReportCleanly) {
  Options bad_host = TestOptions();
  bad_host.host = "not-an-ip";
  Server server(*adapter_, bad_host);
  Status status = server.Start();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);

  Server first(*adapter_, TestOptions());
  ASSERT_TRUE(first.Start().ok());
  Options taken = TestOptions();
  taken.port = first.port();
  Server second(*adapter_, taken);
  Status occupied = second.Start();
  ASSERT_FALSE(occupied.ok());
  EXPECT_EQ(occupied.code(), StatusCode::kIoError);
  first.Stop();
}

}  // namespace
}  // namespace spine::serve
